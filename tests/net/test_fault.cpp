// Fault-spec parsing and the link-level fault model: determinism,
// burstiness, corruption, jitter FIFO, and the inert zero-spec.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/link.hpp"

namespace comb::net {
namespace {

using namespace comb::units;
using sim::Simulator;

Packet mkPacket(std::uint64_t seq, Bytes wire = 1000) {
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.wireBytes = wire;
  p.seq = seq;
  return p;
}

TEST(FaultSpec, ParsesTheCliSyntax) {
  const auto spec = parseFaultSpec("drop=0.01,burst=4,seed=9");
  EXPECT_DOUBLE_EQ(spec.dropProb, 0.01);
  EXPECT_EQ(spec.burstLen, 4);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.corruptProb, 0.0);
  EXPECT_TRUE(spec.lossy());

  const auto full =
      parseFaultSpec(" drop=0.05 , corrupt=0.02, jitter_us=3, seed=1 ");
  EXPECT_DOUBLE_EQ(full.dropProb, 0.05);
  EXPECT_DOUBLE_EQ(full.corruptProb, 0.02);
  EXPECT_NEAR(full.jitter, 3e-6, 1e-15);
  EXPECT_EQ(full.burstLen, 1);
}

TEST(FaultSpec, JitterOnlyIsActiveButNotLossy) {
  const auto spec = parseFaultSpec("jitter_us=5");
  EXPECT_FALSE(spec.lossy());
  EXPECT_TRUE(spec.active());
  EXPECT_FALSE(FaultSpec{}.active());
}

TEST(FaultSpec, RejectsBadInput) {
  EXPECT_THROW(parseFaultSpec("drop=1.5"), ConfigError);
  EXPECT_THROW(parseFaultSpec("drop=-0.1"), ConfigError);
  EXPECT_THROW(parseFaultSpec("burst=0,drop=0.1"), ConfigError);
  EXPECT_THROW(parseFaultSpec("jitter_us=-1"), ConfigError);
  EXPECT_THROW(parseFaultSpec("loss=0.1"), ConfigError);
  EXPECT_THROW(parseFaultSpec("drop"), ConfigError);
  EXPECT_THROW(parseFaultSpec("drop="), ConfigError);
  EXPECT_THROW(parseFaultSpec("drop=abc"), ConfigError);
}

TEST(FaultSpec, RejectsZeroBurstHoweverConstructed) {
  // burst=0 must be caught at validation, not wrap Link's burstRemaining
  // arithmetic (burstLen - 1) into a near-infinite loss run.
  FaultSpec spec;
  spec.dropProb = 0.1;
  spec.burstLen = 0;
  EXPECT_THROW(validateFaultSpec(spec), ConfigError);
  spec.burstLen = -3;
  EXPECT_THROW(validateFaultSpec(spec), ConfigError);

  Simulator sim;
  LinkConfig cfg;
  cfg.rate = 100e6;
  cfg.fault.dropProb = 0.1;
  cfg.fault.burstLen = 0;
  EXPECT_THROW(Link(sim, cfg, "bad-burst"), ConfigError);
}

TEST(FaultSpec, SummaryRoundTrips) {
  auto spec = parseFaultSpec("drop=0.02,burst=3,corrupt=0.01,jitter_us=2");
  const auto again = parseFaultSpec(faultSpecSummary(spec));
  EXPECT_DOUBLE_EQ(again.dropProb, spec.dropProb);
  EXPECT_EQ(again.burstLen, spec.burstLen);
  EXPECT_DOUBLE_EQ(again.corruptProb, spec.corruptProb);
  EXPECT_NEAR(again.jitter, spec.jitter, 1e-15);
  EXPECT_EQ(again.seed, spec.seed);
}

/// Run `count` packets through a link with the given fault model and
/// return the seq numbers that arrived (in arrival order).
std::vector<std::uint64_t> survivors(const FaultSpec& fault,
                                     const std::string& name, int count,
                                     std::uint64_t* dropped = nullptr,
                                     std::uint64_t* corrupted = nullptr) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = 100e6;
  cfg.latency = 1e-6;
  cfg.fault = fault;
  Link link(sim, cfg, name);
  std::vector<std::uint64_t> arrived;
  link.setSink([&](Packet p) {
    if (!p.corrupted) arrived.push_back(p.seq);
  });
  for (int i = 0; i < count; ++i) link.send(mkPacket(i));
  sim.run();
  if (dropped) *dropped = link.packetsDropped();
  if (corrupted) *corrupted = link.packetsCorrupted();
  return arrived;
}

TEST(LinkFaults, DropPatternIsSeedAndNameDeterministic) {
  auto spec = parseFaultSpec("drop=0.3,seed=11");
  const auto a = survivors(spec, "l", 300);
  const auto b = survivors(spec, "l", 300);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 300u);  // 0.3 drop over 300 packets: losses certain

  spec.seed = 12;
  EXPECT_NE(survivors(spec, "l", 300), a);
  spec.seed = 11;
  EXPECT_NE(survivors(spec, "other-link", 300), a);
}

TEST(LinkFaults, BurstsDropMoreAndAccountExactly) {
  std::uint64_t dropped1 = 0, dropped3 = 0;
  const auto single =
      survivors(parseFaultSpec("drop=0.05,burst=1,seed=5"), "l", 400,
                &dropped1);
  const auto burst =
      survivors(parseFaultSpec("drop=0.05,burst=3,seed=5"), "l", 400,
                &dropped3);
  EXPECT_EQ(single.size() + dropped1, 400u);
  EXPECT_EQ(burst.size() + dropped3, 400u);
  EXPECT_GT(dropped3, dropped1);
}

TEST(LinkFaults, CorruptionDeliversMarkedPackets) {
  std::uint64_t dropped = 0, corrupted = 0;
  const auto clean = survivors(parseFaultSpec("corrupt=1"), "l", 50, &dropped,
                               &corrupted);
  EXPECT_TRUE(clean.empty());  // every packet arrived corrupted
  EXPECT_EQ(corrupted, 50u);
  EXPECT_EQ(dropped, 0u);
}

TEST(LinkFaults, JitterDelaysButPreservesFifo) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = 100e6;
  cfg.latency = 1e-6;
  cfg.fault = parseFaultSpec("jitter_us=50,seed=3");
  Link link(sim, cfg, "l");
  std::vector<std::uint64_t> order;
  std::vector<Time> arrivals;
  link.setSink([&](Packet p) {
    order.push_back(p.seq);
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 40; ++i) link.send(mkPacket(i));
  sim.run();
  ASSERT_EQ(order.size(), 40u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  // 40 x 1000B at 100 MB/s is 400 us of serialization; jitter must have
  // pushed the tail past the lossless schedule at least once.
  EXPECT_GT(arrivals.back(), 400e-6 + 1e-6);
}

TEST(LinkFaults, DefaultSpecIsByteIdenticalToNoFaults) {
  const auto base = survivors(FaultSpec{}, "l", 20);
  FaultSpec noisySeed;  // inactive model, different seed: must not matter
  noisySeed.seed = 999;
  EXPECT_EQ(survivors(noisySeed, "l", 20), base);
  ASSERT_EQ(base.size(), 20u);
}

TEST(FaultCountersStruct, AggregatesAndDetectsActivity) {
  FaultCounters a;
  EXPECT_FALSE(a.any());
  FaultCounters b;
  b.dropsInjected = 2;
  b.retransmits = 3;
  a += b;
  a += b;
  EXPECT_EQ(a.dropsInjected, 4u);
  EXPECT_EQ(a.retransmits, 6u);
  EXPECT_TRUE(a.any());
}

}  // namespace
}  // namespace comb::net
