#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/fabric.hpp"

namespace comb::net {
namespace {

using namespace comb::units;
using sim::Simulator;

FabricConfig fabricCfg(TopologyConfig topo, int switchPorts) {
  FabricConfig cfg;
  cfg.link = {.rate = 100e6, .latency = 1_us};
  cfg.sw = {.routingLatency = 0.5_us, .ports = switchPorts};
  cfg.topo = topo;
  cfg.mtu = 4096;
  cfg.perPacketHeader = 64;
  return cfg;
}

/// Attach `n` recording nodes and run the all-pairs pattern; every node
/// must see exactly n-1 packets and no switch may drop for lack of a
/// route — the strongest wiring check there is.
void allPairsCheck(Fabric& fabric, Simulator& sim, int n,
                   std::vector<int>& hits) {
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d)
      if (s != d) fabric.inject(s, d, 256, nullptr);
  sim.run();
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], n - 1) << "node " << i;
  const SwitchTotals t = fabric.switchTotals();
  EXPECT_EQ(t.dropsNoRoute, 0u);
  EXPECT_EQ(t.dropsQueue, 0u);
}

TEST(Topology, FatTreeAllPairsDelivery) {
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::FatTree;
  topo.nodesPerSwitch = 2;
  topo.spines = 2;
  Fabric fabric(sim, fabricCfg(topo, 8));  // 2*2 nodes + 2*2 trunks = 8
  const int n = 6;                         // three leaves
  std::vector<int> hits(n, 0);
  for (int i = 0; i < n; ++i)
    fabric.addNode([&hits, i](Packet) { ++hits[static_cast<std::size_t>(i)]; });
  EXPECT_EQ(fabric.capacityNodes(), -1);  // leaves appear on demand
  allPairsCheck(fabric, sim, n, hits);
  EXPECT_EQ(fabric.topology().switchCount(), 5);  // 2 spines + 3 leaves
  EXPECT_FALSE(fabric.topology().trunks().empty());
}

TEST(Topology, FatTreeCrossLeafPathIsThreeSwitches) {
  // node0 (leaf0) -> node2 (leaf1): up 1us+@, leaf 0.5us, trunk, spine,
  // trunk, leaf, down. Wire size 256+64=320B -> 3.2us serialization per
  // hop at 100 MB/s; 4 links (up, leaf->spine, spine->leaf, down) and 3
  // switch traversals.
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::FatTree;
  topo.nodesPerSwitch = 2;
  topo.spines = 2;
  Fabric fabric(sim, fabricCfg(topo, 8));
  Time arrival = -1.0;
  fabric.addNode([](Packet) {});
  fabric.addNode([](Packet) {});
  fabric.addNode([&](Packet) { arrival = sim.now(); });
  fabric.inject(0, 2, 256, nullptr);
  sim.run();
  EXPECT_NEAR(arrival, 4 * (3.2e-6 + 1e-6) + 3 * 0.5e-6, 1e-10);
}

TEST(Topology, DragonflyAllPairsDelivery) {
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::Dragonfly;
  topo.nodesPerSwitch = 2;
  topo.groups = 2;
  topo.routersPerGroup = 2;
  Fabric fabric(sim, fabricCfg(topo, 0));
  const int n = 8;
  EXPECT_EQ(fabric.capacityNodes(), 8);
  std::vector<int> hits(n, 0);
  for (int i = 0; i < n; ++i)
    fabric.addNode([&hits, i](Packet) { ++hits[static_cast<std::size_t>(i)]; });
  allPairsCheck(fabric, sim, n, hits);
  EXPECT_EQ(fabric.topology().switchCount(), 4);  // 2 groups x 2 routers
}

TEST(Topology, DragonflyCapacityEnforced) {
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::Dragonfly;
  topo.nodesPerSwitch = 1;
  topo.groups = 2;
  topo.routersPerGroup = 1;
  Fabric fabric(sim, fabricCfg(topo, 0));
  EXPECT_EQ(fabric.capacityNodes(), 2);
  fabric.addNode([](Packet) {});
  fabric.addNode([](Packet) {});
  EXPECT_THROW(fabric.addNode([](Packet) {}), ConfigError);
}

TEST(Topology, LargerDragonflyAllPairs) {
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::Dragonfly;
  topo.nodesPerSwitch = 2;
  topo.groups = 3;
  topo.routersPerGroup = 3;
  Fabric fabric(sim, fabricCfg(topo, 0));
  const int n = 18;
  std::vector<int> hits(n, 0);
  for (int i = 0; i < n; ++i)
    fabric.addNode([&hits, i](Packet) { ++hits[static_cast<std::size_t>(i)]; });
  allPairsCheck(fabric, sim, n, hits);
  EXPECT_EQ(fabric.topology().switchCount(), 9);
}

TEST(Topology, ValidateRejectsBadConfigs) {
  SwitchConfig sw;
  TopologyConfig topo;
  topo.trunkRateScale = 0.0;
  EXPECT_THROW(validateTopology(topo, sw), ConfigError);

  topo = {};
  topo.kind = TopologyKind::FatTree;
  topo.nodesPerSwitch = 8;
  topo.spines = 4;
  sw.ports = 16;  // needs 2*8 + 2*4 = 24
  EXPECT_THROW(validateTopology(topo, sw), ConfigError);
  sw.ports = 24;
  EXPECT_NO_THROW(validateTopology(topo, sw));
  sw.ports = 0;  // unlimited always fits
  EXPECT_NO_THROW(validateTopology(topo, sw));

  topo = {};
  topo.kind = TopologyKind::Dragonfly;
  topo.groups = 0;
  EXPECT_THROW(validateTopology(topo, sw), ConfigError);
}

TEST(Topology, OversubscriptionRatios) {
  TopologyConfig topo;
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 1.0);  // single star

  topo.kind = TopologyKind::FatTree;
  topo.nodesPerSwitch = 4;
  topo.spines = 2;
  topo.trunkRateScale = 1.0;
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 2.0);
  topo.trunkRateScale = 2.0;
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 1.0);

  topo = {};
  topo.kind = TopologyKind::Dragonfly;
  topo.nodesPerSwitch = 2;
  topo.routersPerGroup = 2;
  topo.trunkRateScale = 1.0;
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 4.0);
}

TEST(Topology, TrunkRateScaleAppliedToTrunks) {
  Simulator sim;
  TopologyConfig topo;
  topo.kind = TopologyKind::FatTree;
  topo.nodesPerSwitch = 2;
  topo.spines = 1;
  topo.trunkRateScale = 2.5;
  Fabric fabric(sim, fabricCfg(topo, 6));
  fabric.addNode([](Packet) {});
  ASSERT_FALSE(fabric.topology().trunks().empty());
  for (const auto& trunk : fabric.topology().trunks())
    EXPECT_DOUBLE_EQ(trunk->config().rate, 100e6 * 2.5);
}

TEST(Topology, SingleSwitchMatchesLegacyFabric) {
  // kind=single must behave exactly like the historical one-switch star
  // (same counters, same capacity rule).
  Simulator sim;
  TopologyConfig topo;  // default: single
  Fabric fabric(sim, fabricCfg(topo, 8));
  EXPECT_EQ(fabric.capacityNodes(), 4);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 3; ++i)
    fabric.addNode([&hits, i](Packet) { ++hits[static_cast<std::size_t>(i)]; });
  allPairsCheck(fabric, sim, 3, hits);
  EXPECT_EQ(fabric.topology().switchCount(), 1);
  EXPECT_TRUE(fabric.topology().trunks().empty());
  EXPECT_EQ(fabric.switchTotals().packetsRouted, 6u);
}

}  // namespace
}  // namespace comb::net
