#include "net/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::net {
namespace {

using namespace comb::units;
using sim::Simulator;

Packet mkPacket(NodeId src, NodeId dst, Bytes wire, std::uint64_t seq) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.wireBytes = wire;
  p.seq = seq;
  return p;
}

struct SwitchFixture {
  Simulator sim;
  LinkConfig linkCfg{.rate = 100e6, .latency = 1_us};
  std::unique_ptr<Switch> sw;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::vector<Packet>> delivered;

  explicit SwitchFixture(SwitchConfig cfg) {
    sw = std::make_unique<Switch>(sim, cfg, "sw");
  }

  /// Wire destination `node` to a fresh downlink that records arrivals.
  void addDest(NodeId node) {
    auto link = std::make_unique<Link>(sim, linkCfg, "down" + std::to_string(node));
    delivered.resize(static_cast<std::size_t>(node) + 1);
    link->setSink([this, node](Packet p) {
      delivered[static_cast<std::size_t>(node)].push_back(std::move(p));
    });
    sw->attachOutput(node, *link);
    links.push_back(std::move(link));
  }
};

TEST(Switch, PortBudgetCountsInputsAndOutputs) {
  Simulator sim;
  SwitchConfig cfg;
  cfg.ports = 3;
  Switch sw(sim, cfg, "sw");
  LinkConfig lc;
  Link out0(sim, lc, "o0");
  Link out1(sim, lc, "o1");
  EXPECT_EQ(sw.attachInput("up0"), 0);
  sw.attachOutput(0, out0);
  sw.attachOutput(1, out1);
  EXPECT_EQ(sw.portsUsed(), 3);
  EXPECT_EQ(sw.inputCount(), 1);
  EXPECT_EQ(sw.outputCount(), 2);
  // Budget exhausted: both directions must refuse.
  Link out2(sim, lc, "o2");
  EXPECT_THROW(sw.attachInput("up1"), ConfigError);
  EXPECT_THROW(sw.attachOutput(2, out2), ConfigError);
}

TEST(Switch, ZeroPortsMeansUnlimited) {
  Simulator sim;
  SwitchConfig cfg;
  cfg.ports = 0;
  Switch sw(sim, cfg, "sw");
  LinkConfig lc;
  std::vector<std::unique_ptr<Link>> outs;
  for (int i = 0; i < 40; ++i) {
    sw.attachInput("in");
    outs.push_back(std::make_unique<Link>(sim, lc, "o"));
    sw.attachOutput(i, *outs.back());
  }
  EXPECT_EQ(sw.portsUsed(), 80);
}

TEST(Switch, NoRouteCountsAndDoesNotDeliver) {
  SwitchFixture f({});
  f.addDest(0);
  f.sw->inject(mkPacket(5, 7, 100, 1));  // 7 has no route
  f.sw->inject(mkPacket(5, 0, 100, 2));
  f.sim.run();
  EXPECT_EQ(f.sw->dropsNoRoute(), 1u);
  EXPECT_EQ(f.sw->packetsRouted(), 1u);
  ASSERT_EQ(f.delivered[0].size(), 1u);
  EXPECT_EQ(f.delivered[0][0].seq, 2u);
}

TEST(Switch, UnboundedPathDelivers) {
  SwitchFixture f({});
  f.addDest(0);
  f.addDest(1);
  for (int i = 0; i < 5; ++i) f.sw->inject(mkPacket(2, i % 2, 1000, 10u + i));
  f.sim.run();
  EXPECT_EQ(f.delivered[0].size(), 3u);
  EXPECT_EQ(f.delivered[1].size(), 2u);
  EXPECT_EQ(f.sw->dropsQueue(), 0u);
  EXPECT_EQ(f.sw->queuePeakPackets(), 0u);  // bounded-queue machinery off
}

TEST(Switch, TailDropOverflowsFiniteQueue) {
  SwitchConfig cfg;
  cfg.queue.depthPackets = 2;
  cfg.queue.backpressure = Backpressure::TailDrop;
  SwitchFixture f(cfg);
  f.addDest(0);
  const int in = f.sw->attachInput("up");
  // Burst of 8 into one output: 1 drains immediately, 2 queue, rest drop.
  for (int i = 0; i < 8; ++i)
    f.sw->inject(in, mkPacket(1, 0, 1000, static_cast<std::uint64_t>(i)));
  f.sim.run();
  EXPECT_GT(f.sw->dropsQueue(), 0u);
  EXPECT_EQ(f.sw->dropsQueue() + f.delivered[0].size(), 8u);
  EXPECT_LE(f.sw->queuePeakPackets(), 2u);
  EXPECT_GT(f.sw->queuePeakPackets(), 0u);
  // Survivors arrive in order.
  for (std::size_t i = 1; i < f.delivered[0].size(); ++i)
    EXPECT_LT(f.delivered[0][i - 1].seq, f.delivered[0][i].seq);
}

TEST(Switch, CreditBackpressureIsLossless) {
  SwitchConfig cfg;
  cfg.queue.depthPackets = 2;
  cfg.queue.backpressure = Backpressure::Credit;
  SwitchFixture f(cfg);
  f.addDest(0);
  const int in = f.sw->attachInput("up");
  for (int i = 0; i < 8; ++i)
    f.sw->inject(in, mkPacket(1, 0, 1000, static_cast<std::uint64_t>(i)));
  f.sim.run();
  EXPECT_EQ(f.delivered[0].size(), 8u);
  EXPECT_EQ(f.sw->dropsQueue(), 0u);
  EXPECT_GT(f.sw->creditStalls(), 0u);
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_LT(f.delivered[0][i - 1].seq, f.delivered[0][i].seq);
}

TEST(Switch, ByteCapAlsoDrops) {
  SwitchConfig cfg;
  cfg.queue.depthPackets = 100;
  cfg.queue.depthBytes = 2500;  // ~2 x 1000B packets + slack
  SwitchFixture f(cfg);
  f.addDest(0);
  const int in = f.sw->attachInput("up");
  for (int i = 0; i < 8; ++i)
    f.sw->inject(in, mkPacket(1, 0, 1000, static_cast<std::uint64_t>(i)));
  f.sim.run();
  EXPECT_GT(f.sw->dropsQueue(), 0u);
  EXPECT_EQ(f.sw->dropsQueue() + f.delivered[0].size(), 8u);
}

TEST(Switch, RoundRobinSharesOutputFairly) {
  SwitchConfig cfg;
  cfg.queue.depthPackets = 64;
  cfg.queue.arbitration = Arbitration::RoundRobin;
  SwitchFixture f(cfg);
  f.addDest(0);
  const int inA = f.sw->attachInput("a");
  const int inB = f.sw->attachInput("b");
  // Input A floods 16 packets first, then B adds 4. With per-input
  // round-robin, B's packets interleave instead of waiting behind all of
  // A's backlog: B's last packet must beat A's last packet out.
  for (int i = 0; i < 16; ++i)
    f.sw->inject(inA, mkPacket(1, 0, 1000, 100u + static_cast<std::uint64_t>(i)));
  for (int i = 0; i < 4; ++i)
    f.sw->inject(inB, mkPacket(2, 0, 1000, 200u + static_cast<std::uint64_t>(i)));
  f.sim.run();
  ASSERT_EQ(f.delivered[0].size(), 20u);
  std::size_t lastA = 0, lastB = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (f.delivered[0][i].src == 1) lastA = i;
    if (f.delivered[0][i].src == 2) lastB = i;
  }
  EXPECT_LT(lastB, lastA);
  // Per-source order is still FIFO.
  std::uint64_t prevA = 0;
  for (const auto& p : f.delivered[0])
    if (p.src == 1) {
      EXPECT_TRUE(prevA == 0 || p.seq > prevA);
      prevA = p.seq;
    }
}

TEST(Switch, FifoArbitrationKeepsArrivalOrder) {
  SwitchConfig cfg;
  cfg.queue.depthPackets = 64;
  cfg.queue.arbitration = Arbitration::Fifo;
  SwitchFixture f(cfg);
  f.addDest(0);
  const int inA = f.sw->attachInput("a");
  const int inB = f.sw->attachInput("b");
  for (int i = 0; i < 16; ++i)
    f.sw->inject(inA, mkPacket(1, 0, 1000, 100u + static_cast<std::uint64_t>(i)));
  for (int i = 0; i < 4; ++i)
    f.sw->inject(inB, mkPacket(2, 0, 1000, 200u + static_cast<std::uint64_t>(i)));
  f.sim.run();
  ASSERT_EQ(f.delivered[0].size(), 20u);
  // Strict arrival order: all of A (arrived first) before all of B.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(f.delivered[0][i].src, 1);
  for (std::size_t i = 16; i < 20; ++i) EXPECT_EQ(f.delivered[0][i].src, 2);
}

TEST(Switch, SetRouteValidatesOutputPort) {
  Simulator sim;
  Switch sw(sim, {}, "sw");
  EXPECT_THROW(sw.setRoute(0, 0), ConfigError);   // no outputs yet
  EXPECT_THROW(sw.setRoute(-1, 0), ConfigError);  // bad node id
}

TEST(Switch, SharedTrunkRoutesManyDestinations) {
  // Many destinations behind one output port (an inter-switch trunk).
  SwitchFixture f({});
  auto trunk = std::make_unique<Link>(f.sim, f.linkCfg, "trunk");
  std::vector<Packet> onTrunk;
  trunk->setSink([&](Packet p) { onTrunk.push_back(std::move(p)); });
  const int port = f.sw->attachOutput(*trunk);
  for (NodeId d = 0; d < 6; ++d) f.sw->setRoute(d, port);
  for (NodeId d = 0; d < 6; ++d) f.sw->inject(mkPacket(9, d, 100, 1u));
  f.sim.run();
  EXPECT_EQ(onTrunk.size(), 6u);
  EXPECT_EQ(f.sw->packetsRouted(), 6u);
  f.links.push_back(std::move(trunk));
}

}  // namespace
}  // namespace comb::net
