#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/switch.hpp"

namespace comb::net {
namespace {

using namespace comb::units;
using sim::Simulator;

FabricConfig cfg2() {
  FabricConfig cfg;
  cfg.link = {.rate = 100e6, .latency = 1_us};
  cfg.sw = {.routingLatency = 0.5_us, .ports = 8};
  cfg.mtu = 4096;
  cfg.perPacketHeader = 64;
  return cfg;
}

struct TwoNodeFixture {
  Simulator sim;
  Fabric fabric{sim, cfg2()};
  std::vector<Packet> at0, at1;
  NodeId n0, n1;

  TwoNodeFixture() {
    n0 = fabric.addNode([this](Packet p) { at0.push_back(std::move(p)); });
    n1 = fabric.addNode([this](Packet p) { at1.push_back(std::move(p)); });
  }
};

TEST(Fabric, EndToEndDelivery) {
  TwoNodeFixture f;
  f.fabric.inject(f.n0, f.n1, 1000, nullptr);
  f.sim.run();
  ASSERT_EQ(f.at1.size(), 1u);
  EXPECT_TRUE(f.at0.empty());
  EXPECT_EQ(f.at1[0].src, f.n0);
  EXPECT_EQ(f.at1[0].dst, f.n1);
  // Wire size includes the header.
  EXPECT_EQ(f.at1[0].wireBytes, 1064u);
}

TEST(Fabric, EndToEndTimingTwoHops) {
  TwoNodeFixture f;
  Time arrival = -1;
  f.fabric.inject(f.n0, f.n1, 1000, nullptr);
  f.sim.setTrace([&](Time, std::uint64_t) {});
  f.sim.run();
  arrival = f.sim.now();
  // up: 1064B/100MBps = 10.64us + 1us latency; switch: 0.5us;
  // down: 10.64us + 1us.
  EXPECT_NEAR(arrival, 10.64e-6 + 1e-6 + 0.5e-6 + 10.64e-6 + 1e-6, 1e-10);
}

TEST(Fabric, BothDirectionsSimultaneously) {
  TwoNodeFixture f;
  f.fabric.inject(f.n0, f.n1, 500, nullptr);
  f.fabric.inject(f.n1, f.n0, 500, nullptr);
  f.sim.run();
  EXPECT_EQ(f.at0.size(), 1u);
  EXPECT_EQ(f.at1.size(), 1u);
}

TEST(Fabric, PacketSequenceNumbersIncrease) {
  TwoNodeFixture f;
  f.fabric.inject(f.n0, f.n1, 10, nullptr);
  f.fabric.inject(f.n0, f.n1, 10, nullptr);
  f.fabric.inject(f.n1, f.n0, 10, nullptr);
  f.sim.run();
  ASSERT_EQ(f.at1.size(), 2u);
  EXPECT_LT(f.at1[0].seq, f.at1[1].seq);
  EXPECT_EQ(f.fabric.packetsInjected(), 3u);
}

TEST(Fabric, InOrderDeliveryPerPath) {
  TwoNodeFixture f;
  for (int i = 0; i < 20; ++i) f.fabric.inject(f.n0, f.n1, 4096, nullptr);
  f.sim.run();
  ASSERT_EQ(f.at1.size(), 20u);
  for (size_t i = 1; i < f.at1.size(); ++i)
    EXPECT_LT(f.at1[i - 1].seq, f.at1[i].seq);
}

TEST(Fabric, MtuEnforced) {
  TwoNodeFixture f;
  EXPECT_THROW(f.fabric.inject(f.n0, f.n1, 4097, nullptr), ConfigError);
}

TEST(Fabric, BadNodeIdsRejected) {
  TwoNodeFixture f;
  EXPECT_THROW(f.fabric.inject(-1, 1, 10, nullptr), ConfigError);
  EXPECT_THROW(f.fabric.inject(0, 7, 10, nullptr), ConfigError);
}

TEST(Fabric, ManyNodesStarTopology) {
  Simulator sim;
  Fabric fabric(sim, cfg2());
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4; ++i)
    fabric.addNode([&hits, i](Packet) { ++hits[static_cast<size_t>(i)]; });
  // Every node sends one packet to every other node.
  for (NodeId s = 0; s < 4; ++s)
    for (NodeId d = 0; d < 4; ++d)
      if (s != d) fabric.inject(s, d, 100, nullptr);
  sim.run();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 3);
  EXPECT_EQ(fabric.centralSwitch().packetsRouted(), 12u);
  EXPECT_EQ(fabric.centralSwitch().dropsNoRoute(), 0u);
}

TEST(Fabric, SwitchPortLimitEnforced) {
  // Port accounting is unidirectional: a node consumes one input port
  // (its uplink) AND one output port (its downlink), so 4 switch ports
  // host exactly 2 nodes. The old code only counted outputs and would
  // have accepted 4.
  Simulator sim;
  FabricConfig cfg = cfg2();
  cfg.sw.ports = 4;
  Fabric fabric(sim, cfg);
  EXPECT_EQ(fabric.capacityNodes(), 2);
  fabric.addNode([](Packet) {});
  fabric.addNode([](Packet) {});
  EXPECT_THROW(fabric.addNode([](Packet) {}), ConfigError);
  EXPECT_EQ(fabric.centralSwitch().portsUsed(), 4);
}

TEST(Fabric, OutputContentionSerializes) {
  // Two senders to the same destination share the destination downlink.
  Simulator sim;
  Fabric fabric(sim, cfg2());
  std::vector<Time> arrivals;
  const NodeId sink =
      fabric.addNode([&](Packet) { arrivals.push_back(sim.now()); });
  const NodeId a = fabric.addNode([](Packet) {});
  const NodeId b = fabric.addNode([](Packet) {});
  fabric.inject(a, sink, 4000, nullptr);
  fabric.inject(b, sink, 4000, nullptr);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second packet arrives roughly one serialization (40.64us) after the
  // first: the downlink is the bottleneck.
  EXPECT_NEAR(arrivals[1] - arrivals[0], 40.64e-6, 1e-9);
}

struct Tag : PayloadBase {
  static constexpr PayloadKind kPayloadKind = PayloadKind::Test;
  int v;
  explicit Tag(int x) : PayloadBase(kPayloadKind), v(x) {}
};

TEST(Fabric, PayloadSurvivesTransit) {
  TwoNodeFixture f;
  f.fabric.inject(f.n0, f.n1, 8, makePayload<Tag>(99));
  f.sim.run();
  ASSERT_EQ(f.at1.size(), 1u);
  const Tag* tag = payloadAs<Tag>(f.at1[0]);
  ASSERT_NE(tag, nullptr);
  EXPECT_EQ(tag->v, 99);
}

}  // namespace
}  // namespace comb::net
