#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::net {
namespace {

using namespace comb::units;
using sim::Simulator;

Packet mkPacket(Bytes wire, NodeId src = 0, NodeId dst = 1) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.wireBytes = wire;
  return p;
}

TEST(Link, ArrivalTimeIsSerializationPlusLatency) {
  Simulator sim;
  Link link(sim, {.rate = 100e6, .latency = 2_us}, "l");
  std::vector<Time> arrivals;
  link.setSink([&](Packet) { arrivals.push_back(sim.now()); });
  // 1000 bytes at 100 MB/s = 10 us serialize + 2 us latency.
  const Time predicted = link.send(mkPacket(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 12e-6, 1e-12);
  EXPECT_NEAR(predicted, 12e-6, 1e-12);
}

TEST(Link, BackToBackPacketsSerializeFifo) {
  Simulator sim;
  Link link(sim, {.rate = 100e6, .latency = 0.0}, "l");
  std::vector<Time> arrivals;
  link.setSink([&](Packet) { arrivals.push_back(sim.now()); });
  link.send(mkPacket(1000));  // occupies 0..10 us
  link.send(mkPacket(1000));  // occupies 10..20 us
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 10e-6, 1e-12);
  EXPECT_NEAR(arrivals[1], 20e-6, 1e-12);
}

TEST(Link, IdleGapRestartsImmediately) {
  Simulator sim;
  Link link(sim, {.rate = 1e6, .latency = 0.0}, "l");
  std::vector<Time> arrivals;
  link.setSink([&](Packet) { arrivals.push_back(sim.now()); });
  link.send(mkPacket(100));  // 100 us
  sim.schedule(500_us, [&] { link.send(mkPacket(100)); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 100e-6, 1e-12);
  EXPECT_NEAR(arrivals[1], 600e-6, 1e-12);
}

TEST(Link, StatsAccumulate) {
  Simulator sim;
  Link link(sim, {.rate = 1e6, .latency = 1_us}, "l");
  link.setSink([](Packet) {});
  link.send(mkPacket(300));
  link.send(mkPacket(700));
  sim.run();
  EXPECT_EQ(link.bytesCarried(), 1000u);
  EXPECT_EQ(link.packetsCarried(), 2u);
  EXPECT_NEAR(link.busyTime(), 1e-3, 1e-12);
}

TEST(Link, IdleNowReflectsOccupancy) {
  Simulator sim;
  Link link(sim, {.rate = 1e6, .latency = 0.0}, "l");
  link.setSink([](Packet) {});
  EXPECT_TRUE(link.idleNow());
  link.send(mkPacket(1000));  // busy until 1 ms
  EXPECT_FALSE(link.idleNow());
  sim.schedule(0.5_ms, [&] { EXPECT_FALSE(link.idleNow()); });
  sim.schedule(1.5_ms, [&] { EXPECT_TRUE(link.idleNow()); });
  sim.run();
}

TEST(Link, SaturatedThroughputMatchesRate) {
  Simulator sim;
  Link link(sim, {.rate = 50e6, .latency = 1_us}, "l");
  Bytes received = 0;
  link.setSink([&](Packet p) { received += p.wireBytes; });
  // Keep the link saturated for ~10 ms.
  const int n = 100;
  for (int i = 0; i < n; ++i) link.send(mkPacket(5000));
  sim.run();
  const Time lastArrival = sim.now();
  const double rate = static_cast<double>(received) / (lastArrival - 1e-6);
  EXPECT_NEAR(rate, 50e6, 50e6 * 0.001);
  EXPECT_EQ(received, 500000u);
}

TEST(Link, ZeroByteControlPacketTakesOnlyLatency) {
  Simulator sim;
  Link link(sim, {.rate = 1e6, .latency = 3_us}, "l");
  Time arrival = -1;
  link.setSink([&](Packet) { arrival = sim.now(); });
  link.send(mkPacket(0));
  sim.run();
  EXPECT_NEAR(arrival, 3e-6, 1e-15);
}

TEST(Link, InvalidConfigRejected) {
  Simulator sim;
  EXPECT_THROW(Link(sim, {.rate = 0.0, .latency = 0.0}, "bad"), ConfigError);
  EXPECT_THROW(Link(sim, {.rate = 1e6, .latency = -1.0}, "bad"), ConfigError);
}

}  // namespace
}  // namespace comb::net
