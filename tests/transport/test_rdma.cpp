// RDMA stack contracts: hardware matching against pre-posted receives,
// autonomous rendezvous with zero host involvement and zero interrupts,
// the host fallback on unexpected messages, NIC-resident retransmission,
// sharded-core bit-identity, and the [rdma] machine-file section.
#include "transport/rdma.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "backend/machine.hpp"
#include "backend/machine_file.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"
#include "net/fault.hpp"
#include "sim/tracelog.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Request;
using sim::Task;

struct QuietResult {
  bool recvDoneDuringSilence = false;
  bool sendDoneDuringSilence = false;
};

Task<void> quietProbe(SimProc& p, Bytes bytes, Time quiet, QuietResult& out) {
  const int peer = 1 - p.rank();
  Request rx = co_await p.mpi().irecv(p.mpi().world(), peer, 1, bytes);
  Request tx = co_await p.mpi().isend(p.mpi().world(), peer, 1, bytes);
  co_await p.simulator().delay(quiet);
  out.recvDoneDuringSilence = p.mpi().peekDone(rx);
  out.sendDoneDuringSilence = p.mpi().peekDone(tx);
  co_await p.mpi().wait(rx);
  co_await p.mpi().wait(tx);
}

Task<void> sendMany(SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().send(p.mpi().world(), 1, i, size);
}

Task<void> recvMany(SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().recv(p.mpi().world(), 0, i, size);
}

const transport::RdmaEndpoint& rdmaEndpoint(SimCluster& c, int rank) {
  return static_cast<const transport::RdmaEndpoint&>(c.endpoint(rank));
}

// The autonomy contract: a 100 KB rendezvous completes during radio
// silence — matching, CTS and DMA all run in NIC hardware — and unlike
// Portals the host never takes a single interrupt for it.
TEST(Rdma, RendezvousProgressesWithoutHostOrInterrupts) {
  SimCluster cluster(rdmaMachine(), 2);
  QuietResult r0, r1;
  cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 100_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 100_ms, r1));
  cluster.run();
  EXPECT_TRUE(r0.recvDoneDuringSilence);
  EXPECT_TRUE(r1.recvDoneDuringSilence);
  EXPECT_TRUE(r0.sendDoneDuringSilence);
  EXPECT_TRUE(r1.sendDoneDuringSilence);
  EXPECT_TRUE(cluster.endpoint(0).applicationOffload());
  EXPECT_DOUBLE_EQ(cluster.cpu(0).isrTime(), 0.0);
  EXPECT_EQ(cluster.cpu(0).interruptsRaised(), 0u);
  EXPECT_EQ(cluster.cpu(1).interruptsRaised(), 0u);
}

// Pre-posted receives are matched in hardware (no fallback); a send
// racing ahead of the receive post lands in host bounce buffers instead
// and is counted as an unexpected fallback.
TEST(Rdma, HardwareMatchVsUnexpectedFallback) {
  {
    SimCluster cluster(rdmaMachine(), 2);
    QuietResult r0, r1;
    cluster.launch(0, quietProbe(cluster.proc(0), 10_KB, 50_ms, r0));
    cluster.launch(1, quietProbe(cluster.proc(1), 10_KB, 50_ms, r1));
    cluster.run();
    EXPECT_EQ(rdmaEndpoint(cluster, 0).unexpectedFallbacks(), 0u);
    EXPECT_EQ(rdmaEndpoint(cluster, 1).unexpectedFallbacks(), 0u);
  }
  {
    SimCluster cluster(rdmaMachine(), 2);
    auto eagerSender = [](SimProc& p) -> Task<void> {
      co_await p.mpi().send(p.mpi().world(), 1, 1, 10_KB);
    };
    auto lateReceiver = [](SimProc& p) -> Task<void> {
      // Let the eager message arrive with no matching receive posted.
      co_await p.simulator().delay(10_ms);
      co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
    };
    cluster.launch(0, eagerSender(cluster.proc(0)));
    cluster.launch(1, lateReceiver(cluster.proc(1)));
    cluster.run();
    EXPECT_EQ(rdmaEndpoint(cluster, 1).unexpectedFallbacks(), 1u);
  }
}

// Lifecycle trace census: posts, hardware matches and the rendezvous
// DMA kick all leave protocol records; the pre-posted path emits no
// unexpected-fallback record.
TEST(Rdma, LifecycleLeavesTraceRecords) {
  SimCluster cluster(rdmaMachine(), 2);
  cluster.enableTracing();
  QuietResult r0, r1;
  cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 50_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 50_ms, r1));
  cluster.run();
  const auto log = cluster.releaseTraceLog();
  ASSERT_NE(log, nullptr);
  std::size_t rndvPosts = 0, hwMatches = 0, dmaKicks = 0, unexpected = 0;
  for (const auto* rec : log->select(sim::TraceCategory::Protocol)) {
    const auto label = log->labelName(rec->label);
    if (label == "rdma-rndv-post") ++rndvPosts;
    if (label == "hw-match") ++hwMatches;
    if (label == "cts->dma") ++dmaKicks;
    if (label == "rdma-unexpected") ++unexpected;
  }
  EXPECT_EQ(rndvPosts, 2u);  // one 100 KB isend per rank
  EXPECT_EQ(hwMatches, 2u);  // each RTS matched in hardware
  EXPECT_EQ(dmaKicks, 2u);   // each CTS kicked an autonomous DMA
  EXPECT_EQ(unexpected, 0u);
}

// NIC-resident reliability: drops are replayed from retained NIC buffers
// with exactly-once delivery and still zero host interrupts.
TEST(Rdma, ExactlyOnceDeliveryUnderDropWithoutInterrupts) {
  auto machine = rdmaMachine();
  machine.fabric.link.fault = net::parseFaultSpec("drop=0.05,burst=2,seed=3");
  SimCluster cluster(machine, 2);
  const int count = 20;
  const Bytes size = 40_KB;
  cluster.launch(0, sendMany(cluster.proc(0), count, size));
  cluster.launch(1, recvMany(cluster.proc(1), count, size));
  cluster.run();
  EXPECT_EQ(cluster.mpi(1).bytesReceived(), count * size);
  const auto fc = cluster.faultCounters();
  EXPECT_GT(fc.dropsInjected, 0u);
  EXPECT_GT(fc.retransmits, 0u);
  EXPECT_GT(fc.timeoutWakeups, 0u);
  EXPECT_EQ(cluster.cpu(0).interruptsRaised(), 0u);
  EXPECT_EQ(cluster.cpu(1).interruptsRaised(), 0u);
}

// --sim-jobs N is a pure scheduling change: sharded runs reproduce the
// serial core bit for bit, latency tails included.
TEST(Rdma, ShardedPollingMatchesSerialBitIdentical) {
  auto params = bench::presets::pollingBase(100_KB);
  params.targetDuration = 3e-3;
  params.maxPolls = 5'000;
  bench::RunOptions sharded;
  sharded.simJobs = 2;
  const auto a = bench::runPollingPoint(rdmaMachine(), params);
  const auto b = bench::runPollingPoint(rdmaMachine(), params, sharded);
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_EQ(a.recvTail.p999, b.recvTail.p999);
  EXPECT_EQ(a.sendTail.p99, b.sendTail.p99);
}

// ---- [rdma] machine-file section ------------------------------------------

MachineConfig parse(const std::string& text) {
  std::istringstream in(text);
  return parseMachineFile(in, "test.ini");
}

TEST(RdmaMachineFile, StackKeySelectsPresetAndSectionBinds) {
  const auto m = parse(R"(
stack = rdma
[rdma]
eager_threshold_kb = 64
post_overhead_us = 2
lib_call_cost_us = 0.25
match_delay_us = 0.8
per_frag_tx_us = 0.3
unexpected_copy_MBps = 800
)");
  EXPECT_EQ(m.kind, TransportKind::Rdma);
  EXPECT_EQ(m.rdma.eagerThreshold, 64u * 1024u);
  EXPECT_DOUBLE_EQ(m.rdma.postOverhead, 2e-6);
  EXPECT_DOUBLE_EQ(m.rdma.libCallCost, 0.25e-6);
  EXPECT_DOUBLE_EQ(m.rdma.matchDelay, 0.8e-6);
  EXPECT_DOUBLE_EQ(m.rdma.nic.perFragTx, 0.3e-6);
  EXPECT_DOUBLE_EQ(m.rdma.unexpectedCopyRate, 800e6);
}

TEST(RdmaMachineFile, TransportKeyAcceptsRdmaToo) {
  const auto m = parse("transport = rdma\n");
  EXPECT_EQ(m.kind, TransportKind::Rdma);
  EXPECT_EQ(m.name, "rdma");
}

TEST(RdmaMachineFile, UnknownRdmaKeyIsAConfigError) {
  EXPECT_THROW(parse("stack = rdma\n[rdma]\nquantum_tunnel = 1\n"),
               ConfigError);
}

TEST(RdmaMachineFile, UnknownStackIsAConfigError) {
  EXPECT_THROW(parse("stack = carrier_pigeon\n"), ConfigError);
}

}  // namespace
}  // namespace comb::backend
