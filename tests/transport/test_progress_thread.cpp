// Progress-thread stack contracts: software application offload (the
// engine drives the GM protocol while the application is silent), the
// placement cost model (dedicated core free vs oversubscribed preemption),
// trace lifecycle spans, fault recovery in engine context, sharded-core
// bit-identity, and the [progress] machine-file section.
#include "transport/progress_thread.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "backend/machine.hpp"
#include "backend/machine_file.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"
#include "net/fault.hpp"
#include "sim/tracelog.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Request;
using sim::Task;

struct QuietResult {
  bool recvDoneDuringSilence = false;
  bool sendDoneDuringSilence = false;
};

Task<void> quietProbe(SimProc& p, Bytes bytes, Time quiet, QuietResult& out) {
  const int peer = 1 - p.rank();
  Request rx = co_await p.mpi().irecv(p.mpi().world(), peer, 1, bytes);
  Request tx = co_await p.mpi().isend(p.mpi().world(), peer, 1, bytes);
  co_await p.simulator().delay(quiet);
  out.recvDoneDuringSilence = p.mpi().peekDone(rx);
  out.sendDoneDuringSilence = p.mpi().peekDone(tx);
  co_await p.mpi().wait(rx);
  co_await p.mpi().wait(tx);
}

Task<void> sendMany(SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().send(p.mpi().world(), 1, i, size);
}

Task<void> recvMany(SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().recv(p.mpi().world(), 0, i, size);
}

const transport::ProgressThreadEndpoint& ptEndpoint(SimCluster& c, int rank) {
  return static_cast<const transport::ProgressThreadEndpoint&>(
      c.endpoint(rank));
}

// The software-offload contract: a 100 KB rendezvous — which stalls
// forever on plain GM without library calls — completes during radio
// silence, because the engine answers the CTS and kicks the DMA.
TEST(ProgressThread, RendezvousProgressesWithoutLibraryCalls) {
  for (const auto& machine :
       {progressThreadMachine(), progressOversubMachine()}) {
    SCOPED_TRACE(machine.name);
    SimCluster cluster(machine, 2);
    QuietResult r0, r1;
    cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 100_ms, r0));
    cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 100_ms, r1));
    cluster.run();
    EXPECT_TRUE(r0.recvDoneDuringSilence);
    EXPECT_TRUE(r1.recvDoneDuringSilence);
    EXPECT_TRUE(r0.sendDoneDuringSilence);
    EXPECT_TRUE(r1.sendDoneDuringSilence);
    EXPECT_TRUE(cluster.endpoint(0).applicationOffload());
    EXPECT_GT(ptEndpoint(cluster, 0).engineWakeups(), 0u);
  }
}

// Placement cost model: a dedicated engine core leaves the application
// CPU untouched (no preemption at all); an oversubscribed engine charges
// its cycles through the application CPU's interrupt path.
TEST(ProgressThread, PlacementDecidesWhoPaysForTheEngine) {
  {
    SimCluster dedicated(progressThreadMachine(), 2);
    QuietResult a, b;
    dedicated.launch(0, quietProbe(dedicated.proc(0), 300_KB, 200_ms, a));
    dedicated.launch(1, quietProbe(dedicated.proc(1), 300_KB, 200_ms, b));
    dedicated.run();
    EXPECT_DOUBLE_EQ(dedicated.cpu(0).isrTime(), 0.0);
    EXPECT_EQ(dedicated.cpu(0).interruptsRaised(), 0u);
    // The engine core did real protocol work.
    EXPECT_GT(dedicated.cpu(0, 1).userTime(), 0.0);
  }
  {
    SimCluster oversub(progressOversubMachine(), 2);
    QuietResult a, b;
    oversub.launch(0, quietProbe(oversub.proc(0), 300_KB, 200_ms, a));
    oversub.launch(1, quietProbe(oversub.proc(1), 300_KB, 200_ms, b));
    oversub.run();
    // Engine cycles preempt the application core.
    EXPECT_GT(oversub.cpu(0).isrTime(), 0.0);
  }
}

// Lifecycle trace census: every engine wakeup opens a "pt-engine"
// protocol span, and the span count matches the wakeup counter.
TEST(ProgressThread, EngineWakeupsLeaveTraceSpans) {
  SimCluster cluster(progressThreadMachine(), 2);
  cluster.enableTracing();
  QuietResult r0, r1;
  cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 50_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 50_ms, r1));
  cluster.run();
  const auto log = cluster.releaseTraceLog();
  ASSERT_NE(log, nullptr);
  std::size_t engineSpans = 0;
  for (const auto* rec : log->select(sim::TraceCategory::Protocol, 0))
    if (log->labelName(rec->label) == "pt-engine" &&
        rec->phase == sim::TracePhase::Begin)
      ++engineSpans;
  EXPECT_EQ(engineSpans, ptEndpoint(cluster, 0).engineWakeups());
  EXPECT_GT(engineSpans, 0u);
}

// Fault recovery happens in engine context: retransmits flow without the
// application making a single library call beyond the posts.
TEST(ProgressThread, ExactlyOnceDeliveryUnderDrop) {
  auto machine = progressThreadMachine();
  machine.fabric.link.fault = net::parseFaultSpec("drop=0.05,burst=2,seed=3");
  SimCluster cluster(machine, 2);
  const int count = 20;
  const Bytes size = 40_KB;
  cluster.launch(0, sendMany(cluster.proc(0), count, size));
  cluster.launch(1, recvMany(cluster.proc(1), count, size));
  cluster.run();
  EXPECT_EQ(cluster.mpi(1).bytesReceived(), count * size);
  const auto fc = cluster.faultCounters();
  EXPECT_GT(fc.dropsInjected, 0u);
  EXPECT_GT(fc.retransmits, 0u);
  EXPECT_GT(fc.timeoutWakeups, 0u);
}

// --sim-jobs N is a pure scheduling change: sharded runs reproduce the
// serial core bit for bit, latency tails included.
TEST(ProgressThread, ShardedPollingMatchesSerialBitIdentical) {
  auto params = bench::presets::pollingBase(100_KB);
  params.targetDuration = 3e-3;
  params.maxPolls = 5'000;
  bench::RunOptions sharded;
  sharded.simJobs = 2;
  const auto a = bench::runPollingPoint(progressThreadMachine(), params);
  const auto b = bench::runPollingPoint(progressThreadMachine(), params,
                                        sharded);
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_EQ(a.recvTail.p999, b.recvTail.p999);
  EXPECT_EQ(a.sendTail.p99, b.sendTail.p99);
}

// ---- [progress] machine-file section -------------------------------------

MachineConfig parse(const std::string& text) {
  std::istringstream in(text);
  return parseMachineFile(in, "test.ini");
}

TEST(ProgressThreadMachineFile, StackKeySelectsPresetAndSectionBinds) {
  const auto m = parse(R"(
stack = progress_thread
[progress]
poll_period_us = 10
wakeup_us = 4
poll_cost_us = 0.5
handoff_us = 0.1
eager_threshold_kb = 32
)");
  EXPECT_EQ(m.kind, TransportKind::ProgressThread);
  EXPECT_TRUE(m.progress.dedicatedCore);
  EXPECT_EQ(m.cpusPerNode, 2);  // dedicated placement brings its own core
  EXPECT_EQ(m.nicCpu, 1);
  EXPECT_DOUBLE_EQ(m.progress.pollPeriod, 10e-6);
  EXPECT_DOUBLE_EQ(m.progress.wakeupLatency, 4e-6);
  EXPECT_DOUBLE_EQ(m.progress.pollCost, 0.5e-6);
  EXPECT_DOUBLE_EQ(m.progress.handoffPenalty, 0.1e-6);
  EXPECT_EQ(m.progress.proto.eagerThreshold, 32u * 1024u);
  // Untouched protocol keys keep GM defaults.
  EXPECT_DOUBLE_EQ(m.progress.proto.libCallCost, 0.7e-6);
}

TEST(ProgressThreadMachineFile, OversubscribedPlacementSharesTheCore) {
  const auto m = parse(R"(
stack = progress_thread
[progress]
placement = oversubscribed
)");
  EXPECT_FALSE(m.progress.dedicatedCore);
  EXPECT_EQ(m.cpusPerNode, 1);
  EXPECT_EQ(m.nicCpu, 0);
}

TEST(ProgressThreadMachineFile, ExplicitHostShapeWinsOverPlacement) {
  const auto m = parse(R"(
stack = progress_thread
[host]
cpus_per_node = 4
nic_cpu = 3
)");
  EXPECT_EQ(m.cpusPerNode, 4);
  EXPECT_EQ(m.nicCpu, 3);
}

TEST(ProgressThreadMachineFile, BadPlacementIsAConfigError) {
  EXPECT_THROW(parse("stack = progress_thread\n"
                     "[progress]\nplacement = sideways\n"),
               ConfigError);
}

TEST(ProgressThreadMachineFile, DedicatedPlacementNeedsAnEngineCore) {
  // The application owns CPU 0; a dedicated engine cannot share it.
  EXPECT_THROW(parse("stack = progress_thread\n"
                     "[host]\ncpus_per_node = 1\nnic_cpu = 0\n"),
               ConfigError);
}

TEST(ProgressThreadMachineFile, UnknownProgressKeyIsAConfigError) {
  EXPECT_THROW(parse("stack = progress_thread\n"
                     "[progress]\nspin_forever = 1\n"),
               ConfigError);
}

}  // namespace
}  // namespace comb::backend
