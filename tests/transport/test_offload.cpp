// The behavioural contracts that distinguish the two transports — the
// properties COMB exists to detect, asserted directly at the stack level.
#include <gtest/gtest.h>

#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Request;
using sim::Task;

// Helper: both ranks post one send and one recv of `bytes` toward each
// other, then go quiet (no MPI calls) for `quiet`, recording whether their
// requests completed during the silence; then both finish with waits.
struct QuietResult {
  bool recvDoneDuringSilence = false;
  bool sendDoneDuringSilence = false;
};

Task<void> quietProbe(SimProc& p, Bytes bytes, Time quiet, QuietResult& out) {
  const int peer = 1 - p.rank();
  Request rx = co_await p.mpi().irecv(p.mpi().world(), peer, 1, bytes);
  Request tx = co_await p.mpi().isend(p.mpi().world(), peer, 1, bytes);
  // Radio silence: the work phase of PWW. No library calls at all.
  co_await p.simulator().delay(quiet);
  out.recvDoneDuringSilence = p.mpi().peekDone(rx);
  out.sendDoneDuringSilence = p.mpi().peekDone(tx);
  co_await p.mpi().wait(rx);
  co_await p.mpi().wait(tx);
}

TEST(Offload, PortalsProgressesWithoutLibraryCalls) {
  SimCluster cluster(portalsMachine(), 2);
  QuietResult r0, r1;
  cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 100_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 100_ms, r1));
  cluster.run();
  EXPECT_TRUE(r0.recvDoneDuringSilence);
  EXPECT_TRUE(r1.recvDoneDuringSilence);
  EXPECT_TRUE(r0.sendDoneDuringSilence);
  EXPECT_TRUE(r1.sendDoneDuringSilence);
  EXPECT_TRUE(cluster.endpoint(0).applicationOffload());
}

TEST(Offload, GmRendezvousStallsWithoutLibraryCalls) {
  SimCluster cluster(gmMachine(), 2);
  QuietResult r0, r1;
  // 100 KB > 16 KB eager threshold: rendezvous. The RTS/CTS handshake
  // needs library calls neither side makes during the silence.
  cluster.launch(0, quietProbe(cluster.proc(0), 100_KB, 100_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 100_KB, 100_ms, r1));
  cluster.run();
  EXPECT_FALSE(r0.recvDoneDuringSilence);
  EXPECT_FALSE(r1.recvDoneDuringSilence);
  EXPECT_FALSE(r0.sendDoneDuringSilence);
  EXPECT_FALSE(r1.sendDoneDuringSilence);
  EXPECT_FALSE(cluster.endpoint(0).applicationOffload());
}

TEST(Offload, GmEagerSendCompletesLocallyAtPost) {
  SimCluster cluster(gmMachine(), 2);
  QuietResult r0, r1;
  // 10 KB < eager threshold: the send buffer is copied at post time, so
  // the SEND completes during silence; the RECEIVE still needs a library
  // call to match and copy out.
  cluster.launch(0, quietProbe(cluster.proc(0), 10_KB, 100_ms, r0));
  cluster.launch(1, quietProbe(cluster.proc(1), 10_KB, 100_ms, r1));
  cluster.run();
  EXPECT_TRUE(r0.sendDoneDuringSilence);
  EXPECT_TRUE(r1.sendDoneDuringSilence);
  EXPECT_FALSE(r0.recvDoneDuringSilence);
  EXPECT_FALSE(r1.recvDoneDuringSilence);
}

TEST(Offload, GmSmallSendPostIsExpensive) {
  // The paper: ~45 us in the non-blocking send for <16 KB messages vs
  // ~5 us for large ones (eager copy vs descriptor-only).
  SimCluster cluster(gmMachine(), 2);
  Time smallPost = 0, largePost = 0;
  auto prober = [](SimProc& p, Time& small, Time& large) -> Task<void> {
    Time t0 = p.wtime();
    Request a = co_await p.mpi().isend(p.mpi().world(), 1, 1, 10_KB);
    small = p.wtime() - t0;
    t0 = p.wtime();
    Request b = co_await p.mpi().isend(p.mpi().world(), 1, 2, 100_KB);
    large = p.wtime() - t0;
    co_await p.mpi().wait(a);
    co_await p.mpi().wait(b);
  };
  auto receiver = [](SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
    co_await p.mpi().recv(p.mpi().world(), 0, 2, 100_KB);
  };
  cluster.launch(0, prober(cluster.proc(0), smallPost, largePost));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_NEAR(smallPost, 45_us, 15_us);   // ~45 us per the paper
  EXPECT_NEAR(largePost, 5_us, 3_us);     // ~5 us per the paper
  EXPECT_GT(smallPost, 5.0 * largePost);
}

TEST(Offload, PortalsPostIsExpensive) {
  // Paper Fig 10: Portals posts cost ~150-180 us each.
  SimCluster cluster(portalsMachine(), 2);
  Time postTime = 0;
  auto prober = [](SimProc& p, Time& post) -> Task<void> {
    const Time t0 = p.wtime();
    Request r = co_await p.mpi().irecv(p.mpi().world(), 1, 1, 100_KB);
    post = p.wtime() - t0;
    co_await p.mpi().cancel(r);
  };
  auto idle = [](SimProc&) -> Task<void> { co_return; };
  cluster.launch(0, prober(cluster.proc(0), postTime));
  cluster.launch(1, idle(cluster.proc(1)));
  cluster.run();
  // Quiet-machine post cost; with interrupt load from flowing traffic it
  // inflates into the paper's ~150-200 us range (asserted by the PWW
  // figure tests).
  EXPECT_GT(postTime, 50_us);
  EXPECT_LT(postTime, 300_us);
}

TEST(Offload, PortalsTransferStealsCpu) {
  // While a Portals transfer runs during the quiet phase, ISR time
  // accumulates on both hosts; on GM it must be exactly zero.
  SimCluster portals(portalsMachine(), 2);
  QuietResult a, b;
  portals.launch(0, quietProbe(portals.proc(0), 300_KB, 200_ms, a));
  portals.launch(1, quietProbe(portals.proc(1), 300_KB, 200_ms, b));
  portals.run();
  EXPECT_GT(portals.cpu(0).isrTime(), 0.0);
  EXPECT_GT(portals.cpu(1).isrTime(), 0.0);
  EXPECT_GT(portals.cpu(0).interruptsRaised(), 70u);  // ~75 fragments

  SimCluster gm(gmMachine(), 2);
  QuietResult c, d;
  gm.launch(0, quietProbe(gm.proc(0), 300_KB, 200_ms, c));
  gm.launch(1, quietProbe(gm.proc(1), 300_KB, 200_ms, d));
  gm.run();
  EXPECT_DOUBLE_EQ(gm.cpu(0).isrTime(), 0.0);
  EXPECT_EQ(gm.cpu(0).interruptsRaised(), 0u);
}

// The paper's §4.3 experiment in miniature. The PWW support side waits
// immediately (continuous library calls); the worker makes no calls
// during its work phase. Without a mid-work MPI_Test, the rendezvous data
// cannot move until the worker's wait — the wait phase is ~the full
// transfer time. With a single early MPI_Test, the handshake completes
// and the NIC streams data during the (long) work phase, leaving a near-
// empty wait.
namespace {

Task<void> gmWorkerSide(SimProc& p, bool insertTest, Time& waitDuration) {
  Request rx = co_await p.mpi().irecv(p.mpi().world(), 1, 1, 100_KB);
  Request tx = co_await p.mpi().isend(p.mpi().world(), 1, 1, 100_KB);
  co_await p.simulator().delay(5_ms);  // early in the work phase
  if (insertTest) co_await p.mpi().progressOnce();
  co_await p.simulator().delay(45_ms);  // rest of the work phase
  const Time t0 = p.wtime();
  co_await p.mpi().wait(rx);
  co_await p.mpi().wait(tx);
  waitDuration = p.wtime() - t0;
}

Task<void> gmSupportSide(SimProc& p) {
  Request rx = co_await p.mpi().irecv(p.mpi().world(), 0, 1, 100_KB);
  Request tx = co_await p.mpi().isend(p.mpi().world(), 0, 1, 100_KB);
  co_await p.mpi().wait(rx);
  co_await p.mpi().wait(tx);
}

}  // namespace

TEST(Offload, OneMpiTestDuringWorkDrainsGmWaitPhase) {
  Time waitPlain = 0, waitWithTest = 0;
  {
    SimCluster cluster(gmMachine(), 2);
    cluster.launch(0, gmWorkerSide(cluster.proc(0), false, waitPlain));
    cluster.launch(1, gmSupportSide(cluster.proc(1)));
    cluster.run();
  }
  {
    SimCluster cluster(gmMachine(), 2);
    cluster.launch(0, gmWorkerSide(cluster.proc(0), true, waitWithTest));
    cluster.launch(1, gmSupportSide(cluster.proc(1)));
    cluster.run();
  }
  // Plain PWW: the wait must cover both 100 KB transfers (~1.1 ms each
  // way at ~90 MB/s); with the test, data moved during the work phase.
  EXPECT_GT(waitPlain, 1e-3);
  EXPECT_LT(waitWithTest, 0.3e-3);
  EXPECT_GT(waitPlain, 5.0 * waitWithTest);
}

}  // namespace
}  // namespace comb::backend
