#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace comb {
namespace {

TEST(StrFormat, Basic) {
  EXPECT_EQ(strFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(strFormat("%s", ""), "");
  EXPECT_EQ(strFormat("plain"), "plain");
}

TEST(StrFormat, LongOutput) {
  const std::string s = strFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-f", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("", "a"));
}

TEST(FmtBytes, PicksLargestExactUnit) {
  EXPECT_EQ(fmtBytes(10 * 1024), "10 KB");
  EXPECT_EQ(fmtBytes(300 * 1024), "300 KB");
  EXPECT_EQ(fmtBytes(2 * 1024 * 1024), "2 MB");
  EXPECT_EQ(fmtBytes(1536), "1536 B");  // not an exact KB multiple
  EXPECT_EQ(fmtBytes(0), "0 B");
}

TEST(FmtTime, PicksUnit) {
  EXPECT_EQ(fmtTime(2.5), "2.500 s");
  EXPECT_EQ(fmtTime(3e-3), "3.000 ms");
  EXPECT_EQ(fmtTime(45e-6), "45.000 us");
  EXPECT_EQ(fmtTime(7e-9), "7.0 ns");
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
  EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace comb
