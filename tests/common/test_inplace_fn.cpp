// InplaceFn: the no-allocation callable backing every scheduled event.
// Covers move-only captures, exact destruction counts across moves and
// resets, and the compile-time capacity probe (is_constructible doubles
// as the "does this closure fit" check).
#include "sim/inplace_fn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <utility>

namespace comb::sim {
namespace {

TEST(InplaceFn, InvokesAndReportsEmptiness) {
  InplaceFn<64> empty;
  EXPECT_FALSE(static_cast<bool>(empty));

  int calls = 0;
  InplaceFn<64> fn = [&calls] { ++calls; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFn, HoldsMoveOnlyCaptures) {
  auto box = std::make_unique<int>(41);
  InplaceFn<64> fn = [b = std::move(box)] { ++*b; };
  InplaceFn<64> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  moved();
  moved();
  // The capture travelled with the move and is still alive here; nothing
  // observable beyond "no crash, no double-free" — ASan/valgrind guard it.
  EXPECT_TRUE(static_cast<bool>(moved));
}

struct Counted {
  static int constructed;
  static int destroyed;
  Counted() { ++constructed; }
  Counted(const Counted&) { ++constructed; }
  Counted(Counted&&) noexcept { ++constructed; }
  ~Counted() { ++destroyed; }
  void operator()() const {}
};
int Counted::constructed = 0;
int Counted::destroyed = 0;

TEST(InplaceFn, DestroysExactlyWhatItConstructs) {
  Counted::constructed = 0;
  Counted::destroyed = 0;
  {
    InplaceFn<64> a = Counted{};
    InplaceFn<64> b = std::move(a);   // relocation constructs + destroys
    b();
    b = Counted{};                    // assignment destroys the old callable
    InplaceFn<64> c;
    c = std::move(b);
    c.reset();
    EXPECT_EQ(Counted::destroyed, Counted::constructed);  // nothing live
    InplaceFn<64> d = Counted{};      // destroyed by scope exit
    EXPECT_EQ(Counted::destroyed + 1, Counted::constructed);
  }
  EXPECT_EQ(Counted::constructed, Counted::destroyed);
  EXPECT_GT(Counted::constructed, 0);
}

TEST(InplaceFn, ResetIsIdempotentAndEmptiesTheFn) {
  Counted::constructed = 0;
  Counted::destroyed = 0;
  InplaceFn<64> fn = Counted{};
  fn.reset();
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(Counted::constructed, Counted::destroyed);
}

// ---- compile-time capacity probe ---------------------------------------

struct SmallFn {
  char pad[16];
  void operator()() const {}
};
struct BigFn {
  char pad[128];
  void operator()() const {}
};
struct ThrowingMoveFn {
  ThrowingMoveFn() = default;
  ThrowingMoveFn(ThrowingMoveFn&&) noexcept(false) {}
  void operator()() const {}
};
struct WrongSignatureFn {
  void operator()(int) const {}
};

static_assert(std::is_constructible_v<InplaceFn<16>, SmallFn>,
              "a 16-byte callable must fit a 16-byte buffer");
static_assert(!std::is_constructible_v<InplaceFn<16>, BigFn>,
              "oversized captures must be rejected at compile time");
static_assert(std::is_constructible_v<InplaceFn<128>, BigFn>,
              "the same callable fits once the capacity is raised");
static_assert(!std::is_constructible_v<InplaceFn<64>, ThrowingMoveFn>,
              "slot relocation requires nothrow move");
static_assert(!std::is_constructible_v<InplaceFn<64>, WrongSignatureFn>,
              "only void() callables are events");
static_assert(!std::is_copy_constructible_v<InplaceFn<64>> &&
                  !std::is_copy_assignable_v<InplaceFn<64>>,
              "InplaceFn is move-only");
static_assert(InplaceFn<64>::fits<SmallFn> && !InplaceFn<64>::fits<BigFn>,
              "fits<> mirrors the constructor constraint");

TEST(InplaceFn, CapacityProbeMatchesRuntimeBehaviour) {
  // The static_asserts above are the real test; this keeps them anchored
  // to a runtime TU so the file registers with ctest.
  InplaceFn<16> fn = SmallFn{};
  fn();
  SUCCEED();
}

}  // namespace
}  // namespace comb::sim
