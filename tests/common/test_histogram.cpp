#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace comb {
namespace {

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(0.99);  // bin 0
  h.add(5.0);   // bin 5
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 12.0);
  EXPECT_DOUBLE_EQ(h.binLow(4), 18.0);
  EXPECT_DOUBLE_EQ(h.binHigh(4), 20.0);
}

TEST(Histogram, ClearResets) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(5.0);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) h.add(0.5);
  h.add(1.5);
  const auto s = h.str(8);
  EXPECT_NE(s.find("########"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
}

TEST(Histogram, MergeSameLayoutIsBinwise) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  b.add(7.5);
  b.add(-1.0);
  b.add(42.0);
  EXPECT_TRUE(a.sameLayout(b));
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(7), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

// Regression: merging mismatched layouts used to be a silent assumption
// (bin-wise addition over different ranges). Now it rebuckets by source
// bin midpoint and preserves every count.
TEST(Histogram, MergeMismatchedLayoutRebuckets) {
  Histogram dst(0.0, 100.0, 10);  // 10-wide bins
  Histogram src(0.0, 50.0, 50);   // 1-wide bins over half the range
  EXPECT_FALSE(dst.sameLayout(src));
  for (int i = 0; i < 50; ++i) src.add(static_cast<double>(i) + 0.25);
  dst.merge(src);
  // Every source bin midpoint lands inside [0, 50) → dst bins 0..4.
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(dst.count(b), 10u) << b;
  for (std::size_t b = 5; b < 10; ++b) EXPECT_EQ(dst.count(b), 0u) << b;
  EXPECT_EQ(dst.underflow(), 0u);
  EXPECT_EQ(dst.overflow(), 0u);
  EXPECT_EQ(dst.total(), 50u);
}

TEST(Histogram, MergeRebucketRoutesOutOfRangeToOverflow) {
  Histogram dst(10.0, 20.0, 5);
  Histogram src(0.0, 40.0, 4);  // midpoints 5, 15, 25, 35
  src.add(1.0);
  src.add(12.0);
  src.add(22.0);
  src.add(39.0);
  dst.merge(src);
  EXPECT_EQ(dst.underflow(), 1u);  // midpoint 5 < 10
  EXPECT_EQ(dst.overflow(), 2u);   // midpoints 25 and 35 >= 20
  EXPECT_EQ(dst.count(2), 1u);     // midpoint 15 → [14, 16)
  EXPECT_EQ(dst.total(), 4u);
}

TEST(Histogram, MergeRebucketPreservesCountsUnderSplit) {
  // Recording a stream into one histogram vs splitting it across two
  // differently-shaped parts and merging: totals must agree.
  Histogram whole(0.0, 1.0, 8);
  Histogram partA(0.0, 1.0, 8);
  Histogram partB(0.0, 2.0, 64);
  for (int i = 0; i < 256; ++i) {
    const double x = static_cast<double>(i % 100) / 100.0;
    whole.add(x);
    (i % 2 ? partA : partB).add(x);
  }
  partA.merge(partB);
  EXPECT_EQ(partA.total(), whole.total());
  std::size_t inBins = 0;
  for (std::size_t b = 0; b < partA.bins(); ++b) inBins += partA.count(b);
  EXPECT_EQ(inBins + partA.underflow() + partA.overflow(), whole.total());
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

}  // namespace
}  // namespace comb
