#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace comb {
namespace {

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(0.99);  // bin 0
  h.add(5.0);   // bin 5
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 12.0);
  EXPECT_DOUBLE_EQ(h.binLow(4), 18.0);
  EXPECT_DOUBLE_EQ(h.binHigh(4), 20.0);
}

TEST(Histogram, ClearResets) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(5.0);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) h.add(0.5);
  h.add(1.5);
  const auto s = h.str(8);
  EXPECT_NE(s.find("########"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

}  // namespace
}  // namespace comb
