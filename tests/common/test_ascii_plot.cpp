#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace comb {
namespace {

PlotSeries line(const std::string& name, double x0, double x1, int n,
                double a, double b) {
  PlotSeries s;
  s.name = name;
  for (int i = 0; i < n; ++i) {
    const double x = x0 + (x1 - x0) * i / (n - 1);
    s.xs.push_back(x);
    s.ys.push_back(a + b * x);
  }
  return s;
}

TEST(AsciiPlot, RendersMarkersAndLegend) {
  PlotOptions opts;
  opts.title = "test plot";
  const auto out = plotToString({line("up", 0, 10, 20, 0, 1)}, opts);
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("o = up"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, TwoSeriesGetDistinctMarkers) {
  PlotOptions opts;
  const auto out = plotToString(
      {line("a", 0, 10, 5, 0, 1), line("b", 0, 10, 5, 10, -1)}, opts);
  EXPECT_NE(out.find("o = a"), std::string::npos);
  EXPECT_NE(out.find("x = b"), std::string::npos);
}

TEST(AsciiPlot, LogXSkipsNonPositive) {
  PlotSeries s;
  s.name = "log";
  s.xs = {0.0, -1.0, 10.0, 100.0, 1000.0};
  s.ys = {1.0, 1.0, 1.0, 2.0, 3.0};
  PlotOptions opts;
  opts.logX = true;
  const auto out = plotToString({s}, opts);
  // Tick labels rendered in scientific form for log axes.
  EXPECT_NE(out.find("1e+01"), std::string::npos);
  EXPECT_NE(out.find("1e+03"), std::string::npos);
}

TEST(AsciiPlot, EmptyDataHandled) {
  const auto out = plotToString({}, PlotOptions{});
  EXPECT_NE(out.find("no plottable data"), std::string::npos);
}

TEST(AsciiPlot, DegenerateSinglePoint) {
  PlotSeries s;
  s.name = "pt";
  s.xs = {5.0};
  s.ys = {7.0};
  const auto out = plotToString({s}, PlotOptions{});
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, YClampApplies) {
  PlotOptions opts;
  opts.ymin = 0.0;
  opts.ymax = 1.0;
  auto s = line("avail", 0, 10, 11, 0, 0.05);
  const auto out = plotToString({s}, opts);
  // Top tick label should be the clamp, not the data max (0.5).
  EXPECT_NE(out.find("1|"), std::string::npos);
}

TEST(AsciiPlot, TooSmallAreaThrows) {
  PlotOptions opts;
  opts.width = 2;
  EXPECT_THROW(plotToString({}, opts), ConfigError);
}

TEST(AsciiPlot, MismatchedSeriesThrows) {
  PlotSeries s;
  s.name = "bad";
  s.xs = {1.0, 2.0};
  s.ys = {1.0};
  EXPECT_THROW(plotToString({s}, PlotOptions{}), ConfigError);
}

}  // namespace
}  // namespace comb
