#include "common/log.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace comb::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { setLevel(saved_); }

 private:
  Level saved_;
};

TEST(Log, ParseLevelRoundTrips) {
  for (const Level lvl : {Level::Trace, Level::Debug, Level::Info,
                          Level::Warn, Level::Error, Level::Off}) {
    std::string name = levelName(lvl);
    for (auto& c : name) c = static_cast<char>(std::tolower(c));
    EXPECT_EQ(parseLevel(name), lvl);
  }
}

TEST(Log, ParseUnknownThrows) {
  EXPECT_THROW(parseLevel("verbose"), ConfigError);
  EXPECT_THROW(parseLevel(""), ConfigError);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  setLevel(Level::Error);
  EXPECT_EQ(level(), Level::Error);
  setLevel(Level::Trace);
  EXPECT_EQ(level(), Level::Trace);
}

TEST(Log, DisabledLevelDoesNotEvaluateStream) {
  LogLevelGuard guard;
  setLevel(Level::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  COMB_LOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  COMB_LOG(Error) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, LevelOrderingIsSane) {
  EXPECT_LT(static_cast<int>(Level::Trace), static_cast<int>(Level::Debug));
  EXPECT_LT(static_cast<int>(Level::Debug), static_cast<int>(Level::Info));
  EXPECT_LT(static_cast<int>(Level::Info), static_cast<int>(Level::Warn));
  EXPECT_LT(static_cast<int>(Level::Warn), static_cast<int>(Level::Error));
  EXPECT_LT(static_cast<int>(Level::Error), static_cast<int>(Level::Off));
}

}  // namespace
}  // namespace comb::log
