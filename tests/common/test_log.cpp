#include "common/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace comb::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { setLevel(saved_); }

 private:
  Level saved_;
};

/// Captures messages for the duration of a test, restoring the default
/// stderr sink afterwards. The internal vector is guarded because the
/// logger may deliver from worker threads.
class CaptureSink {
 public:
  CaptureSink() {
    setSink([this](Level lvl, const std::string& text) {
      std::lock_guard<std::mutex> lock(mu_);
      messages_.push_back({lvl, text});
    });
  }
  ~CaptureSink() { setSink(nullptr); }

  std::vector<std::pair<Level, std::string>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<Level, std::string>> messages_;
};

TEST(Log, ParseLevelRoundTrips) {
  for (const Level lvl : {Level::Trace, Level::Debug, Level::Info,
                          Level::Warn, Level::Error, Level::Off}) {
    std::string name = levelName(lvl);
    for (auto& c : name) c = static_cast<char>(std::tolower(c));
    EXPECT_EQ(parseLevel(name), lvl);
  }
}

TEST(Log, ParseUnknownThrows) {
  EXPECT_THROW(parseLevel("verbose"), ConfigError);
  EXPECT_THROW(parseLevel(""), ConfigError);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  setLevel(Level::Error);
  EXPECT_EQ(level(), Level::Error);
  setLevel(Level::Trace);
  EXPECT_EQ(level(), Level::Trace);
}

TEST(Log, DisabledLevelDoesNotEvaluateStream) {
  LogLevelGuard guard;
  setLevel(Level::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  COMB_LOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  COMB_LOG(Error) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, SinkReceivesFormattedMessages) {
  LogLevelGuard guard;
  setLevel(Level::Info);
  CaptureSink sink;
  COMB_LOG(Info) << "hello " << 42;
  COMB_LOG(Debug) << "filtered out";
  const auto msgs = sink.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].first, Level::Info);
  EXPECT_NE(msgs[0].second.find("hello 42"), std::string::npos);
  EXPECT_NE(msgs[0].second.find("[INFO]"), std::string::npos);
  EXPECT_EQ(msgs[0].second.back(), '\n');
}

TEST(Log, NullSinkRestoresDefault) {
  // Must not crash or deliver to a stale sink after reset.
  setSink(nullptr);
  LogLevelGuard guard;
  setLevel(Level::Off);
  COMB_LOG(Error) << "discarded";
}

TEST(Log, ConcurrentMessagesNeverInterleave) {
  // The parallel sweep executor logs from pool threads; each message must
  // arrive at the sink whole. 8 threads × 50 messages, each tagged with
  // its thread id and sequence — every captured line must parse back
  // exactly.
  LogLevelGuard guard;
  setLevel(Level::Info);
  CaptureSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        COMB_LOG(Info) << "msg t=" << t << " i=" << i << " end";
    });
  }
  for (auto& th : threads) th.join();
  const auto msgs = sink.take();
  ASSERT_EQ(msgs.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kPerThread, false));
  for (const auto& [lvl, text] : msgs) {
    EXPECT_EQ(lvl, Level::Info);
    int t = -1, i = -1;
    const auto at = text.find("msg t=");
    ASSERT_NE(at, std::string::npos) << "mangled message: " << text;
    ASSERT_EQ(std::sscanf(text.c_str() + at, "msg t=%d i=%d end", &t, &i), 2)
        << "interleaved message: " << text;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kPerThread);
    EXPECT_FALSE(seen[t][i]) << "duplicate t=" << t << " i=" << i;
    seen[t][i] = true;
  }
}

TEST(Log, LevelOrderingIsSane) {
  EXPECT_LT(static_cast<int>(Level::Trace), static_cast<int>(Level::Debug));
  EXPECT_LT(static_cast<int>(Level::Debug), static_cast<int>(Level::Info));
  EXPECT_LT(static_cast<int>(Level::Info), static_cast<int>(Level::Warn));
  EXPECT_LT(static_cast<int>(Level::Warn), static_cast<int>(Level::Error));
  EXPECT_LT(static_cast<int>(Level::Error), static_cast<int>(Level::Off));
}

}  // namespace
}  // namespace comb::log
