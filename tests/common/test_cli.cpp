#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace comb {
namespace {

ArgParser makeParser() {
  ArgParser p("prog", "test program");
  p.addFlag("csv", "emit csv");
  p.addOption("size", "message size", "100");
  p.addOption("name", "series name", "default");
  return p;
}

TEST(Cli, DefaultsApply) {
  auto p = makeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("csv"));
  EXPECT_EQ(p.integer("size"), 100);
  EXPECT_EQ(p.str("name"), "default");
}

TEST(Cli, SeparateValueForm) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--size", "300", "--csv"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_TRUE(p.flag("csv"));
  EXPECT_EQ(p.integer("size"), 300);
}

TEST(Cli, EqualsForm) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--size=42", "--name=gm"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.integer("size"), 42);
  EXPECT_EQ(p.str("name"), "gm");
}

TEST(Cli, PositionalCollected) {
  auto p = makeParser();
  const char* argv[] = {"prog", "pos1", "--csv", "pos2"};
  ASSERT_TRUE(p.parse(4, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "pos1");
  EXPECT_EQ(p.positional()[1], "pos2");
}

TEST(Cli, UnknownOptionThrows) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Cli, MissingValueThrows) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--size"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Cli, FlagWithValueThrows) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--csv=yes"};
  EXPECT_THROW(p.parse(2, argv), ConfigError);
}

TEST(Cli, BadIntegerThrows) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--size", "ten"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW(p.integer("size"), ConfigError);
}

TEST(Cli, RealParsing) {
  ArgParser p("prog", "d");
  p.addOption("frac", "fraction", "0.5");
  const char* argv[] = {"prog", "--frac", "0.25"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.real("frac"), 0.25);
}

TEST(Cli, HelpReturnsFalse) {
  auto p = makeParser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, HelpTextListsOptions) {
  auto p = makeParser();
  const auto help = p.helpText();
  EXPECT_NE(help.find("--csv"), std::string::npos);
  EXPECT_NE(help.find("--size"), std::string::npos);
  EXPECT_NE(help.find("default: 100"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  ArgParser p("prog", "d");
  p.addFlag("x", "flag");
  EXPECT_THROW(p.addOption("x", "opt", ""), ConfigError);
}

}  // namespace
}  // namespace comb
