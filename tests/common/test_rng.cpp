#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace comb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
  // Should come close to both ends over 10k draws.
  EXPECT_LT(lo, -2.5);
  EXPECT_GT(hi, 6.5);
}

TEST(Rng, BelowCoversRangeWithoutBias) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    // Expected 10000 each; allow 5% deviation.
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, MeanOfUniformApproachesHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

}  // namespace
}  // namespace comb
