#include "common/units.hpp"

#include <gtest/gtest.h>

namespace comb {
namespace {

using namespace comb::units;

TEST(Units, TimeLiterals) {
  EXPECT_DOUBLE_EQ(1.5_s, 1.5);
  EXPECT_DOUBLE_EQ(2_s, 2.0);
  EXPECT_DOUBLE_EQ(3_ms, 3e-3);
  EXPECT_DOUBLE_EQ(4.5_us, 4.5e-6);
  EXPECT_DOUBLE_EQ(7_ns, 7e-9);
  EXPECT_DOUBLE_EQ(1000_us, 1_ms);
}

TEST(Units, SizeLiteralsAreBinary) {
  EXPECT_EQ(1_KB, 1024u);
  EXPECT_EQ(10_KB, 10240u);
  EXPECT_EQ(1_MB, 1048576u);
  EXPECT_EQ(300_KB, 300u * 1024u);
  EXPECT_EQ(5_B, 5u);
}

TEST(Units, RateLiteralsAreDecimal) {
  EXPECT_DOUBLE_EQ(88.0_MBps, 88e6);
  EXPECT_DOUBLE_EQ(1.28_GBps, 1.28e9);
}

TEST(Units, ToMBps) {
  EXPECT_DOUBLE_EQ(toMBps(88e6), 88.0);
  EXPECT_DOUBLE_EQ(toMBps(0.0), 0.0);
}

TEST(Units, TransferTime) {
  // 100 decimal MB at 100 MB/s takes exactly one second.
  EXPECT_DOUBLE_EQ(transferTime(100'000'000, 100.0_MBps), 1.0);
  // Zero bytes transfer instantly.
  EXPECT_DOUBLE_EQ(transferTime(0, 1.0_MBps), 0.0);
}

}  // namespace
}  // namespace comb
