#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace comb {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"1", "2"});
  w.rowNumeric({3.5, 4.25});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5,4.25\n");
  EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, ArityMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), ConfigError);
}

TEST(Csv, EmptyHeaderThrows) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), ConfigError);
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "val"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  const std::string s = t.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Right alignment: short values padded on the left.
  EXPECT_NE(s.find("     x"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, NumericRows) {
  TextTable t({"v"});
  t.addRowNumeric({1.23456789}, 3);
  EXPECT_NE(t.str().find("1.23"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"x"}), ConfigError);
}

}  // namespace
}  // namespace comb
