#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace comb {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 10 * (batch + 1));
  }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++ran; });
    // No wait(): the destructor must let queued jobs finish.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(HardwareJobs, AtLeastOne) { EXPECT_GE(hardwareJobs(), 1); }

TEST(ParallelFor, PreservesIndexMeaningAcrossSchedules) {
  for (const int jobs : {1, 2, 8, 64}) {
    std::vector<int> out(1000, -1);
    parallelFor(out.size(), jobs, [&](std::size_t i) {
      out[i] = static_cast<int>(i) * 3;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<int>(i) * 3) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, SerialFallbackRunsInOrderOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallelFor(16, /*jobs=*/1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: serial path, single thread
  });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, SingleItemAvoidsPoolEvenWithManyJobs) {
  const auto caller = std::this_thread::get_id();
  parallelFor(1, /*jobs=*/16, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  parallelFor(0, 8, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  // Several bodies throw; the caller must deterministically see the
  // lowest-index one regardless of which worker finished first.
  for (const int jobs : {1, 4}) {
    std::atomic<int> completed{0};
    try {
      parallelFor(32, jobs, [&](std::size_t i) {
        if (i == 5 || i == 20) throw std::runtime_error("boom " + std::to_string(i));
        ++completed;
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 5") << "jobs=" << jobs;
    }
    if (jobs == 1) {
      // Serial path throws immediately at index 5: exactly 5 completions.
      EXPECT_EQ(completed.load(), 5);
    } else {
      // Parallel path finishes all non-throwing bodies before rethrow.
      EXPECT_EQ(completed.load(), 30);
    }
  }
}

TEST(ParallelFor, ComBErrorsPropagateTyped) {
  EXPECT_THROW(
      parallelFor(4, 4,
                  [](std::size_t) { COMB_REQUIRE(false, "typed failure"); }),
      Error);
}

TEST(ParallelFor, MoreJobsThanItemsIsFine) {
  std::vector<int> out(3, 0);
  parallelFor(out.size(), 100, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 1, 1}));
}

}  // namespace
}  // namespace comb
