#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace comb {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").isNull());
  EXPECT_TRUE(json::parse("true").boolean());
  EXPECT_FALSE(json::parse("false").boolean());
  EXPECT_DOUBLE_EQ(json::parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-2.5e3").number(), -2500.0);
  EXPECT_EQ(json::parse("\"hi\"").str(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto v = json::parse(
      R"({"name": "sweep", "points": [{"x": 1, "ok": true}, {"x": 2, "ok": false}]})");
  EXPECT_EQ(v.at("name").str(), "sweep");
  const auto& pts = v.at("points").array();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].at("x").number(), 1.0);
  EXPECT_TRUE(pts[0].at("ok").boolean());
  EXPECT_FALSE(pts[1].at("ok").boolean());
}

TEST(Json, FindReturnsNullptrForMissing) {
  const auto v = json::parse(R"({"a": 1})");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW(v.at("b"), ConfigError);
}

TEST(Json, KindMismatchThrows) {
  const auto v = json::parse("[1, 2]");
  EXPECT_THROW(v.number(), ConfigError);
  EXPECT_THROW(v.str(), ConfigError);
  EXPECT_THROW(v.at("x"), ConfigError);
  EXPECT_EQ(v.size(), 2u);
}

TEST(Json, StringEscapes) {
  const auto v = json::parse(R"("a\"b\\c\ndA")");
  EXPECT_EQ(v.str(), "a\"b\\c\ndA");
}

TEST(Json, UnicodeEscapesIncludingSurrogates) {
  EXPECT_EQ(json::parse(R"("\u00e9")").str(), "\xC3\xA9");  // U+00E9
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(json::parse(R"("\ud83d\ude00")").str(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is an error.
  EXPECT_THROW(json::parse(R"("\ud83d")"), ConfigError);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse(""), ConfigError);
  EXPECT_THROW(json::parse("{"), ConfigError);
  EXPECT_THROW(json::parse("[1,]"), ConfigError);       // trailing comma
  EXPECT_THROW(json::parse("{'a': 1}"), ConfigError);   // single quotes
  EXPECT_THROW(json::parse("[1] [2]"), ConfigError);    // trailing tokens
  EXPECT_THROW(json::parse("nul"), ConfigError);
  EXPECT_THROW(json::parse("01"), ConfigError);         // leading zero
  EXPECT_THROW(json::parse("NaN"), ConfigError);
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(json::parse(R"({"a": 1, "a": 2})"), ConfigError);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    json::parse("{\n  \"a\": }", "test.json");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("test.json:2:"), std::string::npos)
        << e.what();
  }
}

TEST(Json, NumberRoundTripsAtFullPrecision) {
  const double x = 0.1234567890123456789;
  const auto v = json::parse("0.1234567890123456789");
  EXPECT_DOUBLE_EQ(v.number(), x);
}

TEST(Json, EscapeProducesParseableStrings) {
  const std::string nasty = "a\"b\\c\nd\te\x01";
  const auto doc = "\"" + json::escape(nasty) + "\"";
  EXPECT_EQ(json::parse(doc).str(), nasty);
}

TEST(Json, MembersIteratesAll) {
  const auto v = json::parse(R"({"b": 2, "a": 1})");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_DOUBLE_EQ(v.members().at("a").number(), 1.0);
  EXPECT_DOUBLE_EQ(v.members().at("b").number(), 2.0);
}

TEST(Json, ParseFileMissingThrows) {
  EXPECT_THROW(json::parseFile("/nonexistent/archive.json"), ConfigError);
}

}  // namespace
}  // namespace comb
