#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace comb {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 11.0);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // b becomes a copy
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::array<double, 5> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15.0);
}

TEST(Percentile, UnsortedInputIsSorted) {
  const std::array<double, 4> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  EXPECT_THROW(percentile(std::array<double, 1>{1.0}, 1.5), ConfigError);
}

TEST(Geomean, KnownValue) {
  const std::array<double, 3> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  const std::array<double, 2> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), ConfigError);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = linearFit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatData) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{5, 5, 5};
  const auto fit = linearFit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  // A flat line through varying x is a *perfect* fit, not a degenerate
  // one: every y is explained exactly.
  EXPECT_FALSE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LinearFit, VerticalDataReportsDegenerateConvention) {
  // All x equal: the slope is undefined. Convention (see stats.hpp):
  // flat line through mean(y), r2 = 0 set explicitly, degenerate = true.
  std::vector<double> xs{2, 2, 2, 2};
  std::vector<double> ys{1, 3, 5, 7};
  const auto fit = linearFit(xs, ys);
  EXPECT_TRUE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(LinearFit, VerticalConstantDataStillDegenerate) {
  // Same point repeated: also vertical (sxx == 0), same convention —
  // previously this fell through with a default-initialized r2, which
  // made "no information" indistinguishable from "terrible fit".
  std::vector<double> xs{3, 3};
  std::vector<double> ys{9, 9};
  const auto fit = linearFit(xs, ys);
  EXPECT_TRUE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.intercept, 9.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approxEqual(100.0, 100.0 + 1e-8, 1e-9, 1e-6));
  EXPECT_FALSE(approxEqual(100.0, 101.0, 1e-9));
  EXPECT_TRUE(approxEqual(0.0, 1e-12, 1e-9, 1e-9));
  EXPECT_TRUE(approxEqual(1e6, 1.0000001e6, 1e-6));
}

TEST(RelDiff, Basics) {
  EXPECT_DOUBLE_EQ(relDiff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relDiff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relDiff(-1.0, 1.0), 2.0);
}

TEST(Percentile, SingleSampleIsEveryQuantile) {
  const std::array<double, 1> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 7.0);
}

TEST(Percentile, AllEqualSamples) {
  const std::array<double, 6> xs{3.0, 3.0, 3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Percentile, RejectsNonFinite) {
  const std::array<double, 3> withNan{1.0, std::nan(""), 2.0};
  EXPECT_THROW(percentile(withNan, 0.5), ConfigError);
  const std::array<double, 2> withInf{
      1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(percentile(withInf, 0.5), ConfigError);
}

TEST(TrimmedMean, DropsTails) {
  // 10 samples, trimFrac 0.1 drops one from each tail.
  const std::array<double, 10> xs{1000.0, 2, 3, 4, 5, 6, 7, 8, 9, -1000.0};
  EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.1), 5.5);
}

TEST(TrimmedMean, ZeroTrimIsMean) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.0), 2.5);
}

TEST(TrimmedMean, RejectsBadInput) {
  EXPECT_THROW(trimmedMean({}, 0.1), ConfigError);
  const std::array<double, 2> xs{1.0, 2.0};
  EXPECT_THROW(trimmedMean(xs, 0.5), ConfigError);
  EXPECT_THROW(trimmedMean(xs, -0.1), ConfigError);
}

TEST(Mad, KnownValue) {
  // median = 5; |x - 5| = {4, 3, 0, 2, 4} -> median 3.
  const std::array<double, 5> xs{1.0, 2.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mad(xs), 3.0);
}

TEST(Mad, ZeroForConstantSample) {
  const std::array<double, 3> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mad(xs), 0.0);
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  std::vector<double> xs;
  Rng rng(11);
  for (int i = 0; i < 25; ++i) xs.push_back(rng.uniform(10.0, 20.0));
  BootstrapOptions opts;
  opts.seed = 1234;
  const auto a = bootstrapMeanCi(xs, opts);
  const auto b = bootstrapMeanCi(xs, opts);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  // A different seed moves the (finite-resample) interval.
  opts.seed = 5678;
  const auto c = bootstrapMeanCi(xs, opts);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(Bootstrap, IntervalCoversTheMean) {
  std::vector<double> xs;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  const auto ci = bootstrapMeanCi(xs);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_DOUBLE_EQ(ci.estimate, mean(xs));
  EXPECT_GT(ci.halfWidth(), 0.0);
}

TEST(Bootstrap, SingleSampleDegenerates) {
  const std::array<double, 1> xs{42.0};
  const auto ci = bootstrapMeanCi(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
  EXPECT_DOUBLE_EQ(ci.relHalfWidth(), 0.0);
}

TEST(Bootstrap, RejectsEmptyAndNan) {
  EXPECT_THROW(bootstrapMeanCi({}), ConfigError);
  const std::array<double, 2> xs{1.0, std::nan("")};
  EXPECT_THROW(bootstrapMeanCi(xs), ConfigError);
}

TEST(Bootstrap, DisjointFrom) {
  BootstrapCi a, b;
  a.lo = 1.0, a.hi = 2.0;
  b.lo = 3.0, b.hi = 4.0;
  EXPECT_TRUE(a.disjointFrom(b));
  EXPECT_TRUE(b.disjointFrom(a));
  b.lo = 1.5;
  EXPECT_FALSE(a.disjointFrom(b));
}

TEST(MannWhitney, SeparatedSamplesAreSignificant) {
  const std::array<double, 6> a{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::array<double, 6> b{11.0, 12.0, 13.0, 14.0, 15.0, 16.0};
  const auto r = mannWhitneyU(a, b);
  ASSERT_TRUE(r.usable);
  EXPECT_LT(r.pValue, 0.01);
}

TEST(MannWhitney, IdenticalSamplesNotUsable) {
  // All observations tied: no rank information at all.
  const std::array<double, 5> a{5.0, 5.0, 5.0, 5.0, 5.0};
  const auto r = mannWhitneyU(a, a);
  EXPECT_FALSE(r.usable);
  EXPECT_DOUBLE_EQ(r.pValue, 1.0);
}

TEST(MannWhitney, OverlappingSamplesNotSignificant) {
  const std::array<double, 6> a{1.0, 3.0, 5.0, 7.0, 9.0, 11.0};
  const std::array<double, 6> b{2.0, 4.0, 6.0, 8.0, 10.0, 12.0};
  const auto r = mannWhitneyU(a, b);
  ASSERT_TRUE(r.usable);
  EXPECT_GT(r.pValue, 0.2);
}

TEST(MannWhitney, SmallSamplesNotUsable) {
  const std::array<double, 3> a{1.0, 2.0, 3.0};
  const std::array<double, 5> b{4.0, 5.0, 6.0, 7.0, 8.0};
  EXPECT_FALSE(mannWhitneyU(a, b).usable);
}

TEST(MannWhitney, SymmetricInArguments) {
  const std::array<double, 5> a{1.0, 2.0, 3.0, 4.0, 10.0};
  const std::array<double, 5> b{5.0, 6.0, 7.0, 8.0, 9.0};
  const auto ab = mannWhitneyU(a, b);
  const auto ba = mannWhitneyU(b, a);
  EXPECT_DOUBLE_EQ(ab.pValue, ba.pValue);
}

TEST(AdaptiveRep, StopsEarlyOnTightSamples) {
  AdaptiveRepPolicy policy;
  policy.minReps = 3;
  policy.maxReps = 20;
  policy.ciTarget = 0.05;
  AdaptiveRep rep(policy);
  int n = 0;
  while (rep.wantMore()) {
    rep.add(100.0);  // zero variance: converges at minReps
    ++n;
  }
  EXPECT_EQ(n, 3);
  EXPECT_TRUE(rep.converged());
  EXPECT_FALSE(rep.exhausted());
  EXPECT_DOUBLE_EQ(rep.ci().relHalfWidth(), 0.0);
}

TEST(AdaptiveRep, ExhaustsBudgetOnNoisySamples) {
  AdaptiveRepPolicy policy;
  policy.minReps = 3;
  policy.maxReps = 6;
  policy.ciTarget = 1e-6;  // unreachable with noisy samples
  AdaptiveRep rep(policy);
  Rng rng(99);
  int n = 0;
  while (rep.wantMore()) {
    rep.add(rng.uniform(1.0, 100.0));
    ++n;
  }
  EXPECT_EQ(n, 6);
  EXPECT_FALSE(rep.converged());
  EXPECT_TRUE(rep.exhausted());
}

TEST(AdaptiveRep, DeterministicRepCount) {
  // Same policy + same sample stream => same stopping point.
  const auto runOnce = [] {
    AdaptiveRepPolicy policy;
    policy.minReps = 3;
    policy.maxReps = 15;
    policy.ciTarget = 0.10;
    AdaptiveRep rep(policy);
    Rng rng(7);
    while (rep.wantMore()) rep.add(rng.uniform(95.0, 105.0));
    return rep.samples().size();
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(AdaptiveRep, MinRepsAlwaysRun) {
  AdaptiveRepPolicy policy;
  policy.minReps = 5;
  policy.maxReps = 10;
  policy.ciTarget = 0.5;  // trivially satisfied
  AdaptiveRep rep(policy);
  int n = 0;
  while (rep.wantMore()) {
    rep.add(50.0);
    ++n;
  }
  EXPECT_EQ(n, 5);
}

}  // namespace
}  // namespace comb
