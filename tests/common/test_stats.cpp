#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace comb {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 11.0);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // b becomes a copy
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::array<double, 5> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15.0);
}

TEST(Percentile, UnsortedInputIsSorted) {
  const std::array<double, 4> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  EXPECT_THROW(percentile(std::array<double, 1>{1.0}, 1.5), ConfigError);
}

TEST(Geomean, KnownValue) {
  const std::array<double, 3> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  const std::array<double, 2> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), ConfigError);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = linearFit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatData) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{5, 5, 5};
  const auto fit = linearFit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  // A flat line through varying x is a *perfect* fit, not a degenerate
  // one: every y is explained exactly.
  EXPECT_FALSE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LinearFit, VerticalDataReportsDegenerateConvention) {
  // All x equal: the slope is undefined. Convention (see stats.hpp):
  // flat line through mean(y), r2 = 0 set explicitly, degenerate = true.
  std::vector<double> xs{2, 2, 2, 2};
  std::vector<double> ys{1, 3, 5, 7};
  const auto fit = linearFit(xs, ys);
  EXPECT_TRUE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(LinearFit, VerticalConstantDataStillDegenerate) {
  // Same point repeated: also vertical (sxx == 0), same convention —
  // previously this fell through with a default-initialized r2, which
  // made "no information" indistinguishable from "terrible fit".
  std::vector<double> xs{3, 3};
  std::vector<double> ys{9, 9};
  const auto fit = linearFit(xs, ys);
  EXPECT_TRUE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.intercept, 9.0);
  EXPECT_DOUBLE_EQ(fit.r2, 0.0);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approxEqual(100.0, 100.0 + 1e-8, 1e-9, 1e-6));
  EXPECT_FALSE(approxEqual(100.0, 101.0, 1e-9));
  EXPECT_TRUE(approxEqual(0.0, 1e-12, 1e-9, 1e-9));
  EXPECT_TRUE(approxEqual(1e6, 1.0000001e6, 1e-6));
}

TEST(RelDiff, Basics) {
  EXPECT_DOUBLE_EQ(relDiff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relDiff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relDiff(-1.0, 1.0), 2.0);
}

}  // namespace
}  // namespace comb
