// LatencyRecorder: global log-bucket layout invariants, deterministic
// quantiles, order-independent merges (the property that makes sharded
// runs reproduce serial distributions), and allocation-free recording.
#include "common/latency_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "common/metrics.hpp"

namespace {
std::atomic<std::size_t> g_allocCount{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace comb {
namespace {

TEST(LatencyRecorder, BucketLayoutIsMonotoneAndCovering) {
  const std::size_t n = LatencyRecorder::bucketCount();
  ASSERT_GT(n, 100u);
  std::uint64_t prevHigh = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint64_t lo = LatencyRecorder::bucketLowTicks(b);
    const std::uint64_t hi = LatencyRecorder::bucketHighTicks(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    ASSERT_EQ(lo, prevHigh) << "gap before bucket " << b;
    prevHigh = hi;
  }
}

TEST(LatencyRecorder, BucketForAgreesWithBounds) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Cover the whole dynamic range: random width, then random value.
    const unsigned width = static_cast<unsigned>(rng() % 63) + 1;
    const std::uint64_t t = rng() >> (64 - width);
    const std::size_t b = LatencyRecorder::bucketFor(t);
    ASSERT_LT(b, LatencyRecorder::bucketCount());
    ASSERT_GE(t, LatencyRecorder::bucketLowTicks(b));
    ASSERT_LT(t, LatencyRecorder::bucketHighTicks(b));
  }
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  LatencyRecorder r;
  r.recordTicks(3);
  r.recordTicks(5);
  r.recordTicks(5);
  r.recordTicks(60);
  EXPECT_EQ(r.count(), 4u);
  EXPECT_EQ(r.minTicks(), 3u);
  EXPECT_EQ(r.maxTicks(), 60u);
  EXPECT_EQ(r.sumTicks(), 73u);
  // Sub-kSub buckets are one tick wide; the quantile is the value itself.
  EXPECT_DOUBLE_EQ(r.quantile(0.5) * 1e9, 5.0);
  EXPECT_DOUBLE_EQ(r.quantile(1.0) * 1e9, 60.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.0) * 1e9, 3.0);
}

TEST(LatencyRecorder, QuantileRelativeErrorIsBounded) {
  LatencyRecorder r;
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> ticks;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t t = 1000 + rng() % 10000000;  // 1 us .. 10 ms
    ticks.push_back(t);
    r.recordTicks(t);
  }
  std::sort(ticks.begin(), ticks.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ticks.size())));
    const double exact = static_cast<double>(ticks[rank - 1]);
    const double est = r.quantile(q) * 1e9;
    EXPECT_NEAR(est, exact, exact / 32.0) << "q=" << q;
  }
}

TEST(LatencyRecorder, SecondsRoundTrip) {
  LatencyRecorder r;
  r.record(2e-6);  // 2 us → 2000 ticks
  EXPECT_EQ(r.maxTicks(), 2000u);
  r.record(-1.0);  // clamps to zero
  EXPECT_EQ(r.minTicks(), 0u);
  EXPECT_EQ(r.count(), 2u);
}

TEST(LatencyRecorder, TailSummary) {
  LatencyRecorder r;
  EXPECT_EQ(r.tail().count, 0u);
  EXPECT_EQ(r.tail().p999, 0.0);
  for (int i = 1; i <= 1000; ++i) r.recordTicks(static_cast<std::uint64_t>(i));
  const TailSummary t = r.tail();
  EXPECT_EQ(t.count, 1000u);
  EXPECT_NEAR(t.p50 * 1e9, 500.0, 500.0 / 16);
  EXPECT_NEAR(t.p999 * 1e9, 999.0, 999.0 / 16);
  EXPECT_NEAR(t.mean * 1e9, 500.5, 1e-6);
  EXPECT_DOUBLE_EQ(t.min * 1e9, 1.0);
  EXPECT_DOUBLE_EQ(t.max * 1e9, 1000.0);
}

// The property the sharded executor relies on: recording a stream split
// across several recorders and merging the snapshots gives byte-identical
// state to recording everything into one recorder, in any merge order.
TEST(LatencyRecorder, MergeIsOrderIndependent) {
  metrics::Registry whole, partA, partB;
  LatencyRecorder& w = whole.latency("lat");
  LatencyRecorder& a = partA.latency("lat");
  LatencyRecorder& b = partB.latency("lat");
  std::mt19937_64 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t t = rng() % 50000000;
    w.recordTicks(t);
    (i % 3 ? a : b).recordTicks(t);
  }
  const metrics::Snapshot sw = whole.snapshot();
  const metrics::Snapshot ab =
      metrics::mergeSnapshots({partA.snapshot(), partB.snapshot()});
  const metrics::Snapshot ba =
      metrics::mergeSnapshots({partB.snapshot(), partA.snapshot()});
  ASSERT_EQ(ab.latencies.size(), 1u);
  EXPECT_EQ(ab.latencies[0].buckets, sw.latencies[0].buckets);
  EXPECT_EQ(ba.latencies[0].buckets, sw.latencies[0].buckets);
  EXPECT_EQ(ab.latencies[0].count, sw.latencies[0].count);
  EXPECT_EQ(ab.latencies[0].sumTicks, sw.latencies[0].sumTicks);
  EXPECT_EQ(ab.latencies[0].minTicks, sw.latencies[0].minTicks);
  EXPECT_EQ(ab.latencies[0].maxTicks, sw.latencies[0].maxTicks);
  EXPECT_EQ(ba.latencies[0].sumTicks, sw.latencies[0].sumTicks);
}

TEST(LatencyRecorder, MergeWithEmptySideKeepsExtrema) {
  metrics::Registry partA, partB;
  partA.latency("lat").recordTicks(100);
  partB.latency("lat");  // registered, never recorded
  const metrics::Snapshot m =
      metrics::mergeSnapshots({partB.snapshot(), partA.snapshot()});
  ASSERT_EQ(m.latencies.size(), 1u);
  EXPECT_EQ(m.latencies[0].count, 1u);
  EXPECT_EQ(m.latencies[0].minTicks, 100u);
  EXPECT_EQ(m.latencies[0].maxTicks, 100u);
}

TEST(LatencyRecorder, SteadyStateRecordingIsAllocationFree) {
  LatencyRecorder r;           // construction may allocate (bucket array)
  r.recordTicks(1);            // warm-up
  const std::size_t before = g_allocCount.load(std::memory_order_relaxed);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100000; ++i) {
    r.recordTicks(rng() % 1000000000ull);
    r.record(1.5e-6);
  }
  (void)r.quantile(0.999);  // summaries must not allocate either
  const std::size_t after = g_allocCount.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "latency recording allocated in steady state";
}

TEST(LatencyRecorder, RegistryFindOrCreate) {
  metrics::Registry reg;
  LatencyRecorder& r = reg.latency("mpi.n0.recv_wait");
  EXPECT_EQ(&reg.latency("mpi.n0.recv_wait"), &r);
  EXPECT_NE(&reg.latency("mpi.n1.recv_wait"), &r);
  EXPECT_EQ(reg.latencyCount(), 2u);
}

}  // namespace
}  // namespace comb
