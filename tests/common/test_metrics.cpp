// metrics::Registry: find-or-create counters/histograms with stable
// references, sorted snapshots, and the JSON export format.
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace comb::metrics {
namespace {

TEST(Metrics, CounterFindOrCreate) {
  Registry reg;
  Counter& c = reg.counter("nic.n0.sent");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same counter; different name → a fresh one.
  EXPECT_EQ(&reg.counter("nic.n0.sent"), &c);
  EXPECT_NE(&reg.counter("nic.n1.sent"), &c);
  EXPECT_EQ(reg.counterCount(), 2u);
}

TEST(Metrics, CounterReferencesSurviveGrowth) {
  Registry reg;
  Counter& first = reg.counter("a");
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)).add();
  first.add(7);
  EXPECT_EQ(reg.counter("a").value(), 7u);  // same object, not a copy
}

TEST(Metrics, EmptyNameRejected) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), ConfigError);
  EXPECT_THROW(reg.histogram("", 0, 1, 4), ConfigError);
}

TEST(Metrics, HistogramFindOrCreate) {
  Registry reg;
  Histogram& h = reg.histogram("lat", 0.0, 10.0, 5);
  h.add(1.0);
  h.add(11.0);  // overflow
  EXPECT_EQ(&reg.histogram("lat", 0.0, 10.0, 5), &h);
  EXPECT_EQ(reg.histogramCount(), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Metrics, SnapshotIsSortedAndQueryable) {
  Registry reg;
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.counter("mid.dle").add(2);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid.dle");
  EXPECT_EQ(snap.counters[2].name, "zeta");
  EXPECT_EQ(snap.counterValue("zeta"), 3u);
  EXPECT_EQ(snap.counterValue("missing"), 0u);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(Snapshot{}.empty());
}

TEST(Metrics, SnapshotIsACopy) {
  Registry reg;
  Counter& c = reg.counter("x");
  c.add(1);
  const Snapshot snap = reg.snapshot();
  c.add(10);
  EXPECT_EQ(snap.counterValue("x"), 1u);  // not live
  EXPECT_EQ(reg.snapshot().counterValue("x"), 11u);
}

TEST(Metrics, MergeRebucketsMismatchedHistogramLayouts) {
  Registry a, b;
  a.histogram("h", 0.0, 100.0, 10).add(15.0);
  Histogram& fine = b.histogram("h", 0.0, 50.0, 50);
  fine.add(15.5);  // midpoint of its bin is 15.5 → coarse bin 1
  fine.add(49.5);  // → coarse bin 4
  fine.add(60.0);  // overflow in the fine layout, carried over
  const Snapshot m = mergeSnapshots({a.snapshot(), b.snapshot()});
  ASSERT_EQ(m.histograms.size(), 1u);
  const HistogramSample& h = m.histograms[0];
  // First-seen (coarse) layout wins.
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 100.0);
  ASSERT_EQ(h.counts.size(), 10u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[4], 1u);
  EXPECT_EQ(h.overflow, 1u);
  EXPECT_EQ(h.total, 4u);
}

TEST(Metrics, WriteJsonFormat) {
  Registry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.histogram("h", 0.0, 4.0, 2).add(1.0);
  reg.latency("lat").recordTicks(5);
  std::ostringstream os;
  writeJson(os, reg.snapshot());
  const std::string s = os.str();
  EXPECT_NE(s.find("\"latencies\""), std::string::npos);
  EXPECT_NE(s.find("\"buckets\": [[5, 1]]"), std::string::npos);
  EXPECT_NE(s.find("\"p999_us\": 0.005000"), std::string::npos);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"b.count\": 2"), std::string::npos);
  EXPECT_LT(s.find("a.count"), s.find("b.count"));  // sorted
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"counts\": [1, 0]"), std::string::npos);
  EXPECT_NE(s.find("\"total\": 1"), std::string::npos);
}

TEST(Metrics, WriteJsonEscapesNames) {
  Registry reg;
  reg.counter("weird\"name\\x").add(1);
  std::ostringstream os;
  writeJson(os, reg.snapshot());
  EXPECT_NE(os.str().find("\"weird\\\"name\\\\x\": 1"), std::string::npos);
}

TEST(Metrics, EmptyRegistryJson) {
  Registry reg;
  std::ostringstream os;
  writeJson(os, reg.snapshot());
  EXPECT_NE(os.str().find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(os.str().find("\"histograms\": {}"), std::string::npos);
  EXPECT_NE(os.str().find("\"latencies\": {}"), std::string::npos);
}

}  // namespace
}  // namespace comb::metrics
