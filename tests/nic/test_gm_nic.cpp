// GmNic unit tests: fragment-level transmit scheduling, control-packet
// priority, assembly, SendDone timing.
#include "nic/gm_nic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "net/fabric.hpp"

namespace comb::nic {
namespace {

using namespace comb::units;
using transport::WireKind;
using transport::WirePayload;

struct Fixture {
  sim::Simulator sim;
  net::Fabric fabric;
  GmNic nic0;
  GmNic nic1;
  std::vector<net::Packet> rawAt1;  // raw packets osberved at node 1's tap

  Fixture()
      : fabric(sim,
               net::FabricConfig{
                   .link = {.rate = 100e6, .latency = 1_us},
                   .sw = {.routingLatency = 0.5_us, .ports = 8},
                   .mtu = 4096,
                   .perPacketHeader = 64}),
        nic0(sim, fabric, prepareNode(0)),
        nic1(sim, fabric, prepareNode(1)) {
    // Wire delivery: node 0 -> nic0, node 1 -> tap + nic1.
  }

  // Fabric nodes must exist before the NICs; route through trampolines.
  net::NodeId prepareNode(int which) {
    return fabric.addNode([this, which](net::Packet p) {
      if (which == 1) rawAt1.push_back(p);
      (which == 0 ? pending0 : pending1).push_back(std::move(p));
    });
  }

  void pumpDeliveries() {
    for (auto& p : pending0) nic0.deliver(std::move(p));
    pending0.clear();
    for (auto& p : pending1) nic1.deliver(std::move(p));
    pending1.clear();
  }

  std::vector<net::Packet> pending0, pending1;
};

mpi::Envelope env(int src, int tag) { return mpi::Envelope{0, src, tag}; }

TEST(GmNic, SingleSmallMessageDelivers) {
  Fixture f;
  f.nic0.sendMessage(1, WireKind::Eager, env(0, 5), 1000, 1000, nullptr, 7, 0,
                     false);
  f.sim.run();
  f.pumpDeliveries();
  auto ev = f.nic1.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->type, GmEvent::Type::MsgArrived);
  EXPECT_EQ(ev->kind, WireKind::Eager);
  EXPECT_EQ(ev->msgBytes, 1000u);
  EXPECT_EQ(ev->senderHandle, 7u);
  EXPECT_EQ(ev->env.tag, 5);
  EXPECT_EQ(ev->srcNode, 0);
  EXPECT_FALSE(f.nic1.pop().has_value());
}

TEST(GmNic, LargeMessageFragmentsAndReassembles) {
  Fixture f;
  f.nic0.sendMessage(1, WireKind::Data, env(0, 1), 100 * 1024, 100 * 1024,
                     nullptr, 1, 2, false);
  f.sim.run();
  f.pumpDeliveries();
  // 100 KB / 4 KB MTU = 25 fragments on the wire...
  EXPECT_EQ(f.rawAt1.size(), 25u);
  // ...but exactly one NIC-level message event.
  auto ev = f.nic1.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->msgBytes, 100u * 1024u);
  EXPECT_EQ(ev->recvHandle, 2u);
  EXPECT_FALSE(f.nic1.pop().has_value());
  EXPECT_EQ(f.nic1.messagesDelivered(), 1u);
}

TEST(GmNic, ControlPacketOvertakesQueuedData) {
  Fixture f;
  // Queue a 100 KB data message, then a control packet. The control
  // packet must arrive long before the data message completes.
  f.nic0.sendMessage(1, WireKind::Data, env(0, 1), 100 * 1024, 100 * 1024,
                     nullptr, 1, 0, false);
  f.nic0.sendMessage(1, WireKind::Cts, env(0, 2), 32, 0, nullptr, 0, 9,
                     false);
  Time ctrlArrival = -1, dataArrival = -1;
  // Drive the simulation; deliveries land in pending queues with times.
  while (f.sim.step()) {
    f.pumpDeliveries();
    while (auto ev = f.nic1.pop()) {
      if (ev->kind == WireKind::Cts) ctrlArrival = f.sim.now();
      if (ev->kind == WireKind::Data) dataArrival = f.sim.now();
    }
  }
  ASSERT_GT(ctrlArrival, 0.0);
  ASSERT_GT(dataArrival, 0.0);
  // Control slipped in after at most one fragment (~42 us), while the
  // data message takes > 1 ms.
  EXPECT_LT(ctrlArrival, 150e-6);
  EXPECT_GT(dataArrival, 1e-3);
}

TEST(GmNic, SendDoneReportedAtDmaCompletion) {
  Fixture f;
  f.nic0.sendMessage(1, WireKind::Data, env(0, 1), 50 * 1024, 50 * 1024,
                     nullptr, 1, 0, /*reportSendDone=*/true);
  Time sendDoneAt = -1;
  while (f.sim.step()) {
    while (auto ev = f.nic0.pop()) {
      if (ev->type == GmEvent::Type::SendDone) sendDoneAt = f.sim.now();
    }
  }
  // 13 fragments x (4096+64) bytes at 100 MB/s ~ 0.53 ms of serialization
  // (the last fragment is short).
  ASSERT_GT(sendDoneAt, 0.0);
  EXPECT_NEAR(sendDoneAt, (12 * 4160 + (50 * 1024 - 12 * 4096) + 64) / 100e6,
              5e-6);
}

TEST(GmNic, EventHookFiresOnArrivalAndSendDone) {
  Fixture f;
  int hooks0 = 0, hooks1 = 0;
  f.nic0.setEventHook([&] { ++hooks0; });
  f.nic1.setEventHook([&] { ++hooks1; });
  f.nic0.sendMessage(1, WireKind::Eager, env(0, 1), 512, 512, nullptr, 1, 0,
                     /*reportSendDone=*/true);
  while (f.sim.step()) f.pumpDeliveries();
  EXPECT_EQ(hooks0, 1);  // SendDone
  EXPECT_EQ(hooks1, 1);  // MsgArrived
}

TEST(GmNic, InterleavedMessagesToSameDestination) {
  Fixture f;
  for (int i = 0; i < 5; ++i)
    f.nic0.sendMessage(1, WireKind::Eager, env(0, 10 + i), 20 * 1024,
                       20 * 1024, nullptr, static_cast<std::uint64_t>(i), 0,
                       false);
  f.sim.run();
  f.pumpDeliveries();
  // All five arrive, in submission order.
  for (int i = 0; i < 5; ++i) {
    auto ev = f.nic1.pop();
    ASSERT_TRUE(ev.has_value()) << "message " << i;
    EXPECT_EQ(ev->env.tag, 10 + i);
  }
  EXPECT_EQ(f.nic0.messagesSent(), 5u);
}

TEST(GmNic, ZeroByteControlMessage) {
  Fixture f;
  f.nic0.sendMessage(1, WireKind::Rts, env(0, 3), 0, 300 * 1024, nullptr, 42,
                     0, false);
  f.sim.run();
  f.pumpDeliveries();
  auto ev = f.nic1.pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, WireKind::Rts);
  EXPECT_EQ(ev->msgBytes, 300u * 1024u);  // declared length, not wire length
  EXPECT_EQ(ev->senderHandle, 42u);
}

}  // namespace
}  // namespace comb::nic
