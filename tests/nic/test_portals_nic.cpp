// PortalsNic unit tests: kernel tx pump CPU charging, per-fragment rx
// interrupts, handler context.
#include "nic/portals_nic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "net/fabric.hpp"

namespace comb::nic {
namespace {

using namespace comb::units;
using transport::WireKind;
using transport::WirePayload;

struct Fixture {
  sim::Simulator sim;
  net::Fabric fabric;
  host::Cpu cpu0{sim, "cpu0"};
  host::Cpu cpu1{sim, "cpu1"};
  std::unique_ptr<PortalsNic> nic0, nic1;

  Fixture()
      : fabric(sim, net::FabricConfig{
                        .link = {.rate = 100e6, .latency = 1_us},
                        .sw = {.routingLatency = 0.5_us, .ports = 8},
                        .mtu = 4096,
                        .perPacketHeader = 64}) {
    const auto id0 = fabric.addNode(
        [this](net::Packet p) { nic0->deliver(std::move(p)); });
    const auto id1 = fabric.addNode(
        [this](net::Packet p) { nic1->deliver(std::move(p)); });
    PortalsNicConfig cfg;  // defaults
    nic0 = std::make_unique<PortalsNic>(sim, fabric, cpu0, id0, cfg);
    nic1 = std::make_unique<PortalsNic>(sim, fabric, cpu1, id1, cfg);
  }
};

mpi::Envelope env(int src, int tag) { return mpi::Envelope{0, src, tag}; }

TEST(PortalsNic, TxChargesSenderCpu) {
  Fixture f;
  f.nic0->sendMessage(1, WireKind::Eager, env(0, 1), 100 * 1024, 100 * 1024,
                      nullptr, 1, 0);
  f.sim.run();
  // 25 fragments of kernel tx work on the sender's CPU.
  const double expectTx =
      25 * (f.nic0->config().perFragTx + 4096.0 / f.nic0->config().kernelCopyRate);
  EXPECT_NEAR(f.cpu0.isrTime(), expectTx, expectTx * 0.05);
  EXPECT_GT(f.cpu0.interruptsRaised(), 24u);
}

TEST(PortalsNic, RxRaisesInterruptPerFragment) {
  Fixture f;
  int fragsSeen = 0;
  f.nic1->setRxHandler(
      [&](const WirePayload&, net::NodeId src) {
        ++fragsSeen;
        EXPECT_EQ(src, 0);
      });
  f.nic0->sendMessage(1, WireKind::Eager, env(0, 1), 100 * 1024, 100 * 1024,
                      nullptr, 1, 0);
  f.sim.run();
  EXPECT_EQ(fragsSeen, 25);
  EXPECT_EQ(f.nic1->fragmentsReceived(), 25u);
  // Receiver CPU paid interrupt + copy per fragment.
  const double expectRx =
      25 * (f.nic1->config().perFragRx +
            4096.0 / f.nic1->config().kernelCopyRate);
  EXPECT_NEAR(f.cpu1.isrTime(), expectRx, expectRx * 0.05);
}

TEST(PortalsNic, TxDoneFiresOnceAtLastFragment) {
  Fixture f;
  std::vector<std::uint64_t> done;
  f.nic0->setTxDoneHandler([&](std::uint64_t id) { done.push_back(id); });
  const auto idA = f.nic0->sendMessage(1, WireKind::Eager, env(0, 1),
                                       50 * 1024, 50 * 1024, nullptr, 1, 0);
  const auto idB = f.nic0->sendMessage(1, WireKind::Eager, env(0, 2), 512,
                                       512, nullptr, 2, 0);
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  // FIFO kernel pump: A completes before B.
  EXPECT_EQ(done[0], idA);
  EXPECT_EQ(done[1], idB);
}

TEST(PortalsNic, InterruptsPreemptUserCompute) {
  Fixture f;
  Time done = -1;
  auto worker = [&]() -> sim::Task<void> {
    co_await f.cpu1.compute(10e-3);
    done = f.sim.now();
  };
  f.sim.spawn(worker(), "worker");
  f.nic0->sendMessage(1, WireKind::Eager, env(0, 1), 100 * 1024, 100 * 1024,
                      nullptr, 1, 0);
  f.sim.run();
  // The 10 ms of user compute is stretched by the rx interrupt service.
  EXPECT_GT(done, 10e-3 + 0.5 * f.cpu1.isrTime());
  EXPECT_GT(f.cpu1.isrTime(), 500e-6);
}

TEST(PortalsNic, FragmentPayloadCarriesMetadata) {
  Fixture f;
  std::uint32_t count = 0;
  Bytes declared = 0;
  f.nic1->setRxHandler([&](const WirePayload& frag, net::NodeId) {
    if (frag.fragIndex == 0) declared = frag.msgBytes;
    EXPECT_EQ(frag.fragCount, 3u);
    ++count;
  });
  f.nic0->sendMessage(1, WireKind::Eager, env(0, 9), 10 * 1024, 10 * 1024,
                      nullptr, 5, 0);
  f.sim.run();
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(declared, 10u * 1024u);
}

}  // namespace
}  // namespace comb::nic
