// Bit-identity of rendered figure CSVs: the simulator is deterministic
// and the parallel sweep executor promises results identical to serial
// order, so the same sweep rendered twice — run-to-run, and jobs=1 vs
// jobs=4 — must produce byte-equal CSV on both machine files. This is
// the regression net for the allocation-free hot path: pooling events
// and payloads must change real time only, never virtual time.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"
#include "report/figure.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

std::string fig04StyleCsv(const backend::MachineConfig& machine, int jobs) {
  auto base = presets::pollingBase(100_KB);
  base.targetDuration = 15e-3;
  base.maxPolls = 15'000;
  RunOptions opts;
  opts.jobs = jobs;
  const auto intervals = presets::pollSweep(1);
  const auto pts =
      runPollingSweep(machine, sweepOver(base, intervals), opts);

  report::Figure fig("fig04_identity", "availability vs poll interval",
                     "poll_interval_iters", "cpu_availability");
  report::Series s;
  s.name = "100KB";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.xs.push_back(static_cast<double>(intervals[i]));
    s.ys.push_back(pts[i].availability);
  }
  fig.addSeries(std::move(s));
  std::ostringstream out;
  fig.writeCsv(out);
  return out.str();
}

TEST(CsvIdentity, Fig04ByteIdenticalAcrossRunsAndJobsOnGm) {
  const auto machine = backend::gmMachine();
  const std::string serial = fig04StyleCsv(machine, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), serial) << "run-to-run drift (gm)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), serial) << "jobs=4 drift (gm)";
}

TEST(CsvIdentity, Fig04ByteIdenticalAcrossRunsAndJobsOnPortals) {
  const auto machine = backend::portalsMachine();
  const std::string serial = fig04StyleCsv(machine, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), serial)
      << "run-to-run drift (portals)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), serial) << "jobs=4 drift (portals)";
}

}  // namespace
}  // namespace comb::bench
