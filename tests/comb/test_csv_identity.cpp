// Bit-identity of rendered figure CSVs: the simulator is deterministic
// and the parallel sweep executor promises results identical to serial
// order, so the same sweep rendered twice — run-to-run, and jobs=1 vs
// jobs=4 — must produce byte-equal CSV on both machine files. This is
// the regression net for the allocation-free hot path: pooling events
// and payloads must change real time only, never virtual time.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"
#include "report/figure.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

report::Figure pollingFigure(const std::vector<std::uint64_t>& intervals,
                             const std::vector<PollingPoint>& pts) {
  report::Figure fig("fig04_identity", "availability vs poll interval",
                     "poll_interval_iters", "cpu_availability");
  report::Series s;
  s.name = "100KB";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    s.xs.push_back(static_cast<double>(intervals[i]));
    s.ys.push_back(pts[i].availability);
  }
  fig.addSeries(std::move(s));
  return fig;
}

PollingParams identityBase() {
  auto base = presets::pollingBase(100_KB);
  base.targetDuration = 15e-3;
  base.maxPolls = 15'000;
  return base;
}

std::string fig04StyleCsv(const backend::MachineConfig& machine, int jobs) {
  RunOptions opts;
  opts.jobs = jobs;
  const auto intervals = presets::pollSweep(1);
  const auto pts =
      runPollingSweep(machine, sweepOver(identityBase(), intervals), opts);
  std::ostringstream out;
  pollingFigure(intervals, pts).writeCsv(out);
  return out.str();
}

/// Same sweep, but every point runs with a TraceLog attached. Tracing is a
/// pure observer, so the rendered CSV must be byte-equal to the untraced
/// sweep's.
std::string fig04StyleCsvTraced(const backend::MachineConfig& machine) {
  const auto intervals = presets::pollSweep(1);
  std::vector<PollingPoint> pts;
  for (const auto interval : intervals) {
    auto params = identityBase();
    params.pollInterval = interval;
    pts.push_back(runPollingPointTraced(machine, params).point);
  }
  std::ostringstream out;
  pollingFigure(intervals, pts).writeCsv(out);
  return out.str();
}

TEST(CsvIdentity, Fig04ByteIdenticalAcrossRunsAndJobsOnGm) {
  const auto machine = backend::gmMachine();
  const std::string serial = fig04StyleCsv(machine, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), serial) << "run-to-run drift (gm)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), serial) << "jobs=4 drift (gm)";
}

TEST(CsvIdentity, Fig04ByteIdenticalAcrossRunsAndJobsOnPortals) {
  const auto machine = backend::portalsMachine();
  const std::string serial = fig04StyleCsv(machine, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), serial)
      << "run-to-run drift (portals)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), serial) << "jobs=4 drift (portals)";
}

TEST(CsvIdentity, TracingEnabledMatchesDisabledOnGm) {
  const auto machine = backend::gmMachine();
  const std::string traced = fig04StyleCsvTraced(machine);
  EXPECT_FALSE(traced.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), traced)
      << "tracing perturbed results vs jobs=1 (gm)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), traced)
      << "tracing perturbed results vs jobs=4 (gm)";
}

TEST(CsvIdentity, TracingEnabledMatchesDisabledOnPortals) {
  const auto machine = backend::portalsMachine();
  const std::string traced = fig04StyleCsvTraced(machine);
  EXPECT_FALSE(traced.empty());
  EXPECT_EQ(fig04StyleCsv(machine, 1), traced)
      << "tracing perturbed results vs jobs=1 (portals)";
  EXPECT_EQ(fig04StyleCsv(machine, 4), traced)
      << "tracing perturbed results vs jobs=4 (portals)";
}

}  // namespace
}  // namespace comb::bench
