// Figure-pipeline integration: run reduced versions of the paper sweeps
// and assert the same shape expectations the figure benches print. This
// keeps "the figures reproduce" inside ctest, not just inside bench
// binaries someone has to run and read.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"
#include "report/expectations.hpp"
#include "report/figure.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using report::ShapeCheck;

// One point per decade keeps each sweep around 100 ms of wall time.
std::vector<std::uint64_t> quickPolls() { return presets::pollSweep(1); }
std::vector<std::uint64_t> quickWorks() { return presets::workSweep(1); }

PollingParams quickPolling(Bytes size) {
  auto p = presets::pollingBase(size);
  p.targetDuration = 15e-3;
  p.maxPolls = 15'000;
  return p;
}

PwwParams quickPww(Bytes size) {
  auto p = presets::pwwBase(size);
  p.reps = 9;
  return p;
}

template <typename Points, typename F>
std::vector<double> ys(const Points& pts, F&& f) {
  std::vector<double> out;
  for (const auto& p : pts) out.push_back(f(p));
  return out;
}

TEST(FigurePipeline, Fig4AvailabilityRise) {
  const auto pts = runPollingSweep(backend::portalsMachine(),
                                   sweepOver(quickPolling(100_KB), quickPolls()));
  const auto avail =
      ys(pts, [](const PollingPoint& p) { return p.availability; });
  EXPECT_TRUE(
      report::checkRisesFromLowToHigh("fig4", avail, 0.25, 0.9).pass);
  EXPECT_TRUE(report::checkNearlyMonotone("fig4", avail, true, 0.08).pass);
}

TEST(FigurePipeline, Fig5PlateauDecline) {
  const auto pts = runPollingSweep(backend::portalsMachine(),
                                   sweepOver(quickPolling(100_KB), quickPolls()));
  const auto bw =
      ys(pts, [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  EXPECT_TRUE(report::checkPlateauThenDecline("fig5", bw, 0.2, 0.5).pass);
}

TEST(FigurePipeline, Fig8WhoWins) {
  const auto gm = runPollingSweep(backend::gmMachine(),
                                  sweepOver(quickPolling(100_KB), quickPolls()));
  const auto portals = runPollingSweep(
      backend::portalsMachine(), sweepOver(quickPolling(100_KB), quickPolls()));
  const auto gmBw =
      ys(gm, [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  const auto ptlBw = ys(
      portals, [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  EXPECT_TRUE(report::checkPeakRatio("fig8", gmBw, ptlBw, 1.3, 2.0).pass);
}

TEST(FigurePipeline, Fig11OffloadDetector) {
  const auto gm =
      runPwwSweep(backend::gmMachine(), sweepOver(quickPww(100_KB), quickWorks()));
  const auto portals =
      runPwwSweep(backend::portalsMachine(),
                  sweepOver(quickPww(100_KB), quickWorks()));
  const auto gmWait =
      ys(gm, [](const PwwPoint& p) { return p.avgWaitPerMsg * 1e6; });
  const auto ptlWait =
      ys(portals, [](const PwwPoint& p) { return p.avgWaitPerMsg * 1e6; });
  EXPECT_TRUE(report::checkEndsBelow("portals wait", ptlWait, 20.0).pass);
  EXPECT_TRUE(report::checkEndsAbove("gm wait", gmWait, 800.0).pass);
  EXPECT_TRUE(report::checkFlat("gm wait flat", gmWait, 0.35).pass);
}

TEST(FigurePipeline, Fig14GmFrontier) {
  const auto pts = runPollingSweep(backend::gmMachine(),
                                   sweepOver(quickPolling(100_KB), quickPolls()));
  const auto avail =
      ys(pts, [](const PollingPoint& p) { return p.availability; });
  const auto bw =
      ys(pts, [](const PollingPoint& p) { return toMBps(p.bandwidthBps); });
  const double peak = *std::max_element(bw.begin(), bw.end());
  EXPECT_TRUE(
      report::checkCoexists("fig14", avail, bw, 0.9, 0.85 * peak).pass);
}

TEST(FigurePipeline, Fig17CallEffect) {
  auto plain = quickPww(100_KB);
  auto withTest = plain;
  withTest.testCallAtFraction = 0.1;
  const auto works = quickWorks();
  const auto a = runPwwSweep(backend::gmMachine(), sweepOver(plain, works));
  const auto b =
      runPwwSweep(backend::gmMachine(), sweepOver(withTest, works));
  // At the longest work interval the test call must have drained the wait.
  EXPECT_GT(a.back().avgWaitPerMsg, 800e-6);
  EXPECT_LT(b.back().avgWaitPerMsg, 100e-6);
}

TEST(FigurePipeline, FigureRendersFromSweep) {
  // End-to-end: sweep -> Figure -> render + CSV, no exceptions, sane text.
  const auto pts = runPollingSweep(backend::gmMachine(),
                                   sweepOver(quickPolling(50_KB), quickPolls()));
  report::Figure fig("itest", "Integration", "poll_interval", "MBps");
  report::Series s{"GM 50KB", {}, {}};
  for (const auto& p : pts) {
    s.xs.push_back(static_cast<double>(p.pollInterval));
    s.ys.push_back(toMBps(p.bandwidthBps));
  }
  fig.logX().addSeries(std::move(s));
  std::ostringstream os;
  fig.render(os);
  EXPECT_NE(os.str().find("itest: Integration"), std::string::npos);
  std::ostringstream csv;
  fig.writeCsv(csv);
  EXPECT_NE(csv.str().find("GM 50KB"), std::string::npos);
}

}  // namespace
}  // namespace comb::bench
