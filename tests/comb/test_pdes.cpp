// Sharded-core (--sim-jobs) contract tests at the benchmark level:
//   * sharded runs reproduce the serial core's numbers exactly on both
//     transports and on multi-switch fabrics,
//   * repeated sharded runs are deterministic,
//   * the lookahead invariant holds when it is exactly one link latency
//     (the fat-tree default) under maximally skewed load (incast), and
//   * traced sharded runs produce a merged timeline the overlap audit
//     accepts.
// See docs/parallel_sim.md for the contracts under test.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/audit.hpp"
#include "comb/congestion.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using backend::MachineConfig;
using backend::TransportKind;

RunOptions simJobs(int n) {
  RunOptions opts;
  opts.simJobs = n;
  return opts;
}

/// Oversubscribed fat-tree: 4 nodes per leaf, one spine, finite queues.
/// Trunks share the node links' latency (Topology scales only the trunk
/// rate), so the conservative lookahead equals EXACTLY one link latency —
/// the tightest bound the partition ever runs under.
MachineConfig fatTree(TransportKind k) {
  auto m = k == TransportKind::Gm ? backend::gmMachine()
                                  : backend::portalsMachine();
  m.fabric.sw.ports = 0;
  m.fabric.topo.kind = net::TopologyKind::FatTree;
  m.fabric.topo.nodesPerSwitch = 4;
  m.fabric.topo.spines = 1;
  m.fabric.topo.trunkRateScale = 0.5;
  m.fabric.sw.queue.depthPackets = 16;
  return m;
}

CongestionParams congestion(CongestionPattern pattern, std::uint64_t nodes) {
  CongestionParams p;
  p.pattern = pattern;
  p.nodes = nodes;
  p.msgBytes = 16_KB;
  p.messagesPerSender = 2;
  p.window = 4;
  return p;
}

void expectSameCongestion(const CongestionPoint& a, const CongestionPoint& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.minAvailability, b.minAvailability);
  EXPECT_EQ(a.meanNodeBandwidthBps, b.meanNodeBandwidthBps);
  EXPECT_EQ(a.minNodeBandwidthBps, b.minNodeBandwidthBps);
  EXPECT_EQ(a.messagesDelivered, b.messagesDelivered);
  EXPECT_EQ(a.nodeBandwidthBps, b.nodeBandwidthBps);
  EXPECT_EQ(a.nodeAvailability, b.nodeAvailability);
  EXPECT_EQ(a.switches.packetsRouted, b.switches.packetsRouted);
  EXPECT_EQ(a.switches.dropsQueue, b.switches.dropsQueue);
  EXPECT_EQ(a.switches.creditStalls, b.switches.creditStalls);
  EXPECT_EQ(a.switches.queuePeakPackets, b.switches.queuePeakPackets);
}

TEST(Pdes, ShardedPollingMatchesSerialBitIdentical) {
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals}) {
    const auto machine = kind == TransportKind::Gm
                             ? backend::gmMachine()
                             : backend::portalsMachine();
    auto params = presets::pollingBase(100 * 1024);
    params.targetDuration = 3e-3;
    params.maxPolls = 5'000;
    const auto serial = runPollingPoint(machine, params);
    const auto sharded = runPollingPoint(machine, params, simJobs(2));
    EXPECT_EQ(serial.bandwidthBps, sharded.bandwidthBps) << machine.name;
    EXPECT_EQ(serial.availability, sharded.availability) << machine.name;
    EXPECT_EQ(serial.messagesReceived, sharded.messagesReceived)
        << machine.name;
    EXPECT_EQ(serial.pollsExecuted, sharded.pollsExecuted) << machine.name;
  }
}

TEST(Pdes, ShardedPwwMatchesSerialBitIdentical) {
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals}) {
    const auto machine = kind == TransportKind::Gm
                             ? backend::gmMachine()
                             : backend::portalsMachine();
    auto params = presets::pwwBase(100 * 1024);
    params.workInterval = 200'000;
    const auto serial = runPwwPoint(machine, params);
    const auto sharded = runPwwPoint(machine, params, simJobs(2));
    EXPECT_EQ(serial.bandwidthBps, sharded.bandwidthBps) << machine.name;
    EXPECT_EQ(serial.availability, sharded.availability) << machine.name;
    EXPECT_EQ(serial.avgPostPerOp, sharded.avgPostPerOp) << machine.name;
    EXPECT_EQ(serial.avgWork, sharded.avgWork) << machine.name;
    EXPECT_EQ(serial.avgWaitPerMsg, sharded.avgWaitPerMsg) << machine.name;
  }
}

TEST(Pdes, ShardedCongestionOnFatTreeMatchesSerial) {
  // Multi-switch fabric: cross-leaf traffic crosses shards through the
  // trunks. 8 nodes over 2 leaves, 4 shards => 2 leaf blocks spread over
  // the shards, every pattern exercised.
  for (const auto pattern :
       {CongestionPattern::Incast, CongestionPattern::Hotspot,
        CongestionPattern::AllToAll}) {
    const auto machine = fatTree(TransportKind::Gm);
    const auto params = congestion(pattern, 8);
    const auto serial = runCongestionPoint(machine, params);
    const auto sharded = runCongestionPoint(machine, params, simJobs(4));
    expectSameCongestion(serial, sharded);
  }
}

TEST(Pdes, ShardSkewIncastAtExactLookahead) {
  // Regression for the tightest legal window: incast concentrates every
  // event on the victim's shard while the sender shards race ahead, and
  // the lookahead equals exactly one link latency. Any off-by-one in the
  // window bound (events at the boundary, messages landing exactly at
  // windowEnd) shows up as divergence from the serial run here.
  const auto machine = fatTree(TransportKind::Portals);
  const auto params = congestion(CongestionPattern::Incast, 8);
  const auto serial = runCongestionPoint(machine, params);
  const auto sharded = runCongestionPoint(machine, params, simJobs(2));
  expectSameCongestion(serial, sharded);
}

TEST(Pdes, ShardedRunsAreDeterministic) {
  const auto machine = fatTree(TransportKind::Gm);
  const auto params = congestion(CongestionPattern::AllToAll, 8);
  const auto first = runCongestionPoint(machine, params, simJobs(4));
  for (int i = 0; i < 2; ++i) {
    const auto again = runCongestionPoint(machine, params, simJobs(4));
    expectSameCongestion(first, again);
  }
}

TEST(Pdes, TracedShardedRunPassesOverlapAudit) {
  // Per-shard trace logs merged into one timeline must still satisfy the
  // trace-driven overlap audit (span pairing intact, per-node ordering
  // preserved, availability reproduced from span data).
  auto params = presets::pollingBase(100 * 1024);
  params.targetDuration = 3e-3;
  params.maxPolls = 5'000;
  const auto serial = runPollingPointTraced(backend::gmMachine(), params);
  const auto sharded =
      runPollingPointTraced(backend::gmMachine(), params, simJobs(2));
  ASSERT_NE(sharded.trace, nullptr);
  EXPECT_EQ(serial.point.bandwidthBps, sharded.point.bandwidthBps);
  EXPECT_EQ(serial.trace->size(), sharded.trace->size());
  const auto audit = auditPolling(*sharded.trace, 0);
  EXPECT_EQ(checkPolling(audit, sharded.point), "");
}

TEST(Pdes, ShardLookaheadMatrixCertifiedAgainstTopology) {
  // The matrix SimCluster derives from the wired fat-tree must (a) keep
  // every entry at or above the certified scalar floor, (b) equal the
  // true minimum cross-leaf path: one trunk hop — latency plus the
  // per-packet header serialized at the (scaled) trunk rate — because a
  // trunk arrival posts directly onto the egress shard, and (c) be
  // symmetric on this symmetric fabric, with the diagonal holding the
  // round-trip feedback cycle.
  const auto machine = fatTree(TransportKind::Gm);
  backend::SimCluster cluster(machine, 8, /*simJobs=*/2);
  const auto& exec = cluster.executor();
  ASSERT_TRUE(exec.parallel());
  ASSERT_EQ(exec.shardCount(), 2);
  EXPECT_TRUE(exec.lookaheadFromMatrix());
  const auto& m = exec.lookaheadMatrix();
  const auto& f = machine.fabric;
  const double trunkRate = f.link.rate * f.topo.trunkRateScale;
  const Time oneTrunkHop =
      f.link.latency + static_cast<Time>(f.perPacketHeader) / trunkRate;
  for (const Time entry : m) {
    ASSERT_TRUE(std::isfinite(entry));
    EXPECT_GE(entry, exec.lookahead());  // certified scalar floor
  }
  EXPECT_DOUBLE_EQ(m[0 * 2 + 1], oneTrunkHop);
  EXPECT_EQ(m[0 * 2 + 1], m[1 * 2 + 0]);  // symmetric fabric
  EXPECT_DOUBLE_EQ(m[0 * 2 + 0], 2 * oneTrunkHop);  // feedback cycle
  EXPECT_DOUBLE_EQ(m[1 * 2 + 1], 2 * oneTrunkHop);
  EXPECT_DOUBLE_EQ(exec.effectiveLookahead(), oneTrunkHop);
  EXPECT_GT(exec.effectiveLookahead(), exec.lookahead());
}

TEST(Pdes, SingleNodeShardsOnStarMatchSerial) {
  // Star partition grain = 1 node, so simJobs = nodes gives the finest
  // legal partition: every shard hosts exactly one node and *all*
  // traffic crosses shards.
  const auto machine = backend::gmMachine();
  const auto params = congestion(CongestionPattern::AllToAll, 4);
  const auto serial = runCongestionPoint(machine, params);
  const auto sharded = runCongestionPoint(machine, params, simJobs(4));
  expectSameCongestion(serial, sharded);
}

TEST(Pdes, PartitionClampsShardsToWholeBlocks) {
  // 8 nodes over 2 fat-tree leaves: at most 2 blocks, so any simJobs
  // above that must clamp to 2 shards — blocks never split.
  const auto machine = fatTree(TransportKind::Gm);
  backend::SimCluster cluster(machine, 8, /*simJobs=*/5);
  EXPECT_EQ(cluster.executor().shardCount(), 2);
  // All four nodes of a leaf land on that leaf's shard.
  for (int rank = 0; rank < 4; ++rank) EXPECT_EQ(cluster.shardOf(rank), 0);
  for (int rank = 4; rank < 8; ++rank) EXPECT_EQ(cluster.shardOf(rank), 1);
}

TEST(Pdes, SimJobsAboveBlockCountClampsAndStillMatches) {
  // More shards requested than partition blocks: the effective shard
  // count clamps (2 nodes on a star => 2 blocks) and results still match
  // the serial core.
  auto params = presets::pollingBase(10 * 1024);
  params.targetDuration = 3e-3;
  params.maxPolls = 2'000;
  const auto serial = runPollingPoint(backend::gmMachine(), params);
  const auto sharded =
      runPollingPoint(backend::gmMachine(), params, simJobs(64));
  EXPECT_EQ(serial.bandwidthBps, sharded.bandwidthBps);
  EXPECT_EQ(serial.messagesReceived, sharded.messagesReceived);
}

}  // namespace
}  // namespace comb::bench
