#include "comb/compare.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "report/archive.hpp"

namespace comb::bench {
namespace {

report::Archive archiveWith(const std::string& sweepId,
                            const std::string& metric, bool higherIsBetter,
                            std::vector<std::vector<double>> samplesPerPoint,
                            const std::string& machineHash = "feedc0de") {
  report::Archive a;
  a.bench = "test_bench";
  a.seed = 1;
  a.provenance.gitSha = "cafe";
  report::ArchiveSweep s;
  s.id = sweepId;
  s.xlabel = "x";
  s.machine = "gm";
  s.machineHash = machineHash;
  double x = 1.0;
  for (auto& samples : samplesPerPoint) {
    report::ArchivePoint p;
    p.x = x++;
    report::ArchiveMetric m;
    m.name = metric;
    m.higherIsBetter = higherIsBetter;
    m.samples = std::move(samples);
    p.metrics.push_back(std::move(m));
    s.points.push_back(std::move(p));
  }
  a.sweeps.push_back(std::move(s));
  return a;
}

TEST(Compare, IdenticalArchivesHaveNoFlags) {
  const auto a = archiveWith("s", "bw", true,
                             {{50, 51, 49, 50.5, 49.5}, {20, 21, 19, 20, 20}});
  const auto report = compareArchives(a, a, {});
  EXPECT_FALSE(report.hasRegressions());
  EXPECT_EQ(report.regressed, 0);
  EXPECT_EQ(report.improved, 0);
  EXPECT_EQ(report.rows.size(), 2u);
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.verdict, Verdict::Ok);
    EXPECT_DOUBLE_EQ(row.relDelta, 0.0);
  }
}

TEST(Compare, DetectsInjectedSlowdown) {
  const auto base = archiveWith("s", "bw", true,
                                {{50, 51, 49, 50.5, 49.5},
                                 {20, 21, 19, 20, 20}});
  // Second point 30% slower; first unchanged.
  const auto cand = archiveWith("s", "bw", true,
                                {{50, 51, 49, 50.5, 49.5},
                                 {14, 14.7, 13.3, 14, 14}});
  const auto report = compareArchives(base, cand, {});
  EXPECT_TRUE(report.hasRegressions());
  EXPECT_EQ(report.regressed, 1);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].verdict, Verdict::Ok);
  EXPECT_EQ(report.rows[1].verdict, Verdict::Regressed);
  EXPECT_DOUBLE_EQ(report.rows[1].x, 2.0);  // names the regressed point
  EXPECT_LT(report.rows[1].relDelta, -0.25);
  EXPECT_EQ(report.rows[1].basis, "mwu");
}

TEST(Compare, DirectionAwareForLowerIsBetter) {
  const auto base = archiveWith("s", "latency_us", false,
                                {{10, 10.2, 9.8, 10, 10.1}});
  const auto worse = archiveWith("s", "latency_us", false,
                                 {{15, 15.2, 14.8, 15, 15.1}});
  EXPECT_TRUE(compareArchives(base, worse, {}).hasRegressions());
  // The same shift in a higher-is-better metric is an improvement.
  const auto baseBw = archiveWith("s", "bw", true, {{10, 10.2, 9.8, 10, 10.1}});
  const auto moreBw = archiveWith("s", "bw", true, {{15, 15.2, 14.8, 15, 15.1}});
  const auto report = compareArchives(baseBw, moreBw, {});
  EXPECT_FALSE(report.hasRegressions());
  EXPECT_EQ(report.improved, 1);
}

TEST(Compare, ToleranceSuppressesSmallShifts) {
  const auto base = archiveWith("s", "bw", true, {{100, 100, 100, 100, 100}});
  const auto cand = archiveWith("s", "bw", true, {{99, 99, 99, 99, 99}});
  CompareOptions opts;
  opts.tolerance = 0.02;  // 1% shift is inside the band
  EXPECT_FALSE(compareArchives(base, cand, opts).hasRegressions());
  opts.tolerance = 0.005;
  EXPECT_TRUE(compareArchives(base, cand, opts).hasRegressions());
}

TEST(Compare, SingleRepUsesExactBasis) {
  const auto base = archiveWith("s", "bw", true, {{100}});
  const auto cand = archiveWith("s", "bw", true, {{90}});
  const auto report = compareArchives(base, cand, {});
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].basis, "exact");
  EXPECT_EQ(report.rows[0].verdict, Verdict::Regressed);
  // Identical single reps: no flag.
  EXPECT_FALSE(compareArchives(base, base, {}).hasRegressions());
}

TEST(Compare, UnmatchedStructureLandsInNotes) {
  const auto base = archiveWith("only_in_base", "bw", true, {{1, 1, 1}});
  const auto cand = archiveWith("only_in_cand", "bw", true, {{1, 1, 1}});
  const auto report = compareArchives(base, cand, {});
  EXPECT_TRUE(report.rows.empty());
  ASSERT_EQ(report.notes.size(), 2u);
  EXPECT_NE(report.notes[0].find("only_in_base"), std::string::npos);
  EXPECT_NE(report.notes[1].find("only_in_cand"), std::string::npos);
}

TEST(Compare, MachineHashMismatchIsNoted) {
  const auto base = archiveWith("s", "bw", true, {{1, 1, 1}}, "aaaa");
  const auto cand = archiveWith("s", "bw", true, {{1, 1, 1}}, "bbbb");
  const auto report = compareArchives(base, cand, {});
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.back().find("machine models differ"),
            std::string::npos);
}

TEST(Compare, CrossCoreConfigurationIsNoted) {
  const auto base = archiveWith("s", "bw", true, {{1, 1, 1}});
  auto cand = base;
  cand.provenance.simJobs = 4;
  cand.provenance.lookahead = 1.5e-6;
  cand.provenance.lookaheadSource = "matrix";
  cand.provenance.simAffinity = "compact";
  const auto report = compareArchives(base, cand, {});
  // Still comparable (no rows dropped), but every configuration
  // difference is called out: shard count, window bounds, affinity.
  EXPECT_EQ(report.rows.size(), 1u);
  ASSERT_EQ(report.notes.size(), 3u);
  EXPECT_NE(report.notes[0].find("--sim-jobs"), std::string::npos);
  EXPECT_NE(report.notes[1].find("window bounds differ"), std::string::npos);
  EXPECT_NE(report.notes[1].find("matrix"), std::string::npos);
  EXPECT_NE(report.notes[2].find("--sim-affinity"), std::string::npos);
  // Identical configurations stay silent.
  EXPECT_TRUE(compareArchives(base, base, {}).notes.empty());
}

TEST(Compare, RejectsBadOptions) {
  const auto a = archiveWith("s", "bw", true, {{1}});
  CompareOptions opts;
  opts.tolerance = -0.1;
  EXPECT_THROW(compareArchives(a, a, opts), ConfigError);
  opts.tolerance = 0.02;
  opts.alpha = 1.5;
  EXPECT_THROW(compareArchives(a, a, opts), ConfigError);
}

TEST(Compare, BenchJsonGate) {
  const auto doc = json::parse(R"({
    "baseline": {
      "benchmarks": {"BM_Fast": {"items_per_second": 1000000.0}},
      "figure_wallclock_seconds": {"fig04": 6.5}
    },
    "current": {
      "benchmarks": {"BM_Fast": {"items_per_second": 500000.0}},
      "figure_wallclock_seconds": {"fig04": 6.5}
    }
  })");
  const auto report = compareBenchJson(doc, {});
  EXPECT_TRUE(report.hasRegressions());
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].metric, "BM_Fast");
  EXPECT_EQ(report.rows[0].verdict, Verdict::Regressed);
  EXPECT_EQ(report.rows[1].verdict, Verdict::Ok);
}

TEST(Compare, BenchJsonWallclockIsLowerBetter) {
  const auto doc = json::parse(R"({
    "baseline": {"figure_wallclock_seconds": {"fig04": 4.0}},
    "current":  {"figure_wallclock_seconds": {"fig04": 6.0}}
  })");
  EXPECT_TRUE(compareBenchJson(doc, {}).hasRegressions());
  const auto faster = json::parse(R"({
    "baseline": {"figure_wallclock_seconds": {"fig04": 6.0}},
    "current":  {"figure_wallclock_seconds": {"fig04": 4.0}}
  })");
  const auto report = compareBenchJson(faster, {});
  EXPECT_FALSE(report.hasRegressions());
  EXPECT_EQ(report.improved, 1);
}

TEST(Compare, BenchJsonNeedsBothBlocks) {
  EXPECT_THROW(compareBenchJson(json::parse(R"({"baseline": {}})"), {}),
               ConfigError);
}

TEST(Compare, RenderListsFlaggedRowsAndSummary) {
  const auto base = archiveWith("s", "bw", true, {{100}, {200}});
  const auto cand = archiveWith("s", "bw", true, {{50}, {200}});
  const auto report = compareArchives(base, cand, {});
  std::ostringstream out;
  renderCompare(out, report, /*all=*/false);
  EXPECT_NE(out.str().find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.str().find("1 regressed"), std::string::npos);
  // Non-flagged rows only appear with all=true.
  EXPECT_EQ(out.str().find("200"), std::string::npos);
  std::ostringstream outAll;
  renderCompare(outAll, report, /*all=*/true);
  EXPECT_NE(outAll.str().find("200"), std::string::npos);
}

}  // namespace
}  // namespace comb::bench
