// The COMB polling method on the simulated backend: invariants and the
// paper's qualitative properties, over both machines (TEST_P).
#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using backend::MachineConfig;
using backend::TransportKind;

MachineConfig machineFor(TransportKind k) {
  return k == TransportKind::Gm ? backend::gmMachine()
                                : backend::portalsMachine();
}

PollingParams quickParams(Bytes msgBytes, std::uint64_t interval) {
  auto p = presets::pollingBase(msgBytes);
  p.pollInterval = interval;
  p.targetDuration = 15e-3;
  p.maxPolls = 15'000;
  return p;
}

class PollingTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  MachineConfig machine() const { return machineFor(GetParam()); }
};

TEST_P(PollingTest, AvailabilityWithinUnitInterval) {
  for (const std::uint64_t interval : {100ull, 100'000ull, 10'000'000ull}) {
    const auto pt = runPollingPoint(machine(), quickParams(100_KB, interval));
    EXPECT_GT(pt.availability, 0.0) << "interval " << interval;
    EXPECT_LE(pt.availability, 1.0 + 1e-9) << "interval " << interval;
  }
}

TEST_P(PollingTest, BandwidthPositiveAndBelowWire) {
  const auto pt = runPollingPoint(machine(), quickParams(100_KB, 10'000));
  EXPECT_GT(pt.bandwidthBps, 0.0);
  // One-direction goodput can never exceed the configured link rate.
  EXPECT_LT(pt.bandwidthBps, machine().fabric.link.rate);
}

TEST_P(PollingTest, DryRunMatchesWorkAnalytically) {
  const auto params = quickParams(100_KB, 50'000);
  const auto pt = runPollingPoint(machine(), params);
  // Dry run executes polls*interval iterations of pure work. A small
  // tail of kernel work from the preceding barrier may still interrupt
  // the first loop iterations on Portals, hence the 1% tolerance.
  const double expect = static_cast<double>(pt.pollsExecuted) *
                        static_cast<double>(params.pollInterval) * 4e-9;
  EXPECT_NEAR(pt.dryTime, expect, expect * 0.01);
}

TEST_P(PollingTest, LiveRunNeverFasterThanDry) {
  for (const std::uint64_t interval : {1'000ull, 1'000'000ull}) {
    const auto pt = runPollingPoint(machine(), quickParams(100_KB, interval));
    EXPECT_GE(pt.liveTime, pt.dryTime * (1.0 - 1e-9));
  }
}

TEST_P(PollingTest, DeterministicAcrossRuns) {
  const auto params = quickParams(50_KB, 20'000);
  const auto a = runPollingPoint(machine(), params);
  const auto b = runPollingPoint(machine(), params);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_DOUBLE_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_DOUBLE_EQ(a.liveTime, b.liveTime);
}

TEST_P(PollingTest, AvailabilityRisesWithPollInterval) {
  const auto lo = runPollingPoint(machine(), quickParams(100_KB, 100));
  const auto hi =
      runPollingPoint(machine(), quickParams(100_KB, 100'000'000));
  EXPECT_LT(lo.availability, 0.9);
  EXPECT_GT(hi.availability, 0.9);
  EXPECT_GT(hi.availability, lo.availability);
}

TEST_P(PollingTest, BandwidthCollapsesAtHugeIntervals) {
  const auto plateau = runPollingPoint(machine(), quickParams(100_KB, 5'000));
  const auto sparse =
      runPollingPoint(machine(), quickParams(100_KB, 100'000'000));
  EXPECT_LT(sparse.bandwidthBps, 0.2 * plateau.bandwidthBps);
}

TEST_P(PollingTest, MessagesFlowBothWays) {
  const auto pt = runPollingPoint(machine(), quickParams(10_KB, 1'000));
  EXPECT_GT(pt.messagesReceived, 10u);
}

TEST_P(PollingTest, QueueDepthOneIsPingPong) {
  auto deep = quickParams(100_KB, 5'000);
  auto shallow = deep;
  shallow.queueDepth = 1;
  const auto ptDeep = runPollingPoint(machine(), deep);
  const auto ptShallow = runPollingPoint(machine(), shallow);
  EXPECT_LT(ptShallow.bandwidthBps, ptDeep.bandwidthBps);
}

INSTANTIATE_TEST_SUITE_P(Machines, PollingTest,
                         ::testing::Values(TransportKind::Gm,
                                           TransportKind::Portals),
                         [](const auto& suiteInfo) {
                           return std::string(
                               backend::transportKindName(suiteInfo.param));
                         });

// --- cross-machine properties (the paper's headline) -----------------------

TEST(PollingCompare, GmOutperformsPortalsAtPlateau) {
  const auto gm =
      runPollingPoint(backend::gmMachine(), quickParams(100_KB, 10'000));
  const auto portals =
      runPollingPoint(backend::portalsMachine(), quickParams(100_KB, 10'000));
  EXPECT_GT(gm.bandwidthBps, 1.3 * portals.bandwidthBps);
  EXPECT_LT(gm.bandwidthBps, 2.0 * portals.bandwidthBps);
}

TEST(PollingCompare, PortalsBurnsCpuWhileGmDoesNot) {
  // At a mid poll interval with full message flow, GM's availability is
  // high (NIC offload) while Portals' is low (interrupts + copies).
  const auto gm =
      runPollingPoint(backend::gmMachine(), quickParams(100_KB, 50'000));
  const auto portals =
      runPollingPoint(backend::portalsMachine(), quickParams(100_KB, 50'000));
  EXPECT_GT(gm.availability, 0.9);
  EXPECT_LT(portals.availability, 0.3);
}

// Property sweep: availability in [0,1] and bandwidth below wire for every
// machine x size x interval combination.
struct SweepCase {
  TransportKind kind;
  Bytes size;
  std::uint64_t interval;
};

class PollingSweepProperty : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PollingSweepProperty, Invariants) {
  const auto& c = GetParam();
  auto params = quickParams(c.size, c.interval);
  params.targetDuration = 8e-3;
  const auto pt = runPollingPoint(machineFor(c.kind), params);
  EXPECT_GT(pt.availability, 0.0);
  EXPECT_LE(pt.availability, 1.0 + 1e-9);
  EXPECT_GE(pt.bandwidthBps, 0.0);
  EXPECT_LT(pt.bandwidthBps, machineFor(c.kind).fabric.link.rate);
  EXPECT_GE(pt.liveTime, pt.dryTime * (1.0 - 1e-9));
}

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals})
    for (const Bytes size : {10_KB, 100_KB, 300_KB})
      for (const std::uint64_t interval : {100ull, 10'000ull, 1'000'000ull})
        cases.push_back({kind, size, interval});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, PollingSweepProperty,
                         ::testing::ValuesIn(sweepCases()),
                         [](const auto& suiteInfo) {
                           const auto& c = suiteInfo.param;
                           return std::string(
                                      backend::transportKindName(c.kind)) +
                                  "_" + std::to_string(c.size / 1024) +
                                  "KB_i" + std::to_string(c.interval);
                         });

}  // namespace
}  // namespace comb::bench
