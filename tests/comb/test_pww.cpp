// The COMB Post-Work-Wait method on the simulated backend.
#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using backend::MachineConfig;
using backend::TransportKind;

MachineConfig machineFor(TransportKind k) {
  return k == TransportKind::Gm ? backend::gmMachine()
                                : backend::portalsMachine();
}

PwwParams quickParams(Bytes msgBytes, std::uint64_t workInterval) {
  auto p = presets::pwwBase(msgBytes);
  p.workInterval = workInterval;
  p.reps = 9;  // 1 warm-up + 8 measured
  return p;
}

class PwwTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  MachineConfig machine() const { return machineFor(GetParam()); }
};

TEST_P(PwwTest, PhasesArePositiveAndSumToCycle) {
  const auto pt = runPwwPoint(machine(), quickParams(100_KB, 100'000));
  EXPECT_GT(pt.avgPost, 0.0);
  EXPECT_GT(pt.avgWork, 0.0);
  EXPECT_GE(pt.avgWait, 0.0);
  EXPECT_GT(pt.dryWork, 0.0);
  const Time cycle = pt.avgPost + pt.avgWork + pt.avgWait;
  EXPECT_NEAR(pt.availability, pt.dryWork / cycle, 1e-12);
  EXPECT_NEAR(pt.bandwidthBps, static_cast<double>(pt.msgBytes) / cycle,
              1.0);
}

TEST_P(PwwTest, DryWorkMatchesAnalytic) {
  const auto pt = runPwwPoint(machine(), quickParams(100_KB, 250'000));
  // 1% tolerance: a tail of kernel work from the preceding barrier can
  // still interrupt the first dry iterations on Portals.
  EXPECT_NEAR(pt.dryWork, 250'000 * 4e-9, 250'000 * 4e-9 * 0.01);
}

TEST_P(PwwTest, WorkPhaseAtLeastDryWork) {
  for (const std::uint64_t w : {10'000ull, 1'000'000ull}) {
    const auto pt = runPwwPoint(machine(), quickParams(100_KB, w));
    EXPECT_GE(pt.avgWork, pt.dryWork * (1.0 - 1e-9)) << "work " << w;
  }
}

TEST_P(PwwTest, AvailabilityRisesWithWorkInterval) {
  const auto lo = runPwwPoint(machine(), quickParams(100_KB, 5'000));
  const auto hi = runPwwPoint(machine(), quickParams(100_KB, 10'000'000));
  EXPECT_LT(lo.availability, 0.35);
  EXPECT_GT(hi.availability, 0.9);
}

TEST_P(PwwTest, NoInitialAvailabilityPlateau) {
  // Paper: PWW lacks the polling method's low plateau; availability keeps
  // falling as the work interval shrinks because the wait dominates.
  const auto a = runPwwPoint(machine(), quickParams(100_KB, 2'000));
  const auto b = runPwwPoint(machine(), quickParams(100_KB, 50'000));
  const auto c = runPwwPoint(machine(), quickParams(100_KB, 500'000));
  EXPECT_LT(a.availability, b.availability);
  EXPECT_LT(b.availability, c.availability);
}

TEST_P(PwwTest, Deterministic) {
  const auto params = quickParams(50_KB, 123'456);
  const auto a = runPwwPoint(machine(), params);
  const auto b = runPwwPoint(machine(), params);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_DOUBLE_EQ(a.avgPost, b.avgPost);
  EXPECT_DOUBLE_EQ(a.avgWait, b.avgWait);
}

TEST_P(PwwTest, BatchScalesBandwidth) {
  auto one = quickParams(50_KB, 20'000);
  auto four = one;
  four.batch = 4;
  const auto ptOne = runPwwPoint(machine(), one);
  const auto ptFour = runPwwPoint(machine(), four);
  // Four messages per cycle pipeline on the wire, so throughput must not
  // degrade and is bounded well under 4x. How much it *gains* depends on
  // the bottleneck: GM (wire-bound, per-message latency amortized) gains
  // substantially; Portals (host-CPU-bound, costs scale per message)
  // gains little.
  EXPECT_GT(ptFour.bandwidthBps, 1.02 * ptOne.bandwidthBps);
  EXPECT_LT(ptFour.bandwidthBps, 4.0 * ptOne.bandwidthBps);
  if (GetParam() == TransportKind::Gm) {
    EXPECT_GT(ptFour.bandwidthBps, 1.15 * ptOne.bandwidthBps);
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, PwwTest,
                         ::testing::Values(TransportKind::Gm,
                                           TransportKind::Portals),
                         [](const auto& suiteInfo) {
                           return std::string(
                               backend::transportKindName(suiteInfo.param));
                         });

// --- the paper's offload findings -------------------------------------------

TEST(PwwOffload, PortalsWaitVanishesGmWaitPersists) {
  const auto gm =
      runPwwPoint(backend::gmMachine(), quickParams(100_KB, 5'000'000));
  const auto portals =
      runPwwPoint(backend::portalsMachine(), quickParams(100_KB, 5'000'000));
  // 5M iters = 20 ms of work: far beyond the ~1.2 ms exchange.
  EXPECT_LT(portals.avgWait, 50e-6);   // offload: messaging done during work
  EXPECT_GT(gm.avgWait, 800e-6);       // no offload: full exchange in wait
}

TEST(PwwOffload, PortalsWorkInflatedGmWorkExact) {
  const auto gm =
      runPwwPoint(backend::gmMachine(), quickParams(100_KB, 500'000));
  const auto portals =
      runPwwPoint(backend::portalsMachine(), quickParams(100_KB, 500'000));
  EXPECT_NEAR(gm.avgWork, gm.dryWork, gm.dryWork * 1e-6);
  EXPECT_GT(portals.avgWork, 1.2 * portals.dryWork);
}

TEST(PwwOffload, GmPostsCheapPortalsPostsExpensive) {
  const auto gm =
      runPwwPoint(backend::gmMachine(), quickParams(100_KB, 100'000));
  const auto portals =
      runPwwPoint(backend::portalsMachine(), quickParams(100_KB, 100'000));
  EXPECT_LT(gm.avgPostPerOp, 20e-6);
  EXPECT_GT(portals.avgPostPerOp, 100e-6);
}

TEST(PwwTestCall, SingleTestDrainsGmWait) {
  auto plain = quickParams(100_KB, 2'000'000);
  auto withTest = plain;
  withTest.testCallAtFraction = 0.1;
  const auto a = runPwwPoint(backend::gmMachine(), plain);
  const auto b = runPwwPoint(backend::gmMachine(), withTest);
  EXPECT_GT(a.avgWait, 800e-6);
  EXPECT_LT(b.avgWait, 100e-6);
  EXPECT_GT(b.bandwidthBps, 1.1 * a.bandwidthBps);
}

TEST(PwwTestCall, TestCallBarelyChangesPortals) {
  // Portals progresses anyway; the inserted call is just one library call.
  auto plain = quickParams(100_KB, 2'000'000);
  auto withTest = plain;
  withTest.testCallAtFraction = 0.1;
  const auto a = runPwwPoint(backend::portalsMachine(), plain);
  const auto b = runPwwPoint(backend::portalsMachine(), withTest);
  EXPECT_NEAR(b.bandwidthBps, a.bandwidthBps, 0.05 * a.bandwidthBps);
}

}  // namespace
}  // namespace comb::bench
