// Congestion extension: traffic-matrix algebra, pairwise invariance on a
// non-blocking fabric (the ext_multipair regression), incast fan-in
// sanity, backpressure monotonicity in oversubscription, and parallel
// sweep bit-identity.
#include "comb/congestion.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "backend/machine.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using backend::MachineConfig;
using backend::TransportKind;

MachineConfig machineFor(TransportKind k) {
  return k == TransportKind::Gm ? backend::gmMachine()
                                : backend::portalsMachine();
}

/// Single unlimited crossbar — the idealized non-blocking fabric.
MachineConfig starMachine(TransportKind k) {
  auto m = machineFor(k);
  m.fabric.sw.ports = 0;
  return m;
}

/// Small fat-tree under finite queues: 4 nodes per leaf, one spine, so
/// cross-leaf traffic funnels through single trunks.
MachineConfig fatTreeMachine(TransportKind k, double trunkScale,
                             net::Backpressure bp) {
  auto m = machineFor(k);
  m.fabric.sw.ports = 0;
  m.fabric.topo.kind = net::TopologyKind::FatTree;
  m.fabric.topo.nodesPerSwitch = 4;
  m.fabric.topo.spines = 1;
  m.fabric.topo.trunkRateScale = trunkScale;
  m.fabric.sw.queue.depthPackets = 16;
  m.fabric.sw.queue.backpressure = bp;
  return m;
}

CongestionParams quickParams(CongestionPattern pattern, std::uint64_t nodes) {
  CongestionParams p;
  p.pattern = pattern;
  p.nodes = nodes;
  p.msgBytes = 16_KB;
  p.messagesPerSender = 2;
  p.window = 4;
  return p;
}

TEST(CongestionMatrix, SendAndReceiveTotalsBalance) {
  for (const auto pattern : {CongestionPattern::Incast,
                             CongestionPattern::Hotspot,
                             CongestionPattern::AllToAll}) {
    CongestionParams p = quickParams(pattern, 9);
    std::uint64_t sent = 0, expected = 0;
    for (int r = 0; r < 9; ++r) {
      const auto dests = congestionDests(p, r);
      sent += dests.size();
      expected += congestionExpectedRecvs(p, r);
      for (const int d : dests) {
        EXPECT_NE(d, r) << "self-send in " << congestionPatternName(pattern);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 9);
      }
    }
    EXPECT_EQ(sent, expected) << congestionPatternName(pattern);
  }
}

TEST(CongestionMatrix, IncastTargetsNodeZero) {
  CongestionParams p = quickParams(CongestionPattern::Incast, 8);
  EXPECT_TRUE(congestionDests(p, 0).empty());
  EXPECT_EQ(congestionExpectedRecvs(p, 0), 7u * 2u);
  for (int r = 1; r < 8; ++r) {
    for (const int d : congestionDests(p, r)) EXPECT_EQ(d, 0);
    EXPECT_EQ(congestionExpectedRecvs(p, r), 0u);
  }
}

TEST(CongestionMatrix, AllToAllIsBalanced) {
  CongestionParams p = quickParams(CongestionPattern::AllToAll, 6);
  p.messagesPerSender = 5;  // one message to every other node
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(congestionDests(p, r).size(), 5u);
    EXPECT_EQ(congestionExpectedRecvs(p, r), 5u);
  }
}

TEST(CongestionMatrix, HotspotMixesHotAndColdTraffic) {
  CongestionParams p = quickParams(CongestionPattern::Hotspot, 8);
  p.messagesPerSender = 4;
  const auto dests = congestionDests(p, 3);
  ASSERT_EQ(dests.size(), 4u);
  int hot = 0;
  for (const int d : dests) hot += d == 0 ? 1 : 0;
  EXPECT_EQ(hot, 2);
  EXPECT_EQ(dests[1], 4);  // ring neighbour carries the background load
}

// The ext_multipair regression: on a non-blocking crossbar, disjoint
// communication (the pairwise all-to-all ring with one exchange partner
// per step) must not slow down as more nodes join — mean sender goodput
// stays flat within a few percent from 4 to 16 nodes.
TEST(Congestion, PairwiseInvariantOnNonBlockingFabric) {
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals}) {
    const auto machine = starMachine(kind);
    std::vector<double> mean;
    for (const std::uint64_t n : {4ull, 8ull, 16ull}) {
      const auto pt = runCongestionPoint(
          machine, quickParams(CongestionPattern::AllToAll, n));
      EXPECT_EQ(pt.messagesDelivered, n * 2u);
      EXPECT_EQ(pt.switches.dropsNoRoute, 0u);
      mean.push_back(pt.meanNodeBandwidthBps);
    }
    for (std::size_t i = 1; i < mean.size(); ++i) {
      EXPECT_NEAR(mean[i], mean[0], mean[0] * 0.10)
          << "transport " << static_cast<int>(kind) << " step " << i;
    }
  }
}

// Incast sanity: with every sender aimed at node 0, the victim downlink
// is the bottleneck, so per-sender goodput must fall as fan-in grows.
TEST(Congestion, IncastPerSenderBandwidthFallsWithFanIn) {
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals}) {
    const auto machine = starMachine(kind);
    double prev = 0.0;
    bool first = true;
    for (const std::uint64_t n : {4ull, 8ull, 16ull}) {
      const auto pt = runCongestionPoint(
          machine, quickParams(CongestionPattern::Incast, n));
      EXPECT_EQ(pt.messagesDelivered, (n - 1) * 2u);
      EXPECT_GT(pt.minNodeBandwidthBps, 0.0);
      if (!first) EXPECT_LT(pt.meanNodeBandwidthBps, prev);
      prev = pt.meanNodeBandwidthBps;
      first = false;
    }
  }
}

// Credit backpressure keeps the fabric lossless: no queue drops, no
// retransmissions, and a slower trunk strictly stretches the pattern.
// (Total stall *counts* are not monotone in trunk slowdown — a choked
// trunk admits remote packets to the victim's queue more gently — so the
// makespan is the assertable congestion signal; stalls just have to show
// up somewhere.)
TEST(Congestion, CreditBackpressureLosslessUnderOversubscription) {
  const CongestionParams p = quickParams(CongestionPattern::Incast, 8);
  std::vector<Time> makespan;
  std::uint64_t stalls = 0;
  for (const double scale : {1.0, 0.25}) {
    const auto machine =
        fatTreeMachine(TransportKind::Gm, scale, net::Backpressure::Credit);
    const auto pt = runCongestionPoint(machine, p);
    EXPECT_EQ(pt.messagesDelivered, 14u);
    EXPECT_EQ(pt.switches.dropsQueue, 0u);
    EXPECT_EQ(pt.fault.retransmits, 0u);  // lossless: protocol never engages
    makespan.push_back(pt.makespan);
    stalls += pt.switches.creditStalls;
  }
  EXPECT_GT(makespan[1], makespan[0]);
  EXPECT_GT(stalls, 0u);
}

// Tail-drop marks the fabric lossy (transport retransmission engages) and
// drops are monotone in oversubscription.
TEST(Congestion, TailDropsMonotoneInOversubscription) {
  const CongestionParams p = quickParams(CongestionPattern::Incast, 8);
  std::vector<std::uint64_t> drops;
  for (const double scale : {1.0, 0.25}) {
    const auto machine =
        fatTreeMachine(TransportKind::Gm, scale, net::Backpressure::TailDrop);
    const auto pt = runCongestionPoint(machine, p);
    // Retransmission guarantees delivery despite the drops.
    EXPECT_EQ(pt.messagesDelivered, 14u);
    drops.push_back(pt.switches.dropsQueue);
  }
  EXPECT_GE(drops[1], drops[0]);
  EXPECT_GT(drops[1], 0u);
}

TEST(Congestion, QueuePeakObservedUnderContention) {
  const auto machine =
      fatTreeMachine(TransportKind::Gm, 0.5, net::Backpressure::Credit);
  const auto pt =
      runCongestionPoint(machine, quickParams(CongestionPattern::Incast, 8));
  EXPECT_GT(pt.switches.queuePeakPackets, 0u);
}

TEST(Congestion, SweepParallelIsBitIdentical) {
  const auto machine = starMachine(TransportKind::Gm);
  auto spec = sweepOver(quickParams(CongestionPattern::Hotspot, 4),
                        {4ull, 6ull, 8ull});
  RunOptions serial;
  serial.jobs = 1;
  RunOptions parallel;
  parallel.jobs = 4;
  const auto a = runCongestionSweep(machine, spec, serial);
  const auto b = runCongestionSweep(machine, spec, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bandwidthBps, b[i].bandwidthBps);
    EXPECT_EQ(a[i].makespan, b[i].makespan);
    EXPECT_EQ(a[i].availability, b[i].availability);
    ASSERT_EQ(a[i].nodeBandwidthBps.size(), b[i].nodeBandwidthBps.size());
    for (std::size_t j = 0; j < a[i].nodeBandwidthBps.size(); ++j)
      EXPECT_EQ(a[i].nodeBandwidthBps[j], b[i].nodeBandwidthBps[j]);
  }
}

TEST(Congestion, RepsIdenticalOnLosslessFabric) {
  const auto machine = starMachine(TransportKind::Portals);
  RunOptions opts;
  opts.rep.reps = 3;
  const auto run = runCongestionPointReps(
      machine, quickParams(CongestionPattern::Incast, 4), opts);
  ASSERT_EQ(run.reps.size(), 3u);
  for (const auto& rep : run.reps) {
    EXPECT_EQ(rep.bandwidthBps, run.reps[0].bandwidthBps);
    EXPECT_EQ(rep.makespan, run.reps[0].makespan);
  }
  EXPECT_EQ(run.bandwidthCi.halfWidth(), 0.0);
}

TEST(Congestion, RejectsBadParameters) {
  const auto machine = starMachine(TransportKind::Gm);
  CongestionParams p = quickParams(CongestionPattern::Incast, 1);
  EXPECT_THROW(runCongestionPoint(machine, p), ConfigError);
  p = quickParams(CongestionPattern::Incast, 4);
  p.window = 0;
  EXPECT_THROW(runCongestionPoint(machine, p), ConfigError);
}

TEST(Congestion, AvailabilityWithinUnitInterval) {
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals}) {
    const auto pt = runCongestionPoint(
        starMachine(kind), quickParams(CongestionPattern::AllToAll, 6));
    EXPECT_GT(pt.availability, 0.0);
    EXPECT_LE(pt.availability, 1.0 + 1e-9);
    EXPECT_GT(pt.minAvailability, 0.0);
    for (const double a : pt.nodeAvailability) EXPECT_LE(a, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace comb::bench
