// Ping-pong latency method + the SMP extension.
#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

TEST(Latency, PositiveAndOrdered) {
  LatencyParams p;
  p.msgBytes = 10_KB;
  p.reps = 10;
  const auto pt = runLatencyPoint(backend::gmMachine(), p);
  EXPECT_GT(pt.halfRoundTripMin, 0.0);
  EXPECT_GE(pt.halfRoundTripAvg, pt.halfRoundTripMin);
  EXPECT_GT(pt.bandwidthBps, 0.0);
  EXPECT_EQ(pt.msgBytes, 10_KB);
}

TEST(Latency, GrowsWithSize) {
  LatencyParams base;
  base.reps = 8;
  const auto pts = runLatencySweep(
      backend::gmMachine(), sweepOver(base, {1_KB, 10_KB, 100_KB}));
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].halfRoundTripAvg, pts[1].halfRoundTripAvg);
  EXPECT_LT(pts[1].halfRoundTripAvg, pts[2].halfRoundTripAvg);
}

TEST(Latency, GmBeatsPortals) {
  LatencyParams p;
  p.msgBytes = 10_KB;
  p.reps = 8;
  const auto gm = runLatencyPoint(backend::gmMachine(), p);
  const auto portals = runLatencyPoint(backend::portalsMachine(), p);
  EXPECT_LT(gm.halfRoundTripAvg, portals.halfRoundTripAvg);
}

TEST(Latency, SteadyStateIsTight) {
  // The deterministic simulator keeps post-warm-up round trips nearly
  // identical (kernel-pump tails shift rep boundaries by a fragment or
  // two on Portals, hence "nearly").
  LatencyParams p;
  p.msgBytes = 50_KB;
  p.reps = 6;
  const auto pt = runLatencyPoint(backend::portalsMachine(), p);
  EXPECT_NEAR(pt.halfRoundTripAvg, pt.halfRoundTripMin,
              pt.halfRoundTripMin * 0.02);
}

TEST(SmpExtension, SteeringRestoresAvailability) {
  auto base = presets::pollingBase(100_KB);
  base.pollInterval = 20'000;
  base.targetDuration = 15e-3;
  const auto uni = runPollingPoint(backend::portalsMachine(), base);

  auto smpMachine = backend::portalsMachine();
  smpMachine.cpusPerNode = 2;
  smpMachine.nicCpu = 1;
  const auto smp = runPollingPoint(smpMachine, base);

  EXPECT_LT(uni.availability, 0.3);
  EXPECT_GT(smp.availability, 0.7);
  // Bandwidth does not degrade when the kernel work moves off-CPU.
  EXPECT_GE(smp.bandwidthBps, 0.9 * uni.bandwidthBps);
}

TEST(SmpExtension, SecondCpuCarriesTheInterrupts) {
  auto machine = backend::portalsMachine();
  machine.cpusPerNode = 2;
  machine.nicCpu = 1;
  backend::SimCluster cluster(machine, 2);
  auto sender = [](backend::SimProc& p) -> sim::Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> sim::Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  // All kernel/NIC interrupt work landed on CPU 1 of each node; the
  // application CPUs only paid library/syscall compute time.
  EXPECT_DOUBLE_EQ(cluster.cpu(0, 0).isrTime(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.cpu(1, 0).isrTime(), 0.0);
  EXPECT_GT(cluster.cpu(0, 1).isrTime(), 0.0);  // tx pump
  EXPECT_GT(cluster.cpu(1, 1).isrTime(), 0.0);  // rx interrupts
  EXPECT_GT(cluster.cpu(0, 0).userTime(), 0.0);  // syscalls still local
}

TEST(SmpExtension, GmUnaffectedBySteering) {
  auto machine = backend::gmMachine();
  machine.cpusPerNode = 2;
  machine.nicCpu = 1;
  auto base = presets::pollingBase(100_KB);
  base.pollInterval = 20'000;
  base.targetDuration = 10e-3;
  const auto steered = runPollingPoint(machine, base);
  const auto plain =
      runPollingPoint(backend::gmMachine(), base);
  // GM raises no interrupts: steering changes nothing.
  EXPECT_DOUBLE_EQ(steered.availability, plain.availability);
  EXPECT_DOUBLE_EQ(steered.bandwidthBps, plain.bandwidthBps);
}

}  // namespace
}  // namespace comb::bench
