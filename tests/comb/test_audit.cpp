// Trace-driven overlap audit: synthetic span data reconstructs the
// expected numbers, malformed data is rejected, and — the point of the
// subsystem — a real traced run reproduces the runner-reported statistics
// exactly.
#include "comb/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "backend/machine.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using sim::TraceCategory;
using sim::TraceLog;

void phaseSpan(TraceLog& log, const char* label, Time t0, Time t1,
               int node = 0) {
  log.beginSpan(t0, TraceCategory::Phase, node, label);
  log.endSpan(t1, TraceCategory::Phase, node, label);
}

TEST(AuditPww, ReconstructsFromSyntheticSpans) {
  TraceLog log(64);
  // Dry loop: 3 reps of 1ms each.
  phaseSpan(log, "dry", 0.0, 3e-3);
  // Warm-up cycle (slower — must be excluded) then 2 measured cycles.
  phaseSpan(log, "post", 10e-3, 12e-3);   // 2ms (warm-up)
  phaseSpan(log, "work", 12e-3, 15e-3);
  phaseSpan(log, "wait", 15e-3, 20e-3);
  phaseSpan(log, "post", 20e-3, 21e-3);   // 1ms
  phaseSpan(log, "work", 21e-3, 23e-3);   // 2ms
  phaseSpan(log, "wait", 23e-3, 26e-3);   // 3ms
  phaseSpan(log, "post", 26e-3, 27e-3);   // 1ms
  phaseSpan(log, "work", 27e-3, 29e-3);   // 2ms
  phaseSpan(log, "wait", 29e-3, 32e-3);   // 3ms
  const PwwAudit a = auditPww(log);
  EXPECT_EQ(a.reps, 2);
  EXPECT_NEAR(a.avgPost, 1e-3, 1e-12);
  EXPECT_NEAR(a.avgWork, 2e-3, 1e-12);
  EXPECT_NEAR(a.avgWait, 3e-3, 1e-12);
  EXPECT_NEAR(a.dryWork, 1e-3, 1e-12);
  EXPECT_NEAR(a.availability, 1e-3 / 6e-3, 1e-9);
}

TEST(AuditPww, IgnoresOtherNodesSpans) {
  TraceLog log(64);
  phaseSpan(log, "dry", 0.0, 2e-3, 0);
  phaseSpan(log, "post", 2e-3, 3e-3, 0);
  phaseSpan(log, "work", 3e-3, 4e-3, 0);
  phaseSpan(log, "wait", 4e-3, 5e-3, 0);
  phaseSpan(log, "post", 5e-3, 6e-3, 0);
  phaseSpan(log, "work", 6e-3, 7e-3, 0);
  phaseSpan(log, "wait", 7e-3, 8e-3, 0);
  // Unrelated phases on the support rank must not change anything.
  phaseSpan(log, "post", 0.0, 50e-3, 1);
  phaseSpan(log, "work", 50e-3, 99e-3, 1);
  phaseSpan(log, "wait", 99e-3, 100e-3, 1);
  const PwwAudit a = auditPww(log, 0);
  EXPECT_EQ(a.reps, 1);
  EXPECT_NEAR(a.avgPost, 1e-3, 1e-12);
}

TEST(AuditPww, RejectsMalformedSpans) {
  {  // no dry span
    TraceLog log(16);
    phaseSpan(log, "post", 0, 1e-3);
    EXPECT_THROW(auditPww(log), Error);
  }
  {  // mismatched triple counts
    TraceLog log(16);
    phaseSpan(log, "dry", 0, 1e-3);
    phaseSpan(log, "post", 1e-3, 2e-3);
    phaseSpan(log, "post", 2e-3, 3e-3);
    phaseSpan(log, "work", 1e-3, 2e-3);
    phaseSpan(log, "wait", 2e-3, 3e-3);
    EXPECT_THROW(auditPww(log), Error);
  }
  {  // a dropped ring means an incomplete timeline
    TraceLog log(2);
    phaseSpan(log, "dry", 0, 1e-3);
    phaseSpan(log, "post", 1e-3, 2e-3);  // evicts the dry span
    EXPECT_THROW(auditPww(log), Error);
  }
}

TEST(AuditPolling, ReconstructsFromSyntheticSpans) {
  TraceLog log(16);
  phaseSpan(log, "dry", 0.0, 4e-3);
  phaseSpan(log, "live", 10e-3, 26e-3);
  const PollingAudit a = auditPolling(log);
  EXPECT_NEAR(a.dryTime, 4e-3, 1e-12);
  EXPECT_NEAR(a.liveTime, 16e-3, 1e-12);
  EXPECT_NEAR(a.availability, 0.25, 1e-9);
}

TEST(AuditCheck, DetectsDisagreement) {
  PwwAudit a;
  a.reps = 2;
  a.avgPost = 1e-3;
  a.avgWork = 2e-3;
  a.avgWait = 3e-3;
  a.dryWork = 1.8e-3;
  a.availability = 0.3;
  PwwPoint p;
  p.reps = 2;
  p.avgPost = 1e-3;
  p.avgWork = 2e-3;
  p.avgWait = 3e-3;
  p.dryWork = 1.8e-3;
  p.availability = 0.3;
  EXPECT_TRUE(checkPww(a, p).empty());
  p.avgWork = 2.5e-3;  // 25% off
  const auto err = checkPww(a, p);
  EXPECT_NE(err.find("avgWork"), std::string::npos);
  p.avgWork = 2e-3;
  p.reps = 3;
  EXPECT_NE(checkPww(a, p).find("reps"), std::string::npos);

  PollingAudit pa;
  pa.dryTime = 1e-3;
  pa.liveTime = 2e-3;
  pa.availability = 0.5;
  PollingPoint pp;
  pp.dryTime = 1e-3;
  pp.liveTime = 2e-3;
  pp.availability = 0.5;
  EXPECT_TRUE(checkPolling(pa, pp).empty());
  pp.availability = 0.6;
  EXPECT_NE(checkPolling(pa, pp).find("availability"), std::string::npos);
}

// --- the real thing ---------------------------------------------------------

TEST(AuditIntegration, PwwTraceMatchesReportedPointOnBothMachines) {
  PwwParams params;
  params.msgBytes = 100_KB;
  params.workInterval = 200'000;
  params.reps = 4;
  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    const auto run = runPwwPointTraced(machine, params);
    ASSERT_NE(run.trace, nullptr);
    EXPECT_EQ(run.trace->dropped(), 0u) << machine.name;
    const PwwAudit audit = auditPww(*run.trace);
    EXPECT_EQ(checkPww(audit, run.point), "") << machine.name;
    // Spans bracket the exact wtime() stamps, so this is equality to
    // floating-point noise, not merely the 1% audit tolerance.
    EXPECT_NEAR(audit.avgWork, run.point.avgWork,
                1e-9 * std::abs(run.point.avgWork))
        << machine.name;
    EXPECT_NEAR(audit.availability, run.point.availability, 1e-9)
        << machine.name;
  }
}

TEST(AuditIntegration, PollingTraceMatchesReportedPointOnBothMachines) {
  PollingParams params;
  params.msgBytes = 100_KB;
  params.pollInterval = 10'000;
  params.targetDuration = 10e-3;
  params.maxPolls = 4'000;
  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    const auto run = runPollingPointTraced(machine, params);
    ASSERT_NE(run.trace, nullptr);
    EXPECT_EQ(run.trace->dropped(), 0u) << machine.name;
    const PollingAudit audit = auditPolling(*run.trace);
    EXPECT_EQ(checkPolling(audit, run.point), "") << machine.name;
    EXPECT_NEAR(audit.availability, run.point.availability, 1e-9)
        << machine.name;
  }
}

TEST(AuditIntegration, TracedPointEqualsUntracedPoint) {
  // Tracing must be a pure observer: the measured numbers are identical
  // with and without the log attached.
  PwwParams params;
  params.msgBytes = 100_KB;
  params.workInterval = 150'000;
  params.reps = 3;
  const auto machine = backend::portalsMachine();
  const PwwPoint plain = runPwwPoint(machine, params);
  const auto traced = runPwwPointTraced(machine, params);
  EXPECT_EQ(plain.avgPost, traced.point.avgPost);
  EXPECT_EQ(plain.avgWork, traced.point.avgWork);
  EXPECT_EQ(plain.avgWait, traced.point.avgWait);
  EXPECT_EQ(plain.dryWork, traced.point.dryWork);
  EXPECT_EQ(plain.availability, traced.point.availability);
  EXPECT_EQ(plain.bandwidthBps, traced.point.bandwidthBps);
}

}  // namespace
}  // namespace comb::bench
