// Tail-latency observability contracts:
//   * per-rank latency families merge by exact prefix/suffix match,
//     never swallowing phase-scoped variants,
//   * metrics::Registry snapshots are identical under the serial and the
//     sharded executor (latency buckets byte-for-byte — the recorder
//     layout is global, so shard merge is element-wise addition),
//   * benchmark points surface identical tail summaries for any
//     --sim-jobs, and serial runs report a shard imbalance of exactly 1,
//   * `comb compare --metric-class tail` flags a p999 regression whose
//     median is unchanged — the blind spot of mean-based gating — and
//     the class filter keeps tail deltas out of mean-only gates,
//   * comparability notes fire on differing rep budgets and differing
//     archived percentile bases.
// See docs/observability.md.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/compare.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/latency_recorder.hpp"
#include "common/metrics.hpp"
#include "report/archive.hpp"

namespace comb::bench {
namespace {

using backend::SimCluster;
using sim::Task;

RunOptions simJobs(int n) {
  RunOptions opts;
  opts.simJobs = n;
  return opts;
}

// ---------------------------------------------------------------------
// mergeLatencyFamily

TEST(MergeLatencyFamily, MergesRanksAndExcludesPhaseScoped) {
  metrics::Registry reg;
  reg.latency("mpi.n0.send_latency").record(1e-6);
  reg.latency("mpi.n0.send_latency").record(2e-6);
  reg.latency("mpi.n1.send_latency").record(3e-6);
  // Phase-scoped variants and other families must not be swallowed.
  reg.latency("mpi.n0.send_latency.work").record(7e-6);
  reg.latency("mpi.n0.recv_latency").record(9e-6);

  const auto snap = reg.snapshot();
  const auto merged =
      metrics::mergeLatencyFamily(snap, "mpi.n", ".send_latency");
  EXPECT_EQ(merged.count, 3u);
  const auto tail = merged.tail();
  EXPECT_NEAR(tail.min, 1e-6, 1e-9);
  EXPECT_NEAR(tail.max, 3e-6, 3e-8);
  EXPECT_NEAR(tail.mean, 2e-6, 1e-9);
}

TEST(MergeLatencyFamily, EmptyWhenNothingMatches) {
  metrics::Registry reg;
  reg.latency("mpi.n0.send_latency.work").record(1e-6);
  const auto merged =
      metrics::mergeLatencyFamily(reg.snapshot(), "mpi.n", ".send_latency");
  EXPECT_EQ(merged.count, 0u);
  EXPECT_EQ(merged.tail().p999, 0.0);
}

// ---------------------------------------------------------------------
// Registry snapshots under the sharded executor

/// K rounds of ring traffic: rank r sends to r+1 and receives from r-1.
/// Eager-sized messages, so the ring never deadlocks.
Task<void> ringProc(backend::SimProc& p, int peers, int rounds) {
  auto& mpi = p.mpi();
  const int next = (mpi.rank() + 1) % peers;
  const int prev = (mpi.rank() + peers - 1) % peers;
  for (int i = 0; i < rounds; ++i) {
    co_await mpi.send(mpi.world(), next, i, 2048);
    co_await mpi.recv(mpi.world(), prev, i, 2048);
    co_await p.work(10'000);
  }
}

metrics::Snapshot ringSnapshot(int shards) {
  SimCluster cluster(backend::gmMachine(), 4, shards);
  for (int r = 0; r < 4; ++r)
    cluster.launch(r, ringProc(cluster.proc(r), 4, 8));
  cluster.run();
  return cluster.metricsSnapshot();
}

/// The executor's self-metrics (exec.*) legitimately depend on the shard
/// count (per-shard occupancy histograms, wall-clock barrier waits);
/// everything else must not.
bool shardDependent(const std::string& name) {
  return name.rfind("exec.", 0) == 0;
}

void expectSameSnapshot(const metrics::Snapshot& a,
                        const metrics::Snapshot& b) {
  const auto findCounter =
      [](const metrics::Snapshot& s,
         const std::string& name) -> const metrics::CounterSample* {
    for (const auto& c : s.counters)
      if (c.name == name) return &c;
    return nullptr;
  };
  const auto findHistogram =
      [](const metrics::Snapshot& s,
         const std::string& name) -> const metrics::HistogramSample* {
    for (const auto& h : s.histograms)
      if (h.name == name) return &h;
    return nullptr;
  };
  for (const auto& ca : a.counters) {
    if (shardDependent(ca.name)) continue;
    const auto* cb = findCounter(b, ca.name);
    ASSERT_NE(cb, nullptr) << ca.name;
    EXPECT_EQ(ca.value, cb->value) << ca.name;
  }
  for (const auto& ha : a.histograms) {
    if (shardDependent(ha.name)) continue;
    const auto* hb = findHistogram(b, ha.name);
    ASSERT_NE(hb, nullptr) << ha.name;
    EXPECT_EQ(ha.counts, hb->counts) << ha.name;
    EXPECT_EQ(ha.total, hb->total) << ha.name;
  }
  for (const auto& la : a.latencies) {
    if (shardDependent(la.name)) continue;
    const auto* lb = b.latency(la.name);
    ASSERT_NE(lb, nullptr) << la.name;
    EXPECT_EQ(la.buckets, lb->buckets) << la.name;
    EXPECT_EQ(la.count, lb->count) << la.name;
    EXPECT_EQ(la.sumTicks, lb->sumTicks) << la.name;
    EXPECT_EQ(la.minTicks, lb->minTicks) << la.name;
    EXPECT_EQ(la.maxTicks, lb->maxTicks) << la.name;
  }
}

TEST(TailObservability, RegistrySnapshotShardInvariant) {
  const auto serial = ringSnapshot(1);
  // The run must actually have recorded per-message latencies.
  bool sawLatency = false;
  for (const auto& l : serial.latencies)
    sawLatency = sawLatency || (l.count > 0 && !shardDependent(l.name));
  EXPECT_TRUE(sawLatency);
  for (const int shards : {2, 4}) {
    const auto sharded = ringSnapshot(shards);
    expectSameSnapshot(serial, sharded);
    expectSameSnapshot(sharded, serial);  // same instrument coverage
  }
}

// ---------------------------------------------------------------------
// Point-level tail summaries

void expectSameTail(const TailSummary& a, const TailSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p999, b.p999);
}

TEST(TailObservability, PollingPointTailsShardInvariant) {
  auto params = presets::pollingBase(100 * 1024);
  params.targetDuration = 3e-3;
  params.maxPolls = 5'000;
  const auto serial = runPollingPoint(backend::gmMachine(), params);
  const auto sharded =
      runPollingPoint(backend::gmMachine(), params, simJobs(2));
  EXPECT_GT(serial.sendTail.count, 0u);
  EXPECT_GT(serial.recvTail.count, 0u);
  expectSameTail(serial.sendTail, sharded.sendTail);
  expectSameTail(serial.recvTail, sharded.recvTail);
  EXPECT_EQ(serial.shardImbalance, 1.0);
  EXPECT_GE(sharded.shardImbalance, 1.0);
}

// ---------------------------------------------------------------------
// Tail gating in `comb compare`

report::ArchiveMetric metric(const std::string& name, bool higherIsBetter,
                             const std::string& cls, double sample) {
  report::ArchiveMetric m;
  m.name = name;
  m.higherIsBetter = higherIsBetter;
  m.metricClass = cls;
  m.samples = {sample};
  return m;
}

/// A one-sweep, one-point archive: stable median + bandwidth, with the
/// given p50/p999 receive-latency samples.
report::Archive tailArchive(double p50us, double p999us) {
  report::Archive a;
  a.bench = "tail_gate";
  a.provenance = report::buildProvenance();
  a.provenance.tailPercentiles = report::kTailPercentiles;
  a.rep.reps = 1;
  report::ArchiveSweep sweep;
  sweep.id = "noise/gm";
  sweep.xlabel = "noise_burst_us";
  sweep.machine = "gm";
  sweep.machineHash = "c0ffee";
  report::ArchivePoint point;
  point.x = 20.0;
  point.metrics.push_back(metric("bandwidth_MBps", true, "mean", 100.0));
  point.metrics.push_back(metric("recv_p50_us", false, "tail", p50us));
  point.metrics.push_back(metric("recv_p999_us", false, "tail", p999us));
  sweep.points.push_back(std::move(point));
  a.sweeps.push_back(std::move(sweep));
  return a;
}

TEST(TailGating, FlagsP999RegressionWithUnchangedMedian) {
  const auto baseline = tailArchive(10.0, 100.0);
  const auto candidate = tailArchive(10.0, 150.0);  // median flat, tail +50%

  CompareOptions tailOnly;
  tailOnly.metricClass = MetricClass::Tail;
  const auto report = compareArchives(baseline, candidate, tailOnly);
  EXPECT_TRUE(report.hasRegressions());
  bool p999Flagged = false, p50Flagged = false, sawMean = false;
  for (const auto& row : report.rows) {
    if (row.metric == "recv_p999_us")
      p999Flagged = row.verdict == Verdict::Regressed;
    if (row.metric == "recv_p50_us")
      p50Flagged = row.verdict != Verdict::Ok;
    sawMean = sawMean || row.metric == "bandwidth_MBps";
  }
  EXPECT_TRUE(p999Flagged);
  EXPECT_FALSE(p50Flagged);
  EXPECT_FALSE(sawMean) << "tail gate must not count mean metrics";

  // The same pair under a mean-only gate is clean: the regression is
  // invisible to central-tendency metrics by construction.
  CompareOptions meanOnly;
  meanOnly.metricClass = MetricClass::Mean;
  EXPECT_FALSE(compareArchives(baseline, candidate, meanOnly)
                   .hasRegressions());
  EXPECT_TRUE(compareArchives(baseline, candidate).hasRegressions());
}

TEST(TailGating, UnclassedMetricsGateAsMean) {
  // Archives written before the metric-class field default to "mean".
  auto baseline = tailArchive(10.0, 100.0);
  auto candidate = tailArchive(10.0, 100.0);
  for (auto* a : {&baseline, &candidate})
    for (auto& m : a->sweeps[0].points[0].metrics) m.metricClass.clear();
  candidate.sweeps[0].points[0].metrics[0].samples = {50.0};  // bw halved

  CompareOptions meanOnly;
  meanOnly.metricClass = MetricClass::Mean;
  EXPECT_TRUE(compareArchives(baseline, candidate, meanOnly)
                  .hasRegressions());
  CompareOptions tailOnly;
  tailOnly.metricClass = MetricClass::Tail;
  const auto report = compareArchives(baseline, candidate, tailOnly);
  EXPECT_FALSE(report.hasRegressions());
  EXPECT_TRUE(report.rows.empty());
}

TEST(TailGating, ParseMetricClassRoundTripsAndRejects) {
  EXPECT_EQ(parseMetricClass("all"), MetricClass::All);
  EXPECT_EQ(parseMetricClass("mean"), MetricClass::Mean);
  EXPECT_EQ(parseMetricClass("tail"), MetricClass::Tail);
  EXPECT_STREQ(metricClassName(MetricClass::Tail), "tail");
  EXPECT_THROW(parseMetricClass("p99"), ConfigError);
}

bool hasNote(const CompareReport& report, const std::string& needle) {
  for (const auto& n : report.notes)
    if (n.find(needle) != std::string::npos) return true;
  return false;
}

TEST(TailGating, NotesRepCountAndPercentileBaseMismatches) {
  auto baseline = tailArchive(10.0, 100.0);
  auto candidate = tailArchive(10.0, 100.0);
  EXPECT_FALSE(hasNote(compareArchives(baseline, candidate),
                       "rep counts differ"));

  candidate.rep.reps = 5;
  candidate.provenance.tailPercentiles = "p50,p95,p99";
  const auto report = compareArchives(baseline, candidate);
  EXPECT_TRUE(hasNote(report, "rep counts differ"));
  EXPECT_TRUE(hasNote(report, "tail percentile bases differ"));
  // Notes are informational: nothing regressed here.
  EXPECT_FALSE(report.hasRegressions());

  // Pre-tail archives (no recorded percentile base) stay silent.
  candidate.rep.reps = 1;
  candidate.provenance.tailPercentiles.clear();
  EXPECT_FALSE(hasNote(compareArchives(baseline, candidate),
                       "tail percentile bases differ"));
}

}  // namespace
}  // namespace comb::bench
