// Repetition-aware runners: rep 0 is byte-identical to a single run, rep
// sequences are bit-reproducible for a fixed seed and independent of
// --jobs, a lossless fabric converges at minReps with a degenerate CI,
// and fault injection is the only thing that makes reps differ.
#include <gtest/gtest.h>

#include <vector>

#include "backend/machine.hpp"
#include "comb/archive_build.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

RunOptions withFault(const std::string& spec, RepPolicy rep) {
  RunOptions opts;
  opts.fault = net::parseFaultSpec(spec);
  opts.rep = rep;
  return opts;
}

void expectSamePolling(const PollingPoint& a, const PollingPoint& b) {
  EXPECT_EQ(a.pollInterval, b.pollInterval);
  EXPECT_EQ(a.msgBytes, b.msgBytes);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.dryTime, b.dryTime);
  EXPECT_EQ(a.liveTime, b.liveTime);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_EQ(a.pollsExecuted, b.pollsExecuted);
  EXPECT_EQ(a.fault.dropsInjected, b.fault.dropsInjected);
  EXPECT_EQ(a.fault.retransmits, b.fault.retransmits);
}

TEST(RepPolicy, ValidationRejectsBadValues) {
  const auto bad = [](auto&& mutate) {
    RepPolicy p;
    mutate(p);
    EXPECT_THROW(validateRepPolicy(p), ConfigError);
  };
  bad([](RepPolicy& p) { p.reps = 0; });
  bad([](RepPolicy& p) { p.maxReps = 0; });
  bad([](RepPolicy& p) { p.minReps = 0; });
  bad([](RepPolicy& p) { p.minReps = 5; p.maxReps = 4; });
  bad([](RepPolicy& p) { p.ciTarget = 0.0; });
  bad([](RepPolicy& p) { p.ciLevel = 1.0; });
  validateRepPolicy(RepPolicy{});  // defaults are valid
}

TEST(RepPolicy, RepSeedIsDeterministicAndMixes) {
  EXPECT_EQ(repSeed(42, 1), repSeed(42, 1));
  EXPECT_NE(repSeed(42, 1), repSeed(42, 2));
  EXPECT_NE(repSeed(42, 1), repSeed(43, 1));
  // Rep 0 never goes through repSeed in the runner, but the mix itself
  // must still be a proper hash, not identity.
  EXPECT_NE(repSeed(42, 0), 42u);
}

TEST(Reps, CanonicalPointIsByteIdenticalToSingleRun) {
  const auto machine = backend::gmMachine();
  const auto params = presets::pollingBase(100_KB);
  RepPolicy rep;
  rep.reps = 4;
  rep.seed = 7;
  const auto opts = withFault("drop=0.05,seed=3", rep);
  const auto run = runPollingPointReps(machine, params, opts);
  ASSERT_EQ(run.reps.size(), 4u);
  // The canonical rep runs the machine exactly as configured — the rep
  // count must never perturb the reported point.
  expectSamePolling(run.canonical(), runPollingPoint(machine, params, opts));
}

TEST(Reps, PwwCanonicalMatchesSingleRun) {
  const auto machine = backend::portalsMachine();
  const auto params = presets::pwwBase(100_KB);
  RepPolicy rep;
  rep.reps = 3;
  const auto opts = withFault("drop=0.04,seed=11", rep);
  const auto run = runPwwPointReps(machine, params, opts);
  ASSERT_EQ(run.reps.size(), 3u);
  const auto single = runPwwPoint(machine, params, opts);
  EXPECT_EQ(run.canonical().availability, single.availability);
  EXPECT_EQ(run.canonical().bandwidthBps, single.bandwidthBps);
  EXPECT_EQ(run.canonical().avgWait, single.avgWait);
}

TEST(Reps, LosslessFabricRepsAreIdenticalAndConvergeAtMinReps) {
  const auto machine = backend::gmMachine();
  const auto params = presets::pollingBase(100_KB);
  RunOptions opts;
  opts.rep.adaptive = true;
  opts.rep.minReps = 3;
  opts.rep.maxReps = 10;
  const auto run = runPollingPointReps(machine, params, opts);
  // No fault stream is ever sampled, so reseeding is a no-op: every rep
  // is bit-identical and the CI collapses at the first check.
  ASSERT_EQ(run.reps.size(), 3u);
  EXPECT_TRUE(run.converged);
  for (const auto& p : run.reps) expectSamePolling(p, run.canonical());
  EXPECT_EQ(run.bandwidthCi.lo, run.bandwidthCi.hi);
  EXPECT_EQ(run.bandwidthCi.relHalfWidth(), 0.0);
}

TEST(Reps, FaultInjectionMakesRepsDiffer) {
  const auto machine = backend::gmMachine();
  const auto params = presets::pollingBase(100_KB);
  RepPolicy rep;
  rep.reps = 5;
  rep.seed = 9;
  const auto run =
      runPollingPointReps(machine, params, withFault("drop=0.08,seed=3", rep));
  ASSERT_EQ(run.reps.size(), 5u);
  bool anyDiffers = false;
  for (const auto& p : run.reps)
    anyDiffers |= p.bandwidthBps != run.canonical().bandwidthBps;
  EXPECT_TRUE(anyDiffers)
      << "re-seeded fault streams should perturb at least one rep";
}

TEST(Reps, AdaptiveRunIsBitReproducible) {
  const auto machine = backend::gmMachine();
  const auto params = presets::pollingBase(100_KB);
  RepPolicy rep;
  rep.adaptive = true;
  rep.minReps = 3;
  rep.maxReps = 6;
  rep.ciTarget = 1e-9;  // unreachable: exhaust the budget, deterministically
  rep.seed = 21;
  const auto opts = withFault("drop=0.05,seed=3", rep);
  const auto a = runPollingPointReps(machine, params, opts);
  const auto b = runPollingPointReps(machine, params, opts);
  EXPECT_FALSE(a.converged);
  ASSERT_EQ(a.reps.size(), 6u);
  ASSERT_EQ(b.reps.size(), a.reps.size());
  for (std::size_t i = 0; i < a.reps.size(); ++i)
    expectSamePolling(a.reps[i], b.reps[i]);
  EXPECT_EQ(a.bandwidthCi.lo, b.bandwidthCi.lo);
  EXPECT_EQ(a.bandwidthCi.hi, b.bandwidthCi.hi);
}

TEST(Reps, SweepRepsAreJobsIndependent) {
  const auto machine = backend::portalsMachine();
  const auto spec = sweepOver(presets::pollingBase(100_KB),
                              {1'000, 10'000, 100'000, 1'000'000});
  RepPolicy rep;
  rep.reps = 3;
  rep.seed = 5;
  auto opts = withFault("drop=0.06,seed=4", rep);
  opts.jobs = 1;
  const auto serial = runPollingSweepReps(machine, spec, opts);
  opts.jobs = 4;
  const auto parallel = runPollingSweepReps(machine, spec, opts);
  ASSERT_EQ(serial.size(), spec.values.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i].reps.size(), serial[i].reps.size());
    for (std::size_t r = 0; r < serial[i].reps.size(); ++r)
      expectSamePolling(parallel[i].reps[r], serial[i].reps[r]);
  }
}

TEST(Reps, ArchiveStampsCoreConfiguration) {
  // Sharded archives record the full core configuration: shard count,
  // affinity policy, the "matrix" window-bound source, and — once a
  // sweep has named the machine — the certified scalar lookahead floor.
  const auto machine = backend::gmMachine();
  RunOptions opts;
  opts.simJobs = 2;
  opts.simAffinity = sim::AffinityPolicy::Compact;
  opts.rep.reps = 1;
  auto params = presets::pollingBase(10_KB);
  params.targetDuration = 3e-3;
  params.maxPolls = 2'000;
  const auto run = runPollingPointReps(machine, params, opts);

  auto archive =
      makeArchive("stamp_test", opts.rep, opts.simJobs, opts.simAffinity);
  EXPECT_EQ(archive.provenance.simJobs, 2);
  EXPECT_EQ(archive.provenance.simAffinity, "compact");
  EXPECT_EQ(archive.provenance.lookaheadSource, "matrix");
  EXPECT_EQ(archive.provenance.lookahead, 0.0);  // no sweep appended yet
  appendPollingSweep(archive, "polling/gm/10 KB", machine,
                     {params.pollInterval}, {run});
  EXPECT_EQ(archive.provenance.lookahead, machine.fabric.link.latency);

  // Serial archives keep the scalar default: no shards, no window bound.
  const auto serial = makeArchive("stamp_test", opts.rep);
  EXPECT_EQ(serial.provenance.simJobs, 1);
  EXPECT_EQ(serial.provenance.simAffinity, "none");
  EXPECT_EQ(serial.provenance.lookaheadSource, "global-min");
}

}  // namespace
}  // namespace comb::bench
