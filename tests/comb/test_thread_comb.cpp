// COMB methods on the native thread backend: the same templates that run
// on the simulator drive real threads. Only correctness/termination and
// very loose sanity are asserted (this box may have one core).
#include <gtest/gtest.h>

#include <functional>

#include "backend/thread_cluster.hpp"
#include "comb/params.hpp"
#include "comb/polling.hpp"
#include "comb/pww.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;
using backend::ThreadCluster;
using backend::ThreadProc;

PollingPoint runPollingThreads(ThreadCluster& cluster, PollingParams p) {
  PollingPoint out;
  cluster.run({[&](ThreadProc& env) {
                 auto task = pollingWorker(env, p);
                 out = task.runSync();
               },
               [&](ThreadProc& env) {
                 auto task = pollingSupport(env, p);
                 task.runSync();
               }});
  return out;
}

PwwPoint runPwwThreads(ThreadCluster& cluster, PwwParams p) {
  PwwPoint out;
  cluster.run({[&](ThreadProc& env) {
                 auto task = pwwWorker(env, p);
                 out = task.runSync();
               },
               [&](ThreadProc& env) {
                 auto task = pwwSupport(env, p);
                 task.runSync();
               }});
  return out;
}

PollingParams quickPolling() {
  PollingParams p;
  p.msgBytes = 8_KB;
  p.queueDepth = 4;
  p.pollInterval = 2'000;
  p.targetDuration = 20e-3;
  p.maxPolls = 4'000;
  p.minPolls = 4;
  return p;
}

class ThreadCombTest : public ::testing::TestWithParam<bool> {};

TEST_P(ThreadCombTest, PollingRunsToCompletion) {
  ThreadCluster cluster(2, GetParam());
  const auto pt = runPollingThreads(cluster, quickPolling());
  EXPECT_GT(pt.availability, 0.0);
  // Wall-clock jitter on a loaded single-core box can push the ratio a
  // bit past 1 (the dry run itself got descheduled); allow generous slack.
  EXPECT_LE(pt.availability, 1.5);
  EXPECT_GT(pt.dryTime, 0.0);
  EXPECT_GT(pt.liveTime, 0.0);
  // On a single-core host the worker's measured window may elapse before
  // the support thread is ever scheduled, so zero messages in-window is
  // legitimate; throughput is only meaningful when messages moved.
  if (pt.messagesReceived > 0) {
    EXPECT_GT(pt.bandwidthBps, 0.0);
  }
}

TEST_P(ThreadCombTest, PwwRunsToCompletion) {
  ThreadCluster cluster(2, GetParam());
  PwwParams p;
  p.msgBytes = 8_KB;
  p.workInterval = 50'000;
  p.reps = 5;
  const auto pt = runPwwThreads(cluster, p);
  EXPECT_GT(pt.avgPost, 0.0);
  EXPECT_GT(pt.avgWork, 0.0);
  EXPECT_GE(pt.avgWait, 0.0);
  EXPECT_GT(pt.bandwidthBps, 0.0);
  EXPECT_GT(pt.availability, 0.0);
}

TEST_P(ThreadCombTest, PwwWithTestCallRuns) {
  ThreadCluster cluster(2, GetParam());
  PwwParams p;
  p.msgBytes = 8_KB;
  p.workInterval = 50'000;
  p.reps = 4;
  p.testCallAtFraction = 0.25;
  const auto pt = runPwwThreads(cluster, p);
  EXPECT_GT(pt.bandwidthBps, 0.0);
}

TEST_P(ThreadCombTest, PollingLeavesNoPendingRequests) {
  ThreadCluster cluster(2, GetParam());
  runPollingThreads(cluster, quickPolling());
  EXPECT_EQ(cluster.mpi(0).pendingRequests(), 0u);
  EXPECT_EQ(cluster.mpi(1).pendingRequests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ProgressModels, ThreadCombTest,
                         ::testing::Values(true, false),
                         [](const auto& suiteInfo) {
                           return suiteInfo.param ? std::string("offload")
                                             : std::string("library");
                         });

}  // namespace
}  // namespace comb::bench
