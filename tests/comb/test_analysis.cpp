// The assessment module must reach the paper's §4 conclusions about the
// paper's two systems on its own.
#include "comb/analysis.hpp"

#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

AssessOptions quick() {
  AssessOptions o;
  o.pointsPerDecade = 1;  // keep test runtime modest
  return o;
}

TEST(Assessment, GmVerdict) {
  const auto a = assessMachine(backend::gmMachine(), quick());
  EXPECT_EQ(a.machineName, "gm");
  EXPECT_FALSE(a.applicationOffload);
  EXPECT_TRUE(a.libraryDrivenProgress);
  EXPECT_NEAR(a.workInflation, 0.0, 0.001);
  EXPECT_GT(toMBps(a.peakBandwidthBps), 80.0);
  EXPECT_GT(a.availabilityAtFullRate, 0.9);
  const auto text = a.verdictText();
  EXPECT_NE(text.find("application offload: NO"), std::string::npos);
  EXPECT_NE(text.find("library-driven"), std::string::npos);
}

TEST(Assessment, PortalsVerdict) {
  const auto a = assessMachine(backend::portalsMachine(), quick());
  EXPECT_TRUE(a.applicationOffload);
  EXPECT_FALSE(a.libraryDrivenProgress);
  EXPECT_GT(a.workInflation, 0.02);
  EXPECT_LT(toMBps(a.peakBandwidthBps), 70.0);
  EXPECT_LT(a.availabilityAtFullRate, 0.3);
  const auto text = a.verdictText();
  EXPECT_NE(text.find("application offload: YES"), std::string::npos);
  EXPECT_NE(text.find("paid for on the host"), std::string::npos);
}

TEST(Assessment, SmpSteeredPortalsVerdict) {
  auto machine = backend::portalsMachine();
  machine.name = "portals-smp";
  machine.cpusPerNode = 2;
  machine.nicCpu = 1;
  const auto a = assessMachine(machine, quick());
  EXPECT_TRUE(a.applicationOffload);
  // With kernel work off the application CPU, overlap becomes ~free.
  EXPECT_LT(a.workInflation, 0.02);
  EXPECT_GT(a.availabilityAtFullRate, 0.7);
  EXPECT_NE(a.verdictText().find("overlap is free"), std::string::npos);
}

TEST(Assessment, MessageSizeRespected) {
  AssessOptions o = quick();
  o.msgBytes = 10_KB;
  const auto a = assessMachine(backend::gmMachine(), o);
  EXPECT_EQ(a.msgBytes, 10_KB);
  EXPECT_EQ(a.pingPong.msgBytes, 10_KB);
  // 10 KB is eager on GM: the long-work wait is only the receive-side
  // copy + completion, far below the rendezvous wait.
  EXPECT_LT(a.longWork.avgWaitPerMsg, 500e-6);
}

TEST(Assessment, Deterministic) {
  const auto a = assessMachine(backend::gmMachine(), quick());
  const auto b = assessMachine(backend::gmMachine(), quick());
  EXPECT_DOUBLE_EQ(a.peakBandwidthBps, b.peakBandwidthBps);
  EXPECT_DOUBLE_EQ(a.availabilityAtFullRate, b.availabilityAtFullRate);
  EXPECT_DOUBLE_EQ(a.longWork.avgWaitPerMsg, b.longWork.avgWaitPerMsg);
}

}  // namespace
}  // namespace comb::bench
