// End-to-end fault injection: the transports' retransmission protocols
// restore exactly-once delivery under packet loss, results stay
// bit-deterministic (same seed, any --jobs), the retry budget is
// enforced, and a lossless fabric pays nothing for any of it.
#include <gtest/gtest.h>

#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

backend::MachineConfig faulty(backend::MachineConfig m,
                              const std::string& spec) {
  m.fabric.link.fault = net::parseFaultSpec(spec);
  return m;
}

std::vector<backend::MachineConfig> bothStacks() {
  return {backend::gmMachine(), backend::portalsMachine()};
}

sim::Task<void> sendMany(backend::SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().send(p.mpi().world(), 1, 1, size);
}

sim::Task<void> recvMany(backend::SimProc& p, int count, Bytes size) {
  for (int i = 0; i < count; ++i)
    co_await p.mpi().recv(p.mpi().world(), 0, 1, size);
}

TEST(FaultInjection, ExactlyOnceDeliveryUnderDrop) {
  for (const auto& machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    backend::SimCluster cluster(faulty(machine, "drop=0.05,burst=2,seed=3"),
                                2);
    const int count = 20;
    const Bytes size = 40_KB;
    cluster.launch(0, sendMany(cluster.proc(0), count, size));
    cluster.launch(1, recvMany(cluster.proc(1), count, size));
    cluster.run();
    // Every byte arrived exactly once: recv completions account for the
    // full payload, despite injected drops forcing retransmissions.
    EXPECT_EQ(cluster.mpi(1).bytesReceived(), count * size);
    EXPECT_EQ(cluster.mpi(0).bytesSent(), count * size);
    const auto fc = cluster.faultCounters();
    EXPECT_GT(fc.dropsInjected, 0u);
    EXPECT_GT(fc.retransmits, 0u);
    EXPECT_GT(fc.timeoutWakeups, 0u);
  }
}

TEST(FaultInjection, CorruptionIsRecoveredToo) {
  for (const auto& machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    backend::SimCluster cluster(faulty(machine, "corrupt=0.05,seed=9"), 2);
    const int count = 10;
    const Bytes size = 40_KB;
    cluster.launch(0, sendMany(cluster.proc(0), count, size));
    cluster.launch(1, recvMany(cluster.proc(1), count, size));
    cluster.run();
    EXPECT_EQ(cluster.mpi(1).bytesReceived(), count * size);
    EXPECT_GT(cluster.faultCounters().corruptsInjected, 0u);
  }
}

PollingParams quickBase() {
  auto p = presets::pollingBase(100_KB);
  p.targetDuration = 10e-3;
  p.maxPolls = 10'000;
  return p;
}

void expectSamePoint(const PollingPoint& a, const PollingPoint& b) {
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);
  EXPECT_EQ(a.liveTime, b.liveTime);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_EQ(a.fault.dropsInjected, b.fault.dropsInjected);
  EXPECT_EQ(a.fault.retransmits, b.fault.retransmits);
  EXPECT_EQ(a.fault.timeoutWakeups, b.fault.timeoutWakeups);
  EXPECT_EQ(a.fault.duplicatesFiltered, b.fault.duplicatesFiltered);
}

TEST(FaultInjection, SameSeedIsBitIdenticalDifferentSeedIsNot) {
  for (const auto& machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    RunOptions opts;
    opts.fault = net::parseFaultSpec("drop=0.03,seed=5");
    const auto a = runPollingPoint(machine, quickBase(), opts);
    const auto b = runPollingPoint(machine, quickBase(), opts);
    expectSamePoint(a, b);
    EXPECT_GT(a.fault.dropsInjected, 0u);

    RunOptions other;
    other.fault = net::parseFaultSpec("drop=0.03,seed=6");
    const auto c = runPollingPoint(machine, quickBase(), other);
    EXPECT_TRUE(a.fault.dropsInjected != c.fault.dropsInjected ||
                a.liveTime != c.liveTime)
        << "seed change did not alter the fault stream";
  }
}

TEST(FaultInjection, ParallelSweepBitIdenticalUnderLoss) {
  const auto spec =
      sweepOver(quickBase(), std::vector<std::uint64_t>{10'000, 30'000,
                                                        100'000});
  for (const auto& machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    RunOptions serial;
    serial.jobs = 1;
    serial.fault = net::parseFaultSpec("drop=0.02,burst=2,seed=7");
    RunOptions parallel = serial;
    parallel.jobs = 4;
    const auto a = runPollingSweep(machine, spec, serial);
    const auto b = runPollingSweep(machine, spec, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(i);
      expectSamePoint(a[i], b[i]);
    }
  }
}

TEST(FaultInjection, LosslessFabricIsUntouchedByTheMachinery) {
  for (const auto& machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    const auto plain = runPollingPoint(machine, quickBase());
    // An inactive FaultSpec — even with a different seed — must leave the
    // timeline byte-identical: no acks, no timers, no counters.
    auto inert = machine;
    inert.fabric.link.fault.seed = 999;
    const auto guarded = runPollingPoint(inert, quickBase());
    expectSamePoint(plain, guarded);
    EXPECT_FALSE(plain.fault.any());
    EXPECT_FALSE(guarded.fault.any());
  }
}

TEST(FaultInjection, RetryBudgetExhaustionThrows) {
  for (auto machine : bothStacks()) {
    SCOPED_TRACE(machine.name);
    machine.fabric.link.fault = net::parseFaultSpec("drop=1,seed=1");
    machine.gm.rel.maxRetries = 2;
    machine.portals.rel.maxRetries = 2;
    backend::SimCluster cluster(machine, 2);
    cluster.launch(0, sendMany(cluster.proc(0), 1, 10_KB));
    cluster.launch(1, recvMany(cluster.proc(1), 1, 10_KB));
    EXPECT_THROW(cluster.run(), Error);
  }
}

}  // namespace
}  // namespace comb::bench
