#include "comb/runner.hpp"

#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "common/error.hpp"

namespace comb::bench {
namespace {

TEST(LogSweep, CoversDecades) {
  const auto xs = logSweep(10, 100'000, 1);
  EXPECT_EQ(xs, (std::vector<std::uint64_t>{10, 100, 1000, 10000, 100000}));
}

TEST(LogSweep, DensityAddsIntermediatePoints) {
  const auto xs = logSweep(10, 1000, 2);
  // 10, ~31.6, 100, ~316, 1000.
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_EQ(xs.front(), 10u);
  EXPECT_EQ(xs.back(), 1000u);
  EXPECT_NEAR(static_cast<double>(xs[1]), 31.6, 1.0);
}

TEST(LogSweep, EndpointAlwaysIncluded) {
  const auto xs = logSweep(10, 70'000, 1);
  EXPECT_EQ(xs.back(), 70'000u);
}

TEST(LogSweep, SinglePointRange) {
  const auto xs = logSweep(50, 50, 3);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], 50u);
}

TEST(LogSweep, RejectsBadBounds) {
  EXPECT_THROW(logSweep(0, 10, 1), ConfigError);
  EXPECT_THROW(logSweep(100, 10, 1), ConfigError);
  EXPECT_THROW(logSweep(1, 10, 0), ConfigError);
}

TEST(Presets, PaperSizesAndSweeps) {
  const auto sizes = presets::paperMessageSizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 10u * 1024u);
  EXPECT_EQ(sizes[3], 300u * 1024u);
  const auto polls = presets::pollSweep(1);
  EXPECT_EQ(polls.front(), 10u);
  EXPECT_EQ(polls.back(), 100'000'000u);
  const auto works = presets::workSweep(1);
  EXPECT_EQ(works.front(), 1'000u);
  EXPECT_EQ(works.back(), 10'000'000u);
}

TEST(Runner, SweepOverridesInterval) {
  auto base = presets::pollingBase(10 * 1024);
  base.targetDuration = 3e-3;
  base.maxPolls = 2'000;
  const std::vector<std::uint64_t> intervals{1'000, 100'000};
  const auto pts =
      runPollingSweep(backend::gmMachine(), base, intervals);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].pollInterval, 1'000u);
  EXPECT_EQ(pts[1].pollInterval, 100'000u);
  EXPECT_EQ(pts[0].msgBytes, 10u * 1024u);
}

TEST(Runner, PwwSweepOverridesInterval) {
  auto base = presets::pwwBase(10 * 1024);
  base.reps = 4;
  const std::vector<std::uint64_t> intervals{5'000, 500'000};
  const auto pts = runPwwSweep(backend::portalsMachine(), base, intervals);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].workInterval, 5'000u);
  EXPECT_EQ(pts[1].workInterval, 500'000u);
  EXPECT_EQ(pts[1].reps, 3);  // reps minus warm-up
}

}  // namespace
}  // namespace comb::bench
