#include "comb/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace comb::bench {
namespace {

RunOptions withJobs(int jobs) {
  RunOptions opts;
  opts.jobs = jobs;
  return opts;
}

TEST(LogSweep, CoversDecades) {
  const auto xs = logSweep(10, 100'000, 1);
  EXPECT_EQ(xs, (std::vector<std::uint64_t>{10, 100, 1000, 10000, 100000}));
}

TEST(LogSweep, DensityAddsIntermediatePoints) {
  const auto xs = logSweep(10, 1000, 2);
  // 10, ~31.6, 100, ~316, 1000.
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_EQ(xs.front(), 10u);
  EXPECT_EQ(xs.back(), 1000u);
  EXPECT_NEAR(static_cast<double>(xs[1]), 31.6, 1.0);
}

TEST(LogSweep, EndpointAlwaysIncluded) {
  const auto xs = logSweep(10, 70'000, 1);
  EXPECT_EQ(xs.back(), 70'000u);
}

TEST(LogSweep, SinglePointRange) {
  const auto xs = logSweep(50, 50, 3);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], 50u);
}

TEST(LogSweep, RejectsBadBounds) {
  EXPECT_THROW(logSweep(0, 10, 1), ConfigError);
  EXPECT_THROW(logSweep(100, 10, 1), ConfigError);
  EXPECT_THROW(logSweep(1, 10, 0), ConfigError);
}

TEST(LogSweep, StrictlyIncreasingAtHighDensityOverManyDecades) {
  // Regression: the old implementation accumulated the exponent with
  // repeated `e += step`; after dozens of additions the drift could skip
  // or duplicate a grid point. Recomputing from the integer index keeps
  // the grid exact: p*(decades) interior steps + 1, strictly increasing.
  for (const int ppd : {1, 2, 3, 7, 10}) {
    const auto xs = logSweep(10, 100'000'000, ppd);
    EXPECT_EQ(xs.size(), static_cast<std::size_t>(7 * ppd + 1))
        << "points-per-decade=" << ppd;
    EXPECT_EQ(xs.front(), 10u);
    EXPECT_EQ(xs.back(), 100'000'000u);
    for (std::size_t i = 1; i < xs.size(); ++i)
      ASSERT_LT(xs[i - 1], xs[i]) << "ppd=" << ppd << " i=" << i;
  }
}

TEST(LogSweep, DecadeBoundariesStayExactAtHighDensity) {
  // With drift, a boundary like 10^6 could come back as 999999 or be
  // skipped entirely. Every decade boundary must appear exactly.
  const auto xs = logSweep(10, 10'000'000, 10);
  for (std::uint64_t decade = 10; decade <= 10'000'000; decade *= 10)
    EXPECT_NE(std::find(xs.begin(), xs.end(), decade), xs.end())
        << "missing decade boundary " << decade;
}

TEST(LogSweep, LargeBoundsDoNotOverflow) {
  // Regression: llround returns long long, so values above 2^63-1
  // (~9.2e18) invoked UB even though they fit in uint64_t. 10^19 is such
  // a value.
  const auto xs = logSweep(1'000'000'000'000'000'000ull,  // 10^18
                           10'000'000'000'000'000'000ull,  // 10^19
                           1);
  EXPECT_EQ(xs, (std::vector<std::uint64_t>{1'000'000'000'000'000'000ull,
                                            10'000'000'000'000'000'000ull}));
}

TEST(LogSweep, Uint64MaxUpperBoundIsSafe) {
  const auto xs = logSweep(1, std::numeric_limits<std::uint64_t>::max(), 1);
  EXPECT_EQ(xs.front(), 1u);
  EXPECT_EQ(xs.back(), std::numeric_limits<std::uint64_t>::max());
  for (std::size_t i = 1; i < xs.size(); ++i)
    ASSERT_LT(xs[i - 1], xs[i]);
}

TEST(Presets, PaperSizesAndSweeps) {
  const auto sizes = presets::paperMessageSizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 10u * 1024u);
  EXPECT_EQ(sizes[3], 300u * 1024u);
  const auto polls = presets::pollSweep(1);
  EXPECT_EQ(polls.front(), 10u);
  EXPECT_EQ(polls.back(), 100'000'000u);
  const auto works = presets::workSweep(1);
  EXPECT_EQ(works.front(), 1'000u);
  EXPECT_EQ(works.back(), 10'000'000u);
}

TEST(Runner, SweepOverridesInterval) {
  auto base = presets::pollingBase(10 * 1024);
  base.targetDuration = 3e-3;
  base.maxPolls = 2'000;
  const std::vector<std::uint64_t> intervals{1'000, 100'000};
  const auto pts =
      runPollingSweep(backend::gmMachine(), sweepOver(base, intervals));
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].pollInterval, 1'000u);
  EXPECT_EQ(pts[1].pollInterval, 100'000u);
  EXPECT_EQ(pts[0].msgBytes, 10u * 1024u);
}

TEST(Runner, PwwSweepOverridesInterval) {
  auto base = presets::pwwBase(10 * 1024);
  base.reps = 4;
  const std::vector<std::uint64_t> intervals{5'000, 500'000};
  const auto pts =
      runPwwSweep(backend::portalsMachine(), sweepOver(base, intervals));
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].workInterval, 5'000u);
  EXPECT_EQ(pts[1].workInterval, 500'000u);
  EXPECT_EQ(pts[1].reps, 3);  // reps minus warm-up
}

// Every field compared exactly: the parallel executor must be
// *bit-identical* to the serial path, not merely close.
void expectSamePoint(const PollingPoint& a, const PollingPoint& b,
                     std::size_t i) {
  EXPECT_EQ(a.pollInterval, b.pollInterval) << "point " << i;
  EXPECT_EQ(a.msgBytes, b.msgBytes) << "point " << i;
  EXPECT_EQ(a.availability, b.availability) << "point " << i;
  EXPECT_EQ(a.bandwidthBps, b.bandwidthBps) << "point " << i;
  EXPECT_EQ(a.dryTime, b.dryTime) << "point " << i;
  EXPECT_EQ(a.liveTime, b.liveTime) << "point " << i;
  EXPECT_EQ(a.messagesReceived, b.messagesReceived) << "point " << i;
  EXPECT_EQ(a.pollsExecuted, b.pollsExecuted) << "point " << i;
}

TEST(ParallelSweep, PollingBitIdenticalToSerialOnBothMachines) {
  auto base = presets::pollingBase(10 * 1024);
  base.targetDuration = 3e-3;
  base.maxPolls = 2'000;
  const auto intervals = logSweep(10, 1'000'000, 1);
  for (const auto& machine :
       {backend::gmMachine(), backend::portalsMachine()}) {
    const auto spec = sweepOver(base, intervals);
    const auto serial = runPollingSweep(machine, spec, withJobs(1));
    const auto parallel = runPollingSweep(machine, spec, withJobs(4));
    ASSERT_EQ(serial.size(), parallel.size()) << machine.name;
    for (std::size_t i = 0; i < serial.size(); ++i)
      expectSamePoint(serial[i], parallel[i], i);
  }
}

TEST(ParallelSweep, PwwBitIdenticalToSerial) {
  auto base = presets::pwwBase(10 * 1024);
  base.reps = 4;
  const std::vector<std::uint64_t> intervals{5'000, 50'000, 500'000,
                                             5'000'000};
  const auto spec = sweepOver(base, intervals);
  const auto serial =
      runPwwSweep(backend::gmMachine(), spec, withJobs(1));
  const auto parallel =
      runPwwSweep(backend::gmMachine(), spec, withJobs(3));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].workInterval, parallel[i].workInterval);
    EXPECT_EQ(serial[i].availability, parallel[i].availability);
    EXPECT_EQ(serial[i].bandwidthBps, parallel[i].bandwidthBps);
    EXPECT_EQ(serial[i].avgPost, parallel[i].avgPost);
    EXPECT_EQ(serial[i].avgWork, parallel[i].avgWork);
    EXPECT_EQ(serial[i].avgWait, parallel[i].avgWait);
    EXPECT_EQ(serial[i].dryWork, parallel[i].dryWork);
  }
}

TEST(ParallelSweep, LatencyBitIdenticalToSerial) {
  const std::vector<Bytes> sizes{64, 1024, 10 * 1024, 100 * 1024};
  SweepSpec<LatencyParams> spec;
  spec.base.reps = 5;
  spec.values = sizes;
  const auto serial =
      runLatencySweep(backend::portalsMachine(), spec, withJobs(1));
  const auto parallel =
      runLatencySweep(backend::portalsMachine(), spec, withJobs(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].msgBytes, parallel[i].msgBytes);
    EXPECT_EQ(serial[i].halfRoundTripAvg, parallel[i].halfRoundTripAvg);
    EXPECT_EQ(serial[i].halfRoundTripMin, parallel[i].halfRoundTripMin);
    EXPECT_EQ(serial[i].bandwidthBps, parallel[i].bandwidthBps);
  }
}

TEST(ParallelSweep, RunSweepParallelPropagatesFirstPointException) {
  const std::vector<int> params{0, 1, 2, 3, 4, 5};
  for (const int jobs : {1, 3}) {
    try {
      runSweepParallel(
          backend::gmMachine(), params,
          [](const backend::MachineConfig&, int p) {
            if (p >= 2) throw std::runtime_error("point " + std::to_string(p));
            return p;
          },
          jobs);
      FAIL() << "expected exception, jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "point 2") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelSweep, JobsGreaterThanPointsWorks) {
  auto base = presets::pollingBase(10 * 1024);
  base.targetDuration = 3e-3;
  base.maxPolls = 2'000;
  const std::vector<std::uint64_t> intervals{1'000, 100'000};
  const auto pts = runPollingSweep(backend::gmMachine(),
                                   sweepOver(base, intervals),
                                   withJobs(64));
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].pollInterval, 1'000u);
  EXPECT_EQ(pts[1].pollInterval, 100'000u);
}

// Thread-budget mediation between sweep-level --jobs and core-level
// --sim-jobs: never oversubscribe past hardware concurrency.
TEST(Runner, SimWorkerBudgetCapsOversubscription) {
  RunOptions serial;
  serial.jobs = 64;
  EXPECT_EQ(simWorkerBudget(serial), 0);  // serial core never spawns workers

  RunOptions modest;
  modest.jobs = 1;
  modest.simJobs = 1;
  EXPECT_EQ(simWorkerBudget(modest), 0);

  // jobs * simJobs guaranteed past any real hardware concurrency: the cap
  // must bound per-cluster workers so the product fits the machine.
  RunOptions over;
  over.jobs = 1 << 16;
  over.simJobs = 4;
  const int cap = simWorkerBudget(over);
  EXPECT_GE(cap, 1);
  EXPECT_LE(static_cast<long long>(cap) * over.jobs,
            std::max(static_cast<long long>(hardwareJobs()),
                     static_cast<long long>(over.jobs)));
}

// coreOptions forwards only the execution shape (jobs + simJobs): fault
// and rep settings are the sweep layer's business.
TEST(Runner, CoreOptionsForwardsExecutionShapeOnly) {
  RunOptions opts;
  opts.jobs = 3;
  opts.simJobs = 2;
  opts.rep.reps = 9;
  net::FaultSpec fault;
  fault.dropProb = 0.5;
  opts.fault = fault;
  const RunOptions core = coreOptions(opts);
  EXPECT_EQ(core.jobs, 3);
  EXPECT_EQ(core.simJobs, 2);
  EXPECT_FALSE(core.fault.has_value());
  EXPECT_EQ(core.rep.reps, RunOptions{}.rep.reps);
}

}  // namespace
}  // namespace comb::bench
