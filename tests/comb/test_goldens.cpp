// Golden regression values.
//
// The simulator is bit-reproducible, so a handful of operating points can
// be pinned to their exact measured values. A failure here means the
// *model* changed (parameters, protocol, scheduling) — which is fine when
// intentional, but must never happen by accident: recalibrate against
// docs/machine_models.md and EXPERIMENTS.md, then update these numbers.
#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "comb/presets.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench {
namespace {

using namespace comb::units;

// Tight relative tolerance: these are equality checks with room for
// harmless floating-point re-association only.
constexpr double kRel = 1e-6;

TEST(Goldens, PollingGm100KbAt10kIters) {
  auto p = presets::pollingBase(100_KB);
  p.pollInterval = 10'000;
  const auto pt = runPollingPoint(backend::gmMachine(), p);
  EXPECT_NEAR(pt.bandwidthBps, 86856212.25, 86856212.25 * kRel);
  EXPECT_NEAR(pt.availability, 0.9703467463, 0.9703467463 * kRel);
  EXPECT_EQ(pt.messagesReceived, 25u);
}

TEST(Goldens, PollingPortals100KbAt10kIters) {
  auto p = presets::pollingBase(100_KB);
  p.pollInterval = 10'000;
  const auto pt = runPollingPoint(backend::portalsMachine(), p);
  EXPECT_NEAR(pt.bandwidthBps, 59330732.26, 59330732.26 * kRel);
  EXPECT_NEAR(pt.availability, 0.03812063482, 0.03812063482 * kRel);
  EXPECT_EQ(pt.messagesReceived, 435u);
}

TEST(Goldens, PwwGm100KbAt1MIters) {
  auto p = presets::pwwBase(100_KB);
  p.workInterval = 1'000'000;
  const auto pt = runPwwPoint(backend::gmMachine(), p);
  EXPECT_NEAR(pt.avgPost, 1e-05, 1e-05 * kRel);
  EXPECT_NEAR(pt.avgWork, 0.004, 0.004 * kRel);
  EXPECT_NEAR(pt.avgWait, 0.001218011111, 0.001218011111 * kRel);
}

TEST(Goldens, PwwPortals100KbAt1MIters) {
  auto p = presets::pwwBase(100_KB);
  p.workInterval = 1'000'000;
  const auto pt = runPwwPoint(backend::portalsMachine(), p);
  EXPECT_NEAR(pt.avgPost, 0.0006096, 0.0006096 * kRel);
  EXPECT_NEAR(pt.avgWork, 0.005403571429, 0.005403571429 * kRel);
  EXPECT_NEAR(pt.avgWait, 1.2e-06, 1.2e-06 * kRel);
}

TEST(Goldens, Latency10Kb) {
  LatencyParams lp;
  lp.msgBytes = 10_KB;
  const auto gm = runLatencyPoint(backend::gmMachine(), lp);
  const auto ptl = runLatencyPoint(backend::portalsMachine(), lp);
  EXPECT_NEAR(gm.halfRoundTripAvg, 0.0002355147619,
              0.0002355147619 * kRel);
  EXPECT_NEAR(ptl.halfRoundTripAvg, 0.0003299380952,
              0.0003299380952 * kRel);
}

}  // namespace
}  // namespace comb::bench
