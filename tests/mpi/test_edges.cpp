// Edge cases across the MPI layer and both protocol state machines:
// waitany/sendrecv, cancel racing a rendezvous, crossing traffic on many
// nodes, kernel unexpected-buffer accounting.
#include <gtest/gtest.h>

#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Request;
using mpi::Status;
using sim::Task;

class EdgeTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  MachineConfig config() const {
    return GetParam() == TransportKind::Gm ? gmMachine() : portalsMachine();
  }
};

TEST_P(EdgeTest, WaitanyReturnsFirstCompleted) {
  SimCluster cluster(config(), 2);
  std::size_t firstIdx = 99;
  auto receiver = [](SimProc& p, std::size_t& idx) -> Task<void> {
    // Post two receives; the peer sends only tag 21 (index 1) first.
    std::vector<Request> reqs;
    reqs.push_back(co_await p.mpi().irecv(p.mpi().world(), 1, 20, 1_KB));
    reqs.push_back(co_await p.mpi().irecv(p.mpi().world(), 1, 21, 1_KB));
    Status st;
    idx = co_await p.mpi().waitany(reqs, &st);
    EXPECT_EQ(st.tag, 21);
    EXPECT_FALSE(reqs[1].valid());
    EXPECT_TRUE(reqs[0].valid());
    // Complete the other one too.
    co_await p.mpi().wait(reqs[0]);
  };
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 0, 21, 1_KB);
    co_await p.simulator().delay(20_ms);
    co_await p.mpi().send(p.mpi().world(), 0, 20, 1_KB);
  };
  cluster.launch(0, receiver(cluster.proc(0), firstIdx));
  cluster.launch(1, sender(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(firstIdx, 1u);
}

TEST_P(EdgeTest, SendrecvExchange) {
  SimCluster cluster(config(), 2);
  std::vector<int> got(2, -1);
  auto proc = [](SimProc& p, int& out) -> Task<void> {
    const int peer = 1 - p.rank();
    const int mine = 100 + p.rank();
    co_await p.mpi().sendrecv(
        p.mpi().world(), peer, 7, sizeof(int),
        std::as_bytes(std::span<const int>(&mine, 1)), peer, 7, sizeof(int),
        std::as_writable_bytes(std::span<int>(&out, 1)));
  };
  cluster.launch(0, proc(cluster.proc(0), got[0]));
  cluster.launch(1, proc(cluster.proc(1), got[1]));
  cluster.run();
  EXPECT_EQ(got[0], 101);
  EXPECT_EQ(got[1], 100);
}

TEST_P(EdgeTest, CancelRacesArrivingRendezvous) {
  // The receive is posted, the peer's large send is in flight, and the
  // receiver cancels. Either the cancel wins (the message must then be
  // receivable by a new receive as unexpected) or it loses (the request
  // completes normally) — but nothing may be lost or duplicated.
  SimCluster cluster(config(), 2);
  bool cancelWon = false;
  std::vector<std::byte> rx(100_KB);
  auto receiver = [](SimProc& p, bool& won,
                     std::vector<std::byte>& buf) -> Task<void> {
    Request r = co_await p.mpi().irecv(p.mpi().world(), 1, 3, 100_KB, buf);
    co_await p.simulator().delay(200_us);  // message partially in flight
    won = co_await p.mpi().cancel(r);
    if (won) {
      // Message must still be deliverable via a fresh receive.
      co_await p.mpi().recv(p.mpi().world(), 1, 3, 100_KB, buf);
    } else {
      co_await p.mpi().wait(r);
    }
  };
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 0, 3, 100_KB);
  };
  cluster.launch(0, receiver(cluster.proc(0), cancelWon, rx));
  cluster.launch(1, sender(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(cluster.mpi(0).pendingRequests(), 0u);
  EXPECT_EQ(cluster.mpi(0).bytesReceived(), 100_KB);  // exactly once
}

TEST_P(EdgeTest, CrossingTrafficSixNodes) {
  // Every node sends to every other node simultaneously; all traffic
  // crosses one switch. Conservation: every byte sent is received.
  constexpr int kNodes = 6;
  constexpr Bytes kBytes = 30_KB;
  SimCluster cluster(config(), kNodes);
  auto proc = [](SimProc& p, int nodes, Bytes bytes) -> Task<void> {
    std::vector<Request> reqs;
    for (int r = 0; r < nodes; ++r) {
      if (r == p.rank()) continue;
      reqs.push_back(co_await p.mpi().irecv(p.mpi().world(), r, 1, bytes));
    }
    for (int r = 0; r < nodes; ++r) {
      if (r == p.rank()) continue;
      reqs.push_back(co_await p.mpi().isend(p.mpi().world(), r, 1, bytes));
    }
    co_await p.mpi().waitall(reqs);
  };
  for (int r = 0; r < kNodes; ++r)
    cluster.launch(r, proc(cluster.proc(r), kNodes, kBytes));
  cluster.run();
  Bytes sent = 0, received = 0;
  for (int r = 0; r < kNodes; ++r) {
    sent += cluster.mpi(r).bytesSent();
    received += cluster.mpi(r).bytesReceived();
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(sent, static_cast<Bytes>(kNodes) * (kNodes - 1) * kBytes);
}

TEST_P(EdgeTest, ZeroByteMessages) {
  SimCluster cluster(config(), 2);
  Status st;
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 4, 0);
  };
  auto receiver = [](SimProc& p, Status& out) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 4, 0, {}, &out);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), st));
  cluster.run();
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.tag, 4);
}

TEST_P(EdgeTest, ManySmallUnexpectedThenDrain) {
  // 32 unexpected messages pile up in the receiver's buffers, then a
  // burst of receives drains them in order.
  SimCluster cluster(config(), 2);
  std::vector<int> got;
  auto sender = [](SimProc& p) -> Task<void> {
    for (int i = 0; i < 32; ++i)
      co_await p.mpi().send(
          p.mpi().world(), 1, 5, sizeof(int),
          std::as_bytes(std::span<const int>(&i, 1)));
  };
  auto receiver = [](SimProc& p, std::vector<int>& out) -> Task<void> {
    co_await p.simulator().delay(100_ms);  // everything has arrived
    for (int i = 0; i < 32; ++i) {
      int v = -1;
      co_await p.mpi().recv(p.mpi().world(), 0, 5, sizeof(int),
                            std::as_writable_bytes(std::span<int>(&v, 1)));
      out.push_back(v);
    }
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), got));
  cluster.run();
  ASSERT_EQ(got.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST_P(EdgeTest, InterleavedTagsManyRequests) {
  // 3 tags x 8 messages, receives posted in a shuffled but per-tag-FIFO
  // order before anything is sent.
  SimCluster cluster(config(), 2);
  std::vector<std::vector<int>> got(3);
  auto receiver = [](SimProc& p,
                     std::vector<std::vector<int>>& out) -> Task<void> {
    struct Slot {
      Request req;
      int tag;
      int value = -1;
    };
    std::vector<std::unique_ptr<Slot>> slots;
    for (int i = 0; i < 8; ++i) {
      for (int tag = 0; tag < 3; ++tag) {
        auto slot = std::make_unique<Slot>();
        slot->tag = tag;
        slot->req = co_await p.mpi().irecv(
            p.mpi().world(), 1, tag, sizeof(int),
            std::as_writable_bytes(std::span<int>(&slot->value, 1)));
        slots.push_back(std::move(slot));
      }
    }
    std::vector<Request> reqs;
    for (auto& s : slots) reqs.push_back(s->req);
    co_await p.mpi().waitall(reqs);
    for (auto& s : slots) out[static_cast<size_t>(s->tag)].push_back(s->value);
  };
  auto sender = [](SimProc& p) -> Task<void> {
    // Send tag-major: all of tag 0, then 1, then 2.
    for (int tag = 0; tag < 3; ++tag)
      for (int i = 0; i < 8; ++i) {
        const int v = tag * 100 + i;
        co_await p.mpi().send(p.mpi().world(), 0, tag, sizeof(int),
                              std::as_bytes(std::span<const int>(&v, 1)));
      }
  };
  cluster.launch(0, receiver(cluster.proc(0), got));
  cluster.launch(1, sender(cluster.proc(1)));
  cluster.run();
  for (int tag = 0; tag < 3; ++tag) {
    ASSERT_EQ(got[static_cast<size_t>(tag)].size(), 8u);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(got[static_cast<size_t>(tag)][static_cast<size_t>(i)],
                tag * 100 + i)
          << "tag " << tag << " msg " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, EdgeTest,
                         ::testing::Values(TransportKind::Gm,
                                           TransportKind::Portals),
                         [](const auto& suiteInfo) {
                           return std::string(transportKindName(suiteInfo.param));
                         });

}  // namespace
}  // namespace comb::backend
