// Randomized stress test: many messages with random sizes, tags and
// posting orders, verified byte-for-byte. The sender derives every
// payload from a seeded RNG; the receiver re-derives and compares. Runs
// over both transports and several seeds (TEST_P) — this is the fuzz net
// under the matching engine, both protocol state machines, fragmentation
// and reassembly.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Request;
using mpi::Status;
using sim::Task;

struct MsgPlan {
  int tag;
  Bytes bytes;
  std::uint64_t payloadSeed;
};

// Deterministic plan both sides can derive from the seed.
std::vector<MsgPlan> makePlan(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<MsgPlan> plan;
  for (int i = 0; i < count; ++i) {
    MsgPlan m;
    m.tag = static_cast<int>(rng.below(5));  // few tags -> matching stress
    // Mix of tiny, eager-sized and rendezvous-sized messages.
    switch (rng.below(4)) {
      case 0: m.bytes = rng.below(64) + 1; break;
      case 1: m.bytes = rng.below(4_KB) + 1; break;
      case 2: m.bytes = rng.below(20_KB) + 1; break;
      default: m.bytes = rng.below(120_KB) + 1; break;
    }
    m.payloadSeed = rng();
    plan.push_back(m);
  }
  return plan;
}

std::vector<std::byte> payloadFor(const MsgPlan& m) {
  Rng rng(m.payloadSeed);
  std::vector<std::byte> data(m.bytes);
  for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
  return data;
}

Task<void> stressSender(SimProc& p, std::uint64_t seed, int count) {
  const auto plan = makePlan(seed, count);
  Rng jitter(seed ^ 0xABCD);
  auto& mpi = p.mpi();
  std::vector<Request> inflight;
  for (const auto& m : plan) {
    const auto data = payloadFor(m);
    inflight.push_back(
        co_await mpi.isend(mpi.world(), 1, m.tag, m.bytes, data));
    // Random pacing: sometimes burst, sometimes compute in between.
    if (jitter.below(3) == 0) co_await p.work(jitter.below(200'000));
    // Occasionally drain the send pool.
    if (inflight.size() > 8) co_await mpi.waitall(inflight);
    std::erase_if(inflight, [](const Request& r) { return !r.valid(); });
  }
  co_await mpi.waitall(inflight);
}

Task<void> stressReceiver(SimProc& p, std::uint64_t seed, int count,
                          int& mismatches) {
  const auto plan = makePlan(seed, count);
  Rng jitter(seed ^ 0x1234);
  auto& mpi = p.mpi();

  // Receives must match in send order *per tag* (non-overtaking). Build
  // per-tag FIFO expectations.
  std::map<int, std::vector<const MsgPlan*>> byTag;
  for (const auto& m : plan) byTag[m.tag].push_back(&m);

  // Post receives tag by tag in round-robin order with random delays —
  // a posting order quite different from the send order.
  struct Posted {
    const MsgPlan* plan;
    Request req;
    std::vector<std::byte> buf;
  };
  std::vector<Posted> posted;
  posted.reserve(static_cast<std::size_t>(count));
  bool postedAny = true;
  std::map<int, std::size_t> cursor;
  while (postedAny) {
    postedAny = false;
    for (auto& [tag, msgs] : byTag) {
      auto& cur = cursor[tag];
      if (cur >= msgs.size()) continue;
      postedAny = true;
      const MsgPlan* m = msgs[cur++];
      Posted entry;
      entry.plan = m;
      entry.buf.resize(m->bytes);
      entry.req =
          co_await mpi.irecv(mpi.world(), 0, tag, m->bytes, entry.buf);
      posted.push_back(std::move(entry));
      if (jitter.below(4) == 0) co_await p.work(jitter.below(100'000));
    }
  }
  // Wait for everything, then verify bytes.
  std::vector<Request> reqs;
  for (auto& e : posted) reqs.push_back(e.req);
  co_await mpi.waitall(reqs);
  for (const auto& e : posted) {
    if (e.buf != payloadFor(*e.plan)) ++mismatches;
  }
}

struct Param {
  TransportKind kind;
  std::uint64_t seed;
};

class StressTest : public ::testing::TestWithParam<Param> {};

TEST_P(StressTest, RandomTrafficByteExact) {
  const auto& param = GetParam();
  const auto machine = param.kind == TransportKind::Gm ? gmMachine()
                                                       : portalsMachine();
  constexpr int kMessages = 60;
  SimCluster cluster(machine, 2);
  int mismatches = 0;
  cluster.launch(0, stressSender(cluster.proc(0), param.seed, kMessages));
  cluster.launch(
      1, stressReceiver(cluster.proc(1), param.seed, kMessages, mismatches));
  cluster.run();
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(cluster.mpi(0).pendingRequests(), 0u);
  EXPECT_EQ(cluster.mpi(1).pendingRequests(), 0u);
  EXPECT_EQ(cluster.mpi(0).sendsPosted(), static_cast<unsigned>(kMessages));
  EXPECT_EQ(cluster.mpi(1).recvsPosted(), static_cast<unsigned>(kMessages));
}

std::vector<Param> stressParams() {
  std::vector<Param> params;
  for (const auto kind : {TransportKind::Gm, TransportKind::Portals})
    for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull})
      params.push_back({kind, seed});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::ValuesIn(stressParams()),
                         [](const auto& suiteInfo) {
                           return std::string(transportKindName(
                                      suiteInfo.param.kind)) +
                                  "_seed" + std::to_string(suiteInfo.param.seed);
                         });

}  // namespace
}  // namespace comb::backend
