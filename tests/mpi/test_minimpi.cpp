// End-to-end MiniMPI tests, parameterized over both transport models.
// Every semantic here must hold identically for GM and Portals — the
// transports differ in timing and offload, never in MPI semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Request;
using mpi::Status;
using sim::Task;

std::vector<std::byte> patternBytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((seed + i * 37) & 0xff);
  return v;
}

class MiniMpiTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  MachineConfig config() const {
    return GetParam() == TransportKind::Gm ? gmMachine() : portalsMachine();
  }
};

TEST_P(MiniMpiTest, BlockingSendRecvDataIntegrity) {
  SimCluster cluster(config(), 2);
  const auto payload = patternBytes(1000, 3);
  std::vector<std::byte> rxBuf(1000);

  auto sender = [](SimProc& p, const std::vector<std::byte>& data) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 5, data.size(), data);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& buf) -> Task<void> {
    Status st;
    co_await p.mpi().recv(p.mpi().world(), 0, 5, buf.size(), buf, &st);
    EXPECT_EQ(st.source, 0);
    EXPECT_EQ(st.tag, 5);
    EXPECT_EQ(st.bytes, buf.size());
  };
  cluster.launch(0, sender(cluster.proc(0), payload));
  cluster.launch(1, receiver(cluster.proc(1), rxBuf));
  cluster.run();
  EXPECT_EQ(rxBuf, payload);
}

TEST_P(MiniMpiTest, LargeMessageIntegrity) {
  // 300 KB: rendezvous path on GM, 75 fragments on both.
  SimCluster cluster(config(), 2);
  const auto payload = patternBytes(300_KB, 9);
  std::vector<std::byte> rxBuf(300_KB);

  auto sender = [](SimProc& p, const std::vector<std::byte>& d) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, d.size(), d);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& b) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, b.size(), b);
  };
  cluster.launch(0, sender(cluster.proc(0), payload));
  cluster.launch(1, receiver(cluster.proc(1), rxBuf));
  cluster.run();
  EXPECT_EQ(rxBuf, payload);
}

TEST_P(MiniMpiTest, SizeOnlyMessagesMoveNoData) {
  SimCluster cluster(config(), 2);
  Bytes gotBytes = 0;
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 2, 50_KB);
  };
  auto receiver = [](SimProc& p, Bytes& out) -> Task<void> {
    Status st;
    co_await p.mpi().recv(p.mpi().world(), 0, 2, 50_KB, {}, &st);
    out = st.bytes;
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), gotBytes));
  cluster.run();
  EXPECT_EQ(gotBytes, 50_KB);
}

TEST_P(MiniMpiTest, IsendIrecvTestLoop) {
  SimCluster cluster(config(), 2);
  bool completed = false;
  auto sender = [](SimProc& p) -> Task<void> {
    Request r = co_await p.mpi().isend(p.mpi().world(), 1, 3, 4_KB);
    co_await p.mpi().wait(r);
  };
  auto receiver = [](SimProc& p, bool& done) -> Task<void> {
    Request r = co_await p.mpi().irecv(p.mpi().world(), 0, 3, 4_KB);
    int spins = 0;
    while (!co_await p.mpi().test(r)) {
      ++spins;
      co_await p.work(1000);  // 4 us of work per spin
      if (spins >= 100000) {  // ASSERT_* returns; not allowed in coroutines
        ADD_FAILURE() << "test loop never completed";
        co_return;
      }
    }
    EXPECT_FALSE(r.valid());  // freed by successful test
    done = true;
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), completed));
  cluster.run();
  EXPECT_TRUE(completed);
}

TEST_P(MiniMpiTest, WildcardSourceAndTag) {
  SimCluster cluster(config(), 3);
  Status st;
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.simulator().delay(1_ms);
    co_await p.mpi().send(p.mpi().world(), 2, 77, 1_KB);
  };
  auto idle = [](SimProc&) -> Task<void> { co_return; };
  auto receiver = [](SimProc& p, Status& out) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), kAnySource, kAnyTag, 1_KB, {},
                          &out);
  };
  cluster.launch(0, idle(cluster.proc(0)));
  cluster.launch(1, sender(cluster.proc(1)));
  cluster.launch(2, receiver(cluster.proc(2), st));
  cluster.run();
  EXPECT_EQ(st.source, 1);
  EXPECT_EQ(st.tag, 77);
  EXPECT_EQ(st.bytes, 1_KB);
}

TEST_P(MiniMpiTest, NonOvertakingSameSenderSameTag) {
  SimCluster cluster(config(), 2);
  std::vector<std::byte> first(8), second(8);
  auto sender = [](SimProc& p) -> Task<void> {
    const auto a = patternBytes(8, 1);
    const auto b = patternBytes(8, 2);
    Request r1 = co_await p.mpi().isend(p.mpi().world(), 1, 4, 8, a);
    Request r2 = co_await p.mpi().isend(p.mpi().world(), 1, 4, 8, b);
    co_await p.mpi().wait(r1);
    co_await p.mpi().wait(r2);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& f,
                     std::vector<std::byte>& s) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 4, 8, f);
    co_await p.mpi().recv(p.mpi().world(), 0, 4, 8, s);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), first, second));
  cluster.run();
  EXPECT_EQ(first, patternBytes(8, 1));
  EXPECT_EQ(second, patternBytes(8, 2));
}

TEST_P(MiniMpiTest, NonOvertakingMixedSizes) {
  // A large (rendezvous on GM) send followed by a small (eager) send with
  // the same envelope must still match receives in send order.
  SimCluster cluster(config(), 2);
  std::vector<std::byte> bigRx(100_KB), smallRx(64);
  auto sender = [](SimProc& p) -> Task<void> {
    const auto big = patternBytes(100_KB, 11);
    const auto small = patternBytes(64, 22);
    Request r1 =
        co_await p.mpi().isend(p.mpi().world(), 1, 6, big.size(), big);
    Request r2 =
        co_await p.mpi().isend(p.mpi().world(), 1, 6, small.size(), small);
    std::vector<Request> rs{r1, r2};
    co_await p.mpi().waitall(rs);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& bigOut,
                     std::vector<std::byte>& smallOut) -> Task<void> {
    Status st1, st2;
    co_await p.mpi().recv(p.mpi().world(), 0, 6, 100_KB, bigOut, &st1);
    co_await p.mpi().recv(p.mpi().world(), 0, 6, smallOut.size(), smallOut,
                          &st2);
    EXPECT_EQ(st1.bytes, 100_KB);  // first send first
    EXPECT_EQ(st2.bytes, 64u);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), bigRx, smallRx));
  cluster.run();
  EXPECT_EQ(bigRx, patternBytes(100_KB, 11));
  EXPECT_EQ(std::vector<std::byte>(smallRx.begin(), smallRx.begin() + 64),
            patternBytes(64, 22));
}

TEST_P(MiniMpiTest, UnexpectedMessageClaimedByLateRecv) {
  SimCluster cluster(config(), 2);
  std::vector<std::byte> rx(10_KB);
  auto sender = [](SimProc& p, const std::vector<std::byte>& d) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 8, d.size(), d);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& b) -> Task<void> {
    // Give the message ample time to arrive before posting the receive.
    co_await p.simulator().delay(50_ms);
    co_await p.mpi().recv(p.mpi().world(), 0, 8, b.size(), b);
  };
  const auto payload = patternBytes(10_KB, 5);
  cluster.launch(0, sender(cluster.proc(0), payload));
  cluster.launch(1, receiver(cluster.proc(1), rx));
  cluster.run();
  EXPECT_EQ(rx, payload);
}

TEST_P(MiniMpiTest, UnexpectedLargeMessage) {
  SimCluster cluster(config(), 2);
  std::vector<std::byte> rx(200_KB);
  auto sender = [](SimProc& p, const std::vector<std::byte>& d) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 8, d.size(), d);
  };
  auto receiver = [](SimProc& p, std::vector<std::byte>& b) -> Task<void> {
    co_await p.simulator().delay(50_ms);
    co_await p.mpi().recv(p.mpi().world(), 0, 8, b.size(), b);
  };
  const auto payload = patternBytes(200_KB, 6);
  cluster.launch(0, sender(cluster.proc(0), payload));
  cluster.launch(1, receiver(cluster.proc(1), rx));
  cluster.run();
  EXPECT_EQ(rx, payload);
}

TEST_P(MiniMpiTest, PingPongAdvancesTime) {
  SimCluster cluster(config(), 2);
  Time elapsed = 0;
  const int rounds = 10;
  auto zero = [](SimProc& p, int n, Time& out) -> Task<void> {
    const Time t0 = p.wtime();
    for (int i = 0; i < n; ++i) {
      co_await p.mpi().send(p.mpi().world(), 1, 1, 10_KB);
      co_await p.mpi().recv(p.mpi().world(), 1, 2, 10_KB);
    }
    out = p.wtime() - t0;
  };
  auto one = [](SimProc& p, int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
      co_await p.mpi().send(p.mpi().world(), 0, 2, 10_KB);
    }
  };
  cluster.launch(0, zero(cluster.proc(0), rounds, elapsed));
  cluster.launch(1, one(cluster.proc(1), rounds));
  cluster.run();
  // 20 one-way 10 KB trips: at least the pure wire time.
  const Time minWire = 2.0 * rounds * 10240.0 / 90e6;
  EXPECT_GT(elapsed, minWire);
  EXPECT_LT(elapsed, 1.0);  // sanity: well under a second
}

TEST_P(MiniMpiTest, TestsomeReapsBatches) {
  SimCluster cluster(config(), 2);
  int reaped = 0;
  auto sender = [](SimProc& p) -> Task<void> {
    for (int i = 0; i < 4; ++i)
      co_await p.mpi().send(p.mpi().world(), 1, 10 + i, 2_KB);
  };
  auto receiver = [](SimProc& p, int& count) -> Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i)
      reqs.push_back(co_await p.mpi().irecv(p.mpi().world(), 0, 10 + i, 2_KB));
    std::vector<Status> sts;
    int spins = 0;
    while (count < 4) {
      auto done = co_await p.mpi().testsome(reqs, &sts);
      count += static_cast<int>(done.size());
      co_await p.work(500);
      if (++spins >= 100000) {
        ADD_FAILURE() << "testsome loop never completed";
        co_return;
      }
    }
    for (const auto& r : reqs) EXPECT_FALSE(r.valid());
    EXPECT_EQ(sts.size(), 4u);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), reaped));
  cluster.run();
  EXPECT_EQ(reaped, 4);
}

TEST_P(MiniMpiTest, WaitallBothDirections) {
  SimCluster cluster(config(), 2);
  auto proc = [](SimProc& p, int peer) -> Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < 3; ++i)
      reqs.push_back(
          co_await p.mpi().irecv(p.mpi().world(), peer, 20 + i, 30_KB));
    for (int i = 0; i < 3; ++i)
      reqs.push_back(
          co_await p.mpi().isend(p.mpi().world(), peer, 20 + i, 30_KB));
    co_await p.mpi().waitall(reqs);
    EXPECT_EQ(p.mpi().pendingRequests(), 0u);
  };
  cluster.launch(0, proc(cluster.proc(0), 1));
  cluster.launch(1, proc(cluster.proc(1), 0));
  cluster.run();
}

TEST_P(MiniMpiTest, IprobeSeesUnexpected) {
  SimCluster cluster(config(), 2);
  bool probed = false;
  Status st;
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 30, 1_KB);
  };
  auto receiver = [](SimProc& p, bool& hit, Status& out) -> Task<void> {
    co_await p.simulator().delay(20_ms);
    hit = co_await p.mpi().iprobe(p.mpi().world(), kAnySource, kAnyTag, &out);
    // Consume it so nothing is left dangling.
    co_await p.mpi().recv(p.mpi().world(), 0, 30, 1_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), probed, st));
  cluster.run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 30);
}

TEST_P(MiniMpiTest, IprobeFalseWhenNothingSent) {
  SimCluster cluster(config(), 2);
  bool probed = true;
  auto receiver = [](SimProc& p, bool& hit) -> Task<void> {
    hit = co_await p.mpi().iprobe(p.mpi().world(), kAnySource, kAnyTag);
  };
  auto idle = [](SimProc&) -> Task<void> { co_return; };
  cluster.launch(0, idle(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), probed));
  cluster.run();
  EXPECT_FALSE(probed);
}

TEST_P(MiniMpiTest, CancelUnmatchedRecvSucceeds) {
  SimCluster cluster(config(), 2);
  bool cancelled = false;
  auto receiver = [](SimProc& p, bool& ok) -> Task<void> {
    Request r = co_await p.mpi().irecv(p.mpi().world(), 0, 40, 1_KB);
    ok = co_await p.mpi().cancel(r);
    EXPECT_FALSE(r.valid());
    EXPECT_EQ(p.mpi().pendingRequests(), 0u);
  };
  auto idle = [](SimProc&) -> Task<void> { co_return; };
  cluster.launch(0, idle(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), cancelled));
  cluster.run();
  EXPECT_TRUE(cancelled);
}

TEST_P(MiniMpiTest, CancelAfterCompletionFails) {
  SimCluster cluster(config(), 2);
  bool cancelResult = true;
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 41, 1_KB);
  };
  auto receiver = [](SimProc& p, bool& res) -> Task<void> {
    Request r = co_await p.mpi().irecv(p.mpi().world(), 0, 41, 1_KB);
    co_await p.simulator().delay(50_ms);  // message certainly arrived
    co_await p.mpi().progressOnce();
    res = co_await p.mpi().cancel(r);
    EXPECT_FALSE(res);
    co_await p.mpi().wait(r);  // still completable
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1), cancelResult));
  cluster.run();
  EXPECT_FALSE(cancelResult);
}

TEST_P(MiniMpiTest, StatsCount) {
  SimCluster cluster(config(), 2);
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 50, 10_KB);
    co_await p.mpi().send(p.mpi().world(), 1, 50, 10_KB);
  };
  auto receiver = [](SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 50, 10_KB);
    co_await p.mpi().recv(p.mpi().world(), 0, 50, 10_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(cluster.mpi(0).sendsPosted(), 2u);
  EXPECT_EQ(cluster.mpi(0).bytesSent(), 2 * 10_KB);
  EXPECT_EQ(cluster.mpi(1).recvsPosted(), 2u);
  EXPECT_EQ(cluster.mpi(1).bytesReceived(), 2 * 10_KB);
}

INSTANTIATE_TEST_SUITE_P(Transports, MiniMpiTest,
                         ::testing::Values(TransportKind::Gm,
                                           TransportKind::Portals),
                         [](const auto& paramInfo) {
                           return std::string(
                               transportKindName(paramInfo.param));
                         });

}  // namespace
}  // namespace comb::backend
