// Collective operations over both transports and several node counts.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::Comm;
using sim::Task;

struct Param {
  TransportKind kind;
  int nodes;
};

class CollectivesTest : public ::testing::TestWithParam<Param> {
 protected:
  MachineConfig config() const {
    return GetParam().kind == TransportKind::Gm ? gmMachine()
                                                : portalsMachine();
  }
  int nodes() const { return GetParam().nodes; }
};

TEST_P(CollectivesTest, BarrierSynchronizes) {
  SimCluster cluster(config(), nodes());
  std::vector<Time> before(static_cast<size_t>(nodes())),
      after(static_cast<size_t>(nodes()));
  auto proc = [](SimProc& p, Time& b, Time& a) -> Task<void> {
    // Ranks arrive at wildly different times; all must leave together
    // (no earlier than the last arrival).
    co_await p.simulator().delay(static_cast<Time>(p.rank()) * 5_ms);
    b = p.wtime();
    co_await p.mpi().barrier(p.mpi().world());
    a = p.wtime();
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), before[static_cast<size_t>(r)],
                           after[static_cast<size_t>(r)]));
  cluster.run();
  const Time lastArrival =
      *std::max_element(before.begin(), before.end());
  for (int r = 0; r < nodes(); ++r)
    EXPECT_GE(after[static_cast<size_t>(r)], lastArrival) << "rank " << r;
}

TEST_P(CollectivesTest, BcastDeliversToAll) {
  SimCluster cluster(config(), nodes());
  std::vector<std::vector<std::byte>> bufs(static_cast<size_t>(nodes()),
                                           std::vector<std::byte>(256));
  const int root = nodes() - 1;
  auto proc = [](SimProc& p, int rt, std::vector<std::byte>& buf) -> Task<void> {
    if (p.rank() == rt)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::byte>(i & 0xff);
    co_await p.mpi().bcast(p.mpi().world(), rt, buf);
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), root, bufs[static_cast<size_t>(r)]));
  cluster.run();
  for (int r = 0; r < nodes(); ++r)
    for (std::size_t i = 0; i < 256; ++i)
      ASSERT_EQ(bufs[static_cast<size_t>(r)][i],
                static_cast<std::byte>(i & 0xff))
          << "rank " << r << " byte " << i;
}

TEST_P(CollectivesTest, ReduceSumAtRoot) {
  SimCluster cluster(config(), nodes());
  std::vector<double> result(4, -1.0);
  auto proc = [](SimProc& p, std::vector<double>& out) -> Task<void> {
    // Rank r contributes {r, 2r, 3r, 4r}.
    std::vector<double> in{1.0 * p.rank(), 2.0 * p.rank(), 3.0 * p.rank(),
                           4.0 * p.rank()};
    if (p.rank() == 0)
      co_await p.mpi().reduceSum(p.mpi().world(), 0, in, out);
    else
      co_await p.mpi().reduceSum(p.mpi().world(), 0, in, {});
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), result));
  cluster.run();
  const double n = nodes();
  const double sumRanks = n * (n - 1) / 2.0;
  EXPECT_DOUBLE_EQ(result[0], sumRanks);
  EXPECT_DOUBLE_EQ(result[1], 2 * sumRanks);
  EXPECT_DOUBLE_EQ(result[2], 3 * sumRanks);
  EXPECT_DOUBLE_EQ(result[3], 4 * sumRanks);
}

TEST_P(CollectivesTest, AllreduceEveryoneGetsSum) {
  SimCluster cluster(config(), nodes());
  std::vector<std::vector<double>> results(
      static_cast<size_t>(nodes()), std::vector<double>(2, -1.0));
  auto proc = [](SimProc& p, std::vector<double>& out) -> Task<void> {
    std::vector<double> in{1.0, static_cast<double>(p.rank())};
    co_await p.mpi().allreduceSum(p.mpi().world(), in, out);
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), results[static_cast<size_t>(r)]));
  cluster.run();
  const double n = nodes();
  for (int r = 0; r < nodes(); ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<size_t>(r)][0], n) << "rank " << r;
    EXPECT_DOUBLE_EQ(results[static_cast<size_t>(r)][1], n * (n - 1) / 2.0);
  }
}

TEST_P(CollectivesTest, GatherCollectsInRankOrder) {
  SimCluster cluster(config(), nodes());
  std::vector<std::byte> gathered(static_cast<size_t>(nodes()) * 4);
  auto proc = [](SimProc& p, std::vector<std::byte>& out) -> Task<void> {
    std::vector<std::byte> mine(4, static_cast<std::byte>(p.rank() + 1));
    if (p.rank() == 0)
      co_await p.mpi().gather(p.mpi().world(), 0, mine, out);
    else
      co_await p.mpi().gather(p.mpi().world(), 0, mine, {});
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), gathered));
  cluster.run();
  for (int r = 0; r < nodes(); ++r)
    for (int i = 0; i < 4; ++i)
      ASSERT_EQ(gathered[static_cast<size_t>(r * 4 + i)],
                static_cast<std::byte>(r + 1));
}

TEST_P(CollectivesTest, AllgatherEveryoneHasEverything) {
  SimCluster cluster(config(), nodes());
  std::vector<std::vector<std::byte>> outs(
      static_cast<size_t>(nodes()),
      std::vector<std::byte>(static_cast<size_t>(nodes()) * 2));
  auto proc = [](SimProc& p, std::vector<std::byte>& out) -> Task<void> {
    std::vector<std::byte> mine(2, static_cast<std::byte>(0x40 + p.rank()));
    co_await p.mpi().allgather(p.mpi().world(), mine, out);
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), outs[static_cast<size_t>(r)]));
  cluster.run();
  for (int r = 0; r < nodes(); ++r)
    for (int s = 0; s < nodes(); ++s)
      ASSERT_EQ(outs[static_cast<size_t>(r)][static_cast<size_t>(s * 2)],
                static_cast<std::byte>(0x40 + s))
          << "rank " << r << " slot " << s;
}

TEST_P(CollectivesTest, CommSplitEvenOdd) {
  if (nodes() < 2) GTEST_SKIP();
  SimCluster cluster(config(), nodes());
  std::vector<int> newSizes(static_cast<size_t>(nodes()), -1);
  std::vector<int> partnerData(static_cast<size_t>(nodes()), -1);
  auto proc = [](SimProc& p, int& newSize, int& got) -> Task<void> {
    const int color = p.rank() % 2;
    Comm sub = co_await p.mpi().commSplit(p.mpi().world(), color, p.rank());
    newSize = sub.size();
    // Ring exchange within the subcomm: send my world rank to the next
    // member, receive from the previous.
    const int me = sub.rank();
    const int nxt = (me + 1) % sub.size();
    const int prv = (me - 1 + sub.size()) % sub.size();
    const int myWorld = p.rank();
    mpi::Request rx = co_await p.mpi().irecv(
        sub, prv, 1, sizeof(int),
        std::as_writable_bytes(std::span<int>(&got, 1)));
    co_await p.mpi().send(sub, nxt, 1, sizeof(int),
                          std::as_bytes(std::span<const int>(&myWorld, 1)));
    co_await p.mpi().wait(rx);
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), newSizes[static_cast<size_t>(r)],
                           partnerData[static_cast<size_t>(r)]));
  cluster.run();
  for (int r = 0; r < nodes(); ++r) {
    const int expectSize = (nodes() + (r % 2 == 0 ? 1 : 0)) / 2;
    EXPECT_EQ(newSizes[static_cast<size_t>(r)], expectSize) << "rank " << r;
    // Received world rank must have the same parity.
    EXPECT_EQ(partnerData[static_cast<size_t>(r)] % 2, r % 2);
  }
}

TEST_P(CollectivesTest, CommDupIsolatesTraffic) {
  if (nodes() < 2) GTEST_SKIP();
  SimCluster cluster(config(), nodes());
  std::vector<int> got(static_cast<size_t>(nodes()), -1);
  auto proc = [](SimProc& p, int& out) -> Task<void> {
    Comm dup = co_await p.mpi().commDup(p.mpi().world());
    if (p.rank() == 0) {
      // Same tag on both comms; receivers must get the right payloads.
      const int a = 111, b = 222;
      co_await p.mpi().send(p.mpi().world(), 1, 9, sizeof(int),
                            std::as_bytes(std::span<const int>(&a, 1)));
      co_await p.mpi().send(dup, 1, 9, sizeof(int),
                            std::as_bytes(std::span<const int>(&b, 1)));
      out = 0;
    } else if (p.rank() == 1) {
      int fromDup = -1;
      // Post the dup receive FIRST; it must not steal the world message.
      mpi::Request rd = co_await p.mpi().irecv(
          dup, 0, 9, sizeof(int),
          std::as_writable_bytes(std::span<int>(&fromDup, 1)));
      int fromWorld = -1;
      co_await p.mpi().recv(
          p.mpi().world(), 0, 9, sizeof(int),
          std::as_writable_bytes(std::span<int>(&fromWorld, 1)));
      co_await p.mpi().wait(rd);
      EXPECT_EQ(fromWorld, 111);
      EXPECT_EQ(fromDup, 222);
      out = 0;
    } else {
      out = 0;
    }
  };
  for (int r = 0; r < nodes(); ++r)
    cluster.launch(r, proc(cluster.proc(r), got[static_cast<size_t>(r)]));
  cluster.run();
  for (int r = 0; r < nodes(); ++r) EXPECT_EQ(got[static_cast<size_t>(r)], 0);
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndSizes, CollectivesTest,
    ::testing::Values(Param{TransportKind::Gm, 2}, Param{TransportKind::Gm, 4},
                      Param{TransportKind::Gm, 7},
                      Param{TransportKind::Portals, 2},
                      Param{TransportKind::Portals, 4},
                      Param{TransportKind::Portals, 7}),
    [](const auto& suiteInfo) {
      return std::string(transportKindName(suiteInfo.param.kind)) + "_n" +
             std::to_string(suiteInfo.param.nodes);
    });

}  // namespace
}  // namespace comb::backend
