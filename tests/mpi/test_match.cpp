#include "mpi/match.hpp"

#include <gtest/gtest.h>

namespace comb::mpi {
namespace {

Envelope env(CommId c, Rank src, Tag tag) { return Envelope{c, src, tag}; }

TEST(MatchEngine, ExactMatch) {
  MatchEngine m;
  m.postRecv(Pattern{0, 1, 7}, 100, 42);
  const auto hit = m.matchArrival(env(0, 1, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cookie, 42u);
  EXPECT_EQ(m.postedCount(), 0u);
}

TEST(MatchEngine, MismatchedTagDoesNotMatch) {
  MatchEngine m;
  m.postRecv(Pattern{0, 1, 7}, 100, 1);
  EXPECT_FALSE(m.matchArrival(env(0, 1, 8)).has_value());
  EXPECT_EQ(m.postedCount(), 1u);
}

TEST(MatchEngine, MismatchedSourceDoesNotMatch) {
  MatchEngine m;
  m.postRecv(Pattern{0, 1, 7}, 100, 1);
  EXPECT_FALSE(m.matchArrival(env(0, 2, 7)).has_value());
}

TEST(MatchEngine, MismatchedCommDoesNotMatch) {
  MatchEngine m;
  m.postRecv(Pattern{3, 1, 7}, 100, 1);
  EXPECT_FALSE(m.matchArrival(env(0, 1, 7)).has_value());
}

TEST(MatchEngine, AnySourceWildcard) {
  MatchEngine m;
  m.postRecv(Pattern{0, kAnySource, 7}, 100, 5);
  const auto hit = m.matchArrival(env(0, 3, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cookie, 5u);
}

TEST(MatchEngine, AnyTagWildcard) {
  MatchEngine m;
  m.postRecv(Pattern{0, 2, kAnyTag}, 100, 6);
  ASSERT_TRUE(m.matchArrival(env(0, 2, 99)).has_value());
}

TEST(MatchEngine, FullWildcard) {
  MatchEngine m;
  m.postRecv(Pattern{0, kAnySource, kAnyTag}, 100, 6);
  ASSERT_TRUE(m.matchArrival(env(0, 9, 1234)).has_value());
}

TEST(MatchEngine, PostedOrderRespected) {
  // MPI: an arrival matches the FIRST posted receive that fits.
  MatchEngine m;
  m.postRecv(Pattern{0, kAnySource, kAnyTag}, 100, 1);
  m.postRecv(Pattern{0, 2, 7}, 100, 2);
  const auto hit = m.matchArrival(env(0, 2, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cookie, 1u);  // the wildcard was posted first
  // Second arrival takes the specific one.
  const auto hit2 = m.matchArrival(env(0, 2, 7));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->cookie, 2u);
}

TEST(MatchEngine, CancelRemovesPostedRecv) {
  MatchEngine m;
  m.postRecv(Pattern{0, 1, 7}, 100, 11);
  EXPECT_TRUE(m.cancelRecv(11));
  EXPECT_FALSE(m.matchArrival(env(0, 1, 7)).has_value());
  // Cancelling twice fails.
  EXPECT_FALSE(m.cancelRecv(11));
}

TEST(MatchEngine, UnexpectedQueueFifoWithinPattern) {
  MatchEngine m;
  m.addUnexpected(env(0, 1, 7), 10, 100);
  m.addUnexpected(env(0, 1, 7), 20, 101);
  const auto first = m.matchUnexpected(Pattern{0, 1, 7});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->xportHandle, 100u);
  EXPECT_EQ(first->bytes, 10u);
  const auto second = m.matchUnexpected(Pattern{0, 1, 7});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->xportHandle, 101u);
}

TEST(MatchEngine, UnexpectedWildcardTakesEarliest) {
  MatchEngine m;
  m.addUnexpected(env(0, 2, 5), 10, 1);
  m.addUnexpected(env(0, 1, 7), 20, 2);
  const auto hit = m.matchUnexpected(Pattern{0, kAnySource, kAnyTag});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->xportHandle, 1u);
}

TEST(MatchEngine, PeekDoesNotConsume) {
  MatchEngine m;
  m.addUnexpected(env(0, 1, 7), 10, 50);
  ASSERT_TRUE(m.peekUnexpected(Pattern{0, 1, 7}).has_value());
  EXPECT_EQ(m.unexpectedCount(), 1u);
  ASSERT_TRUE(m.matchUnexpected(Pattern{0, 1, 7}).has_value());
  EXPECT_EQ(m.unexpectedCount(), 0u);
  EXPECT_FALSE(m.peekUnexpected(Pattern{0, 1, 7}).has_value());
}

TEST(MatchEngine, UnexpectedBytesTracked) {
  MatchEngine m;
  m.addUnexpected(env(0, 1, 7), 100, 1);
  m.addUnexpected(env(0, 1, 8), 200, 2);
  EXPECT_EQ(m.unexpectedBytes(), 300u);
  m.matchUnexpected(Pattern{0, 1, 8});
  EXPECT_EQ(m.unexpectedBytes(), 100u);
}

TEST(MatchEngine, NoFalseUnexpectedMatch) {
  MatchEngine m;
  m.addUnexpected(env(0, 1, 7), 10, 1);
  EXPECT_FALSE(m.matchUnexpected(Pattern{0, 1, 8}).has_value());
  EXPECT_FALSE(m.matchUnexpected(Pattern{0, 2, 7}).has_value());
  EXPECT_FALSE(m.matchUnexpected(Pattern{1, 1, 7}).has_value());
}

}  // namespace
}  // namespace comb::mpi
