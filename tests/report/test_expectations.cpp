#include "report/expectations.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace comb::report {
namespace {

TEST(Expectations, PlateauThenDecline) {
  const std::vector<double> good{88, 87, 88, 86, 85, 70, 40, 10};
  EXPECT_TRUE(checkPlateauThenDecline("p", good).pass);
  const std::vector<double> noDecline{88, 87, 88, 86, 85, 88, 87, 88};
  EXPECT_FALSE(checkPlateauThenDecline("p", noDecline).pass);
  const std::vector<double> noPlateau{20, 40, 88, 87, 60, 40, 20, 10};
  EXPECT_FALSE(checkPlateauThenDecline("p", noPlateau).pass);
}

TEST(Expectations, RisesFromLowToHigh) {
  const std::vector<double> rise{0.05, 0.06, 0.1, 0.5, 0.95, 0.99};
  EXPECT_TRUE(checkRisesFromLowToHigh("r", rise, 0.2, 0.9).pass);
  const std::vector<double> flat{0.5, 0.5, 0.5, 0.5};
  EXPECT_FALSE(checkRisesFromLowToHigh("r", flat, 0.2, 0.9).pass);
}

TEST(Expectations, PeakRatio) {
  const std::vector<double> a{80, 88, 60};
  const std::vector<double> b{50, 55, 40};
  EXPECT_TRUE(checkPeakRatio("w", a, b, 1.3, 2.0).pass);
  EXPECT_FALSE(checkPeakRatio("w", a, b, 1.7, 2.0).pass);
  EXPECT_FALSE(checkPeakRatio("w", a, b, 1.0, 1.5).pass);
}

TEST(Expectations, Flat) {
  const std::vector<double> flat{100, 99, 101, 100};
  EXPECT_TRUE(checkFlat("f", flat, 0.05).pass);
  const std::vector<double> slope{100, 150, 200};
  EXPECT_FALSE(checkFlat("f", slope, 0.05).pass);
  const std::vector<double> zeros{0, 0, 0};
  EXPECT_TRUE(checkFlat("f", zeros, 0.05).pass);
}

TEST(Expectations, EndsBelowAbove) {
  const std::vector<double> falling{100, 50, 5};
  EXPECT_TRUE(checkEndsBelow("e", falling, 10).pass);
  EXPECT_FALSE(checkEndsBelow("e", falling, 5).pass);
  EXPECT_TRUE(checkEndsAbove("e", falling, 4).pass);
  EXPECT_FALSE(checkEndsAbove("e", falling, 6).pass);
}

TEST(Expectations, NearlyMonotone) {
  const std::vector<double> up{1, 2, 1.95, 3, 4};
  EXPECT_TRUE(checkNearlyMonotone("m", up, true, 0.1).pass);
  EXPECT_FALSE(checkNearlyMonotone("m", up, true, 0.01).pass);
  const std::vector<double> down{4, 3, 2, 1};
  EXPECT_TRUE(checkNearlyMonotone("m", down, false, 0.0).pass);
  EXPECT_FALSE(checkNearlyMonotone("m", down, true, 0.0).pass);
}

TEST(Expectations, Coexists) {
  const std::vector<double> avail{0.1, 0.5, 0.95};
  const std::vector<double> bw{88, 88, 86};
  EXPECT_TRUE(checkCoexists("c", avail, bw, 0.9, 85).pass);
  EXPECT_FALSE(checkCoexists("c", avail, bw, 0.99, 85).pass);
}

TEST(Expectations, ReportChecksAggregates) {
  std::ostringstream os;
  std::vector<ShapeCheck> checks{{"ok", true, "fine"},
                                 {"bad", false, "broken"}};
  EXPECT_FALSE(reportChecks(os, checks));
  EXPECT_NE(os.str().find("[PASS] ok"), std::string::npos);
  EXPECT_NE(os.str().find("[FAIL] bad"), std::string::npos);
  checks.pop_back();
  std::ostringstream os2;
  EXPECT_TRUE(reportChecks(os2, checks));
}

TEST(Expectations, EmptySeriesRejected) {
  EXPECT_THROW(checkEndsBelow("e", {}, 1.0), ConfigError);
}

}  // namespace
}  // namespace comb::report
