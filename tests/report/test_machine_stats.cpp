#include "report/machine_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::report {
namespace {

using namespace comb::units;
using sim::Task;

void runExchange(backend::SimCluster& cluster, Bytes bytes) {
  auto sender = [](backend::SimProc& p, Bytes n) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, n);
  };
  auto receiver = [](backend::SimProc& p, Bytes n) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, n);
  };
  cluster.launch(0, sender(cluster.proc(0), bytes));
  cluster.launch(1, receiver(cluster.proc(1), bytes));
  cluster.run();
}

TEST(MachineStats, SnapshotCountsExchange) {
  backend::SimCluster cluster(backend::portalsMachine(), 2);
  runExchange(cluster, 100_KB);
  const auto stats = snapshot(cluster);
  EXPECT_EQ(stats.machineName, "portals");
  EXPECT_GT(stats.simulatedTime, 0.0);
  EXPECT_GT(stats.eventsExecuted, 0u);
  // 25 fragments routed through the switch.
  EXPECT_EQ(stats.switchPacketsRouted, 25u);
  ASSERT_EQ(stats.nodes.size(), 2u);
  EXPECT_EQ(stats.nodes[0].bytesSent, 100_KB);
  EXPECT_EQ(stats.nodes[1].bytesReceived, 100_KB);
  EXPECT_EQ(stats.nodes[0].requestsPending, 0u);
  // Portals: both sides paid ISR time; bytes crossed the links.
  EXPECT_GT(stats.nodes[0].cpus.at(0).isrTime, 0.0);
  EXPECT_GT(stats.nodes[1].cpus.at(0).isrTime, 0.0);
  EXPECT_GT(stats.nodes[0].uplinkBytes, 100_KB);  // payload + headers
  EXPECT_EQ(stats.nodes[0].uplinkBytes, stats.nodes[1].downlinkBytes);
}

TEST(MachineStats, SmpSnapshotShowsBothCpus) {
  auto machine = backend::portalsMachine();
  machine.cpusPerNode = 2;
  machine.nicCpu = 1;
  backend::SimCluster cluster(machine, 2);
  runExchange(cluster, 50_KB);
  const auto stats = snapshot(cluster);
  ASSERT_EQ(stats.nodes[0].cpus.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.nodes[0].cpus[0].isrTime, 0.0);
  EXPECT_GT(stats.nodes[0].cpus[1].isrTime, 0.0);
}

TEST(MachineStats, RenderProducesTable) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  runExchange(cluster, 10_KB);
  std::ostringstream os;
  renderStats(os, snapshot(cluster));
  const auto s = os.str();
  EXPECT_NE(s.find("machine 'gm'"), std::string::npos);
  EXPECT_NE(s.find("user%"), std::string::npos);
  EXPECT_NE(s.find("uplink%"), std::string::npos);
  EXPECT_EQ(s.find("WARNING"), std::string::npos);
  EXPECT_NE(s.find("10 KB"), std::string::npos);
}

}  // namespace
}  // namespace comb::report
