#include "report/figure.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace comb::report {
namespace {

Figure sample() {
  Figure fig("figX", "Sample", "x_axis", "y_axis");
  fig.addSeries(Series{"a", {1, 10, 100}, {5.0, 6.0, 7.0}});
  fig.addSeries(Series{"b", {1, 10, 1000}, {1.0, 2.0, 3.0}});
  return fig;
}

TEST(Figure, RenderContainsPlotTableAndTitle) {
  auto fig = sample();
  fig.logX().paperExpectation("expected shape");
  std::ostringstream os;
  fig.render(os);
  const auto s = os.str();
  EXPECT_NE(s.find("figX: Sample"), std::string::npos);
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("paper: expected shape"), std::string::npos);
  // Collated table has a dash for missing x values of a series.
  EXPECT_NE(s.find('-'), std::string::npos);
  EXPECT_NE(s.find("x_axis"), std::string::npos);
}

TEST(Figure, CsvLongFormat) {
  auto fig = sample();
  std::ostringstream os;
  fig.writeCsv(os);
  const auto s = os.str();
  EXPECT_NE(s.find("series,x_axis,y_axis"), std::string::npos);
  EXPECT_NE(s.find("a,1,5"), std::string::npos);
  EXPECT_NE(s.find("b,1000,3"), std::string::npos);
  // 6 data rows + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 7);
}

TEST(Figure, CsvFileWritten) {
  auto fig = sample();
  const auto dir = std::filesystem::temp_directory_path() / "comb_fig_test";
  std::filesystem::remove_all(dir);
  const auto path = fig.writeCsvFile(dir.string());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "series,x_axis,y_axis");
  std::filesystem::remove_all(dir);
}

TEST(Figure, MismatchedSeriesRejected) {
  Figure fig("f", "t", "x", "y");
  EXPECT_THROW(fig.addSeries(Series{"bad", {1, 2}, {1}}), ConfigError);
}

}  // namespace
}  // namespace comb::report
