#include "report/archive.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace comb::report {
namespace {

Archive sampleArchive() {
  Archive a;
  a.bench = "fig_test";
  a.seed = 0xC04B;
  a.provenance.suite = "comb 1.2.3";
  a.provenance.gitSha = "abc123def456";
  a.provenance.buildFlags = "Release -O2";
  a.provenance.simJobs = 4;
  a.provenance.lookahead = 1.25e-6;
  a.provenance.lookaheadSource = "matrix";
  a.provenance.simAffinity = "compact";
  a.rep.adaptive = true;
  a.rep.reps = 5;
  a.rep.minReps = 3;
  a.rep.maxReps = 12;
  a.rep.ciTarget = 0.04;

  ArchiveSweep s;
  s.id = "polling/portals/100 KB";
  s.xlabel = "poll_interval_iters";
  s.machine = "portals";
  s.machineHash = "0123456789abcdef";

  ArchivePoint p;
  p.x = 10000.0;
  p.converged = false;
  ArchiveMetric m;
  m.name = "bandwidth_MBps";
  m.higherIsBetter = true;
  // Awkward doubles on purpose: the round trip must be exact.
  m.samples = {55.123456789012345, 1e-300, 0.1, 3.0000000000000004};
  p.metrics.push_back(m);
  ArchiveMetric m2;
  m2.name = "latency_us";
  m2.higherIsBetter = false;
  m2.samples = {12.5};
  p.metrics.push_back(m2);
  s.points.push_back(p);
  a.sweeps.push_back(s);
  return a;
}

Archive roundTrip(const Archive& a) {
  std::ostringstream out;
  writeArchive(out, a);
  return parseArchive(json::parse(out.str(), "roundtrip"), "roundtrip");
}

TEST(Archive, RoundTripPreservesEverything) {
  const Archive a = sampleArchive();
  const Archive b = roundTrip(a);

  EXPECT_EQ(b.version, kArchiveVersion);
  EXPECT_EQ(b.bench, a.bench);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.provenance.suite, a.provenance.suite);
  EXPECT_EQ(b.provenance.gitSha, a.provenance.gitSha);
  EXPECT_EQ(b.provenance.buildFlags, a.provenance.buildFlags);
  EXPECT_EQ(b.provenance.simJobs, a.provenance.simJobs);
  EXPECT_DOUBLE_EQ(b.provenance.lookahead, a.provenance.lookahead);
  EXPECT_EQ(b.provenance.lookaheadSource, a.provenance.lookaheadSource);
  EXPECT_EQ(b.provenance.simAffinity, a.provenance.simAffinity);
  EXPECT_EQ(b.rep.adaptive, a.rep.adaptive);
  EXPECT_EQ(b.rep.reps, a.rep.reps);
  EXPECT_EQ(b.rep.minReps, a.rep.minReps);
  EXPECT_EQ(b.rep.maxReps, a.rep.maxReps);
  EXPECT_DOUBLE_EQ(b.rep.ciTarget, a.rep.ciTarget);

  ASSERT_EQ(b.sweeps.size(), 1u);
  const auto& sa = a.sweeps[0];
  const auto& sb = b.sweeps[0];
  EXPECT_EQ(sb.id, sa.id);
  EXPECT_EQ(sb.xlabel, sa.xlabel);
  EXPECT_EQ(sb.machine, sa.machine);
  EXPECT_EQ(sb.machineHash, sa.machineHash);
  ASSERT_EQ(sb.points.size(), 1u);
  EXPECT_DOUBLE_EQ(sb.points[0].x, sa.points[0].x);
  EXPECT_EQ(sb.points[0].converged, sa.points[0].converged);
  ASSERT_EQ(sb.points[0].metrics.size(), 2u);
  for (std::size_t mi = 0; mi < 2; ++mi) {
    const auto& ma = sa.points[0].metrics[mi];
    const auto& mb = sb.points[0].metrics[mi];
    EXPECT_EQ(mb.name, ma.name);
    EXPECT_EQ(mb.higherIsBetter, ma.higherIsBetter);
    ASSERT_EQ(mb.samples.size(), ma.samples.size());
    for (std::size_t i = 0; i < ma.samples.size(); ++i)
      EXPECT_DOUBLE_EQ(mb.samples[i], ma.samples[i])
          << ma.name << " sample " << i << " did not round-trip exactly";
  }
}

TEST(Archive, SerializationIsDeterministic) {
  const Archive a = sampleArchive();
  std::ostringstream s1, s2;
  writeArchive(s1, a);
  writeArchive(s2, a);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(Archive, RejectsNewerVersion) {
  const Archive a = sampleArchive();
  std::ostringstream out;
  writeArchive(out, a);
  auto doc = out.str();
  const auto pos = doc.find("\"comb_archive_version\": 1");
  ASSERT_NE(pos, std::string::npos) << doc.substr(0, 200);
  doc.replace(pos, std::string("\"comb_archive_version\": 1").size(),
              "\"comb_archive_version\": 999");
  EXPECT_THROW(parseArchive(json::parse(doc, "v999"), "v999"), ConfigError);
}

TEST(Archive, RejectsNonArchiveJson) {
  EXPECT_THROW(parseArchive(json::parse("{}", "empty"), "empty"),
               ConfigError);
  EXPECT_THROW(parseArchive(json::parse("[1,2]", "arr"), "arr"), ConfigError);
}

TEST(Archive, FileRoundTrip) {
  const Archive a = sampleArchive();
  const std::string dir = ::testing::TempDir() + "comb_archive_test";
  const std::string path = writeArchiveFile(a, dir);
  EXPECT_EQ(path, dir + "/fig_test.json");
  const Archive b = loadArchiveFile(path);
  EXPECT_EQ(b.bench, a.bench);
  ASSERT_EQ(b.sweeps.size(), 1u);
  EXPECT_EQ(b.sweeps[0].id, a.sweeps[0].id);
  std::remove(path.c_str());
}

TEST(Archive, LoadMissingFileThrows) {
  EXPECT_THROW(loadArchiveFile("/nonexistent/a.json"), ConfigError);
}

TEST(Archive, ParsesArchivesWithoutCoreConfigFields) {
  // Archives written before the sharded core ran serial with no window
  // bound and no pinning — dropping the new provenance keys must parse
  // back to exactly those defaults.
  const Archive a = sampleArchive();
  std::ostringstream out;
  writeArchive(out, a);
  auto doc = out.str();
  const auto begin = doc.find(", \"sim_jobs\":");
  const std::string last = "\"sim_affinity\": \"compact\"";
  const auto end = doc.find(last);
  ASSERT_NE(begin, std::string::npos) << doc.substr(0, 400);
  ASSERT_NE(end, std::string::npos) << doc.substr(0, 400);
  doc.erase(begin, end + last.size() - begin);
  const Archive b = parseArchive(json::parse(doc, "legacy"), "legacy");
  EXPECT_EQ(b.provenance.simJobs, 1);
  EXPECT_DOUBLE_EQ(b.provenance.lookahead, 0.0);
  EXPECT_EQ(b.provenance.lookaheadSource, "global-min");
  EXPECT_EQ(b.provenance.simAffinity, "none");
}

TEST(Archive, BuildProvenanceIsStamped) {
  const auto p = buildProvenance();
  EXPECT_FALSE(p.suite.empty());
  EXPECT_FALSE(p.gitSha.empty());
  EXPECT_FALSE(p.buildFlags.empty());
}

}  // namespace
}  // namespace comb::report
