// Chrome trace-event export and the text summary behind
// `comb trace --summary`.
#include "report/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"
#include "report/machine_stats.hpp"

namespace comb::report {
namespace {

using namespace comb::units;
using sim::TraceCategory;
using sim::TraceLog;

TEST(TraceLayer, CoversEveryCategory) {
  EXPECT_EQ(traceLayer(TraceCategory::Process), 1);
  EXPECT_EQ(traceLayer(TraceCategory::Compute), 1);
  EXPECT_EQ(traceLayer(TraceCategory::Interrupt), 1);
  EXPECT_EQ(traceLayer(TraceCategory::Phase), 1);
  EXPECT_EQ(traceLayer(TraceCategory::MpiCall), 2);
  EXPECT_EQ(traceLayer(TraceCategory::Protocol), 2);
  EXPECT_EQ(traceLayer(TraceCategory::NicEvent), 3);
  EXPECT_EQ(traceLayer(TraceCategory::Packet), 3);
  EXPECT_EQ(traceLayer(TraceCategory::Wire), 4);
  EXPECT_EQ(traceLayer(TraceCategory::Fault), 4);
  EXPECT_STREQ(traceLayerName(1), "host");
  EXPECT_STREQ(traceLayerName(2), "library");
  EXPECT_STREQ(traceLayerName(3), "nic");
  EXPECT_STREQ(traceLayerName(4), "wire");
}

TEST(ChromeTrace, EmitsEventsWithLayerTracks) {
  TraceLog log(32);
  log.beginSpan(1e-3, TraceCategory::MpiCall, 0, "isend", 1024);
  log.endSpan(2e-3, TraceCategory::MpiCall, 0, "isend");
  log.complete(3e-3, 5e-4, TraceCategory::Wire, 1, "up0", 4160);
  log.emit(4e-3, TraceCategory::Packet, 1, "->n0");

  std::ostringstream os;
  writeChromeTrace(os, log);
  const std::string s = os.str();
  // Header metadata: nothing dropped, record count recorded.
  EXPECT_NE(s.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"records\": 4"), std::string::npos);
  // Span events on the library track of node 0's process (pid=node+1).
  EXPECT_NE(s.find("{\"ph\": \"B\", \"pid\": 1, \"tid\": 2"),
            std::string::npos);
  EXPECT_NE(s.find("{\"ph\": \"E\", \"pid\": 1, \"tid\": 2"),
            std::string::npos);
  // Complete event carries a duration in microseconds.
  EXPECT_NE(s.find("\"ph\": \"X\", \"pid\": 2, \"tid\": 4, \"ts\": "
                   "3000.000, \"dur\": 500.000"),
            std::string::npos);
  // Instant event.
  EXPECT_NE(s.find("\"ph\": \"i\""), std::string::npos);
  // Track naming metadata.
  EXPECT_NE(s.find("\"name\": \"node 0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"library\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"wire\""), std::string::npos);
  // Payload args survive.
  EXPECT_NE(s.find("\"args\": {\"a\": 4160, \"b\": 0}"), std::string::npos);
  // Labels become event names.
  EXPECT_NE(s.find("\"name\": \"isend\""), std::string::npos);
}

TEST(ChromeTrace, EscapesLabels) {
  TraceLog log(4);
  log.emit(0, TraceCategory::Protocol, 0, "odd\"label\\x");
  std::ostringstream os;
  writeChromeTrace(os, log);
  EXPECT_NE(os.str().find("\"odd\\\"label\\\\x\""), std::string::npos);
}

TEST(ChromeTrace, ReportsDrops) {
  TraceLog log(2);
  for (int i = 0; i < 5; ++i) log.emit(i * 1e-3, TraceCategory::Packet, 0, "p");
  std::ostringstream os;
  writeChromeTrace(os, log);
  EXPECT_NE(os.str().find("\"dropped\": 3"), std::string::npos);
}

TEST(TraceSummary, CountsAndTopSpans) {
  TraceLog log(32);
  log.beginSpan(0.0, TraceCategory::Phase, 0, "work");
  log.endSpan(10e-3, TraceCategory::Phase, 0, "work");  // 10ms — longest
  log.complete(1e-3, 2e-3, TraceCategory::Wire, 1, "up0");
  log.emit(2e-3, TraceCategory::Packet, 1, "->n0");
  std::ostringstream os;
  writeTraceSummary(os, log, 2);
  const std::string s = os.str();
  EXPECT_NE(s.find("4 record(s)"), std::string::npos);
  EXPECT_NE(s.find("phase"), std::string::npos);
  EXPECT_NE(s.find("packet"), std::string::npos);
  EXPECT_NE(s.find("top 2 spans"), std::string::npos);
  // The 10ms phase span outranks the 2ms wire transit.
  EXPECT_LT(s.find("work", s.find("top 2")), s.find("up0", s.find("top 2")));
}

TEST(TraceSummary, EmptyLog) {
  TraceLog log(4);
  std::ostringstream os;
  writeTraceSummary(os, log);
  EXPECT_NE(os.str().find("0 record(s)"), std::string::npos);
}

TEST(StatsJson, ExportsMetricsAlongsideFaults) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  cluster.enableTracing();
  auto sender = [](backend::SimProc& p) -> sim::Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 10_KB);
  };
  auto receiver = [](backend::SimProc& p) -> sim::Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  const MachineStats stats = snapshot(cluster);
  EXPECT_EQ(stats.traceDropped, 0u);
  EXPECT_EQ(stats.metrics.counterValue("mpi.n0.isend"), 1u);

  std::ostringstream os;
  writeStatsJson(os, stats);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"machine\": \"gm\""), std::string::npos);
  EXPECT_NE(s.find("\"faults\": {\"drops_injected\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"trace_dropped\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(s.find("\"mpi.n0.isend\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"link.up0.packets\""), std::string::npos);
}

}  // namespace
}  // namespace comb::report
