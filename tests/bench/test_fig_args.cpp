// parseFigArgs is shared by all 21 figure/ablation/extension benches;
// these tests pin down its parse-time validation (satellite of the
// parallel-sweep PR): bad values must be rejected up front with
// exitCode 2 instead of exploding later inside COMB_REQUIRE mid-sweep.
#include "bench/fig_common.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace comb::bench {
namespace {

FigArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "figtest");
  return parseFigArgs(static_cast<int>(argv.size()), argv.data(), "figtest",
                      "parseFigArgs unit test");
}

TEST(FigArgs, DefaultsAreValid) {
  const auto args = parse({});
  EXPECT_TRUE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 0);
  EXPECT_EQ(args.pointsPerDecade, 2);
  EXPECT_GE(args.jobs, 1);  // defaults to hardware concurrency
  EXPECT_EQ(args.jobs, hardwareJobs());
  EXPECT_FALSE(args.csv);
  EXPECT_EQ(args.outDir, "bench_out");
}

TEST(FigArgs, ParsesExplicitValues) {
  const auto args =
      parse({"--points-per-decade", "5", "--jobs", "3", "--csv", "--out",
             "results"});
  EXPECT_TRUE(args.parsedOk);
  EXPECT_EQ(args.pointsPerDecade, 5);
  EXPECT_EQ(args.jobs, 3);
  EXPECT_TRUE(args.csv);
  EXPECT_EQ(args.outDir, "results");
}

TEST(FigArgs, RejectsZeroPointsPerDecade) {
  const auto args = parse({"--points-per-decade", "0"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, RejectsNegativePointsPerDecade) {
  const auto args = parse({"--points-per-decade=-3"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, RejectsNonNumericPointsPerDecade) {
  const auto args = parse({"--points-per-decade", "many"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, RejectsZeroOrNegativeJobs) {
  for (const char* bad : {"0", "-2"}) {
    const auto args = parse({"--jobs", bad});
    EXPECT_FALSE(args.parsedOk) << "--jobs " << bad;
    EXPECT_EQ(args.exitCode, 2) << "--jobs " << bad;
  }
}

TEST(FigArgs, RejectsNonNumericJobs) {
  const auto args = parse({"--jobs", "all"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, ParsesSimAffinityPolicies) {
  EXPECT_EQ(parse({}).simAffinity, sim::AffinityPolicy::None);
  EXPECT_EQ(parse({"--sim-affinity", "compact"}).simAffinity,
            sim::AffinityPolicy::Compact);
  EXPECT_EQ(parse({"--sim-affinity", "scatter"}).simAffinity,
            sim::AffinityPolicy::Scatter);
  // Rides into the sweep-execution options alongside --sim-jobs.
  const auto opts =
      parse({"--sim-jobs", "4", "--sim-affinity", "scatter"}).runOptions();
  EXPECT_EQ(opts.simJobs, 4);
  EXPECT_EQ(opts.simAffinity, sim::AffinityPolicy::Scatter);
}

TEST(FigArgs, RejectsUnknownSimAffinity) {
  const auto args = parse({"--sim-affinity", "numa"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, ParsesFaultSpec) {
  const auto args = parse({"--fault", "drop=0.01,burst=4,seed=7"});
  EXPECT_TRUE(args.parsedOk);
  ASSERT_TRUE(args.fault.has_value());
  EXPECT_DOUBLE_EQ(args.fault->dropProb, 0.01);
  EXPECT_EQ(args.fault->burstLen, 4);
  EXPECT_EQ(args.fault->seed, 7u);
  // The fault spec rides into the sweep via RunOptions.
  const auto opts = args.runOptions();
  ASSERT_TRUE(opts.fault.has_value());
  EXPECT_DOUBLE_EQ(opts.fault->dropProb, 0.01);
}

TEST(FigArgs, NoFaultFlagMeansNoOverride) {
  const auto args = parse({});
  EXPECT_FALSE(args.fault.has_value());
  EXPECT_FALSE(args.runOptions().fault.has_value());
}

TEST(FigArgs, RejectsMalformedFaultSpec) {
  for (const char* bad :
       {"drop=2", "drop=-1", "burst=0", "oops=1", "drop", "drop=x"}) {
    const auto args = parse({"--fault", bad});
    EXPECT_FALSE(args.parsedOk) << "--fault " << bad;
    EXPECT_EQ(args.exitCode, 2) << "--fault " << bad;
  }
}

TEST(FigArgs, DefaultIsNoTrace) {
  const auto args = parse({});
  EXPECT_TRUE(args.traceFile.empty());
}

TEST(FigArgs, ParsesTraceFileAndProbesWritability) {
  const char* path = "figargs_trace_probe.json";
  const auto args = parse({"--trace", path});
  EXPECT_TRUE(args.parsedOk);
  EXPECT_EQ(args.traceFile, path);
  // The parse-time probe opens the file for writing, so it now exists.
  EXPECT_TRUE(std::ifstream(path).good());
  std::remove(path);
}

TEST(FigArgs, RejectsUnwritableTracePathAtParseTime) {
  const auto args =
      parse({"--trace", "/nonexistent-dir-xyzzy/trace.json"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, RejectsUnknownOption) {
  const auto args = parse({"--frobnicate"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 2);
}

TEST(FigArgs, HelpExitsZeroWithoutRunning) {
  const auto args = parse({"--help"});
  EXPECT_FALSE(args.parsedOk);
  EXPECT_EQ(args.exitCode, 0);
}

}  // namespace
}  // namespace comb::bench
