// EpochBarrier + MailboxRing: the synchronization and transport
// primitives of the sharded executor's window loop. The barrier tests
// run real thread teams through many generations (completion runs
// exactly once per window, on exactly one thread, and its writes are
// visible to every participant afterwards); the mailbox tests pin down
// append order, spill behavior beyond the fixed slots, and reuse.
#include "sim/window_barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/mailbox.hpp"

namespace comb::sim {
namespace {

TEST(EpochBarrier, SingleParticipantRunsCompletionInline) {
  EpochBarrier barrier(1);
  int completions = 0;
  for (int i = 0; i < 3; ++i) barrier.arriveAndWait([&] { ++completions; });
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(barrier.generation(), 3u);
}

TEST(EpochBarrier, CompletionRunsOncePerGenerationAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  EpochBarrier barrier(kThreads);
  // Written only inside the completion (one thread per generation, and
  // generations are totally ordered by the barrier itself).
  int completions = 0;
  std::atomic<int> arrivals{0};
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        barrier.arriveAndWait([&] { ++completions; });
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(completions, kRounds);
  EXPECT_EQ(arrivals.load(), kThreads * kRounds);
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kRounds));
}

TEST(EpochBarrier, CompletionWritesAreVisibleToAllAfterRelease) {
  // The executor's phase discipline in miniature: each round, every
  // thread bumps its plain (non-atomic) slot, the completion sums the
  // slots, and after release every thread must read the same sum. Any
  // missing happens-before edge is a torn read here — and a TSan report
  // under scripts/verify_tier1.sh.
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  EpochBarrier barrier(kThreads);
  int slots[kThreads] = {};
  int sum = 0;  // written by the completion only
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&, t] {
      for (int r = 1; r <= kRounds; ++r) {
        slots[t] = r;
        barrier.arriveAndWait([&] {
          sum = 0;
          for (int s : slots) sum += s;
        });
        if (sum != kThreads * r) mismatch.store(true);
        barrier.arriveAndWait([] {});  // phase B: everyone saw this round
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(MailboxRing, DrainsInAppendOrderAndSpillsPastSlots) {
  MailboxRing ring;
  EXPECT_TRUE(ring.empty());
  const std::size_t total = MailboxRing::kSlots + 17;  // force spill
  for (std::size_t i = 0; i < total; ++i)
    ring.push(static_cast<Time>(i), /*seq=*/i, /*src=*/1, [] {});
  EXPECT_EQ(ring.size(), total);

  std::vector<RemoteEvent> out;
  ring.drainInto(out);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  ASSERT_EQ(out.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].when, static_cast<Time>(i));
    EXPECT_EQ(out[i].src, 1u);
  }
}

TEST(MailboxRing, ReusableAcrossWindowsAndCarriesPayload) {
  MailboxRing ring;
  int fired = 0;
  std::vector<RemoteEvent> out;
  for (int window = 0; window < 3; ++window) {
    ring.push(1.0, 0, 0, [&fired] { ++fired; });
    ring.push(2.0, 1, 0, [&fired] { fired += 10; });
    out.clear();
    ring.drainInto(out);
    ASSERT_EQ(out.size(), 2u);
    for (auto& ev : out) ev.fn();
    EXPECT_TRUE(ring.empty());
  }
  EXPECT_EQ(fired, 3 * 11);
}

}  // namespace
}  // namespace comb::sim
