// Steady-state allocation regression for the sharded window loop: after
// a warm-up run has grown the event pools, mailbox slots and fold-in
// scratch to capacity, a multi-window cross-shard run must not touch the
// heap at all — no per-window closures, no per-message boxes, no barrier
// bookkeeping. Guarded the same way as the TraceLog test: operator new
// is replaced binary-wide and counted.
#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/units.hpp"
#include "sim/shard_context.hpp"

namespace {
std::atomic<std::size_t> g_allocCount{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace comb::sim {
namespace {

constexpr Time kLookahead = 1.0;

/// Endless cross-shard ping-pong: one event per window, every hop posted
/// through the mailbox rings. Small enough to live inline in an event
/// closure — any heap traffic the counter sees comes from the executor.
struct PingPong {
  Executor& exec;
  std::uint64_t hops = 0;
  void hop(int s) {
    ++hops;
    ShardContext& ctx = exec.shard(s);
    ctx.postRemote(exec.shard(1 - s), ctx.now() + kLookahead,
                   [this, s] { hop(1 - s); });
  }
};

TEST(ExecutorAlloc, SteadyStateWindowLoopIsAllocationFree) {
  ExecutorOptions opts;
  opts.shards = 2;
  opts.lookahead = kLookahead;
  opts.workers = 1;  // deterministic on any host; the loop is identical
  Executor exec(opts);
  PingPong pp{exec};
  exec.shard(0).schedule(0.0, [&pp] { pp.hop(0); });

  // Warm-up: grows the event pool, ring storage and scratch to capacity.
  exec.run(64.0);
  const std::uint64_t warmWindows = exec.windowsExecuted();
  ASSERT_GT(warmWindows, 16u);
  ASSERT_GT(pp.hops, 16u);

  const std::size_t before = g_allocCount.load(std::memory_order_relaxed);
  exec.run(512.0);
  const std::size_t after = g_allocCount.load(std::memory_order_relaxed);
  EXPECT_GT(exec.windowsExecuted(), warmWindows + 128);
  EXPECT_EQ(after, before) << "sharded window loop allocated in steady state";
}

}  // namespace
}  // namespace comb::sim
