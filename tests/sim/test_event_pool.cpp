// Event-pool mechanics: slot recycling, stale-handle detection via the
// seq-as-generation check, FIFO order across recycled slots, and closure
// lifetime (teardown must destroy unfired closures — the spawn-leak
// regression).
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace comb::sim {
namespace {

TEST(EventPool, SlotsRecycleWithoutGrowingTheSlab) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.push(1.0, [] {});
  EXPECT_EQ(q.poolCapacity(), 100u);
  EXPECT_EQ(q.liveEvents(), 100u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(q.liveEvents(), 0u);
  // A second wave of the same size reuses the freed slots: the slab has
  // reached its high-water mark and must not grow again.
  for (int i = 0; i < 100; ++i) q.push(2.0, [] {});
  EXPECT_EQ(q.poolCapacity(), 100u);
  EXPECT_EQ(q.liveEvents(), 100u);
}

TEST(EventPool, StaleHandleCannotTouchARecycledSlot) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  h1.cancel();
  // h2 reuses h1's slot (single free slot available) but gets a new seq.
  int ran = 0;
  auto h2 = q.push(1.0, [&] { ++ran; });
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // stale: must not cancel h2's event
  EXPECT_TRUE(h2.pending());
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(ran, 1);
}

TEST(EventPool, HandleInvalidatedByFiringEvenAfterSlotReuse) {
  EventQueue q;
  auto h1 = q.push(1.0, [] {});
  q.pop().second();  // h1 fires; its slot returns to the free list
  EXPECT_FALSE(h1.pending());
  int ran = 0;
  auto h2 = q.push(2.0, [&] { ++ran; });
  h1.cancel();  // refers to the fired event, not the slot's new occupant
  h1.cancel();  // idempotent
  EXPECT_TRUE(h2.pending());
  q.pop().second();
  EXPECT_EQ(ran, 1);
}

TEST(EventPool, CancelAfterFireAndDoubleCancelAreIdempotent) {
  EventQueue q;
  int ran = 0;
  auto h = q.push(1.0, [&] { ++ran; });
  q.pop().second();
  h.cancel();
  h.cancel();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(q.empty());

  auto h2 = q.push(1.0, [&] { ++ran; });
  h2.cancel();
  h2.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ran, 1);
}

TEST(EventPool, FifoAtEqualTimestampsSurvivesRecycling) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 5; ++i)
    hs.push_back(q.push(1.0, [&order, i] { order.push_back(i); }));
  // Cancel two events mid-pack; their slots are recycled by later pushes
  // at the same timestamp, which must still fire in push order.
  hs[1].cancel();
  hs[3].cancel();
  q.push(1.0, [&order] { order.push_back(5); });
  q.push(1.0, [&order] { order.push_back(6); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 5, 6}));
}

TEST(EventPool, CancelDestroysTheClosureEagerly) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(1);
  auto h = q.push(1.0, [keep = sentinel] { (void)keep; });
  EXPECT_EQ(sentinel.use_count(), 2);
  h.cancel();
  // Eager release: captured resources free at cancel time, not when the
  // stale heap entry eventually surfaces.
  EXPECT_EQ(sentinel.use_count(), 1);
}

TEST(EventPool, TeardownDestroysUnfiredClosures) {
  auto sentinel = std::make_shared<int>(1);
  {
    EventQueue q;
    q.push(1.0, [keep = sentinel] { (void)keep; });
    q.push(2.0, [keep = sentinel] { (void)keep; });
    EXPECT_EQ(sentinel.use_count(), 3);
  }
  EXPECT_EQ(sentinel.use_count(), 1);
}

Task<void> holdSentinel(std::shared_ptr<int> keep) {
  (void)keep;
  co_return;
}

TEST(EventPool, DroppingASimulatorReleasesUnstartedSpawns) {
  // Regression: spawn defers the first step through the event queue; a
  // simulator destroyed before run() must destroy that deferred closure
  // and with it the coroutine frame (and everything the frame holds).
  auto sentinel = std::make_shared<int>(7);
  {
    Simulator sim;
    sim.spawn(holdSentinel(sentinel), "never-run");
    EXPECT_GT(sentinel.use_count(), 1);
  }
  EXPECT_EQ(sentinel.use_count(), 1);
}

TEST(EventPool, SpawnedProcessStillRunsNormally) {
  auto sentinel = std::make_shared<int>(7);
  Simulator sim;
  sim.spawn(holdSentinel(sentinel), "runs");
  sim.run();
  EXPECT_EQ(sentinel.use_count(), 1);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

}  // namespace
}  // namespace comb::sim
