// Executor (sharded PDES core): serial fast path, conservative window
// advance, deterministic cross-shard fold-in by the packed
// (time, seq, src) key, and independence of results from the worker
// count. These are the contract tests behind docs/parallel_sim.md.
#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "sim/shard_context.hpp"

namespace comb::sim {
namespace {

/// Per-shard record of executed test events: (time, tag). Each shard
/// appends only to its own vector, so recording is race-free under any
/// worker count.
using Trace = std::vector<std::pair<Time, int>>;

ExecutorOptions options(int shards, Time lookahead, int workers = 0) {
  ExecutorOptions o;
  o.shards = shards;
  o.lookahead = lookahead;
  o.workers = workers;
  return o;
}

TEST(Executor, SingleShardTakesTheSerialPath) {
  Executor exec(options(1, 0.0));
  Trace trace;
  exec.shard(0).schedule(2.0, [&] { trace.emplace_back(2.0, 1); });
  exec.shard(0).schedule(1.0, [&] { trace.emplace_back(1.0, 0); });
  const Time end = exec.run();
  EXPECT_EQ(end, 2.0);
  EXPECT_EQ(exec.now(), 2.0);
  EXPECT_EQ(exec.eventsExecuted(), 2u);
  // No windows: the serial loop runs unchanged (bit-identity contract).
  EXPECT_EQ(exec.windowsExecuted(), 0u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].second, 0);
  EXPECT_EQ(trace[1].second, 1);
}

TEST(Executor, SingleShardMatchesStandaloneContext) {
  auto program = [](ShardContext& ctx, Trace& trace) {
    for (int i = 0; i < 5; ++i)
      ctx.schedule(0.1 * i, [&trace, &ctx, i] {
        trace.emplace_back(ctx.now(), i);
        ctx.schedule(0.05, [&trace, &ctx, i] {
          trace.emplace_back(ctx.now(), 100 + i);
        });
      });
  };
  ShardContext serial;
  Trace serialTrace;
  program(serial, serialTrace);
  serial.run();

  Executor exec(options(1, 0.0));
  Trace execTrace;
  program(exec.shard(0), execTrace);
  exec.run();

  EXPECT_EQ(serialTrace, execTrace);
  EXPECT_EQ(serial.eventsExecuted(), exec.eventsExecuted());
  EXPECT_EQ(serial.now(), exec.now());
}

TEST(Executor, WindowedRunExecutesCrossShardPingPong) {
  // Two shards exchange messages spaced exactly one lookahead apart —
  // the minimal legal spacing, so every hop lands right on a window
  // boundary (the strictest alignment the invariant allows).
  constexpr Time kLookahead = 0.5;
  constexpr int kHops = 8;
  Executor exec(options(2, kLookahead));
  std::vector<Trace> traces(2);

  // hop(): runs on shard `s` and forwards to the other shard until
  // kHops messages have been delivered in total.
  struct Hop {
    Executor& exec;
    std::vector<Trace>& traces;
    void operator()(int s, int hop) const {
      ShardContext& ctx = exec.shard(s);
      traces[static_cast<std::size_t>(s)].emplace_back(ctx.now(), hop);
      if (hop + 1 >= kHops) return;
      ShardContext& dst = exec.shard(1 - s);
      Hop self{exec, traces};
      ctx.postRemote(dst, ctx.now() + kLookahead,
                     [self, s, hop] { self(1 - s, hop + 1); });
    }
  };
  exec.shard(0).schedule(0.0, [&] { Hop{exec, traces}(0, 0); });

  const Time end = exec.run();
  EXPECT_GT(exec.windowsExecuted(), 0u);
  EXPECT_DOUBLE_EQ(end, kLookahead * (kHops - 1));
  EXPECT_EQ(exec.eventsExecuted(), static_cast<std::uint64_t>(kHops));
  // Even hops on shard 0, odd hops on shard 1, times strictly increasing.
  ASSERT_EQ(traces[0].size(), static_cast<std::size_t>(kHops / 2));
  ASSERT_EQ(traces[1].size(), static_cast<std::size_t>(kHops / 2));
  for (std::size_t i = 0; i < traces[0].size(); ++i) {
    EXPECT_EQ(traces[0][i].second, static_cast<int>(2 * i));
    EXPECT_EQ(traces[1][i].second, static_cast<int>(2 * i + 1));
  }
}

TEST(Executor, FoldInOrdersRemoteEventsByPackedKey) {
  // Shards 1 and 2 each post two messages to shard 0, all carrying the
  // SAME timestamp. The fold-in must order them (time, seq, src):
  // both sources' seq-0 messages first (src 1 before src 2), then both
  // seq-1 messages. This makes the destination's event order a pure
  // function of the simulation, not of routing order.
  constexpr Time kLookahead = 1.0;
  Executor exec(options(3, kLookahead));
  Trace delivered;  // only shard 0 appends — single-threaded per shard

  const Time kWhen = 2.0;  // beyond the first window [0, 1)
  for (int src = 1; src <= 2; ++src) {
    ShardContext& ctx = exec.shard(src);
    ctx.schedule(0.0, [&exec, &ctx, &delivered, src, kWhen] {
      for (int k = 0; k < 2; ++k)
        ctx.postRemote(exec.shard(0), kWhen, [&delivered, src, k, kWhen] {
          delivered.emplace_back(kWhen, 10 * src + k);
        });
    });
  }
  exec.run();
  ASSERT_EQ(delivered.size(), 4u);
  // (seq 0, src 1), (seq 0, src 2), (seq 1, src 1), (seq 1, src 2).
  EXPECT_EQ(delivered[0].second, 10);
  EXPECT_EQ(delivered[1].second, 20);
  EXPECT_EQ(delivered[2].second, 11);
  EXPECT_EQ(delivered[3].second, 21);
}

TEST(Executor, ResultsIndependentOfWorkerCount) {
  // The same 4-shard program under workers = 1 (inline window loop) and
  // workers = 4 (thread pool) must produce identical traces: results are
  // a function of (program, partition, lookahead) only.
  constexpr Time kLookahead = 0.25;
  auto runWith = [&](int workers) {
    Executor exec(options(4, kLookahead, workers));
    std::vector<Trace> traces(4);
    for (int s = 0; s < 4; ++s) {
      ShardContext& ctx = exec.shard(s);
      Trace& mine = traces[static_cast<std::size_t>(s)];
      ctx.schedule(0.1 * s, [&exec, &ctx, &traces, s, kLookahead] {
        ShardContext& dst = exec.shard((s + 1) % 4);
        Trace& theirs = traces[static_cast<std::size_t>((s + 1) % 4)];
        ctx.postRemote(dst, ctx.now() + kLookahead, [&dst, &theirs, s] {
          theirs.emplace_back(dst.now(), 100 + s);
        });
      });
      ctx.schedule(0.1 * s, [&ctx, &mine, s] {
        mine.emplace_back(ctx.now(), s);
      });
    }
    exec.run();
    return traces;
  };
  // Note: the cross-shard closures above are no-ops by design — the trace
  // compares local event placement; remote delivery determinism is
  // covered by FoldInOrdersRemoteEventsByPackedKey.
  const auto serial = runWith(1);
  const auto pooled = runWith(4);
  EXPECT_EQ(serial, pooled);
}

TEST(Executor, UntilParksShardClocks) {
  Executor exec(options(2, 1.0));
  bool ran = false;
  exec.shard(0).schedule(0.5, [] {});
  exec.shard(1).schedule(5.0, [&ran] { ran = true; });
  const Time end = exec.run(2.0);
  EXPECT_FALSE(ran);  // beyond `until`
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_DOUBLE_EQ(exec.now(), 2.0);
}

TEST(Executor, EventAtExactlyUntilStillRuns) {
  // Serial-run semantics: run(until) is inclusive of `until` itself.
  Executor exec(options(2, 1.0));
  bool ran = false;
  exec.shard(1).schedule(2.0, [&ran] { ran = true; });
  exec.run(2.0);
  EXPECT_TRUE(ran);
}

TEST(Executor, RequiresPositiveLookaheadWhenSharded) {
  EXPECT_THROW(Executor(options(2, 0.0)), Error);
  EXPECT_NO_THROW(Executor(options(1, 0.0)));
}

TEST(Executor, LookaheadMatrixClosureComputesPathsAndCycles) {
  // Directed 3-cycle of direct edges (0 -> 1 -> 2 -> 0, each 1.0, scalar
  // floor 1.0): the closure must fill the reverse directions with the
  // two-hop path and the diagonal with each shard's feedback cycle.
  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  Executor exec(options(3, 1.0));
  EXPECT_FALSE(exec.lookaheadFromMatrix());
  std::vector<Time> direct(9, kInf);
  direct[0 * 3 + 1] = 1.0;
  direct[1 * 3 + 2] = 1.0;
  direct[2 * 3 + 0] = 1.0;
  exec.setLookaheadMatrix(std::move(direct));
  EXPECT_TRUE(exec.lookaheadFromMatrix());
  const auto& m = exec.lookaheadMatrix();
  EXPECT_DOUBLE_EQ(m[0 * 3 + 1], 1.0);  // direct edge kept
  EXPECT_DOUBLE_EQ(m[0 * 3 + 2], 2.0);  // closed two-hop path 0->1->2
  EXPECT_DOUBLE_EQ(m[1 * 3 + 0], 2.0);  // 1->2->0
  EXPECT_DOUBLE_EQ(m[2 * 3 + 1], 2.0);  // 2->0->1
  for (int d = 0; d < 3; ++d)  // min feedback cycle: around the ring
    EXPECT_DOUBLE_EQ(m[d * 3 + d], 3.0);
  EXPECT_DOUBLE_EQ(exec.effectiveLookahead(), 1.0);
}

TEST(Executor, LookaheadMatrixRejectsEntryBelowScalarFloor) {
  Executor exec(options(2, 1.0));
  // 0.5 < the certified scalar floor of 1.0: narrowing is never legal.
  std::vector<Time> direct = {0.0, 0.5, 1.0, 0.0};
  EXPECT_THROW(exec.setLookaheadMatrix(std::move(direct)), Error);
}

TEST(Executor, MatrixWindowsStillMatchScalarResults) {
  // A wider (but truthful) matrix may change window placement, never
  // results: the same ping-pong under the scalar and under a 2x matrix
  // must produce identical traces, with no more windows than the scalar.
  constexpr Time kLookahead = 0.5;
  auto runWith = [&](bool matrix) {
    Executor exec(options(2, kLookahead));
    if (matrix) {
      constexpr Time kInf = std::numeric_limits<Time>::infinity();
      std::vector<Time> direct = {kInf, 2 * kLookahead, 2 * kLookahead, kInf};
      exec.setLookaheadMatrix(std::move(direct));
    }
    Trace trace;  // only shard 0 appends
    struct Hop {
      Executor& exec;
      Trace& trace;
      void operator()(int s, int hop) const {
        ShardContext& ctx = exec.shard(s);
        if (s == 0) trace.emplace_back(ctx.now(), hop);
        if (hop >= 12) return;
        Hop self{exec, trace};
        // 2x spacing: legal under both the scalar and the 2x matrix.
        ctx.postRemote(exec.shard(1 - s), ctx.now() + 2 * kLookahead,
                       [self, s, hop] { self(1 - s, hop + 1); });
      }
    };
    exec.shard(0).schedule(0.0, [&] { Hop{exec, trace}(0, 0); });
    exec.run();
    return std::make_pair(trace, exec.windowsExecuted());
  };
  const auto scalar = runWith(false);
  const auto widened = runWith(true);
  EXPECT_EQ(scalar.first, widened.first);
  EXPECT_LE(widened.second, scalar.second);
}

TEST(Executor, AffinityPolicyParsesAndRoundTrips) {
  EXPECT_EQ(parseAffinityPolicy("none"), AffinityPolicy::None);
  EXPECT_EQ(parseAffinityPolicy("compact"), AffinityPolicy::Compact);
  EXPECT_EQ(parseAffinityPolicy("scatter"), AffinityPolicy::Scatter);
  for (auto p : {AffinityPolicy::None, AffinityPolicy::Compact,
                 AffinityPolicy::Scatter})
    EXPECT_EQ(parseAffinityPolicy(affinityPolicyName(p)), p);
  EXPECT_THROW(parseAffinityPolicy("numa"), ConfigError);
}

TEST(Executor, PinnedWorkersProduceIdenticalResults) {
  // Affinity is a wall-time knob only. Also exercises the pthread pinning
  // path end to end (best-effort: it must never fail the run).
  constexpr Time kLookahead = 0.25;
  auto runWith = [&](AffinityPolicy policy) {
    ExecutorOptions o = options(4, kLookahead, 4);
    o.affinity = policy;
    Executor exec(o);
    std::vector<Trace> traces(4);
    for (int s = 0; s < 4; ++s) {
      ShardContext& ctx = exec.shard(s);
      Trace& mine = traces[static_cast<std::size_t>(s)];
      ctx.schedule(0.1 * s, [&ctx, &mine, s] {
        mine.emplace_back(ctx.now(), s);
      });
    }
    exec.run();
    return traces;
  };
  const auto none = runWith(AffinityPolicy::None);
  EXPECT_EQ(none, runWith(AffinityPolicy::Compact));
  EXPECT_EQ(none, runWith(AffinityPolicy::Scatter));
}

TEST(Executor, MergedMetricsSumAcrossShards) {
  Executor exec(options(2, 1.0));
  exec.shard(0).metrics().counter("events.test").add(3);
  exec.shard(1).metrics().counter("events.test").add(4);
  const auto snap = exec.metricsSnapshot();
  EXPECT_EQ(snap.counterValue("events.test"), 7u);
}

}  // namespace
}  // namespace comb::sim
