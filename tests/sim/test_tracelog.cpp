#include "sim/tracelog.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(TraceLog, EmitAndQuery) {
  TraceLog log(16);
  log.emit(1e-3, TraceCategory::Packet, 0, "->n1", 4160);
  log.emit(2e-3, TraceCategory::Packet, 1, "->n0", 96);
  log.emit(3e-3, TraceCategory::Interrupt, 1, "cpu1", 20e-6);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(TraceCategory::Packet), 2u);
  EXPECT_EQ(log.count(TraceCategory::Packet, 0), 1u);
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 1u);
  EXPECT_EQ(log.count(TraceCategory::MpiCall), 0u);
  const auto packets = log.select(TraceCategory::Packet);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_DOUBLE_EQ(packets[0]->a, 4160.0);
  EXPECT_EQ(packets[1]->label, "->n0");
}

TEST(TraceLog, RingDropsOldest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i)
    log.emit(i * 1e-3, TraceCategory::Compute, -1, "cpu", i);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_DOUBLE_EQ(log.records().front().a, 6.0);
}

TEST(TraceLog, ClearResets) {
  TraceLog log(4);
  log.emit(0, TraceCategory::Process, -1, "p:start");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.summary(), "no trace records");
}

TEST(TraceLog, DumpFormats) {
  TraceLog log(8);
  log.emit(1.5e-3, TraceCategory::Protocol, 2, "rts", 100.0);
  std::ostringstream os;
  log.dump(os);
  EXPECT_NE(os.str().find("protocol"), std::string::npos);
  EXPECT_NE(os.str().find("n2"), std::string::npos);
  EXPECT_NE(os.str().find("rts"), std::string::npos);
}

TEST(TraceLog, SummaryCounts) {
  TraceLog log(8);
  log.emit(0, TraceCategory::Packet, 0, "x");
  log.emit(0, TraceCategory::Packet, 0, "y");
  log.emit(0, TraceCategory::MpiCall, 0, "isend");
  const auto s = log.summary();
  EXPECT_NE(s.find("packet=2"), std::string::npos);
  EXPECT_NE(s.find("mpi-call=1"), std::string::npos);
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog(0), ConfigError);
}

// --- end-to-end instrumentation ---------------------------------------------

TEST(TraceIntegration, ExchangeProducesExpectedRecords) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  auto& log = cluster.enableTracing();
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)), "sender");
  cluster.launch(1, receiver(cluster.proc(1)), "receiver");
  cluster.run();

  // Process start/finish for both ranks.
  EXPECT_EQ(log.count(TraceCategory::Process), 4u);
  // One rendezvous: RTS + CTS + 25 data fragments on the wire.
  EXPECT_EQ(log.count(TraceCategory::Packet), 27u);
  // Protocol markers: the rendezvous post and the CTS->DMA transition.
  EXPECT_EQ(log.count(TraceCategory::Protocol), 2u);
  // MPI calls: one isend (rank 0), one irecv (rank 1).
  EXPECT_EQ(log.count(TraceCategory::MpiCall, 0), 1u);
  EXPECT_EQ(log.count(TraceCategory::MpiCall, 1), 1u);
  // GM never interrupts.
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 0u);
}

TEST(TraceIntegration, PortalsExchangeRaisesInterrupts) {
  backend::SimCluster cluster(backend::portalsMachine(), 2);
  auto& log = cluster.enableTracing();
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  // 25 tx-pump interrupts on the sender + 25 rx interrupts on the receiver.
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 50u);
  EXPECT_EQ(log.count(TraceCategory::Packet), 25u);
  // Kernel-level protocol markers: the send post and the kernel match.
  EXPECT_GE(log.count(TraceCategory::Protocol), 2u);
}

TEST(TraceIntegration, DisabledTracingCostsNothingAndRecordsNothing) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 10_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(cluster.traceLog(), nullptr);
}

}  // namespace
}  // namespace comb::sim
