// TraceLog: ring/drop mechanics, label interning, span pairing (unmatched
// end is an error), filtering, zero steady-state allocation, and
// end-to-end instrumentation through a SimCluster exchange on both
// machine models.
#include "sim/tracelog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "backend/machine.hpp"
#include "backend/sim_cluster.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "mpi/mpi.hpp"

// Global allocation counter for the zero-steady-state-allocation test.
// Replacing operator new in this binary counts every heap allocation made
// anywhere in the process.
namespace {
std::atomic<std::size_t> g_allocCount{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(TraceLog, EmitAndQuery) {
  TraceLog log(16);
  log.emit(1e-3, TraceCategory::Packet, 0, "->n1", 4160);
  log.emit(2e-3, TraceCategory::Packet, 1, "->n0", 96);
  log.emit(3e-3, TraceCategory::Interrupt, 1, "cpu1", 20e-6);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(TraceCategory::Packet), 2u);
  EXPECT_EQ(log.count(TraceCategory::Packet, 0), 1u);
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 1u);
  EXPECT_EQ(log.count(TraceCategory::MpiCall), 0u);
  const auto packets = log.select(TraceCategory::Packet);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_DOUBLE_EQ(packets[0]->a, 4160.0);
  EXPECT_EQ(log.labelName(packets[1]->label), "->n0");
}

TEST(TraceLog, CategoryNamesAreDistinctAndStable) {
  EXPECT_STREQ(traceCategoryName(TraceCategory::Process), "process");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Compute), "compute");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Interrupt), "interrupt");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Packet), "packet");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Wire), "wire");
  EXPECT_STREQ(traceCategoryName(TraceCategory::NicEvent), "nic-event");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Protocol), "protocol");
  EXPECT_STREQ(traceCategoryName(TraceCategory::MpiCall), "mpi-call");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Phase), "phase");
  EXPECT_STREQ(traceCategoryName(TraceCategory::Fault), "fault");
}

TEST(TraceLog, LabelsInternToStableIds) {
  TraceLog log(8);
  const auto a = log.intern("alpha");
  const auto b = log.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(log.intern("alpha"), a);  // idempotent
  EXPECT_EQ(log.labelCount(), 2u);
  EXPECT_EQ(log.labelName(a), "alpha");
  EXPECT_EQ(log.labelName(b), "beta");
  log.emit(0, TraceCategory::Packet, 0, "alpha");
  EXPECT_EQ(log.record(0).label, a);
  EXPECT_THROW(log.labelName(99), ConfigError);
}

TEST(TraceLog, RingDropsOldest) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i)
    log.emit(i * 1e-3, TraceCategory::Compute, -1, "cpu", i);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_DOUBLE_EQ(log.record(0).a, 6.0);  // oldest retained
  EXPECT_DOUBLE_EQ(log.record(3).a, 9.0);  // newest
}

TEST(TraceLog, SpanPairing) {
  TraceLog log(16);
  log.beginSpan(1e-3, TraceCategory::MpiCall, 0, "isend");
  EXPECT_EQ(log.openSpans(), 1u);
  log.beginSpan(2e-3, TraceCategory::MpiCall, 0, "inner");  // nested
  log.endSpan(3e-3, TraceCategory::MpiCall, 0, "inner");
  log.endSpan(4e-3, TraceCategory::MpiCall, 0, "isend");
  EXPECT_EQ(log.openSpans(), 0u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.countSpans(TraceCategory::MpiCall), 2u);
  EXPECT_EQ(log.record(0).phase, TracePhase::Begin);
  EXPECT_EQ(log.record(3).phase, TracePhase::End);
}

TEST(TraceLog, UnmatchedEndIsAnError) {
  TraceLog log(16);
  // End with no open span on the track.
  EXPECT_THROW(log.endSpan(1e-3, TraceCategory::MpiCall, 0, "isend"), Error);
  // End whose label does not match the innermost open begin.
  log.beginSpan(1e-3, TraceCategory::MpiCall, 0, "isend");
  EXPECT_THROW(log.endSpan(2e-3, TraceCategory::MpiCall, 0, "irecv"), Error);
  // Same label on a different track (other node) is also unmatched.
  EXPECT_THROW(log.endSpan(2e-3, TraceCategory::MpiCall, 1, "isend"), Error);
  // Same label in a different category likewise.
  EXPECT_THROW(log.endSpan(2e-3, TraceCategory::Phase, 0, "isend"), Error);
  log.endSpan(3e-3, TraceCategory::MpiCall, 0, "isend");  // still matches
  EXPECT_EQ(log.openSpans(), 0u);
}

TEST(TraceLog, CompleteRecordsCarryDuration) {
  TraceLog log(8);
  log.complete(2e-3, 5e-4, TraceCategory::Wire, 1, "up0", 4160, 7);
  ASSERT_EQ(log.size(), 1u);
  const TraceRecord& r = log.record(0);
  EXPECT_EQ(r.phase, TracePhase::Complete);
  EXPECT_DOUBLE_EQ(r.t, 2e-3);
  EXPECT_DOUBLE_EQ(r.dur, 5e-4);
  EXPECT_DOUBLE_EQ(r.b, 7.0);
  EXPECT_EQ(log.countSpans(TraceCategory::Wire), 1u);
}

TEST(TraceLog, SelectByLabelFilters) {
  TraceLog log(16);
  log.emit(1e-3, TraceCategory::Phase, 0, "post");
  log.emit(2e-3, TraceCategory::Phase, 0, "work");
  log.emit(3e-3, TraceCategory::Phase, 1, "post");
  log.emit(4e-3, TraceCategory::Phase, 0, "post");
  EXPECT_EQ(log.select(TraceCategory::Phase, "post").size(), 3u);
  EXPECT_EQ(log.select(TraceCategory::Phase, "post", 0).size(), 2u);
  EXPECT_EQ(log.select(TraceCategory::Phase, "work").size(), 1u);
  EXPECT_TRUE(log.select(TraceCategory::Phase, "never-emitted").empty());
  EXPECT_TRUE(log.select(TraceCategory::MpiCall, "post").empty());
}

TEST(TraceLog, ClearResetsRecordsButKeepsLabels) {
  TraceLog log(4);
  log.emit(0, TraceCategory::Process, -1, "p:start");
  const auto id = log.intern("p:start");
  log.beginSpan(0, TraceCategory::Phase, 0, "work");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.openSpans(), 0u);
  EXPECT_EQ(log.summary(), "no trace records");
  // Interned ids held by emitters stay valid across clear().
  EXPECT_EQ(log.intern("p:start"), id);
  EXPECT_EQ(log.labelName(id), "p:start");
}

TEST(TraceLog, DumpFormats) {
  TraceLog log(8);
  log.emit(1.5e-3, TraceCategory::Protocol, 2, "rts", 100.0);
  log.complete(2e-3, 1e-4, TraceCategory::Wire, 2, "up0", 4160);
  std::ostringstream os;
  log.dump(os);
  EXPECT_NE(os.str().find("protocol"), std::string::npos);
  EXPECT_NE(os.str().find("n2"), std::string::npos);
  EXPECT_NE(os.str().find("rts"), std::string::npos);
  EXPECT_NE(os.str().find("dur="), std::string::npos);
}

TEST(TraceLog, SummaryCounts) {
  TraceLog log(8);
  log.emit(0, TraceCategory::Packet, 0, "x");
  log.emit(0, TraceCategory::Packet, 0, "y");
  log.emit(0, TraceCategory::MpiCall, 0, "isend");
  const auto s = log.summary();
  EXPECT_NE(s.find("packet=2"), std::string::npos);
  EXPECT_NE(s.find("mpi-call=1"), std::string::npos);
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog(0), ConfigError);
}

TEST(TraceLog, SteadyStateEmissionDoesNotAllocate) {
  TraceLog log(256);
  // Warm-up: intern every label, give each span track its stack slot, and
  // wrap the ring once so the one-time drop warning has already fired.
  log.beginSpan(0, TraceCategory::MpiCall, 0, "isend");
  log.endSpan(0, TraceCategory::MpiCall, 0, "isend");
  log.complete(0, 1e-6, TraceCategory::Wire, 0, "up0", 1);
  for (int i = 0; i < 300; ++i)
    log.emit(i * 1e-6, TraceCategory::Packet, 0, "->n1", i);
  ASSERT_GT(log.dropped(), 0u);

  const std::size_t before = g_allocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    log.emit(i * 1e-6, TraceCategory::Packet, 0, "->n1", i);
    log.beginSpan(i * 1e-6, TraceCategory::MpiCall, 0, "isend");
    log.endSpan(i * 1e-6 + 1e-9, TraceCategory::MpiCall, 0, "isend");
    log.complete(i * 1e-6, 1e-9, TraceCategory::Wire, 0, "up0", i);
  }
  const std::size_t after = g_allocCount.load(std::memory_order_relaxed);
  // 8000 records through a wrapping ring: not a single heap allocation.
  EXPECT_EQ(after, before);
}

// --- end-to-end instrumentation ---------------------------------------------

TEST(TraceIntegration, GmExchangeProducesExpectedRecords) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  auto& log = cluster.enableTracing();
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)), "sender");
  cluster.launch(1, receiver(cluster.proc(1)), "receiver");
  cluster.run();

  // Every span closed by the time the simulation drains.
  EXPECT_EQ(log.openSpans(), 0u);
  // Process start/finish for both ranks.
  EXPECT_EQ(log.count(TraceCategory::Process), 4u);
  // One rendezvous: RTS + CTS + 25 data fragments on the wire...
  EXPECT_EQ(log.count(TraceCategory::Packet), 27u);
  // ...each crossing two links (up to the switch, down to the peer) and
  // DMA'd once at the source NIC.
  EXPECT_EQ(log.countSpans(TraceCategory::Wire), 54u);
  EXPECT_EQ(log.countSpans(TraceCategory::NicEvent), 27u);
  // MPI calls are spans now: isend+wait on rank 0, irecv+wait on rank 1.
  EXPECT_EQ(log.countSpans(TraceCategory::MpiCall, 0), 2u);
  EXPECT_EQ(log.countSpans(TraceCategory::MpiCall, 1), 2u);
  EXPECT_EQ(log.select(TraceCategory::MpiCall, "isend", 0).size(), 2u);  // B+E
  // Protocol markers: the rendezvous post and the CTS->DMA transition,
  // plus a progress span per library call.
  EXPECT_EQ(log.select(TraceCategory::Protocol, "rndv-post").size(), 1u);
  EXPECT_EQ(log.select(TraceCategory::Protocol, "cts->dma").size(), 1u);
  EXPECT_GE(log.countSpans(TraceCategory::Protocol), 2u);
  // MPI-call CPU costs surface as Compute spans.
  EXPECT_GT(log.countSpans(TraceCategory::Compute), 0u);
  // GM never interrupts.
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceIntegration, PortalsExchangeRaisesInterrupts) {
  backend::SimCluster cluster(backend::portalsMachine(), 2);
  auto& log = cluster.enableTracing();
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(log.openSpans(), 0u);
  // 25 tx-pump interrupts on the sender + 25 rx interrupts on the
  // receiver, now Complete spans carrying the service window.
  EXPECT_EQ(log.count(TraceCategory::Interrupt), 50u);
  EXPECT_EQ(log.count(TraceCategory::Interrupt, 0), 25u);
  EXPECT_EQ(log.count(TraceCategory::Interrupt, 1), 25u);
  for (const TraceRecord* r : log.select(TraceCategory::Interrupt)) {
    EXPECT_EQ(r->phase, TracePhase::Complete);
    EXPECT_GT(r->dur, 0.0);
  }
  EXPECT_EQ(log.count(TraceCategory::Packet), 25u);
  EXPECT_EQ(log.select(TraceCategory::NicEvent, "tx-frag", 0).size(), 25u);
  EXPECT_EQ(log.select(TraceCategory::NicEvent, "rx-frag", 1).size(), 25u);
  // Kernel-level protocol markers: the send post and the kernel match.
  EXPECT_EQ(log.select(TraceCategory::Protocol, "kernel-send-post").size(),
            1u);
  EXPECT_EQ(log.select(TraceCategory::Protocol, "kernel-match").size(), 1u);
}

TEST(TraceIntegration, DisabledTracingRecordsNothing) {
  backend::SimCluster cluster(backend::gmMachine(), 2);
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 10_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 10_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_EQ(cluster.traceLog(), nullptr);
}

TEST(TraceIntegration, MetricsRegistryCountsTheExchange) {
  backend::SimCluster cluster(backend::portalsMachine(), 2);
  auto sender = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 100_KB);
  };
  auto receiver = [](backend::SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 100_KB);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  const auto snap = cluster.simulator().metrics().snapshot();
  EXPECT_EQ(snap.counterValue("mpi.n0.isend"), 1u);
  EXPECT_EQ(snap.counterValue("mpi.n1.irecv"), 1u);
  EXPECT_EQ(snap.counterValue("nic.ptl.n0.messages_sent"), 1u);
  EXPECT_EQ(snap.counterValue("nic.ptl.n0.frags_tx"), 25u);
  EXPECT_EQ(snap.counterValue("nic.ptl.n1.frags_rx"), 25u);
  EXPECT_GT(snap.counterValue("host.cpu1.0.interrupts"), 0u);
  EXPECT_GT(snap.counterValue("link.up0.packets"), 0u);
  EXPECT_EQ(snap.counterValue("no.such.counter"), 0u);
  // Counters exist (zero-valued) even where nothing happened.
  EXPECT_EQ(snap.counterValue("nic.ptl.n0.retransmits"), 0u);
}

}  // namespace
}  // namespace comb::sim
