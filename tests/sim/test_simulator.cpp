#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/units.hpp"

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3_ms, [&] { order.push_back(3); });
  sim.schedule(1_ms, [&] { order.push_back(1); });
  sim.schedule(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3e-3);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1_ms, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] {
    ++fired;
    sim.schedule(1_ms, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2e-3);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] { ++fired; });
  sim.schedule(5_ms, [&] { ++fired; });
  sim.run(2_ms);
  EXPECT_EQ(fired, 1);
  // Clock parked at the boundary, not at the pending event.
  EXPECT_DOUBLE_EQ(sim.now(), 2e-3);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactlyUntilRuns) {
  Simulator sim;
  int fired = 0;
  sim.schedule(2_ms, [&] { ++fired; });
  sim.run(2_ms);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule(1_ms, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterRun) {
  Simulator sim;
  auto h = sim.schedule(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Simulator, DefaultEventHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] { ++fired; });
  sim.schedule(2_ms, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SpawnedProcessRuns) {
  Simulator sim;
  int stage = 0;
  auto proc = [&]() -> Task<void> {
    stage = 1;
    co_await sim.delay(1_ms);
    stage = 2;
    co_await sim.delay(2_ms);
    stage = 3;
  };
  sim.spawn(proc(), "p");
  EXPECT_EQ(stage, 0);  // lazy until run
  sim.run();
  EXPECT_EQ(stage, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3e-3);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(Simulator, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::pair<char, Time>> log;
  auto proc = [&](char id, Time step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(step);
      log.emplace_back(id, sim.now());
    }
  };
  sim.spawn(proc('a', 1_ms), "a");
  sim.spawn(proc('b', 1.5_ms), "b");
  sim.run();
  const std::vector<std::pair<char, Time>> expect{
      {'a', 1e-3}, {'b', 1.5e-3}, {'a', 2e-3},
      {'b', 3e-3}, {'a', 3e-3},   {'b', 4.5e-3}};
  ASSERT_EQ(log.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(log[i].first, expect[i].first) << "i=" << i;
    EXPECT_NEAR(log[i].second, expect[i].second, 1e-15) << "i=" << i;
  }
}

TEST(Simulator, ProcessExceptionPropagatesFromRun) {
  Simulator sim;
  auto proc = [&]() -> Task<void> {
    co_await sim.delay(1_ms);
    throw std::runtime_error("boom");
  };
  sim.spawn(proc(), "crasher");
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, TraceHookObservesEveryEvent) {
  Simulator sim;
  std::vector<Time> times;
  sim.setTrace([&](Time t, std::uint64_t) { times.push_back(t); });
  sim.schedule(1_ms, [] {});
  sim.schedule(2_ms, [] {});
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1e-3);
  EXPECT_DOUBLE_EQ(times[1], 2e-3);
  EXPECT_EQ(sim.eventsExecuted(), 2u);
}

TEST(Simulator, DeterministicEventCounts) {
  auto runOnce = [] {
    Simulator sim;
    auto proc = [&sim](Time step) -> Task<void> {
      for (int i = 0; i < 100; ++i) co_await sim.delay(step);
    };
    sim.spawn(proc(1_us), "a");
    sim.spawn(proc(1.7_us), "b");
    sim.run();
    return std::pair{sim.eventsExecuted(), sim.now()};
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Simulator, ZeroDelayYieldsBetweenProcesses) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [&](int id) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      order.push_back(id);
      co_await sim.yield();
    }
  };
  sim.spawn(proc(1), "p1");
  sim.spawn(proc(2), "p2");
  sim.run();
  // Round-robin because yields re-queue FIFO at the same timestamp.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

}  // namespace
}  // namespace comb::sim
