#include "sim/activity.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/task.hpp"

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(ActivitySignal, VersionAdvancesOnSignal) {
  Simulator sim;
  ActivitySignal sig(sim);
  EXPECT_EQ(sig.version(), 0u);
  sig.signal();
  sig.signal();
  EXPECT_EQ(sig.version(), 2u);
}

TEST(ActivitySignal, WaiterWakesOnSignal) {
  Simulator sim;
  ActivitySignal sig(sim);
  Time wokeAt = -1;
  auto waiter = [&]() -> Task<void> {
    co_await sig.changedSince(sig.version());
    wokeAt = sim.now();
  };
  sim.spawn(waiter(), "w");
  sim.schedule(3_ms, [&] { sig.signal(); });
  sim.run();
  EXPECT_DOUBLE_EQ(wokeAt, 3e-3);
}

TEST(ActivitySignal, NoLostWakeup) {
  // The signal fires BEFORE the waiter awaits: the stale version makes
  // the wait complete immediately instead of hanging.
  Simulator sim;
  ActivitySignal sig(sim);
  bool done = false;
  auto waiter = [&]() -> Task<void> {
    const auto seen = sig.version();
    // Signal arrives while we are "busy" (before the await).
    co_await sim.delay(1_ms);
    co_await sig.changedSince(seen);
    done = true;
  };
  sim.spawn(waiter(), "w");
  sim.schedule(0.5_ms, [&] { sig.signal(); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 1e-3);  // no extra waiting
}

TEST(ActivitySignal, MultipleWaitersAllWake) {
  Simulator sim;
  ActivitySignal sig(sim);
  int woke = 0;
  auto waiter = [&]() -> Task<void> {
    co_await sig.changedSince(sig.version());
    ++woke;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(), "w");
  sim.schedule(1_ms, [&] { sig.signal(); });
  sim.run();
  EXPECT_EQ(woke, 3);
  EXPECT_EQ(sig.waiterCount(), 0u);
}

TEST(ActivitySignal, RepeatedWaitCycles) {
  Simulator sim;
  ActivitySignal sig(sim);
  int cycles = 0;
  auto waiter = [&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      const auto seen = sig.version();
      co_await sig.changedSince(seen);
      ++cycles;
    }
  };
  sim.spawn(waiter(), "w");
  for (int i = 1; i <= 5; ++i)
    sim.schedule(static_cast<Time>(i) * 1_ms, [&] { sig.signal(); });
  sim.run();
  EXPECT_EQ(cycles, 5);
}

}  // namespace
}  // namespace comb::sim
