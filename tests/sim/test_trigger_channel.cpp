#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/trigger.hpp"

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(Trigger, WaitersResumeOnFire) {
  Simulator sim;
  Trigger t(sim);
  std::vector<int> woke;
  auto waiter = [&](int id) -> Task<void> {
    co_await t.wait();
    woke.push_back(id);
  };
  sim.spawn(waiter(1), "w1");
  sim.spawn(waiter(2), "w2");
  sim.spawn([](Simulator& s, Trigger& tr) -> Task<void> {
    co_await s.delay(2_ms);
    tr.fire();
  }(sim, t), "firer");
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2e-3);
}

TEST(Trigger, WaitAfterFireCompletesImmediately) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  Time when = -1;
  auto waiter = [&]() -> Task<void> {
    co_await sim.delay(1_ms);
    co_await t.wait();  // already fired: no extra delay
    when = sim.now();
  };
  sim.spawn(waiter(), "w");
  sim.run();
  EXPECT_DOUBLE_EQ(when, 1e-3);
}

TEST(Trigger, FireIsIdempotent) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  t.fire();
  EXPECT_TRUE(t.fired());
}

TEST(Trigger, ResetReArms) {
  Simulator sim;
  Trigger t(sim);
  t.fire();
  t.reset();
  EXPECT_FALSE(t.fired());
  int wokenAt = -1;
  auto waiter = [&]() -> Task<void> {
    co_await t.wait();
    wokenAt = 1;
  };
  sim.spawn(waiter(), "w");
  sim.schedule(1_ms, [&] { t.fire(); });
  sim.run();
  EXPECT_EQ(wokenAt, 1);
}

TEST(CountLatch, CompletesAtZero) {
  Simulator sim;
  CountLatch latch(sim, 3);
  bool done = false;
  auto waiter = [&]() -> Task<void> {
    co_await latch.wait();
    done = true;
  };
  sim.spawn(waiter(), "w");
  sim.schedule(1_ms, [&] { latch.arrive(); });
  sim.schedule(2_ms, [&] { latch.arrive(); });
  sim.schedule(3_ms, [&] { latch.arrive(); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 3e-3);
}

TEST(CountLatch, ZeroExpectedFiresImmediately) {
  Simulator sim;
  CountLatch latch(sim, 0);
  bool done = false;
  auto waiter = [&]() -> Task<void> {
    co_await latch.wait();
    done = true;
  };
  sim.spawn(waiter(), "w");
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Channel, SendThenRecv) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(5);
  int got = 0;
  auto rx = [&]() -> Task<void> { got = co_await ch.recv(); };
  sim.spawn(rx(), "rx");
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Channel, RecvBlocksUntilSend) {
  Simulator sim;
  Channel<std::string> ch(sim);
  std::string got;
  Time when = -1;
  auto rx = [&]() -> Task<void> {
    got = co_await ch.recv();
    when = sim.now();
  };
  sim.spawn(rx(), "rx");
  sim.schedule(4_ms, [&] { ch.send("late"); });
  sim.run();
  EXPECT_EQ(got, "late");
  EXPECT_DOUBLE_EQ(when, 4e-3);
}

TEST(Channel, FifoOrderAcrossValues) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  auto rx = [&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await ch.recv());
  };
  sim.spawn(rx(), "rx");
  ch.send(1);
  ch.send(2);
  ch.send(3);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, TwoReceiversServedFifo) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto rx = [&](int id) -> Task<void> {
    const int v = co_await ch.recv();
    got.emplace_back(id, v);
  };
  sim.spawn(rx(1), "rx1");
  sim.spawn(rx(2), "rx2");
  sim.schedule(1_ms, [&] { ch.send(10); });
  sim.schedule(2_ms, [&] { ch.send(20); });
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair{1, 10}));
  EXPECT_EQ(got[1], (std::pair{2, 20}));
}

TEST(Channel, TryRecvDoesNotStealReservedValues) {
  Simulator sim;
  Channel<int> ch(sim);
  int waiterGot = 0;
  auto rx = [&]() -> Task<void> { waiterGot = co_await ch.recv(); };
  sim.spawn(rx(), "rx");
  sim.schedule(1_ms, [&] {
    ch.send(7);
    // The queued value is reserved for the suspended receiver: tryRecv
    // must not intercept it.
    EXPECT_FALSE(ch.tryRecv().has_value());
  });
  sim.run();
  EXPECT_EQ(waiterGot, 7);
}

TEST(Channel, TryRecvTakesFreeValue) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(9);
  auto v = ch.tryRecv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(ch.tryRecv().has_value());
}

TEST(Channel, SizeTracksQueue) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_TRUE(ch.empty());
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.size(), 2u);
}

}  // namespace
}  // namespace comb::sim
