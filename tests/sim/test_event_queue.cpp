#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace comb::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(1.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
  q.pop();
  EXPECT_DOUBLE_EQ(q.nextTime(), 5.0);
}

TEST(EventQueue, CancelledEventsSkipped) {
  EventQueue q;
  int ran = 0;
  auto h1 = q.push(1.0, [&] { ++ran; });
  q.push(2.0, [&] { ++ran; });
  auto h3 = q.push(3.0, [&] { ++ran; });
  h1.cancel();
  h3.cancel();
  EXPECT_FALSE(h1.pending());
  int pops = 0;
  while (!q.empty()) {
    q.pop().second();
    ++pops;
  }
  EXPECT_EQ(pops, 1);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelAllMakesEmpty) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(q.push(1.0, [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleOutlivesExecution) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  EXPECT_TRUE(h.pending());
  q.pop().second();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, no crash
}

TEST(EventQueue, ScheduledCountMonotonic) {
  EventQueue q;
  EXPECT_EQ(q.scheduledCount(), 0u);
  q.push(1.0, [] {});
  q.push(1.0, [] {});
  EXPECT_EQ(q.scheduledCount(), 2u);
}

}  // namespace
}  // namespace comb::sim
