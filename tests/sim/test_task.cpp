#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace comb::sim {
namespace {

using namespace comb::units;

TEST(Task, ValueTaskReturnsThroughAwait) {
  Simulator sim;
  int result = 0;
  auto inner = []() -> Task<int> { co_return 41; };
  auto outer = [&]() -> Task<void> { result = 1 + co_await inner(); };
  sim.spawn(outer(), "outer");
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Task, ChainedValueTasks) {
  Simulator sim;
  std::string result;
  auto leaf = [](std::string s) -> Task<std::string> { co_return s + "!"; };
  auto mid = [&](std::string s) -> Task<std::string> {
    co_return co_await leaf(s + "b");
  };
  auto root = [&]() -> Task<void> { result = co_await mid("a"); };
  sim.spawn(root(), "root");
  sim.run();
  EXPECT_EQ(result, "ab!");
}

TEST(Task, LazyUntilAwaited) {
  Simulator sim;
  bool started = false;
  auto inner = [&]() -> Task<void> {
    started = true;
    co_return;
  };
  Task<void> t = inner();
  EXPECT_FALSE(started);
  EXPECT_TRUE(t.valid());
  auto outer = [&](Task<void> held) -> Task<void> {
    EXPECT_FALSE(started);
    co_await std::move(held);
    EXPECT_TRUE(started);
  };
  sim.spawn(outer(std::move(t)), "outer");
  sim.run();
  EXPECT_TRUE(started);
}

TEST(Task, SubtaskDelaysPropagateTime) {
  Simulator sim;
  auto inner = [&]() -> Task<int> {
    co_await sim.delay(5_ms);
    co_return 7;
  };
  Time whenDone = -1;
  auto outer = [&]() -> Task<void> {
    const int v = co_await inner();
    EXPECT_EQ(v, 7);
    whenDone = sim.now();
  };
  sim.spawn(outer(), "outer");
  sim.run();
  EXPECT_DOUBLE_EQ(whenDone, 5e-3);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto inner = []() -> Task<int> {
    throw std::runtime_error("inner failed");
    co_return 0;  // unreachable
  };
  auto outer = [&]() -> Task<void> {
    try {
      (void)co_await inner();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "inner failed";
    }
  };
  sim.spawn(outer(), "outer");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, MoveTransfersOwnership) {
  auto inner = []() -> Task<int> { co_return 1; };
  Task<int> a = inner();
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  Task<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
}

TEST(Task, DestroyWithoutRunningDoesNotLeakOrCrash) {
  // Frame with a non-trivially-destructible local: destruction of a
  // never-started coroutine must run no body code but free the frame.
  bool bodyRan = false;
  {
    auto inner = [&]() -> Task<void> {
      auto guard = std::make_shared<int>(5);
      bodyRan = true;
      co_return;
    };
    Task<void> t = inner();
    (void)t;
  }
  EXPECT_FALSE(bodyRan);
}

TEST(Task, DeepChainDoesNotOverflowStack) {
  Simulator sim;
  // 50k-deep symmetric-transfer chain; would crash with naive recursion.
  std::function<Task<int>(int)> rec = [&](int n) -> Task<int> {
    if (n == 0) co_return 0;
    co_return 1 + co_await rec(n - 1);
  };
  int result = -1;
  auto outer = [&]() -> Task<void> { result = co_await rec(50000); };
  sim.spawn(outer(), "deep");
  sim.run();
  EXPECT_EQ(result, 50000);
}

TEST(Task, VoidTaskAwaitableMultipleSequential) {
  Simulator sim;
  int count = 0;
  auto once = [&]() -> Task<void> {
    ++count;
    co_return;
  };
  auto outer = [&]() -> Task<void> {
    co_await once();
    co_await once();
    co_await once();
  };
  sim.spawn(outer(), "seq");
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Task, MoveOnlyResultType) {
  Simulator sim;
  auto inner = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(9);
  };
  int seen = 0;
  auto outer = [&]() -> Task<void> {
    auto p = co_await inner();
    seen = *p;
  };
  sim.spawn(outer(), "mo");
  sim.run();
  EXPECT_EQ(seen, 9);
}

}  // namespace
}  // namespace comb::sim
