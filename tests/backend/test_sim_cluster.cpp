#include "backend/sim_cluster.hpp"

#include <gtest/gtest.h>

#include "backend/machine.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using sim::Task;

TEST(SimCluster, BuildsRequestedNodes) {
  SimCluster cluster(gmMachine(), 3);
  EXPECT_EQ(cluster.nodeCount(), 3);
  EXPECT_EQ(cluster.fabric().nodeCount(), 3);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.mpi(r).rank(), r);
    EXPECT_EQ(cluster.mpi(r).size(), 3);
    EXPECT_EQ(cluster.proc(r).rank(), r);
  }
}

TEST(SimCluster, RejectsBadConfigs) {
  EXPECT_THROW(SimCluster(gmMachine(), 0), ConfigError);
  EXPECT_THROW(SimCluster(gmMachine(), 9), ConfigError);  // 8-port switch
  SimCluster ok(portalsMachine(), 2);
  EXPECT_THROW(ok.proc(2), ConfigError);
  EXPECT_THROW(ok.mpi(-1), ConfigError);
}

TEST(SimCluster, TransportKindMatchesConfig) {
  SimCluster gm(gmMachine(), 2);
  SimCluster portals(portalsMachine(), 2);
  EXPECT_FALSE(gm.endpoint(0).applicationOffload());
  EXPECT_TRUE(portals.endpoint(0).applicationOffload());
}

TEST(SimCluster, WorkAdvancesSimulatedTime) {
  SimCluster cluster(gmMachine(), 2);
  Time after = -1;
  auto proc = [](SimProc& p, Time& out) -> Task<void> {
    co_await p.work(1'000'000);
    out = p.wtime();
  };
  cluster.launch(0, proc(cluster.proc(0), after));
  cluster.run();
  // 1M iterations at 4 ns/iter.
  EXPECT_DOUBLE_EQ(after, 4e-3);
  EXPECT_DOUBLE_EQ(cluster.proc(0).secondsPerIter(), 4e-9);
}

TEST(SimCluster, DeadlockIsDetected) {
  SimCluster cluster(gmMachine(), 2);
  // A receive that can never complete: the simulation drains with a live
  // process, which the cluster reports as an assertion failure. We assert
  // death here because COMB_ASSERT aborts.
  auto hang = [](SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 1, 1, 1024);
  };
  auto idle = [](SimProc&) -> Task<void> { co_return; };
  cluster.launch(0, hang(cluster.proc(0)));
  cluster.launch(1, idle(cluster.proc(1)));
  EXPECT_DEATH(cluster.run(), "deadlock");
}

TEST(SimCluster, ActivityVersioningVisibleThroughProc) {
  SimCluster cluster(portalsMachine(), 2);
  const auto v0 = cluster.proc(1).activityVersion();
  auto sender = [](SimProc& p) -> Task<void> {
    co_await p.mpi().send(p.mpi().world(), 1, 1, 1024);
  };
  auto receiver = [](SimProc& p) -> Task<void> {
    co_await p.mpi().recv(p.mpi().world(), 0, 1, 1024);
  };
  cluster.launch(0, sender(cluster.proc(0)));
  cluster.launch(1, receiver(cluster.proc(1)));
  cluster.run();
  EXPECT_GT(cluster.proc(1).activityVersion(), v0);
}

}  // namespace
}  // namespace comb::backend
