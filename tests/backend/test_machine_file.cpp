#include "backend/machine_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"

namespace comb::backend {
namespace {

MachineConfig parse(const std::string& text) {
  std::istringstream in(text);
  return parseMachineFile(in, "test.ini");
}

TEST(MachineFile, EmptyFileYieldsGmDefaults) {
  const auto m = parse("");
  EXPECT_EQ(m.kind, TransportKind::Gm);
  EXPECT_EQ(m.name, "gm");
  EXPECT_DOUBLE_EQ(m.fabric.link.rate, 90e6);
  EXPECT_EQ(m.cpusPerNode, 1);
}

TEST(MachineFile, FullGmDefinition) {
  const auto m = parse(R"(
name = custom-gm
transport = gm

[fabric]
link_rate_MBps = 200
link_latency_us = 1.5
mtu = 8192

[host]
seconds_per_iter_ns = 2

[gm]
eager_threshold_kb = 32
post_overhead_us = 3
)");
  EXPECT_EQ(m.name, "custom-gm");
  EXPECT_DOUBLE_EQ(m.fabric.link.rate, 200e6);
  EXPECT_DOUBLE_EQ(m.fabric.link.latency, 1.5e-6);
  EXPECT_EQ(m.fabric.mtu, 8192u);
  EXPECT_DOUBLE_EQ(m.secondsPerWorkIter, 2e-9);
  EXPECT_EQ(m.gm.eagerThreshold, 32u * 1024u);
  EXPECT_DOUBLE_EQ(m.gm.postOverhead, 3e-6);
  // Untouched keys keep preset defaults.
  EXPECT_DOUBLE_EQ(m.gm.libCallCost, 0.7e-6);
}

TEST(MachineFile, PortalsDefinitionWithSmp) {
  const auto m = parse(R"(
transport = portals
[host]
cpus_per_node = 2
nic_cpu = 1
[portals]
per_frag_rx_us = 10
kernel_copy_MBps = 500
)");
  EXPECT_EQ(m.kind, TransportKind::Portals);
  EXPECT_EQ(m.cpusPerNode, 2);
  EXPECT_EQ(m.nicCpu, 1);
  EXPECT_DOUBLE_EQ(m.portals.nic.perFragRx, 10e-6);
  EXPECT_DOUBLE_EQ(m.portals.nic.kernelCopyRate, 500e6);
  EXPECT_DOUBLE_EQ(m.portals.postSyscall, 15e-6);  // default kept
}

TEST(MachineFile, CommentsAndWhitespaceIgnored) {
  const auto m = parse(R"(
# full-line comment
name = spaced   ; trailing comment
   [fabric]
  link_rate_MBps =   42   # another
)");
  EXPECT_EQ(m.name, "spaced");
  EXPECT_DOUBLE_EQ(m.fabric.link.rate, 42e6);
}

TEST(MachineFile, UnknownKeyRejected) {
  EXPECT_THROW(parse("[fabric]\nlink_rate_mbps = 90\n"), ConfigError);
  EXPECT_THROW(parse("typo_toplevel = 1\n"), ConfigError);
}

TEST(MachineFile, WrongSectionKeyRejected) {
  // gm keys are unknown when transport = portals.
  EXPECT_THROW(parse("transport = portals\n[gm]\npost_overhead_us = 5\n"),
               ConfigError);
}

TEST(MachineFile, BadValueRejected) {
  EXPECT_THROW(parse("[fabric]\nlink_rate_MBps = fast\n"), ConfigError);
  EXPECT_THROW(parse("transport = infiniband\n"), ConfigError);
  EXPECT_THROW(parse("[fabric]\nlink_rate_MBps = 0\n"), ConfigError);
}

TEST(MachineFile, MalformedSyntaxRejected) {
  EXPECT_THROW(parse("[fabric\nmtu = 1\n"), ConfigError);
  EXPECT_THROW(parse("justakey\n"), ConfigError);
  EXPECT_THROW(parse("name =\n"), ConfigError);
  EXPECT_THROW(parse("name = a\nname = b\n"), ConfigError);  // duplicate
}

TEST(MachineFile, BadSmpComboRejected) {
  EXPECT_THROW(parse("[host]\nnic_cpu = 1\n"), ConfigError);  // 1 CPU only
}

TEST(MachineFile, FaultSectionAndReliabilityKeys) {
  const auto m = parse(R"(
transport = portals
[fault]
drop = 0.02
burst = 3
corrupt = 0.01
jitter_us = 2
seed = 42
[portals]
ack_timeout_us = 500
ack_bytes = 32
max_retries = 4
backoff = 1.5
)");
  EXPECT_DOUBLE_EQ(m.fabric.link.fault.dropProb, 0.02);
  EXPECT_EQ(m.fabric.link.fault.burstLen, 3);
  EXPECT_DOUBLE_EQ(m.fabric.link.fault.corruptProb, 0.01);
  EXPECT_NEAR(m.fabric.link.fault.jitter, 2e-6, 1e-15);
  EXPECT_EQ(m.fabric.link.fault.seed, 42u);
  EXPECT_NEAR(m.portals.rel.ackTimeout, 500e-6, 1e-12);
  EXPECT_EQ(m.portals.rel.ackBytes, 32u);
  EXPECT_EQ(m.portals.rel.maxRetries, 4);
  EXPECT_DOUBLE_EQ(m.portals.rel.backoff, 1.5);

  const auto gm = parse("[gm]\nmax_retries = 6\n");
  EXPECT_EQ(gm.gm.rel.maxRetries, 6);
}

TEST(MachineFile, BadFaultOrReliabilityRejected) {
  EXPECT_THROW(parse("[fault]\ndrop = 1.5\n"), ConfigError);
  EXPECT_THROW(parse("[fault]\nburst = 0\n"), ConfigError);
  EXPECT_THROW(parse("[gm]\nmax_retries = 0\n"), ConfigError);
  EXPECT_THROW(parse("[gm]\nbackoff = 0.5\n"), ConfigError);
  // Reliability keys follow the active transport's section.
  EXPECT_THROW(parse("transport = portals\n[gm]\nack_timeout_us = 5\n"),
               ConfigError);
}

TEST(MachineFile, BundledFilesParse) {
  // The files shipped in machines/ must stay valid and match the presets.
  const auto gm = loadMachineFile(std::string(COMB_SOURCE_DIR) +
                                  "/machines/paper_gm.ini");
  EXPECT_EQ(gm.kind, TransportKind::Gm);
  EXPECT_DOUBLE_EQ(gm.fabric.link.rate, gmMachine().fabric.link.rate);
  EXPECT_EQ(gm.gm.eagerThreshold, gmMachine().gm.eagerThreshold);

  const auto portals = loadMachineFile(std::string(COMB_SOURCE_DIR) +
                                       "/machines/paper_portals.ini");
  EXPECT_EQ(portals.kind, TransportKind::Portals);
  EXPECT_DOUBLE_EQ(portals.portals.nic.perFragRx,
                   portalsMachine().portals.nic.perFragRx);

  const auto smp = loadMachineFile(std::string(COMB_SOURCE_DIR) +
                                   "/machines/smp_steered_portals.ini");
  EXPECT_EQ(smp.cpusPerNode, 2);
  EXPECT_EQ(smp.nicCpu, 1);

  const auto ft = loadMachineFile(std::string(COMB_SOURCE_DIR) +
                                  "/machines/fat_tree_gm.ini");
  EXPECT_EQ(ft.fabric.topo.kind, net::TopologyKind::FatTree);
  EXPECT_EQ(ft.fabric.topo.nodesPerSwitch, 8);
  EXPECT_EQ(ft.fabric.sw.queue.backpressure, net::Backpressure::Credit);

  const auto df = loadMachineFile(std::string(COMB_SOURCE_DIR) +
                                  "/machines/dragonfly_portals.ini");
  EXPECT_EQ(df.fabric.topo.kind, net::TopologyKind::Dragonfly);
  EXPECT_EQ(df.fabric.topo.groups, 4);
  EXPECT_EQ(df.fabric.sw.queue.depthPackets, 16);
}

TEST(MachineFile, MissingFileRejected) {
  EXPECT_THROW(loadMachineFile("/nonexistent/machine.ini"), ConfigError);
}

TEST(MachineFile, TopologySectionDefaultsToSingle) {
  const auto m = parse("");
  EXPECT_EQ(m.fabric.topo.kind, net::TopologyKind::SingleSwitch);
  EXPECT_EQ(m.fabric.sw.queue.depthPackets, 0);  // idealized crossbar
  EXPECT_EQ(m.fabric.sw.ports, 16);  // 8-port full-duplex, unidirectional
}

TEST(MachineFile, FatTreeTopologyParsed) {
  const auto m = parse(R"(
[fabric]
switch_ports = 24
[topology]
kind = fat-tree
nodes_per_switch = 8
spines = 4
trunk_rate_scale = 0.5
queue_depth_packets = 32
queue_depth_bytes = 262144
arbitration = fifo
backpressure = credit
)");
  EXPECT_EQ(m.fabric.topo.kind, net::TopologyKind::FatTree);
  EXPECT_EQ(m.fabric.topo.nodesPerSwitch, 8);
  EXPECT_EQ(m.fabric.topo.spines, 4);
  EXPECT_DOUBLE_EQ(m.fabric.topo.trunkRateScale, 0.5);
  EXPECT_EQ(m.fabric.sw.queue.depthPackets, 32);
  EXPECT_EQ(m.fabric.sw.queue.depthBytes, 262144u);
  EXPECT_EQ(m.fabric.sw.queue.arbitration, net::Arbitration::Fifo);
  EXPECT_EQ(m.fabric.sw.queue.backpressure, net::Backpressure::Credit);
  EXPECT_DOUBLE_EQ(m.fabric.topo.oversubscription(), 4.0);
}

TEST(MachineFile, DragonflyTopologyParsed) {
  const auto m = parse(R"(
[topology]
kind = dragonfly
nodes_per_switch = 4
groups = 4
routers_per_group = 2
queue_depth_packets = 16
)");
  EXPECT_EQ(m.fabric.topo.kind, net::TopologyKind::Dragonfly);
  EXPECT_EQ(m.fabric.topo.groups, 4);
  EXPECT_EQ(m.fabric.topo.routersPerGroup, 2);
  EXPECT_EQ(m.fabric.sw.queue.depthPackets, 16);
  // Queue defaults: round-robin arbitration, tail drop.
  EXPECT_EQ(m.fabric.sw.queue.arbitration, net::Arbitration::RoundRobin);
  EXPECT_EQ(m.fabric.sw.queue.backpressure, net::Backpressure::TailDrop);
}

TEST(MachineFile, BadTopologyRejected) {
  EXPECT_THROW(parse("[topology]\nkind = mesh\n"), ConfigError);
  EXPECT_THROW(parse("[topology]\narbitration = lifo\n"), ConfigError);
  EXPECT_THROW(parse("[topology]\nbackpressure = nack\n"), ConfigError);
  EXPECT_THROW(parse("[topology]\ntrunk_rate_scale = 0\n"), ConfigError);
  // validateTopology runs at parse time: a fat-tree leaf radix beyond the
  // switch port budget must be rejected, not deferred to the first run.
  EXPECT_THROW(parse("[fabric]\nswitch_ports = 8\n"
                     "[topology]\nkind = fat-tree\n"
                     "nodes_per_switch = 8\nspines = 4\n"),
               ConfigError);
}

}  // namespace
}  // namespace comb::backend
