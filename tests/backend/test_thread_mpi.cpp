// Native thread backend: MPI semantics under both progress models.
// (No timing assertions — this box may have a single core.)
#include <gtest/gtest.h>

#include <vector>

#include "backend/thread_cluster.hpp"
#include "common/units.hpp"

namespace comb::backend {
namespace {

using namespace comb::units;
using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Request;
using mpi::Status;

std::vector<std::byte> patternBytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((seed + i * 31) & 0xff);
  return v;
}

class ThreadMpiTest : public ::testing::TestWithParam<bool> {
 protected:
  bool offload() const { return GetParam(); }
};

TEST_P(ThreadMpiTest, SendRecvDataIntegrity) {
  ThreadCluster cluster(2, offload());
  const auto payload = patternBytes(4096, 7);
  std::vector<std::byte> rx(4096);
  Status st;
  cluster.run({[&](ThreadProc& p) {
                 p.mpi().send(p.mpi().world(), 1, 5, payload.size(), payload);
               },
               [&](ThreadProc& p) {
                 p.mpi().recv(p.mpi().world(), 0, 5, rx.size(), rx, &st);
               }});
  EXPECT_EQ(rx, payload);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(st.bytes, 4096u);
}

TEST_P(ThreadMpiTest, ManyMessagesInOrder) {
  ThreadCluster cluster(2, offload());
  constexpr int kN = 200;
  std::vector<int> got;
  cluster.run({[&](ThreadProc& p) {
                 for (int i = 0; i < kN; ++i)
                   p.mpi().send(
                       p.mpi().world(), 1, 1, sizeof(int),
                       std::as_bytes(std::span<const int>(&i, 1)));
               },
               [&](ThreadProc& p) {
                 for (int i = 0; i < kN; ++i) {
                   int v = -1;
                   p.mpi().recv(p.mpi().world(), 0, 1, sizeof(int),
                                std::as_writable_bytes(std::span<int>(&v, 1)));
                   got.push_back(v);
                 }
               }});
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_P(ThreadMpiTest, WildcardRecvWithStatus) {
  ThreadCluster cluster(3, offload());
  Status st;
  cluster.run({[&](ThreadProc&) {},
               [&](ThreadProc& p) {
                 p.mpi().send(p.mpi().world(), 2, 42, 128);
               },
               [&](ThreadProc& p) {
                 p.mpi().recv(p.mpi().world(), kAnySource, kAnyTag, 128, {},
                              &st);
               }});
  EXPECT_EQ(st.source, 1);
  EXPECT_EQ(st.tag, 42);
}

TEST_P(ThreadMpiTest, IsendTestLoopCompletes) {
  ThreadCluster cluster(2, offload());
  bool completed = false;
  cluster.run({[&](ThreadProc& p) {
                 auto req = p.mpi().isend(p.mpi().world(), 1, 9, 1_KB).value;
                 p.mpi().wait(req);
               },
               [&](ThreadProc& p) {
                 auto req = p.mpi().irecv(p.mpi().world(), 0, 9, 1_KB).value;
                 while (!p.mpi().test(req).value) std::this_thread::yield();
                 completed = true;
               }});
  EXPECT_TRUE(completed);
}

TEST_P(ThreadMpiTest, BidirectionalWaitall) {
  ThreadCluster cluster(2, offload());
  auto side = [](ThreadProc& p) {
    const int peer = 1 - p.rank();
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i)
      reqs.push_back(
          p.mpi().irecv(p.mpi().world(), peer, 10 + i, 2_KB).value);
    for (int i = 0; i < 4; ++i)
      reqs.push_back(
          p.mpi().isend(p.mpi().world(), peer, 10 + i, 2_KB).value);
    p.mpi().waitall(reqs);
    EXPECT_EQ(p.mpi().pendingRequests(), 0u);
  };
  cluster.run({side, side});
}

TEST_P(ThreadMpiTest, UnexpectedThenLateRecv) {
  ThreadCluster cluster(2, offload());
  const auto payload = patternBytes(512, 3);
  std::vector<std::byte> rx(512);
  cluster.run({[&](ThreadProc& p) {
                 // Send first, then barrier: the message is in the
                 // receiver's layer before its receive exists.
                 p.mpi().send(p.mpi().world(), 1, 8, payload.size(), payload);
                 p.mpi().barrier(p.mpi().world());
               },
               [&](ThreadProc& p) {
                 p.mpi().barrier(p.mpi().world());
                 p.mpi().recv(p.mpi().world(), 0, 8, rx.size(), rx);
               }});
  EXPECT_EQ(rx, payload);
}

TEST_P(ThreadMpiTest, IprobeSeesPendingMessage) {
  ThreadCluster cluster(2, offload());
  bool seen = false;
  cluster.run({[&](ThreadProc& p) {
                 p.mpi().send(p.mpi().world(), 1, 30, 256);
                 p.mpi().barrier(p.mpi().world());
               },
               [&](ThreadProc& p) {
                 p.mpi().barrier(p.mpi().world());
                 Status st;
                 // Message may still be "in flight" under the no-offload
                 // model until a library call; iprobe IS a library call.
                 while (!p.mpi().iprobe(p.mpi().world(), kAnySource, kAnyTag,
                                        &st).value)
                   std::this_thread::yield();
                 seen = true;
                 p.mpi().recv(p.mpi().world(), 0, 30, 256);
               }});
  EXPECT_TRUE(seen);
}

TEST_P(ThreadMpiTest, CancelUnmatchedRecv) {
  ThreadCluster cluster(2, offload());
  bool cancelled = false;
  cluster.run({[&](ThreadProc&) {},
               [&](ThreadProc& p) {
                 auto req = p.mpi().irecv(p.mpi().world(), 0, 77, 64).value;
                 cancelled = p.mpi().cancel(req).value;
               }});
  EXPECT_TRUE(cancelled);
}

TEST_P(ThreadMpiTest, OffloadSemanticsMatchMode) {
  // In offload mode a receive completes with NO receiver library calls;
  // in library mode it must not (until the receiver calls in).
  ThreadCluster cluster(2, offload());
  bool doneWithoutCalls = false;
  cluster.run({[&](ThreadProc& p) {
                 p.mpi().barrier(p.mpi().world());  // recv posted
                 p.mpi().send(p.mpi().world(), 1, 2, 128);
                 p.mpi().barrier(p.mpi().world());  // sender done
               },
               [&](ThreadProc& p) {
                 auto req = p.mpi().irecv(p.mpi().world(), 0, 2, 128).value;
                 p.mpi().barrier(p.mpi().world());
                 p.mpi().barrier(p.mpi().world());
                 // No library call between the barriers on this rank.
                 doneWithoutCalls = p.mpi().peekDone(req);
                 p.mpi().wait(req);
               }});
  EXPECT_EQ(doneWithoutCalls, offload());
}

TEST_P(ThreadMpiTest, SelfSend) {
  ThreadCluster cluster(1, offload());
  std::vector<std::byte> rx(64);
  const auto payload = patternBytes(64, 9);
  cluster.run({[&](ThreadProc& p) {
    auto req = p.mpi().irecv(p.mpi().world(), 0, 1, 64, rx).value;
    p.mpi().send(p.mpi().world(), 0, 1, 64, payload);
    p.mpi().wait(req);
  }});
  EXPECT_EQ(rx, payload);
}

INSTANTIATE_TEST_SUITE_P(ProgressModels, ThreadMpiTest,
                         ::testing::Values(true, false),
                         [](const auto& suiteInfo) {
                           return suiteInfo.param ? std::string("offload")
                                             : std::string("library");
                         });

}  // namespace
}  // namespace comb::backend
