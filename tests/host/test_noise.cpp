#include "host/noise.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "host/cpu.hpp"

namespace comb::host {
namespace {

using namespace comb::units;
using sim::Simulator;
using sim::Task;

NoiseSpec demoSpec() {
  NoiseSpec s;
  s.period = 250_us;
  s.duration = 20_us;
  s.daemons = 2;
  s.seed = 42;
  return s;
}

TEST(NoiseSpec, ParseRoundTrip) {
  const NoiseSpec spec = parseNoiseSpec(
      "period_us=250,duration_us=20,jitter=0.5,daemons=3,coalesce_us=4,"
      "seed=99");
  EXPECT_DOUBLE_EQ(spec.period, 250e-6);
  EXPECT_DOUBLE_EQ(spec.duration, 20e-6);
  EXPECT_DOUBLE_EQ(spec.jitter, 0.5);
  EXPECT_EQ(spec.daemons, 3);
  EXPECT_DOUBLE_EQ(spec.coalesce, 4e-6);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_TRUE(spec.enabled());
  const NoiseSpec again = parseNoiseSpec(noiseSpecSummary(spec));
  EXPECT_DOUBLE_EQ(again.period, spec.period);
  EXPECT_DOUBLE_EQ(again.duration, spec.duration);
  EXPECT_DOUBLE_EQ(again.jitter, spec.jitter);
  EXPECT_EQ(again.daemons, spec.daemons);
  EXPECT_DOUBLE_EQ(again.coalesce, spec.coalesce);
  EXPECT_EQ(again.seed, spec.seed);
}

TEST(NoiseSpec, ParseRejectsBadInput) {
  EXPECT_THROW(parseNoiseSpec("bogus_key=1"), ConfigError);
  EXPECT_THROW(parseNoiseSpec("period_us"), ConfigError);
  EXPECT_THROW(parseNoiseSpec("period_us=abc"), ConfigError);
  // Duration without a period, duration beyond the period, bad jitter.
  EXPECT_THROW(parseNoiseSpec("duration_us=5"), ConfigError);
  EXPECT_THROW(parseNoiseSpec("period_us=10,duration_us=20"), ConfigError);
  EXPECT_THROW(parseNoiseSpec("period_us=10,duration_us=1,jitter=2"),
               ConfigError);
  EXPECT_THROW(parseNoiseSpec("period_us=10,duration_us=1,daemons=0"),
               ConfigError);
}

TEST(NoiseSpec, DisabledByDefault) {
  const NoiseSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(spec.active());
  NoiseSpec coalesceOnly;
  coalesceOnly.coalesce = 4_us;
  EXPECT_FALSE(coalesceOnly.enabled());
  EXPECT_TRUE(coalesceOnly.active());
}

TEST(NoiseModel, ScheduleIsDeterministicPerStreamKey) {
  const NoiseSpec spec = demoSpec();
  const NoiseModel a(spec, noiseStreamKey("cpu0.0"));
  const NoiseModel b(spec, noiseStreamKey("cpu0.0"));
  const NoiseModel other(spec, noiseStreamKey("cpu1.0"));
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const Time t = i * 37e-6;
    EXPECT_DOUBLE_EQ(a.busyEnd(t), b.busyEnd(t));
    EXPECT_DOUBLE_EQ(a.nextStart(t), b.nextStart(t));
    if (a.busyEnd(t) != other.busyEnd(t)) differs = true;
  }
  EXPECT_TRUE(differs) << "distinct CPUs must get decorrelated schedules";
}

TEST(NoiseModel, WindowsAreWellFormed) {
  const NoiseModel m(demoSpec(), noiseStreamKey("cpu0.0"));
  for (int i = 0; i < 2000; ++i) {
    const Time t = i * 11e-6;
    const Time end = m.busyEnd(t);
    EXPECT_GE(end, t);
    // Once out of the busy period, we really are out of it.
    EXPECT_DOUBLE_EQ(m.busyEnd(end), end);
    const Time next = m.nextStart(t);
    EXPECT_GT(next, t);
    // The next window start is genuinely a window start.
    EXPECT_GT(m.busyEnd(next), next);
  }
}

TEST(NoiseModel, StrictlyPeriodicBoundariesAreRobust) {
  // jitter=0 puts every window start exactly at fl(k * period), where
  // uint64(start / period) truncates to k-1 for a fraction of k; the
  // busy lookup must still find the covering window (this used to trip
  // the 'noise preemption outside a daemon window' assert).
  NoiseSpec spec = demoSpec();
  spec.jitter = 0.0;
  const NoiseModel m(spec, noiseStreamKey("cpu0.0"));
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    const Time start = static_cast<Time>(k) * spec.period;
    EXPECT_GT(m.busyEnd(start), start) << "slot " << k;
    // nextStart from just inside the window lands on the next slot's
    // start, which must itself be covered.
    const Time next = m.nextStart(start);
    EXPECT_GT(next, start);
    EXPECT_GT(m.busyEnd(next), next) << "slot " << k;
  }
}

TEST(NoiseModel, DisabledModelIsTransparent) {
  const NoiseModel m;
  EXPECT_FALSE(m.enabled());
  EXPECT_DOUBLE_EQ(m.busyEnd(1.0), 1.0);
  EXPECT_TRUE(m.nextStart(1.0) > 1e30);
}

/// Run a fixed compute workload under noise and return the completion time.
Time noisyComputeCompletion(const NoiseSpec& spec, const char* cpuName) {
  Simulator sim;
  Cpu cpu(sim, cpuName, 0, spec);
  Time done = -1;
  auto p = [&]() -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await cpu.compute(100_us);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.run();
  return done;
}

TEST(CpuNoise, DaemonsStretchComputeDeterministically) {
  const NoiseSpec spec = demoSpec();
  const Time noisy = noisyComputeCompletion(spec, "cpu0.0");
  const Time quiet = noisyComputeCompletion(NoiseSpec{}, "cpu0.0");
  EXPECT_DOUBLE_EQ(quiet, 20 * 100e-6);
  EXPECT_GT(noisy, quiet) << "daemon windows must steal wall-clock time";
  // Bit-reproducible from (seed, cpu): the exact same completion time.
  EXPECT_DOUBLE_EQ(noisy, noisyComputeCompletion(spec, "cpu0.0"));
  // A different seed gives a different schedule.
  NoiseSpec reseeded = spec;
  reseeded.seed = 43;
  EXPECT_NE(noisy, noisyComputeCompletion(reseeded, "cpu0.0"));
}

TEST(CpuNoise, StrictlyPeriodicNoiseRunsToCompletion) {
  // The documented jitter=0 mode: preemptions arm exactly on slot
  // boundaries. This aborted before the boundary-robust slot lookup.
  NoiseSpec spec = demoSpec();
  spec.jitter = 0.0;
  const Time noisy = noisyComputeCompletion(spec, "cpu0.0");
  EXPECT_GT(noisy, 20 * 100e-6) << "daemon windows must steal time";
  EXPECT_DOUBLE_EQ(noisy, noisyComputeCompletion(spec, "cpu0.0"));
}

TEST(CpuNoise, AccountingSplitsUserAndNoise) {
  Simulator sim;
  Cpu cpu(sim, "cpu0.0", 0, demoSpec());
  auto p = [&]() -> Task<void> { co_await cpu.compute(2_ms); };
  sim.spawn(p(), "p");
  sim.run();
  EXPECT_DOUBLE_EQ(cpu.userTime(), 2e-3);
  EXPECT_GT(cpu.noisePreemptions(), 0u);
  EXPECT_GT(cpu.noiseTime(), 0.0);
  // Wall clock = user work + enforced daemon windows (no ISRs here).
  EXPECT_NEAR(sim.now(), cpu.userTime() + cpu.noiseTime(), 1e-12);
}

TEST(CpuNoise, IdleMachineQuiescesWithInjectorAttached) {
  Simulator sim;
  Cpu cpu(sim, "cpu0.0", 0, demoSpec());
  auto p = [&]() -> Task<void> { co_await sim.delay(1_ms); };
  sim.spawn(p(), "p");
  sim.run();  // must terminate: no free-running daemon events
  EXPECT_DOUBLE_EQ(sim.now(), 1e-3);
  EXPECT_EQ(cpu.noisePreemptions(), 0u);
}

TEST(CpuNoise, CoalescingDefersFirstIsrOfBatch) {
  NoiseSpec spec;  // coalescing only, no daemons
  spec.coalesce = 5_us;
  Simulator sim;
  Cpu cpu(sim, "cpu0.0", 0, spec);
  std::vector<Time> fired;
  sim.schedule(0.0, [&] {
    cpu.raiseInterrupt(2_us, [&] { fired.push_back(sim.now()); });
    cpu.raiseInterrupt(2_us, [&] { fired.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  // First ISR: held 5 us, then 2 us of service; the second batches
  // straight behind it.
  EXPECT_DOUBLE_EQ(fired[0], 7e-6);
  EXPECT_DOUBLE_EQ(fired[1], 9e-6);
}

TEST(CpuNoise, IsrPreemptsDaemonWindowInteraction) {
  // An ISR raised while a daemon window holds the CPU runs on schedule;
  // the user job resumes only after both are over.
  const NoiseSpec spec = demoSpec();
  Simulator sim;
  Cpu cpu(sim, "cpu0.0", 0, spec);
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(1_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.schedule(100_us, [&] { cpu.raiseInterrupt(50_us); });
  sim.run();
  EXPECT_GE(done, 1e-3 + 50e-6);
  EXPECT_DOUBLE_EQ(cpu.userTime(), 1e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 50e-6);
}

}  // namespace
}  // namespace comb::host
