#include "host/memory.hpp"

#include <gtest/gtest.h>

namespace comb::host {
namespace {

TEST(MemoryModel, AffineCost) {
  MemoryModel m{.copyRate = 100e6, .perCopy = 1e-6};
  EXPECT_DOUBLE_EQ(m.copyTime(0), 1e-6);
  EXPECT_DOUBLE_EQ(m.copyTime(100'000'000), 1.0 + 1e-6);
  EXPECT_DOUBLE_EQ(m.copyTime(1'000'000), 0.01 + 1e-6);
}

TEST(MemoryModel, DefaultsSane) {
  MemoryModel m;
  // 1 MB at the default 300 MB/s: ~3.3 ms.
  EXPECT_NEAR(m.copyTime(1'000'000), 1e6 / 300e6 + 0.5e-6, 1e-9);
  EXPECT_GT(m.copyTime(1), m.perCopy);
}

TEST(MemoryModel, MonotoneInSize) {
  MemoryModel m;
  EXPECT_LT(m.copyTime(1024), m.copyTime(2048));
  EXPECT_LT(m.copyTime(2048), m.copyTime(1 << 20));
}

}  // namespace
}  // namespace comb::host
