#include "host/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"

namespace comb::host {
namespace {

using namespace comb::units;
using sim::Simulator;
using sim::Task;

TEST(Cpu, ComputeTakesExactlyItsTimeWhenUndisturbed) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(5_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5e-3);
  EXPECT_DOUBLE_EQ(cpu.userTime(), 5e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 0.0);
}

TEST(Cpu, ZeroComputeCompletesAtSameTime) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await sim.delay(1_ms);
    co_await cpu.compute(0.0);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.run();
  EXPECT_DOUBLE_EQ(done, 1e-3);
}

TEST(Cpu, InterruptExtendsRunningCompute) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(10_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  // 2 ms of ISR raised mid-compute delays completion to 12 ms.
  sim.schedule(4_ms, [&] { cpu.raiseInterrupt(2_ms); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 12e-3);
  EXPECT_DOUBLE_EQ(cpu.userTime(), 10e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 2e-3);
}

TEST(Cpu, BackToBackInterruptsQueueFifo) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  std::vector<int> handled;
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(10_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.schedule(1_ms, [&] {
    cpu.raiseInterrupt(1_ms, [&] { handled.push_back(1); });
    cpu.raiseInterrupt(2_ms, [&] { handled.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(handled, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(done, 13e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 3e-3);
  EXPECT_EQ(cpu.interruptsRaised(), 2u);
}

TEST(Cpu, InterruptDuringIsrExtendsBusyPeriod) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(4_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.schedule(1_ms, [&] { cpu.raiseInterrupt(2_ms); });
  // Arrives while the first ISR is in service.
  sim.schedule(2_ms, [&] { cpu.raiseInterrupt(3_ms); });
  sim.run();
  // Compute: 1 ms ran, then 5 ms of contiguous ISR (1..6 ms), then 3 ms.
  EXPECT_DOUBLE_EQ(done, 9e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 5e-3);
}

TEST(Cpu, ComputeStartedDuringIsrWaits) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  sim.schedule(0_ms, [&] { cpu.raiseInterrupt(5_ms); });
  auto p = [&]() -> Task<void> {
    co_await sim.delay(1_ms);  // ISR busy 0..5 ms
    co_await cpu.compute(2_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.run();
  EXPECT_DOUBLE_EQ(done, 7e-3);
  EXPECT_DOUBLE_EQ(cpu.userTime(), 2e-3);
}

TEST(Cpu, HandlerRunsAtServiceCompletion) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time handledAt = -1;
  sim.schedule(1_ms, [&] {
    cpu.raiseInterrupt(2_ms, [&] { handledAt = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(handledAt, 3e-3);
}

TEST(Cpu, InterruptWorkAwaitable) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await sim.delay(1_ms);
    co_await cpu.interruptWork(4_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 4e-3);
}

TEST(Cpu, SequentialComputesFifo) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  std::vector<Time> doneTimes;
  auto p = [&](Time dur) -> Task<void> {
    co_await cpu.compute(dur);
    doneTimes.push_back(sim.now());
  };
  sim.spawn(p(2_ms), "a");
  sim.spawn(p(3_ms), "b");
  sim.run();
  ASSERT_EQ(doneTimes.size(), 2u);
  EXPECT_DOUBLE_EQ(doneTimes[0], 2e-3);
  EXPECT_DOUBLE_EQ(doneTimes[1], 5e-3);
  EXPECT_DOUBLE_EQ(cpu.userTime(), 5e-3);
}

TEST(Cpu, ManyInterruptsAccountingIdentity) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time done = -1;
  auto p = [&]() -> Task<void> {
    co_await cpu.compute(100_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  // 50 interrupts of 100 us each, every 1 ms: 5 ms total service.
  for (int i = 1; i <= 50; ++i)
    sim.schedule(static_cast<Time>(i) * 1_ms,
                 [&] { cpu.raiseInterrupt(100_us); });
  sim.run();
  EXPECT_NEAR(done, 105e-3, 1e-12);
  EXPECT_NEAR(cpu.userTime(), 100e-3, 1e-12);
  EXPECT_NEAR(cpu.isrTime(), 5e-3, 1e-12);
  EXPECT_EQ(cpu.interruptsRaised(), 50u);
}

TEST(Cpu, AvailabilityRatioMatchesStolenFraction) {
  // The COMB availability identity in miniature: work that takes T dry
  // takes T / (1 - stolenFraction) with a periodic interrupt load.
  Simulator sim;
  Cpu cpu(sim, "n0");
  Time start = -1, done = -1;
  auto p = [&]() -> Task<void> {
    start = sim.now();
    co_await cpu.compute(50_ms);
    done = sim.now();
  };
  sim.spawn(p(), "p");
  // Steal 25%: 250 us ISR every 1 ms, far beyond the horizon.
  for (int i = 0; i < 200; ++i)
    sim.schedule(static_cast<Time>(i) * 1_ms + 0.1_ms,
                 [&] { cpu.raiseInterrupt(250_us); });
  sim.run();
  const double availability = 50e-3 / (done - start);
  EXPECT_NEAR(availability, 0.75, 0.01);
}

TEST(Cpu, UserTimeQueryMidJob) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  auto p = [&]() -> Task<void> { co_await cpu.compute(10_ms); };
  sim.spawn(p(), "p");
  Time midUser = -1;
  sim.schedule(4_ms, [&] { midUser = cpu.userTime(); });
  sim.run();
  EXPECT_DOUBLE_EQ(midUser, 4e-3);
}

TEST(Cpu, IsrTimeQueryMidService) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  sim.schedule(1_ms, [&] { cpu.raiseInterrupt(4_ms); });
  Time midIsr = -1;
  sim.schedule(3_ms, [&] { midIsr = cpu.isrTime(); });
  sim.run();
  EXPECT_DOUBLE_EQ(midIsr, 2e-3);
  EXPECT_DOUBLE_EQ(cpu.isrTime(), 4e-3);
}

TEST(Cpu, BusyWithUserFlag) {
  Simulator sim;
  Cpu cpu(sim, "n0");
  EXPECT_FALSE(cpu.busyWithUser());
  auto p = [&]() -> Task<void> { co_await cpu.compute(2_ms); };
  sim.spawn(p(), "p");
  sim.schedule(1_ms, [&] { EXPECT_TRUE(cpu.busyWithUser()); });
  sim.run();
  EXPECT_FALSE(cpu.busyWithUser());
}

}  // namespace
}  // namespace comb::host
