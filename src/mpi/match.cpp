#include "mpi/match.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace comb::mpi {

void MatchEngine::postRecv(const Pattern& pattern, Bytes maxBytes,
                           MatchCookie cookie) {
  posted_.push_back(PostedRecv{cookie, pattern, maxBytes});
}

std::optional<PostedRecv> MatchEngine::matchArrival(const Envelope& env) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->pattern.matches(env)) {
      PostedRecv hit = *it;
      posted_.erase(it);
      return hit;
    }
  }
  return std::nullopt;
}

bool MatchEngine::cancelRecv(MatchCookie cookie) {
  const auto it = std::find_if(
      posted_.begin(), posted_.end(),
      [cookie](const PostedRecv& r) { return r.cookie == cookie; });
  if (it == posted_.end()) return false;
  posted_.erase(it);
  return true;
}

MatchCookie MatchEngine::addUnexpected(const Envelope& env, Bytes bytes,
                                       std::uint64_t xportHandle) {
  const MatchCookie cookie = nextCookie_++;
  unexpected_.push_back(UnexpectedMsg{cookie, env, bytes, xportHandle});
  unexpectedBytes_ += bytes;
  return cookie;
}

std::optional<UnexpectedMsg> MatchEngine::matchUnexpected(
    const Pattern& pattern) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (pattern.matches(it->env)) {
      UnexpectedMsg hit = *it;
      unexpected_.erase(it);
      COMB_ASSERT(unexpectedBytes_ >= hit.bytes, "unexpected byte underflow");
      unexpectedBytes_ -= hit.bytes;
      return hit;
    }
  }
  return std::nullopt;
}

std::optional<UnexpectedMsg> MatchEngine::peekUnexpected(
    const Pattern& pattern) const {
  for (const auto& msg : unexpected_) {
    if (pattern.matches(msg.env)) return msg;
  }
  return std::nullopt;
}

}  // namespace comb::mpi
