// MPI request handles. A Request is a value handle into the owning Mpi
// instance's request table; completion via test/wait frees the table entry
// and invalidates the handle (MPI_Request_free semantics folded into
// test/wait, as in MPI's non-persistent requests).
#pragma once

#include <cstdint>

namespace comb::mpi {

struct Request {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
  friend bool operator==(const Request&, const Request&) = default;
};

inline constexpr Request kNullRequest{};

}  // namespace comb::mpi
