// MiniMPI collectives, built on the point-to-point layer with reserved
// (negative) internal tags.
//
// Algorithms are the textbook ones MPICH shipped in this era:
//   barrier    — dissemination
//   bcast      — binomial tree
//   reduceSum  — binomial tree reduction (commutative op)
//   allreduce  — reduce to 0 + bcast
//   gather     — linear to root
//   allgather  — gather + bcast

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "mpi/mpi.hpp"

namespace comb::mpi {

namespace {

// Internal tag space; user tags are >= 0 and -1 is kAnyTag.
constexpr Tag kTagBarrier = -1000;  // minus round index
constexpr Tag kTagBcast = -2000;
constexpr Tag kTagReduce = -3000;   // minus round index
constexpr Tag kTagGather = -4000;

std::span<const std::byte> asBytes(std::span<const double> xs) {
  return std::as_bytes(xs);
}

}  // namespace

sim::Task<void> Mpi::barrier(const Comm& comm) {
  const int n = comm.size();
  if (n == 1) co_return;
  const Rank r = comm.rank();
  for (int k = 0, dist = 1; dist < n; ++k, dist <<= 1) {
    const Rank to = (r + dist) % n;
    const Rank from = (r - dist % n + n) % n;
    const Tag tag = kTagBarrier - k;
    Request rx = co_await irecv(comm, from, tag, 0);
    Request tx = co_await isend(comm, to, tag, 0);
    co_await wait(rx);
    co_await wait(tx);
  }
}

sim::Task<void> Mpi::bcast(const Comm& comm, Rank root,
                           std::span<std::byte> buf) {
  const int n = comm.size();
  COMB_REQUIRE(root >= 0 && root < n, "bcast root out of range");
  if (n == 1) co_return;
  const Rank vrank = (comm.rank() - root + n) % n;
  const Bytes bytes = buf.size();

  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const Rank src = (vrank - mask + root) % n;
      co_await recv(comm, src, kTagBcast, bytes, buf);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const Rank dst = (vrank + mask + root) % n;
      co_await send(comm, dst, kTagBcast, bytes, buf);
    }
    mask >>= 1;
  }
}

sim::Task<void> Mpi::reduceSum(const Comm& comm, Rank root,
                               std::span<const double> in,
                               std::span<double> out) {
  const int n = comm.size();
  COMB_REQUIRE(root >= 0 && root < n, "reduce root out of range");
  COMB_REQUIRE(comm.rank() != root || out.size() == in.size(),
               "reduce output size mismatch at root");
  std::vector<double> acc(in.begin(), in.end());
  std::vector<double> tmp(in.size());
  const Rank vrank = (comm.rank() - root + n) % n;

  for (int k = 0, mask = 1; mask < n; ++k, mask <<= 1) {
    const Tag tag = kTagReduce - k;
    if (vrank & mask) {
      const Rank dst = (vrank - mask + root) % n;
      co_await send(comm, dst, tag, acc.size() * sizeof(double),
                    asBytes(std::span<const double>(acc)));
      co_return;  // contributed and done
    }
    const Rank vsrc = vrank + mask;
    if (vsrc < n) {
      const Rank src = (vsrc + root) % n;
      co_await recv(comm, src, tag, tmp.size() * sizeof(double),
                    std::as_writable_bytes(std::span<double>(tmp)));
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += tmp[i];
    }
  }
  COMB_ASSERT(comm.rank() == root, "non-root survived the reduction tree");
  std::copy(acc.begin(), acc.end(), out.begin());
}

sim::Task<void> Mpi::allreduceSum(const Comm& comm,
                                  std::span<const double> in,
                                  std::span<double> out) {
  COMB_REQUIRE(out.size() == in.size(), "allreduce size mismatch");
  if (comm.rank() == 0) {
    co_await reduceSum(comm, 0, in, out);
  } else {
    co_await reduceSum(comm, 0, in, {});
    // Non-roots receive the result via the broadcast below.
  }
  co_await bcast(comm, 0, std::as_writable_bytes(out));
}

sim::Task<void> Mpi::gather(const Comm& comm, Rank root,
                            std::span<const std::byte> in,
                            std::span<std::byte> out) {
  const int n = comm.size();
  COMB_REQUIRE(root >= 0 && root < n, "gather root out of range");
  const Bytes chunk = in.size();
  if (comm.rank() != root) {
    co_await send(comm, root, kTagGather, chunk, in);
    co_return;
  }
  COMB_REQUIRE(out.size() >= chunk * static_cast<Bytes>(n),
               "gather output buffer too small");
  // Root's own contribution.
  std::memcpy(out.data() + static_cast<std::size_t>(root) * chunk, in.data(),
              chunk);
  // Post all receives up front, then wait: lets transports overlap.
  std::vector<Request> reqs;
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    auto dst = out.subspan(static_cast<std::size_t>(r) * chunk, chunk);
    reqs.push_back(co_await irecv(comm, r, kTagGather, chunk, dst));
  }
  co_await waitall(reqs);
}

sim::Task<void> Mpi::allgather(const Comm& comm, std::span<const std::byte> in,
                               std::span<std::byte> out) {
  co_await gather(comm, 0, in, out);
  co_await bcast(comm, 0, out);
}

sim::Task<Comm> Mpi::commDup(const Comm& comm) {
  // Id consistency relies on every member creating communicators in the
  // same order (an MPI requirement for collective calls); the barrier
  // enforces that dup is, in fact, collective.
  co_await barrier(comm);
  co_return Comm(nextCommId_++, comm.members(), comm.rank());
}

sim::Task<Comm> Mpi::commSplit(const Comm& comm, int color, int key) {
  const int n = comm.size();
  struct Entry {
    int color;
    int key;
  };
  std::vector<Entry> all(static_cast<std::size_t>(n));
  const Entry mine{color, key};
  co_await allgather(
      comm,
      std::as_bytes(std::span<const Entry>(&mine, 1)),
      std::as_writable_bytes(std::span<Entry>(all)));

  // Build my group: parent ranks with my color, ordered by (key, rank).
  std::vector<Rank> group;
  for (Rank r = 0; r < n; ++r)
    if (all[static_cast<std::size_t>(r)].color == color) group.push_back(r);
  std::stable_sort(group.begin(), group.end(), [&](Rank a, Rank b) {
    return all[static_cast<std::size_t>(a)].key <
           all[static_cast<std::size_t>(b)].key;
  });

  std::vector<Rank> worldMembers;
  Rank myNewRank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    worldMembers.push_back(comm.worldRank(group[i]));
    if (group[i] == comm.rank()) myNewRank = static_cast<Rank>(i);
  }
  COMB_ASSERT(myNewRank >= 0, "caller missing from its own split group");
  co_return Comm(nextCommId_++, std::move(worldMembers), myNewRank);
}

}  // namespace comb::mpi
