// Core MiniMPI types: ranks, tags, envelopes, match patterns, status.
//
// MiniMPI is a from-scratch subset of MPI point-to-point and collective
// semantics, sufficient for COMB and for halo-exchange style applications:
// matching on (communicator, source, tag) with MPI's wildcard and
// non-overtaking rules.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace comb::mpi {

using Rank = int;
using Tag = int;
using CommId = int;

/// Wildcards (match MPI_ANY_SOURCE / MPI_ANY_TAG semantics).
inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// Tags below zero (other than kAnyTag) are reserved for internal
/// protocol messages (collectives, benchmark control).
inline constexpr Tag kMinUserTag = 0;

/// What a message carries for matching purposes.
struct Envelope {
  CommId comm = 0;
  Rank srcRank = 0;  ///< rank within `comm`
  Tag tag = 0;
};

/// A posted receive's matching pattern.
struct Pattern {
  CommId comm = 0;
  Rank srcRank = kAnySource;
  Tag tag = kAnyTag;

  bool matches(const Envelope& env) const {
    if (comm != env.comm) return false;
    if (srcRank != kAnySource && srcRank != env.srcRank) return false;
    if (tag != kAnyTag && tag != env.tag) return false;
    return true;
  }
};

/// Completion information (MPI_Status equivalent).
struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  Bytes bytes = 0;
};

}  // namespace comb::mpi
