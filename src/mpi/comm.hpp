// Communicators: an ordered member list (comm rank -> world rank) plus a
// process-local view (my rank within the comm).
//
// World rank == fabric node ID by construction of the cluster, so the
// member table doubles as the routing table.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "mpi/types.hpp"

namespace comb::mpi {

class Comm {
 public:
  Comm() = default;
  Comm(CommId id, std::vector<Rank> members, Rank myRank)
      : id_(id), members_(std::move(members)), myRank_(myRank) {
    COMB_REQUIRE(!members_.empty(), "empty communicator");
    COMB_REQUIRE(myRank_ >= 0 && myRank_ < size(),
                 "my rank outside communicator");
  }

  CommId id() const { return id_; }
  int size() const { return static_cast<int>(members_.size()); }
  Rank rank() const { return myRank_; }

  /// World rank (== node id) of a member.
  Rank worldRank(Rank commRank) const {
    COMB_REQUIRE(commRank >= 0 && commRank < size(),
                 "rank outside communicator");
    return members_[static_cast<std::size_t>(commRank)];
  }

  const std::vector<Rank>& members() const { return members_; }

 private:
  CommId id_ = 0;
  std::vector<Rank> members_;
  Rank myRank_ = 0;
};

}  // namespace comb::mpi
