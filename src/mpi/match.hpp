// MPI message-matching engine: the posted-receive list and the unexpected
// message queue, with MPI's ordering rules.
//
// This is pure logic with no simulation dependencies, deliberately: the GM
// transport instantiates it "in the library" (driven by MPI calls), the
// Portals transport instantiates it "in the kernel" (driven by interrupt
// handlers), and the native thread backend wraps it in a mutex. One
// matching semantics, three drivers — mirroring how MPICH layered over GM
// and Portals in the paper.
//
// Ordering rules implemented (MPI 1.1 §3.5 "non-overtaking"):
//  * posted receives are matched against an arrival in post order;
//  * unexpected messages are matched against a new receive in arrival
//    order;
//  * two messages from the same sender that both match a receive are
//    consumed in send order (guaranteed because arrivals are processed in
//    order and queue FIFO).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/units.hpp"
#include "mpi/types.hpp"

namespace comb::mpi {

/// Opaque per-engine identifier for posted receives / unexpected entries.
using MatchCookie = std::uint64_t;

struct PostedRecv {
  MatchCookie cookie = 0;
  Pattern pattern;
  Bytes maxBytes = 0;
};

struct UnexpectedMsg {
  MatchCookie cookie = 0;
  Envelope env;
  Bytes bytes = 0;
  /// Transport-defined handle (e.g. kernel buffer id or sender's request
  /// handle for a rendezvous RTS).
  std::uint64_t xportHandle = 0;
};

class MatchEngine {
 public:
  /// Add a receive to the posted list under a caller-chosen cookie
  /// (typically the MPI-layer request handle).
  void postRecv(const Pattern& pattern, Bytes maxBytes, MatchCookie cookie);

  /// Match an arriving envelope against posted receives (in post order).
  /// On success the receive is removed and returned.
  std::optional<PostedRecv> matchArrival(const Envelope& env);

  /// Remove a posted receive (MPI_Cancel). Returns false if it already
  /// matched (too late to cancel).
  bool cancelRecv(MatchCookie cookie);

  /// Queue an unexpected message (no posted receive matched).
  MatchCookie addUnexpected(const Envelope& env, Bytes bytes,
                            std::uint64_t xportHandle);

  /// Match a new receive pattern against queued unexpected messages (in
  /// arrival order). On success the entry is removed and returned.
  std::optional<UnexpectedMsg> matchUnexpected(const Pattern& pattern);

  /// Probe: like matchUnexpected but non-consuming.
  std::optional<UnexpectedMsg> peekUnexpected(const Pattern& pattern) const;

  std::size_t postedCount() const { return posted_.size(); }
  std::size_t unexpectedCount() const { return unexpected_.size(); }
  Bytes unexpectedBytes() const { return unexpectedBytes_; }

 private:
  std::deque<PostedRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  Bytes unexpectedBytes_ = 0;
  MatchCookie nextCookie_ = 1;
};

}  // namespace comb::mpi
