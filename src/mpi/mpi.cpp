#include "mpi/mpi.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::mpi {

namespace {

std::vector<Rank> iota(int n) {
  std::vector<Rank> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

metrics::Counter& mpiCounter(sim::Simulator& sim, Rank rank,
                             const char* call) {
  return sim.metrics().counter(strFormat("mpi.n%d.%s", rank, call));
}

LatencyRecorder& mpiLatency(sim::Simulator& sim, Rank rank,
                            const char* name) {
  return sim.metrics().latency(strFormat("mpi.n%d.%s", rank, name));
}

}  // namespace

Mpi::Mpi(sim::Simulator& sim, transport::Endpoint& ep, Rank worldRank,
         int worldSize)
    : sim_(sim), ep_(ep),
      counters_{mpiCounter(sim, worldRank, "isend"),
                mpiCounter(sim, worldRank, "irecv"),
                mpiCounter(sim, worldRank, "test"),
                mpiCounter(sim, worldRank, "wait"),
                mpiCounter(sim, worldRank, "progress")},
      latency_{mpiLatency(sim, worldRank, "send_latency"),
               mpiLatency(sim, worldRank, "recv_latency")},
      world_(Comm(0, iota(worldSize), worldRank)) {
  COMB_REQUIRE(worldRank == ep.nodeId(),
               "world rank must equal the endpoint's node id");
  ep_.setCallbacks(
      [this](std::uint64_t h) { onTxDone(h); },
      [this](std::uint64_t h, const Status& st,
             const transport::DataBuffer& d) { onRxDone(h, st, d); });
}

void Mpi::onTxDone(std::uint64_t handle) {
  const auto it = states_.find(handle);
  COMB_ASSERT(it != states_.end(), "tx completion for unknown request");
  COMB_ASSERT(it->second.kind == Kind::Send, "tx completion for a recv");
  it->second.done = true;
  const auto ticks =
      LatencyRecorder::toTicks(sim_.now() - it->second.postedAt);
  latency_.send.recordTicks(ticks);
  if (phaseSend_) phaseSend_->recordTicks(ticks);
}

void Mpi::onRxDone(std::uint64_t handle, const Status& st,
                   const transport::DataBuffer& data) {
  const auto it = states_.find(handle);
  COMB_ASSERT(it != states_.end(), "rx completion for unknown request");
  ReqState& state = it->second;
  COMB_ASSERT(state.kind == Kind::Recv, "rx completion for a send");
  COMB_ASSERT(!state.done, "duplicate rx completion");
  state.done = true;
  state.status = st;
  bytesReceived_ += st.bytes;
  transport::deliverData(data, state.userDst);
  const auto ticks = LatencyRecorder::toTicks(sim_.now() - state.postedAt);
  latency_.recv.recordTicks(ticks);
  if (phaseRecv_) phaseRecv_->recordTicks(ticks);
}

void Mpi::beginPhase(std::string_view phase) {
  phaseSend_ = &sim_.metrics().latency(
      strFormat("mpi.n%d.send_latency.%.*s", rank(),
                static_cast<int>(phase.size()), phase.data()));
  phaseRecv_ = &sim_.metrics().latency(
      strFormat("mpi.n%d.recv_latency.%.*s", rank(),
                static_cast<int>(phase.size()), phase.data()));
}

void Mpi::endPhase() {
  phaseSend_ = nullptr;
  phaseRecv_ = nullptr;
}

Mpi::ReqState& Mpi::stateOf(Request req) {
  COMB_REQUIRE(req.valid(), "operation on an invalid (freed?) request");
  const auto it = states_.find(req.id);
  COMB_REQUIRE(it != states_.end(),
               strFormat("unknown request id %llu",
                         static_cast<unsigned long long>(req.id)));
  return it->second;
}

void Mpi::freeRequest(Request& req, Status* statusOut) {
  const auto it = states_.find(req.id);
  COMB_ASSERT(it != states_.end(), "freeing unknown request");
  if (statusOut) *statusOut = it->second.status;
  states_.erase(it);
  req.id = 0;
}

sim::Task<Request> Mpi::isend(const Comm& comm, Rank dst, Tag tag,
                              Bytes bytes, std::span<const std::byte> data) {
  COMB_REQUIRE(tag >= kMinUserTag || tag <= -2,
               "tag -1 is reserved (kAnyTag)");
  COMB_REQUIRE(data.empty() || data.size() == bytes,
               "payload span size must equal the message byte count");
  const Request req{nextReq_++};
  states_[req.id] = ReqState{Kind::Send, false, Status{}, {}, sim_.now()};
  ++sendsPosted_;
  bytesSent_ += bytes;
  counters_.isend.add();
  // Span over the full call: for eager GM the post itself copies the
  // payload, so the span width is the paper's "post" cost made visible.
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "isend",
                       static_cast<double>(bytes));
  transport::TxReq tx;
  tx.handle = req.id;
  tx.dstNode = comm.worldRank(dst);
  tx.env = Envelope{comm.id(), comm.rank(), tag};
  tx.bytes = bytes;
  tx.data = transport::captureData(data);
  co_await ep_.postSend(std::move(tx));
  co_return req;
}

sim::Task<Request> Mpi::irecv(const Comm& comm, Rank src, Tag tag,
                              Bytes maxBytes, std::span<std::byte> dstBuf) {
  COMB_REQUIRE(src == kAnySource || (src >= 0 && src < comm.size()),
               "irecv source rank out of range");
  COMB_REQUIRE(dstBuf.empty() || dstBuf.size() >= maxBytes,
               "receive buffer smaller than maxBytes");
  const Request req{nextReq_++};
  states_[req.id] = ReqState{Kind::Recv, false, Status{}, dstBuf, sim_.now()};
  ++recvsPosted_;
  counters_.irecv.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "irecv",
                       static_cast<double>(maxBytes));
  transport::RxReq rx;
  rx.handle = req.id;
  rx.pattern = Pattern{comm.id(), src, tag};
  rx.maxBytes = maxBytes;
  co_await ep_.postRecv(std::move(rx));
  co_return req;
}

bool Mpi::peekDone(Request req) const {
  const auto it = states_.find(req.id);
  return it != states_.end() && it->second.done;
}

sim::Task<void> Mpi::progressOnce() {
  counters_.progress.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "progress");
  co_await ep_.progress();
}

sim::Task<bool> Mpi::test(Request& req, Status* status) {
  (void)stateOf(req);  // validate before paying for progress
  counters_.test.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "test");
  co_await ep_.progress();
  if (!stateOf(req).done) co_return false;
  freeRequest(req, status);
  co_return true;
}

sim::Task<void> Mpi::wait(Request& req, Status* status) {
  (void)stateOf(req);
  counters_.wait.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "wait");
  while (true) {
    // Snapshot the activity version *before* progressing so completions
    // that land during the progress call cannot be missed.
    const std::uint64_t seen = ep_.activity().version();
    co_await ep_.progress();
    if (stateOf(req).done) break;
    co_await ep_.activity().changedSince(seen);
  }
  freeRequest(req, status);
}

sim::Task<std::vector<std::size_t>> Mpi::testsome(
    std::span<Request> reqs, std::vector<Status>* statuses) {
  counters_.test.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "testsome");
  co_await ep_.progress();
  std::vector<std::size_t> completed;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!reqs[i].valid()) continue;
    if (stateOf(reqs[i]).done) {
      Status st;
      freeRequest(reqs[i], &st);
      completed.push_back(i);
      if (statuses) statuses->push_back(st);
    }
  }
  co_return completed;
}

sim::Task<void> Mpi::waitall(std::span<Request> reqs) {
  counters_.wait.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "waitall");
  auto allDone = [&] {
    for (const Request& r : reqs)
      if (r.valid() && !states_.at(r.id).done) return false;
    return true;
  };
  while (true) {
    const std::uint64_t seen = ep_.activity().version();
    co_await ep_.progress();
    if (allDone()) break;
    co_await ep_.activity().changedSince(seen);
  }
  for (Request& r : reqs) {
    if (r.valid()) freeRequest(r, nullptr);
  }
}

sim::Task<std::size_t> Mpi::waitany(std::span<Request> reqs, Status* status) {
  COMB_REQUIRE(std::any_of(reqs.begin(), reqs.end(),
                           [](const Request& r) { return r.valid(); }),
               "waitany needs at least one valid request");
  counters_.wait.add();
  sim::TraceScope span(sim_, sim::TraceCategory::MpiCall, rank(), "waitany");
  while (true) {
    const std::uint64_t seen = ep_.activity().version();
    co_await ep_.progress();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && stateOf(reqs[i]).done) {
        freeRequest(reqs[i], status);
        co_return i;
      }
    }
    co_await ep_.activity().changedSince(seen);
  }
}

sim::Task<void> Mpi::send(const Comm& comm, Rank dst, Tag tag, Bytes bytes,
                          std::span<const std::byte> data) {
  Request req = co_await isend(comm, dst, tag, bytes, data);
  co_await wait(req);
}

sim::Task<void> Mpi::recv(const Comm& comm, Rank src, Tag tag, Bytes maxBytes,
                          std::span<std::byte> dstBuf, Status* status) {
  Request req = co_await irecv(comm, src, tag, maxBytes, dstBuf);
  co_await wait(req, status);
}

sim::Task<void> Mpi::sendrecv(const Comm& comm, Rank dst, Tag sendTag,
                              Bytes sendBytes,
                              std::span<const std::byte> sendBuf, Rank src,
                              Tag recvTag, Bytes recvMaxBytes,
                              std::span<std::byte> recvBuf, Status* status) {
  Request rx = co_await irecv(comm, src, recvTag, recvMaxBytes, recvBuf);
  Request tx = co_await isend(comm, dst, sendTag, sendBytes, sendBuf);
  co_await wait(rx, status);
  co_await wait(tx);
}

sim::Task<bool> Mpi::iprobe(const Comm& comm, Rank src, Tag tag,
                            Status* status) {
  co_await ep_.progress();
  const Pattern pattern{comm.id(), src, tag};
  if (auto st = ep_.peekUnexpected(pattern)) {
    if (status) *status = *st;
    co_return true;
  }
  co_return false;
}

sim::Task<bool> Mpi::cancel(Request& req) {
  ReqState& state = stateOf(req);
  COMB_REQUIRE(state.kind == Kind::Recv, "only receives can be cancelled");
  if (state.done) co_return false;
  const bool ok = co_await ep_.cancelRecv(req.id);
  if (ok) {
    freeRequest(req, nullptr);
    co_return true;
  }
  co_return false;
}

}  // namespace comb::mpi
