// MiniMPI: the MPI subset COMB runs on, implemented from scratch over a
// transport::Endpoint.
//
// One Mpi instance per simulated process. All entry points are coroutines
// because every MPI call costs host CPU time (charged by the endpoint) —
// precisely the effect COMB measures.
//
// Supported: non-blocking point-to-point with (source, tag, comm) matching
// including wildcards and the non-overtaking rule; Test/Wait/Testsome/
// Waitall; blocking Send/Recv; Iprobe; Cancel; Barrier/Bcast/Reduce/
// Allreduce/Gather/Allgather; Comm dup/split.
//
// Progress rule: like most real MPI implementations over OS-bypass
// transports (the paper §4.3 calls this out as a violation of the MPI
// progress rule), a GM-backed MiniMPI only progresses rendezvous traffic
// inside library calls. A Portals-backed MiniMPI progresses autonomously.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/latency_recorder.hpp"
#include "common/units.hpp"
#include "mpi/comm.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/endpoint.hpp"

namespace comb::mpi {

class Mpi {
 public:
  /// `worldRank` must equal the endpoint's fabric node id.
  Mpi(sim::Simulator& sim, transport::Endpoint& ep, Rank worldRank,
      int worldSize);
  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  Rank rank() const { return world_.rank(); }
  int size() const { return world_.size(); }
  const Comm& world() const { return world_; }
  transport::Endpoint& endpoint() { return ep_; }

  // --- non-blocking point-to-point --------------------------------------
  /// Post a send of `bytes` to `dst` (comm rank). `data` optionally
  /// carries real bytes (copied out immediately, MPI buffer semantics).
  sim::Task<Request> isend(const Comm& comm, Rank dst, Tag tag, Bytes bytes,
                           std::span<const std::byte> data = {});
  /// Post a receive. `dstBuf` (optional) receives the payload at
  /// completion. `src` may be kAnySource, `tag` may be kAnyTag.
  sim::Task<Request> irecv(const Comm& comm, Rank src, Tag tag,
                           Bytes maxBytes, std::span<std::byte> dstBuf = {});

  // --- completion --------------------------------------------------------
  /// One progress call + completion check. On true the request is freed
  /// and `req` invalidated.
  sim::Task<bool> test(Request& req, Status* status = nullptr);
  /// Block (busy-wait semantics) until complete; frees the request.
  sim::Task<void> wait(Request& req, Status* status = nullptr);
  /// One progress call; returns indices of requests that completed (those
  /// are freed and invalidated in place). Skips invalid entries.
  sim::Task<std::vector<std::size_t>> testsome(
      std::span<Request> reqs, std::vector<Status>* statuses = nullptr);
  /// Block until all valid requests complete; frees them.
  sim::Task<void> waitall(std::span<Request> reqs);
  /// Block until at least one valid request completes; frees exactly that
  /// one (lowest index among the completed) and returns its index.
  sim::Task<std::size_t> waitany(std::span<Request> reqs,
                                 Status* status = nullptr);

  /// Non-advancing completion check: no progress call, no CPU cost.
  /// (Used by tests and internal assertions, not part of MPI semantics.)
  bool peekDone(Request req) const;

  /// One bare library progress call (the paper §4.3 inserts exactly this —
  /// an MPI_Test with no interesting request — into the PWW work phase).
  sim::Task<void> progressOnce();

  // --- blocking convenience ----------------------------------------------
  sim::Task<void> send(const Comm& comm, Rank dst, Tag tag, Bytes bytes,
                       std::span<const std::byte> data = {});
  sim::Task<void> recv(const Comm& comm, Rank src, Tag tag, Bytes maxBytes,
                       std::span<std::byte> dstBuf = {},
                       Status* status = nullptr);
  /// Combined send+receive (MPI_Sendrecv): posts both, waits for both —
  /// deadlock-free for exchange patterns.
  sim::Task<void> sendrecv(const Comm& comm, Rank dst, Tag sendTag,
                           Bytes sendBytes, std::span<const std::byte> sendBuf,
                           Rank src, Tag recvTag, Bytes recvMaxBytes,
                           std::span<std::byte> recvBuf,
                           Status* status = nullptr);

  // --- probe / cancel ------------------------------------------------------
  sim::Task<bool> iprobe(const Comm& comm, Rank src, Tag tag,
                         Status* status = nullptr);
  /// Cancel a posted receive. True on success (request freed); false if
  /// it already matched (complete it with test/wait instead).
  sim::Task<bool> cancel(Request& req);

  // --- collectives (see collectives.cpp) ----------------------------------
  sim::Task<void> barrier(const Comm& comm);
  sim::Task<void> bcast(const Comm& comm, Rank root, std::span<std::byte> buf);
  sim::Task<void> reduceSum(const Comm& comm, Rank root,
                            std::span<const double> in,
                            std::span<double> out);
  sim::Task<void> allreduceSum(const Comm& comm, std::span<const double> in,
                               std::span<double> out);
  sim::Task<void> gather(const Comm& comm, Rank root,
                         std::span<const std::byte> in,
                         std::span<std::byte> out);
  sim::Task<void> allgather(const Comm& comm, std::span<const std::byte> in,
                            std::span<std::byte> out);
  sim::Task<Comm> commDup(const Comm& comm);
  /// Collective. Processes with equal `color` form a new communicator,
  /// ranked by (key, parent rank).
  sim::Task<Comm> commSplit(const Comm& comm, int color, int key);

  // --- statistics ---------------------------------------------------------
  std::uint64_t sendsPosted() const { return sendsPosted_; }
  std::uint64_t recvsPosted() const { return recvsPosted_; }
  Bytes bytesSent() const { return bytesSent_; }
  Bytes bytesReceived() const { return bytesReceived_; }
  std::size_t pendingRequests() const { return states_.size(); }

  // --- tail-latency observability -----------------------------------------
  /// While a phase is active, per-message completion latencies are also
  /// recorded into `mpi.n<rank>.{send,recv}_latency.<phase>` recorders
  /// (find-or-create happens here, outside the steady state; recording
  /// itself stays allocation-free). Driven by SimProc::phaseBegin/End.
  void beginPhase(std::string_view phase);
  void endPhase();

 private:
  enum class Kind { Send, Recv };
  struct ReqState {
    Kind kind = Kind::Send;
    bool done = false;
    Status status;
    std::span<std::byte> userDst;
    /// Post time; completion latency = now - postedAt.
    double postedAt = 0;
  };

  void onTxDone(std::uint64_t handle);
  void onRxDone(std::uint64_t handle, const Status& st,
                const transport::DataBuffer& data);
  ReqState& stateOf(Request req);
  void freeRequest(Request& req, Status* statusOut);

  sim::Simulator& sim_;
  transport::Endpoint& ep_;
  /// Per-rank MPI call counters, cached at construction.
  struct CallCounters {
    metrics::Counter& isend;
    metrics::Counter& irecv;
    metrics::Counter& test;
    metrics::Counter& wait;
    metrics::Counter& progress;
  } counters_;
  /// Per-message completion-latency distributions (post → completion),
  /// cached at construction like the call counters.
  struct LatencyRecorders {
    LatencyRecorder& send;
    LatencyRecorder& recv;
  } latency_;
  /// Extra per-phase recorders, active between beginPhase/endPhase.
  LatencyRecorder* phaseSend_ = nullptr;
  LatencyRecorder* phaseRecv_ = nullptr;
  Comm world_;
  std::unordered_map<std::uint64_t, ReqState> states_;
  std::uint64_t nextReq_ = 1;
  CommId nextCommId_ = 1;

  std::uint64_t sendsPosted_ = 0;
  std::uint64_t recvsPosted_ = 0;
  Bytes bytesSent_ = 0;
  Bytes bytesReceived_ = 0;
};

}  // namespace comb::mpi
