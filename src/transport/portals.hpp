// Portals 3.0 (kernel-based) transport model.
//
// Mirrors the implementation the paper measured: a Linux kernel module
// processes Portals messages; the Myrinet MCP is a dumb packet engine; no
// OS-bypass. Properties:
//  * Posting a send or receive is a syscall plus kernel descriptor setup —
//    expensive (the paper's Fig 10 shows ~170 us posts vs GM's ~20 us).
//  * All matching and data movement happen in kernel/interrupt context,
//    so communication progresses with NO library calls: application
//    offload, the property the PWW method detects.
//  * Every fragment costs host CPU (interrupt + kernel-buffer copy), which
//    caps bandwidth well below the wire rate and crushes CPU availability
//    while messages flow (Figs 4, 12, 15).
//
// Unexpected messages are buffered in kernel memory; the late-posted
// receive pays the kernel->user copy in its posting syscall.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "mpi/match.hpp"
#include "net/fabric.hpp"
#include "nic/portals_nic.hpp"
#include "sim/simulator.hpp"
#include "transport/endpoint.hpp"
#include "transport/reliability.hpp"

namespace comb::transport {

struct PortalsConfig {
  /// User->kernel crossing per posted operation.
  Time postSyscall = 15e-6;
  /// Kernel match-entry / descriptor setup per posted operation. Together
  /// with postSyscall and the interrupt load a post suffers while traffic
  /// is flowing, this lands in the paper's Fig 10 range (~150-200 us).
  Time postKernel = 85e-6;
  /// Base CPU cost of one MPI library call (event-queue check).
  Time libCallCost = 1.2e-6;
  /// Kernel->user copy rate for unexpected messages claimed by a late
  /// receive (charged in the posting syscall).
  Rate unexpectedCopyRate = 250e6;
  nic::PortalsNicConfig nic;
  /// Ack/retransmit protocol parameters (engaged only on lossy fabrics).
  ReliabilityConfig rel;
};

class PortalsEndpoint final : public Endpoint {
 public:
  /// `libCpu` runs library/syscall work (the application's CPU);
  /// `kernelCpu` services NIC interrupts and kernel protocol work. On the
  /// paper's uniprocessor nodes they are the same CPU; the SMP extension
  /// (the paper's stated future work) steers them apart.
  PortalsEndpoint(sim::Simulator& sim, host::Cpu& libCpu,
                  host::Cpu& kernelCpu, net::Fabric& fabric, net::NodeId node,
                  PortalsConfig cfg);

  sim::Task<void> postSend(TxReq req) override;
  sim::Task<void> postRecv(RxReq req) override;
  sim::Task<void> progress() override;
  sim::Task<bool> cancelRecv(std::uint64_t handle) override;
  std::optional<mpi::Status> peekUnexpected(
      const mpi::Pattern& pattern) const override;
  bool applicationOffload() const override { return true; }
  Time libCallCost() const override { return cfg_.libCallCost; }
  net::NodeId nodeId() const override { return node_; }

  nic::PortalsNic& nic() { return nic_; }
  const nic::PortalsNic& nic() const { return nic_; }
  const PortalsConfig& config() const { return cfg_; }

 private:
  struct UnexRec {
    mpi::Envelope env;
    Bytes bytes = 0;
    DataBuffer data;
  };
  struct Assembly {
    std::uint32_t fragsSeen = 0;
    bool matched = false;
    std::uint64_t matchedHandle = 0;
    mpi::Envelope env;
    Bytes bytes = 0;
    DataBuffer data;
  };

  /// Kernel receive path: runs at interrupt level per fragment.
  void kernelRx(const WirePayload& frag, net::NodeId src);
  void kernelTxDone(std::uint64_t msgId);

  sim::Simulator& sim_;
  host::Cpu& cpu_;
  net::NodeId node_;
  PortalsConfig cfg_;
  nic::PortalsNic nic_;

  mpi::MatchEngine matchK_;  // kernel-level matching
  std::map<std::pair<net::NodeId, std::uint64_t>, Assembly> assembling_;
  std::unordered_map<std::uint64_t, UnexRec> unexpected_;  // kernel buffers
  std::unordered_map<std::uint64_t, std::uint64_t> txByMsgId_;
  std::uint64_t nextUnexId_ = 1;
};

}  // namespace comb::transport
