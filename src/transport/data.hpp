// Message data buffers.
//
// Benchmarks usually run "size-only" (null buffer): the simulator moves
// byte *counts*, which is all timing needs. Correctness tests attach real
// buffers; every transport then delivers the exact bytes end-to-end, so
// the same machinery validates data integrity.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace comb::transport {

using DataBuffer = std::shared_ptr<const std::vector<std::byte>>;

/// Snapshot user data into an immutable shared buffer (send-side copy,
/// analogous to the library/NIC owning the bytes once posted).
inline DataBuffer captureData(std::span<const std::byte> src) {
  if (src.empty()) return nullptr;
  return std::make_shared<const std::vector<std::byte>>(src.begin(),
                                                        src.end());
}

/// Copy a delivered buffer into the user's receive span (no-op for
/// size-only messages). Returns bytes copied.
inline Bytes deliverData(const DataBuffer& data, std::span<std::byte> dst) {
  if (!data || dst.empty()) return 0;
  const std::size_t n = std::min(data->size(), dst.size());
  std::memcpy(dst.data(), data->data(), n);
  return n;
}

}  // namespace comb::transport
