// Abstract transport endpoint: what MiniMPI needs from a message layer.
//
// The two implementations embody the paper's two systems:
//   * GmEndpoint      — OS-bypass user-level networking; matching and
//                       rendezvous control live in the *library*, so
//                       progress happens only inside MPI calls (no
//                       application offload).
//   * PortalsEndpoint — kernel-based stack; matching and progress run in
//                       interrupt context independent of the application
//                       (application offload), at the price of host CPU.
//
// All posting/progress entry points are coroutines: each implementation
// charges its own CPU costs on the calling process's host CPU, which is
// exactly how the real systems differ.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/units.hpp"
#include "mpi/types.hpp"
#include "net/packet.hpp"
#include "sim/activity.hpp"
#include "sim/task.hpp"
#include "transport/data.hpp"

namespace comb::transport {

/// A send posted by the MPI layer. `handle` is MPI-layer-chosen and echoed
/// back in the completion callback.
struct TxReq {
  std::uint64_t handle = 0;
  net::NodeId dstNode = -1;
  mpi::Envelope env;
  Bytes bytes = 0;
  DataBuffer data;  ///< optional real payload
};

/// A receive posted by the MPI layer.
struct RxReq {
  std::uint64_t handle = 0;
  mpi::Pattern pattern;
  Bytes maxBytes = 0;
};

class Endpoint {
 public:
  using TxDoneFn = std::function<void(std::uint64_t handle)>;
  using RxDoneFn = std::function<void(std::uint64_t handle,
                                      const mpi::Status&, const DataBuffer&)>;

  virtual ~Endpoint() = default;

  /// Wire the MPI layer's completion callbacks. Must be called once before
  /// any post. Callbacks may run in library-call context (GM) or interrupt
  /// context (Portals).
  void setCallbacks(TxDoneFn txDone, RxDoneFn rxDone) {
    txDone_ = std::move(txDone);
    rxDone_ = std::move(rxDone);
  }

  virtual sim::Task<void> postSend(TxReq req) = 0;
  virtual sim::Task<void> postRecv(RxReq req) = 0;

  /// One library progress call: charges the call's CPU cost and performs
  /// whatever protocol work this transport does in library context.
  virtual sim::Task<void> progress() = 0;

  /// Cancel a posted receive that has not matched yet. Returns true on
  /// success; false means the receive already matched (completion callback
  /// fired or imminent).
  virtual sim::Task<bool> cancelRecv(std::uint64_t handle) = 0;

  /// Non-consuming check of the unexpected queue (call progress() first
  /// for fresh results). Used by MPI_Iprobe.
  virtual std::optional<mpi::Status> peekUnexpected(
      const mpi::Pattern& pattern) const = 0;

  /// True when messages progress without library calls (the paper's
  /// "application offload").
  virtual bool applicationOffload() const = 0;

  /// Base CPU cost of one MPI library call into this transport.
  virtual Time libCallCost() const = 0;

  virtual net::NodeId nodeId() const = 0;

  /// Versioned "protocol activity happened" signal (NIC event queued,
  /// completion flagged). MPI blocking waits re-check their predicate
  /// after each version change instead of burning simulator events on a
  /// spin loop; the paper's busy-wait has the same *timing*, we just skip
  /// simulating the idle spins.
  sim::ActivitySignal& activity() { return *activity_; }

 protected:
  void initActivity(sim::Simulator& sim) {
    activity_ = std::make_unique<sim::ActivitySignal>(sim);
  }
  void signalActivity() { activity_->signal(); }

  TxDoneFn txDone_;
  RxDoneFn rxDone_;

 private:
  std::unique_ptr<sim::ActivitySignal> activity_;
};

}  // namespace comb::transport
