// Wire payload shared by the NIC models: every fabric packet carries one
// WirePayload describing which protocol message (or fragment of one) it is.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "mpi/types.hpp"
#include "net/packet.hpp"
#include "transport/data.hpp"

namespace comb::transport {

enum class WireKind : std::uint8_t {
  Eager,  ///< self-describing data message (matching info + data)
  Rts,    ///< rendezvous request-to-send (control)
  Cts,    ///< rendezvous clear-to-send (control)
  Data,   ///< rendezvous payload addressed to a receiver handle
  Ack,    ///< per-fragment reliability acknowledgement (lossy fabrics only)
};

inline const char* wireKindName(WireKind k) {
  switch (k) {
    case WireKind::Eager: return "Eager";
    case WireKind::Rts: return "Rts";
    case WireKind::Cts: return "Cts";
    case WireKind::Data: return "Data";
    case WireKind::Ack: return "Ack";
  }
  return "?";
}

/// The wire-visible content of a payload, separated from the PayloadBase
/// machinery so pooled payloads can be reset/cloned by plain assignment
/// (see transport/payload_pool.hpp).
struct WireFields {
  WireKind kind = WireKind::Eager;
  std::uint64_t msgId = 0;      ///< sender-scoped message identifier
  std::uint32_t fragIndex = 0;
  std::uint32_t fragCount = 1;
  mpi::Envelope env;            ///< valid for Eager and Rts
  Bytes msgBytes = 0;           ///< full message payload length
  std::uint64_t senderHandle = 0;  ///< sender request handle (Rts; echoed in Cts)
  std::uint64_t recvHandle = 0;    ///< receiver request handle (Cts; echoed in Data)
  /// Per-(sender, destination) matching sequence number carried by
  /// envelope-bearing messages (Eager, Rts). The receiving library matches
  /// envelopes in this order even when the NIC's priority scheduler lets a
  /// small control packet arrive before an earlier message's data — MPI's
  /// non-overtaking rule restored in software, as MPICH does.
  std::uint64_t matchSeq = 0;
  /// For Ack packets: the fragment index being acknowledged (msgId names
  /// the acked message; fragIndex is the ack packet's own index, always 0).
  std::uint32_t ackFragIndex = 0;
  DataBuffer data;              ///< whole-message buffer (fragments alias it)
};

struct WirePayload : net::PayloadBase, WireFields {
  static constexpr net::PayloadKind kPayloadKind = net::PayloadKind::Wire;
  WirePayload() : net::PayloadBase(kPayloadKind) {}

  WireFields& fields() { return *this; }
  const WireFields& fields() const { return *this; }
};

}  // namespace comb::transport
