#include "transport/rdma.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::transport {

RdmaEndpoint::RdmaEndpoint(sim::Simulator& sim, host::Cpu& cpu,
                           net::Fabric& fabric, net::NodeId node,
                           RdmaConfig cfg)
    : sim_(sim), cpu_(cpu), node_(node), cfg_(cfg),
      nic_(sim, fabric, node, cfg.nic, cfg.rel),
      fallbackCounter_(sim.metrics().counter(
          strFormat("rdma.n%d.unexpected_fallbacks", node))) {
  COMB_REQUIRE(cfg.eagerThreshold > 0, "eager threshold must be positive");
  COMB_REQUIRE(cfg.matchDelay >= 0.0, "matchDelay must be non-negative");
  COMB_REQUIRE(cfg.unexpectedCopyRate > 0.0,
               "unexpectedCopyRate must be positive");
  initActivity(sim);
  nic_.setRxHandler(
      [this](const WirePayload& frag, net::NodeId src) { hwRx(frag, src); });
  nic_.setTxDoneHandler([this](std::uint64_t msgId) { hwTxDone(msgId); });
}

sim::Task<void> RdmaEndpoint::postSend(TxReq req) {
  const bool eager = req.bytes <= cfg_.eagerThreshold;
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Protocol, node_,
                   eager ? "rdma-eager-post" : "rdma-rndv-post",
                   static_cast<double>(req.bytes));
  // A post is a doorbell write plus WQE setup — no payload copy: the NIC
  // DMAs straight out of the registered user buffer.
  co_await cpu_.compute(cfg_.postOverhead);
  if (eager) {
    const std::uint64_t msgId =
        nic_.sendMessage(req.dstNode, WireKind::Eager, req.env, req.bytes,
                         req.bytes, req.data, req.handle, 0);
    txByMsgId_[msgId] = req.handle;
    // Zero-copy: completion surfaces from NIC context once the DMA has
    // drained (or fully acked on a lossy fabric).
    co_return;
  }
  // Rendezvous: the RTS goes out; everything after — hardware match at
  // the receiver, CTS, data DMA — runs NIC-to-NIC with no host on
  // either side.
  const std::uint64_t handle = req.handle;
  const net::NodeId dst = req.dstNode;
  const mpi::Envelope env = req.env;
  const Bytes bytes = req.bytes;
  pendingTx_.emplace(handle, PendingTx{std::move(req)});
  nic_.sendMessage(dst, WireKind::Rts, env, cfg_.ctrlBytes, bytes, nullptr,
                   handle, 0);
}

sim::Task<void> RdmaEndpoint::postRecv(RxReq req) {
  co_await cpu_.compute(cfg_.postOverhead);
  if (auto u = match_.matchUnexpected(req.pattern)) {
    const auto it = unexpected_.find(u->xportHandle);
    COMB_ASSERT(it != unexpected_.end(), "stale unexpected record");
    UnexRec rec = std::move(it->second);
    unexpected_.erase(it);
    if (rec.kind == WireKind::Eager) {
      COMB_ASSERT(rec.bytes <= req.maxBytes,
                  "unexpected message exceeds posted receive buffer");
      // The host-fallback price: claiming a bounce-buffered message
      // costs a host copy the expected path never pays.
      co_await cpu_.compute(static_cast<Time>(rec.bytes) /
                            cfg_.unexpectedCopyRate);
      rxDone_(req.handle,
              mpi::Status{rec.env.srcRank, rec.env.tag, rec.bytes}, rec.data);
      signalActivity();
    } else {
      // Deferred rendezvous: the freshly-programmed match entry answers
      // the buffered RTS — the CTS leaves from the NIC, no extra host
      // work beyond the post itself.
      COMB_ASSERT(rec.kind == WireKind::Rts, "unexpected kind in queue");
      nic_.sendMessage(rec.srcNode, WireKind::Cts, rec.env, cfg_.ctrlBytes,
                       rec.bytes, nullptr, rec.senderHandle, req.handle);
    }
    co_return;
  }
  match_.postRecv(req.pattern, req.maxBytes, req.handle);
}

sim::Task<void> RdmaEndpoint::progress() {
  // Hardware progresses communication on its own; a library call only
  // polls the completion queue.
  sim::TraceScope span(sim_, sim::TraceCategory::Protocol, node_, "progress");
  co_await cpu_.compute(cfg_.libCallCost);
}

void RdmaEndpoint::hwTxDone(std::uint64_t msgId) {
  const auto it = txByMsgId_.find(msgId);
  if (it == txByMsgId_.end()) return;  // RTS/CTS control message: untracked
  const std::uint64_t handle = it->second;
  txByMsgId_.erase(it);
  txDone_(handle);
  signalActivity();
}

void RdmaEndpoint::hwRx(const WirePayload& frag, net::NodeId src) {
  const auto key = std::pair{src, frag.msgId};
  Assembly& a = assembling_[key];
  if (frag.fragIndex == 0) {
    a.kind = frag.kind;
    a.env = frag.env;
    a.bytes = frag.msgBytes;
    a.senderHandle = frag.senderHandle;
    a.recvHandle = frag.recvHandle;
    a.data = frag.data;
  }
  if (++a.fragsSeen < frag.fragCount) return;
  Assembly done = std::move(a);
  assembling_.erase(key);
  hwMessage(std::move(done), src);
}

void RdmaEndpoint::hwMessage(Assembly done, net::NodeId src) {
  if (done.kind == WireKind::Eager) {
    if (auto rec = match_.matchArrival(done.env)) {
      COMB_ASSERT(done.bytes <= rec->maxBytes,
                  "eager message exceeds posted receive buffer");
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Protocol, node_, "hw-match",
                       static_cast<double>(done.bytes));
      // The match unit resolves the envelope in silicon; completion
      // surfaces after its pipeline delay. No host CPU.
      sim_.schedule(
          cfg_.matchDelay,
          [this, cookie = rec->cookie, srcRank = done.env.srcRank,
           tag = done.env.tag, bytes = done.bytes, data = done.data] {
            rxDone_(cookie, mpi::Status{srcRank, tag, bytes}, data);
            signalActivity();
          });
    } else {
      // Miss: the NIC deposits into host bounce buffers; the late
      // receive pays the copy when it claims the message.
      ++unexpectedFallbacks_;
      fallbackCounter_.add();
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Protocol, node_,
                       "rdma-unexpected", static_cast<double>(done.bytes));
      const std::uint64_t id = nextUnexId_++;
      unexpected_[id] = UnexRec{WireKind::Eager, done.env, done.bytes,
                               done.data, src, done.senderHandle};
      match_.addUnexpected(done.env, done.bytes, id);
      signalActivity();
    }
    return;
  }
  if (done.kind == WireKind::Rts) {
    if (auto rec = match_.matchArrival(done.env)) {
      COMB_ASSERT(done.bytes <= rec->maxBytes,
                  "rendezvous message exceeds posted receive buffer");
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Protocol, node_, "hw-match",
                       static_cast<double>(done.bytes));
      // Autonomous rendezvous: the receiving NIC answers CTS itself
      // after the match-unit delay.
      sim_.schedule(cfg_.matchDelay,
                    [this, src, env = done.env, bytes = done.bytes,
                     senderHandle = done.senderHandle,
                     cookie = rec->cookie] {
                      nic_.sendMessage(src, WireKind::Cts, env,
                                       cfg_.ctrlBytes, bytes, nullptr,
                                       senderHandle, cookie);
                    });
    } else {
      ++unexpectedFallbacks_;
      fallbackCounter_.add();
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Protocol, node_,
                       "rdma-unexpected", static_cast<double>(done.bytes));
      const std::uint64_t id = nextUnexId_++;
      unexpected_[id] = UnexRec{WireKind::Rts, done.env, done.bytes, nullptr,
                               src, done.senderHandle};
      match_.addUnexpected(done.env, done.bytes, id);
      signalActivity();
    }
    return;
  }
  if (done.kind == WireKind::Cts) {
    if (sim_.tracing())
      sim_.emitTrace(sim::TraceCategory::Protocol, node_, "cts->dma",
                     static_cast<double>(done.bytes));
    const auto it = pendingTx_.find(done.senderHandle);
    COMB_ASSERT(it != pendingTx_.end(), "CTS for unknown send");
    TxReq req = std::move(it->second.req);
    pendingTx_.erase(it);
    // The sending NIC starts the data DMA itself — no host involvement.
    const std::uint64_t msgId =
        nic_.sendMessage(req.dstNode, WireKind::Data, req.env, req.bytes,
                         req.bytes, req.data, done.senderHandle,
                         done.recvHandle);
    txByMsgId_[msgId] = done.senderHandle;
    return;
  }
  COMB_ASSERT(done.kind == WireKind::Data, "unhandled wire kind");
  // Data lands straight in the user buffer named by the CTS.
  rxDone_(done.recvHandle,
          mpi::Status{done.env.srcRank, done.env.tag, done.bytes}, done.data);
  signalActivity();
}

sim::Task<bool> RdmaEndpoint::cancelRecv(std::uint64_t handle) {
  // Tearing down a hardware match entry is another doorbell round-trip.
  co_await cpu_.compute(cfg_.postOverhead);
  co_return match_.cancelRecv(handle);
}

std::optional<mpi::Status> RdmaEndpoint::peekUnexpected(
    const mpi::Pattern& pattern) const {
  if (auto u = match_.peekUnexpected(pattern)) {
    return mpi::Status{u->env.srcRank, u->env.tag, u->bytes};
  }
  return std::nullopt;
}

}  // namespace comb::transport
