// GM/MPICH-GM transport model (OS-bypass, library-driven progress).
//
// Protocol, following the paper's characterisation of MPICH over GM 1.4:
//  * Eager (<= eagerThreshold, 16 KB): the posting call copies the message
//    into NIC-reachable send buffers on the host CPU — this is the ~45 us
//    per small send the paper measures — after which the NIC streams it
//    autonomously and the send is locally complete. At the receiver the
//    NIC deposits the message; the *library* matches it and copies it to
//    the user buffer during some later MPI call.
//  * Rendezvous (> eagerThreshold): the posting call is cheap (~5 us); an
//    RTS control message travels to the receiver, whose library answers
//    with CTS *during one of its MPI calls*; the sender's library reacts
//    to the CTS *during one of its MPI calls* by starting the NIC DMA,
//    which then streams data with zero host involvement straight into the
//    user buffer.
//
// Consequence (the paper's central GM finding): between MPI calls nothing
// control-related advances — no application offload — but the data phase
// itself is fully offloaded to the NIC, so availability at peak bandwidth
// is ~1 when calls are frequent enough.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "mpi/match.hpp"
#include "net/fabric.hpp"
#include "nic/gm_nic.hpp"
#include "sim/simulator.hpp"
#include "transport/endpoint.hpp"
#include "transport/reliability.hpp"

namespace comb::transport {

struct GmConfig {
  Bytes eagerThreshold = 16 * 1024;
  /// Descriptor work per non-blocking post (send or receive).
  Time postOverhead = 5e-6;
  /// Host copy rate into NIC send buffers (eager sends).
  Rate eagerTxCopyRate = 280e6;
  /// Library copy rate from GM receive buffers to the user buffer.
  Rate eagerRxCopyRate = 400e6;
  /// Base CPU cost of one MPI library call.
  Time libCallCost = 0.7e-6;
  /// Cost to handle one NIC event (RTS/CTS/completion record).
  Time ctrlHandleCost = 1.0e-6;
  /// Wire payload of RTS/CTS control packets.
  Bytes ctrlBytes = 32;
  /// Ack/retransmit protocol parameters (engaged only on lossy fabrics).
  ReliabilityConfig rel;
};

/// GmEndpoint doubles as the shared *library protocol core*: the
/// progress-thread stack (transport/progress_thread.hpp) runs the
/// identical eager/rendezvous/retransmit state machine but executes the
/// event-handling side on a progress engine instead of inside the
/// application's MPI calls. The seam is chargeProgress(): every CPU
/// charge on the event-handling path goes through it, so a derived
/// stack can re-home that work onto another core (or the interrupt
/// path) without touching the protocol itself.
class GmEndpoint : public Endpoint {
 public:
  GmEndpoint(sim::Simulator& sim, host::Cpu& cpu, net::Fabric& fabric,
             net::NodeId node, GmConfig cfg);

  sim::Task<void> postSend(TxReq req) override;
  sim::Task<void> postRecv(RxReq req) override;
  sim::Task<void> progress() override;
  sim::Task<bool> cancelRecv(std::uint64_t handle) override;
  std::optional<mpi::Status> peekUnexpected(
      const mpi::Pattern& pattern) const override;
  bool applicationOffload() const override { return false; }
  Time libCallCost() const override { return cfg_.libCallCost; }
  net::NodeId nodeId() const override { return node_; }

  nic::GmNic& nic() { return nic_; }
  const nic::GmNic& nic() const { return nic_; }
  const GmConfig& config() const { return cfg_; }

 protected:
  /// Unexpected-arrival record (library buffers).
  struct UnexRec {
    WireKind kind = WireKind::Eager;
    mpi::Envelope env;
    Bytes bytes = 0;
    DataBuffer data;             // eager payload
    net::NodeId srcNode = -1;    // for addressing the CTS
    std::uint64_t senderHandle = 0;
  };

  /// Rendezvous send awaiting CTS / DMA completion.
  struct PendingTx {
    TxReq req;
    bool ctsSeen = false;
  };

  sim::Task<void> handleEvent(nic::GmEvent ev);
  /// Matching logic for envelope-bearing events (Eager, Rts), called in
  /// per-sender matchSeq order.
  sim::Task<void> handleMatchEvent(nic::GmEvent ev);
  /// Drain every pending NIC event through the protocol state machine.
  /// GM calls this from progress() (library context); the progress-thread
  /// stack calls it from its engine sessions.
  sim::Task<void> drainEvents();
  /// Charge `t` seconds of event-handling CPU. GM runs it on the app CPU
  /// (the library does the work inside an MPI call); derived stacks
  /// re-home it (dedicated core, or preemption of the app core).
  virtual sim::Task<void> chargeProgress(Time t);
  Time copyTimeAt(Rate rate, Bytes n) const {
    return static_cast<Time>(n) / rate;
  }

  sim::Simulator& sim_;
  host::Cpu& cpu_;
  net::NodeId node_;
  GmConfig cfg_;
  nic::GmNic nic_;

  mpi::MatchEngine match_;  // library-level matching
  std::unordered_map<std::uint64_t, PendingTx> pendingTx_;   // by MPI handle
  std::unordered_map<std::uint64_t, std::uint64_t> txByMsgId_;  // msgId->handle
  std::unordered_map<std::uint64_t, UnexRec> unexpected_;    // by local id
  std::uint64_t nextUnexId_ = 1;

  // MPI non-overtaking: envelopes are matched in per-peer send order even
  // if the NIC's control-priority scheduler delivered them out of order.
  std::unordered_map<net::NodeId, std::uint64_t> txMatchSeq_;  // next to use
  std::unordered_map<net::NodeId, std::uint64_t> rxMatchSeq_;  // next expected
  std::map<std::pair<net::NodeId, std::uint64_t>, nic::GmEvent> heldEvents_;
};

}  // namespace comb::transport
