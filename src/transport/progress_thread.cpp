#include "transport/progress_thread.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::transport {

ProgressThreadEndpoint::ProgressThreadEndpoint(sim::Simulator& sim,
                                               host::Cpu& appCpu,
                                               host::Cpu& engineCpu,
                                               net::Fabric& fabric,
                                               net::NodeId node,
                                               ProgressThreadConfig cfg)
    : GmEndpoint(sim, appCpu, fabric, node, cfg.proto),
      ptCfg_(cfg),
      engineCpu_(engineCpu),
      wakeupCounter_(sim.metrics().counter(
          strFormat("pt.n%d.engine_wakeups", node))) {
  COMB_REQUIRE(cfg.pollPeriod >= 0.0 && cfg.wakeupLatency >= 0.0 &&
                   cfg.pollCost >= 0.0 && cfg.handoffPenalty >= 0.0,
               "progress-thread costs must be non-negative");
  COMB_REQUIRE(!cfg.dedicatedCore || &appCpu != &engineCpu,
               "dedicated progress placement needs its own engine CPU");
  COMB_REQUIRE(cfg.dedicatedCore || &appCpu == &engineCpu,
               "oversubscribed progress placement shares the app CPU");
  // Replace the base hook: a queued NIC event versions the activity
  // signal AND wakes the engine.
  nic().setEventHook([this] {
    signalActivity();
    scheduleDrain();
  });
}

sim::Task<void> ProgressThreadEndpoint::progress() {
  // The engine owns the event queue; a library call only inspects
  // completion flags the engine already wrote.
  sim::TraceScope span(sim_, sim::TraceCategory::Protocol, node_, "progress");
  co_await cpu_.compute(cfg_.libCallCost);
}

sim::Task<void> ProgressThreadEndpoint::chargeProgress(Time t) {
  if (&engineCpu_ == &cpu_) {
    // Oversubscribed: the engine timeshares the application's core, so
    // its cycles preempt user compute (charged through the interrupt
    // path — user work stretches by exactly the stolen time).
    co_await cpu_.interruptWork(t);
  } else {
    co_await engineCpu_.compute(t);
  }
}

void ProgressThreadEndpoint::scheduleDrain() {
  if (drainPending_) return;
  drainPending_ = true;
  // An idle engine needs waking (wakeupLatency); a recently-run engine
  // re-polls no sooner than its poll cadence allows.
  const Time when = std::max(sim_.now() + ptCfg_.wakeupLatency,
                             lastWakeup_ + ptCfg_.pollPeriod);
  sim_.scheduleAt(when,
                  [this] { sim_.spawn(drainSession(), "pt-engine"); });
}

sim::Task<void> ProgressThreadEndpoint::drainSession() {
  lastWakeup_ = sim_.now();
  ++engineWakeups_;
  wakeupCounter_.add();
  sim::TraceScope span(sim_, sim::TraceCategory::Protocol, node_,
                       "pt-engine");
  co_await chargeProgress(ptCfg_.pollCost);
  while (auto ev = nic_.pop()) {
    // Every event crosses the engine<->app cacheline boundary once.
    co_await chargeProgress(ptCfg_.handoffPenalty);
    co_await handleEvent(std::move(*ev));
  }
  // The pop loop only exits with the queue momentarily empty and no
  // suspension before this store, so clearing the flag cannot drop an
  // event: any later arrival re-enters through the NIC hook.
  drainPending_ = false;
}

}  // namespace comb::transport
