#include "transport/gm.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::transport {

GmEndpoint::GmEndpoint(sim::Simulator& sim, host::Cpu& cpu,
                       net::Fabric& fabric, net::NodeId node, GmConfig cfg)
    : sim_(sim), cpu_(cpu), node_(node), cfg_(cfg),
      nic_(sim, fabric, node, cfg.rel) {
  COMB_REQUIRE(cfg.eagerThreshold > 0, "eager threshold must be positive");
  initActivity(sim);
  nic_.setEventHook([this] { signalActivity(); });
}

sim::Task<void> GmEndpoint::postSend(TxReq req) {
  const std::uint64_t seq = txMatchSeq_[req.dstNode]++;
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Protocol, node_,
                   req.bytes <= cfg_.eagerThreshold ? "eager-post"
                                                    : "rndv-post",
                   static_cast<double>(req.bytes));
  if (req.bytes <= cfg_.eagerThreshold) {
    // Eager: the post itself copies the payload into NIC send buffers.
    co_await cpu_.compute(cfg_.postOverhead +
                          copyTimeAt(cfg_.eagerTxCopyRate, req.bytes));
    // On a lossy fabric the send buffer must stay pinned until every
    // fragment is acked, so completion is gated on the NIC's SendDone.
    const bool ackGated = nic_.reliable();
    const std::uint64_t msgId = nic_.sendMessage(
        req.dstNode, WireKind::Eager, req.env, req.bytes, req.bytes,
        req.data, req.handle, 0, /*reportSendDone=*/ackGated, seq);
    if (ackGated) {
      txByMsgId_[msgId] = req.handle;
      co_return;
    }
    // Buffer handed off: the MPI send is locally complete right away.
    txDone_(req.handle);
    signalActivity();
    co_return;
  }
  // Rendezvous: cheap descriptor post + an RTS on the wire. Everything
  // else happens inside later library calls.
  co_await cpu_.compute(cfg_.postOverhead);
  const std::uint64_t handle = req.handle;
  const net::NodeId dst = req.dstNode;
  const mpi::Envelope env = req.env;
  const Bytes bytes = req.bytes;
  pendingTx_.emplace(handle, PendingTx{std::move(req), false});
  nic_.sendMessage(dst, WireKind::Rts, env, cfg_.ctrlBytes, bytes, nullptr,
                   handle, 0, /*reportSendDone=*/false, seq);
}

sim::Task<void> GmEndpoint::postRecv(RxReq req) {
  co_await cpu_.compute(cfg_.postOverhead);
  if (auto u = match_.matchUnexpected(req.pattern)) {
    const auto it = unexpected_.find(u->xportHandle);
    COMB_ASSERT(it != unexpected_.end(), "stale unexpected record");
    UnexRec rec = std::move(it->second);
    unexpected_.erase(it);
    if (rec.kind == WireKind::Eager) {
      // Copy out of the GM receive buffers, then complete.
      co_await cpu_.compute(copyTimeAt(cfg_.eagerRxCopyRate, rec.bytes));
      rxDone_(req.handle,
              mpi::Status{rec.env.srcRank, rec.env.tag, rec.bytes}, rec.data);
      signalActivity();
    } else {
      // Unexpected RTS: answer with CTS naming our receive handle.
      COMB_ASSERT(rec.kind == WireKind::Rts, "unexpected kind in queue");
      co_await cpu_.compute(cfg_.ctrlHandleCost);
      nic_.sendMessage(rec.srcNode, WireKind::Cts, rec.env, cfg_.ctrlBytes,
                       rec.bytes, nullptr, rec.senderHandle, req.handle,
                       /*reportSendDone=*/false);
    }
    co_return;
  }
  match_.postRecv(req.pattern, req.maxBytes, req.handle);
}

sim::Task<void> GmEndpoint::progress() {
  // Span over the whole drain: library-driven progress is where GM spends
  // host cycles, and the trace shows it stretching under event backlog.
  sim::TraceScope span(sim_, sim::TraceCategory::Protocol, node_, "progress");
  co_await cpu_.compute(cfg_.libCallCost);
  // Drain the NIC event queue the way MPICH-GM's progress engine does:
  // everything pending is handled in one call.
  co_await drainEvents();
}

sim::Task<void> GmEndpoint::drainEvents() {
  while (auto ev = nic_.pop()) {
    co_await handleEvent(std::move(*ev));
  }
}

sim::Task<void> GmEndpoint::chargeProgress(Time t) {
  co_await cpu_.compute(t);
}

sim::Task<void> GmEndpoint::handleEvent(nic::GmEvent ev) {
  using EvType = nic::GmEvent::Type;
  if (ev.type == EvType::Timeout) {
    // The NIC cannot retransmit on its own — the library re-stages the
    // missing fragments here, on the host CPU. Eager payloads must be
    // re-copied into NIC send buffers; rendezvous data re-DMAs from the
    // (still pinned) user buffer for just the descriptor cost.
    auto plan = nic_.planRetransmit(ev.msgId);
    if (!plan) co_return;  // fully acked while the event sat in the queue
    if (plan->budgetExhausted)
      throw Error(strFormat(
          "GM: retransmit budget exhausted for message %llu after %d rounds",
          static_cast<unsigned long long>(ev.msgId), plan->retries));
    Time cost = cfg_.ctrlHandleCost;
    if (plan->kind == WireKind::Eager)
      cost += copyTimeAt(cfg_.eagerTxCopyRate, plan->missingBytes);
    co_await chargeProgress(cost);
    // Acks may have landed while we were re-staging.
    if (!nic_.planRetransmit(ev.msgId)) co_return;
    nic_.executeRetransmit(ev.msgId);
    co_return;
  }
  if (ev.type == EvType::SendDone) {
    co_await chargeProgress(cfg_.ctrlHandleCost);
    const auto it = txByMsgId_.find(ev.msgId);
    COMB_ASSERT(it != txByMsgId_.end(), "SendDone for unknown message");
    const std::uint64_t handle = it->second;
    txByMsgId_.erase(it);
    pendingTx_.erase(handle);
    txDone_(handle);
    signalActivity();
    co_return;
  }

  if (ev.kind == WireKind::Eager || ev.kind == WireKind::Rts) {
    // Envelope-bearing events must match in per-sender send order; the
    // NIC's control-priority lane can deliver an RTS ahead of an earlier
    // eager message's data, so re-sequence here (MPICH-style).
    const net::NodeId src = ev.srcNode;
    std::uint64_t& expected = rxMatchSeq_[src];
    if (ev.matchSeq != expected) {
      COMB_ASSERT(ev.matchSeq > expected, "duplicate matching sequence");
      heldEvents_.emplace(std::pair{src, ev.matchSeq}, std::move(ev));
      co_return;
    }
    co_await handleMatchEvent(std::move(ev));
    ++expected;
    // Release any consecutively-sequenced held events.
    for (auto it = heldEvents_.find(std::pair{src, expected});
         it != heldEvents_.end();
         it = heldEvents_.find(std::pair{src, expected})) {
      nic::GmEvent held = std::move(it->second);
      heldEvents_.erase(it);
      co_await handleMatchEvent(std::move(held));
      ++expected;
    }
    co_return;
  }

  if (ev.kind == WireKind::Cts) {
    if (sim_.tracing())
      sim_.emitTrace(sim::TraceCategory::Protocol, node_, "cts->dma",
                     static_cast<double>(ev.msgBytes));
    co_await chargeProgress(cfg_.ctrlHandleCost);
    const auto it = pendingTx_.find(ev.senderHandle);
    COMB_ASSERT(it != pendingTx_.end(), "CTS for unknown send");
    PendingTx& tx = it->second;
    COMB_ASSERT(!tx.ctsSeen, "duplicate CTS");
    tx.ctsSeen = true;
    // Program the NIC: data streams autonomously into the receiver's
    // user buffer; a SendDone completion record will surface later.
    const std::uint64_t msgId = nic_.sendMessage(
        tx.req.dstNode, WireKind::Data, tx.req.env, tx.req.bytes,
        tx.req.bytes, tx.req.data, ev.senderHandle, ev.recvHandle,
        /*reportSendDone=*/true);
    txByMsgId_[msgId] = ev.senderHandle;
    co_return;
  }

  COMB_ASSERT(ev.kind == WireKind::Data, "unhandled wire kind");
  // Zero-copy arrival into the user buffer; the library only marks the
  // receive complete.
  co_await chargeProgress(cfg_.ctrlHandleCost);
  rxDone_(ev.recvHandle,
          mpi::Status{ev.env.srcRank, ev.env.tag, ev.msgBytes}, ev.data);
  signalActivity();
}

sim::Task<void> GmEndpoint::handleMatchEvent(nic::GmEvent ev) {
  if (ev.kind == WireKind::Eager) {
    if (auto rec = match_.matchArrival(ev.env)) {
      COMB_ASSERT(ev.msgBytes <= rec->maxBytes,
                  "eager message exceeds posted receive buffer");
      co_await chargeProgress(cfg_.ctrlHandleCost +
                              copyTimeAt(cfg_.eagerRxCopyRate, ev.msgBytes));
      rxDone_(rec->cookie,
              mpi::Status{ev.env.srcRank, ev.env.tag, ev.msgBytes}, ev.data);
      signalActivity();
    } else {
      co_await chargeProgress(cfg_.ctrlHandleCost);
      const std::uint64_t id = nextUnexId_++;
      unexpected_[id] = UnexRec{WireKind::Eager, ev.env, ev.msgBytes, ev.data,
                                ev.srcNode, ev.senderHandle};
      match_.addUnexpected(ev.env, ev.msgBytes, id);
    }
    co_return;
  }
  COMB_ASSERT(ev.kind == WireKind::Rts, "unexpected match-event kind");
  co_await chargeProgress(cfg_.ctrlHandleCost);
  if (auto rec = match_.matchArrival(ev.env)) {
    COMB_ASSERT(ev.msgBytes <= rec->maxBytes,
                "rendezvous message exceeds posted receive buffer");
    nic_.sendMessage(ev.srcNode, WireKind::Cts, ev.env, cfg_.ctrlBytes,
                     ev.msgBytes, nullptr, ev.senderHandle, rec->cookie,
                     /*reportSendDone=*/false);
  } else {
    const std::uint64_t id = nextUnexId_++;
    unexpected_[id] = UnexRec{WireKind::Rts, ev.env, ev.msgBytes, nullptr,
                              ev.srcNode, ev.senderHandle};
    match_.addUnexpected(ev.env, ev.msgBytes, id);
  }
}

sim::Task<bool> GmEndpoint::cancelRecv(std::uint64_t handle) {
  co_await cpu_.compute(cfg_.libCallCost);
  co_return match_.cancelRecv(handle);
}

std::optional<mpi::Status> GmEndpoint::peekUnexpected(
    const mpi::Pattern& pattern) const {
  if (auto u = match_.peekUnexpected(pattern)) {
    return mpi::Status{u->env.srcRank, u->env.tag, u->bytes};
  }
  return std::nullopt;
}

}  // namespace comb::transport
