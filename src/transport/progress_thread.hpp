// Progress-thread transport model (GM-like library stack + a dedicated
// software progress engine).
//
// "Asynchronous MPI for the Masses" and "MPI Progress For All" describe
// the pattern this stack models: the library protocol is unchanged from
// an OS-bypass stack (here: the GM eager/rendezvous state machine,
// inherited wholesale from GmEndpoint), but a helper thread polls the
// NIC event queue on its own schedule, so control messages — CTS
// answers, rendezvous DMA kicks, retransmit staging — advance while the
// application computes. That is application offload in software.
//
// The costs the papers identify are all first-class knobs:
//  * placement — a *dedicated* core runs the engine for free (from the
//    application's point of view), while an *oversubscribed* engine
//    timeshares the application's core and every engine cycle preempts
//    user compute (modelled through the host CPU's interrupt path, the
//    same mechanism OS noise uses).
//  * wakeupLatency — an idle engine must be woken (futex/condvar +
//    scheduler latency) before it sees a fresh NIC event.
//  * pollPeriod — minimum spacing between engine wakeups: a busy engine
//    re-polls at this cadence rather than continuously.
//  * pollCost — CPU burned per wakeup inspecting the event queue.
//  * handoffPenalty — cacheline-bounce cost per event handled: protocol
//    state written by the engine core is read by the application core
//    (and vice versa), so every completion crosses a cache boundary.
//
// Consequence (the expected figure shape): rendezvous transfers overlap
// with the work phase like Portals, without per-fragment interrupts —
// but a dedicated core costs a core, and an oversubscribed engine gives
// back part of the availability it recovers.
#pragma once

#include "transport/gm.hpp"

namespace comb::transport {

struct ProgressThreadConfig {
  /// The underlying library protocol (eager/rendezvous thresholds, copy
  /// rates, control costs, reliability) — identical machine to GM's.
  GmConfig proto;
  /// true: the engine owns its own core; false: it timeshares the
  /// application core and engine work preempts user compute.
  bool dedicatedCore = true;
  /// Minimum spacing between engine wakeups (poll cadence when busy).
  Time pollPeriod = 5e-6;
  /// Latency from a NIC event landing to an idle engine running.
  Time wakeupLatency = 2e-6;
  /// Fixed CPU cost per engine wakeup (event-queue inspection).
  Time pollCost = 0.3e-6;
  /// Cacheline-bounce cost per event handled (engine<->app shared state).
  Time handoffPenalty = 0.2e-6;
};

class ProgressThreadEndpoint final : public GmEndpoint {
 public:
  /// `appCpu` runs the application's library calls (posts, waits);
  /// `engineCpu` runs the progress engine. With an oversubscribed
  /// placement both refer to the same CPU and engine work is charged
  /// through the interrupt path (it preempts user compute, exactly like
  /// a timeslice steal).
  ProgressThreadEndpoint(sim::Simulator& sim, host::Cpu& appCpu,
                         host::Cpu& engineCpu, net::Fabric& fabric,
                         net::NodeId node, ProgressThreadConfig cfg);

  /// A library call only inspects completion flags — the engine owns the
  /// event queue.
  sim::Task<void> progress() override;
  bool applicationOffload() const override { return true; }

  const ProgressThreadConfig& threadConfig() const { return ptCfg_; }
  /// Engine wakeups that actually ran (drain sessions).
  std::uint64_t engineWakeups() const { return engineWakeups_; }

 protected:
  /// Engine-context CPU charge: dedicated core computes on its own CPU;
  /// an oversubscribed engine preempts the application's compute.
  sim::Task<void> chargeProgress(Time t) override;

 private:
  /// Arrange for a drain session at the NIC-event wakeup time (bounded
  /// below by the poll cadence). Idempotent while one is pending.
  void scheduleDrain();
  /// One engine wakeup: pay the poll cost, then run the inherited GM
  /// protocol over every pending event (handoff penalty charged per
  /// event via chargeProgress).
  sim::Task<void> drainSession();

  ProgressThreadConfig ptCfg_;
  host::Cpu& engineCpu_;
  bool drainPending_ = false;
  Time lastWakeup_ = -1e30;  ///< far past: the first wakeup is uncapped
  std::uint64_t engineWakeups_ = 0;
  metrics::Counter& wakeupCounter_;  ///< "pt.n<id>.engine_wakeups"
};

}  // namespace comb::transport
