// Timeout/retransmit protocol parameters shared by both NIC stacks.
//
// On a lossy fabric (FaultSpec with dropProb or corruptProb > 0) every
// non-Ack fragment must be acknowledged by the receiving NIC. The sender
// keeps per-message state: which fragments are still unacked, how many
// retransmission rounds have been spent, and a timer that fires after
// `ackTimeout * backoff^retries`. What happens on a timeout differs per
// stack — that is the point of the extension:
//
//  * GM (OS-bypass, library-driven progress): the NIC can only queue a
//    Timeout event; the *library* notices it during some later MPI call,
//    pays host CPU to re-stage the missing fragments (eager messages are
//    re-copied into NIC send buffers) and restarts the DMA. Retransmit
//    latency is bounded below by the application's polling interval.
//  * Portals (NIC/kernel-resident progress): the packet engine retains
//    the fragments in NIC buffers and replays the missing ones
//    autonomously — no host CPU, no waiting for a library call.
//
// On a lossless fabric (the default) none of this machinery engages and
// event timings are bit-identical to builds without it.
#pragma once

#include "common/units.hpp"

namespace comb::transport {

struct ReliabilityConfig {
  /// Base ack timeout, measured from the instant the message's last
  /// fragment entered the wire. Generous by design: a spurious timeout
  /// costs a wasted retransmission, a tight one costs correctness of the
  /// availability numbers.
  Time ackTimeout = 2e-3;
  /// Timeout multiplier per retransmission round (exponential backoff).
  double backoff = 2.0;
  /// Retransmission rounds per message before the run is aborted.
  int maxRetries = 10;
  /// Wire payload of one Ack packet.
  Bytes ackBytes = 16;
};

}  // namespace comb::transport
