// RDMA-offload transport model (hardware matching, autonomous
// rendezvous, no interrupts).
//
// The modern point in the progress-model space ("MPI Progress For All"):
// MPI matching lives in NIC hardware against pre-posted receive entries,
// and the rendezvous control loop runs NIC-to-NIC:
//  * Posting a receive programs a hardware match entry — a doorbell
//    write plus WQE setup, a couple of microseconds, after which the
//    host is out of the picture.
//  * Eager (<= eagerThreshold): the NIC DMAs straight from the
//    registered user buffer; at the receiver the match unit resolves the
//    envelope (matchDelay in silicon) and DMAs into the posted buffer.
//    No host copy in the expected case.
//  * Rendezvous (> eagerThreshold): the RTS is matched in hardware and
//    the receiving NIC answers CTS *itself*; the sending NIC reacts to
//    the CTS by starting the data DMA *itself*. No host CPU on either
//    side, no interrupts, no library calls — full application offload at
//    near-zero availability cost.
//  * Unexpected messages are the escape hatch back to the host: the NIC
//    deposits them in host bounce buffers and the late-posted receive
//    pays a host copy (eager) or sends the deferred CTS (rendezvous)
//    when it claims them.
//
// Consequence (the expected figure shape): Portals-class offload with
// GM-class availability — the quadrant neither 2002 stack could reach.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/units.hpp"
#include "host/cpu.hpp"
#include "mpi/match.hpp"
#include "net/fabric.hpp"
#include "nic/rdma_nic.hpp"
#include "sim/simulator.hpp"
#include "transport/endpoint.hpp"
#include "transport/reliability.hpp"

namespace comb::transport {

struct RdmaConfig {
  Bytes eagerThreshold = 16 * 1024;
  /// Doorbell write + WQE setup per posted operation (send or receive).
  Time postOverhead = 1.5e-6;
  /// Base CPU cost of one MPI library call (completion-queue poll).
  Time libCallCost = 0.5e-6;
  /// Hardware match-unit latency per arriving message / RTS.
  Time matchDelay = 0.4e-6;
  /// Host copy rate when a late-posted receive claims an unexpected
  /// eager message out of the bounce buffers.
  Rate unexpectedCopyRate = 400e6;
  /// Wire payload of RTS/CTS control packets.
  Bytes ctrlBytes = 32;
  nic::RdmaNicConfig nic;
  /// Hardware ack/retransmit parameters (engaged only on lossy fabrics).
  ReliabilityConfig rel;
};

class RdmaEndpoint final : public Endpoint {
 public:
  RdmaEndpoint(sim::Simulator& sim, host::Cpu& cpu, net::Fabric& fabric,
               net::NodeId node, RdmaConfig cfg);

  sim::Task<void> postSend(TxReq req) override;
  sim::Task<void> postRecv(RxReq req) override;
  sim::Task<void> progress() override;
  sim::Task<bool> cancelRecv(std::uint64_t handle) override;
  std::optional<mpi::Status> peekUnexpected(
      const mpi::Pattern& pattern) const override;
  bool applicationOffload() const override { return true; }
  Time libCallCost() const override { return cfg_.libCallCost; }
  net::NodeId nodeId() const override { return node_; }

  nic::RdmaNic& nic() { return nic_; }
  const nic::RdmaNic& nic() const { return nic_; }
  const RdmaConfig& config() const { return cfg_; }
  /// Messages that missed the hardware match and fell back to host
  /// bounce buffers.
  std::uint64_t unexpectedFallbacks() const { return unexpectedFallbacks_; }

 private:
  /// Unexpected-arrival record (host bounce buffers).
  struct UnexRec {
    WireKind kind = WireKind::Eager;
    mpi::Envelope env;
    Bytes bytes = 0;
    DataBuffer data;           // eager payload (bounce buffer)
    net::NodeId srcNode = -1;  // for addressing the deferred CTS
    std::uint64_t senderHandle = 0;
  };
  /// Rendezvous send awaiting the (hardware-generated) CTS.
  struct PendingTx {
    TxReq req;
  };
  struct Assembly {
    std::uint32_t fragsSeen = 0;
    WireKind kind = WireKind::Eager;
    mpi::Envelope env;
    Bytes bytes = 0;
    std::uint64_t senderHandle = 0;
    std::uint64_t recvHandle = 0;
    DataBuffer data;
  };

  /// NIC-context receive path: hardware assembly + matching, zero host.
  void hwRx(const WirePayload& frag, net::NodeId src);
  /// A fully-assembled message leaves the match unit after matchDelay.
  void hwMessage(Assembly done, net::NodeId src);
  void hwTxDone(std::uint64_t msgId);

  sim::Simulator& sim_;
  host::Cpu& cpu_;
  net::NodeId node_;
  RdmaConfig cfg_;
  nic::RdmaNic nic_;

  mpi::MatchEngine match_;  // models the NIC's hardware match entries
  std::map<std::pair<net::NodeId, std::uint64_t>, Assembly> assembling_;
  std::unordered_map<std::uint64_t, PendingTx> pendingTx_;  // by MPI handle
  std::unordered_map<std::uint64_t, std::uint64_t> txByMsgId_;
  std::unordered_map<std::uint64_t, UnexRec> unexpected_;
  std::uint64_t nextUnexId_ = 1;
  std::uint64_t unexpectedFallbacks_ = 0;
  metrics::Counter& fallbackCounter_;  ///< "rdma.n<id>.unexpected_fallbacks"
};

}  // namespace comb::transport
