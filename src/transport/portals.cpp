#include "transport/portals.hpp"

#include "common/error.hpp"

namespace comb::transport {

PortalsEndpoint::PortalsEndpoint(sim::Simulator& sim, host::Cpu& libCpu,
                                 host::Cpu& kernelCpu, net::Fabric& fabric,
                                 net::NodeId node, PortalsConfig cfg)
    : sim_(sim),
      cpu_(libCpu),
      node_(node),
      cfg_(cfg),
      nic_(sim, fabric, kernelCpu, node, cfg.nic, cfg.rel) {
  initActivity(sim);
  nic_.setRxHandler(
      [this](const WirePayload& frag, net::NodeId src) { kernelRx(frag, src); });
  nic_.setTxDoneHandler([this](std::uint64_t msgId) { kernelTxDone(msgId); });
}

sim::Task<void> PortalsEndpoint::postSend(TxReq req) {
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Protocol, node_, "kernel-send-post",
                   static_cast<double>(req.bytes));
  co_await cpu_.compute(cfg_.postSyscall + cfg_.postKernel);
  const std::uint64_t msgId =
      nic_.sendMessage(req.dstNode, WireKind::Eager, req.env, req.bytes,
                       req.bytes, req.data, req.handle, 0);
  txByMsgId_[msgId] = req.handle;
  // From here the kernel owns the transfer: application offload.
}

void PortalsEndpoint::kernelTxDone(std::uint64_t msgId) {
  const auto it = txByMsgId_.find(msgId);
  COMB_ASSERT(it != txByMsgId_.end(), "tx completion for unknown message");
  const std::uint64_t handle = it->second;
  txByMsgId_.erase(it);
  txDone_(handle);
  signalActivity();
}

void PortalsEndpoint::kernelRx(const WirePayload& frag, net::NodeId src) {
  const auto key = std::pair{src, frag.msgId};
  Assembly& a = assembling_[key];
  if (frag.fragIndex == 0) {
    a.env = frag.env;
    a.bytes = frag.msgBytes;
    a.data = frag.data;
    // Portals matches on the first fragment (kernel match entries).
    if (auto rec = matchK_.matchArrival(frag.env)) {
      COMB_ASSERT(frag.msgBytes <= rec->maxBytes,
                  "message exceeds posted receive buffer");
      a.matched = true;
      a.matchedHandle = rec->cookie;
    }
  }
  if (++a.fragsSeen == frag.fragCount) {
    Assembly done = std::move(a);
    assembling_.erase(key);
    if (!done.matched) {
      // A receive may have been posted while fragments were in flight;
      // the kernel re-checks before declaring the message unexpected.
      if (auto rec = matchK_.matchArrival(done.env)) {
        COMB_ASSERT(done.bytes <= rec->maxBytes,
                    "message exceeds posted receive buffer");
        done.matched = true;
        done.matchedHandle = rec->cookie;
      }
    }
    if (done.matched) {
      if (sim_.tracing())
        sim_.emitTrace(sim::TraceCategory::Protocol, node_, "kernel-match",
                       static_cast<double>(done.bytes));
      rxDone_(done.matchedHandle,
              mpi::Status{done.env.srcRank, done.env.tag, done.bytes},
              done.data);
    } else {
      const std::uint64_t id = nextUnexId_++;
      unexpected_[id] = UnexRec{done.env, done.bytes, done.data};
      matchK_.addUnexpected(done.env, done.bytes, id);
    }
    signalActivity();
  }
}

sim::Task<void> PortalsEndpoint::postRecv(RxReq req) {
  co_await cpu_.compute(cfg_.postSyscall + cfg_.postKernel);
  if (auto u = matchK_.matchUnexpected(req.pattern)) {
    const auto it = unexpected_.find(u->xportHandle);
    COMB_ASSERT(it != unexpected_.end(), "stale unexpected record");
    UnexRec rec = std::move(it->second);
    unexpected_.erase(it);
    COMB_ASSERT(rec.bytes <= req.maxBytes,
                "unexpected message exceeds posted receive buffer");
    // Claiming a kernel-buffered message pays the kernel->user copy here.
    co_await cpu_.compute(static_cast<Time>(rec.bytes) /
                          cfg_.unexpectedCopyRate);
    rxDone_(req.handle, mpi::Status{rec.env.srcRank, rec.env.tag, rec.bytes},
            rec.data);
    signalActivity();
    co_return;
  }
  matchK_.postRecv(req.pattern, req.maxBytes, req.handle);
}

sim::Task<void> PortalsEndpoint::progress() {
  // The kernel progresses communication on its own; a library call only
  // inspects completion state.
  sim::TraceScope span(sim_, sim::TraceCategory::Protocol, node_, "progress");
  co_await cpu_.compute(cfg_.libCallCost);
}

sim::Task<bool> PortalsEndpoint::cancelRecv(std::uint64_t handle) {
  // Unlinking a kernel match entry is a syscall.
  co_await cpu_.compute(cfg_.postSyscall);
  co_return matchK_.cancelRecv(handle);
}

std::optional<mpi::Status> PortalsEndpoint::peekUnexpected(
    const mpi::Pattern& pattern) const {
  if (auto u = matchK_.peekUnexpected(pattern)) {
    return mpi::Status{u->env.srcRank, u->env.tag, u->bytes};
  }
  return std::nullopt;
}

}  // namespace comb::transport
