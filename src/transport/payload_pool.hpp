// Per-NIC recycling pool for WirePayload.
//
// Fragment payloads are the dominant allocation of a running simulation —
// one per packet on every (re)transmission. The pool keeps released
// payloads on a free list so steady-state traffic constructs no new ones:
// releasing the last PayloadRef routes through PayloadBase::releaseSelf
// into the free list instead of the heap.
//
// Lifetime: packets can still be in flight (inside event closures owned
// by the simulator) when the NIC that sent them is destroyed, so pooled
// payloads keep their backing store alive via a shared State — the free
// list outlives the pool object until the last outstanding payload
// returns, at which point everything is reclaimed.
//
// Thread-safety: the free list is mutex-protected. A pool belongs to one
// NIC on one shard, but under the sharded PDES executor the *last*
// reference to a payload is often dropped on the receiving node's shard
// (delivery releases the in-flight ref while the sender's retained copy
// is long gone), so releaseSelf — and therefore the free list — can run
// on a different thread than acquire. The lock is uncontended in serial
// runs and on the acquire path of parallel ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "transport/wire.hpp"

namespace comb::transport {

class WirePayloadPool {
 public:
  WirePayloadPool() : state_(std::make_shared<State>()) {}
  WirePayloadPool(const WirePayloadPool&) = delete;
  WirePayloadPool& operator=(const WirePayloadPool&) = delete;

  /// A default-initialized payload (recycled when possible).
  net::PayloadRef<WirePayload> acquire() {
    Pooled* p = state_->pop();
    if (p != nullptr) {
      p->home = state_;
      static_cast<WireFields&>(*p) = WireFields{};
    } else {
      p = new Pooled(state_);
    }
    return net::PayloadRef<WirePayload>(p);
  }

  /// A payload cloned from `proto`'s wire fields (the per-fragment copy
  /// in the GM transmit path).
  net::PayloadRef<WirePayload> acquire(const WirePayload& proto) {
    auto ref = acquire();
    ref->fields() = proto.fields();
    return ref;
  }

  // --- introspection (tests, benchmarks) ---------------------------------
  std::size_t freeCount() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->free.size();
  }
  std::uint64_t allocated() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->allocated;
  }
  std::uint64_t reused() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reused;
  }

 private:
  struct Pooled;

  struct State {
    mutable std::mutex mu;
    std::vector<Pooled*> free;
    std::uint64_t allocated = 0;
    std::uint64_t reused = 0;

    /// Take a parked payload, or nullptr (counting the miss as a fresh
    /// allocation — the caller then news one).
    Pooled* pop() {
      std::lock_guard<std::mutex> lock(mu);
      if (free.empty()) {
        ++allocated;
        return nullptr;
      }
      Pooled* p = free.back();
      free.pop_back();
      ++reused;
      return p;
    }

    ~State() {
      for (Pooled* p : free) delete p;
    }
  };

  struct Pooled : WirePayload {
    explicit Pooled(std::shared_ptr<State> s) : home(std::move(s)) {}
    /// Keeps the free list alive while this payload is outstanding;
    /// empty while parked on the free list.
    std::shared_ptr<State> home;

   protected:
    void releaseSelf() const override {
      auto* self = const_cast<Pooled*>(this);
      // Drop captured buffers now — a parked payload must not pin data.
      self->data = nullptr;
      // Keep the state alive across the push; if this payload held the
      // last reference (pool already destroyed, last packet drained),
      // ~State runs as `keep` goes out of scope and deletes everything
      // on the free list, including this object.
      std::shared_ptr<State> keep = std::move(self->home);
      {
        std::lock_guard<std::mutex> lock(keep->mu);
        keep->free.push_back(self);
      }
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace comb::transport
