// Per-NIC recycling pool for WirePayload.
//
// Fragment payloads are the dominant allocation of a running simulation —
// one per packet on every (re)transmission. The pool keeps released
// payloads on a free list so steady-state traffic constructs no new ones:
// releasing the last PayloadRef routes through PayloadBase::releaseSelf
// into the free list instead of the heap.
//
// Lifetime: packets can still be in flight (inside event closures owned
// by the Simulator) when the NIC that sent them is destroyed, so pooled
// payloads keep their backing store alive via a shared State — the free
// list outlives the pool object until the last outstanding payload
// returns, at which point everything is reclaimed.
//
// Thread-safety: none, by design — a pool belongs to one NIC inside one
// Simulator, which is single-threaded (the parallel sweep executor runs
// whole simulations per worker, never sharing one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "transport/wire.hpp"

namespace comb::transport {

class WirePayloadPool {
 public:
  WirePayloadPool() : state_(std::make_shared<State>()) {}
  WirePayloadPool(const WirePayloadPool&) = delete;
  WirePayloadPool& operator=(const WirePayloadPool&) = delete;

  /// A default-initialized payload (recycled when possible).
  net::PayloadRef<WirePayload> acquire() {
    Pooled* p;
    if (!state_->free.empty()) {
      p = state_->free.back();
      state_->free.pop_back();
      p->home = state_;
      static_cast<WireFields&>(*p) = WireFields{};
      ++state_->reused;
    } else {
      p = new Pooled(state_);
      ++state_->allocated;
    }
    return net::PayloadRef<WirePayload>(p);
  }

  /// A payload cloned from `proto`'s wire fields (the per-fragment copy
  /// in the GM transmit path).
  net::PayloadRef<WirePayload> acquire(const WirePayload& proto) {
    auto ref = acquire();
    ref->fields() = proto.fields();
    return ref;
  }

  // --- introspection (tests, benchmarks) ---------------------------------
  std::size_t freeCount() const { return state_->free.size(); }
  std::uint64_t allocated() const { return state_->allocated; }
  std::uint64_t reused() const { return state_->reused; }

 private:
  struct Pooled;

  struct State {
    std::vector<Pooled*> free;
    std::uint64_t allocated = 0;
    std::uint64_t reused = 0;
    ~State() {
      for (Pooled* p : free) delete p;
    }
  };

  struct Pooled : WirePayload {
    explicit Pooled(std::shared_ptr<State> s) : home(std::move(s)) {}
    /// Keeps the free list alive while this payload is outstanding;
    /// empty while parked on the free list.
    std::shared_ptr<State> home;

   protected:
    void releaseSelf() const override {
      auto* self = const_cast<Pooled*>(this);
      // Drop captured buffers now — a parked payload must not pin data.
      self->data = nullptr;
      // Keep the state alive across the push; if this payload held the
      // last reference (pool already destroyed, last packet drained),
      // ~State runs as `keep` goes out of scope and deletes everything
      // on the free list, including this object.
      std::shared_ptr<State> keep = std::move(self->home);
      keep->free.push_back(self);
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace comb::transport
