#include "common/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  COMB_REQUIRE(hi > lo, "histogram range must be non-empty");
  COMB_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0u);
  underflow_ = overflow_ = total_ = 0;
}

bool Histogram::sameLayout(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  if (sameLayout(other)) {
    for (std::size_t b = 0; b < counts_.size(); ++b)
      counts_[b] += other.counts_[b];
    return;
  }
  // Rebucket: midpoint attribution keeps the merge deterministic and
  // count-preserving; resolution is bounded by the coarser layout.
  for (std::size_t b = 0; b < other.counts_.size(); ++b) {
    const std::size_t c = other.counts_[b];
    if (c == 0) continue;
    const double mid = 0.5 * (other.binLow(b) + other.binHigh(b));
    if (mid < lo_) {
      underflow_ += c;
    } else if (mid >= hi_) {
      overflow_ += c;
    } else {
      const double t = (mid - lo_) / (hi_ - lo_);
      auto bin =
          static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
      bin = std::min(bin, counts_.size() - 1);
      counts_[bin] += c;
    }
  }
}

double Histogram::binLow(std::size_t bin) const {
  COMB_ASSERT(bin < counts_.size(), "histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::binHigh(std::size_t bin) const {
  return binLow(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::str(std::size_t maxBarWidth) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * maxBarWidth / peak;
    os << strFormat("[%11.4g, %11.4g) %8zu ", binLow(b), binHigh(b),
                    counts_[b])
       << std::string(bar, '#') << '\n';
  }
  if (underflow_ || overflow_)
    os << strFormat("underflow %zu, overflow %zu\n", underflow_, overflow_);
  return os.str();
}

}  // namespace comb
