// Minimal leveled logger.
//
// COMB is a benchmark: logging must never perturb measurement, so the
// logger formats lazily (the stream expression is only evaluated when the
// level is enabled) and writes to stderr only.
//
// Usage:
//   COMB_LOG(Info) << "cluster up, nodes=" << n;
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace comb::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Global threshold; messages below it are discarded. Defaults to Warn so
/// benchmark output stays clean. Override via setLevel() or the
/// COMB_LOG_LEVEL environment variable (trace|debug|info|warn|error|off),
/// which is read once on first use.
Level level();
void setLevel(Level lvl);

/// Parse a level name; throws comb::ConfigError on unknown names.
Level parseLevel(const std::string& name);
const char* levelName(Level lvl);

/// A sink receives one fully formatted message (no trailing newline
/// handling required — the newline is already appended). The logger is
/// safe to use from concurrent threads: each message is delivered to the
/// sink as a single call under the logger's lock, so messages never
/// interleave; *order* across threads follows completion order.
using Sink = std::function<void(Level, const std::string&)>;

/// Replace the sink (nullptr restores the default stderr writer).
/// Thread-safe; intended for tests and embedders that capture logs.
void setSink(Sink sink);

namespace detail {

/// Deliver a finished message to the current sink under the logger lock.
void emit(Level lvl, const std::string& text);

class Message {
 public:
  Message(Level lvl, const char* file, int line);
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  ~Message();

  template <typename T>
  Message& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace comb::log

#define COMB_LOG(lvl)                                             \
  if (::comb::log::Level::lvl < ::comb::log::level()) {           \
  } else                                                          \
    ::comb::log::detail::Message(::comb::log::Level::lvl, __FILE__, __LINE__)
