// Minimal leveled logger.
//
// COMB is a benchmark: logging must never perturb measurement, so the
// logger formats lazily (the stream expression is only evaluated when the
// level is enabled) and writes to stderr only.
//
// Usage:
//   COMB_LOG(Info) << "cluster up, nodes=" << n;
#pragma once

#include <sstream>
#include <string>

namespace comb::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Global threshold; messages below it are discarded. Defaults to Warn so
/// benchmark output stays clean. Override via setLevel() or the
/// COMB_LOG_LEVEL environment variable (trace|debug|info|warn|error|off),
/// which is read once on first use.
Level level();
void setLevel(Level lvl);

/// Parse a level name; throws comb::ConfigError on unknown names.
Level parseLevel(const std::string& name);
const char* levelName(Level lvl);

namespace detail {

class Message {
 public:
  Message(Level lvl, const char* file, int line);
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  ~Message();

  template <typename T>
  Message& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace comb::log

#define COMB_LOG(lvl)                                             \
  if (::comb::log::Level::lvl < ::comb::log::level()) {           \
  } else                                                          \
    ::comb::log::detail::Message(::comb::log::Level::lvl, __FILE__, __LINE__)
