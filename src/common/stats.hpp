// Streaming and batch statistics used by the measurement layer, plus the
// robust estimators, bootstrap confidence intervals, rank test and
// adaptive-repetition controller behind the regression gate (see
// docs/regression_gating.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace comb {

/// Numerically stable streaming moments (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set via linear interpolation between closest
/// ranks (the common "type 7" estimator). `q` in [0, 1]. The input span is
/// copied; callers with pre-sorted data should use percentileSorted.
double percentile(std::span<const double> xs, double q);
double percentileSorted(std::span<const double> sorted, double q);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

/// Least-squares fit y = a + b*x. Returns {a, b}. Requires >= 2 points.
///
/// Degenerate-input convention: when all x are equal ("vertical" data)
/// the slope is undefined; the fit reports the flat line through the mean
/// (slope = 0, intercept = mean(y)) with `degenerate = true` and r2 = 0 —
/// the fit explains none of the y variance. A genuinely flat input (all y
/// equal, x varying) is a perfect fit: slope = 0, r2 = 1, not degenerate.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]. Explicitly 0 for degenerate
  /// (vertical) input, 1 for an exact fit.
  double r2 = 0.0;
  /// True when the slope was undefined (all x equal) and the flat-line
  /// convention above was applied.
  bool degenerate = false;
};
LinearFit linearFit(std::span<const double> xs, std::span<const double> ys);

/// Symmetrically trimmed mean: drop floor(trimFrac * n) samples from each
/// tail, average the rest. `trimFrac` in [0, 0.5); trimFrac = 0 is the
/// plain mean. Rejects empty and non-finite input.
double trimmedMean(std::span<const double> xs, double trimFrac = 0.1);

/// Median absolute deviation from the median (raw, unscaled). Multiply by
/// kMadToSigma for a robust stddev estimate under normality.
double mad(std::span<const double> xs);

/// 1 / Phi^-1(3/4): scales the MAD to a consistent sigma estimator.
inline constexpr double kMadToSigma = 1.4826;

// ---------------------------------------------------------------------------
// Bootstrap confidence intervals (deterministic, seeded)
// ---------------------------------------------------------------------------

struct BootstrapOptions {
  /// Two-sided confidence level in (0, 1).
  double level = 0.95;
  /// Bootstrap resamples; more = smoother interval, linearly more work.
  std::size_t resamples = 200;
  /// Seed for the resampling stream (common/rng.hpp xoshiro; the interval
  /// is bit-reproducible for a fixed seed on every platform).
  std::uint64_t seed = 0xC04Bu;
};

struct BootstrapCi {
  double estimate = 0.0;  ///< statistic on the full sample
  double lo = 0.0;        ///< percentile-bootstrap lower bound
  double hi = 0.0;        ///< percentile-bootstrap upper bound
  double level = 0.95;
  std::size_t resamples = 0;

  double halfWidth() const { return (hi - lo) / 2.0; }
  /// Half-width relative to |estimate|; 0 when the interval is degenerate,
  /// +inf when the estimate is 0 but the interval is not.
  double relHalfWidth() const;
  /// True when [lo, hi] and [other.lo, other.hi] share no point.
  bool disjointFrom(const BootstrapCi& other) const {
    return hi < other.lo || other.hi < lo;
  }
};

/// Percentile-bootstrap CI for the mean. n = 1 yields the degenerate
/// interval [x, x]; n = 0 and non-finite samples are rejected.
BootstrapCi bootstrapMeanCi(std::span<const double> xs,
                            const BootstrapOptions& opts = {});

// ---------------------------------------------------------------------------
// Mann-Whitney U rank test
// ---------------------------------------------------------------------------

struct MannWhitneyResult {
  double u = 0.0;       ///< U statistic for the first sample
  double z = 0.0;       ///< normal approximation z-score (tie-corrected)
  double pValue = 1.0;  ///< two-sided p (1.0 when no decision is possible)
  /// False when the samples are too small or tie-degenerate for the
  /// normal approximation to mean anything (callers should fall back to a
  /// deterministic tolerance check).
  bool usable = false;
};

/// Two-sided Mann-Whitney U ("are these two samples drawn from the same
/// distribution?") with tie correction and continuity correction. The
/// normal approximation needs a handful of samples per side; below
/// `kMannWhitneyMinN` per group the result is marked not usable.
inline constexpr std::size_t kMannWhitneyMinN = 4;
MannWhitneyResult mannWhitneyU(std::span<const double> a,
                               std::span<const double> b);

// ---------------------------------------------------------------------------
// Adaptive repetition controller
// ---------------------------------------------------------------------------

/// Stop-rule configuration: run repetitions until the relative bootstrap-CI
/// half-width of the watched metric drops to `ciTarget`, or `maxReps` is
/// spent. At least `minReps` always run so the interval is meaningful.
struct AdaptiveRepPolicy {
  int minReps = 3;
  int maxReps = 20;
  double ciTarget = 0.05;  ///< relative CI half-width to stop at
  double ciLevel = 0.95;
  std::size_t resamples = 200;
  std::uint64_t seed = 0xC04Bu;
};

/// Feed one sample per repetition; `wantMore()` is the loop condition.
/// Deterministic: the bootstrap stream is reseeded from the policy seed at
/// every decision, so the rep count depends only on (policy, samples).
class AdaptiveRep {
 public:
  explicit AdaptiveRep(AdaptiveRepPolicy policy);

  void add(double sample);
  /// True until the CI target is hit (after minReps) or maxReps is spent.
  bool wantMore() const;
  /// True when the stop was (or would be) due to hitting the CI target.
  bool converged() const;
  /// True when maxReps was spent without reaching the target.
  bool exhausted() const { return !wantMore() && !converged(); }

  const std::vector<double>& samples() const { return samples_; }
  /// CI over the samples so far (requires at least one sample).
  BootstrapCi ci() const;
  const AdaptiveRepPolicy& policy() const { return policy_; }

 private:
  AdaptiveRepPolicy policy_;
  std::vector<double> samples_;
};

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double relDiff(double a, double b);

/// True when `a` and `b` agree within relative tolerance `rtol` or
/// absolute tolerance `atol`.
bool approxEqual(double a, double b, double rtol = 1e-9, double atol = 0.0);

}  // namespace comb
