// Streaming and batch statistics used by the measurement layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace comb {

/// Numerically stable streaming moments (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set via linear interpolation between closest
/// ranks (the common "type 7" estimator). `q` in [0, 1]. The input span is
/// copied; callers with pre-sorted data should use percentileSorted.
double percentile(std::span<const double> xs, double q);
double percentileSorted(std::span<const double> sorted, double q);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

/// Least-squares fit y = a + b*x. Returns {a, b}. Requires >= 2 points.
///
/// Degenerate-input convention: when all x are equal ("vertical" data)
/// the slope is undefined; the fit reports the flat line through the mean
/// (slope = 0, intercept = mean(y)) with `degenerate = true` and r2 = 0 —
/// the fit explains none of the y variance. A genuinely flat input (all y
/// equal, x varying) is a perfect fit: slope = 0, r2 = 1, not degenerate.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]. Explicitly 0 for degenerate
  /// (vertical) input, 1 for an exact fit.
  double r2 = 0.0;
  /// True when the slope was undefined (all x equal) and the flat-line
  /// convention above was applied.
  bool degenerate = false;
};
LinearFit linearFit(std::span<const double> xs, std::span<const double> ys);

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double relDiff(double a, double b);

/// True when `a` and `b` agree within relative tolerance `rtol` or
/// absolute tolerance `atol`.
bool approxEqual(double a, double b, double rtol = 1e-9, double atol = 0.0);

}  // namespace comb
