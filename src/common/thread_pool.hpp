// Fixed-size worker-thread pool and an indexed parallel-for built on it.
//
// COMB sweeps are embarrassingly parallel: every measurement point owns a
// complete simulated machine (see comb/runner.hpp), so points share no
// mutable state and can run on host threads concurrently without changing
// their results. This header provides the host-side machinery: a small
// pool of `std::thread` workers draining a FIFO job queue, plus
// `parallelFor`, which runs `body(0..n-1)` across the pool, preserves the
// by-index meaning of results (callers write into a preallocated slot per
// index), and rethrows the lowest-index exception on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comb {

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Waits for queued jobs to finish, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not throw out of the callable unhandled —
  /// wrap and capture (parallelFor does this for its bodies).
  void submit(std::function<void()> job);

  /// Block until every job submitted so far has completed.
  void wait();

  int threadCount() const { return static_cast<int>(workers_.size()); }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable jobReady_;   // workers: queue non-empty or stopping
  std::condition_variable allIdle_;    // wait(): queue empty and none active
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// std::thread::hardware_concurrency() clamped to at least 1 (the standard
/// allows it to return 0 when unknown).
int hardwareJobs();

/// Run `body(i)` for i in [0, n) using up to `jobs` worker threads.
///
/// * jobs <= 1 (or n <= 1): serial in-order execution on the calling
///   thread — the exact legacy code path, no pool is created.
/// * Indices are dispatched in increasing order; completion order is
///   unspecified, so bodies must only touch their own index's state.
/// * If bodies throw, the exception thrown by the lowest index is
///   rethrown on the calling thread after all bodies have finished
///   (deterministic regardless of scheduling); the others are dropped.
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& body);

}  // namespace comb
