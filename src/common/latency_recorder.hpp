// HDR-style log-bucketed latency recorder for the simulator hot path.
//
// A recorder is a fixed array of integer counters over a *global* bucket
// layout (log-linear over nanosecond ticks: 64 exact one-tick buckets,
// then 32 sub-buckets per octave, ~3% relative resolution up to 2^63 ns).
// Because every recorder shares the same layout, merging two recorders —
// or the per-shard snapshots the sharded executor produces — is pure
// element-wise count addition: commutative, associative, and therefore
// independent of shard count and merge order. That is what makes
// `--sim-jobs 1` and `--sim-jobs N` produce byte-identical latency
// distributions.
//
// record() is integer math on a preallocated array: no allocation, no
// floating-point accumulation (the sum is kept in exact ticks), safe for
// per-message use inside the allocation-free steady state enforced by
// test_executor_alloc / test_latency_recorder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comb {

/// Percentile summary of one recorder, in seconds. `count == 0` means no
/// samples were recorded and every field is zero.
struct TailSummary {
  std::uint64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
};

class LatencyRecorder {
 public:
  /// One tick = 1 ns. Values below one tick land in bucket 0; the top
  /// bucket absorbs everything past ~292 years.
  static constexpr std::uint64_t kTicksPerSecond = 1000000000ull;
  /// Octaves above the linear region get kSub/2 = 32 sub-buckets each
  /// (the leading bit is implicit): ~1/32 relative bucket width.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;

  /// Total bucket count of the global layout.
  static std::size_t bucketCount();
  /// Bucket index for a tick value (pure function of the global layout).
  static std::size_t bucketFor(std::uint64_t ticks);
  /// Inclusive lower / exclusive upper tick bound of a bucket.
  static std::uint64_t bucketLowTicks(std::size_t bucket);
  static std::uint64_t bucketHighTicks(std::size_t bucket);

  LatencyRecorder();

  /// Record one latency in seconds. Negative values clamp to zero.
  void record(double seconds) { recordTicks(toTicks(seconds)); }
  /// Record one latency in integer nanosecond ticks. Zero-allocation.
  void recordTicks(std::uint64_t ticks);

  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t sumTicks() const { return sumTicks_; }
  std::uint64_t minTicks() const { return count_ ? minTicks_ : 0; }
  std::uint64_t maxTicks() const { return maxTicks_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Quantile in seconds, estimated from the bucket containing the
  /// ceil(q * count)-th sample (bucket midpoint, exact for one-tick
  /// buckets). Deterministic; 0 when empty.
  double quantile(double q) const;
  double meanSeconds() const;
  TailSummary tail() const;

  /// Seconds -> ticks, round-to-nearest, clamped at zero.
  static std::uint64_t toTicks(double seconds);
  static double ticksToSeconds(std::uint64_t ticks) {
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerSecond);
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sumTicks_ = 0;
  std::uint64_t minTicks_ = 0;
  std::uint64_t maxTicks_ = 0;
};

/// Quantile over a raw bucket-count vector in the global layout (used by
/// snapshot merging, where only the counts survive). `count` is the total
/// number of samples in `buckets`.
double latencyQuantileTicks(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, double q);

/// Summary over raw merged state (counts + exact tick aggregates).
TailSummary latencyTail(const std::vector<std::uint64_t>& buckets,
                        std::uint64_t count, std::uint64_t sumTicks,
                        std::uint64_t minTicks, std::uint64_t maxTicks);

}  // namespace comb
