#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  COMB_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TextTable::addRow(std::vector<std::string> fields) {
  COMB_REQUIRE(fields.size() == header_.size(),
               strFormat("table row arity %zu != header arity %zu",
                         fields.size(), header_.size()));
  rows_.push_back(std::move(fields));
}

void TextTable::addRowNumeric(const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(strFormat("%.*g", precision, v));
  addRow(std::move(fields));
}

void TextTable::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = widths[c] - row[c].size();
      if (align_ == Align::Right) out << std::string(pad, ' ');
      out << row[c];
      if (align_ == Align::Left && c + 1 < row.size())
        out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << "  ";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emitRow(row);
}

std::string TextTable::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace comb
