// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we
// carry our own generator (xoshiro256**, public domain algorithm by
// Blackman & Vigna) instead of relying on implementation-defined
// std::default_random_engine behaviour.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.hpp"

namespace comb {

/// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  static constexpr std::uint64_t kDefaultSeed = 0xC04Bu;  // "COMB"

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) {
    COMB_ASSERT(n > 0, "Rng::below(0)");
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ull - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    COMB_ASSERT(lo <= hi, "Rng::between: lo > hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fork a statistically independent child stream (seeded from this one).
  Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace comb
