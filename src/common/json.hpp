// A minimal JSON reader for the result-archive and baseline files the
// suite itself writes (report/archive, BENCH_sim_core.json).
//
// Parsing is strict RFC 8259: unknown escapes, trailing commas, bare
// values after the document, or non-finite numbers are hard errors
// (comb::ConfigError) with a line/column position — a regression gate
// must never silently accept a truncated archive. Writing stays with the
// modules that own each schema; this header is read-only on purpose.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace comb::json {

/// One parsed JSON value. Object member order is not preserved (archives
/// address members by name); duplicate keys are rejected at parse time.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw comb::ConfigError on a kind mismatch so schema
  /// errors surface as configuration problems, not crashes.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const std::vector<Value>& array() const;

  /// Object member by name; `at` throws on a missing member, `find`
  /// returns nullptr.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;
  /// All object members in key order.
  const std::map<std::string, Value>& members() const;

  std::size_t size() const;

  // Construction (used by the parser and by tests).
  static Value makeNull() { return Value(); }
  static Value makeBool(bool b);
  static Value makeNumber(double d);
  static Value makeString(std::string s);
  static Value makeArray(std::vector<Value> xs);
  static Value makeObject(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parse a complete JSON document. `sourceName` is used in error
/// messages ("archive.json:3:17: ..."). Throws comb::ConfigError.
Value parse(std::string_view text, const std::string& sourceName = "<json>");

/// Parse the full contents of a file.
Value parseFile(const std::string& path);

/// Escape a string for embedding in emitted JSON (quotes not included).
std::string escape(std::string_view s);

}  // namespace comb::json
