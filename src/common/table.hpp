// Aligned plain-text tables for benchmark terminal output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace comb {

/// Collects rows, then renders with per-column width alignment:
///
///   poll_interval  bandwidth_MBps  availability
///   -------------  --------------  ------------
///           1e+04           55.92         0.113
class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> fields);
  void addRowNumeric(const std::vector<double>& values, int precision = 4);

  /// Column alignment; numeric tables read best right-aligned (default).
  void setAlign(Align a) { align_ = a; }

  std::size_t rowCount() const { return rows_.size(); }

  void render(std::ostream& out) const;
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  Align align_ = Align::Right;
};

}  // namespace comb
