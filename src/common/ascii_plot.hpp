// Terminal line plots so every paper figure can be eyeballed without
// leaving the shell. Supports multiple series, linear or log10 axes, a
// legend, and axis tick labels — enough to recognise the *shape* of each
// COMB figure (plateaus, knees, crossovers).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace comb {

struct PlotSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

struct PlotOptions {
  int width = 72;    ///< plot area columns (excluding axis labels)
  int height = 20;   ///< plot area rows
  bool logX = false;
  bool logY = false;
  std::string xlabel;
  std::string ylabel;
  std::string title;
  /// Clamp the y range; NaN means auto-fit to the data.
  double ymin = kAuto;
  double ymax = kAuto;
  static constexpr double kAuto = -1e308;
};

/// Render series as an ASCII scatter/line chart. Each series gets a marker
/// from "ox+*#@%&"; overlapping points show the later series' marker.
/// Non-finite and (for log axes) non-positive samples are skipped.
void renderPlot(std::ostream& out, const std::vector<PlotSeries>& series,
                const PlotOptions& opts);

std::string plotToString(const std::vector<PlotSeries>& series,
                         const PlotOptions& opts);

}  // namespace comb
