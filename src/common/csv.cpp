#include "common/csv.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  COMB_REQUIRE(!header.empty(), "CSV header must not be empty");
  writeLine(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  COMB_REQUIRE(fields.size() == arity_,
               strFormat("CSV row arity %zu != header arity %zu",
                         fields.size(), arity_));
  writeLine(fields);
  ++rows_;
}

void CsvWriter::rowNumeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(strFormat("%.*g", precision, v));
  row(fields);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needsQuoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::writeLine(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace comb
