#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb {

namespace {

constexpr const char* kMarkers = "ox+*#@%&";

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void widen(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
};

double axisValue(double v, bool log) { return log ? std::log10(v) : v; }

bool usable(double v, bool log) {
  return std::isfinite(v) && (!log || v > 0.0);
}

std::string tickLabel(double axisVal, bool log) {
  const double v = log ? std::pow(10.0, axisVal) : axisVal;
  if (log) return strFormat("%.0e", v);
  if (v != 0.0 && (std::fabs(v) >= 1e5 || std::fabs(v) < 1e-3))
    return strFormat("%.1e", v);
  return strFormat("%.3g", v);
}

}  // namespace

void renderPlot(std::ostream& out, const std::vector<PlotSeries>& series,
                const PlotOptions& opts) {
  COMB_REQUIRE(opts.width >= 16 && opts.height >= 4,
               "plot area too small to render");

  Range xr, yr;
  for (const auto& s : series) {
    COMB_REQUIRE(s.xs.size() == s.ys.size(),
                 "plot series x/y length mismatch: " + s.name);
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!usable(s.xs[i], opts.logX) || !usable(s.ys[i], opts.logY)) continue;
      xr.widen(axisValue(s.xs[i], opts.logX));
      yr.widen(axisValue(s.ys[i], opts.logY));
    }
  }
  if (opts.ymin != PlotOptions::kAuto) yr.lo = axisValue(opts.ymin, opts.logY);
  if (opts.ymax != PlotOptions::kAuto) yr.hi = axisValue(opts.ymax, opts.logY);

  if (!xr.valid() || !yr.valid()) {
    out << "(no plottable data)\n";
    return;
  }
  // Degenerate ranges still deserve a plot: pad them symmetrically.
  if (xr.hi == xr.lo) {
    xr.lo -= 0.5;
    xr.hi += 0.5;
  }
  if (yr.hi == yr.lo) {
    yr.lo -= 0.5;
    yr.hi += 0.5;
  }

  const int w = opts.width;
  const int h = opts.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto toCol = [&](double ax) {
    const double t = (ax - xr.lo) / (xr.hi - xr.lo);
    return std::clamp(static_cast<int>(std::lround(t * (w - 1))), 0, w - 1);
  };
  auto toRow = [&](double ay) {
    const double t = (ay - yr.lo) / (yr.hi - yr.lo);
    return std::clamp(static_cast<int>(std::lround((1.0 - t) * (h - 1))), 0,
                      h - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % std::string_view(kMarkers).size()];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!usable(s.xs[i], opts.logX) || !usable(s.ys[i], opts.logY)) continue;
      const double ay = axisValue(s.ys[i], opts.logY);
      if (ay < yr.lo || ay > yr.hi) continue;
      grid[static_cast<std::size_t>(toRow(ay))]
          [static_cast<std::size_t>(toCol(axisValue(s.xs[i], opts.logX)))] =
              mark;
    }
  }

  if (!opts.title.empty()) out << opts.title << '\n';
  if (!opts.ylabel.empty()) out << opts.ylabel << '\n';

  const std::string yTop = tickLabel(yr.hi, opts.logY);
  const std::string yMid = tickLabel((yr.hi + yr.lo) / 2.0, opts.logY);
  const std::string yBot = tickLabel(yr.lo, opts.logY);
  const std::size_t gutter =
      std::max({yTop.size(), yMid.size(), yBot.size()}) + 1;

  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = yTop;
    else if (r == h / 2) label = yMid;
    else if (r == h - 1) label = yBot;
    out << std::string(gutter - label.size(), ' ') << label << '|'
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(gutter, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << '\n';

  const std::string xLo = tickLabel(xr.lo, opts.logX);
  const std::string xMid = tickLabel((xr.lo + xr.hi) / 2.0, opts.logX);
  const std::string xHi = tickLabel(xr.hi, opts.logX);
  std::string xAxis(gutter + 1 + static_cast<std::size_t>(w), ' ');
  auto place = [&](std::size_t col, const std::string& s) {
    for (std::size_t i = 0; i < s.size() && col + i < xAxis.size(); ++i)
      xAxis[col + i] = s[i];
  };
  place(gutter + 1, xLo);
  place(gutter + 1 + static_cast<std::size_t>(w) / 2 - xMid.size() / 2, xMid);
  place(gutter + 1 + static_cast<std::size_t>(w) - xHi.size(), xHi);
  out << xAxis << '\n';
  if (!opts.xlabel.empty())
    out << std::string(gutter + 1, ' ') << opts.xlabel
        << (opts.logX ? " (log scale)" : "") << '\n';

  out << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si)
    out << "  " << kMarkers[si % std::string_view(kMarkers).size()] << " = "
        << series[si].name;
  out << '\n';
}

std::string plotToString(const std::vector<PlotSeries>& series,
                         const PlotOptions& opts) {
  std::ostringstream os;
  renderPlot(os, series, opts);
  return os.str();
}

}  // namespace comb
