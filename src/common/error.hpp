// Error handling primitives shared by every COMB module.
//
// COMB distinguishes programmer errors (violated invariants, checked with
// COMB_ASSERT, fatal) from user/configuration errors (reported by throwing
// comb::Error so callers and tests can react).
#pragma once

#include <stdexcept>
#include <string>

namespace comb {

/// Base exception for all recoverable COMB errors (bad configuration,
/// malformed input, misuse of the public API).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation entity is driven outside its legal protocol
/// (e.g. completing a DMA that was never started).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Thrown for invalid user-supplied configuration values.
class ConfigError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] void assertFailed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace comb

/// Always-on invariant check. COMB is a measurement tool: silently wrong
/// accounting is worse than a crash, so these stay enabled in release builds.
#define COMB_ASSERT(expr, msg)                                \
  do {                                                        \
    if (!(expr)) [[unlikely]] {                               \
      ::comb::assertFailed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                         \
  } while (0)

/// Validate a user-facing precondition; throws comb::ConfigError.
#define COMB_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      throw ::comb::ConfigError(std::string("requirement failed: ") + \
                                (msg));                               \
    }                                                                 \
  } while (0)
