// A small command-line parser for the bench and example binaries.
//
// Supports `--flag`, `--opt value` and `--opt=value`; typed accessors with
// defaults; and an auto-generated `--help`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace comb {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare a boolean flag (present/absent).
  void addFlag(const std::string& name, const std::string& help);
  /// Declare an option that takes a value; `def` is rendered in --help.
  void addOption(const std::string& name, const std::string& help,
                 const std::string& def);

  /// Parse argv. Returns false if --help was requested (help printed to
  /// stdout); throws comb::ConfigError on unknown or malformed arguments.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  /// True when the user passed the option/flag explicitly (vs default).
  bool given(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string helpText() const;

 private:
  struct Spec {
    std::string help;
    bool isFlag = false;
    std::string def;
  };

  const Spec& specFor(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
};

}  // namespace comb
