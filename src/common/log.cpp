#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace comb {

void assertFailed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::fprintf(stderr, "COMB_ASSERT failed: %s at %s:%d: %s\n", expr, file,
               line, msg.c_str());
  std::abort();
}

}  // namespace comb

namespace comb::log {

namespace {

Level initialLevel() {
  if (const char* env = std::getenv("COMB_LOG_LEVEL")) {
    try {
      return parseLevel(env);
    } catch (const Error&) {
      std::fprintf(stderr, "COMB: ignoring invalid COMB_LOG_LEVEL=%s\n", env);
    }
  }
  return Level::Warn;
}

std::atomic<Level>& levelRef() {
  static std::atomic<Level> lvl{initialLevel()};
  return lvl;
}

// One lock guards both the sink pointer and delivery, so a message is
// always handed to a coherent sink and concurrent messages never
// interleave (sweep workers log from pool threads, see thread_pool.hpp).
std::mutex& sinkMutex() {
  static std::mutex mu;
  return mu;
}

Sink& sinkRef() {
  static Sink sink;  // empty => default stderr writer
  return sink;
}

}  // namespace

Level level() { return levelRef().load(std::memory_order_relaxed); }

void setLevel(Level lvl) { levelRef().store(lvl, std::memory_order_relaxed); }

void setSink(Sink sink) {
  std::lock_guard<std::mutex> lock(sinkMutex());
  sinkRef() = std::move(sink);
}

Level parseLevel(const std::string& name) {
  if (name == "trace") return Level::Trace;
  if (name == "debug") return Level::Debug;
  if (name == "info") return Level::Info;
  if (name == "warn") return Level::Warn;
  if (name == "error") return Level::Error;
  if (name == "off") return Level::Off;
  throw ConfigError("unknown log level: " + name);
}

const char* levelName(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

namespace detail {

void emit(Level lvl, const std::string& text) {
  std::lock_guard<std::mutex> lock(sinkMutex());
  if (Sink& sink = sinkRef()) {
    sink(lvl, text);
  } else {
    std::fputs(text.c_str(), stderr);
  }
}

Message::Message(Level lvl, const char* file, int line) : lvl_(lvl) {
  // Keep only the basename: full paths add noise without information.
  const char* base = std::strrchr(file, '/');
  stream_ << '[' << levelName(lvl) << "] " << (base ? base + 1 : file) << ':'
          << line << ": ";
}

Message::~Message() {
  stream_ << '\n';
  emit(lvl_, stream_.str());
}

}  // namespace detail
}  // namespace comb::log
