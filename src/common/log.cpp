#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace comb {

void assertFailed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::fprintf(stderr, "COMB_ASSERT failed: %s at %s:%d: %s\n", expr, file,
               line, msg.c_str());
  std::abort();
}

}  // namespace comb

namespace comb::log {

namespace {

Level initialLevel() {
  if (const char* env = std::getenv("COMB_LOG_LEVEL")) {
    try {
      return parseLevel(env);
    } catch (const Error&) {
      std::fprintf(stderr, "COMB: ignoring invalid COMB_LOG_LEVEL=%s\n", env);
    }
  }
  return Level::Warn;
}

std::atomic<Level>& levelRef() {
  static std::atomic<Level> lvl{initialLevel()};
  return lvl;
}

}  // namespace

Level level() { return levelRef().load(std::memory_order_relaxed); }

void setLevel(Level lvl) { levelRef().store(lvl, std::memory_order_relaxed); }

Level parseLevel(const std::string& name) {
  if (name == "trace") return Level::Trace;
  if (name == "debug") return Level::Debug;
  if (name == "info") return Level::Info;
  if (name == "warn") return Level::Warn;
  if (name == "error") return Level::Error;
  if (name == "off") return Level::Off;
  throw ConfigError("unknown log level: " + name);
}

const char* levelName(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

namespace detail {

Message::Message(Level lvl, const char* file, int line) : lvl_(lvl) {
  // Keep only the basename: full paths add noise without information.
  const char* base = std::strrchr(file, '/');
  stream_ << '[' << levelName(lvl) << "] " << (base ? base + 1 : file) << ':'
          << line << ": ";
}

Message::~Message() {
  stream_ << '\n';
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace detail
}  // namespace comb::log
