// Fixed-bin histogram used by the trace/analysis layer (e.g. distribution
// of interrupt service times or per-message wait durations).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace comb {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples outside land in the two overflow
  /// counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void clear();

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// True when `other` has the same [lo, hi) range and bin count, i.e.
  /// bin-wise addition is meaningful.
  bool sameLayout(const Histogram& other) const;

  /// Fold `other` into this histogram. Identical layouts add bin-wise
  /// (exact). Mismatched layouts are rebucketed: each source bin's count
  /// is attributed to the destination bin containing the source bin's
  /// midpoint (deterministic, count-preserving; source samples outside
  /// this range land in under/overflow). Under/overflow and totals
  /// always accumulate.
  void merge(const Histogram& other);

  /// Render a horizontal bar chart.
  std::string str(std::size_t maxBarWidth = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace comb
