#include "common/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace comb {

std::string strFormat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string fmtDouble(double v, int prec) {
  return strFormat("%.*f", prec, v);
}

std::string fmtBytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKB = 1024;
  constexpr std::uint64_t kMB = 1024 * 1024;
  constexpr std::uint64_t kGB = 1024ull * 1024ull * 1024ull;
  if (bytes >= kGB && bytes % kGB == 0)
    return strFormat("%llu GB", static_cast<unsigned long long>(bytes / kGB));
  if (bytes >= kMB && bytes % kMB == 0)
    return strFormat("%llu MB", static_cast<unsigned long long>(bytes / kMB));
  if (bytes >= kKB && bytes % kKB == 0)
    return strFormat("%llu KB", static_cast<unsigned long long>(bytes / kKB));
  return strFormat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string fmtTime(double seconds) {
  const double a = std::fabs(seconds);
  if (a >= 1.0) return strFormat("%.3f s", seconds);
  if (a >= 1e-3) return strFormat("%.3f ms", seconds * 1e3);
  if (a >= 1e-6) return strFormat("%.3f us", seconds * 1e6);
  return strFormat("%.1f ns", seconds * 1e9);
}

}  // namespace comb
