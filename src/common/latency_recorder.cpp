#include "common/latency_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace comb {

namespace {

constexpr std::uint64_t kHalfSub = LatencyRecorder::kSub / 2;
// Octaves above the linear region: values with bit_width in
// (kSubBits, 64] each get kHalfSub sub-buckets.
constexpr unsigned kOctaves = 64 - LatencyRecorder::kSubBits;

}  // namespace

std::size_t LatencyRecorder::bucketCount() {
  return static_cast<std::size_t>(kSub + kOctaves * kHalfSub);
}

std::size_t LatencyRecorder::bucketFor(std::uint64_t ticks) {
  if (ticks < kSub) return static_cast<std::size_t>(ticks);
  const unsigned o = static_cast<unsigned>(std::bit_width(ticks)) - kSubBits;
  const std::uint64_t sub = ticks >> o;  // in [kSub/2, kSub)
  return static_cast<std::size_t>(kSub + (o - 1) * kHalfSub +
                                  (sub - kHalfSub));
}

std::uint64_t LatencyRecorder::bucketLowTicks(std::size_t bucket) {
  if (bucket < kSub) return bucket;
  const std::size_t r = bucket - kSub;
  const unsigned o = static_cast<unsigned>(r / kHalfSub) + 1;
  const std::uint64_t sub = r % kHalfSub + kHalfSub;
  return sub << o;
}

std::uint64_t LatencyRecorder::bucketHighTicks(std::size_t bucket) {
  if (bucket < kSub) return bucket + 1;
  const std::size_t r = bucket - kSub;
  const unsigned o = static_cast<unsigned>(r / kHalfSub) + 1;
  const std::uint64_t sub = r % kHalfSub + kHalfSub;
  if (sub + 1 == kSub && o + kSubBits >= 64)  // top bucket: saturate
    return std::numeric_limits<std::uint64_t>::max();
  return (sub + 1) << o;
}

LatencyRecorder::LatencyRecorder() : buckets_(bucketCount(), 0) {}

void LatencyRecorder::recordTicks(std::uint64_t ticks) {
  ++buckets_[bucketFor(ticks)];
  if (count_ == 0 || ticks < minTicks_) minTicks_ = ticks;
  if (ticks > maxTicks_) maxTicks_ = ticks;
  ++count_;
  sumTicks_ += ticks;
}

void LatencyRecorder::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  count_ = sumTicks_ = minTicks_ = maxTicks_ = 0;
}

std::uint64_t LatencyRecorder::toTicks(double seconds) {
  if (!(seconds > 0)) return 0;
  const double t = seconds * static_cast<double>(kTicksPerSecond);
  // llround saturates UB-free well below 2^63; anything that large is
  // out of the simulator's dynamic range anyway.
  if (t >= 9e18) return 9000000000000000000ull;
  return static_cast<std::uint64_t>(std::llround(t));
}

double latencyQuantileTicks(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we want, 1-based: ceil(q * count), at least 1.
  const double exact = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      const std::uint64_t lo = LatencyRecorder::bucketLowTicks(b);
      const std::uint64_t hi = LatencyRecorder::bucketHighTicks(b);
      return LatencyRecorder::ticksToSeconds(lo + (hi - lo) / 2);
    }
  }
  COMB_ASSERT(false, "latency quantile: bucket counts disagree with count");
  return 0;
}

TailSummary latencyTail(const std::vector<std::uint64_t>& buckets,
                        std::uint64_t count, std::uint64_t sumTicks,
                        std::uint64_t minTicks, std::uint64_t maxTicks) {
  TailSummary t;
  t.count = count;
  if (count == 0) return t;
  t.mean = LatencyRecorder::ticksToSeconds(sumTicks) /
           static_cast<double>(count);
  t.min = LatencyRecorder::ticksToSeconds(minTicks);
  t.max = LatencyRecorder::ticksToSeconds(maxTicks);
  t.p50 = latencyQuantileTicks(buckets, count, 0.50);
  t.p90 = latencyQuantileTicks(buckets, count, 0.90);
  t.p99 = latencyQuantileTicks(buckets, count, 0.99);
  t.p999 = latencyQuantileTicks(buckets, count, 0.999);
  return t;
}

double LatencyRecorder::quantile(double q) const {
  return latencyQuantileTicks(buckets_, count_, q);
}

double LatencyRecorder::meanSeconds() const {
  return count_ == 0
             ? 0
             : ticksToSeconds(sumTicks_) / static_cast<double>(count_);
}

TailSummary LatencyRecorder::tail() const {
  return latencyTail(buckets_, count_, sumTicks_, minTicks(), maxTicks_);
}

}  // namespace comb
