#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace comb {

namespace {

/// Every estimator below rejects NaN/inf up front: a non-finite sample in
/// a regression gate must be a loud configuration error, never a silently
/// poisoned percentile (NaN breaks std::sort's strict weak ordering).
void requireFinite(std::span<const double> xs, const char* who) {
  for (const double x : xs)
    COMB_REQUIRE(std::isfinite(x),
                 std::string(who) + ": non-finite sample rejected");
}

}  // namespace

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  COMB_ASSERT(n_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  COMB_ASSERT(n_ > 0, "max of empty RunningStats");
  return max_;
}

double percentileSorted(std::span<const double> sorted, double q) {
  COMB_REQUIRE(!sorted.empty(), "percentile of empty sample");
  COMB_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  requireFinite(sorted, "percentile");
  if (sorted.size() == 1) return sorted[0];
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double q) {
  requireFinite(xs, "percentile");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentileSorted(copy, q);
}

double trimmedMean(std::span<const double> xs, double trimFrac) {
  COMB_REQUIRE(!xs.empty(), "trimmedMean of empty sample");
  COMB_REQUIRE(trimFrac >= 0.0 && trimFrac < 0.5,
               "trimmedMean trim fraction outside [0, 0.5)");
  requireFinite(xs, "trimmedMean");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const auto k = static_cast<std::size_t>(trimFrac *
                                          static_cast<double>(copy.size()));
  double sum = 0.0;
  for (std::size_t i = k; i < copy.size() - k; ++i) sum += copy[i];
  return sum / static_cast<double>(copy.size() - 2 * k);
}

double mad(std::span<const double> xs) {
  COMB_REQUIRE(!xs.empty(), "mad of empty sample");
  requireFinite(xs, "mad");
  const double m = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) dev.push_back(std::fabs(x - m));
  return median(dev);
}

double BootstrapCi::relHalfWidth() const {
  const double half = halfWidth();
  if (half == 0.0) return 0.0;
  if (estimate == 0.0) return std::numeric_limits<double>::infinity();
  return half / std::fabs(estimate);
}

BootstrapCi bootstrapMeanCi(std::span<const double> xs,
                            const BootstrapOptions& opts) {
  COMB_REQUIRE(!xs.empty(), "bootstrapMeanCi of empty sample");
  COMB_REQUIRE(opts.level > 0.0 && opts.level < 1.0,
               "bootstrap confidence level outside (0,1)");
  COMB_REQUIRE(opts.resamples >= 2, "bootstrap needs at least 2 resamples");
  requireFinite(xs, "bootstrapMeanCi");

  BootstrapCi ci;
  ci.estimate = mean(xs);
  ci.level = opts.level;
  ci.resamples = opts.resamples;
  if (xs.size() == 1) {
    ci.lo = ci.hi = xs[0];
    return ci;
  }

  const std::size_t n = xs.size();
  Rng rng(opts.seed);
  std::vector<double> replicates;
  replicates.reserve(opts.resamples);
  for (std::size_t r = 0; r < opts.resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += xs[rng.below(n)];
    replicates.push_back(sum / static_cast<double>(n));
  }
  std::sort(replicates.begin(), replicates.end());
  const double alpha = 1.0 - opts.level;
  ci.lo = percentileSorted(replicates, alpha / 2.0);
  ci.hi = percentileSorted(replicates, 1.0 - alpha / 2.0);
  return ci;
}

MannWhitneyResult mannWhitneyU(std::span<const double> a,
                               std::span<const double> b) {
  requireFinite(a, "mannWhitneyU");
  requireFinite(b, "mannWhitneyU");
  MannWhitneyResult res;
  const std::size_t n1 = a.size(), n2 = b.size();
  if (n1 < kMannWhitneyMinN || n2 < kMannWhitneyMinN) return res;

  // Midrank the pooled sample.
  struct Tagged {
    double x;
    bool fromA;
  };
  std::vector<Tagged> all;
  all.reserve(n1 + n2);
  for (const double x : a) all.push_back({x, true});
  for (const double x : b) all.push_back({x, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& l, const Tagged& r) { return l.x < r.x; });

  const double nTotal = static_cast<double>(n1 + n2);
  double rankSumA = 0.0;
  double tieTerm = 0.0;  // sum over tie groups of (t^3 - t)
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    while (j < all.size() && all[j].x == all[i].x) ++j;
    const double t = static_cast<double>(j - i);
    // Average of 1-based ranks i+1 .. j.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k)
      if (all[k].fromA) rankSumA += midrank;
    tieTerm += t * t * t - t;
    i = j;
  }

  const double dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  res.u = rankSumA - dn1 * (dn1 + 1.0) / 2.0;
  const double mu = dn1 * dn2 / 2.0;
  const double sigma2 = dn1 * dn2 / 12.0 *
                        ((nTotal + 1.0) -
                         tieTerm / (nTotal * (nTotal - 1.0)));
  if (sigma2 <= 0.0) {
    // Every pooled value identical: the test carries no information.
    return res;
  }
  const double diff = res.u - mu;
  // Continuity correction toward the mean.
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  res.z = corrected / std::sqrt(sigma2);
  res.pValue = std::erfc(std::fabs(res.z) / std::sqrt(2.0));
  res.usable = true;
  return res;
}

AdaptiveRep::AdaptiveRep(AdaptiveRepPolicy policy) : policy_(policy) {
  COMB_REQUIRE(policy_.minReps >= 1, "adaptive reps: minReps must be >= 1");
  COMB_REQUIRE(policy_.maxReps >= policy_.minReps,
               "adaptive reps: maxReps must be >= minReps");
  COMB_REQUIRE(policy_.ciTarget > 0.0, "adaptive reps: ciTarget must be > 0");
  COMB_REQUIRE(policy_.ciLevel > 0.0 && policy_.ciLevel < 1.0,
               "adaptive reps: ciLevel outside (0,1)");
}

void AdaptiveRep::add(double sample) {
  COMB_REQUIRE(std::isfinite(sample),
               "adaptive reps: non-finite sample rejected");
  samples_.push_back(sample);
}

bool AdaptiveRep::wantMore() const {
  const auto n = static_cast<int>(samples_.size());
  if (n < policy_.minReps) return true;
  if (n >= policy_.maxReps) return false;
  return !converged();
}

bool AdaptiveRep::converged() const {
  const auto n = static_cast<int>(samples_.size());
  if (n < policy_.minReps) return false;
  return ci().relHalfWidth() <= policy_.ciTarget;
}

BootstrapCi AdaptiveRep::ci() const {
  BootstrapOptions opts;
  opts.level = policy_.ciLevel;
  opts.resamples = policy_.resamples;
  opts.seed = policy_.seed;
  return bootstrapMeanCi(samples_, opts);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double geomean(std::span<const double> xs) {
  COMB_REQUIRE(!xs.empty(), "geomean of empty sample");
  double logSum = 0.0;
  for (double x : xs) {
    COMB_REQUIRE(x > 0.0, "geomean requires positive inputs");
    logSum += std::log(x);
  }
  return std::exp(logSum / static_cast<double>(xs.size()));
}

LinearFit linearFit(std::span<const double> xs, std::span<const double> ys) {
  COMB_REQUIRE(xs.size() == ys.size(), "linearFit: size mismatch");
  COMB_REQUIRE(xs.size() >= 2, "linearFit: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    // Vertical data: slope undefined; report the flat line through the
    // mean with r2 = 0 set explicitly (see the convention in stats.hpp —
    // this keeps degenerate input distinguishable from a perfect flat
    // fit, which reports r2 = 1).
    fit.intercept = my;
    fit.slope = 0.0;
    fit.r2 = 0.0;
    fit.degenerate = true;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double relDiff(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom == 0.0 ? 0.0 : std::fabs(a - b) / denom;
}

bool approxEqual(double a, double b, double rtol, double atol) {
  return std::fabs(a - b) <=
         std::max(atol, rtol * std::max(std::fabs(a), std::fabs(b)));
}

}  // namespace comb
