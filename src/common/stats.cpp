#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace comb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  COMB_ASSERT(n_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  COMB_ASSERT(n_ > 0, "max of empty RunningStats");
  return max_;
}

double percentileSorted(std::span<const double> sorted, double q) {
  COMB_REQUIRE(!sorted.empty(), "percentile of empty sample");
  COMB_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentileSorted(copy, q);
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double geomean(std::span<const double> xs) {
  COMB_REQUIRE(!xs.empty(), "geomean of empty sample");
  double logSum = 0.0;
  for (double x : xs) {
    COMB_REQUIRE(x > 0.0, "geomean requires positive inputs");
    logSum += std::log(x);
  }
  return std::exp(logSum / static_cast<double>(xs.size()));
}

LinearFit linearFit(std::span<const double> xs, std::span<const double> ys) {
  COMB_REQUIRE(xs.size() == ys.size(), "linearFit: size mismatch");
  COMB_REQUIRE(xs.size() >= 2, "linearFit: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    // Vertical data: slope undefined; report the flat line through the
    // mean with r2 = 0 set explicitly (see the convention in stats.hpp —
    // this keeps degenerate input distinguishable from a perfect flat
    // fit, which reports r2 = 1).
    fit.intercept = my;
    fit.slope = 0.0;
    fit.r2 = 0.0;
    fit.degenerate = true;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double relDiff(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom == 0.0 ? 0.0 : std::fabs(a - b) / denom;
}

bool approxEqual(double a, double b, double rtol, double atol) {
  return std::fabs(a - b) <=
         std::max(atol, rtol * std::max(std::fabs(a), std::fabs(b)));
}

}  // namespace comb
