#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::addFlag(const std::string& name, const std::string& help) {
  COMB_REQUIRE(!specs_.count(name), "duplicate CLI option: " + name);
  specs_[name] = Spec{help, /*isFlag=*/true, ""};
}

void ArgParser::addOption(const std::string& name, const std::string& help,
                          const std::string& def) {
  COMB_REQUIRE(!specs_.count(name), "duplicate CLI option: " + name);
  specs_[name] = Spec{help, /*isFlag=*/false, def};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(helpText().c_str(), stdout);
      return false;
    }
    if (!startsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inlineValue;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inlineValue = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end())
      throw ConfigError("unknown option --" + name + " (try --help)");
    if (it->second.isFlag) {
      if (inlineValue)
        throw ConfigError("flag --" + name + " does not take a value");
      flags_[name] = true;
    } else if (inlineValue) {
      values_[name] = *inlineValue;
    } else {
      if (i + 1 >= argc)
        throw ConfigError("option --" + name + " requires a value");
      values_[name] = argv[++i];
    }
  }
  return true;
}

const ArgParser::Spec& ArgParser::specFor(const std::string& name) const {
  const auto it = specs_.find(name);
  COMB_ASSERT(it != specs_.end(), "undeclared CLI option queried: " + name);
  return it->second;
}

bool ArgParser::flag(const std::string& name) const {
  COMB_ASSERT(specFor(name).isFlag, "flag() on value option: " + name);
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

bool ArgParser::given(const std::string& name) const {
  specFor(name);  // keep typo'd queries loud
  return values_.count(name) > 0 || flags_.count(name) > 0;
}

std::string ArgParser::str(const std::string& name) const {
  const Spec& spec = specFor(name);
  COMB_ASSERT(!spec.isFlag, "str() on flag: " + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec.def;
}

std::int64_t ArgParser::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw ConfigError("option --" + name + " expects an integer, got '" + v +
                      "'");
  return parsed;
}

double ArgParser::real(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw ConfigError("option --" + name + " expects a number, got '" + v +
                      "'");
  return parsed;
}

std::string ArgParser::helpText() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.isFlag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.isFlag && !spec.def.empty()) os << " (default: " << spec.def << ")";
    os << '\n';
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace comb
