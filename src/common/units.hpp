// Units and unit literals used throughout the simulator and benchmark suite.
//
// Simulated time is a double counting seconds. Byte counts are
// std::uint64_t. Rates are bytes per second (double). User-defined literals
// make model parameters read like the paper's prose: `45.0_us`, `100_KB`,
// `88.0_MBps`.
#pragma once

#include <cstdint>

namespace comb {

/// Simulated (or wall-clock) time in seconds.
using Time = double;

/// A byte count.
using Bytes = std::uint64_t;

/// A data rate in bytes per second.
using Rate = double;

namespace units {

// --- time ---------------------------------------------------------------
constexpr Time operator""_s(long double v) { return static_cast<Time>(v); }
constexpr Time operator""_s(unsigned long long v) {
  return static_cast<Time>(v);
}
constexpr Time operator""_ms(long double v) {
  return static_cast<Time>(v) * 1e-3;
}
constexpr Time operator""_ms(unsigned long long v) {
  return static_cast<Time>(v) * 1e-3;
}
constexpr Time operator""_us(long double v) {
  return static_cast<Time>(v) * 1e-6;
}
constexpr Time operator""_us(unsigned long long v) {
  return static_cast<Time>(v) * 1e-6;
}
constexpr Time operator""_ns(long double v) {
  return static_cast<Time>(v) * 1e-9;
}
constexpr Time operator""_ns(unsigned long long v) {
  return static_cast<Time>(v) * 1e-9;
}

// --- sizes (binary, matching the paper's "10 KB" usage) ------------------
constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}

// --- rates (decimal MB/s as plotted by the paper) -------------------------
constexpr Rate operator""_MBps(long double v) {
  return static_cast<Rate>(v) * 1e6;
}
constexpr Rate operator""_MBps(unsigned long long v) {
  return static_cast<Rate>(v) * 1e6;
}
constexpr Rate operator""_GBps(long double v) {
  return static_cast<Rate>(v) * 1e9;
}

}  // namespace units

/// Convert a rate in bytes/second to the "MB/s" the paper's figures plot
/// (decimal megabytes).
constexpr double toMBps(Rate bytesPerSecond) { return bytesPerSecond / 1e6; }

/// Time to serialize `n` bytes at `rate` bytes/second.
constexpr Time transferTime(Bytes n, Rate rate) {
  return static_cast<Time>(n) / rate;
}

}  // namespace comb
