// CSV emission for benchmark series (RFC 4180-style quoting).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace comb {

/// Streams rows to an std::ostream. The header is written on construction;
/// every row must have the same arity (checked).
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& fields);

  /// Convenience for numeric rows.
  void rowNumeric(const std::vector<double>& values, int precision = 9);

  std::size_t rowsWritten() const { return rows_; }

  /// Quote a single CSV field if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  void writeLine(const std::vector<std::string>& fields);

  std::ostream& out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace comb
