// Small string helpers (GCC 12 lacks std::format; strFormat fills the gap).
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace comb {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strFormat(const char* fmt, ...);

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);

/// Render a double compactly: fixed with `prec` digits, trailing zeros kept
/// (stable column widths for tables).
std::string fmtDouble(double v, int prec = 3);

/// Human-readable byte count: "10 KB", "1.5 MB" (binary units, paper style).
std::string fmtBytes(std::uint64_t bytes);

/// Human-readable duration: picks ns/us/ms/s.
std::string fmtTime(double seconds);

}  // namespace comb
