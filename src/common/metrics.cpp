#include "common/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace comb::metrics {

Counter& Registry::counter(std::string_view name, MergeKind merge) {
  COMB_REQUIRE(!name.empty(), "metric name must not be empty");
  if (const auto it = counters_.find(name); it != counters_.end()) {
    COMB_REQUIRE(it->second.merge_ == merge,
                 "counter re-registered with a different merge kind");
    return it->second;
  }
  Counter c;
  c.merge_ = merge;
  return counters_.emplace(std::string(name), c).first->second;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t bins) {
  COMB_REQUIRE(!name.empty(), "metric name must not be empty");
  if (const auto it = histograms_.find(name); it != histograms_.end())
    return *it->second;
  auto h = std::make_unique<Histogram>(lo, hi, bins);
  return *histograms_.emplace(std::string(name), std::move(h)).first->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c.value(), c.mergeKind()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.lo = h->binLow(0);
    s.hi = h->binHigh(h->bins() - 1);
    s.counts.resize(h->bins());
    for (std::size_t i = 0; i < h->bins(); ++i) s.counts[i] = h->count(i);
    s.underflow = h->underflow();
    s.overflow = h->overflow();
    s.total = h->total();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::uint64_t Snapshot::counterValue(std::string_view name) const {
  const auto it = std::find_if(
      counters.begin(), counters.end(),
      [name](const CounterSample& c) { return c.name == name; });
  return it == counters.end() ? 0 : it->value;
}

Snapshot mergeSnapshots(const std::vector<Snapshot>& parts) {
  if (parts.size() == 1) return parts.front();
  Snapshot out;
  // Inputs are name-sorted; a k-way merge would be fancier, but snapshot
  // merging runs once per simulation, not per event. Maps keep the
  // result sorted and the lookups simple.
  std::map<std::string, CounterSample, std::less<>> counters;
  std::map<std::string, HistogramSample, std::less<>> histograms;
  for (const Snapshot& part : parts) {
    for (const CounterSample& c : part.counters) {
      auto [it, fresh] = counters.emplace(c.name, c);
      if (fresh) continue;
      COMB_REQUIRE(it->second.merge == c.merge,
                   "merging counters with mismatched merge kinds");
      if (c.merge == MergeKind::Max)
        it->second.value = std::max(it->second.value, c.value);
      else
        it->second.value += c.value;
    }
    for (const HistogramSample& h : part.histograms) {
      auto [it, fresh] = histograms.emplace(h.name, h);
      if (fresh) continue;
      HistogramSample& acc = it->second;
      COMB_REQUIRE(acc.lo == h.lo && acc.hi == h.hi &&
                       acc.counts.size() == h.counts.size(),
                   "merging histograms with mismatched layouts");
      for (std::size_t i = 0; i < h.counts.size(); ++i)
        acc.counts[i] += h.counts[i];
      acc.underflow += h.underflow;
      acc.overflow += h.overflow;
      acc.total += h.total;
    }
  }
  out.counters.reserve(counters.size());
  for (auto& [name, c] : counters) out.counters.push_back(std::move(c));
  out.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) out.histograms.push_back(std::move(h));
  return out;
}

namespace {

// Minimal JSON string escape — metric names are ASCII identifiers, but do
// not let a stray quote or backslash produce invalid output.
void writeJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void pad(std::ostream& out, int n) {
  for (int i = 0; i < n; ++i) out << ' ';
}

}  // namespace

void writeJson(std::ostream& out, const Snapshot& snap, int indent) {
  const int in1 = indent + 2;
  const int in2 = indent + 4;
  out << "{\n";
  pad(out, in1);
  out << "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    pad(out, in2);
    writeJsonString(out, snap.counters[i].name);
    out << ": " << snap.counters[i].value;
  }
  if (!snap.counters.empty()) {
    out << '\n';
    pad(out, in1);
  }
  out << "},\n";
  pad(out, in1);
  out << "\"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n");
    pad(out, in2);
    writeJsonString(out, h.name);
    out << ": {\"lo\": " << h.lo << ", \"hi\": " << h.hi << ", \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) out << ", ";
      out << h.counts[j];
    }
    out << "], \"underflow\": " << h.underflow
        << ", \"overflow\": " << h.overflow << ", \"total\": " << h.total
        << "}";
  }
  if (!snap.histograms.empty()) {
    out << '\n';
    pad(out, in1);
  }
  out << "}\n";
  pad(out, indent);
  out << "}";
}

}  // namespace comb::metrics
