#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace comb::metrics {

Counter& Registry::counter(std::string_view name, MergeKind merge) {
  COMB_REQUIRE(!name.empty(), "metric name must not be empty");
  if (const auto it = counters_.find(name); it != counters_.end()) {
    COMB_REQUIRE(it->second.merge_ == merge,
                 "counter re-registered with a different merge kind");
    return it->second;
  }
  Counter c;
  c.merge_ = merge;
  return counters_.emplace(std::string(name), c).first->second;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t bins) {
  COMB_REQUIRE(!name.empty(), "metric name must not be empty");
  if (const auto it = histograms_.find(name); it != histograms_.end())
    return *it->second;
  auto h = std::make_unique<Histogram>(lo, hi, bins);
  return *histograms_.emplace(std::string(name), std::move(h)).first->second;
}

LatencyRecorder& Registry::latency(std::string_view name) {
  COMB_REQUIRE(!name.empty(), "metric name must not be empty");
  if (const auto it = latencies_.find(name); it != latencies_.end())
    return *it->second;
  auto r = std::make_unique<LatencyRecorder>();
  return *latencies_.emplace(std::string(name), std::move(r)).first->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c.value(), c.mergeKind()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.lo = h->binLow(0);
    s.hi = h->binHigh(h->bins() - 1);
    s.counts.resize(h->bins());
    for (std::size_t i = 0; i < h->bins(); ++i) s.counts[i] = h->count(i);
    s.underflow = h->underflow();
    s.overflow = h->overflow();
    s.total = h->total();
    snap.histograms.push_back(std::move(s));
  }
  snap.latencies.reserve(latencies_.size());
  for (const auto& [name, r] : latencies_) {
    LatencySample s;
    s.name = name;
    s.buckets = r->buckets();
    s.count = r->count();
    s.sumTicks = r->sumTicks();
    s.minTicks = r->minTicks();
    s.maxTicks = r->maxTicks();
    snap.latencies.push_back(std::move(s));
  }
  return snap;
}

std::uint64_t Snapshot::counterValue(std::string_view name) const {
  const auto it = std::find_if(
      counters.begin(), counters.end(),
      [name](const CounterSample& c) { return c.name == name; });
  return it == counters.end() ? 0 : it->value;
}

const LatencySample* Snapshot::latency(std::string_view name) const {
  const auto it = std::find_if(
      latencies.begin(), latencies.end(),
      [name](const LatencySample& l) { return l.name == name; });
  return it == latencies.end() ? nullptr : &*it;
}

LatencySample mergeLatencyFamily(const Snapshot& snap,
                                 std::string_view prefix,
                                 std::string_view suffix) {
  LatencySample out;
  out.name.reserve(prefix.size() + 1 + suffix.size());
  out.name.append(prefix).append("*").append(suffix);
  for (const LatencySample& l : snap.latencies) {
    const std::string_view name = l.name;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.substr(0, prefix.size()) != prefix) continue;
    if (name.substr(name.size() - suffix.size()) != suffix) continue;
    if (out.buckets.empty()) {
      out.buckets = l.buckets;
      out.count = l.count;
      out.sumTicks = l.sumTicks;
      out.minTicks = l.minTicks;
      out.maxTicks = l.maxTicks;
      continue;
    }
    COMB_REQUIRE(out.buckets.size() == l.buckets.size(),
                 "merging latency samples with mismatched layouts");
    for (std::size_t i = 0; i < l.buckets.size(); ++i)
      out.buckets[i] += l.buckets[i];
    if (l.count) {
      out.minTicks =
          out.count ? std::min(out.minTicks, l.minTicks) : l.minTicks;
      out.maxTicks = std::max(out.maxTicks, l.maxTicks);
    }
    out.count += l.count;
    out.sumTicks += l.sumTicks;
  }
  return out;
}

Snapshot mergeSnapshots(const std::vector<Snapshot>& parts) {
  if (parts.size() == 1) return parts.front();
  Snapshot out;
  // Inputs are name-sorted; a k-way merge would be fancier, but snapshot
  // merging runs once per simulation, not per event. Maps keep the
  // result sorted and the lookups simple.
  std::map<std::string, CounterSample, std::less<>> counters;
  std::map<std::string, HistogramSample, std::less<>> histograms;
  std::map<std::string, LatencySample, std::less<>> latencies;
  for (const Snapshot& part : parts) {
    for (const CounterSample& c : part.counters) {
      auto [it, fresh] = counters.emplace(c.name, c);
      if (fresh) continue;
      COMB_REQUIRE(it->second.merge == c.merge,
                   "merging counters with mismatched merge kinds");
      if (c.merge == MergeKind::Max)
        it->second.value = std::max(it->second.value, c.value);
      else
        it->second.value += c.value;
    }
    for (const HistogramSample& h : part.histograms) {
      auto [it, fresh] = histograms.emplace(h.name, h);
      if (fresh) continue;
      HistogramSample& acc = it->second;
      acc.underflow += h.underflow;
      acc.overflow += h.overflow;
      acc.total += h.total;
      if (acc.lo == h.lo && acc.hi == h.hi &&
          acc.counts.size() == h.counts.size()) {
        for (std::size_t i = 0; i < h.counts.size(); ++i)
          acc.counts[i] += h.counts[i];
        continue;
      }
      // Mismatched layouts: rebucket into the first-seen layout by bin
      // midpoint, mirroring Histogram::merge. Count-preserving and
      // deterministic; resolution is bounded by the coarser layout.
      const double srcWidth =
          (h.hi - h.lo) / static_cast<double>(h.counts.size());
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        const std::size_t c = h.counts[i];
        if (c == 0) continue;
        const double mid = h.lo + srcWidth * (static_cast<double>(i) + 0.5);
        if (mid < acc.lo) {
          acc.underflow += c;
        } else if (mid >= acc.hi) {
          acc.overflow += c;
        } else {
          const double t = (mid - acc.lo) / (acc.hi - acc.lo);
          auto bin = static_cast<std::size_t>(
              t * static_cast<double>(acc.counts.size()));
          bin = std::min(bin, acc.counts.size() - 1);
          acc.counts[bin] += c;
        }
      }
    }
    for (const LatencySample& l : part.latencies) {
      auto [it, fresh] = latencies.emplace(l.name, l);
      if (fresh) continue;
      LatencySample& acc = it->second;
      COMB_REQUIRE(acc.buckets.size() == l.buckets.size(),
                   "merging latency samples with mismatched layouts");
      for (std::size_t i = 0; i < l.buckets.size(); ++i)
        acc.buckets[i] += l.buckets[i];
      if (l.count) {
        acc.minTicks =
            acc.count ? std::min(acc.minTicks, l.minTicks) : l.minTicks;
        acc.maxTicks = std::max(acc.maxTicks, l.maxTicks);
      }
      acc.count += l.count;
      acc.sumTicks += l.sumTicks;
    }
  }
  out.counters.reserve(counters.size());
  for (auto& [name, c] : counters) out.counters.push_back(std::move(c));
  out.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) out.histograms.push_back(std::move(h));
  out.latencies.reserve(latencies.size());
  for (auto& [name, l] : latencies) out.latencies.push_back(std::move(l));
  return out;
}

namespace {

// Minimal JSON string escape — metric names are ASCII identifiers, but do
// not let a stray quote or backslash produce invalid output.
void writeJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void pad(std::ostream& out, int n) {
  for (int i = 0; i < n; ++i) out << ' ';
}

}  // namespace

void writeJson(std::ostream& out, const Snapshot& snap, int indent) {
  const int in1 = indent + 2;
  const int in2 = indent + 4;
  out << "{\n";
  pad(out, in1);
  out << "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    pad(out, in2);
    writeJsonString(out, snap.counters[i].name);
    out << ": " << snap.counters[i].value;
  }
  if (!snap.counters.empty()) {
    out << '\n';
    pad(out, in1);
  }
  out << "},\n";
  pad(out, in1);
  out << "\"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n");
    pad(out, in2);
    writeJsonString(out, h.name);
    out << ": {\"lo\": " << h.lo << ", \"hi\": " << h.hi << ", \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) out << ", ";
      out << h.counts[j];
    }
    out << "], \"underflow\": " << h.underflow
        << ", \"overflow\": " << h.overflow << ", \"total\": " << h.total
        << "}";
  }
  if (!snap.histograms.empty()) {
    out << '\n';
    pad(out, in1);
  }
  out << "},\n";
  pad(out, in1);
  out << "\"latencies\": {";
  for (std::size_t i = 0; i < snap.latencies.size(); ++i) {
    const LatencySample& l = snap.latencies[i];
    const TailSummary t = l.tail();
    out << (i == 0 ? "\n" : ",\n");
    pad(out, in2);
    writeJsonString(out, l.name);
    out << ": {\"count\": " << t.count;
    const auto us = [&out](const char* key, double seconds) {
      char buf[64];
      std::snprintf(buf, sizeof buf, ", \"%s\": %.6f", key, seconds * 1e6);
      out << buf;
    };
    us("mean_us", t.mean);
    us("min_us", t.min);
    us("max_us", t.max);
    us("p50_us", t.p50);
    us("p90_us", t.p90);
    us("p99_us", t.p99);
    us("p999_us", t.p999);
    out << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < l.buckets.size(); ++b) {
      if (l.buckets[b] == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << '[' << b << ", " << l.buckets[b] << ']';
    }
    out << "]}";
  }
  if (!snap.latencies.empty()) {
    out << '\n';
    pad(out, in1);
  }
  out << "}\n";
  pad(out, indent);
  out << "}";
}

}  // namespace comb::metrics
