// Metrics registry: named monotonic counters and histograms for the
// simulated substrate.
//
// Components (links, NICs, MiniMPI, runners) register instruments once at
// construction — `registry.counter("nic.gm.n0.retransmits")` — and hold
// the returned reference; incrementing is then a single add with no name
// lookup and no allocation, preserving the simulator's allocation-free
// hot path. The registry is owned by the Simulator (one per simulated
// machine, so parallel sweep points never share state) and snapshotted
// into report::MachineStats after a run, where it is rendered as a table
// or exported as JSON alongside the fault counters.
//
// Names are dot-separated paths ("layer.component.instance.metric"); the
// snapshot sorts them, so related instruments group naturally.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/latency_recorder.hpp"

namespace comb::metrics {

/// How same-named counters from different registries combine when
/// per-shard snapshots are merged (see mergeSnapshots). Almost every
/// counter is a Sum (events happened here + events happened there); Max
/// is for high-water marks like queue peaks, where each shard tracks its
/// own running maximum and the combined figure is the largest of them.
enum class MergeKind : std::uint8_t { Sum, Max };

/// Monotonic counter. Cheap enough for per-packet paths.
class Counter {
 public:
  void add(std::uint64_t d = 1) { value_ += d; }
  /// Monotonic set-to-max, for high-water-mark counters (pairs with
  /// MergeKind::Max): the value only ever grows, like add, but tracks a
  /// peak instead of a total.
  void raiseTo(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  std::uint64_t value() const { return value_; }
  MergeKind mergeKind() const { return merge_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
  MergeKind merge_ = MergeKind::Sum;
};

/// One instrument's state at snapshot time.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  MergeKind merge = MergeKind::Sum;
};

struct HistogramSample {
  std::string name;
  double lo = 0;
  double hi = 0;
  std::vector<std::size_t> counts;  ///< per-bin counts
  std::size_t underflow = 0;
  std::size_t overflow = 0;
  std::size_t total = 0;
};

/// A latency recorder's state at snapshot time. Buckets follow the global
/// LatencyRecorder layout, so same-named samples merge by element-wise
/// count addition — order- and shard-count-independent.
struct LatencySample {
  std::string name;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sumTicks = 0;
  std::uint64_t minTicks = 0;
  std::uint64_t maxTicks = 0;

  TailSummary tail() const {
    return latencyTail(buckets, count, sumTicks, minTicks, maxTicks);
  }
};

/// A point-in-time copy of every registered instrument, sorted by name.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;
  std::vector<LatencySample> latencies;

  bool empty() const {
    return counters.empty() && histograms.empty() && latencies.empty();
  }
  /// Value of a counter by exact name; 0 when absent.
  std::uint64_t counterValue(std::string_view name) const;
  /// Latency sample by exact name; nullptr when absent.
  const LatencySample* latency(std::string_view name) const;
};

/// Merge every latency sample whose name starts with `prefix` and ends
/// with `suffix` (e.g. "mpi.n" + ".send_latency" collects the per-rank
/// base recorders but not their phase-scoped ".send_latency.<phase>"
/// variants). All recorders share the global layout, so the merge is
/// element-wise count addition — order-independent. The result's name is
/// `prefix*suffix`; count == 0 when nothing matched.
LatencySample mergeLatencyFamily(const Snapshot& snap,
                                 std::string_view prefix,
                                 std::string_view suffix);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// `merge` is fixed by the first registration (re-registering with a
  /// different kind is rejected).
  Counter& counter(std::string_view name, MergeKind merge = MergeKind::Sum);
  /// Find-or-create; bin layout is fixed by the first registration.
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins);
  /// Find-or-create. All recorders share the global log-bucket layout,
  /// so there is nothing to configure; recording is allocation-free.
  LatencyRecorder& latency(std::string_view name);

  std::size_t counterCount() const { return counters_.size(); }
  std::size_t histogramCount() const { return histograms_.size(); }
  std::size_t latencyCount() const { return latencies_.size(); }

  Snapshot snapshot() const;

 private:
  // std::map: stable references, deterministic (sorted) iteration.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyRecorder>, std::less<>>
      latencies_;
};

/// Combine per-shard snapshots into one machine-wide view, matching
/// instruments by exact name. Counters combine by their MergeKind (Sum
/// counters add, Max counters take the largest; a name appearing in
/// several inputs must carry the same kind in all of them). Histograms
/// with identical layouts combine bin-wise; mismatched layouts are
/// rebucketed into the first-seen layout by midpoint attribution
/// (count-preserving, resolution bounded by the coarser layout).
/// Latency samples share one global layout and always add element-wise.
/// Inputs are name-sorted (as Registry::snapshot produces) and so is the
/// result — a single input round-trips unchanged, which keeps the serial
/// path byte-identical.
Snapshot mergeSnapshots(const std::vector<Snapshot>& parts);

/// Serialize a snapshot as a JSON object:
///   {"counters": {"name": value, ...},
///    "histograms": {"name": {"lo": ..., "hi": ..., "counts": [...],
///                            "underflow": ..., "overflow": ...}, ...},
///    "latencies": {"name": {"count": ..., "mean_us": ..., "min_us": ...,
///                           "max_us": ..., "p50_us": ..., "p90_us": ...,
///                           "p99_us": ..., "p999_us": ...,
///                           "buckets": [[bucket, count], ...]}, ...}}
/// Latency buckets are sparse [index, count] pairs over the global
/// LatencyRecorder layout (dense arrays would be ~2k mostly-zero cells).
void writeJson(std::ostream& out, const Snapshot& snap, int indent = 0);

}  // namespace comb::metrics
