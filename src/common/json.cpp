#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace comb::json {

namespace {

[[noreturn]] void kindError(const char* want, Value::Kind got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw ConfigError(std::string("json: expected ") + want + ", got " +
                    names[static_cast<int>(got)]);
}

}  // namespace

bool Value::boolean() const {
  if (kind_ != Kind::Bool) kindError("bool", kind_);
  return bool_;
}

double Value::number() const {
  if (kind_ != Kind::Number) kindError("number", kind_);
  return num_;
}

const std::string& Value::str() const {
  if (kind_ != Kind::String) kindError("string", kind_);
  return str_;
}

const std::vector<Value>& Value::array() const {
  if (kind_ != Kind::Array) kindError("array", kind_);
  return arr_;
}

const std::map<std::string, Value>& Value::members() const {
  if (kind_ != Kind::Object) kindError("object", kind_);
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw ConfigError("json: missing member '" + key + "'");
  return *v;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) kindError("object", kind_);
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::size_t Value::size() const {
  switch (kind_) {
    case Kind::Array:
      return arr_.size();
    case Kind::Object:
      return obj_.size();
    default:
      kindError("array or object", kind_);
  }
}

Value Value::makeBool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::makeNumber(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

Value Value::makeString(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::makeArray(std::vector<Value> xs) {
  Value v;
  v.kind_ = Kind::Array;
  v.arr_ = std::move(xs);
  return v;
}

Value Value::makeObject(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.obj_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const std::string& sourceName)
      : text_(text), source_(sourceName) {}

  Value parseDocument() {
    skipWs();
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << source_ << ':' << line << ':' << col << ": " << msg;
    throw ConfigError(os.str());
  }

  bool atEnd() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (atEnd() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skipWs() {
    while (!atEnd()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Value parseValue() {
    if (atEnd()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Value::makeString(parseString());
      case 't':
        if (consumeWord("true")) return Value::makeBool(true);
        fail("invalid literal");
      case 'f':
        if (consumeWord("false")) return Value::makeBool(false);
        fail("invalid literal");
      case 'n':
        if (consumeWord("null")) return Value::makeNull();
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    std::map<std::string, Value> members;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return Value::makeObject(std::move(members));
    }
    for (;;) {
      skipWs();
      if (atEnd() || peek() != '"') fail("expected object key string");
      std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      Value v = parseValue();
      if (!members.emplace(std::move(key), std::move(v)).second)
        fail("duplicate object key");
      skipWs();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value::makeObject(std::move(members));
  }

  Value parseArray() {
    expect('[');
    std::vector<Value> xs;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return Value::makeArray(std::move(xs));
    }
    for (;;) {
      skipWs();
      xs.push_back(parseValue());
      skipWs();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value::makeArray(std::move(xs));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          appendCodepoint(out, parseHex4());
          break;
        default:
          fail("unknown escape sequence");
      }
    }
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return v;
  }

  // UTF-8 encode a BMP codepoint (surrogate pairs are joined first).
  void appendCodepoint(std::string& out, unsigned cp) {
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (next() != '\\' || next() != 'u') fail("unpaired surrogate");
      const unsigned lo = parseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    if (atEnd() || !isDigit(peek())) fail("invalid number");
    // RFC 8259: the integer part is "0" or starts with a nonzero digit.
    if (peek() == '0') {
      ++pos_;
      if (!atEnd() && isDigit(peek())) fail("invalid number (leading zero)");
    }
    while (!atEnd() && isDigit(peek())) ++pos_;
    if (!atEnd() && peek() == '.') {
      ++pos_;
      if (atEnd() || !isDigit(peek())) fail("invalid number");
      while (!atEnd() && isDigit(peek())) ++pos_;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (atEnd() || !isDigit(peek())) fail("invalid number");
      while (!atEnd() && isDigit(peek())) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) fail("number out of range");
    return Value::makeNumber(v);
  }

  static bool isDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text, const std::string& sourceName) {
  return Parser(text, sourceName).parseDocument();
}

Value parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("json: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), path);
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace comb::json
