#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace comb {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  jobReady_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  COMB_ASSERT(job != nullptr, "ThreadPool::submit: empty job");
  {
    std::unique_lock<std::mutex> lock(mu_);
    COMB_ASSERT(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(job));
  }
  jobReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      jobReady_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) allIdle_.notify_all();
    }
  }
}

int hardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const int threads =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
  // One submitted job per thread pulling indices from a shared counter,
  // not one job per index: a sweep of thousands of points would
  // otherwise heap-allocate a std::function per index (the closure
  // exceeds the small-buffer size) just to queue and dequeue it once.
  // Indices are still claimed in increasing order, and errors[] keeps
  // the by-index identity for the deterministic lowest-index rethrow.
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  {
    ThreadPool pool(threads);
    for (int t = 0; t < threads; ++t) {
      pool.submit([&body, &errors, &next, n] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            body(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    pool.wait();
  }
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace comb
