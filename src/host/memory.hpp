// Host memory-copy cost model.
//
// Copies are the dominant per-byte CPU cost in non-OS-bypass stacks (the
// paper's kernel-based Portals copies every received byte from kernel
// buffers into user space). The model is affine: perCopy + bytes / rate.
#pragma once

#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::host {

struct MemoryModel {
  /// Sustainable memcpy bandwidth (bytes/second).
  Rate copyRate = 300e6;
  /// Fixed cost per copy operation (cache setup, function overhead).
  Time perCopy = 0.5e-6;

  Time copyTime(Bytes n) const {
    COMB_ASSERT(copyRate > 0.0, "copyRate must be positive");
    return perCopy + static_cast<Time>(n) / copyRate;
  }
};

}  // namespace comb::host
