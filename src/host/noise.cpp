#include "host/noise.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::host {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from 53 high bits.
double toUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void validateNoiseSpec(const NoiseSpec& spec) {
  COMB_REQUIRE(spec.period >= 0.0 && spec.duration >= 0.0,
               "noise: period and duration must be >= 0");
  COMB_REQUIRE(!(spec.duration > 0.0) || spec.period > 0.0,
               "noise: duration needs a positive period");
  COMB_REQUIRE(spec.duration <= spec.period,
               "noise: mean duration must not exceed the period");
  COMB_REQUIRE(spec.jitter >= 0.0 && spec.jitter <= 1.0,
               "noise: jitter must be in [0, 1]");
  COMB_REQUIRE(spec.daemons >= 1, "noise: daemons must be >= 1");
  COMB_REQUIRE(spec.coalesce >= 0.0, "noise: coalesce must be >= 0");
}

NoiseSpec parseNoiseSpec(std::string_view text) {
  NoiseSpec spec;
  while (!text.empty()) {
    const auto comma = text.find(',');
    const auto part = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const auto body = trim(part);
    if (body.empty()) continue;
    const auto eq = body.find('=');
    COMB_REQUIRE(eq != std::string_view::npos,
                 "noise spec: expected key=value, got '" + std::string(body) +
                     "'");
    const auto key = trim(body.substr(0, eq));
    const std::string value{trim(body.substr(eq + 1))};
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    COMB_REQUIRE(end != value.c_str() && *end == '\0',
                 "noise spec: key '" + std::string(key) +
                     "' expects a number, got '" + value + "'");
    if (key == "period_us") {
      spec.period = v * 1e-6;
    } else if (key == "duration_us") {
      spec.duration = v * 1e-6;
    } else if (key == "jitter") {
      spec.jitter = v;
    } else if (key == "daemons") {
      spec.daemons = static_cast<int>(v);
    } else if (key == "coalesce_us") {
      spec.coalesce = v * 1e-6;
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(v);
    } else {
      throw ConfigError("noise spec: unknown key '" + std::string(key) +
                        "' (period_us, duration_us, jitter, daemons, "
                        "coalesce_us, seed)");
    }
  }
  validateNoiseSpec(spec);
  return spec;
}

std::string noiseSpecSummary(const NoiseSpec& spec) {
  return strFormat(
      "period_us=%g,duration_us=%g,jitter=%g,daemons=%d,coalesce_us=%g,"
      "seed=%llu",
      spec.period * 1e6, spec.duration * 1e6, spec.jitter, spec.daemons,
      spec.coalesce * 1e6, static_cast<unsigned long long>(spec.seed));
}

NoiseModel::NoiseModel(const NoiseSpec& spec, std::uint64_t streamKey)
    : spec_(spec) {
  validateNoiseSpec(spec_);
  daemonSeeds_.reserve(static_cast<std::size_t>(spec_.daemons));
  for (int k = 0; k < spec_.daemons; ++k)
    daemonSeeds_.push_back(splitmix64(
        spec_.seed ^ splitmix64(streamKey + static_cast<std::uint64_t>(k))));
}

NoiseModel::Window NoiseModel::window(int daemon, std::uint64_t slot) const {
  const std::uint64_t base = daemonSeeds_[static_cast<std::size_t>(daemon)];
  const double u1 = toUnit(splitmix64(base + 2 * slot));
  const double u2 = toUnit(splitmix64(base + 2 * slot + 1));
  // Exponential burst around the mean, capped at 3/4 of the period so
  // every burst fits its slot (windows of one daemon never overlap).
  const Time dur = std::min(-spec_.duration * std::log1p(-u1 * 0.999999),
                            0.75 * spec_.period);
  const Time slotStart = static_cast<Time>(slot) * spec_.period;
  const Time slack = spec_.period - dur;
  Window w;
  w.start = slotStart + spec_.jitter * slack * u2;
  w.end = w.start + dur;
  return w;
}

Time NoiseModel::busyEnd(Time t) const {
  if (!enabled() || t < 0.0) return t;
  Time cur = t;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    // uint64(cur / period) truncates one slot off when `cur` sits exactly
    // on a slot boundary (fl(k * period) / period < k for some k), which
    // is the common case for jitter=0 windows; probe the neighbouring
    // slots so a boundary-start window is never missed.
    const auto slot = static_cast<std::uint64_t>(cur / spec_.period);
    const std::uint64_t first = slot == 0 ? 0 : slot - 1;
    for (int k = 0; k < spec_.daemons; ++k) {
      for (std::uint64_t s = first; s <= slot + 1; ++s) {
        const Window w = window(k, s);
        if (w.start <= cur && cur < w.end) {
          cur = w.end;
          advanced = true;
        }
      }
    }
  }
  return cur;
}

Time NoiseModel::nextStart(Time t) const {
  if (!enabled()) return std::numeric_limits<Time>::infinity();
  Time best = std::numeric_limits<Time>::infinity();
  const Time from = std::max(t, 0.0);
  const auto slot = static_cast<std::uint64_t>(from / spec_.period);
  const std::uint64_t first = slot == 0 ? 0 : slot - 1;
  for (int k = 0; k < spec_.daemons; ++k) {
    // Scan forward from the neighbouring slot (the slot division can
    // truncate one off at boundaries, see busyEnd) to the first window
    // strictly after `from`. Zero-length bursts (u1 == 0) preempt
    // nothing and are skipped so an armed preemption always lands
    // inside a real window; consecutive empty slots have probability
    // ~2^-53 each, the scan bound is just a hard stop.
    for (std::uint64_t s = first; s < first + 64; ++s) {
      const Window w = window(k, s);
      if (w.start > from && w.end > w.start) {
        best = std::min(best, w.start);
        break;
      }
    }
  }
  return best;
}

}  // namespace comb::host
