// Deterministic OS-noise injection for the host CPU model.
//
// A NoiseSpec describes background "daemon" activity on a node: each of
// `daemons` independent daemons wakes roughly once per `period`, holds
// the CPU for an exponentially distributed burst around `duration`, and
// its wake time jitters uniformly inside the period. While a daemon
// holds the CPU, user compute is preempted exactly like interrupt
// service — which is what stretches the tail of per-message latency
// without moving the median. An orthogonal `coalesce` knob models NIC
// interrupt coalescing: the first interrupt of an idle batch is held for
// the coalescing window before service starts, so back-to-back
// interrupts batch behind it at no extra delay.
//
// Everything is a pure function of (spec.seed, stream key, daemon, slot):
// the window covering any instant — and the next window after it — is
// computed arithmetically on demand, so the injector schedules no
// free-running events and an idle machine still quiesces. That also
// makes runs bit-reproducible for a fixed seed regardless of sharding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace comb::host {

struct NoiseSpec {
  /// Mean gap between one daemon's wakeups (seconds). 0 disables the
  /// daemon model.
  Time period = 0.0;
  /// Mean CPU burst per wakeup (exponentially distributed, capped at
  /// 3/4 of the period so consecutive wakeups never overlap).
  Time duration = 0.0;
  /// Wakeup-phase jitter as a fraction of the post-burst slack in each
  /// period slot: 0 = strictly periodic, 1 = uniform over the slot.
  double jitter = 1.0;
  /// Independent daemons per CPU.
  int daemons = 1;
  /// Interrupt-coalescing window: the first ISR of an idle batch starts
  /// this much later (0 = immediate service, the historical model).
  Time coalesce = 0.0;
  /// Root seed for the per-daemon streams.
  std::uint64_t seed = 42;

  /// True when the daemon model runs.
  bool enabled() const { return period > 0.0 && duration > 0.0 && daemons > 0; }
  /// Any effect at all (daemons or coalescing) — gates the machine
  /// signature so noise-free configs keep their historical hashes.
  bool active() const { return enabled() || coalesce > 0.0; }
};

/// Validate a spec (throws ConfigError on out-of-range values).
void validateNoiseSpec(const NoiseSpec& spec);

/// Parse the CLI syntax
/// `period_us=250,duration_us=20[,daemons=2][,jitter=0.5][,coalesce_us=4]
/// [,seed=42]`. Unknown keys and out-of-range values throw ConfigError.
NoiseSpec parseNoiseSpec(std::string_view text);

/// Render a spec back to the CLI syntax (round-trips via parseNoiseSpec).
std::string noiseSpecSummary(const NoiseSpec& spec);

/// The evaluated daemon schedule for one CPU. Windows are derived lazily:
/// daemon k's slot i is the interval [i*period, (i+1)*period) and holds at
/// most one burst, fully contained in the slot, so point queries are O(1)
/// per daemon.
class NoiseModel {
 public:
  /// Disabled model: busyEnd(t) == t, nextStart(t) == +inf.
  NoiseModel() = default;
  /// `streamKey` decorrelates CPUs (derive it from the CPU name / node id);
  /// the same (spec.seed, streamKey) always yields the same schedule.
  NoiseModel(const NoiseSpec& spec, std::uint64_t streamKey);

  bool enabled() const { return spec_.enabled(); }
  Time coalesce() const { return spec_.coalesce; }
  const NoiseSpec& spec() const { return spec_; }

  /// End of the daemon busy period covering `t` across all daemons
  /// (returns `t` itself when no daemon holds the CPU at `t`).
  Time busyEnd(Time t) const;
  /// Earliest window start strictly after `t` over all daemons
  /// (infinity() when disabled).
  Time nextStart(Time t) const;

 private:
  struct Window {
    Time start = 0.0;
    Time end = 0.0;
  };
  Window window(int daemon, std::uint64_t slot) const;

  NoiseSpec spec_;
  std::vector<std::uint64_t> daemonSeeds_;
};

/// Stable string hash for deriving per-CPU noise stream keys (FNV-1a,
/// same construction the fault injector uses for per-link streams).
constexpr std::uint64_t noiseStreamKey(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace comb::host
