// Preemptible host CPU model.
//
// A Cpu executes two classes of work:
//   * user compute  — submitted by simulated processes via compute();
//     FIFO, one job at a time (one process per node, per the paper).
//   * interrupt service — raised by devices via raiseInterrupt(); always
//     preempts user compute and runs FIFO at the "kernel" level.
//
// This is the mechanism behind every availability number COMB reports:
// when a Portals-style NIC interrupts the host per packet, user compute
// stretches in wall-clock terms exactly by the stolen service time, and
// the benchmark's dry-run/live-run ratio recovers the paper's
// "CPU availability (fraction to user)".
//
// The model tracks cumulative user and ISR time so tests can verify the
// accounting identity:  userTime + isrTime + idleTime == now.
//
// OS noise (host/noise.hpp) plugs in here: daemon windows preempt user
// compute exactly like ISRs (at lower priority — an ISR raised during a
// daemon window still runs on schedule), and the coalescing knob defers
// the first ISR of an idle batch. With a default-constructed NoiseSpec
// the behaviour is bit-identical to the noise-free model.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/units.hpp"
#include "host/noise.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"

namespace comb::host {

class Cpu {
 public:
  /// `node` tags this CPU's trace records and metrics (-1 = unattributed).
  /// `noise` (default: disabled) attaches the OS-noise injector; its
  /// schedule is derived from (noise.seed, name), so it reproduces
  /// deterministically per (seed, node, cpu).
  Cpu(sim::Simulator& sim, std::string name, int node = -1,
      const NoiseSpec& noise = {});
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Awaitable: consume `seconds` of *user* CPU time. Wall-clock duration
  /// is >= seconds; interrupt service raised while the job runs extends
  /// it. Multiple callers are serviced FIFO.
  sim::Task<void> compute(Time seconds);

  /// Completion callback for raiseInterrupt. Inline-stored (the Portals
  /// receive path raises one per fragment — this must not allocate).
  using IsrHandler = sim::InplaceFn<64>;

  /// Raise an interrupt whose service routine occupies the CPU for
  /// `service` seconds. `handler` (optional) runs when service completes.
  /// ISRs queue FIFO behind any ISR currently in service.
  void raiseInterrupt(Time service, IsrHandler handler = {});

  /// Awaitable: run `seconds` of kernel-level work (scheduled through the
  /// interrupt path — preempts user compute). Used by kernel-resident
  /// protocol processing (the Portals model).
  sim::Task<void> interruptWork(Time seconds);

  // --- accounting -------------------------------------------------------
  /// Cumulative user compute executed (includes the running job's
  /// progress up to now()).
  Time userTime() const;
  /// Cumulative interrupt service executed (includes the in-service
  /// ISR's progress up to now()).
  Time isrTime() const;
  /// Cumulative time noise-daemon windows held the CPU away from pending
  /// user work (0 when the injector is disabled or never collided).
  Time noiseTime() const { return noiseAccum_; }
  std::uint64_t noisePreemptions() const { return noisePreemptions_; }
  const NoiseModel& noise() const { return noise_; }
  std::uint64_t interruptsRaised() const { return interruptsRaised_; }
  const std::string& name() const { return name_; }
  int node() const { return node_; }

  /// True while a user job is queued or running.
  bool busyWithUser() const { return !jobs_.empty(); }

 private:
  struct Job {
    Time remaining;
    Time requested;   ///< original compute request (trace payload)
    Time enqueuedAt;  ///< when compute() was called (trace span start)
    sim::Trigger done;
    Job(sim::Simulator& s, Time r, Time at)
        : remaining(r), requested(r), enqueuedAt(at), done(s) {}
  };

  struct IsrRec {
    Time end;      ///< absolute completion time
    Time service;  ///< service duration
    IsrHandler handler;
  };

  void startFrontJob();
  /// Start (or re-start) the front job at now: waits out kernel/daemon
  /// busy periods, charges a daemon window covering now, or begins the
  /// run and arms the next daemon preemption inside the job's span.
  void runFrontJob();
  void onUserJobComplete();
  void preemptRunningJob();
  void scheduleUserResume();
  void onIsrComplete();
  void onNoisePreempt();
  /// Account a daemon window [from, to) that held the CPU while user
  /// work was pending.
  void chargeNoise(Time from, Time to);

  sim::Simulator& sim_;
  std::string name_;
  int node_;
  metrics::Counter& interruptCounter_;  ///< "host.<name>.interrupts"
  /// "host.<name>.isr_service": distribution of ISR service durations.
  LatencyRecorder& isrServiceLatency_;
  /// "host.<name>.compute_stretch": per-compute() wall-clock overrun
  /// (wall window minus requested cycles) — queuing plus preemption,
  /// i.e. exactly what OS noise inflates at the tail.
  LatencyRecorder& computeStretchLatency_;

  // User side. jobs_ front is the active job; entries point into the
  // awaiting coroutines' frames (valid until the job's trigger fires).
  std::deque<Job*> jobs_;
  bool userRunning_ = false;   ///< front job actively consuming cycles now
  Time userStartedAt_ = 0.0;   ///< when the front job (re)started running
  Time userAccum_ = 0.0;       ///< completed user time (excl. running job)
  sim::EventHandle userCompletion_;
  sim::EventHandle userResume_;

  // ISR side: FIFO of scheduled service intervals; back-to-back intervals
  // form one contiguous kernel busy period ending at isrBusyUntil_.
  std::deque<IsrRec> isrQueue_;
  Time isrBusyUntil_ = 0.0;
  Time isrAccum_ = 0.0;  ///< completed ISR service time
  std::uint64_t interruptsRaised_ = 0;

  // Noise side. Preemption events exist only while a user job is
  // running (the schedule itself is lazy arithmetic), so an idle machine
  // quiesces with the injector attached.
  NoiseModel noise_;
  std::string noiseTraceName_;  ///< "<name>.noise" (stable for trace refs)
  Time noiseBusyUntil_ = 0.0;   ///< end of the last charged daemon window
  Time noiseAccum_ = 0.0;
  std::uint64_t noisePreemptions_ = 0;
  metrics::Counter* noisePreemptCounter_ = nullptr;
  LatencyRecorder* noiseWindowLatency_ = nullptr;
  sim::EventHandle noisePreempt_;
};

}  // namespace comb::host
