// Preemptible host CPU model.
//
// A Cpu executes two classes of work:
//   * user compute  — submitted by simulated processes via compute();
//     FIFO, one job at a time (one process per node, per the paper).
//   * interrupt service — raised by devices via raiseInterrupt(); always
//     preempts user compute and runs FIFO at the "kernel" level.
//
// This is the mechanism behind every availability number COMB reports:
// when a Portals-style NIC interrupts the host per packet, user compute
// stretches in wall-clock terms exactly by the stolen service time, and
// the benchmark's dry-run/live-run ratio recovers the paper's
// "CPU availability (fraction to user)".
//
// The model tracks cumulative user and ISR time so tests can verify the
// accounting identity:  userTime + isrTime + idleTime == now.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/units.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"

namespace comb::host {

class Cpu {
 public:
  /// `node` tags this CPU's trace records and metrics (-1 = unattributed).
  Cpu(sim::Simulator& sim, std::string name, int node = -1);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Awaitable: consume `seconds` of *user* CPU time. Wall-clock duration
  /// is >= seconds; interrupt service raised while the job runs extends
  /// it. Multiple callers are serviced FIFO.
  sim::Task<void> compute(Time seconds);

  /// Completion callback for raiseInterrupt. Inline-stored (the Portals
  /// receive path raises one per fragment — this must not allocate).
  using IsrHandler = sim::InplaceFn<64>;

  /// Raise an interrupt whose service routine occupies the CPU for
  /// `service` seconds. `handler` (optional) runs when service completes.
  /// ISRs queue FIFO behind any ISR currently in service.
  void raiseInterrupt(Time service, IsrHandler handler = {});

  /// Awaitable: run `seconds` of kernel-level work (scheduled through the
  /// interrupt path — preempts user compute). Used by kernel-resident
  /// protocol processing (the Portals model).
  sim::Task<void> interruptWork(Time seconds);

  // --- accounting -------------------------------------------------------
  /// Cumulative user compute executed (includes the running job's
  /// progress up to now()).
  Time userTime() const;
  /// Cumulative interrupt service executed (includes the in-service
  /// ISR's progress up to now()).
  Time isrTime() const;
  std::uint64_t interruptsRaised() const { return interruptsRaised_; }
  const std::string& name() const { return name_; }
  int node() const { return node_; }

  /// True while a user job is queued or running.
  bool busyWithUser() const { return !jobs_.empty(); }

 private:
  struct Job {
    Time remaining;
    Time requested;   ///< original compute request (trace payload)
    Time enqueuedAt;  ///< when compute() was called (trace span start)
    sim::Trigger done;
    Job(sim::Simulator& s, Time r, Time at)
        : remaining(r), requested(r), enqueuedAt(at), done(s) {}
  };

  struct IsrRec {
    Time end;      ///< absolute completion time
    Time service;  ///< service duration
    IsrHandler handler;
  };

  void startFrontJob();
  void onUserJobComplete();
  void preemptRunningJob();
  void scheduleUserResume();
  void onIsrComplete();

  sim::Simulator& sim_;
  std::string name_;
  int node_;
  metrics::Counter& interruptCounter_;  ///< "host.<name>.interrupts"

  // User side. jobs_ front is the active job; entries point into the
  // awaiting coroutines' frames (valid until the job's trigger fires).
  std::deque<Job*> jobs_;
  bool userRunning_ = false;   ///< front job actively consuming cycles now
  Time userStartedAt_ = 0.0;   ///< when the front job (re)started running
  Time userAccum_ = 0.0;       ///< completed user time (excl. running job)
  sim::EventHandle userCompletion_;
  sim::EventHandle userResume_;

  // ISR side: FIFO of scheduled service intervals; back-to-back intervals
  // form one contiguous kernel busy period ending at isrBusyUntil_.
  std::deque<IsrRec> isrQueue_;
  Time isrBusyUntil_ = 0.0;
  Time isrAccum_ = 0.0;  ///< completed ISR service time
  std::uint64_t interruptsRaised_ = 0;
};

}  // namespace comb::host
