#include "host/cpu.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::host {

Cpu::Cpu(sim::Simulator& sim, std::string name, int node)
    : sim_(sim),
      name_(std::move(name)),
      node_(node),
      interruptCounter_(sim.metrics().counter(
          strFormat("host.%s.interrupts", name_.c_str()))) {}

sim::Task<void> Cpu::compute(Time seconds) {
  COMB_ASSERT(seconds >= 0.0, "negative compute request");
  Job job(sim_, seconds, sim_.now());
  jobs_.push_back(&job);
  if (jobs_.size() == 1) startFrontJob();
  co_await job.done.wait();
}

void Cpu::startFrontJob() {
  COMB_ASSERT(!jobs_.empty(), "startFrontJob with no jobs");
  if (sim_.now() < isrBusyUntil_) {
    userRunning_ = false;
    scheduleUserResume();
    return;
  }
  userRunning_ = true;
  userStartedAt_ = sim_.now();
  userCompletion_ =
      sim_.schedule(jobs_.front()->remaining, [this] { onUserJobComplete(); });
}

void Cpu::onUserJobComplete() {
  COMB_ASSERT(!jobs_.empty() && userRunning_,
              "user completion without a running job");
  Job* job = jobs_.front();
  userAccum_ += job->remaining;
  job->remaining = 0.0;
  jobs_.pop_front();
  userRunning_ = false;
  // The full wall-clock window of this compute request is known only now
  // (queuing + ISR preemption stretch it), so record it as a Complete
  // span: t = submission, dur = wall window, a = cycles requested.
  if (sim_.tracing())
    sim_.emitTraceCompleteAt(job->enqueuedAt, sim_.now() - job->enqueuedAt,
                             sim::TraceCategory::Compute, node_, name_,
                             job->requested);
  job->done.fire();
  if (!jobs_.empty()) startFrontJob();
}

void Cpu::preemptRunningJob() {
  COMB_ASSERT(userRunning_ && !jobs_.empty(), "preempt without running job");
  const Time elapsed = sim_.now() - userStartedAt_;
  Job* job = jobs_.front();
  // Guard against floating-point dust taking `remaining` negative.
  const Time progressed = std::min(elapsed, job->remaining);
  job->remaining -= progressed;
  userAccum_ += progressed;
  userCompletion_.cancel();
  userRunning_ = false;
}

void Cpu::scheduleUserResume() {
  userResume_.cancel();
  userResume_ = sim_.scheduleAt(isrBusyUntil_, [this] {
    if (sim_.now() < isrBusyUntil_) return;  // superseded by a later resume
    if (jobs_.empty() || userRunning_) return;
    userRunning_ = true;
    userStartedAt_ = sim_.now();
    userCompletion_ = sim_.schedule(jobs_.front()->remaining,
                                    [this] { onUserJobComplete(); });
  });
}

void Cpu::raiseInterrupt(Time service, IsrHandler handler) {
  COMB_ASSERT(service >= 0.0, "negative interrupt service time");
  ++interruptsRaised_;
  interruptCounter_.add();
  const Time start = std::max(sim_.now(), isrBusyUntil_);
  const Time end = start + service;
  // ISRs queue FIFO behind the current kernel busy period; the service
  // window [start, end) is known here, so emit it as a Complete span.
  if (sim_.tracing())
    sim_.emitTraceCompleteAt(start, service, sim::TraceCategory::Interrupt,
                             node_, name_, service);
  isrBusyUntil_ = end;
  isrQueue_.push_back(IsrRec{end, service, std::move(handler)});
  sim_.scheduleAt(end, [this] { onIsrComplete(); });
  if (!jobs_.empty()) {
    if (userRunning_) preemptRunningJob();
    scheduleUserResume();
  }
}

void Cpu::onIsrComplete() {
  COMB_ASSERT(!isrQueue_.empty(), "ISR completion with empty queue");
  IsrRec rec = std::move(isrQueue_.front());
  isrQueue_.pop_front();
  isrAccum_ += rec.service;
  if (rec.handler) rec.handler();
}

sim::Task<void> Cpu::interruptWork(Time seconds) {
  sim::Trigger done(sim_);
  raiseInterrupt(seconds, [&done] { done.fire(); });
  co_await done.wait();
}

Time Cpu::userTime() const {
  Time t = userAccum_;
  if (userRunning_) t += sim_.now() - userStartedAt_;
  return t;
}

Time Cpu::isrTime() const {
  Time t = isrAccum_;
  if (!isrQueue_.empty()) {
    const IsrRec& front = isrQueue_.front();
    const Time start = front.end - front.service;
    if (sim_.now() > start)
      t += std::min(sim_.now(), front.end) - start;
  }
  return t;
}

}  // namespace comb::host
