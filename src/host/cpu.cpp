#include "host/cpu.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::host {

Cpu::Cpu(sim::Simulator& sim, std::string name, int node,
         const NoiseSpec& noise)
    : sim_(sim),
      name_(std::move(name)),
      node_(node),
      interruptCounter_(sim.metrics().counter(
          strFormat("host.%s.interrupts", name_.c_str()))),
      isrServiceLatency_(sim.metrics().latency(
          strFormat("host.%s.isr_service", name_.c_str()))),
      computeStretchLatency_(sim.metrics().latency(
          strFormat("host.%s.compute_stretch", name_.c_str()))) {
  if (noise.active()) {
    // The stream key hashes the CPU name ("cpu<node>.<idx>"), so the
    // schedule is a pure function of (seed, node, cpu) — independent of
    // sharding or construction order.
    noise_ = NoiseModel(noise, noiseStreamKey(name_));
    noiseTraceName_ = name_ + ".noise";
    noisePreemptCounter_ = &sim.metrics().counter(
        strFormat("host.%s.noise_preempts", name_.c_str()));
    noiseWindowLatency_ = &sim.metrics().latency(
        strFormat("host.%s.noise_window", name_.c_str()));
  }
}

sim::Task<void> Cpu::compute(Time seconds) {
  COMB_ASSERT(seconds >= 0.0, "negative compute request");
  Job job(sim_, seconds, sim_.now());
  jobs_.push_back(&job);
  if (jobs_.size() == 1) startFrontJob();
  co_await job.done.wait();
}

void Cpu::startFrontJob() {
  COMB_ASSERT(!jobs_.empty(), "startFrontJob with no jobs");
  userRunning_ = false;
  runFrontJob();
}

void Cpu::runFrontJob() {
  COMB_ASSERT(!jobs_.empty() && !userRunning_, "runFrontJob misuse");
  const Time now = sim_.now();
  if (now < std::max(isrBusyUntil_, noiseBusyUntil_)) {
    scheduleUserResume();
    return;
  }
  if (noise_.enabled()) {
    // A daemon window already covering `now` holds the CPU before the
    // job can start (the daemon was "running" while we were idle).
    const Time busy = noise_.busyEnd(now);
    if (busy > now) {
      chargeNoise(now, busy);
      scheduleUserResume();
      return;
    }
  }
  userRunning_ = true;
  userStartedAt_ = now;
  userCompletion_ =
      sim_.schedule(jobs_.front()->remaining, [this] { onUserJobComplete(); });
  if (noise_.enabled()) {
    const Time next = noise_.nextStart(now);
    if (next < now + jobs_.front()->remaining)
      noisePreempt_ =
          sim_.scheduleAt(next, [this] { onNoisePreempt(); });
  }
}

void Cpu::onNoisePreempt() {
  if (!userRunning_ || jobs_.empty()) return;  // stale (preempted meanwhile)
  const Time now = sim_.now();
  const Time busy = noise_.busyEnd(now);
  if (busy <= now) {
    // Floating-point slot boundaries can arm a preemption an instant
    // before any window actually covers the clock; re-arm for the next
    // window instead of preempting (the job keeps running meanwhile).
    const Time next = noise_.nextStart(now);
    if (next < userStartedAt_ + jobs_.front()->remaining)
      noisePreempt_ = sim_.scheduleAt(next, [this] { onNoisePreempt(); });
    return;
  }
  preemptRunningJob();
  chargeNoise(now, busy);
  scheduleUserResume();
}

void Cpu::chargeNoise(Time from, Time to) {
  noiseBusyUntil_ = to;
  noiseAccum_ += to - from;
  ++noisePreemptions_;
  if (noisePreemptCounter_ != nullptr) noisePreemptCounter_->add();
  if (noiseWindowLatency_ != nullptr) noiseWindowLatency_->record(to - from);
  if (sim_.tracing())
    sim_.emitTraceCompleteAt(from, to - from, sim::TraceCategory::Interrupt,
                             node_, noiseTraceName_, to - from);
}

void Cpu::onUserJobComplete() {
  COMB_ASSERT(!jobs_.empty() && userRunning_,
              "user completion without a running job");
  Job* job = jobs_.front();
  userAccum_ += job->remaining;
  job->remaining = 0.0;
  jobs_.pop_front();
  userRunning_ = false;
  // The full wall-clock window of this compute request is known only now
  // (queuing + ISR preemption stretch it), so record it as a Complete
  // span: t = submission, dur = wall window, a = cycles requested.
  if (sim_.tracing())
    sim_.emitTraceCompleteAt(job->enqueuedAt, sim_.now() - job->enqueuedAt,
                             sim::TraceCategory::Compute, node_, name_,
                             job->requested);
  computeStretchLatency_.record(sim_.now() - job->enqueuedAt -
                                job->requested);
  job->done.fire();
  if (!jobs_.empty()) startFrontJob();
}

void Cpu::preemptRunningJob() {
  COMB_ASSERT(userRunning_ && !jobs_.empty(), "preempt without running job");
  const Time elapsed = sim_.now() - userStartedAt_;
  Job* job = jobs_.front();
  // Guard against floating-point dust taking `remaining` negative.
  const Time progressed = std::min(elapsed, job->remaining);
  job->remaining -= progressed;
  userAccum_ += progressed;
  userCompletion_.cancel();
  noisePreempt_.cancel();
  userRunning_ = false;
}

void Cpu::scheduleUserResume() {
  userResume_.cancel();
  const Time at = std::max(isrBusyUntil_, noiseBusyUntil_);
  userResume_ = sim_.scheduleAt(at, [this] {
    // Superseded by a later resume (another ISR / daemon window landed).
    if (sim_.now() < std::max(isrBusyUntil_, noiseBusyUntil_)) return;
    if (jobs_.empty() || userRunning_) return;
    runFrontJob();
  });
}

void Cpu::raiseInterrupt(Time service, IsrHandler handler) {
  COMB_ASSERT(service >= 0.0, "negative interrupt service time");
  ++interruptsRaised_;
  interruptCounter_.add();
  isrServiceLatency_.record(service);
  // Interrupt coalescing: the first ISR of an idle batch is held for the
  // coalescing window; anything raised while the queue is busy batches
  // behind it at no extra delay. ISRs ignore daemon windows (interrupts
  // outrank daemons).
  const Time hold = isrQueue_.empty() ? noise_.coalesce() : 0.0;
  const Time start = std::max(sim_.now() + hold, isrBusyUntil_);
  const Time end = start + service;
  // ISRs queue FIFO behind the current kernel busy period; the service
  // window [start, end) is known here, so emit it as a Complete span.
  if (sim_.tracing())
    sim_.emitTraceCompleteAt(start, service, sim::TraceCategory::Interrupt,
                             node_, name_, service);
  isrBusyUntil_ = end;
  isrQueue_.push_back(IsrRec{end, service, std::move(handler)});
  sim_.scheduleAt(end, [this] { onIsrComplete(); });
  if (!jobs_.empty()) {
    if (userRunning_) preemptRunningJob();
    scheduleUserResume();
  }
}

void Cpu::onIsrComplete() {
  COMB_ASSERT(!isrQueue_.empty(), "ISR completion with empty queue");
  IsrRec rec = std::move(isrQueue_.front());
  isrQueue_.pop_front();
  isrAccum_ += rec.service;
  if (rec.handler) rec.handler();
}

sim::Task<void> Cpu::interruptWork(Time seconds) {
  sim::Trigger done(sim_);
  raiseInterrupt(seconds, [&done] { done.fire(); });
  co_await done.wait();
}

Time Cpu::userTime() const {
  Time t = userAccum_;
  if (userRunning_) t += sim_.now() - userStartedAt_;
  return t;
}

Time Cpu::isrTime() const {
  Time t = isrAccum_;
  if (!isrQueue_.empty()) {
    const IsrRec& front = isrQueue_.front();
    const Time start = front.end - front.service;
    if (sim_.now() > start)
      t += std::min(sim_.now(), front.end) - start;
  }
  return t;
}

}  // namespace comb::host
