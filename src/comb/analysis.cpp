#include "comb/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "comb/presets.hpp"
#include "common/string_util.hpp"

namespace comb::bench {

OverlapAssessment assessMachine(const backend::MachineConfig& machine,
                                const AssessOptions& options) {
  OverlapAssessment a;
  a.machineName = machine.name;
  a.msgBytes = options.msgBytes;

  // Polling sweep: find the bandwidth/availability frontier.
  RunOptions opts;
  opts.jobs = options.jobs;
  opts.simJobs = options.simJobs;
  opts.simAffinity = options.simAffinity;

  // Conventional ping-pong.
  LatencyParams lat;
  lat.msgBytes = options.msgBytes;
  a.pingPong = runLatencyPoint(machine, lat, coreOptions(opts));
  const auto sweep =
      runPollingSweep(machine,
                      sweepOver(presets::pollingBase(options.msgBytes),
                                presets::pollSweep(options.pointsPerDecade)),
                      opts);
  for (const auto& p : sweep)
    a.peakBandwidthBps = std::max(a.peakBandwidthBps, p.bandwidthBps);
  for (const auto& p : sweep)
    if (p.bandwidthBps >= 0.85 * a.peakBandwidthBps)
      a.availabilityAtFullRate =
          std::max(a.availabilityAtFullRate, p.availability);

  // PWW offload probe, with and without the inserted call.
  auto pww = presets::pwwBase(options.msgBytes);
  pww.workInterval = options.longWorkInterval;
  a.longWork = runPwwPoint(machine, pww, coreOptions(opts));
  auto pwwTest = pww;
  pwwTest.testCallAtFraction = options.testCallAtFraction;
  a.longWorkWithTest = runPwwPoint(machine, pwwTest, coreOptions(opts));

  a.applicationOffload = a.longWork.avgWaitPerMsg < 0.05 * a.longWork.dryWork;
  a.workInflation =
      a.longWork.dryWork > 0 ? a.longWork.avgWork / a.longWork.dryWork - 1.0
                             : 0.0;
  a.libraryDrivenProgress =
      !a.applicationOffload &&
      a.longWorkWithTest.avgWaitPerMsg < 0.5 * a.longWork.avgWaitPerMsg;
  return a;
}

std::string OverlapAssessment::verdictText() const {
  std::ostringstream os;
  os << strFormat("  latency (half round trip)   %s\n",
                  fmtTime(pingPong.halfRoundTripAvg).c_str());
  os << strFormat("  peak polling bandwidth      %.2f MB/s\n",
                  toMBps(peakBandwidthBps));
  os << strFormat("  availability at full rate   %.3f\n",
                  availabilityAtFullRate);
  os << strFormat("  PWW wait after long work    %s/msg\n",
                  fmtTime(longWork.avgWaitPerMsg).c_str());
  os << strFormat("  ... with one MPI_Test       %s/msg\n",
                  fmtTime(longWorkWithTest.avgWaitPerMsg).c_str());
  os << strFormat("  work-phase inflation        %.1f%%\n",
                  100.0 * workInflation);
  os << strFormat("\n  application offload: %s\n",
                  applicationOffload ? "YES" : "NO");
  if (libraryDrivenProgress) {
    os << "  progress is library-driven: communication advances only "
          "inside MPI calls\n  (the paper's §4.3 MPI progress-rule "
          "violation)\n";
  }
  if (applicationOffload && workInflation > 0.02) {
    os << strFormat(
        "  offload is paid for on the host: the work phase stretches "
        "%.0f%% while\n  messages flow (interrupts/kernel copies)\n",
        100.0 * workInflation);
  }
  if (applicationOffload && workInflation <= 0.02) {
    os << "  overlap is free: messaging progresses with no measurable "
          "work-phase cost\n";
  }
  return os.str();
}

}  // namespace comb::bench
