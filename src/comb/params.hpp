// Parameters and result records for the COMB methods.
#pragma once

#include <cstdint>
#include <vector>

#include "common/latency_recorder.hpp"
#include "common/units.hpp"
#include "mpi/types.hpp"
#include "net/fault.hpp"

namespace comb::bench {

// ---------------------------------------------------------------------------
// Polling method (paper §2.1, Figs 1-2)
// ---------------------------------------------------------------------------

struct PollingParams {
  Bytes msgBytes = 100 * 1024;
  /// Messages kept in flight per direction ("queue of messages at each
  /// node ... to maximize achievable bandwidth"; 1 degenerates to a
  /// standard ping-pong, paper §2.1).
  int queueDepth = 8;
  /// Inner delay-loop iterations between polls — the primary variable.
  std::uint64_t pollInterval = 10'000;
  /// The runner picks the number of polls so the measured window lasts at
  /// least `targetDuration`, bounded by [minPolls, maxPolls].
  Time targetDuration = 60e-3;
  std::uint64_t minPolls = 6;
  std::uint64_t maxPolls = 60'000;

  mpi::Tag dataTag = 1;
  mpi::Tag ctrlTag = 2;
};

struct PollingPoint {
  std::uint64_t pollInterval = 0;
  Bytes msgBytes = 0;
  /// time(work, no messaging) / time(same work + MPI calls, messaging).
  double availability = 0.0;
  /// One-direction goodput observed by the worker (bytes/second).
  double bandwidthBps = 0.0;
  Time dryTime = 0.0;
  Time liveTime = 0.0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t pollsExecuted = 0;
  /// Fault-injection/reliability counters for the whole cluster run (all
  /// zero on a lossless fabric). Filled in by the point runner.
  net::FaultCounters fault;
  /// Per-message MPI completion-latency distribution summaries, merged
  /// across every rank's base send/recv recorder (phase-scoped variants
  /// excluded). Filled in by the point runner; zero when the run recorded
  /// no messages.
  TailSummary sendTail;
  TailSummary recvTail;
  /// Executor load imbalance (sim/executor shardImbalance): 1.0 for the
  /// serial core and perfectly balanced shards.
  double shardImbalance = 1.0;
};

// ---------------------------------------------------------------------------
// Post-Work-Wait method (paper §2.2, Fig 3)
// ---------------------------------------------------------------------------

struct PwwParams {
  Bytes msgBytes = 100 * 1024;
  /// Non-blocking send/recv pairs posted per cycle. The paper's current
  /// PWW exchanges a single message each way per cycle.
  int batch = 1;
  /// Work-loop iterations in the work phase — the primary variable.
  std::uint64_t workInterval = 100'000;
  /// Measured post-work-wait cycles (first cycle is warm-up, excluded).
  int reps = 24;
  /// Insert one MPI_Test this fraction into the work phase (the §4.3
  /// "MPI library call effect" variant). Negative = no call.
  double testCallAtFraction = -1.0;

  mpi::Tag dataTag = 1;
};

struct PwwPoint {
  std::uint64_t workInterval = 0;
  Bytes msgBytes = 0;
  /// time(work, no messaging) / time(post + work + wait).
  double availability = 0.0;
  /// One-direction goodput: batch*msgBytes / avg cycle time.
  double bandwidthBps = 0.0;
  // Per-cycle phase durations (averaged over reps, warm-up excluded):
  Time avgPost = 0.0;
  Time avgWork = 0.0;  ///< "work with message handling"
  Time avgWait = 0.0;
  Time dryWork = 0.0;  ///< same work loop with no communication
  /// Per-post and per-message views used by Figs 10-13.
  Time avgPostPerOp = 0.0;   ///< avgPost / (2*batch): one send or recv post
  Time avgWaitPerMsg = 0.0;  ///< avgWait / batch
  int reps = 0;
  /// Fault-injection/reliability counters for the whole cluster run.
  net::FaultCounters fault;
  /// Per-message MPI send/recv completion-latency tails (see
  /// PollingPoint) and executor load imbalance.
  TailSummary sendTail;
  TailSummary recvTail;
  double shardImbalance = 1.0;
};

/// Log-spaced sweep values (paper x-axes are log poll/work interval).
std::vector<std::uint64_t> logSweep(std::uint64_t lo, std::uint64_t hi,
                                    int pointsPerDecade);

}  // namespace comb::bench
