// Classic ping-pong latency/bandwidth microbenchmark.
//
// Not part of the paper's two COMB methods, but the baseline they are
// contrasted against (§1: "most MPI microbenchmarks can measure latency, bandwidth,
// and host CPU overhead, but they fail to accurately characterize the
// actual performance that applications can expect"). Having it in the
// suite lets users see exactly what the polling/PWW methods add: the
// ping-pong numbers look similar across stacks whose overlap behaviour is
// completely different.
#pragma once

#include <vector>

#include "comb/params.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "mpi/request.hpp"
#include "sim/task.hpp"

namespace comb::bench {

struct LatencyParams {
  Bytes msgBytes = 0;
  int reps = 50;  ///< measured round trips (plus one warm-up)
  mpi::Tag tag = 1;
};

struct LatencyPoint {
  Bytes msgBytes = 0;
  Time halfRoundTripAvg = 0.0;  ///< the usual "latency" number
  Time halfRoundTripMin = 0.0;
  /// msgBytes / halfRoundTripAvg: the ping-pong "bandwidth".
  double bandwidthBps = 0.0;
  int reps = 0;
  /// Fault-injection/reliability counters for the whole cluster run.
  net::FaultCounters fault;
  /// Per-message MPI send/recv completion-latency tails (see
  /// PollingPoint) and executor load imbalance.
  TailSummary sendTail;
  TailSummary recvTail;
  double shardImbalance = 1.0;
};

/// Initiator role (rank 0 of `world`, any 2-rank communicator).
template <typename Env, typename CommType>
sim::Task<LatencyPoint> latencyInitiatorOn(Env& env, LatencyParams p,
                                           const CommType& world) {
  COMB_REQUIRE(world.rank() == 0, "initiator must be rank 0");
  COMB_REQUIRE(p.reps >= 1, "need at least one rep");
  auto& mpi = env.mpi();
  co_await mpi.barrier(world);

  RunningStats halves;
  for (int r = 0; r <= p.reps; ++r) {
    const auto t0 = env.wtime();
    co_await mpi.send(world, 1, p.tag, p.msgBytes);
    co_await mpi.recv(world, 1, p.tag, p.msgBytes);
    const auto rt = env.wtime() - t0;
    if (r > 0) halves.add(rt / 2.0);  // first rep is warm-up
  }
  co_await mpi.barrier(world);

  LatencyPoint point;
  point.msgBytes = p.msgBytes;
  point.reps = p.reps;
  point.halfRoundTripAvg = halves.mean();
  point.halfRoundTripMin = halves.min();
  point.bandwidthBps = point.halfRoundTripAvg > 0
                           ? static_cast<double>(p.msgBytes) /
                                 point.halfRoundTripAvg
                           : 0.0;
  co_return point;
}

/// Echo role (rank 1).
template <typename Env, typename CommType>
sim::Task<void> latencyEchoOn(Env& env, LatencyParams p,
                              const CommType& world) {
  COMB_REQUIRE(world.rank() == 1, "echo must be rank 1");
  auto& mpi = env.mpi();
  co_await mpi.barrier(world);
  for (int r = 0; r <= p.reps; ++r) {
    co_await mpi.recv(world, 0, p.tag, p.msgBytes);
    co_await mpi.send(world, 0, p.tag, p.msgBytes);
  }
  co_await mpi.barrier(world);
}

/// Convenience overloads on the backend's world communicator.
template <typename Env>
sim::Task<LatencyPoint> latencyInitiator(Env& env, LatencyParams p) {
  co_return co_await latencyInitiatorOn(env, std::move(p),
                                        env.mpi().world());
}

template <typename Env>
sim::Task<void> latencyEcho(Env& env, LatencyParams p) {
  co_await latencyEchoOn(env, std::move(p), env.mpi().world());
}

}  // namespace comb::bench
