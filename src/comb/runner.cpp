#include "comb/runner.hpp"

#include <cmath>

#include "backend/sim_cluster.hpp"
#include "common/error.hpp"
#include "comb/polling.hpp"
#include "comb/pww.hpp"
#include "common/log.hpp"

namespace comb::bench {

namespace {

sim::Task<void> pollingWorkerDriver(backend::SimProc& env, PollingParams p,
                                    PollingPoint& out) {
  out = co_await pollingWorker(env, p);
}

sim::Task<void> pwwWorkerDriver(backend::SimProc& env, PwwParams p,
                                PwwPoint& out) {
  out = co_await pwwWorker(env, p);
}

sim::Task<void> latencyDriver(backend::SimProc& env, LatencyParams p,
                              LatencyPoint& out) {
  out = co_await latencyInitiator(env, p);
}

}  // namespace

backend::MachineConfig machineWithOptions(const backend::MachineConfig& machine,
                                          const RunOptions& opts) {
  if (!opts.fault) return machine;
  net::validateFaultSpec(*opts.fault);
  backend::MachineConfig m = machine;
  m.fabric.link.fault = *opts.fault;
  return m;
}

std::vector<std::uint64_t> logSweep(std::uint64_t lo, std::uint64_t hi,
                                    int pointsPerDecade) {
  COMB_REQUIRE(lo > 0 && hi >= lo, "bad sweep bounds");
  COMB_REQUIRE(pointsPerDecade >= 1, "need at least one point per decade");
  std::vector<std::uint64_t> xs;
  const double e0 = std::log10(static_cast<double>(lo));
  const double step = 1.0 / pointsPerDecade;
  // Values at or above 2^64 are unrepresentable; break before casting
  // (the cast itself would be UB, and llround saturates at 2^63 anyway).
  constexpr double kTwoPow64 = 18446744073709551616.0;
  for (std::uint64_t i = 0;; ++i) {
    // Recompute from the integer index: accumulating `e += step` drifts
    // after tens of additions and can skip or duplicate a grid point.
    const double e = e0 + static_cast<double>(i) * step;
    const double vd = std::round(std::pow(10.0, e));
    if (!(vd < kTwoPow64)) break;
    const auto v = static_cast<std::uint64_t>(vd);
    if (v > hi) break;
    if (xs.empty() || v != xs.back()) xs.push_back(v);
  }
  if (xs.empty() || xs.back() != hi) xs.push_back(hi);
  for (std::size_t i = 1; i < xs.size(); ++i)
    COMB_ASSERT(xs[i] > xs[i - 1], "logSweep grid not strictly increasing");
  return xs;
}

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params,
                             const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2);
  PollingPoint point;
  cluster.launch(0, pollingWorkerDriver(cluster.proc(0), params, point),
                 "polling-worker");
  cluster.launch(1, pollingSupport(cluster.proc(1), params),
                 "polling-support");
  cluster.run();
  point.fault = cluster.faultCounters();
  return point;
}

PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params, const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2);
  PwwPoint point;
  cluster.launch(0, pwwWorkerDriver(cluster.proc(0), params, point),
                 "pww-worker");
  cluster.launch(1, pwwSupport(cluster.proc(1), params), "pww-support");
  cluster.run();
  point.fault = cluster.faultCounters();
  return point;
}

TracedRun<PollingPoint> runPollingPointTraced(
    const backend::MachineConfig& machine, const PollingParams& params,
    const RunOptions& opts, std::size_t traceCapacity) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2);
  cluster.enableTracing(traceCapacity);
  TracedRun<PollingPoint> run;
  cluster.launch(0, pollingWorkerDriver(cluster.proc(0), params, run.point),
                 "polling-worker");
  cluster.launch(1, pollingSupport(cluster.proc(1), params),
                 "polling-support");
  cluster.run();
  run.point.fault = cluster.faultCounters();
  run.stats = report::snapshot(cluster);
  run.trace = cluster.releaseTraceLog();
  return run;
}

TracedRun<PwwPoint> runPwwPointTraced(const backend::MachineConfig& machine,
                                      const PwwParams& params,
                                      const RunOptions& opts,
                                      std::size_t traceCapacity) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2);
  cluster.enableTracing(traceCapacity);
  TracedRun<PwwPoint> run;
  cluster.launch(0, pwwWorkerDriver(cluster.proc(0), params, run.point),
                 "pww-worker");
  cluster.launch(1, pwwSupport(cluster.proc(1), params), "pww-support");
  cluster.run();
  run.point.fault = cluster.faultCounters();
  run.stats = report::snapshot(cluster);
  run.trace = cluster.releaseTraceLog();
  return run;
}

LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params,
                             const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2);
  LatencyPoint point;
  cluster.launch(0, latencyDriver(cluster.proc(0), params, point),
                 "latency-initiator");
  cluster.launch(1, latencyEcho(cluster.proc(1), params), "latency-echo");
  cluster.run();
  point.fault = cluster.faultCounters();
  return point;
}

namespace {

/// Expand a SweepSpec into per-point parameter sets.
template <typename Param>
std::vector<Param> expandSpec(const SweepSpec<Param>& spec,
                              std::uint64_t Param::*primary) {
  auto axis = spec.axis != nullptr ? spec.axis : primary;
  std::vector<Param> paramSets;
  paramSets.reserve(spec.values.size());
  for (const auto v : spec.values) {
    Param p = spec.base;
    p.*axis = v;
    paramSets.push_back(p);
  }
  return paramSets;
}

}  // namespace

std::vector<PollingPoint> runPollingSweep(const backend::MachineConfig& machine,
                                          const SweepSpec<PollingParams>& spec,
                                          const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &PollingParams::pollInterval);
  auto points = runSweepParallel(
      m, paramSets,
      [](const backend::MachineConfig& mc, const PollingParams& p) {
        return runPollingPoint(mc, p);
      },
      opts.jobs);
  // Log after the sweep, in input order, so the trace reads identically
  // whether points ran serially or on the pool.
  for (const auto& p : points) {
    COMB_LOG(Debug) << machine.name << " polling interval=" << p.pollInterval
                    << " bw=" << toMBps(p.bandwidthBps)
                    << " MB/s avail=" << p.availability;
  }
  return points;
}

std::vector<PwwPoint> runPwwSweep(const backend::MachineConfig& machine,
                                  const SweepSpec<PwwParams>& spec,
                                  const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &PwwParams::workInterval);
  auto points = runSweepParallel(
      m, paramSets,
      [](const backend::MachineConfig& mc, const PwwParams& p) {
        return runPwwPoint(mc, p);
      },
      opts.jobs);
  for (const auto& p : points) {
    COMB_LOG(Debug) << machine.name << " pww work=" << p.workInterval
                    << " bw=" << toMBps(p.bandwidthBps)
                    << " MB/s avail=" << p.availability;
  }
  return points;
}

std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const SweepSpec<LatencyParams>& spec,
                                          const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &LatencyParams::msgBytes);
  return runSweepParallel(
      m, paramSets,
      [](const backend::MachineConfig& mc, const LatencyParams& p) {
        return runLatencyPoint(mc, p);
      },
      opts.jobs);
}

// --- deprecated positional overloads ---------------------------------------

std::vector<PollingPoint> runPollingSweep(
    const backend::MachineConfig& machine, PollingParams base,
    const std::vector<std::uint64_t>& pollIntervals, int jobs) {
  SweepSpec<PollingParams> spec;
  spec.base = base;
  spec.values = pollIntervals;
  RunOptions opts;
  opts.jobs = jobs;
  return runPollingSweep(machine, spec, opts);
}

std::vector<PwwPoint> runPwwSweep(
    const backend::MachineConfig& machine, PwwParams base,
    const std::vector<std::uint64_t>& workIntervals, int jobs) {
  SweepSpec<PwwParams> spec;
  spec.base = base;
  spec.values = workIntervals;
  RunOptions opts;
  opts.jobs = jobs;
  return runPwwSweep(machine, spec, opts);
}

std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const std::vector<Bytes>& sizes,
                                          int reps, int jobs) {
  SweepSpec<LatencyParams> spec;
  spec.base.reps = reps;
  spec.values = sizes;
  RunOptions opts;
  opts.jobs = jobs;
  return runLatencySweep(machine, spec, opts);
}

}  // namespace comb::bench
