#include "comb/runner.hpp"

#include <cmath>

#include <algorithm>
#include <atomic>

#include "backend/sim_cluster.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "comb/polling.hpp"
#include "comb/pww.hpp"
#include "common/log.hpp"

namespace comb::bench {

namespace {

sim::Task<void> pollingWorkerDriver(backend::SimProc& env, PollingParams p,
                                    PollingPoint& out) {
  out = co_await pollingWorker(env, p);
}

sim::Task<void> pwwWorkerDriver(backend::SimProc& env, PwwParams p,
                                PwwPoint& out) {
  out = co_await pwwWorker(env, p);
}

sim::Task<void> latencyDriver(backend::SimProc& env, LatencyParams p,
                              LatencyPoint& out) {
  out = co_await latencyInitiator(env, p);
}

/// Harvest the per-message MPI latency tails and the executor imbalance
/// after a cluster run. The merged families cover every rank's base
/// send/recv recorder; shard-count invariance of the merge keeps the
/// summaries byte-identical across --sim-jobs values.
template <typename Point>
void fillObservability(backend::SimCluster& cluster, Point& point) {
  const auto snap = cluster.metricsSnapshot();
  point.sendTail =
      metrics::mergeLatencyFamily(snap, "mpi.n", ".send_latency").tail();
  point.recvTail =
      metrics::mergeLatencyFamily(snap, "mpi.n", ".recv_latency").tail();
  point.shardImbalance = cluster.shardImbalance();
}

}  // namespace

backend::MachineConfig machineWithOptions(const backend::MachineConfig& machine,
                                          const RunOptions& opts) {
  if (!opts.fault && !opts.noise) return machine;
  backend::MachineConfig m = machine;
  if (opts.fault) {
    net::validateFaultSpec(*opts.fault);
    m.fabric.link.fault = *opts.fault;
  }
  if (opts.noise) {
    host::validateNoiseSpec(*opts.noise);
    m.noise = *opts.noise;
  }
  return m;
}

int simWorkerBudget(const RunOptions& opts) {
  if (opts.simJobs <= 1) return 0;  // serial core: no worker threads at all
  const int sweepJobs = std::max(opts.jobs, 1);
  const int hw = std::max(hardwareJobs(), 1);
  if (static_cast<long long>(sweepJobs) * opts.simJobs <= hw) return 0;
  const int cap = std::max(1, hw / sweepJobs);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    COMB_LOG(Warn) << "thread budget: --jobs " << sweepJobs << " x --sim-jobs "
                   << opts.simJobs << " exceeds hardware concurrency (" << hw
                   << "); capping each cluster at " << cap
                   << " worker thread(s). Results are unchanged (shard count "
                      "is fixed by --sim-jobs); only wall time is affected.";
  }
  return cap;
}

void validateRepPolicy(const RepPolicy& policy) {
  COMB_REQUIRE(policy.reps >= 1, "--reps must be >= 1");
  COMB_REQUIRE(policy.maxReps >= 1, "--max-reps must be >= 1");
  COMB_REQUIRE(policy.minReps >= 1 && policy.minReps <= policy.maxReps,
               "rep policy needs 1 <= minReps <= maxReps");
  COMB_REQUIRE(policy.ciTarget > 0.0, "--ci-target must be > 0");
  COMB_REQUIRE(policy.ciLevel > 0.0 && policy.ciLevel < 1.0,
               "CI level outside (0,1)");
}

std::uint64_t repSeed(std::uint64_t root, int rep) {
  // splitmix64 walk: mix the rep index into the root so that nearby reps
  // get statistically independent fault streams.
  std::uint64_t state = root ^ (0x9E3779B97F4A7C15ull *
                                static_cast<std::uint64_t>(rep));
  return splitmix64(state);
}

RepRun<PollingPoint> runPollingPointReps(const backend::MachineConfig& machine,
                                         const PollingParams& params,
                                         const RunOptions& opts) {
  return runPointRepsWith<PollingPoint>(machine, opts,
                                        [&](const backend::MachineConfig& m) {
          return runPollingPoint(m, params, coreOptions(opts));
        });
}

RepRun<PwwPoint> runPwwPointReps(const backend::MachineConfig& machine,
                                 const PwwParams& params,
                                 const RunOptions& opts) {
  return runPointRepsWith<PwwPoint>(machine, opts,
                                    [&](const backend::MachineConfig& m) {
          return runPwwPoint(m, params, coreOptions(opts));
        });
}

RepRun<LatencyPoint> runLatencyPointReps(const backend::MachineConfig& machine,
                                         const LatencyParams& params,
                                         const RunOptions& opts) {
  return runPointRepsWith<LatencyPoint>(machine, opts,
                                        [&](const backend::MachineConfig& m) {
          return runLatencyPoint(m, params, coreOptions(opts));
        });
}

std::vector<std::uint64_t> logSweep(std::uint64_t lo, std::uint64_t hi,
                                    int pointsPerDecade) {
  COMB_REQUIRE(lo > 0 && hi >= lo, "bad sweep bounds");
  COMB_REQUIRE(pointsPerDecade >= 1, "need at least one point per decade");
  std::vector<std::uint64_t> xs;
  const double e0 = std::log10(static_cast<double>(lo));
  const double step = 1.0 / pointsPerDecade;
  // Values at or above 2^64 are unrepresentable; break before casting
  // (the cast itself would be UB, and llround saturates at 2^63 anyway).
  constexpr double kTwoPow64 = 18446744073709551616.0;
  for (std::uint64_t i = 0;; ++i) {
    // Recompute from the integer index: accumulating `e += step` drifts
    // after tens of additions and can skip or duplicate a grid point.
    const double e = e0 + static_cast<double>(i) * step;
    const double vd = std::round(std::pow(10.0, e));
    if (!(vd < kTwoPow64)) break;
    const auto v = static_cast<std::uint64_t>(vd);
    if (v > hi) break;
    if (xs.empty() || v != xs.back()) xs.push_back(v);
  }
  if (xs.empty() || xs.back() != hi) xs.push_back(hi);
  for (std::size_t i = 1; i < xs.size(); ++i)
    COMB_ASSERT(xs[i] > xs[i - 1], "logSweep grid not strictly increasing");
  return xs;
}

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params,
                             const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  PollingPoint point;
  cluster.launch(0, pollingWorkerDriver(cluster.proc(0), params, point),
                 "polling-worker");
  cluster.launch(1, pollingSupport(cluster.proc(1), params),
                 "polling-support");
  cluster.run();
  point.fault = cluster.faultCounters();
  fillObservability(cluster, point);
  return point;
}

PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params, const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  PwwPoint point;
  cluster.launch(0, pwwWorkerDriver(cluster.proc(0), params, point),
                 "pww-worker");
  cluster.launch(1, pwwSupport(cluster.proc(1), params), "pww-support");
  cluster.run();
  point.fault = cluster.faultCounters();
  fillObservability(cluster, point);
  return point;
}

TracedRun<PollingPoint> runPollingPointTraced(
    const backend::MachineConfig& machine, const PollingParams& params,
    const RunOptions& opts, std::size_t traceCapacity) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  cluster.enableTracing(traceCapacity);
  TracedRun<PollingPoint> run;
  cluster.launch(0, pollingWorkerDriver(cluster.proc(0), params, run.point),
                 "polling-worker");
  cluster.launch(1, pollingSupport(cluster.proc(1), params),
                 "polling-support");
  cluster.run();
  run.point.fault = cluster.faultCounters();
  fillObservability(cluster, run.point);
  run.stats = report::snapshot(cluster);
  run.trace = cluster.releaseTraceLog();
  return run;
}

TracedRun<PwwPoint> runPwwPointTraced(const backend::MachineConfig& machine,
                                      const PwwParams& params,
                                      const RunOptions& opts,
                                      std::size_t traceCapacity) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  cluster.enableTracing(traceCapacity);
  TracedRun<PwwPoint> run;
  cluster.launch(0, pwwWorkerDriver(cluster.proc(0), params, run.point),
                 "pww-worker");
  cluster.launch(1, pwwSupport(cluster.proc(1), params), "pww-support");
  cluster.run();
  run.point.fault = cluster.faultCounters();
  fillObservability(cluster, run.point);
  run.stats = report::snapshot(cluster);
  run.trace = cluster.releaseTraceLog();
  return run;
}

LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params,
                             const RunOptions& opts) {
  backend::SimCluster cluster(machineWithOptions(machine, opts), 2,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  LatencyPoint point;
  cluster.launch(0, latencyDriver(cluster.proc(0), params, point),
                 "latency-initiator");
  cluster.launch(1, latencyEcho(cluster.proc(1), params), "latency-echo");
  cluster.run();
  point.fault = cluster.faultCounters();
  fillObservability(cluster, point);
  return point;
}

namespace {

/// Expand a SweepSpec into per-point parameter sets.
template <typename Param>
std::vector<Param> expandSpec(const SweepSpec<Param>& spec,
                              std::uint64_t Param::*primary) {
  auto axis = spec.axis != nullptr ? spec.axis : primary;
  std::vector<Param> paramSets;
  paramSets.reserve(spec.values.size());
  for (const auto v : spec.values) {
    Param p = spec.base;
    p.*axis = v;
    paramSets.push_back(p);
  }
  return paramSets;
}

}  // namespace

std::vector<PollingPoint> runPollingSweep(const backend::MachineConfig& machine,
                                          const SweepSpec<PollingParams>& spec,
                                          const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &PollingParams::pollInterval);
  auto points = runSweepParallel(
      m, paramSets,
      [&opts](const backend::MachineConfig& mc, const PollingParams& p) {
        return runPollingPoint(mc, p, coreOptions(opts));
      },
      opts.jobs);
  // Log after the sweep, in input order, so the trace reads identically
  // whether points ran serially or on the pool.
  for (const auto& p : points) {
    COMB_LOG(Debug) << machine.name << " polling interval=" << p.pollInterval
                    << " bw=" << toMBps(p.bandwidthBps)
                    << " MB/s avail=" << p.availability;
  }
  return points;
}

std::vector<PwwPoint> runPwwSweep(const backend::MachineConfig& machine,
                                  const SweepSpec<PwwParams>& spec,
                                  const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &PwwParams::workInterval);
  auto points = runSweepParallel(
      m, paramSets,
      [&opts](const backend::MachineConfig& mc, const PwwParams& p) {
        return runPwwPoint(mc, p, coreOptions(opts));
      },
      opts.jobs);
  for (const auto& p : points) {
    COMB_LOG(Debug) << machine.name << " pww work=" << p.workInterval
                    << " bw=" << toMBps(p.bandwidthBps)
                    << " MB/s avail=" << p.availability;
  }
  return points;
}

std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const SweepSpec<LatencyParams>& spec,
                                          const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandSpec(spec, &LatencyParams::msgBytes);
  return runSweepParallel(
      m, paramSets,
      [&opts](const backend::MachineConfig& mc, const LatencyParams& p) {
        return runLatencyPoint(mc, p, coreOptions(opts));
      },
      opts.jobs);
}

namespace {

/// Shared sweep-of-reps driver: expand the spec, fan points out over the
/// pool (reps within a point stay serial), same order/exception contract
/// as runSweepParallel.
template <typename Param, typename Point, typename RunPointReps>
std::vector<RepRun<Point>> runSweepRepsImpl(
    const backend::MachineConfig& machine, const SweepSpec<Param>& spec,
    std::uint64_t Param::*primary, const RunOptions& opts,
    RunPointReps&& runReps) {
  validateRepPolicy(opts.rep);
  const auto paramSets = expandSpec(spec, primary);
  std::vector<RepRun<Point>> runs(paramSets.size());
  parallelFor(paramSets.size(), opts.jobs, [&](std::size_t i) {
    runs[i] = runReps(machine, paramSets[i], opts);
  });
  return runs;
}

}  // namespace

std::vector<RepRun<PollingPoint>> runPollingSweepReps(
    const backend::MachineConfig& machine, const SweepSpec<PollingParams>& spec,
    const RunOptions& opts) {
  return runSweepRepsImpl<PollingParams, PollingPoint>(
      machine, spec, &PollingParams::pollInterval, opts, runPollingPointReps);
}

std::vector<RepRun<PwwPoint>> runPwwSweepReps(
    const backend::MachineConfig& machine, const SweepSpec<PwwParams>& spec,
    const RunOptions& opts) {
  return runSweepRepsImpl<PwwParams, PwwPoint>(
      machine, spec, &PwwParams::workInterval, opts, runPwwPointReps);
}

std::vector<RepRun<LatencyPoint>> runLatencySweepReps(
    const backend::MachineConfig& machine, const SweepSpec<LatencyParams>& spec,
    const RunOptions& opts) {
  return runSweepRepsImpl<LatencyParams, LatencyPoint>(
      machine, spec, &LatencyParams::msgBytes, opts, runLatencyPointReps);
}

}  // namespace comb::bench
