#include "comb/runner.hpp"

#include <cmath>

#include "backend/sim_cluster.hpp"
#include "common/error.hpp"
#include "comb/polling.hpp"
#include "comb/pww.hpp"
#include "common/log.hpp"

namespace comb::bench {

namespace {

sim::Task<void> pollingWorkerDriver(backend::SimProc& env, PollingParams p,
                                    PollingPoint& out) {
  out = co_await pollingWorker(env, p);
}

sim::Task<void> pwwWorkerDriver(backend::SimProc& env, PwwParams p,
                                PwwPoint& out) {
  out = co_await pwwWorker(env, p);
}

sim::Task<void> latencyDriver(backend::SimProc& env, LatencyParams p,
                              LatencyPoint& out) {
  out = co_await latencyInitiator(env, p);
}

}  // namespace

std::vector<std::uint64_t> logSweep(std::uint64_t lo, std::uint64_t hi,
                                    int pointsPerDecade) {
  COMB_REQUIRE(lo > 0 && hi >= lo, "bad sweep bounds");
  COMB_REQUIRE(pointsPerDecade >= 1, "need at least one point per decade");
  std::vector<std::uint64_t> xs;
  const double step = 1.0 / pointsPerDecade;
  for (double e = std::log10(static_cast<double>(lo));
       ; e += step) {
    const auto v = static_cast<std::uint64_t>(
        std::llround(std::pow(10.0, e)));
    if (v > hi) break;
    if (xs.empty() || v != xs.back()) xs.push_back(v);
  }
  if (xs.empty() || xs.back() != hi) xs.push_back(hi);
  return xs;
}

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params) {
  backend::SimCluster cluster(machine, 2);
  PollingPoint point;
  cluster.launch(0, pollingWorkerDriver(cluster.proc(0), params, point),
                 "polling-worker");
  cluster.launch(1, pollingSupport(cluster.proc(1), params),
                 "polling-support");
  cluster.run();
  return point;
}

PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params) {
  backend::SimCluster cluster(machine, 2);
  PwwPoint point;
  cluster.launch(0, pwwWorkerDriver(cluster.proc(0), params, point),
                 "pww-worker");
  cluster.launch(1, pwwSupport(cluster.proc(1), params), "pww-support");
  cluster.run();
  return point;
}

std::vector<PollingPoint> runPollingSweep(
    const backend::MachineConfig& machine, PollingParams base,
    const std::vector<std::uint64_t>& pollIntervals) {
  std::vector<PollingPoint> points;
  points.reserve(pollIntervals.size());
  for (const auto interval : pollIntervals) {
    base.pollInterval = interval;
    points.push_back(runPollingPoint(machine, base));
    COMB_LOG(Debug) << machine.name << " polling interval=" << interval
                    << " bw=" << toMBps(points.back().bandwidthBps)
                    << " MB/s avail=" << points.back().availability;
  }
  return points;
}

LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params) {
  backend::SimCluster cluster(machine, 2);
  LatencyPoint point;
  cluster.launch(0, latencyDriver(cluster.proc(0), params, point),
                 "latency-initiator");
  cluster.launch(1, latencyEcho(cluster.proc(1), params), "latency-echo");
  cluster.run();
  return point;
}

std::vector<LatencyPoint> runLatencySweep(
    const backend::MachineConfig& machine, const std::vector<Bytes>& sizes,
    int reps) {
  std::vector<LatencyPoint> points;
  points.reserve(sizes.size());
  for (const Bytes size : sizes) {
    LatencyParams p;
    p.msgBytes = size;
    p.reps = reps;
    points.push_back(runLatencyPoint(machine, p));
  }
  return points;
}

std::vector<PwwPoint> runPwwSweep(
    const backend::MachineConfig& machine, PwwParams base,
    const std::vector<std::uint64_t>& workIntervals) {
  std::vector<PwwPoint> points;
  points.reserve(workIntervals.size());
  for (const auto interval : workIntervals) {
    base.workInterval = interval;
    points.push_back(runPwwPoint(machine, base));
    COMB_LOG(Debug) << machine.name << " pww work=" << interval
                    << " bw=" << toMBps(points.back().bandwidthBps)
                    << " MB/s avail=" << points.back().availability;
  }
  return points;
}

}  // namespace comb::bench
