// Congestion extension: many-node traffic patterns over the multi-switch
// fabric. Not part of the original COMB suite — COMB measures a single
// pair in isolation; this extension asks how the same stacks behave when
// the fabric itself is contended (finite switch queues, oversubscribed
// trunks, incast hot spots), which is where overlap-friendly stacks are
// claimed to pay off.
//
// Three patterns, all built from the COMB polling primitive (work loop +
// non-blocking completion tests):
//
//   incast      every node sends all of its messages to node 0
//   hotspot     half of each node's messages target node 0, the rest a
//               ring neighbour (background load on top of a hot spot)
//   all-to-all  pairwise exchange: message k goes to (rank+1+k') mod N,
//               each node both sends and receives the same volume
//
// Per-node results (sender goodput, availability) are kept alongside the
// aggregates so the figures can show the *distribution* collapsing under
// contention, not just the mean.
#pragma once

#include <algorithm>
#include <vector>

#include "comb/polling.hpp"  // detail::compactPool, params.hpp
#include "comb/runner.hpp"
#include "common/error.hpp"
#include "mpi/request.hpp"
#include "net/topology.hpp"
#include "sim/task.hpp"

namespace comb::bench {

enum class CongestionPattern { Incast, Hotspot, AllToAll };

const char* congestionPatternName(CongestionPattern p);

struct CongestionParams {
  /// Cluster size — the primary sweep axis (64 / 256 / 1024 in the
  /// extension figures). Must match the communicator the pattern runs on.
  std::uint64_t nodes = 64;
  /// Per-message payload. The default is past every stack's eager
  /// threshold so the fabric carries real rendezvous traffic.
  Bytes msgBytes = 64 * 1024;
  /// Messages each sender contributes to the pattern.
  int messagesPerSender = 4;
  /// Posted-receive window and in-flight send cap per node.
  int window = 8;
  /// Work-loop iterations between completion polls (same meaning as the
  /// polling method's primary variable).
  std::uint64_t pollInterval = 50'000;
  CongestionPattern pattern = CongestionPattern::Incast;
  mpi::Tag dataTag = 1;
};

/// Destination list for `rank` under the pattern (empty when the rank
/// only receives). Pure function of (pattern, nodes, rank) so every node
/// — and every test — can derive the traffic matrix independently. Never
/// contains `rank` itself.
std::vector<int> congestionDests(const CongestionParams& p, int rank);

/// Messages `rank` will receive: the column sum of the traffic matrix.
std::uint64_t congestionExpectedRecvs(const CongestionParams& p, int rank);

struct CongestionNodeResult {
  int rank = 0;
  /// Delivered send share, messagesSent*msgBytes / pattern makespan (0
  /// for pure receivers). Filled in by the point runner: a sender's local
  /// live time ends when its sends complete *locally*, which on an
  /// otherwise-idle uplink happens at wire speed no matter how contended
  /// the victim is — the makespan is what congestion actually stretches.
  double bandwidthBps = 0.0;
  /// Work-loop availability: polls*pollInterval*secondsPerIter is the
  /// exact dry-run time (env.work is linear in iterations), so no
  /// separate N-node dry pass is needed.
  double availability = 0.0;
  Time liveTime = 0.0;
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t polls = 0;
};

struct CongestionPoint {
  std::uint64_t nodes = 0;
  Bytes msgBytes = 0;
  CongestionPattern pattern = CongestionPattern::Incast;
  /// Aggregate delivered bandwidth: total payload bytes injected by all
  /// senders / makespan. The watched metric for the statistical gate.
  double bandwidthBps = 0.0;
  /// Sender-goodput distribution (senders only; incast's per-sender share
  /// of the victim's downlink is the headline number).
  double minNodeBandwidthBps = 0.0;
  double meanNodeBandwidthBps = 0.0;
  /// Availability over all nodes (every node runs the work loop).
  double availability = 0.0;
  double minAvailability = 0.0;
  /// Slowest node's live time — the pattern's completion time.
  Time makespan = 0.0;
  std::uint64_t messagesDelivered = 0;
  /// Rank-ordered per-node series for the distribution figures.
  std::vector<double> nodeBandwidthBps;
  std::vector<double> nodeAvailability;
  /// Fabric-wide switch counters: tail drops / credit stalls / peak queue
  /// depth are the congestion signature.
  net::SwitchTotals switches;
  net::FaultCounters fault;
  /// Per-message MPI send/recv completion-latency tails (see
  /// PollingPoint) and executor load imbalance.
  TailSummary sendTail;
  TailSummary recvTail;
  double shardImbalance = 1.0;
};

/// One node's role: window of wildcard receives, windowed sends along the
/// pattern's destination list, COMB-style work loop between polls. All
/// ranks run the same code; the traffic matrix decides who sends.
template <typename Env, typename CommType>
sim::Task<CongestionNodeResult> congestionNodeOn(Env& env, CongestionParams p,
                                                 const CommType& world) {
  const int n = world.size();
  COMB_REQUIRE(n >= 2, "congestion patterns need at least 2 nodes");
  COMB_REQUIRE(static_cast<std::uint64_t>(n) == p.nodes,
               "params.nodes must match the communicator size");
  COMB_REQUIRE(p.window >= 1, "window must be >= 1");
  COMB_REQUIRE(p.messagesPerSender >= 1, "messagesPerSender must be >= 1");
  auto& mpi = env.mpi();
  const int rank = world.rank();
  const auto dests = congestionDests(p, rank);
  const std::uint64_t expected = congestionExpectedRecvs(p, rank);

  CongestionNodeResult res;
  res.rank = rank;
  res.messagesSent = dests.size();
  res.messagesReceived = expected;

  // Fill the receive window before anyone is released to send, so the
  // measured unexpected-queue depth reflects fabric contention rather
  // than startup skew.
  std::vector<mpi::Request> recvs;
  std::uint64_t recvsPosted = 0;
  const std::uint64_t windowRecvs =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(p.window), expected);
  recvs.reserve(windowRecvs);
  for (std::uint64_t k = 0; k < windowRecvs; ++k) {
    recvs.push_back(
        co_await mpi.irecv(world, mpi::kAnySource, p.dataTag, p.msgBytes));
    ++recvsPosted;
  }
  co_await mpi.barrier(world);

  std::vector<mpi::Request> sends;
  std::size_t nextSend = 0;
  std::uint64_t got = 0;
  std::uint64_t polls = 0;
  env.phaseBegin("congestion");
  const auto t0 = env.wtime();
  while (true) {
    // Top up the send window.
    while (sends.size() < static_cast<std::size_t>(p.window) &&
           nextSend < dests.size()) {
      sends.push_back(
          co_await mpi.isend(world, dests[nextSend], p.dataTag, p.msgBytes));
      ++nextSend;
    }
    co_await env.work(p.pollInterval);
    ++polls;
    if (!recvs.empty()) {
      auto done = co_await mpi.testsome(recvs);
      for (const std::size_t idx : done) {
        ++got;
        if (recvsPosted < expected) {
          recvs[idx] = co_await mpi.irecv(world, mpi::kAnySource, p.dataTag,
                                          p.msgBytes);
          ++recvsPosted;
        }
      }
    }
    if (!sends.empty()) {
      co_await mpi.testsome(sends);
      detail::compactPool(sends);
    }
    if (got == expected && nextSend == dests.size() && sends.empty()) break;
  }
  res.liveTime = env.wtime() - t0;
  env.phaseEnd("congestion");
  res.polls = polls;

  const double workTime = static_cast<double>(polls) *
                          static_cast<double>(p.pollInterval) *
                          env.secondsPerIter();
  res.availability = res.liveTime > 0 ? workTime / res.liveTime : 1.0;
  // bandwidthBps is filled in by the runner (it needs the makespan).

  // Every posted receive was consumed (we never over-post), so there is
  // nothing to cancel; the barrier keeps teardown collective.
  co_await mpi.barrier(world);
  co_return res;
}

/// Run one congestion point on a freshly built params.nodes-sized
/// cluster. The fabric comes from the machine's [topology] section; the
/// cluster constructor rejects node counts beyond the fabric's capacity.
CongestionPoint runCongestionPoint(const backend::MachineConfig& machine,
                                   const CongestionParams& params,
                                   const RunOptions& opts = {});

/// Sweep the axis named by `spec` (default: the node count).
std::vector<CongestionPoint> runCongestionSweep(
    const backend::MachineConfig& machine,
    const SweepSpec<CongestionParams>& spec, const RunOptions& opts = {});

RepRun<CongestionPoint> runCongestionPointReps(
    const backend::MachineConfig& machine, const CongestionParams& params,
    const RunOptions& opts = {});

std::vector<RepRun<CongestionPoint>> runCongestionSweepReps(
    const backend::MachineConfig& machine,
    const SweepSpec<CongestionParams>& spec, const RunOptions& opts = {});

}  // namespace comb::bench
