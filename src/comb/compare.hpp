// `comb compare`: the machine-checkable regression gate.
//
// Pairs measurement points across two result archives (report/archive)
// by (sweep id, x, metric name) and decides, metric by metric, whether
// the candidate is statistically worse than the baseline:
//
//   * magnitude:    the relative median delta must exceed --tolerance
//                   (tiny true differences are not regressions);
//   * significance: Mann-Whitney U when both sides carry enough samples,
//                   bootstrap-CI disjointness as the small-sample
//                   fallback, and exact inequality when either side has
//                   a single rep (the simulator is deterministic — any
//                   difference on one rep is a real difference);
//   * direction:    each archived metric declares whether higher or
//                   lower is better, so a bandwidth drop and a posting-
//                   time rise both count as regressions.
//
// The CLI exits 0 when nothing regressed, 1 on regressions, 2 on usage
// or archive errors — which is exactly what the CI perf-smoke job keys
// off. See docs/regression_gating.md.
#pragma once

#include <cmath>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "report/archive.hpp"

namespace comb::json {
class Value;
}

namespace comb::bench {

/// Which archived metric classes to gate on: everything, only the
/// central-tendency ("mean") metrics — the pre-tail behaviour — or only
/// the latency-percentile ("tail") metrics, for a tail-latency-focused
/// gate that ignores throughput deltas.
enum class MetricClass { All, Mean, Tail };

const char* metricClassName(MetricClass c);
/// Parse "all" | "mean" | "tail"; throws comb::ConfigError.
MetricClass parseMetricClass(std::string_view s);

struct CompareOptions {
  /// Relative median difference below which a change is never flagged.
  double tolerance = 0.02;
  /// Two-sided significance level for the Mann-Whitney test.
  double alpha = 0.05;
  /// Seed for the bootstrap streams used in the CI-overlap fallback.
  std::uint64_t seed = 0xC04Bu;
  /// Metric-class filter (--metric-class); rows outside the class are
  /// neither compared nor counted.
  MetricClass metricClass = MetricClass::All;
};

enum class Verdict { Ok, Regressed, Improved };

const char* verdictName(Verdict v);

/// One paired (sweep, x, metric) comparison.
struct CompareRow {
  std::string sweep;
  double x = 0.0;
  std::string metric;
  double baseline = 0.0;   ///< baseline median
  double candidate = 0.0;  ///< candidate median
  /// Signed relative delta (candidate - baseline) / max(|a|,|b|).
  double relDelta = 0.0;
  /// Mann-Whitney two-sided p; NaN when the test was not usable.
  double pValue = std::nan("");
  /// Which evidence decided significance: "mwu", "ci", "exact" or "-".
  std::string basis = "-";
  Verdict verdict = Verdict::Ok;
};

struct CompareReport {
  std::vector<CompareRow> rows;
  /// Coverage and comparability problems: unmatched sweeps/points,
  /// machine-hash or provenance mismatches. Informational, not fatal.
  std::vector<std::string> notes;
  int regressed = 0;
  int improved = 0;

  bool hasRegressions() const { return regressed > 0; }
};

/// Pair and test every metric of every point present in both archives.
CompareReport compareArchives(const report::Archive& baseline,
                              const report::Archive& candidate,
                              const CompareOptions& opts = {});

/// The same gate applied to a micro-benchmark baseline file of the
/// BENCH_sim_core.json shape: top-level "baseline" and "current" blocks
/// with "benchmarks" (items_per_second, higher-better) and
/// "figure_wallclock_seconds" (lower-better) members.
CompareReport compareBenchJson(const json::Value& root,
                               const CompareOptions& opts = {});

/// Verdict table (flagged rows always; `all` = every row) + summary line.
void renderCompare(std::ostream& out, const CompareReport& report,
                   bool all = false);

}  // namespace comb::bench
