// Overlap assessment: the paper's §4 analysis methodology as a library.
//
// Runs the suite's methods against a machine and condenses the results
// into the judgements a user actually wants: peak bandwidth, how much CPU
// survives at that rate, whether the stack has application offload,
// whether progress is library-driven, and where host cycles go.
#pragma once

#include <string>

#include "backend/machine.hpp"
#include "comb/params.hpp"
#include "comb/runner.hpp"

namespace comb::bench {

struct AssessOptions {
  Bytes msgBytes = 100 * 1024;
  /// Poll-interval sweep density used to find the bandwidth/availability
  /// frontier.
  int pointsPerDecade = 2;
  /// Work interval for the offload probe; must dwarf the exchange time.
  std::uint64_t longWorkInterval = 5'000'000;
  /// Where the inserted MPI_Test goes in the call-effect probe.
  double testCallAtFraction = 0.1;
  /// Worker threads for the internal sweeps (1 = serial). Results are
  /// bit-identical for any value — sweep points are fully isolated.
  int jobs = 1;
  /// Simulator-core shards per cluster (configuration identity: 1 is the
  /// classic serial core; see docs/parallel_sim.md).
  int simJobs = 1;
  /// Shard-worker pinning policy (wall time only; see RunOptions).
  sim::AffinityPolicy simAffinity = sim::AffinityPolicy::None;
};

struct OverlapAssessment {
  std::string machineName;
  Bytes msgBytes = 0;

  // Conventional microbenchmark view.
  LatencyPoint pingPong;

  // Polling-method view.
  double peakBandwidthBps = 0.0;
  /// Best availability among sweep points within 85% of peak bandwidth:
  /// "how much CPU the application keeps while the network runs flat out".
  double availabilityAtFullRate = 0.0;

  // PWW view (work interval >> exchange time).
  PwwPoint longWork;
  PwwPoint longWorkWithTest;

  // Judgements.
  bool applicationOffload = false;   ///< PWW wait ~empty after long work
  double workInflation = 0.0;        ///< (work-with-MH / dry) - 1
  bool libraryDrivenProgress = false;  ///< one MPI_Test drains the wait

  /// Multi-line human-readable verdict (the `comb assess` output body).
  std::string verdictText() const;
};

/// Run the full assessment (several simulations; deterministic).
OverlapAssessment assessMachine(const backend::MachineConfig& machine,
                                const AssessOptions& options = {});

}  // namespace comb::bench
