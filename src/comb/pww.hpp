// The COMB Post-Work-Wait (PWW) method (paper §2.2, Fig 3).
//
// Per cycle the worker: (1) posts a batch of non-blocking sends and
// receives, (2) runs the work loop making NO MPI calls (optionally one
// MPI_Test — the §4.3 variant), (3) waits for the whole batch. The
// support process posts the mirror batch and waits immediately. Because
// the worker is call-silent during the work phase, any progress observed
// there proves the underlying system has application offload; the
// per-phase durations localise where host time goes.
#pragma once

#include <cstdint>
#include <vector>

#include "comb/params.hpp"
#include "common/error.hpp"
#include "mpi/request.hpp"
#include "sim/task.hpp"

namespace comb::bench {

namespace detail {

/// One batch exchange from `env`'s side: post everything, return requests.
template <typename Env, typename CommType>
sim::Task<std::vector<mpi::Request>> postBatch(Env& env, int peer,
                                               const PwwParams& p,
                                               const CommType& world) {
  auto& mpi = env.mpi();
  std::vector<mpi::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * p.batch));
  // Receives first (paper: "All receives are posted before sends").
  for (int b = 0; b < p.batch; ++b)
    reqs.push_back(co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes));
  for (int b = 0; b < p.batch; ++b)
    reqs.push_back(co_await mpi.isend(world, peer, p.dataTag, p.msgBytes));
  co_return reqs;
}

}  // namespace detail

/// Worker role (rank 0 of `world`, which may be any 2-rank communicator).
/// Returns the measured sweep point.
template <typename Env, typename CommType>
sim::Task<PwwPoint> pwwWorkerOn(Env& env, PwwParams p,
                                const CommType& world) {
  COMB_REQUIRE(world.size() == 2, "the PWW method uses exactly 2 ranks");
  COMB_REQUIRE(world.rank() == 0, "worker must be rank 0");
  COMB_REQUIRE(p.batch >= 1, "batch must be >= 1");
  COMB_REQUIRE(p.reps >= 2, "need at least one warm-up and one measured rep");
  auto& mpi = env.mpi();
  const int peer = 1;

  PwwPoint point;
  point.workInterval = p.workInterval;
  point.msgBytes = p.msgBytes;
  point.reps = p.reps - 1;  // first rep is warm-up

  // Work-loop split for the optional mid-work MPI_Test.
  const bool insertTest = p.testCallAtFraction >= 0.0;
  std::uint64_t preTest = 0;
  std::uint64_t postTest = p.workInterval;
  if (insertTest) {
    COMB_REQUIRE(p.testCallAtFraction <= 1.0,
                 "testCallAtFraction must be in [0,1]");
    preTest = static_cast<std::uint64_t>(
        static_cast<double>(p.workInterval) * p.testCallAtFraction);
    postTest = p.workInterval - preTest;
  }

  // --- dry run -------------------------------------------------------------
  // Phase spans bracket exactly the wtime() stamps used for the reported
  // numbers, so the trace-driven audit (comb/audit.hpp) can recompute
  // them from span data alone.
  co_await mpi.barrier(world);
  {
    env.phaseBegin("dry");
    const auto t0 = env.wtime();
    for (int r = 0; r < p.reps; ++r) co_await env.work(p.workInterval);
    point.dryWork = (env.wtime() - t0) / p.reps;
    env.phaseEnd("dry");
  }
  co_await mpi.barrier(world);

  // --- measured cycles -------------------------------------------------------
  Time sumPost = 0, sumWork = 0, sumWait = 0;
  for (int r = 0; r < p.reps; ++r) {
    env.phaseBegin("post");
    const auto tPost0 = env.wtime();
    auto reqs = co_await detail::postBatch(env, peer, p, world);
    const auto tWork0 = env.wtime();
    env.phaseEnd("post");
    env.phaseBegin("work");
    if (insertTest) {
      if (preTest > 0) co_await env.work(preTest);
      co_await mpi.progressOnce();  // the single inserted library call
      if (postTest > 0) co_await env.work(postTest);
    } else {
      co_await env.work(p.workInterval);
    }
    const auto tWait0 = env.wtime();
    env.phaseEnd("work");
    env.phaseBegin("wait");
    co_await mpi.waitall(reqs);
    const auto tEnd = env.wtime();
    env.phaseEnd("wait");
    if (r == 0) continue;  // warm-up
    sumPost += tWork0 - tPost0;
    sumWork += tWait0 - tWork0;
    sumWait += tEnd - tWait0;
  }
  const double measured = p.reps - 1;
  point.avgPost = sumPost / measured;
  point.avgWork = sumWork / measured;
  point.avgWait = sumWait / measured;
  point.avgPostPerOp = point.avgPost / (2.0 * p.batch);
  point.avgWaitPerMsg = point.avgWait / p.batch;
  const Time cycle = point.avgPost + point.avgWork + point.avgWait;
  point.availability = cycle > 0 ? point.dryWork / cycle : 0.0;
  point.bandwidthBps =
      cycle > 0
          ? static_cast<double>(p.batch) * static_cast<double>(p.msgBytes) /
                cycle
          : 0.0;

  co_await mpi.barrier(world);
  co_return point;
}

/// Support role (rank 1): mirror batches, wait immediately.
template <typename Env, typename CommType>
sim::Task<void> pwwSupportOn(Env& env, PwwParams p, const CommType& world) {
  COMB_REQUIRE(world.rank() == 1, "support must be rank 1");
  auto& mpi = env.mpi();
  const int peer = 0;

  co_await mpi.barrier(world);  // worker dry run
  co_await mpi.barrier(world);

  for (int r = 0; r < p.reps; ++r) {
    auto reqs = co_await detail::postBatch(env, peer, p, world);
    co_await mpi.waitall(reqs);
  }
  co_await mpi.barrier(world);
}

/// Convenience overloads on the backend's world communicator.
template <typename Env>
sim::Task<PwwPoint> pwwWorker(Env& env, PwwParams p) {
  COMB_REQUIRE(env.size() == 2, "the PWW method uses exactly 2 ranks");
  co_return co_await pwwWorkerOn(env, std::move(p), env.mpi().world());
}

template <typename Env>
sim::Task<void> pwwSupport(Env& env, PwwParams p) {
  co_await pwwSupportOn(env, std::move(p), env.mpi().world());
}

}  // namespace comb::bench
