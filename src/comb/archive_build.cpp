#include "comb/archive_build.hpp"

#include <algorithm>

#include "comb/congestion.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace comb::bench {

namespace {

template <typename Point>
report::ArchiveMetric metricOf(const RepRun<Point>& run,
                               const std::string& name, bool higherIsBetter,
                               double (*value)(const Point&)) {
  report::ArchiveMetric m;
  m.name = name;
  m.higherIsBetter = higherIsBetter;
  m.samples = run.metricSamples(value);
  return m;
}

/// Per-rep samples of one latency-percentile metric. Tails regress by
/// growing, so every tail metric is lower-is-better; the class marks it
/// for `comb compare --metric-class tail`.
template <typename Point>
report::ArchiveMetric tailMetricOf(const RepRun<Point>& run,
                                   const std::string& name,
                                   double (*value)(const Point&)) {
  report::ArchiveMetric m = metricOf(run, name, /*higherIsBetter=*/false,
                                     value);
  m.metricClass = "tail";
  return m;
}

/// The tail metrics every method shares: send/recv completion-latency
/// p50 (the median, so a tail-only regression is visible as such), p99
/// and p999, merged over all ranks.
template <typename Point>
void addTailMetrics(std::vector<report::ArchiveMetric>& metrics,
                    const RepRun<Point>& run) {
  metrics.push_back(tailMetricOf<Point>(
      run, "send_p50_us", [](const Point& p) { return p.sendTail.p50 * 1e6; }));
  metrics.push_back(tailMetricOf<Point>(
      run, "send_p99_us", [](const Point& p) { return p.sendTail.p99 * 1e6; }));
  metrics.push_back(tailMetricOf<Point>(
      run, "send_p999_us",
      [](const Point& p) { return p.sendTail.p999 * 1e6; }));
  metrics.push_back(tailMetricOf<Point>(
      run, "recv_p50_us", [](const Point& p) { return p.recvTail.p50 * 1e6; }));
  metrics.push_back(tailMetricOf<Point>(
      run, "recv_p99_us", [](const Point& p) { return p.recvTail.p99 * 1e6; }));
  metrics.push_back(tailMetricOf<Point>(
      run, "recv_p999_us",
      [](const Point& p) { return p.recvTail.p999 * 1e6; }));
}

template <typename Point, typename MakeMetrics>
void appendSweep(report::Archive& archive, const std::string& id,
                 const backend::MachineConfig& machine,
                 const std::string& xlabel,
                 const std::vector<std::uint64_t>& xs,
                 const std::vector<RepRun<Point>>& runs,
                 MakeMetrics&& makeMetrics) {
  COMB_REQUIRE(xs.size() == runs.size(),
               "archive sweep: axis/result size mismatch");
  archive.provenance.tailPercentiles = report::kTailPercentiles;
  // Stamp the transport stack so `comb compare` can warn about
  // cross-configuration comparisons; archives mixing stacks (the
  // taxonomy sweeps) become "mixed".
  const std::string stack = backend::transportKindName(machine.kind);
  if (archive.provenance.stack.empty()) {
    archive.provenance.stack = stack;
  } else if (archive.provenance.stack != stack) {
    archive.provenance.stack = "mixed";
  }
  for (const auto& run : runs)
    for (const auto& rep : run.reps)
      archive.provenance.shardImbalance =
          std::max(archive.provenance.shardImbalance, rep.shardImbalance);
  // Sharded runs: record the certified scalar lookahead floor — the
  // machine's fabric link latency, which every matrix entry respects
  // (Executor::setLookaheadMatrix throws otherwise). Archives that mix
  // machines keep the minimum, the bound every sweep honored.
  if (archive.provenance.simJobs > 1) {
    const double floor = machine.fabric.link.latency;
    double& lookahead = archive.provenance.lookahead;
    lookahead = lookahead == 0.0 ? floor : std::min(lookahead, floor);
  }
  report::ArchiveSweep sweep;
  sweep.id = id;
  sweep.xlabel = xlabel;
  sweep.machine = machine.name;
  sweep.machineHash = backend::machineHash(machine);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    report::ArchivePoint point;
    point.x = static_cast<double>(xs[i]);
    point.converged = runs[i].converged;
    point.metrics = makeMetrics(runs[i]);
    addTailMetrics(point.metrics, runs[i]);
    sweep.points.push_back(std::move(point));
  }
  archive.sweeps.push_back(std::move(sweep));
}

}  // namespace

report::Archive makeArchive(const std::string& bench, const RepPolicy& rep,
                            int simJobs, sim::AffinityPolicy affinity) {
  report::Archive archive;
  archive.bench = bench;
  archive.seed = rep.seed;
  archive.provenance = report::buildProvenance();
  archive.provenance.simJobs = simJobs;
  archive.provenance.simAffinity = sim::affinityPolicyName(affinity);
  // SimCluster always installs the topology-derived per-pair matrix when
  // the core is sharded; serial runs have no window bound at all and keep
  // the scalar default.
  archive.provenance.lookaheadSource = simJobs > 1 ? "matrix" : "global-min";
  archive.rep.adaptive = rep.adaptive;
  archive.rep.reps = rep.reps;
  archive.rep.minReps = rep.minReps;
  archive.rep.maxReps = rep.maxReps;
  archive.rep.ciTarget = rep.ciTarget;
  return archive;
}

void appendPollingSweep(report::Archive& archive, const std::string& id,
                        const backend::MachineConfig& machine,
                        const std::vector<std::uint64_t>& xs,
                        const std::vector<RepRun<PollingPoint>>& runs,
                        const std::string& xlabel) {
  appendSweep(archive, id, machine, xlabel, xs, runs,
              [](const RepRun<PollingPoint>& run) {
                return std::vector<report::ArchiveMetric>{
                    metricOf<PollingPoint>(
                        run, "availability", true,
                        [](const PollingPoint& p) { return p.availability; }),
                    metricOf<PollingPoint>(run, "bandwidth_MBps", true,
                                           [](const PollingPoint& p) {
                                             return toMBps(p.bandwidthBps);
                                           }),
                };
              });
}

void appendPwwSweep(report::Archive& archive, const std::string& id,
                    const backend::MachineConfig& machine,
                    const std::vector<std::uint64_t>& xs,
                    const std::vector<RepRun<PwwPoint>>& runs,
                    const std::string& xlabel) {
  appendSweep(
      archive, id, machine, xlabel, xs, runs,
      [](const RepRun<PwwPoint>& run) {
        return std::vector<report::ArchiveMetric>{
            metricOf<PwwPoint>(
                run, "availability", true,
                [](const PwwPoint& p) { return p.availability; }),
            metricOf<PwwPoint>(
                run, "bandwidth_MBps", true,
                [](const PwwPoint& p) { return toMBps(p.bandwidthBps); }),
            metricOf<PwwPoint>(
                run, "post_us_per_op", false,
                [](const PwwPoint& p) { return p.avgPostPerOp * 1e6; }),
            metricOf<PwwPoint>(
                run, "work_us", false,
                [](const PwwPoint& p) { return p.avgWork * 1e6; }),
            metricOf<PwwPoint>(
                run, "wait_us_per_msg", false,
                [](const PwwPoint& p) { return p.avgWaitPerMsg * 1e6; }),
        };
      });
}

void appendLatencySweep(report::Archive& archive, const std::string& id,
                        const backend::MachineConfig& machine,
                        const std::vector<std::uint64_t>& xs,
                        const std::vector<RepRun<LatencyPoint>>& runs,
                        const std::string& xlabel) {
  appendSweep(
      archive, id, machine, xlabel, xs, runs,
      [](const RepRun<LatencyPoint>& run) {
        return std::vector<report::ArchiveMetric>{
            metricOf<LatencyPoint>(
                run, "latency_us", false,
                [](const LatencyPoint& p) {
                  return p.halfRoundTripAvg * 1e6;
                }),
            metricOf<LatencyPoint>(
                run, "bandwidth_MBps", true,
                [](const LatencyPoint& p) { return toMBps(p.bandwidthBps); }),
        };
      });
}

void appendCongestionSweep(report::Archive& archive, const std::string& id,
                           const backend::MachineConfig& machine,
                           const std::vector<std::uint64_t>& xs,
                           const std::vector<RepRun<CongestionPoint>>& runs,
                           const std::string& xlabel) {
  appendSweep(
      archive, id, machine, xlabel, xs, runs,
      [](const RepRun<CongestionPoint>& run) {
        return std::vector<report::ArchiveMetric>{
            metricOf<CongestionPoint>(
                run, "bandwidth_MBps", true,
                [](const CongestionPoint& p) { return toMBps(p.bandwidthBps); }),
            metricOf<CongestionPoint>(
                run, "min_node_bw_MBps", true,
                [](const CongestionPoint& p) {
                  return toMBps(p.minNodeBandwidthBps);
                }),
            metricOf<CongestionPoint>(
                run, "availability", true,
                [](const CongestionPoint& p) { return p.availability; }),
            metricOf<CongestionPoint>(
                run, "queue_drops", false,
                [](const CongestionPoint& p) {
                  return static_cast<double>(p.switches.dropsQueue);
                }),
            metricOf<CongestionPoint>(
                run, "credit_stalls", false,
                [](const CongestionPoint& p) {
                  return static_cast<double>(p.switches.creditStalls);
                }),
        };
      });
}

}  // namespace comb::bench
