// The parameter sets behind each of the paper's figures, so that bench
// binaries, tests and examples agree on what "the Fig 4 sweep" means.
#pragma once

#include <vector>

#include "comb/params.hpp"
#include "comb/runner.hpp"
#include "common/units.hpp"

namespace comb::bench::presets {

/// The message sizes plotted in Figs 4-7, 14, 15.
std::vector<Bytes> paperMessageSizes();

/// Polling-interval sweep: the paper plots 10^1 .. 10^8 loop iterations.
std::vector<std::uint64_t> pollSweep(int pointsPerDecade = 3);

/// PWW work-interval sweep: the paper plots ~10^3 .. 10^7-10^8.
std::vector<std::uint64_t> workSweep(int pointsPerDecade = 3);

/// Base parameter blocks used by the figure benches.
PollingParams pollingBase(Bytes msgBytes);
PwwParams pwwBase(Bytes msgBytes);

}  // namespace comb::bench::presets
