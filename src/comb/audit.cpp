#include "comb/audit.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::bench {

namespace {

/// Durations of the Begin/End pairs for one Phase label on one node, in
/// time order. Pairing is already enforced at emission; here we only need
/// the widths.
std::vector<Time> phaseDurations(const sim::TraceLog& log,
                                 std::string_view label, int node) {
  const auto records = log.select(sim::TraceCategory::Phase, label, node);
  std::vector<Time> durs;
  Time begin = -1;
  for (const sim::TraceRecord* r : records) {
    if (r->phase == sim::TracePhase::Begin) {
      COMB_REQUIRE(begin < 0, "nested phase spans in audit");
      begin = r->t;
    } else if (r->phase == sim::TracePhase::End) {
      COMB_REQUIRE(begin >= 0, "phase end without begin in audit");
      durs.push_back(r->t - begin);
      begin = -1;
    }
  }
  COMB_REQUIRE(begin < 0, "unclosed phase span in audit");
  return durs;
}

Time sum(const std::vector<Time>& v, std::size_t from) {
  Time s = 0;
  for (std::size_t i = from; i < v.size(); ++i) s += v[i];
  return s;
}

bool close(double a, double b, double relTol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= relTol * std::max(scale, 1e-12);
}

std::string mismatch(const char* field, double audited, double reported,
                     double relTol) {
  return strFormat(
      "%s: audited %.9g vs reported %.9g (beyond %.2g%% tolerance)", field,
      audited, reported, relTol * 100.0);
}

}  // namespace

PwwAudit auditPww(const sim::TraceLog& log, int workerNode) {
  COMB_REQUIRE(log.dropped() == 0,
               "trace ring dropped records; the audit needs the full "
               "timeline — raise the trace capacity");
  const auto post = phaseDurations(log, "post", workerNode);
  const auto work = phaseDurations(log, "work", workerNode);
  const auto wait = phaseDurations(log, "wait", workerNode);
  const auto dry = phaseDurations(log, "dry", workerNode);
  COMB_REQUIRE(dry.size() == 1, "expected exactly one PWW dry span");
  COMB_REQUIRE(post.size() >= 2 && post.size() == work.size() &&
                   post.size() == wait.size(),
               "malformed PWW phase spans (need matching post/work/wait "
               "triples incl. warm-up)");

  PwwAudit a;
  // The runner discards the first (warm-up) cycle; the dry loop runs the
  // full rep count, warm-up included.
  const auto totalReps = post.size();
  a.reps = static_cast<int>(totalReps - 1);
  const double measured = static_cast<double>(a.reps);
  a.avgPost = sum(post, 1) / measured;
  a.avgWork = sum(work, 1) / measured;
  a.avgWait = sum(wait, 1) / measured;
  a.dryWork = dry[0] / static_cast<double>(totalReps);
  const Time cycle = a.avgPost + a.avgWork + a.avgWait;
  a.availability = cycle > 0 ? a.dryWork / cycle : 0.0;
  return a;
}

PollingAudit auditPolling(const sim::TraceLog& log, int workerNode) {
  COMB_REQUIRE(log.dropped() == 0,
               "trace ring dropped records; the audit needs the full "
               "timeline — raise the trace capacity");
  const auto dry = phaseDurations(log, "dry", workerNode);
  const auto live = phaseDurations(log, "live", workerNode);
  COMB_REQUIRE(dry.size() == 1 && live.size() == 1,
               "expected exactly one polling dry and live span");
  PollingAudit a;
  a.dryTime = dry[0];
  a.liveTime = live[0];
  a.availability = a.liveTime > 0 ? a.dryTime / a.liveTime : 0.0;
  return a;
}

std::string checkPww(const PwwAudit& audit, const PwwPoint& point,
                     double relTol) {
  if (audit.reps != point.reps)
    return strFormat("reps: audited %d vs reported %d", audit.reps,
                     point.reps);
  if (!close(audit.avgPost, point.avgPost, relTol))
    return mismatch("avgPost", audit.avgPost, point.avgPost, relTol);
  if (!close(audit.avgWork, point.avgWork, relTol))
    return mismatch("avgWork", audit.avgWork, point.avgWork, relTol);
  if (!close(audit.avgWait, point.avgWait, relTol))
    return mismatch("avgWait", audit.avgWait, point.avgWait, relTol);
  if (!close(audit.dryWork, point.dryWork, relTol))
    return mismatch("dryWork", audit.dryWork, point.dryWork, relTol);
  if (!close(audit.availability, point.availability, relTol))
    return mismatch("availability", audit.availability, point.availability,
                    relTol);
  return {};
}

std::string checkPolling(const PollingAudit& audit, const PollingPoint& point,
                         double relTol) {
  if (!close(audit.dryTime, point.dryTime, relTol))
    return mismatch("dryTime", audit.dryTime, point.dryTime, relTol);
  if (!close(audit.liveTime, point.liveTime, relTol))
    return mismatch("liveTime", audit.liveTime, point.liveTime, relTol);
  if (!close(audit.availability, point.availability, relTol))
    return mismatch("availability", audit.availability, point.availability,
                    relTol);
  return {};
}

}  // namespace comb::bench
