// Trace-driven overlap audit: recompute the COMB methods' reported
// numbers from Phase span data alone and check they agree.
//
// The workers bracket exactly the wtime() stamps they report with Phase
// spans ("dry"/"post"/"work"/"wait" for PWW, "dry"/"live" for polling),
// and trace emission never advances virtual time — so the per-phase
// durations reconstructed here must match the runner-reported statistics
// to within floating-point noise. A disagreement means the
// instrumentation drifted from the measurement (or the ring dropped
// records), which is exactly what this audit exists to catch.
#pragma once

#include <string>

#include "comb/params.hpp"
#include "sim/tracelog.hpp"

namespace comb::bench {

/// PWW numbers recomputed from the worker's Phase spans.
struct PwwAudit {
  int reps = 0;  ///< measured cycles (warm-up excluded)
  Time avgPost = 0;
  Time avgWork = 0;
  Time avgWait = 0;
  Time dryWork = 0;  ///< per-rep dry-loop time
  double availability = 0;
};

/// Polling numbers recomputed from the worker's Phase spans.
struct PollingAudit {
  Time dryTime = 0;
  Time liveTime = 0;
  double availability = 0;
};

/// Reconstruct one PWW point from the spans of `workerNode`. The log must
/// hold exactly one traced point (the warm-up cycle is skipped, matching
/// the runner). Throws comb::Error on malformed span data.
PwwAudit auditPww(const sim::TraceLog& log, int workerNode = 0);

/// Reconstruct one polling point from the spans of `workerNode`.
PollingAudit auditPolling(const sim::TraceLog& log, int workerNode = 0);

/// Compare audit vs reported point. Returns an empty string when every
/// field agrees within `relTol` relative tolerance; otherwise a
/// human-readable description of the first mismatch.
std::string checkPww(const PwwAudit& audit, const PwwPoint& point,
                     double relTol = 0.01);
std::string checkPolling(const PollingAudit& audit, const PollingPoint& point,
                         double relTol = 0.01);

}  // namespace comb::bench
