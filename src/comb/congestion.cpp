#include "comb/congestion.hpp"

#include <algorithm>
#include <limits>

#include "backend/sim_cluster.hpp"
#include "common/log.hpp"

namespace comb::bench {

const char* congestionPatternName(CongestionPattern p) {
  switch (p) {
    case CongestionPattern::Incast:
      return "incast";
    case CongestionPattern::Hotspot:
      return "hotspot";
    case CongestionPattern::AllToAll:
      return "all-to-all";
  }
  return "?";
}

std::vector<int> congestionDests(const CongestionParams& p, int rank) {
  const int n = static_cast<int>(p.nodes);
  const int m = p.messagesPerSender;
  std::vector<int> dests;
  switch (p.pattern) {
    case CongestionPattern::Incast:
      if (rank == 0) return dests;
      dests.assign(static_cast<std::size_t>(m), 0);
      return dests;
    case CongestionPattern::Hotspot: {
      if (rank == 0) return dests;
      // Even slots hit the hot spot, odd slots a ring neighbour (skipping
      // the hot spot). With 2 nodes there is no cold neighbour — the
      // pattern degenerates to incast.
      int neighbor = (rank + 1) % n;
      if (neighbor == 0) neighbor = 1;
      dests.reserve(static_cast<std::size_t>(m));
      for (int k = 0; k < m; ++k)
        dests.push_back((k % 2 == 0 || neighbor == rank) ? 0 : neighbor);
      return dests;
    }
    case CongestionPattern::AllToAll: {
      // Pairwise exchange: cycle through the other ranks starting at the
      // successor, so every (src, dst) pair carries ~m/(n-1) messages and
      // each node's send and receive volumes are equal.
      dests.reserve(static_cast<std::size_t>(m));
      for (int k = 0; k < m; ++k)
        dests.push_back((rank + 1 + (k % (n - 1))) % n);
      return dests;
    }
  }
  return dests;
}

std::uint64_t congestionExpectedRecvs(const CongestionParams& p, int rank) {
  const int n = static_cast<int>(p.nodes);
  std::uint64_t total = 0;
  for (int s = 0; s < n; ++s)
    for (const int d : congestionDests(p, s))
      if (d == rank) ++total;
  return total;
}

namespace {

sim::Task<void> congestionDriver(backend::SimProc& env, CongestionParams p,
                                 CongestionNodeResult& out) {
  out = co_await congestionNodeOn(env, p, env.mpi().world());
}

}  // namespace

CongestionPoint runCongestionPoint(const backend::MachineConfig& machine,
                                   const CongestionParams& params,
                                   const RunOptions& opts) {
  COMB_REQUIRE(params.nodes >= 2 && params.nodes <= (1u << 20),
               "congestion needs 2 <= nodes <= 2^20");
  const int n = static_cast<int>(params.nodes);
  backend::SimCluster cluster(machineWithOptions(machine, opts), n,
                              opts.simJobs, simWorkerBudget(opts),
                              opts.simAffinity);
  std::vector<CongestionNodeResult> nodes(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    cluster.launch(r, congestionDriver(cluster.proc(r), params, nodes[r]),
                   "congestion-node");
  cluster.run();

  CongestionPoint point;
  point.nodes = params.nodes;
  point.msgBytes = params.msgBytes;
  point.pattern = params.pattern;
  point.nodeBandwidthBps.reserve(nodes.size());
  point.nodeAvailability.reserve(nodes.size());
  double totalBytes = 0.0;
  double availSum = 0.0;
  double minAvail = std::numeric_limits<double>::infinity();
  double minBw = std::numeric_limits<double>::infinity();
  double bwSum = 0.0;
  int senders = 0;
  for (const auto& node : nodes)
    point.makespan = std::max(point.makespan, node.liveTime);
  // Sender goodput is its delivered share over the pattern makespan. A
  // sender's own liveTime ends at *local* send completion, which an idle
  // uplink reaches at wire speed regardless of how contended the victim's
  // downlink is — the makespan is what congestion actually stretches.
  for (auto& node : nodes)
    node.bandwidthBps =
        (point.makespan > 0 && node.messagesSent > 0)
            ? static_cast<double>(node.messagesSent) *
                  static_cast<double>(params.msgBytes) / point.makespan
            : 0.0;
  for (const auto& node : nodes) {
    point.messagesDelivered += node.messagesReceived;
    totalBytes += static_cast<double>(node.messagesSent) *
                  static_cast<double>(params.msgBytes);
    point.nodeBandwidthBps.push_back(node.bandwidthBps);
    point.nodeAvailability.push_back(node.availability);
    availSum += node.availability;
    minAvail = std::min(minAvail, node.availability);
    if (node.messagesSent > 0) {
      ++senders;
      bwSum += node.bandwidthBps;
      minBw = std::min(minBw, node.bandwidthBps);
    }
  }
  point.availability = availSum / static_cast<double>(n);
  point.minAvailability = minAvail;
  point.meanNodeBandwidthBps =
      senders > 0 ? bwSum / static_cast<double>(senders) : 0.0;
  point.minNodeBandwidthBps = senders > 0 ? minBw : 0.0;
  point.bandwidthBps = point.makespan > 0 ? totalBytes / point.makespan : 0.0;
  point.switches = cluster.fabric().switchTotals();
  point.fault = cluster.faultCounters();
  const auto snap = cluster.metricsSnapshot();
  point.sendTail =
      metrics::mergeLatencyFamily(snap, "mpi.n", ".send_latency").tail();
  point.recvTail =
      metrics::mergeLatencyFamily(snap, "mpi.n", ".recv_latency").tail();
  point.shardImbalance = cluster.shardImbalance();
  return point;
}

namespace {

std::vector<CongestionParams> expandCongestionSpec(
    const SweepSpec<CongestionParams>& spec) {
  const auto axis = spec.axis != nullptr ? spec.axis : &CongestionParams::nodes;
  std::vector<CongestionParams> paramSets;
  paramSets.reserve(spec.values.size());
  for (const auto v : spec.values) {
    CongestionParams p = spec.base;
    p.*axis = v;
    paramSets.push_back(p);
  }
  return paramSets;
}

}  // namespace

std::vector<CongestionPoint> runCongestionSweep(
    const backend::MachineConfig& machine,
    const SweepSpec<CongestionParams>& spec, const RunOptions& opts) {
  const auto m = machineWithOptions(machine, opts);
  const auto paramSets = expandCongestionSpec(spec);
  auto points = runSweepParallel(
      m, paramSets,
      [&opts](const backend::MachineConfig& mc, const CongestionParams& p) {
        return runCongestionPoint(mc, p, coreOptions(opts));
      },
      opts.jobs);
  for (const auto& pt : points) {
    COMB_LOG(Debug) << machine.name << " congestion "
                    << congestionPatternName(pt.pattern)
                    << " nodes=" << pt.nodes
                    << " agg_bw=" << toMBps(pt.bandwidthBps)
                    << " MB/s min_node_bw=" << toMBps(pt.minNodeBandwidthBps)
                    << " MB/s qdrops=" << pt.switches.dropsQueue
                    << " stalls=" << pt.switches.creditStalls;
  }
  return points;
}

RepRun<CongestionPoint> runCongestionPointReps(
    const backend::MachineConfig& machine, const CongestionParams& params,
    const RunOptions& opts) {
  return runPointRepsWith<CongestionPoint>(
      machine, opts, [&](const backend::MachineConfig& m) {
        return runCongestionPoint(m, params, coreOptions(opts));
      });
}

std::vector<RepRun<CongestionPoint>> runCongestionSweepReps(
    const backend::MachineConfig& machine,
    const SweepSpec<CongestionParams>& spec, const RunOptions& opts) {
  validateRepPolicy(opts.rep);
  const auto paramSets = expandCongestionSpec(spec);
  std::vector<RepRun<CongestionPoint>> runs(paramSets.size());
  parallelFor(paramSets.size(), opts.jobs, [&](std::size_t i) {
    runs[i] = runCongestionPointReps(machine, paramSets[i], opts);
  });
  return runs;
}

}  // namespace comb::bench
