// Runners: execute one COMB measurement (or a sweep) on a simulated
// machine. Each point runs on a freshly built two-node cluster so sweep
// points are independent and bit-reproducible.
//
// That per-point isolation is what makes the parallel sweep executor
// safe: `runSweepParallel` fans points out across a host thread pool and
// is guaranteed to return results bit-identical to the serial path — the
// simulator is deterministic and no state is shared between points (the
// only process-global facility the workers touch, the logger, is
// thread-safe; see common/log.hpp). The same holds under fault
// injection: each link's fault stream is seeded from (spec.seed, link
// name), never from global RNG state.
//
// The sweep API: a SweepSpec<Param> names the base parameter set and the
// swept axis; RunOptions carries everything about *how* to run (worker
// threads, core shards, fault injection) so new knobs never change
// runner signatures again.
#pragma once

#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "backend/machine.hpp"
#include "comb/latency.hpp"
#include "comb/params.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "host/noise.hpp"
#include "net/fault.hpp"
#include "report/machine_stats.hpp"
#include "sim/executor.hpp"
#include "sim/tracelog.hpp"

namespace comb::bench {

/// Repetition policy for a measurement point. Repetitions exist for the
/// statistical gate (archives, `comb compare`): rep 0 always runs the
/// machine exactly as configured, so the canonical reported point is
/// byte-identical whatever the rep count; reps 1..N-1 re-run the point
/// with the fault-stream seed re-derived from (seed, rep), which is the
/// only stochastic input the simulator has. On a lossless fabric all reps
/// are identical by construction and the adaptive controller stops at
/// minReps with a zero-width interval.
struct RepPolicy {
  /// Fixed repetition count (used when adaptive == false).
  int reps = 1;
  /// --reps-auto: run until the relative CI half-width of the watched
  /// metric (bandwidth) reaches ciTarget, between minReps and maxReps.
  bool adaptive = false;
  int minReps = 3;
  int maxReps = 20;   ///< --max-reps (rep budget for adaptive mode)
  double ciTarget = 0.05;  ///< --ci-target
  double ciLevel = 0.95;
  /// Root seed for per-rep fault-stream derivation and for the bootstrap
  /// resampling stream.
  std::uint64_t seed = 0xC04Bu;

  /// The stats-engine view of this policy.
  AdaptiveRepPolicy adaptivePolicy() const {
    AdaptiveRepPolicy p;
    p.minReps = minReps;
    p.maxReps = maxReps;
    p.ciTarget = ciTarget;
    p.ciLevel = ciLevel;
    p.seed = seed;
    return p;
  }
};

/// Throws comb::ConfigError on out-of-range values (CLI-facing).
void validateRepPolicy(const RepPolicy& policy);

/// Deterministic per-repetition fault seed (splitmix64 mix of root seed
/// and rep index; rep 0 keeps the machine's own seed untouched).
std::uint64_t repSeed(std::uint64_t root, int rep);

/// How to execute a point or sweep, as opposed to *what* to measure
/// (that's the Param struct). Extend here instead of adding positional
/// parameters to runner signatures.
struct RunOptions {
  /// Worker threads for sweeps. Results are bit-identical to jobs=1.
  int jobs = 1;
  /// Shards for the simulator core of each point's cluster (--sim-jobs):
  /// 1 (default) is the classic serial core, bit-identical to every
  /// historical result; N > 1 runs the sharded PDES executor, whose
  /// results are deterministic given N but may differ from serial ones.
  /// Part of a run's configuration identity — archives record it and
  /// `comb compare` flags cross-simJobs comparisons.
  int simJobs = 1;
  /// Pinning policy for the sharded core's worker threads
  /// (--sim-affinity). Wall time only — results are identical across
  /// policies — but archives stamp it so perf comparisons can flag
  /// cross-policy runs. Ignored when simJobs == 1.
  sim::AffinityPolicy simAffinity = sim::AffinityPolicy::None;
  /// When set, overrides the machine's fabric fault model for this run
  /// (the CLI's --fault flag lands here).
  std::optional<net::FaultSpec> fault;
  /// When set, overrides the machine's OS-noise injector for this run
  /// (the CLI's --noise flag lands here).
  std::optional<host::NoiseSpec> noise;
  /// Repetitions per point (only the *Reps runners look at this; the
  /// single-shot runners below always measure exactly once).
  RepPolicy rep;
};

/// Thread-budget mediation between the sweep level (opts.jobs clusters
/// at once) and the core level (opts.simJobs worker threads inside each
/// cluster): returns the per-cluster worker cap (0 = executor default)
/// so that jobs * workers never exceeds hardware concurrency. Logs a
/// warning (once per process) when it has to throttle.
int simWorkerBudget(const RunOptions& opts);

/// The execution-shape subset of `opts` (jobs + simJobs + simAffinity)
/// that nested
/// point runs must inherit from a sweep or rep loop. Fault/rep settings
/// are deliberately dropped — the caller has already folded them into
/// the machine config — but simJobs must ride along (it shapes the
/// cluster, not the machine), and jobs rides for simWorkerBudget's
/// oversubscription math.
inline RunOptions coreOptions(const RunOptions& opts) {
  RunOptions ro;
  ro.jobs = opts.jobs;
  ro.simJobs = opts.simJobs;
  ro.simAffinity = opts.simAffinity;
  return ro;
}

/// All repetitions of one measurement point. reps[0] is the canonical
/// point (machine exactly as configured — byte-identical to a single
/// run); later reps differ only in the derived fault seed.
template <typename Point>
struct RepRun {
  std::vector<Point> reps;
  bool adaptive = false;
  /// Adaptive mode: true when the CI target was reached before the rep
  /// budget ran out. Always true for fixed-rep runs.
  bool converged = true;
  /// Bootstrap CI over the per-rep bandwidth samples (the watched metric).
  BootstrapCi bandwidthCi;

  const Point& canonical() const { return reps.front(); }
  std::vector<double> metricSamples(double (*metric)(const Point&)) const {
    std::vector<double> xs;
    xs.reserve(reps.size());
    for (const auto& p : reps) xs.push_back(metric(p));
    return xs;
  }
};

/// A sweep: the base parameter set plus the axis being swept. With
/// `axis == nullptr` the method's primary variable is swept (polling:
/// pollInterval; PWW: workInterval; latency: msgBytes); any other
/// std::uint64_t member can be named explicitly, e.g.
/// `spec.axis = &PollingParams::msgBytes`.
template <typename Param>
struct SweepSpec {
  Param base{};
  std::uint64_t Param::*axis = nullptr;
  std::vector<std::uint64_t> values;
};

/// Convenience maker: `sweepOver(base, values)` sweeps the method's
/// primary axis; name any other std::uint64_t member to sweep it instead.
template <typename Param>
SweepSpec<Param> sweepOver(Param base, std::vector<std::uint64_t> values,
                           std::uint64_t Param::*axis = nullptr) {
  SweepSpec<Param> spec;
  spec.base = std::move(base);
  spec.axis = axis;
  spec.values = std::move(values);
  return spec;
}

/// Apply a RunOptions fault override to a machine description.
backend::MachineConfig machineWithOptions(const backend::MachineConfig& machine,
                                          const RunOptions& opts);

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params,
                             const RunOptions& opts = {});
PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params, const RunOptions& opts = {});
LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params,
                             const RunOptions& opts = {});

/// One point re-run with full tracing attached: the measured point (its
/// numbers are identical to the untraced run — trace emission never
/// advances virtual time), the complete timeline, and the machine-stats
/// snapshot (metrics included) taken before teardown.
template <typename Point>
struct TracedRun {
  Point point;
  std::unique_ptr<sim::TraceLog> trace;
  report::MachineStats stats;
};

TracedRun<PollingPoint> runPollingPointTraced(
    const backend::MachineConfig& machine, const PollingParams& params,
    const RunOptions& opts = {}, std::size_t traceCapacity = 1 << 20);
TracedRun<PwwPoint> runPwwPointTraced(const backend::MachineConfig& machine,
                                      const PwwParams& params,
                                      const RunOptions& opts = {},
                                      std::size_t traceCapacity = 1 << 20);

/// Generic parallel sweep executor: run `runOne(machine, paramSets[i])`
/// for every parameter set, using up to `jobs` worker threads.
///
/// * Results come back in input order (slot i = paramSets[i]) no matter
///   how the points were scheduled.
/// * `jobs <= 1` (or a single point) degenerates to the serial in-order
///   loop on the calling thread — no pool is created.
/// * If points throw, the exception from the lowest-index point is
///   rethrown after all workers finish (deterministic across runs).
template <typename Param, typename RunOne>
auto runSweepParallel(const backend::MachineConfig& machine,
                      const std::vector<Param>& paramSets, RunOne&& runOne,
                      int jobs)
    -> std::vector<std::decay_t<
        decltype(runOne(machine, std::declval<const Param&>()))>> {
  using Point = std::decay_t<decltype(runOne(machine, std::declval<const Param&>()))>;
  std::vector<Point> points(paramSets.size());
  parallelFor(paramSets.size(), jobs,
              [&](std::size_t i) { points[i] = runOne(machine, paramSets[i]); });
  return points;
}

/// Sweep the axis named by `spec` (default: the polling interval).
std::vector<PollingPoint> runPollingSweep(const backend::MachineConfig& machine,
                                          const SweepSpec<PollingParams>& spec,
                                          const RunOptions& opts = {});

/// Sweep the axis named by `spec` (default: the work interval).
std::vector<PwwPoint> runPwwSweep(const backend::MachineConfig& machine,
                                  const SweepSpec<PwwParams>& spec,
                                  const RunOptions& opts = {});

/// Sweep the axis named by `spec` (default: the message size). Reps and
/// tag ride along in spec.base like every other method parameter.
std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const SweepSpec<LatencyParams>& spec,
                                          const RunOptions& opts = {});

// --- repetition-aware runners (statistical gate) ---------------------------
//
// Same measurement as the plain runners, executed opts.rep times per
// point (or adaptively). Sweep variants parallelize over points exactly
// like the plain sweeps; the reps within one point run serially because
// the adaptive stop rule is inherently sequential.

/// Shared rep loop (used by every *PointReps runner, including the
/// congestion module): rep 0 runs the machine exactly as configured,
/// later reps reseed the per-link fault stream from (policy.seed, rep).
/// On a lossless fabric the reseed is a no-op by construction (the fault
/// stream is never sampled), so all reps are bit-identical. `runOne` is
/// called as runOne(machine) and must return a Point with a
/// `bandwidthBps` member (the watched metric).
template <typename Point, typename RunOne>
RepRun<Point> runPointRepsWith(const backend::MachineConfig& machine,
                               const RunOptions& opts, RunOne&& runOne) {
  validateRepPolicy(opts.rep);
  const backend::MachineConfig base = machineWithOptions(machine, opts);
  // The per-rep runner must not re-apply opts.fault/rep (already folded
  // into `base`), so reps run with a bare RunOptions.
  const auto runRep = [&](int rep) {
    if (rep == 0) return runOne(base);
    backend::MachineConfig m = base;
    m.fabric.link.fault.seed =
        repSeed(opts.rep.seed ^ m.fabric.link.fault.seed, rep);
    return runOne(m);
  };

  RepRun<Point> run;
  run.adaptive = opts.rep.adaptive;
  if (opts.rep.adaptive) {
    AdaptiveRep controller(opts.rep.adaptivePolicy());
    while (controller.wantMore()) {
      const auto rep = static_cast<int>(run.reps.size());
      run.reps.push_back(runRep(rep));
      controller.add(run.reps.back().bandwidthBps);
    }
    run.converged = controller.converged();
    run.bandwidthCi = controller.ci();
  } else {
    run.reps.reserve(static_cast<std::size_t>(opts.rep.reps));
    for (int rep = 0; rep < opts.rep.reps; ++rep)
      run.reps.push_back(runRep(rep));
    BootstrapOptions bopts;
    bopts.level = opts.rep.ciLevel;
    bopts.seed = opts.rep.seed;
    std::vector<double> bw;
    bw.reserve(run.reps.size());
    for (const auto& p : run.reps) bw.push_back(p.bandwidthBps);
    run.bandwidthCi = bootstrapMeanCi(bw, bopts);
  }
  return run;
}

RepRun<PollingPoint> runPollingPointReps(const backend::MachineConfig& machine,
                                         const PollingParams& params,
                                         const RunOptions& opts = {});
RepRun<PwwPoint> runPwwPointReps(const backend::MachineConfig& machine,
                                 const PwwParams& params,
                                 const RunOptions& opts = {});
RepRun<LatencyPoint> runLatencyPointReps(const backend::MachineConfig& machine,
                                         const LatencyParams& params,
                                         const RunOptions& opts = {});

std::vector<RepRun<PollingPoint>> runPollingSweepReps(
    const backend::MachineConfig& machine, const SweepSpec<PollingParams>& spec,
    const RunOptions& opts = {});
std::vector<RepRun<PwwPoint>> runPwwSweepReps(
    const backend::MachineConfig& machine, const SweepSpec<PwwParams>& spec,
    const RunOptions& opts = {});
std::vector<RepRun<LatencyPoint>> runLatencySweepReps(
    const backend::MachineConfig& machine, const SweepSpec<LatencyParams>& spec,
    const RunOptions& opts = {});

}  // namespace comb::bench
