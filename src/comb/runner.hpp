// Runners: execute one COMB measurement (or a sweep) on a simulated
// machine. Each point runs on a freshly built two-node cluster so sweep
// points are independent and bit-reproducible.
//
// That per-point isolation is what makes the parallel sweep executor
// safe: `runSweepParallel` fans points out across a host thread pool and
// is guaranteed to return results bit-identical to the serial path — the
// simulator is deterministic and no state is shared between points (the
// only process-global facility the workers touch, the logger, is
// thread-safe; see common/log.hpp). The same holds under fault
// injection: each link's fault stream is seeded from (spec.seed, link
// name), never from global RNG state.
//
// The sweep API: a SweepSpec<Param> names the base parameter set and the
// swept axis; RunOptions carries everything about *how* to run (worker
// threads, fault injection) so new knobs never change runner signatures
// again. The older positional overloads are kept as deprecated shims.
#pragma once

#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "backend/machine.hpp"
#include "comb/latency.hpp"
#include "comb/params.hpp"
#include "common/thread_pool.hpp"
#include "net/fault.hpp"
#include "report/machine_stats.hpp"
#include "sim/tracelog.hpp"

namespace comb::bench {

/// How to execute a point or sweep, as opposed to *what* to measure
/// (that's the Param struct). Extend here instead of adding positional
/// parameters to runner signatures.
struct RunOptions {
  /// Worker threads for sweeps. Results are bit-identical to jobs=1.
  int jobs = 1;
  /// When set, overrides the machine's fabric fault model for this run
  /// (the CLI's --fault flag lands here).
  std::optional<net::FaultSpec> fault;
};

/// A sweep: the base parameter set plus the axis being swept. With
/// `axis == nullptr` the method's primary variable is swept (polling:
/// pollInterval; PWW: workInterval; latency: msgBytes); any other
/// std::uint64_t member can be named explicitly, e.g.
/// `spec.axis = &PollingParams::msgBytes`.
template <typename Param>
struct SweepSpec {
  Param base{};
  std::uint64_t Param::*axis = nullptr;
  std::vector<std::uint64_t> values;
};

/// Convenience maker: `sweepOver(base, values)` sweeps the method's
/// primary axis; name any other std::uint64_t member to sweep it instead.
template <typename Param>
SweepSpec<Param> sweepOver(Param base, std::vector<std::uint64_t> values,
                           std::uint64_t Param::*axis = nullptr) {
  SweepSpec<Param> spec;
  spec.base = std::move(base);
  spec.axis = axis;
  spec.values = std::move(values);
  return spec;
}

/// Apply a RunOptions fault override to a machine description.
backend::MachineConfig machineWithOptions(const backend::MachineConfig& machine,
                                          const RunOptions& opts);

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params,
                             const RunOptions& opts = {});
PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params, const RunOptions& opts = {});
LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params,
                             const RunOptions& opts = {});

/// One point re-run with full tracing attached: the measured point (its
/// numbers are identical to the untraced run — trace emission never
/// advances virtual time), the complete timeline, and the machine-stats
/// snapshot (metrics included) taken before teardown.
template <typename Point>
struct TracedRun {
  Point point;
  std::unique_ptr<sim::TraceLog> trace;
  report::MachineStats stats;
};

TracedRun<PollingPoint> runPollingPointTraced(
    const backend::MachineConfig& machine, const PollingParams& params,
    const RunOptions& opts = {}, std::size_t traceCapacity = 1 << 20);
TracedRun<PwwPoint> runPwwPointTraced(const backend::MachineConfig& machine,
                                      const PwwParams& params,
                                      const RunOptions& opts = {},
                                      std::size_t traceCapacity = 1 << 20);

/// Generic parallel sweep executor: run `runOne(machine, paramSets[i])`
/// for every parameter set, using up to `jobs` worker threads.
///
/// * Results come back in input order (slot i = paramSets[i]) no matter
///   how the points were scheduled.
/// * `jobs <= 1` (or a single point) degenerates to the serial in-order
///   loop on the calling thread — no pool is created.
/// * If points throw, the exception from the lowest-index point is
///   rethrown after all workers finish (deterministic across runs).
template <typename Param, typename RunOne>
auto runSweepParallel(const backend::MachineConfig& machine,
                      const std::vector<Param>& paramSets, RunOne&& runOne,
                      int jobs)
    -> std::vector<std::decay_t<
        decltype(runOne(machine, std::declval<const Param&>()))>> {
  using Point = std::decay_t<decltype(runOne(machine, std::declval<const Param&>()))>;
  std::vector<Point> points(paramSets.size());
  parallelFor(paramSets.size(), jobs,
              [&](std::size_t i) { points[i] = runOne(machine, paramSets[i]); });
  return points;
}

/// Sweep the axis named by `spec` (default: the polling interval).
std::vector<PollingPoint> runPollingSweep(const backend::MachineConfig& machine,
                                          const SweepSpec<PollingParams>& spec,
                                          const RunOptions& opts = {});

/// Sweep the axis named by `spec` (default: the work interval).
std::vector<PwwPoint> runPwwSweep(const backend::MachineConfig& machine,
                                  const SweepSpec<PwwParams>& spec,
                                  const RunOptions& opts = {});

/// Sweep the axis named by `spec` (default: the message size). Reps and
/// tag ride along in spec.base like every other method parameter.
std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const SweepSpec<LatencyParams>& spec,
                                          const RunOptions& opts = {});

// --- deprecated positional overloads (pre-SweepSpec API) -------------------

[[deprecated("use runPollingSweep(machine, SweepSpec, RunOptions)")]]
std::vector<PollingPoint> runPollingSweep(
    const backend::MachineConfig& machine, PollingParams base,
    const std::vector<std::uint64_t>& pollIntervals, int jobs = 1);

[[deprecated("use runPwwSweep(machine, SweepSpec, RunOptions)")]]
std::vector<PwwPoint> runPwwSweep(
    const backend::MachineConfig& machine, PwwParams base,
    const std::vector<std::uint64_t>& workIntervals, int jobs = 1);

[[deprecated("use runLatencySweep(machine, SweepSpec, RunOptions)")]]
std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const std::vector<Bytes>& sizes,
                                          int reps = 30, int jobs = 1);

}  // namespace comb::bench
