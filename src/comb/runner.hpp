// Runners: execute one COMB measurement (or a sweep) on a simulated
// machine. Each point runs on a freshly built two-node cluster so sweep
// points are independent and bit-reproducible.
#pragma once

#include <vector>

#include "backend/machine.hpp"
#include "comb/latency.hpp"
#include "comb/params.hpp"

namespace comb::bench {

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params);
PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params);

/// Sweep the polling interval (params.pollInterval is overridden per point).
std::vector<PollingPoint> runPollingSweep(
    const backend::MachineConfig& machine, PollingParams base,
    const std::vector<std::uint64_t>& pollIntervals);

/// Sweep the work interval (params.workInterval is overridden per point).
std::vector<PwwPoint> runPwwSweep(const backend::MachineConfig& machine,
                                  PwwParams base,
                                  const std::vector<std::uint64_t>& workIntervals);

// Ping-pong latency microbenchmark (comb/latency.hpp).
LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params);
std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const std::vector<Bytes>& sizes,
                                          int reps = 30);

}  // namespace comb::bench
