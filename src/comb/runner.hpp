// Runners: execute one COMB measurement (or a sweep) on a simulated
// machine. Each point runs on a freshly built two-node cluster so sweep
// points are independent and bit-reproducible.
//
// That per-point isolation is what makes the parallel sweep executor
// safe: `runSweepParallel` fans points out across a host thread pool and
// is guaranteed to return results bit-identical to the serial path — the
// simulator is deterministic and no state is shared between points (the
// only process-global facility the workers touch, the logger, is
// thread-safe; see common/log.hpp).
#pragma once

#include <type_traits>
#include <vector>

#include "backend/machine.hpp"
#include "comb/latency.hpp"
#include "comb/params.hpp"
#include "common/thread_pool.hpp"

namespace comb::bench {

PollingPoint runPollingPoint(const backend::MachineConfig& machine,
                             const PollingParams& params);
PwwPoint runPwwPoint(const backend::MachineConfig& machine,
                     const PwwParams& params);

/// Generic parallel sweep executor: run `runOne(machine, paramSets[i])`
/// for every parameter set, using up to `jobs` worker threads.
///
/// * Results come back in input order (slot i = paramSets[i]) no matter
///   how the points were scheduled.
/// * `jobs <= 1` (or a single point) degenerates to the serial in-order
///   loop on the calling thread — no pool is created.
/// * If points throw, the exception from the lowest-index point is
///   rethrown after all workers finish (deterministic across runs).
template <typename Param, typename RunOne>
auto runSweepParallel(const backend::MachineConfig& machine,
                      const std::vector<Param>& paramSets, RunOne&& runOne,
                      int jobs)
    -> std::vector<std::decay_t<
        decltype(runOne(machine, std::declval<const Param&>()))>> {
  using Point = std::decay_t<decltype(runOne(machine, std::declval<const Param&>()))>;
  std::vector<Point> points(paramSets.size());
  parallelFor(paramSets.size(), jobs,
              [&](std::size_t i) { points[i] = runOne(machine, paramSets[i]); });
  return points;
}

/// Sweep the polling interval (params.pollInterval is overridden per
/// point). `jobs` worker threads run points concurrently; results are
/// bit-identical to jobs=1.
std::vector<PollingPoint> runPollingSweep(
    const backend::MachineConfig& machine, PollingParams base,
    const std::vector<std::uint64_t>& pollIntervals, int jobs = 1);

/// Sweep the work interval (params.workInterval is overridden per point).
std::vector<PwwPoint> runPwwSweep(
    const backend::MachineConfig& machine, PwwParams base,
    const std::vector<std::uint64_t>& workIntervals, int jobs = 1);

// Ping-pong latency microbenchmark (comb/latency.hpp).
LatencyPoint runLatencyPoint(const backend::MachineConfig& machine,
                             const LatencyParams& params);
std::vector<LatencyPoint> runLatencySweep(const backend::MachineConfig& machine,
                                          const std::vector<Bytes>& sizes,
                                          int reps = 30, int jobs = 1);

}  // namespace comb::bench
