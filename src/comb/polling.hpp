// The COMB Polling method (paper §2.1).
//
// Two processes. The worker interleaves fixed-size chunks of calibrated
// work ("poll intervals") with non-blocking completion tests; every
// arrived message is answered with a reply and a replacement receive. The
// support process echoes messages as fast as they are consumed and never
// does simulated work. Availability is the dry-run/live-run work-time
// ratio; bandwidth is the worker's one-direction goodput.
//
// Both roles are templates over a backend environment (see
// backend/sim_cluster.hpp SimProc and backend/thread_proc.hpp ThreadProc),
// which is what makes the suite "portable" in the paper's sense.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "comb/params.hpp"
#include "common/error.hpp"
#include "mpi/request.hpp"
#include "sim/task.hpp"

namespace comb::bench {

namespace detail {

/// Number of polls for a sweep point: long enough to observe steady
/// state, bounded to keep the event count sane at tiny intervals.
inline std::uint64_t pollsFor(const PollingParams& p, double secondsPerIter) {
  const double perPoll =
      static_cast<double>(p.pollInterval) * secondsPerIter + 2e-6;
  const auto wanted =
      static_cast<std::uint64_t>(p.targetDuration / perPoll) + 1;
  return std::clamp(wanted, p.minPolls, p.maxPolls);
}

/// Compact a request pool in place, dropping freed (invalid) entries.
inline void compactPool(std::vector<mpi::Request>& pool) {
  std::erase_if(pool, [](const mpi::Request& r) { return !r.valid(); });
}

}  // namespace detail

/// Worker role (rank 0 of `world`, which may be any 2-rank communicator —
/// commSplit a larger world to run concurrent pairs). Returns the
/// measured sweep point.
template <typename Env, typename CommType>
sim::Task<PollingPoint> pollingWorkerOn(Env& env, PollingParams p,
                                        const CommType& world) {
  COMB_REQUIRE(world.size() == 2, "the polling method uses exactly 2 ranks");
  COMB_REQUIRE(world.rank() == 0, "worker must be rank 0");
  COMB_REQUIRE(p.queueDepth >= 1, "queueDepth must be >= 1");
  auto& mpi = env.mpi();
  const int peer = 1;
  const std::uint64_t nPolls = detail::pollsFor(p, env.secondsPerIter());

  PollingPoint point;
  point.pollInterval = p.pollInterval;
  point.msgBytes = p.msgBytes;
  point.pollsExecuted = nPolls;

  // --- dry run: the same loop with no communication ----------------------
  // Phase spans bracket exactly the wtime() stamps used for the reported
  // numbers, so the trace-driven audit can recompute availability.
  co_await mpi.barrier(world);
  {
    env.phaseBegin("dry");
    const auto t0 = env.wtime();
    for (std::uint64_t i = 0; i < nPolls; ++i) co_await env.work(p.pollInterval);
    point.dryTime = env.wtime() - t0;
    env.phaseEnd("dry");
  }

  // --- live run -----------------------------------------------------------
  std::vector<mpi::Request> recvs(static_cast<std::size_t>(p.queueDepth));
  for (auto& r : recvs)
    r = co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes);
  co_await mpi.barrier(world);  // support starts pumping after this

  std::vector<mpi::Request> sendPool;
  std::uint64_t received = 0;
  std::uint64_t repliesSent = 0;

  env.phaseBegin("live");
  const auto t0 = env.wtime();
  for (std::uint64_t i = 0; i < nPolls; ++i) {
    co_await env.work(p.pollInterval);
    // Poll: reap every arrived message, reply, replace (paper Fig 1).
    auto done = co_await mpi.testsome(recvs);
    for (const std::size_t idx : done) {
      ++received;
      sendPool.push_back(
          co_await mpi.isend(world, peer, p.dataTag, p.msgBytes));
      ++repliesSent;
      recvs[idx] = co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes);
    }
    if (!done.empty()) {
      // Recycle completed reply sends so the pool stays bounded.
      co_await mpi.testsome(sendPool);
      detail::compactPool(sendPool);
    }
  }
  point.liveTime = env.wtime() - t0;
  env.phaseEnd("live");
  point.messagesReceived = received;
  point.availability =
      point.liveTime > 0 ? point.dryTime / point.liveTime : 0.0;
  point.bandwidthBps = point.liveTime > 0
                           ? static_cast<double>(received * p.msgBytes) /
                                 point.liveTime
                           : 0.0;

  // --- drain & shutdown ----------------------------------------------------
  // Tell the support process how many data messages we sent in total; it
  // answers with its own total so we know how many are still inbound.
  co_await mpi.send(world, peer, p.ctrlTag, sizeof(std::uint64_t),
                    std::as_bytes(std::span<const std::uint64_t>(&repliesSent, 1)));
  std::uint64_t supportSent = 0;
  co_await mpi.recv(world, peer, p.ctrlTag, sizeof(std::uint64_t),
                    std::as_writable_bytes(std::span<std::uint64_t>(&supportSent, 1)));
  while (received < supportSent) {
    const auto seen = env.activityVersion();
    auto done = co_await mpi.testsome(recvs);
    for (const std::size_t idx : done) {
      ++received;
      // Replacement receives are NOT needed during the drain, but keep the
      // posted count constant so in-flight messages always have a landing
      // slot.
      recvs[idx] = co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes);
    }
    if (received >= supportSent) break;
    if (done.empty()) co_await env.waitActivity(seen);
  }
  for (auto& r : recvs) {
    if (r.valid()) {
      const bool ok = co_await mpi.cancel(r);
      COMB_ASSERT(ok, "leftover receive should be cancellable after drain");
    }
  }
  co_await mpi.waitall(sendPool);
  co_await mpi.barrier(world);
  co_return point;
}

/// Support role (rank 1): echo every arrival immediately; stop on the
/// control message.
template <typename Env, typename CommType>
sim::Task<void> pollingSupportOn(Env& env, PollingParams p,
                                 const CommType& world) {
  COMB_REQUIRE(world.rank() == 1, "support must be rank 1");
  auto& mpi = env.mpi();
  const int peer = 0;

  co_await mpi.barrier(world);  // worker's dry run happens here

  std::vector<mpi::Request> recvs(static_cast<std::size_t>(p.queueDepth));
  for (auto& r : recvs)
    r = co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes);
  std::uint64_t workerTotal = 0;
  mpi::Request ctrl = co_await mpi.irecv(
      world, peer, p.ctrlTag, sizeof(std::uint64_t),
      std::as_writable_bytes(std::span<std::uint64_t>(&workerTotal, 1)));

  co_await mpi.barrier(world);

  // Initial fill: queueDepth messages toward the worker.
  std::vector<mpi::Request> sendPool;
  std::uint64_t sent = 0;
  for (int k = 0; k < p.queueDepth; ++k) {
    sendPool.push_back(co_await mpi.isend(world, peer, p.dataTag, p.msgBytes));
    ++sent;
  }

  bool stopped = false;
  std::uint64_t received = 0;
  while (true) {
    const auto seen = env.activityVersion();
    bool didWork = false;

    auto done = co_await mpi.testsome(recvs);
    for (const std::size_t idx : done) {
      ++received;
      didWork = true;
      if (!stopped) {
        sendPool.push_back(
            co_await mpi.isend(world, peer, p.dataTag, p.msgBytes));
        ++sent;
      }
      recvs[idx] = co_await mpi.irecv(world, peer, p.dataTag, p.msgBytes);
    }
    if (!sendPool.empty()) {
      co_await mpi.testsome(sendPool);
      detail::compactPool(sendPool);
    }
    if (!stopped && co_await mpi.test(ctrl)) {
      stopped = true;
      didWork = true;
    }
    if (stopped && received >= workerTotal) break;
    if (!didWork) co_await env.waitActivity(seen);
  }

  for (auto& r : recvs) {
    if (r.valid()) {
      const bool ok = co_await mpi.cancel(r);
      COMB_ASSERT(ok, "leftover receive should be cancellable after drain");
    }
  }
  // Report our total so the worker can drain the tail.
  co_await mpi.send(world, peer, p.ctrlTag, sizeof(std::uint64_t),
                    std::as_bytes(std::span<const std::uint64_t>(&sent, 1)));
  co_await mpi.waitall(sendPool);
  co_await mpi.barrier(world);
}


/// Convenience overloads on the backend's world communicator.
template <typename Env>
sim::Task<PollingPoint> pollingWorker(Env& env, PollingParams p) {
  COMB_REQUIRE(env.size() == 2, "the polling method uses exactly 2 ranks");
  co_return co_await pollingWorkerOn(env, std::move(p), env.mpi().world());
}

template <typename Env>
sim::Task<void> pollingSupport(Env& env, PollingParams p) {
  co_await pollingSupportOn(env, std::move(p), env.mpi().world());
}

}  // namespace comb::bench
