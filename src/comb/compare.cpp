#include "comb/compare.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace comb::bench {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::Ok:
      return "ok";
    case Verdict::Regressed:
      return "REGRESSED";
    case Verdict::Improved:
      return "improved";
  }
  return "?";
}

const char* metricClassName(MetricClass c) {
  switch (c) {
    case MetricClass::All:
      return "all";
    case MetricClass::Mean:
      return "mean";
    case MetricClass::Tail:
      return "tail";
  }
  return "?";
}

MetricClass parseMetricClass(std::string_view s) {
  if (s == "all") return MetricClass::All;
  if (s == "mean") return MetricClass::Mean;
  if (s == "tail") return MetricClass::Tail;
  throw ConfigError("--metric-class must be all | mean | tail, got '" +
                    std::string(s) + "'");
}

namespace {

/// True when the archived metric's class passes the --metric-class filter.
/// Archives written before metric classes existed carry "mean" implicitly.
bool classSelected(const report::ArchiveMetric& m, MetricClass filter) {
  switch (filter) {
    case MetricClass::All:
      return true;
    case MetricClass::Mean:
      return m.metricClass != "tail";
    case MetricClass::Tail:
      return m.metricClass == "tail";
  }
  return true;
}

/// Signed relative delta with the same denominator as stats::relDiff.
double signedRelDelta(double baseline, double candidate) {
  const double denom = std::max(std::fabs(baseline), std::fabs(candidate));
  return denom == 0.0 ? 0.0 : (candidate - baseline) / denom;
}

CompareRow compareSamples(const std::string& sweepId, double x,
                          const report::ArchiveMetric& a,
                          const report::ArchiveMetric& b,
                          const CompareOptions& opts) {
  CompareRow row;
  row.sweep = sweepId;
  row.x = x;
  row.metric = a.name;
  row.baseline = median(a.samples);
  row.candidate = median(b.samples);
  row.relDelta = signedRelDelta(row.baseline, row.candidate);

  // Significance: do the two sample sets plausibly disagree?
  bool significant = false;
  const auto mwu = mannWhitneyU(a.samples, b.samples);
  if (mwu.usable) {
    row.pValue = mwu.pValue;
    row.basis = "mwu";
    significant = mwu.pValue < opts.alpha;
    if (!significant && a.samples.size() >= 2 && b.samples.size() >= 2) {
      // MWU is conservative at small n; disjoint bootstrap CIs on the
      // means are independent evidence of a real shift.
      BootstrapOptions bo;
      bo.seed = opts.seed;
      if (bootstrapMeanCi(a.samples, bo)
              .disjointFrom(bootstrapMeanCi(b.samples, bo))) {
        significant = true;
        row.basis = "ci";
      }
    }
  } else if (a.samples.size() >= 2 && b.samples.size() >= 2) {
    BootstrapOptions bo;
    bo.seed = opts.seed;
    significant = bootstrapMeanCi(a.samples, bo)
                      .disjointFrom(bootstrapMeanCi(b.samples, bo));
    row.basis = "ci";
  } else {
    // A single rep on either side: the simulator is deterministic, so
    // any numeric difference is a real difference.
    significant = row.baseline != row.candidate;
    row.basis = "exact";
  }

  if (significant && std::fabs(row.relDelta) > opts.tolerance) {
    const bool worse =
        a.higherIsBetter ? row.relDelta < 0.0 : row.relDelta > 0.0;
    row.verdict = worse ? Verdict::Regressed : Verdict::Improved;
  }
  return row;
}

void tally(CompareReport& report) {
  report.regressed = report.improved = 0;
  for (const auto& row : report.rows) {
    if (row.verdict == Verdict::Regressed) ++report.regressed;
    if (row.verdict == Verdict::Improved) ++report.improved;
  }
}

}  // namespace

CompareReport compareArchives(const report::Archive& baseline,
                              const report::Archive& candidate,
                              const CompareOptions& opts) {
  COMB_REQUIRE(opts.tolerance >= 0.0, "--tolerance must be >= 0");
  COMB_REQUIRE(opts.alpha > 0.0 && opts.alpha < 1.0,
               "--alpha outside (0,1)");
  CompareReport report;
  if (baseline.provenance.gitSha != candidate.provenance.gitSha)
    report.notes.push_back("builds differ: baseline git " +
                           baseline.provenance.gitSha + ", candidate git " +
                           candidate.provenance.gitSha);
  if (baseline.seed != candidate.seed)
    report.notes.push_back(strFormat(
        "seeds differ: baseline %llu, candidate %llu",
        (unsigned long long)baseline.seed,
        (unsigned long long)candidate.seed));
  if (baseline.provenance.simJobs != candidate.provenance.simJobs)
    report.notes.push_back(strFormat(
        "core configurations differ: baseline --sim-jobs %d, candidate "
        "--sim-jobs %d — the shard count is part of the run's identity, so "
        "deltas may reflect the configuration, not the code",
        baseline.provenance.simJobs, candidate.provenance.simJobs));
  if (baseline.provenance.lookaheadSource !=
          candidate.provenance.lookaheadSource ||
      baseline.provenance.lookahead != candidate.provenance.lookahead)
    report.notes.push_back(strFormat(
        "window bounds differ: baseline %s (certified lookahead %g s), "
        "candidate %s (%g s) — sharded results are a pure function of the "
        "lookahead, so deltas may reflect the configuration, not the code",
        baseline.provenance.lookaheadSource.c_str(),
        baseline.provenance.lookahead,
        candidate.provenance.lookaheadSource.c_str(),
        candidate.provenance.lookahead));
  if (baseline.provenance.simAffinity != candidate.provenance.simAffinity)
    report.notes.push_back(
        "worker affinity differs: baseline --sim-affinity " +
        baseline.provenance.simAffinity + ", candidate --sim-affinity " +
        candidate.provenance.simAffinity +
        " — wall-time only (results are identical across policies), but "
        "timing-based metrics may not be comparable");
  if (baseline.rep.reps != candidate.rep.reps ||
      baseline.rep.adaptive != candidate.rep.adaptive)
    report.notes.push_back(strFormat(
        "rep counts differ: baseline %s%d rep(s), candidate %s%d rep(s) — "
        "percentile estimates sharpen with sample count, so tail deltas may "
        "reflect the repetition budget, not the code",
        baseline.rep.adaptive ? "adaptive up to " : "",
        baseline.rep.adaptive ? baseline.rep.maxReps : baseline.rep.reps,
        candidate.rep.adaptive ? "adaptive up to " : "",
        candidate.rep.adaptive ? candidate.rep.maxReps : candidate.rep.reps));
  if (!baseline.provenance.tailPercentiles.empty() &&
      !candidate.provenance.tailPercentiles.empty() &&
      baseline.provenance.tailPercentiles !=
          candidate.provenance.tailPercentiles)
    report.notes.push_back(
        "tail percentile bases differ: baseline {" +
        baseline.provenance.tailPercentiles + "}, candidate {" +
        candidate.provenance.tailPercentiles +
        "} — same-named tail metrics may summarize different quantiles");
  if (!baseline.provenance.stack.empty() &&
      !candidate.provenance.stack.empty() &&
      baseline.provenance.stack != candidate.provenance.stack)
    report.notes.push_back(
        "transport stacks differ: baseline '" + baseline.provenance.stack +
        "', candidate '" + candidate.provenance.stack +
        "' — this is a cross-configuration comparison; deltas reflect the "
        "stack, not a code regression");

  std::map<std::string, const report::ArchiveSweep*> bSweeps;
  for (const auto& s : candidate.sweeps) bSweeps.emplace(s.id, &s);

  for (const auto& sa : baseline.sweeps) {
    const auto it = bSweeps.find(sa.id);
    if (it == bSweeps.end()) {
      report.notes.push_back("sweep '" + sa.id +
                             "' missing from the candidate archive");
      continue;
    }
    const auto& sb = *it->second;
    bSweeps.erase(it);
    if (sa.machineHash != sb.machineHash)
      report.notes.push_back(
          "sweep '" + sa.id +
          "': machine models differ (hash " + sa.machineHash + " vs " +
          sb.machineHash + ") — deltas reflect the model, not the code");

    std::map<double, const report::ArchivePoint*> bPoints;
    for (const auto& p : sb.points) bPoints.emplace(p.x, &p);
    for (const auto& pa : sa.points) {
      const auto pit = bPoints.find(pa.x);
      if (pit == bPoints.end()) {
        report.notes.push_back(strFormat(
            "sweep '%s': point x=%g missing from the candidate archive",
            sa.id.c_str(), pa.x));
        continue;
      }
      const auto& pb = *pit->second;
      bPoints.erase(pit);
      for (const auto& ma : pa.metrics) {
        if (!classSelected(ma, opts.metricClass)) continue;
        const auto mb = std::find_if(
            pb.metrics.begin(), pb.metrics.end(),
            [&](const report::ArchiveMetric& m) { return m.name == ma.name; });
        if (mb == pb.metrics.end()) {
          report.notes.push_back(strFormat(
              "sweep '%s' x=%g: metric '%s' missing from the candidate",
              sa.id.c_str(), pa.x, ma.name.c_str()));
          continue;
        }
        if (ma.higherIsBetter != mb->higherIsBetter) {
          report.notes.push_back(strFormat(
              "sweep '%s' x=%g: metric '%s' direction disagrees; skipped",
              sa.id.c_str(), pa.x, ma.name.c_str()));
          continue;
        }
        report.rows.push_back(
            compareSamples(sa.id, pa.x, ma, *mb, opts));
      }
    }
    for (const auto& [x, p] : bPoints) {
      (void)p;
      report.notes.push_back(strFormat(
          "sweep '%s': point x=%g only in the candidate archive",
          sa.id.c_str(), x));
    }
  }
  for (const auto& [id, s] : bSweeps) {
    (void)s;
    report.notes.push_back("sweep '" + id +
                           "' only in the candidate archive");
  }
  tally(report);
  return report;
}

CompareReport compareBenchJson(const json::Value& root,
                               const CompareOptions& opts) {
  const json::Value* base = root.find("baseline");
  const json::Value* cur = root.find("current");
  if (!base || !cur)
    throw ConfigError(
        "bench baseline file needs top-level 'baseline' and 'current' "
        "blocks (BENCH_sim_core.json shape)");

  CompareReport report;
  const auto compareBlock = [&](const char* block, const char* valueKey,
                                bool higherIsBetter) {
    const json::Value* a = base->find(block);
    const json::Value* b = cur->find(block);
    if (!a || !b) return;
    for (const auto& [name, av] : a->members()) {
      const json::Value* bv = b->find(name);
      if (!bv) {
        report.notes.push_back(std::string(block) + "." + name +
                               " missing from the current block");
        continue;
      }
      report::ArchiveMetric ma, mb;
      ma.name = mb.name = name;
      ma.higherIsBetter = mb.higherIsBetter = higherIsBetter;
      // Scalars or {valueKey: scalar} objects are both accepted.
      ma.samples = {av.isObject() ? av.at(valueKey).number() : av.number()};
      mb.samples = {bv->isObject() ? bv->at(valueKey).number() : bv->number()};
      auto row = compareSamples(block, 0.0, ma, mb, opts);
      row.metric = name;
      report.rows.push_back(std::move(row));
    }
  };
  compareBlock("benchmarks", "items_per_second", /*higherIsBetter=*/true);
  compareBlock("figure_wallclock_seconds", "", /*higherIsBetter=*/false);
  tally(report);
  return report;
}

void renderCompare(std::ostream& out, const CompareReport& report,
                   bool all) {
  TextTable table({"sweep", "x", "metric", "baseline", "candidate", "delta%",
                   "p", "basis", "verdict"});
  std::size_t shown = 0;
  for (const auto& row : report.rows) {
    if (!all && row.verdict == Verdict::Ok) continue;
    ++shown;
    table.addRow({row.sweep, strFormat("%g", row.x), row.metric,
                  strFormat("%.6g", row.baseline),
                  strFormat("%.6g", row.candidate),
                  strFormat("%+.2f", 100.0 * row.relDelta),
                  std::isnan(row.pValue) ? std::string("-")
                                         : strFormat("%.4f", row.pValue),
                  row.basis, verdictName(row.verdict)});
  }
  if (shown > 0) table.render(out);
  for (const auto& note : report.notes) out << "note: " << note << '\n';
  out << strFormat(
      "compared %zu metric point(s): %d regressed, %d improved, %zu ok\n",
      report.rows.size(), report.regressed, report.improved,
      report.rows.size() -
          static_cast<std::size_t>(report.regressed + report.improved));
}

}  // namespace comb::bench
