// Builders that turn repetition runs (comb/runner RepRun) into the
// report/archive schema: one ArchiveSweep per (method, machine, size)
// family, with per-rep samples for every metric the figures report and
// the regression direction each metric moves in.
//
// Every append*Sweep call also attaches the shared tail metrics —
// send/recv completion-latency p50/p99/p999 (µs, merged over all ranks,
// class "tail", lower is better) — and stamps the archive provenance
// with the percentile base and the peak shard imbalance over all reps,
// so `comb compare --metric-class tail` can gate latency tails
// separately from the central-tendency metrics.
#pragma once

#include <string>
#include <vector>

#include "comb/runner.hpp"
#include "report/archive.hpp"

namespace comb::bench {

struct CongestionPoint;  // comb/congestion.hpp

/// Start an archive: bench id, the rep policy the samples were collected
/// under, and this build's provenance stamp. `simJobs` is the
/// simulator-core shard count and `affinity` the worker-pinning policy
/// the samples ran under (configuration identity — `comb compare` flags
/// archives whose values differ). For sharded runs the lookahead source
/// is stamped "matrix" (SimCluster always derives per-pair bounds from
/// the wired topology); the certified scalar floor itself is stamped by
/// the append*Sweep calls below, which see the machine.
report::Archive makeArchive(
    const std::string& bench, const RepPolicy& rep, int simJobs = 1,
    sim::AffinityPolicy affinity = sim::AffinityPolicy::None);

/// Append one sweep of polling points. Metrics: availability (higher is
/// better), bandwidth_MBps (higher is better).
void appendPollingSweep(report::Archive& archive, const std::string& id,
                        const backend::MachineConfig& machine,
                        const std::vector<std::uint64_t>& xs,
                        const std::vector<RepRun<PollingPoint>>& runs,
                        const std::string& xlabel = "poll_interval_iters");

/// Append one sweep of PWW points. Metrics: availability, bandwidth_MBps
/// (higher is better); post_us_per_op, work_us, wait_us_per_msg (lower
/// is better).
void appendPwwSweep(report::Archive& archive, const std::string& id,
                    const backend::MachineConfig& machine,
                    const std::vector<std::uint64_t>& xs,
                    const std::vector<RepRun<PwwPoint>>& runs,
                    const std::string& xlabel = "work_interval_iters");

/// Append one sweep of ping-pong points. Metrics: latency_us (lower is
/// better), bandwidth_MBps (higher is better).
void appendLatencySweep(report::Archive& archive, const std::string& id,
                        const backend::MachineConfig& machine,
                        const std::vector<std::uint64_t>& xs,
                        const std::vector<RepRun<LatencyPoint>>& runs,
                        const std::string& xlabel = "msg_bytes");

/// Append one sweep of congestion points (comb/congestion). Metrics:
/// bandwidth_MBps, min_node_bw_MBps, availability (higher is better);
/// queue_drops, credit_stalls (lower is better).
void appendCongestionSweep(report::Archive& archive, const std::string& id,
                           const backend::MachineConfig& machine,
                           const std::vector<std::uint64_t>& xs,
                           const std::vector<RepRun<CongestionPoint>>& runs,
                           const std::string& xlabel = "nodes");

}  // namespace comb::bench
