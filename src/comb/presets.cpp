#include "comb/presets.hpp"

namespace comb::bench::presets {

using namespace comb::units;

std::vector<Bytes> paperMessageSizes() {
  return {10_KB, 50_KB, 100_KB, 300_KB};
}

std::vector<std::uint64_t> pollSweep(int pointsPerDecade) {
  return logSweep(10, 100'000'000, pointsPerDecade);
}

std::vector<std::uint64_t> workSweep(int pointsPerDecade) {
  return logSweep(1'000, 10'000'000, pointsPerDecade);
}

PollingParams pollingBase(Bytes msgBytes) {
  PollingParams p;
  p.msgBytes = msgBytes;
  p.queueDepth = 8;
  p.targetDuration = 30e-3;
  p.maxPolls = 30'000;
  return p;
}

PwwParams pwwBase(Bytes msgBytes) {
  PwwParams p;
  p.msgBytes = msgBytes;
  p.batch = 1;
  p.reps = 17;  // 1 warm-up + 16 measured
  return p;
}

}  // namespace comb::bench::presets
