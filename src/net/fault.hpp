// Deterministic link fault injection.
//
// A FaultSpec describes how a link misbehaves: Bernoulli packet loss with
// optional burstiness (one loss event discards `burstLen` consecutive
// packets — the classic Gilbert model collapsed to its loss state),
// payload corruption (the packet arrives but fails its checksum and is
// discarded by the receiving NIC), and bounded delivery jitter. All
// randomness comes from a per-link xoshiro stream seeded from
// (spec.seed, link name), so a run is bit-reproducible for a fixed seed
// no matter how sweep points are scheduled across threads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace comb::net {

struct FaultSpec {
  /// Probability that a packet starts a loss event.
  double dropProb = 0.0;
  /// Packets discarded per loss event (>= 1).
  int burstLen = 1;
  /// Probability that a delivered packet arrives corrupted.
  double corruptProb = 0.0;
  /// Extra delivery latency, uniform in [0, jitter). FIFO order per link
  /// is preserved (a jittered packet never overtakes its predecessor).
  Time jitter = 0.0;
  /// Root seed for the per-link fault streams.
  std::uint64_t seed = 7;

  /// Faults that destroy packets — these engage the transports'
  /// retransmission machinery.
  bool lossy() const { return dropProb > 0.0 || corruptProb > 0.0; }
  /// Any effect at all (lossy or jitter-only).
  bool active() const { return lossy() || jitter > 0.0; }
};

/// Validate a spec (throws ConfigError on out-of-range values).
void validateFaultSpec(const FaultSpec& spec);

/// Parse the CLI syntax `drop=0.01,burst=4,seed=7[,corrupt=P][,jitter_us=U]`.
/// Unknown keys and out-of-range values throw ConfigError.
FaultSpec parseFaultSpec(std::string_view text);

/// Render a spec back to the CLI syntax (round-trips via parseFaultSpec).
std::string faultSpecSummary(const FaultSpec& spec);

/// Per-run fault/reliability counters, aggregated from links and NICs.
struct FaultCounters {
  std::uint64_t dropsInjected = 0;      ///< packets discarded by links
  std::uint64_t corruptsInjected = 0;   ///< packets delivered corrupted
  std::uint64_t retransmits = 0;        ///< fragments re-sent by NICs
  std::uint64_t timeoutWakeups = 0;     ///< retransmission timer firings
  std::uint64_t duplicatesFiltered = 0; ///< duplicate fragments dropped at rx

  FaultCounters& operator+=(const FaultCounters& o) {
    dropsInjected += o.dropsInjected;
    corruptsInjected += o.corruptsInjected;
    retransmits += o.retransmits;
    timeoutWakeups += o.timeoutWakeups;
    duplicatesFiltered += o.duplicatesFiltered;
    return *this;
  }
  bool any() const {
    return dropsInjected || corruptsInjected || retransmits ||
           timeoutWakeups || duplicatesFiltered;
  }
};

/// FNV-1a, used to derive per-link fault-stream seeds from the link name.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace comb::net
