#include "net/fabric.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::net {

Fabric::Fabric(sim::Simulator& sim, FabricConfig cfg)
    : sim_(sim), cfg_(cfg), topology_(sim, cfg.topo, cfg.sw, cfg.link) {
  COMB_REQUIRE(cfg.mtu > 0, "fabric MTU must be positive");
}

NodeId Fabric::addNode(DeliveryFn onDeliver) {
  COMB_REQUIRE(static_cast<bool>(onDeliver), "node needs a delivery sink");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodePort port;
  port.up = std::make_unique<Link>(sim_, cfg_.link,
                                   strFormat("up%d", id));
  port.down = std::make_unique<Link>(sim_, cfg_.link,
                                     strFormat("down%d", id));
  port.deliver = std::move(onDeliver);
  port.ctx = &sim_;
  // The topology claims the switch-side ports (one input for the uplink,
  // one output for the downlink) and installs routes everywhere.
  const Topology::Attachment att = topology_.attachNode(id, *port.down);
  Switch* sw = att.sw;
  const int inputPort = att.inputPort;
  port.up->setSink([sw, inputPort](Packet p) {
    sw->inject(inputPort, std::move(p));
  });
  // The uplink feeds `sw`: under a sharded executor its arrivals target
  // the shard owning the egress port for each packet's destination.
  port.up->setNextHop(sw);
  Link* down = port.down.get();
  nodes_.push_back(std::move(port));
  // Index-based lookup: nodes_ may reallocate as more nodes are added.
  down->setSink([this, id](Packet p) {
    nodes_[static_cast<std::size_t>(id)].deliver(std::move(p));
  });
  return id;
}

void Fabric::inject(NodeId src, NodeId dst, Bytes payloadBytes,
                    PayloadPtr payload) {
  COMB_REQUIRE(src >= 0 && src < nodeCount(), "inject: bad src node");
  COMB_REQUIRE(dst >= 0 && dst < nodeCount(), "inject: bad dst node");
  COMB_REQUIRE(payloadBytes <= cfg_.mtu,
               strFormat("packet payload %llu exceeds MTU %llu",
                         static_cast<unsigned long long>(payloadBytes),
                         static_cast<unsigned long long>(cfg_.mtu)));
  NodePort& np = nodes_[static_cast<std::size_t>(src)];
  Packet p;
  p.src = src;
  p.dst = dst;
  p.wireBytes = payloadBytes + cfg_.perPacketHeader;
  p.seq = np.seq++;
  p.payload = std::move(payload);
  if (np.ctx->tracing())
    np.ctx->emitTrace(sim::TraceCategory::Packet, src,
                      strFormat("->n%d", dst),
                      static_cast<double>(p.wireBytes));
  np.up->send(std::move(p));
}

std::uint64_t Fabric::packetsInjected() const {
  std::uint64_t n = 0;
  for (const auto& port : nodes_) n += port.seq;
  return n;
}

void Fabric::bindShards(
    const std::function<sim::ShardContext*(NodeId)>& shardOf) {
  for (NodeId id = 0; id < nodeCount(); ++id) {
    NodePort& np = nodes_[static_cast<std::size_t>(id)];
    sim::ShardContext* ctx = shardOf(id);
    COMB_REQUIRE(ctx != nullptr, "bindShards: null shard for node");
    np.ctx = ctx;
    np.up->rehome(*ctx);
    np.down->rehome(*ctx);
  }
  topology_.bindShards(shardOf);
}

Time Fabric::minLinkLatency() const {
  return std::min(cfg_.link.latency, topology_.minTrunkLatency());
}

std::vector<Time> Fabric::shardLookaheadMatrix(int shardCount) const {
  const auto n = static_cast<std::size_t>(shardCount);
  std::vector<Time> direct(n * n, std::numeric_limits<Time>::infinity());
  const auto fold = [&](const Link& link) {
    const Switch* sw = link.nextHop();
    if (sw == nullptr) return;  // node-delivery link: arrivals stay local
    // Arrival = start + occupancy + latency, occupancy >= header/rate
    // (wire size includes the header), and jitter only delays — so this
    // lower-bounds the virtual-time distance of every post on the channel.
    const auto src = static_cast<std::size_t>(link.owner().shard());
    const Time bound =
        link.config().latency +
        static_cast<Time>(cfg_.perPacketHeader) / link.config().rate;
    for (int p = 0; p < sw->outputCount(); ++p) {
      const auto dst = static_cast<std::size_t>(sw->outputCtx(p)->shard());
      if (src == dst) continue;
      Time& entry = direct[src * n + dst];
      entry = std::min(entry, bound);
    }
  };
  for (const auto& np : nodes_) fold(*np.up);
  for (const auto& trunk : topology_.trunks()) fold(*trunk);
  return direct;
}

Link& Fabric::uplink(NodeId node) {
  COMB_REQUIRE(node >= 0 && node < nodeCount(), "uplink: bad node");
  return *nodes_[static_cast<std::size_t>(node)].up;
}

FaultCounters Fabric::linkFaultCounters() const {
  FaultCounters c;
  for (const auto& port : nodes_) {
    for (const Link* link : {port.up.get(), port.down.get()}) {
      c.dropsInjected += link->packetsDropped();
      c.corruptsInjected += link->packetsCorrupted();
    }
  }
  for (const auto& trunk : topology_.trunks()) {
    c.dropsInjected += trunk->packetsDropped();
    c.corruptsInjected += trunk->packetsCorrupted();
  }
  return c;
}

Link& Fabric::downlink(NodeId node) {
  COMB_REQUIRE(node >= 0 && node < nodeCount(), "downlink: bad node");
  return *nodes_[static_cast<std::size_t>(node)].down;
}

}  // namespace comb::net
