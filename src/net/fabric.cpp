#include "net/fabric.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::net {

Fabric::Fabric(sim::Simulator& sim, FabricConfig cfg)
    : sim_(sim), cfg_(cfg), topology_(sim, cfg.topo, cfg.sw, cfg.link) {
  COMB_REQUIRE(cfg.mtu > 0, "fabric MTU must be positive");
}

NodeId Fabric::addNode(DeliveryFn onDeliver) {
  COMB_REQUIRE(static_cast<bool>(onDeliver), "node needs a delivery sink");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodePort port;
  port.up = std::make_unique<Link>(sim_, cfg_.link,
                                   strFormat("up%d", id));
  port.down = std::make_unique<Link>(sim_, cfg_.link,
                                     strFormat("down%d", id));
  port.deliver = std::move(onDeliver);
  // The topology claims the switch-side ports (one input for the uplink,
  // one output for the downlink) and installs routes everywhere.
  const Topology::Attachment att = topology_.attachNode(id, *port.down);
  Switch* sw = att.sw;
  const int inputPort = att.inputPort;
  port.up->setSink([sw, inputPort](Packet p) {
    sw->inject(inputPort, std::move(p));
  });
  Link* down = port.down.get();
  nodes_.push_back(std::move(port));
  // Index-based lookup: nodes_ may reallocate as more nodes are added.
  down->setSink([this, id](Packet p) {
    nodes_[static_cast<std::size_t>(id)].deliver(std::move(p));
  });
  return id;
}

void Fabric::inject(NodeId src, NodeId dst, Bytes payloadBytes,
                    PayloadPtr payload) {
  COMB_REQUIRE(src >= 0 && src < nodeCount(), "inject: bad src node");
  COMB_REQUIRE(dst >= 0 && dst < nodeCount(), "inject: bad dst node");
  COMB_REQUIRE(payloadBytes <= cfg_.mtu,
               strFormat("packet payload %llu exceeds MTU %llu",
                         static_cast<unsigned long long>(payloadBytes),
                         static_cast<unsigned long long>(cfg_.mtu)));
  Packet p;
  p.src = src;
  p.dst = dst;
  p.wireBytes = payloadBytes + cfg_.perPacketHeader;
  p.seq = packetsInjected_++;
  p.payload = std::move(payload);
  if (sim_.tracing())
    sim_.emitTrace(sim::TraceCategory::Packet, src,
                   strFormat("->n%d", dst),
                   static_cast<double>(p.wireBytes));
  nodes_[static_cast<std::size_t>(src)].up->send(std::move(p));
}

Link& Fabric::uplink(NodeId node) {
  COMB_REQUIRE(node >= 0 && node < nodeCount(), "uplink: bad node");
  return *nodes_[static_cast<std::size_t>(node)].up;
}

FaultCounters Fabric::linkFaultCounters() const {
  FaultCounters c;
  for (const auto& port : nodes_) {
    for (const Link* link : {port.up.get(), port.down.get()}) {
      c.dropsInjected += link->packetsDropped();
      c.corruptsInjected += link->packetsCorrupted();
    }
  }
  for (const auto& trunk : topology_.trunks()) {
    c.dropsInjected += trunk->packetsDropped();
    c.corruptsInjected += trunk->packetsCorrupted();
  }
  return c;
}

Link& Fabric::downlink(NodeId node) {
  COMB_REQUIRE(node >= 0 && node < nodeCount(), "downlink: bad node");
  return *nodes_[static_cast<std::size_t>(node)].down;
}

}  // namespace comb::net
