// Point-to-point unidirectional link with finite bandwidth and latency.
//
// Transmission model (store-and-forward at the receiving end):
//   start    = max(now, time the link becomes free)
//   occupy   = wireBytes / rate            (serialization)
//   arrival  = start + occupy + latency    (propagation + receive)
// Packets queued while the link is busy serialize FIFO — this is what
// creates output contention and makes "all messages in flight drain in
// one poll interval" (the paper's bandwidth knee) a real phenomenon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace comb::net {

class Switch;

struct LinkConfig {
  Rate rate = 132e6;     ///< bytes/second on the wire
  Time latency = 1e-6;   ///< propagation + receive fixed delay
  FaultSpec fault;       ///< loss/corruption/jitter model (inactive default)
};

class Link {
 public:
  using Sink = std::function<void(Packet)>;

  Link(sim::Simulator& sim, LinkConfig cfg, std::string name);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Attach the receiver. Must be set before the first send.
  void setSink(Sink sink) { sink_ = std::move(sink); }

  /// Declare that this link feeds `sw` (its sink injects there). Under a
  /// sharded executor, send() then targets the arrival event at the
  /// shard owning the switch's egress port for the packet's destination
  /// — the link's latency is exactly what makes that hand-off satisfy
  /// the conservative-lookahead bound. Links that feed a node delivery
  /// (downlinks) leave this unset: their arrival is always owner-local.
  void setNextHop(Switch* sw) { nextHop_ = sw; }
  /// The switch this link feeds, or nullptr for node-delivery links.
  /// Fabric::shardLookaheadMatrix walks this to enumerate the fabric's
  /// cross-shard channels.
  Switch* nextHop() const { return nextHop_; }

  /// Move this link (clock, counters, fault stream, busy state) to a
  /// different shard. Called once, between fabric wiring and the first
  /// send, by Fabric::bindShards — counters re-register in the new
  /// shard's registry so every increment stays shard-local.
  void rehome(sim::ShardContext& ctx);

  /// The shard whose events drive send() on this link.
  sim::ShardContext& owner() const { return *sim_; }

  /// Enqueue a packet; returns its arrival time at the sink.
  Time send(Packet p);

  /// Absolute time the link becomes free for a new serialization.
  Time freeAt() const { return busyUntil_; }
  bool idleNow() const;

  // --- statistics --------------------------------------------------------
  Bytes bytesCarried() const { return bytesCarried_; }
  std::uint64_t packetsCarried() const { return packetsCarried_; }
  /// Total serialization time (the utilization numerator).
  Time busyTime() const { return busyTime_; }
  std::uint64_t packetsDropped() const { return packetsDropped_; }
  std::uint64_t packetsCorrupted() const { return packetsCorrupted_; }
  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return cfg_; }

 private:
  void registerCounters();

  sim::ShardContext* sim_;
  LinkConfig cfg_;
  std::string name_;
  // Cached label strings / counters: built once at construction (and
  // once more on rehome) so the per-packet path performs no allocation
  // or name lookup.
  std::string dropLabel_;     ///< "<name>:drop"
  std::string corruptLabel_;  ///< "<name>:corrupt"
  metrics::Counter* packetsCounter_ = nullptr;
  metrics::Counter* bytesCounter_ = nullptr;
  metrics::Counter* dropsCounter_ = nullptr;
  metrics::Counter* corruptsCounter_ = nullptr;
  Switch* nextHop_ = nullptr;
  Sink sink_;
  Time busyUntil_ = 0.0;
  Bytes bytesCarried_ = 0;
  std::uint64_t packetsCarried_ = 0;
  Time busyTime_ = 0.0;

  // Fault injection (all untouched when cfg_.fault is inactive).
  Rng faultRng_;
  int burstRemaining_ = 0;   ///< packets left to discard in the loss event
  Time lastArrival_ = 0.0;   ///< jitter clamp: deliveries stay FIFO
  std::uint64_t packetsDropped_ = 0;
  std::uint64_t packetsCorrupted_ = 0;
};

}  // namespace comb::net
