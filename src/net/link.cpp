#include "net/link.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace comb::net {

Link::Link(sim::Simulator& sim, LinkConfig cfg, std::string name)
    : sim_(sim), cfg_(cfg), name_(std::move(name)) {
  COMB_REQUIRE(cfg.rate > 0.0, "link rate must be positive: " + name_);
  COMB_REQUIRE(cfg.latency >= 0.0, "link latency must be >= 0: " + name_);
}

bool Link::idleNow() const { return busyUntil_ <= sim_.now(); }

Time Link::send(Packet p) {
  COMB_ASSERT(static_cast<bool>(sink_), "link has no sink: " + name_);
  const Time start = std::max(sim_.now(), busyUntil_);
  const Time occupy = transferTime(p.wireBytes, cfg_.rate);
  busyUntil_ = start + occupy;
  busyTime_ += occupy;
  bytesCarried_ += p.wireBytes;
  ++packetsCarried_;
  const Time arrival = busyUntil_ + cfg_.latency;
  sim_.scheduleAt(arrival,
                  [this, p = std::move(p)]() mutable { sink_(std::move(p)); });
  return arrival;
}

}  // namespace comb::net
