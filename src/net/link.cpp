#include "net/link.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/switch.hpp"

namespace comb::net {

Link::Link(sim::Simulator& sim, LinkConfig cfg, std::string name)
    : sim_(&sim),
      cfg_(cfg),
      name_(std::move(name)),
      dropLabel_(name_ + ":drop"),
      corruptLabel_(name_ + ":corrupt"),
      // Per-link stream: mixing the spec seed with the link name keeps
      // streams independent across links yet reproducible for a fixed
      // seed, regardless of construction order or host threading.
      faultRng_(cfg.fault.seed ^ fnv1a64(name_)) {
  COMB_REQUIRE(cfg.rate > 0.0, "link rate must be positive: " + name_);
  COMB_REQUIRE(cfg.latency >= 0.0, "link latency must be >= 0: " + name_);
  validateFaultSpec(cfg.fault);
  registerCounters();
}

void Link::registerCounters() {
  auto& m = sim_->metrics();
  packetsCounter_ = &m.counter("link." + name_ + ".packets");
  bytesCounter_ = &m.counter("link." + name_ + ".bytes");
  dropsCounter_ = &m.counter("link." + name_ + ".drops");
  corruptsCounter_ = &m.counter("link." + name_ + ".corrupts");
}

void Link::rehome(sim::ShardContext& ctx) {
  if (&ctx == sim_) return;
  COMB_ASSERT(packetsCarried_ == 0 && packetsDropped_ == 0,
              "link rehomed after carrying traffic: " + name_);
  sim_ = &ctx;
  // The construction-shard registry keeps the (zero-valued) instruments
  // registered above; every post-rehome increment lands here instead.
  registerCounters();
}

bool Link::idleNow() const { return busyUntil_ <= sim_->now(); }

Time Link::send(Packet p) {
  COMB_ASSERT(static_cast<bool>(sink_), "link has no sink: " + name_);
  const Time start = std::max(sim_->now(), busyUntil_);
  const Time occupy = transferTime(p.wireBytes, cfg_.rate);
  busyUntil_ = start + occupy;
  busyTime_ += occupy;
  bytesCarried_ += p.wireBytes;
  ++packetsCarried_;
  packetsCounter_->add();
  bytesCounter_->add(p.wireBytes);
  Time arrival = busyUntil_ + cfg_.latency;
  if (cfg_.fault.active()) {
    const FaultSpec& f = cfg_.fault;
    // A dropped packet still occupied the wire (counted above) — it is
    // lost, not unsent.
    bool drop = false;
    if (burstRemaining_ > 0) {
      drop = true;
      --burstRemaining_;
    } else if (f.dropProb > 0.0 && faultRng_.uniform() < f.dropProb) {
      drop = true;
      // validateFaultSpec guarantees burstLen >= 1, but clamp anyway: a
      // zero-length burst must not underflow into a near-infinite one.
      burstRemaining_ = std::max(f.burstLen - 1, 0);
    }
    if (drop) {
      ++packetsDropped_;
      dropsCounter_->add();
      if (sim_->tracing())
        sim_->emitTrace(sim::TraceCategory::Fault, p.dst, dropLabel_,
                        static_cast<double>(p.wireBytes),
                        static_cast<double>(p.seq));
      return arrival;
    }
    if (f.corruptProb > 0.0 && faultRng_.uniform() < f.corruptProb) {
      p.corrupted = true;
      ++packetsCorrupted_;
      corruptsCounter_->add();
      if (sim_->tracing())
        sim_->emitTrace(sim::TraceCategory::Fault, p.dst, corruptLabel_,
                        static_cast<double>(p.wireBytes),
                        static_cast<double>(p.seq));
    }
    if (f.jitter > 0.0) {
      // Jitter delays delivery but never reorders: a link is a FIFO pipe.
      // It only ever adds to the latency, so the configured latency stays
      // a valid lower bound for the executor's lookahead.
      arrival =
          std::max(arrival + faultRng_.uniform(0.0, f.jitter), lastArrival_);
    }
    lastArrival_ = arrival;
  }
  // Wire transit [serialize start, arrival) — known synchronously, so a
  // Complete span rather than Begin/End (transits on one link overlap:
  // packet N+1 serializes while N propagates).
  if (sim_->tracing())
    sim_->emitTraceCompleteAt(start, arrival - start, sim::TraceCategory::Wire,
                              p.dst, name_, static_cast<double>(p.wireBytes),
                              static_cast<double>(p.seq));
  // Shard hand-off point. When this link feeds a switch whose egress
  // port for p.dst lives on another shard, the arrival event must fire
  // there — and it may, safely: arrival >= now + latency >= window end,
  // the conservative-lookahead invariant. Serial runs (and same-shard
  // hops) take the identical scheduleAt the serial core always used.
  if (nextHop_ != nullptr && sim_->sharded()) {
    if (sim::ShardContext* target = nextHop_->egressCtx(p.dst);
        target != nullptr && target != sim_) {
      sim_->postRemote(*target, arrival,
                       [this, p = std::move(p)]() mutable {
                         sink_(std::move(p));
                       });
      return arrival;
    }
  }
  sim_->scheduleAt(arrival,
                   [this, p = std::move(p)]() mutable { sink_(std::move(p)); });
  return arrival;
}

}  // namespace comb::net
