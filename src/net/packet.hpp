// Wire-level packet representation.
//
// The fabric moves opaque packets between node IDs; what a packet *means*
// (eager fragment, RTS, CTS, DMA data...) is defined by the transport
// layer via a type-erased payload. Packet sizes are wire sizes: payload
// bytes plus per-packet header overhead added by the NIC.
//
// Payload hot-path design: payloads are reference-counted intrusively
// (PayloadRef) rather than via shared_ptr — no control block, and
// releasing the last reference dispatches to a virtual hook that pooled
// payloads override to recycle themselves (see transport/payload_pool.hpp)
// instead of hitting the heap. The count is atomic (relaxed increments,
// acquire-release on the final decrement, like shared_ptr's) because
// payloads cross shard boundaries under the sharded PDES executor: the
// sending NIC retains a fragment for retransmission on its shard while
// the receiving shard releases the in-flight reference. Concrete payload
// types carry a PayloadKind tag so payloadAs<> is a tag compare +
// static_cast, not a dynamic_cast.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/units.hpp"

namespace comb::net {

using NodeId = int;

/// Discriminator for concrete payload types. Every payload class names
/// its kind via a `static constexpr PayloadKind kPayloadKind` member and
/// passes it to the PayloadBase constructor; payloadAs<T> dispatches on
/// it. One kind per concrete type — downcasting relies on the mapping
/// being unique.
enum class PayloadKind : std::uint8_t {
  Wire,  ///< transport::WirePayload — every protocol packet
  Test,  ///< ad-hoc payloads defined inside unit tests
};

template <typename T>
class PayloadRef;

/// Base class for transport-defined packet payloads. Payloads are
/// logically immutable once injected and shared: a retransmission or a
/// trace can alias them.
class PayloadBase {
 public:
  explicit PayloadBase(PayloadKind kind) : kind_(kind) {}
  // Copies describe the same wire content but are fresh, unreferenced
  // objects — the refcount never transfers.
  PayloadBase(const PayloadBase& other) : kind_(other.kind_) {}
  PayloadBase& operator=(const PayloadBase&) { return *this; }
  virtual ~PayloadBase() = default;

  PayloadKind payloadKind() const { return kind_; }

 protected:
  /// Invoked when the last PayloadRef drops. Default: heap delete.
  /// Pooled payloads override this to return themselves to a free list.
  virtual void releaseSelf() const { delete this; }

 private:
  template <typename>
  friend class PayloadRef;

  PayloadKind kind_;
  /// Intrusive refcount. Atomic because a payload's references can live
  /// on different shards of one Executor (retained for retransmit on the
  /// source shard, released on delivery at the destination shard) —
  /// within a window those shards run concurrently.
  mutable std::atomic<std::uint32_t> refs_{0};
};

/// Intrusive smart pointer to a payload (T may be const-qualified).
/// Copying bumps the intrusive counter — no control block.
template <typename T>
class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Take shared ownership of `p` (typically freshly constructed with
  /// refcount 0 — see makePayload).
  explicit PayloadRef(T* p) : p_(p) { retain(); }

  PayloadRef(const PayloadRef& o) : p_(o.p_) { retain(); }
  PayloadRef(PayloadRef&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}

  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  PayloadRef(const PayloadRef<U>& o)  // NOLINT(google-explicit-constructor)
      : p_(o.p_) {
    retain();
  }
  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  PayloadRef(PayloadRef<U>&& o) noexcept  // NOLINT(google-explicit-constructor)
      : p_(std::exchange(o.p_, nullptr)) {}

  PayloadRef& operator=(const PayloadRef& o) {
    PayloadRef tmp(o);
    swap(tmp);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    PayloadRef tmp(std::move(o));
    swap(tmp);
    return *this;
  }
  PayloadRef& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~PayloadRef() { release(); }

  void reset() { release(); }
  void swap(PayloadRef& o) noexcept { std::swap(p_, o.p_); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.p_ == b.p_;
  }
  friend bool operator==(const PayloadRef& a, std::nullptr_t) {
    return a.p_ == nullptr;
  }

 private:
  template <typename>
  friend class PayloadRef;

  void retain() {
    // Relaxed: acquiring a new reference requires an existing one, whose
    // visibility is already established by whatever handed it over.
    if (p_ != nullptr) p_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  void release() {
    // Release on the decrement + acquire on the zero observation: the
    // destroying thread must see every write made through other refs.
    if (p_ != nullptr &&
        p_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      p_->releaseSelf();
    }
    p_ = nullptr;
  }

  T* p_ = nullptr;
};

/// Heap-construct a payload and return an owning reference (the
/// non-pooled path; pools hand out refs of their own).
template <typename T, typename... Args>
PayloadRef<T> makePayload(Args&&... args) {
  return PayloadRef<T>(new T(std::forward<Args>(args)...));
}

using PayloadPtr = PayloadRef<const PayloadBase>;

struct Packet {
  NodeId src = -1;
  NodeId dst = -1;
  Bytes wireBytes = 0;   ///< bytes occupying the wire (payload + headers)
  std::uint64_t seq = 0; ///< global injection sequence (debug/tracing)
  /// Set by a faulty link: the packet arrives but fails its checksum.
  /// Receiving NICs discard it without acting on the payload.
  bool corrupted = false;
  /// Ingress-port tag, valid only while a switch routes the packet (set
  /// by Switch::inject, consumed by the arbitration stage). Lives in the
  /// struct's padding — and keeps the routing-delay event closure inside
  /// the inline event-pool slot (see sim/event_queue.hpp).
  std::int16_t switchInPort = 0;
  PayloadPtr payload;
};

/// Tag-dispatched downcast; returns nullptr when the payload is of a
/// different concrete type (or absent).
template <typename T>
const T* payloadAs(const PayloadPtr& p) {
  const PayloadBase* base = p.get();
  return (base != nullptr && base->payloadKind() == T::kPayloadKind)
             ? static_cast<const T*>(base)
             : nullptr;
}

template <typename T>
const T* payloadAs(const Packet& p) {
  return payloadAs<T>(p.payload);
}

}  // namespace comb::net
