// Wire-level packet representation.
//
// The fabric moves opaque packets between node IDs; what a packet *means*
// (eager fragment, RTS, CTS, DMA data...) is defined by the transport
// layer via a type-erased payload. Packet sizes are wire sizes: payload
// bytes plus per-packet header overhead added by the NIC.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"

namespace comb::net {

using NodeId = int;

/// Base class for transport-defined packet payloads. Payloads are
/// immutable and shared: a retransmission or a trace can alias them.
struct PayloadBase {
  virtual ~PayloadBase() = default;
};

using PayloadPtr = std::shared_ptr<const PayloadBase>;

struct Packet {
  NodeId src = -1;
  NodeId dst = -1;
  Bytes wireBytes = 0;   ///< bytes occupying the wire (payload + headers)
  std::uint64_t seq = 0; ///< global injection sequence (debug/tracing)
  /// Set by a faulty link: the packet arrives but fails its checksum.
  /// Receiving NICs discard it without acting on the payload.
  bool corrupted = false;
  PayloadPtr payload;
};

/// Convenience downcast; returns nullptr when the payload is of a
/// different concrete type.
template <typename T>
const T* payloadAs(const Packet& p) {
  return dynamic_cast<const T*>(p.payload.get());
}

}  // namespace comb::net
