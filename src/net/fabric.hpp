// Fabric: assembles nodes, uplinks/downlinks and the central switch into
// the paper's star topology (N nodes around one Myrinet switch), and is
// the single injection/delivery interface NICs talk to.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace comb::net {

struct FabricConfig {
  LinkConfig link;               ///< per-direction node<->switch links
  SwitchConfig sw;
  Bytes mtu = 4096;              ///< max payload bytes per packet
  Bytes perPacketHeader = 64;    ///< header overhead added to the wire size
};

class Fabric {
 public:
  using DeliveryFn = std::function<void(Packet)>;

  Fabric(sim::Simulator& sim, FabricConfig cfg);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Add a node; `onDeliver` receives every packet addressed to it.
  /// Returns the new node's ID (dense, starting at 0).
  NodeId addNode(DeliveryFn onDeliver);

  /// Inject a packet from `p.src`'s uplink toward `p.dst`. Sets the wire
  /// size to payloadBytes + header. Returns nothing — arrival is an event
  /// at the destination's DeliveryFn.
  void inject(NodeId src, NodeId dst, Bytes payloadBytes, PayloadPtr payload);

  /// The uplink of `node` — NIC DMA engines query freeAt() for pacing.
  Link& uplink(NodeId node);
  Link& downlink(NodeId node);

  Bytes mtu() const { return cfg_.mtu; }
  Bytes perPacketHeader() const { return cfg_.perPacketHeader; }
  const FabricConfig& config() const { return cfg_; }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  std::uint64_t packetsInjected() const { return packetsInjected_; }
  const Switch& centralSwitch() const { return switch_; }

  /// True when the configured fault model can destroy packets — the NICs
  /// use this to decide whether to run their reliability protocol.
  bool lossy() const { return cfg_.link.fault.lossy(); }
  /// Drop/corruption totals summed over every link of the fabric.
  FaultCounters linkFaultCounters() const;

 private:
  struct NodePort {
    std::unique_ptr<Link> up;    ///< node -> switch
    std::unique_ptr<Link> down;  ///< switch -> node
    DeliveryFn deliver;
  };

  sim::Simulator& sim_;
  FabricConfig cfg_;
  Switch switch_;
  std::vector<NodePort> nodes_;
  std::uint64_t packetsInjected_ = 0;
};

}  // namespace comb::net
