// Fabric: assembles nodes, uplinks/downlinks and the switch fabric, and
// is the single injection/delivery interface NICs talk to. The switch
// graph itself (the paper's single star by default, or a multi-switch
// fat-tree / dragonfly for congestion studies) is built by net::Topology
// from cfg.topo.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace comb::net {

struct FabricConfig {
  LinkConfig link;               ///< per-direction node<->switch links
  SwitchConfig sw;
  TopologyConfig topo;           ///< switch graph (default: single star)
  Bytes mtu = 4096;              ///< max payload bytes per packet
  Bytes perPacketHeader = 64;    ///< header overhead added to the wire size
};

class Fabric {
 public:
  using DeliveryFn = std::function<void(Packet)>;

  Fabric(sim::Simulator& sim, FabricConfig cfg);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Add a node; `onDeliver` receives every packet addressed to it.
  /// Returns the new node's ID (dense, starting at 0).
  NodeId addNode(DeliveryFn onDeliver);

  /// Inject a packet from `p.src`'s uplink toward `p.dst`. Sets the wire
  /// size to payloadBytes + header. Returns nothing — arrival is an event
  /// at the destination's DeliveryFn.
  void inject(NodeId src, NodeId dst, Bytes payloadBytes, PayloadPtr payload);

  /// The uplink of `node` — NIC DMA engines query freeAt() for pacing.
  Link& uplink(NodeId node);
  Link& downlink(NodeId node);

  /// Assign every node (its uplink, downlink, injection/delivery events
  /// and packet-sequence counter) to a shard, and propagate the binding
  /// through the switch graph. Call once, after the last addNode and
  /// before the first inject. Serial executors never need this — every
  /// component already lives on the construction context.
  void bindShards(const std::function<sim::ShardContext*(NodeId)>& shardOf);

  /// Smallest latency of any link in the fabric — the upper bound for a
  /// sharded executor's conservative lookahead, because every cross-shard
  /// hand-off rides some link end to end.
  Time minLinkLatency() const;

  /// Per-shard-pair direct channel lookahead matrix (row-major
  /// shardCount x shardCount, +inf where no direct channel exists) for
  /// Executor::setLookaheadMatrix. Call after bindShards. Every
  /// cross-shard hand-off in this fabric is a link arrival targeting an
  /// egress-port shard of the link's next-hop switch, so the entry for
  /// (link owner, egress shard) is the link's latency plus the
  /// serialization time of the per-packet header — a lower bound on any
  /// packet's occupancy, since wire size >= header. Pairs with no fabric
  /// channel stay +inf: the executor's min-plus closure fills in
  /// multi-hop paths, and unreachable pairs never constrain each other.
  std::vector<Time> shardLookaheadMatrix(int shardCount) const;

  Bytes mtu() const { return cfg_.mtu; }
  Bytes perPacketHeader() const { return cfg_.perPacketHeader; }
  const FabricConfig& config() const { return cfg_; }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  /// Max nodes this fabric can host; -1 = unbounded (lazy fat-tree).
  int capacityNodes() const { return topology_.capacityNodes(); }
  std::uint64_t packetsInjected() const;
  /// First switch of the fabric — THE switch for the default star; for
  /// multi-switch topologies prefer topology()/switchTotals().
  const Switch& centralSwitch() const { return topology_.switchAt(0); }
  const Topology& topology() const { return topology_; }
  /// Counters aggregated over every switch of the fabric.
  SwitchTotals switchTotals() const { return topology_.totals(); }

  /// True when the configured fault model — or a tail-dropping finite
  /// switch queue — can destroy packets; the NICs use this to decide
  /// whether to run their reliability protocol.
  bool lossy() const {
    return cfg_.link.fault.lossy() ||
           (cfg_.sw.queue.bounded() &&
            cfg_.sw.queue.backpressure == Backpressure::TailDrop);
  }
  /// Drop/corruption totals summed over every link of the fabric.
  FaultCounters linkFaultCounters() const;

 private:
  struct NodePort {
    std::unique_ptr<Link> up;    ///< node -> switch
    std::unique_ptr<Link> down;  ///< switch -> node
    DeliveryFn deliver;
    sim::ShardContext* ctx = nullptr;  ///< shard driving this node
    /// Per-node packet sequence (debug/tracing identity). Per-node, not
    /// fabric-global, so numbering is a pure function of each node's own
    /// injection history — identical across serial and sharded runs.
    std::uint64_t seq = 0;
  };

  sim::Simulator& sim_;
  FabricConfig cfg_;
  Topology topology_;
  std::vector<NodePort> nodes_;
};

}  // namespace comb::net
