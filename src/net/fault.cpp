#include "net/fault.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::net {

void validateFaultSpec(const FaultSpec& spec) {
  COMB_REQUIRE(spec.dropProb >= 0.0 && spec.dropProb <= 1.0,
               strFormat("fault drop probability must be in [0,1], got %g",
                         spec.dropProb));
  COMB_REQUIRE(spec.corruptProb >= 0.0 && spec.corruptProb <= 1.0,
               strFormat("fault corrupt probability must be in [0,1], got %g",
                         spec.corruptProb));
  COMB_REQUIRE(spec.burstLen >= 1,
               strFormat("fault burst length must be >= 1, got %d",
                         spec.burstLen));
  COMB_REQUIRE(spec.jitter >= 0.0,
               strFormat("fault jitter must be >= 0, got %g", spec.jitter));
}

namespace {

double parseNumber(std::string_view key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  COMB_REQUIRE(end != value.c_str() && *end == '\0',
               strFormat("--fault key '%.*s' expects a number, got '%s'",
                         static_cast<int>(key.size()), key.data(),
                         value.c_str()));
  return v;
}

}  // namespace

FaultSpec parseFaultSpec(std::string_view text) {
  FaultSpec spec;
  while (!text.empty()) {
    const auto comma = text.find(',');
    const auto part = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const auto body = trim(part);
    if (body.empty()) continue;
    const auto eq = body.find('=');
    COMB_REQUIRE(eq != std::string_view::npos,
                 "--fault expects key=value pairs, got '" + std::string(body) +
                     "'");
    const auto key = trim(body.substr(0, eq));
    const auto value = std::string(trim(body.substr(eq + 1)));
    COMB_REQUIRE(!value.empty(),
                 "--fault key '" + std::string(key) + "' has an empty value");
    if (key == "drop") {
      spec.dropProb = parseNumber(key, value);
    } else if (key == "burst") {
      spec.burstLen = static_cast<int>(parseNumber(key, value));
    } else if (key == "corrupt") {
      spec.corruptProb = parseNumber(key, value);
    } else if (key == "jitter_us") {
      spec.jitter = parseNumber(key, value) * 1e-6;
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parseNumber(key, value));
    } else {
      throw ConfigError("--fault: unknown key '" + std::string(key) +
                        "' (drop, burst, corrupt, jitter_us, seed)");
    }
  }
  validateFaultSpec(spec);
  return spec;
}

std::string faultSpecSummary(const FaultSpec& spec) {
  std::string s = strFormat("drop=%g,burst=%d", spec.dropProb, spec.burstLen);
  if (spec.corruptProb > 0.0)
    s += strFormat(",corrupt=%g", spec.corruptProb);
  if (spec.jitter > 0.0) s += strFormat(",jitter_us=%g", spec.jitter * 1e6);
  s += strFormat(",seed=%llu", static_cast<unsigned long long>(spec.seed));
  return s;
}

}  // namespace comb::net
