// Multi-switch fabric topologies.
//
// The paper's experiments use a single 8-port Myrinet crossbar; real
// clusters at 64-1024 nodes do not. This layer builds the switch graph —
// the single star (default, byte-identical to the historical fabric), a
// two-level fat-tree (leaves + spines), or a dragonfly-ish group
// topology (all-to-all routers inside a group, one global link pair per
// group pair) — wires the inter-switch trunks, and installs static
// destination routes on every switch. Routing is deterministic (the
// spine/gateway for a destination is a pure function of its node id), so
// simulations stay bit-reproducible at any node count.
//
// Oversubscription is a first-class knob: trunk links run at
// `trunkRateScale` times the node link rate, so a fat-tree leaf with
// `nodesPerSwitch` nodes and `spines` uplinks has an oversubscription
// ratio of nodesPerSwitch / (spines * trunkRateScale).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"

namespace comb::net {

enum class TopologyKind {
  SingleSwitch,  ///< the paper's star: every node on one crossbar
  FatTree,       ///< two levels: leaf switches up-linked to every spine
  Dragonfly,     ///< groups of routers; local all-to-all + global links
};

const char* topologyKindName(TopologyKind k);

struct TopologyConfig {
  TopologyKind kind = TopologyKind::SingleSwitch;
  /// Nodes attached per leaf switch / router (fat-tree, dragonfly).
  int nodesPerSwitch = 4;
  /// Fat-tree: number of spine switches (each leaf up-links to all).
  int spines = 2;
  /// Dragonfly: group count and routers per group.
  int groups = 2;
  int routersPerGroup = 2;
  /// Inter-switch trunk rate as a multiple of the node link rate.
  double trunkRateScale = 1.0;

  bool single() const { return kind == TopologyKind::SingleSwitch; }
  /// Worst-case edge oversubscription ratio (1.0 = non-blocking).
  double oversubscription() const;
};

/// Throws comb::ConfigError on inconsistent parameters (also checks that
/// `sw.ports` can accommodate the per-switch attachment count).
void validateTopology(const TopologyConfig& topo, const SwitchConfig& sw);

/// Aggregated counters over every switch of a fabric.
struct SwitchTotals {
  std::uint64_t packetsRouted = 0;
  std::uint64_t dropsNoRoute = 0;
  std::uint64_t dropsQueue = 0;
  std::uint64_t creditStalls = 0;
  std::uint64_t queuePeakPackets = 0;  ///< max over switches, not a sum
};

/// The switch graph of one fabric: owns the switches and the inter-switch
/// trunk links, installs routes, and hands Fabric the attachment points
/// for node uplinks/downlinks. Leaf switches are created lazily as nodes
/// are added; interior switches (spines, routers) are wired up front.
class Topology {
 public:
  struct Attachment {
    Switch* sw = nullptr;  ///< the switch this node hangs off
    int inputPort = -1;    ///< input-port id for the node's uplink
  };

  Topology(sim::Simulator& sim, const TopologyConfig& topo,
           const SwitchConfig& sw, const LinkConfig& nodeLink);
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Attach node `id` (ids must be dense, in order): claims the leaf
  /// input port for its uplink, attaches `downlink` as the leaf output,
  /// and installs routes to `id` on every switch. Returns where the
  /// node's uplink should inject.
  Attachment attachNode(NodeId id, Link& downlink);

  /// Max attachable nodes; -1 = unbounded (fat-tree with ports = 0).
  int capacityNodes() const;

  int switchCount() const { return static_cast<int>(switches_.size()); }
  Switch& switchAt(int i) { return *switches_.at(static_cast<std::size_t>(i)); }
  const Switch& switchAt(int i) const {
    return *switches_.at(static_cast<std::size_t>(i));
  }
  /// The trunk links between switches (empty for the single star).
  const std::vector<std::unique_ptr<Link>>& trunks() const { return trunks_; }

  /// Assign every switch output port (and every trunk link) to a shard,
  /// after all nodes are attached and before the first packet. Node
  /// egress ports go to the node's shard; a trunk (and its from-switch
  /// port) goes to the home shard of whichever endpoint switch hosts
  /// nodes (the from-side wins when both do) — home = the shard of the
  /// switch's first attached node. Any single-owner assignment is
  /// *correct* (every cross-shard hand-off rides a link whose latency
  /// bounds the executor's lookahead); this one just minimizes crossings
  /// for partitions aligned to the topology's node blocks.
  void bindShards(const std::function<sim::ShardContext*(NodeId)>& shardOf);

  /// Smallest trunk latency (infinity when there are no trunks) — an
  /// input to the executor's lookahead, alongside the node link latency.
  Time minTrunkLatency() const;

  SwitchTotals totals() const;

 private:
  Switch& makeSwitch(const std::string& name, int ports);
  /// Fat-tree: get-or-create leaf `l` with its spine trunks.
  Switch& fatTreeLeaf(int l);
  void addFatTreeRoutes(NodeId id, int leaf);
  void buildDragonfly();
  void addDragonflyRoutes(NodeId id, int router);
  Link& makeTrunk(const std::string& name);
  /// Wire a trunk from an output port of switch `from` into an input
  /// port of switch `to` (switches_ indices), recording it for
  /// bindShards. Returns the output-port id on `from`.
  int wireTrunk(int from, int to, Link& trunk);
  /// Dragonfly router (group g, local index r) -> switches_ index.
  int routerIndex(int group, int router) const {
    return group * topo_.routersPerGroup + router;
  }

  sim::Simulator& sim_;
  TopologyConfig topo_;
  SwitchConfig swCfg_;
  LinkConfig trunkLink_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> trunks_;

  // Fat-tree wiring records (indexed [leaf][spine] / [spine][leaf]):
  // output-port ids for the trunk in each direction.
  std::vector<std::vector<int>> leafUpPort_;    ///< on leaf l toward spine s
  std::vector<std::vector<int>> spineDownPort_; ///< on spine s toward leaf l
  std::vector<int> leafIndex_;                  ///< leaf l -> switches_ index

  // Dragonfly wiring records.
  std::vector<std::vector<int>> localPort_;   ///< [router][router] out-port
  std::vector<std::vector<int>> globalPort_;  ///< [group][group] out-port

  // Shard-binding records (consumed by bindShards).
  struct TrunkRec {
    int from = -1;       ///< switches_ index of the sending switch
    int to = -1;         ///< switches_ index of the receiving switch
    int outPort = -1;    ///< output-port id on `from`
    Link* link = nullptr;
  };
  struct NodeEgressRec {
    int sw = -1;         ///< switches_ index hosting the downlink
    NodeId node = -1;
    int outPort = -1;
  };
  std::vector<TrunkRec> trunkRecs_;
  std::vector<NodeEgressRec> nodeEgress_;
  std::vector<NodeId> firstNode_;  ///< per switch; -1 = hosts no nodes
  int attachedNodes_ = 0;
};

}  // namespace comb::net
