#include "net/topology.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::net {

const char* topologyKindName(TopologyKind k) {
  switch (k) {
    case TopologyKind::SingleSwitch: return "single";
    case TopologyKind::FatTree: return "fat-tree";
    case TopologyKind::Dragonfly: return "dragonfly";
  }
  return "?";
}

double TopologyConfig::oversubscription() const {
  switch (kind) {
    case TopologyKind::SingleSwitch:
      return 1.0;
    case TopologyKind::FatTree:
      // nodesPerSwitch uplink-demanding nodes share `spines` trunks.
      return static_cast<double>(nodesPerSwitch) /
             (static_cast<double>(spines) * trunkRateScale);
    case TopologyKind::Dragonfly:
      // Worst case: every node of one group targets one remote group —
      // all of it crosses a single global trunk.
      return static_cast<double>(nodesPerSwitch * routersPerGroup) /
             trunkRateScale;
  }
  return 1.0;
}

void validateTopology(const TopologyConfig& topo, const SwitchConfig& sw) {
  COMB_REQUIRE(topo.trunkRateScale > 0.0,
               "topology: trunk_rate_scale must be > 0");
  if (topo.single()) return;
  COMB_REQUIRE(topo.nodesPerSwitch > 0,
               "topology: nodes_per_switch must be > 0");
  if (topo.kind == TopologyKind::FatTree) {
    COMB_REQUIRE(topo.spines > 0, "fat-tree: spines must be > 0");
    // A leaf hosts nodesPerSwitch nodes (2 ports each) plus one trunk
    // pair per spine.
    const int radix = 2 * topo.nodesPerSwitch + 2 * topo.spines;
    COMB_REQUIRE(sw.ports == 0 || sw.ports >= radix,
                 strFormat("fat-tree leaf needs %d ports "
                           "(2*nodes_per_switch + 2*spines) but switch_ports "
                           "= %d",
                           radix, sw.ports));
  } else {
    COMB_REQUIRE(topo.groups > 0 && topo.routersPerGroup > 0,
                 "dragonfly: groups and routers_per_group must be > 0");
  }
}

Topology::Topology(sim::Simulator& sim, const TopologyConfig& topo,
                   const SwitchConfig& sw, const LinkConfig& nodeLink)
    : sim_(sim), topo_(topo), swCfg_(sw), trunkLink_(nodeLink) {
  validateTopology(topo_, swCfg_);
  trunkLink_.rate = nodeLink.rate * topo_.trunkRateScale;
  switch (topo_.kind) {
    case TopologyKind::SingleSwitch:
      makeSwitch("switch0", swCfg_.ports);
      break;
    case TopologyKind::FatTree: {
      // Spines up front (leaves appear lazily as nodes attach); their
      // radix is sized exactly by the wiring below, so no budget.
      for (int s = 0; s < topo_.spines; ++s)
        makeSwitch(strFormat("spine%d", s), 0);
      spineDownPort_.resize(static_cast<std::size_t>(topo_.spines));
      break;
    }
    case TopologyKind::Dragonfly:
      buildDragonfly();
      break;
  }
}

Switch& Topology::makeSwitch(const std::string& name, int ports) {
  SwitchConfig cfg = swCfg_;
  cfg.ports = ports;
  switches_.push_back(std::make_unique<Switch>(sim_, cfg, name));
  firstNode_.push_back(-1);
  return *switches_.back();
}

Link& Topology::makeTrunk(const std::string& name) {
  trunks_.push_back(std::make_unique<Link>(sim_, trunkLink_, name));
  return *trunks_.back();
}

int Topology::wireTrunk(int from, int to, Link& trunk) {
  Switch& src = switchAt(from);
  Switch* dst = &switchAt(to);
  const int outPort = src.attachOutput(trunk);
  const int inPort = dst->attachInput(trunk.name());
  trunk.setSink(
      [dst, inPort](Packet p) { dst->inject(inPort, std::move(p)); });
  // The trunk feeds a switch: under a sharded executor its arrivals must
  // land on the shard owning the egress port for each packet (no-op for
  // serial runs).
  trunk.setNextHop(dst);
  trunkRecs_.push_back(TrunkRec{from, to, outPort, &trunk});
  return outPort;
}

Switch& Topology::fatTreeLeaf(int l) {
  if (l < static_cast<int>(leafIndex_.size()))
    return *switches_[static_cast<std::size_t>(leafIndex_[
        static_cast<std::size_t>(l)])];
  COMB_ASSERT(l == static_cast<int>(leafIndex_.size()),
              "fat-tree leaves must be created densely");
  Switch& leaf = makeSwitch(strFormat("leaf%d", l), swCfg_.ports);
  const int leafIdx = switchCount() - 1;
  leafIndex_.push_back(leafIdx);
  leafUpPort_.emplace_back(static_cast<std::size_t>(topo_.spines), -1);
  for (int s = 0; s < topo_.spines; ++s) {
    leafUpPort_.back()[static_cast<std::size_t>(s)] = wireTrunk(
        leafIdx, s, makeTrunk(strFormat("t.l%d.s%d", l, s)));
    spineDownPort_[static_cast<std::size_t>(s)].push_back(wireTrunk(
        s, leafIdx, makeTrunk(strFormat("t.s%d.l%d", s, l))));
  }
  // The new leaf needs uplink routes for every already-attached node
  // (each via that node's designated spine).
  for (NodeId id = 0; id < attachedNodes_; ++id) {
    const int home = static_cast<int>(id) / topo_.nodesPerSwitch;
    if (home == l) continue;
    const int spine = static_cast<int>(id) % topo_.spines;
    leaf.setRoute(id, leafUpPort_.back()[static_cast<std::size_t>(spine)]);
  }
  return leaf;
}

void Topology::addFatTreeRoutes(NodeId id, int leaf) {
  const int spineFor = static_cast<int>(id) % topo_.spines;
  // Every spine reaches `id` through its down-trunk to `leaf`; every
  // other leaf reaches it through its up-trunk to `id`'s spine.
  for (int s = 0; s < topo_.spines; ++s)
    switchAt(s).setRoute(
        id, spineDownPort_[static_cast<std::size_t>(s)][
                static_cast<std::size_t>(leaf)]);
  for (int l2 = 0; l2 < static_cast<int>(leafIndex_.size()); ++l2) {
    if (l2 == leaf) continue;
    fatTreeLeaf(l2).setRoute(
        id, leafUpPort_[static_cast<std::size_t>(l2)][
                static_cast<std::size_t>(spineFor)]);
  }
}

void Topology::buildDragonfly() {
  const int rpg = topo_.routersPerGroup;
  const int routers = topo_.groups * rpg;
  // All routers exist up front; their radix is sized exactly by the
  // wiring (nodes, local all-to-all, global trunks), so no budget.
  for (int g = 0; g < topo_.groups; ++g)
    for (int r = 0; r < rpg; ++r) makeSwitch(strFormat("r%d.%d", g, r), 0);
  localPort_.assign(static_cast<std::size_t>(routers),
                    std::vector<int>(static_cast<std::size_t>(routers), -1));
  // Local all-to-all inside each group.
  for (int g = 0; g < topo_.groups; ++g)
    for (int a = 0; a < rpg; ++a)
      for (int b = 0; b < rpg; ++b) {
        if (a == b) continue;
        const int ia = routerIndex(g, a), ib = routerIndex(g, b);
        localPort_[static_cast<std::size_t>(ia)][static_cast<std::size_t>(
            ib)] =
            wireTrunk(ia, ib,
                      makeTrunk(strFormat("t.r%d.%d.r%d.%d", g, a, g, b)));
      }
  // One global trunk per ordered group pair, owned by the gateway router
  // for that remote group (gateway for group gd is local index gd % rpg).
  globalPort_.assign(
      static_cast<std::size_t>(topo_.groups),
      std::vector<int>(static_cast<std::size_t>(topo_.groups), -1));
  for (int g = 0; g < topo_.groups; ++g)
    for (int gd = 0; gd < topo_.groups; ++gd) {
      if (g == gd) continue;
      const int src = routerIndex(g, gd % rpg);
      const int dst = routerIndex(gd, g % rpg);
      globalPort_[static_cast<std::size_t>(g)][static_cast<std::size_t>(
          gd)] =
          wireTrunk(src, dst, makeTrunk(strFormat("g.%d.%d", g, gd)));
    }
}

void Topology::addDragonflyRoutes(NodeId id, int router) {
  const int rpg = topo_.routersPerGroup;
  const int gd = router / rpg;
  const int gw = gd % rpg;  // gateway local index toward group gd
  for (int q = 0; q < switchCount(); ++q) {
    if (q == router) continue;  // direct downlink, set by attachNode
    const int g2 = q / rpg;
    const int r2 = q % rpg;
    int port;
    if (g2 == gd) {
      // Same group: one local hop to the destination router.
      port = localPort_[static_cast<std::size_t>(q)][
          static_cast<std::size_t>(router)];
    } else if (r2 == gw) {
      // Gateway router: take the global trunk to the home group.
      port = globalPort_[static_cast<std::size_t>(g2)][
          static_cast<std::size_t>(gd)];
    } else {
      // Hop locally to this group's gateway for gd.
      port = localPort_[static_cast<std::size_t>(q)][
          static_cast<std::size_t>(routerIndex(g2, gw))];
    }
    COMB_ASSERT(port >= 0, "dragonfly: missing trunk port");
    switchAt(q).setRoute(id, port);
  }
}

Topology::Attachment Topology::attachNode(NodeId id, Link& downlink) {
  COMB_REQUIRE(id == attachedNodes_, "nodes must attach densely, in order");
  const int cap = capacityNodes();
  COMB_REQUIRE(cap < 0 || static_cast<int>(id) < cap,
               strFormat("topology %s is full (%d nodes)",
                         topologyKindName(topo_.kind), cap));
  Attachment att;
  int swIdx = 0;
  switch (topo_.kind) {
    case TopologyKind::SingleSwitch:
      att.sw = &switchAt(0);
      break;
    case TopologyKind::FatTree: {
      const int leaf = static_cast<int>(id) / topo_.nodesPerSwitch;
      att.sw = &fatTreeLeaf(leaf);
      swIdx = leafIndex_[static_cast<std::size_t>(leaf)];
      break;
    }
    case TopologyKind::Dragonfly:
      swIdx = static_cast<int>(id) / topo_.nodesPerSwitch;
      att.sw = &switchAt(swIdx);
      break;
  }
  att.inputPort = att.sw->attachInput(strFormat("up%d", id));
  const int egressPort = att.sw->attachOutput(id, downlink);
  nodeEgress_.push_back(NodeEgressRec{swIdx, id, egressPort});
  if (firstNode_[static_cast<std::size_t>(swIdx)] < 0)
    firstNode_[static_cast<std::size_t>(swIdx)] = id;
  switch (topo_.kind) {
    case TopologyKind::SingleSwitch:
      break;
    case TopologyKind::FatTree:
      addFatTreeRoutes(id, static_cast<int>(id) / topo_.nodesPerSwitch);
      break;
    case TopologyKind::Dragonfly:
      addDragonflyRoutes(id, static_cast<int>(id) / topo_.nodesPerSwitch);
      break;
  }
  ++attachedNodes_;
  return att;
}

int Topology::capacityNodes() const {
  switch (topo_.kind) {
    case TopologyKind::SingleSwitch:
      return swCfg_.ports == 0 ? -1 : swCfg_.ports / 2;
    case TopologyKind::FatTree:
      return -1;  // leaves are created on demand
    case TopologyKind::Dragonfly:
      return topo_.groups * topo_.routersPerGroup * topo_.nodesPerSwitch;
  }
  return -1;
}

void Topology::bindShards(
    const std::function<sim::ShardContext*(NodeId)>& shardOf) {
  // Node egress ports drain into the node's delivery path — they (and
  // the packets queued on them) belong to the node's shard.
  for (const NodeEgressRec& e : nodeEgress_)
    switchAt(e.sw).bindOutputShard(e.outPort, *shardOf(e.node));
  // A trunk's send() runs on whatever shard drains its from-port, so the
  // port and the link must share one owner. Anchor it to a node hosted
  // by the from-switch (a spine hosts none — fall back to the to-side;
  // every lazily-created leaf/router hosts at least one node).
  for (const TrunkRec& t : trunkRecs_) {
    NodeId anchor = firstNode_[static_cast<std::size_t>(t.from)];
    if (anchor < 0) anchor = firstNode_[static_cast<std::size_t>(t.to)];
    COMB_ASSERT(anchor >= 0, "trunk between switches hosting no nodes");
    sim::ShardContext* ctx = shardOf(anchor);
    COMB_ASSERT(ctx != nullptr, "bindShards: null shard for node");
    switchAt(t.from).bindOutputShard(t.outPort, *ctx);
    t.link->rehome(*ctx);
  }
}

Time Topology::minTrunkLatency() const {
  if (trunks_.empty()) return std::numeric_limits<Time>::infinity();
  return trunkLink_.latency;
}

SwitchTotals Topology::totals() const {
  SwitchTotals t;
  for (const auto& sw : switches_) {
    t.packetsRouted += sw->packetsRouted();
    t.dropsNoRoute += sw->dropsNoRoute();
    t.dropsQueue += sw->dropsQueue();
    t.creditStalls += sw->creditStalls();
    t.queuePeakPackets = std::max(t.queuePeakPackets, sw->queuePeakPackets());
  }
  return t;
}

}  // namespace comb::net
