// Output-queued crossbar switch (the paper's Myrinet 8-port SAN/LAN
// switch). A packet entering on any port is routed by destination node ID
// to the output link for that node after a fixed cut-through latency.
// Output contention is modelled by the output Link's serialization queue.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace comb::net {

struct SwitchConfig {
  Time routingLatency = 0.5e-6;  ///< per-packet routing/cut-through delay
  int ports = 8;
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig cfg, std::string name);
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Register the downlink that reaches `node`. One port per node.
  void attachOutput(NodeId node, Link& downlink);

  /// Entry point for packets from node uplinks (wired as the uplink sink).
  void inject(Packet p);

  std::uint64_t packetsRouted() const { return packetsRouted_; }
  std::uint64_t dropsNoRoute() const { return dropsNoRoute_; }
  int portsUsed() const { return static_cast<int>(routes_.size()); }

 private:
  sim::Simulator& sim_;
  SwitchConfig cfg_;
  std::string name_;
  std::map<NodeId, Link*> routes_;
  std::uint64_t packetsRouted_ = 0;
  std::uint64_t dropsNoRoute_ = 0;
};

}  // namespace comb::net
