// Crossbar switch with explicit port accounting and (optionally) finite
// output queues.
//
// The idealized model (queue.depthPackets == 0, the default, and what the
// paper's single Myrinet switch uses) routes a packet to the output link
// for its destination after a fixed cut-through latency; output
// contention is then modelled by the output Link's own serialization
// queue, which is unbounded. That is a non-blocking, infinite-buffer
// crossbar — fine for 2-node experiments, wrong for congestion studies.
//
// With a finite queue configured, each output port owns a bounded
// store-and-forward queue. Contending inputs are arbitrated fairly
// (round-robin across input ports, or strict FIFO), and overflow is
// either tail-dropped (lossy; the transports' retransmission protocols
// engage, see Fabric::lossy) or absorbed by credit-style backpressure
// (lossless; the overflow waits upstream and is accounted as a stall).
//
// Port accounting is explicit and unidirectional: every attachInput
// (an uplink or trunk *into* the switch) and every attachOutput (a
// downlink or trunk *out of* the switch) consumes one port from the
// budget. A node therefore costs two ports — the paper's 8-port
// full-duplex Myrinet crossbar is `ports = 16` in this accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace comb::net {

/// How contending inputs share one output port.
enum class Arbitration {
  Fifo,        ///< single queue in arrival order (no fairness guarantee)
  RoundRobin,  ///< per-input queues served round-robin (fair share)
};

/// What happens when a finite output queue is full.
enum class Backpressure {
  TailDrop,  ///< excess packets are destroyed (lossy fabric)
  Credit,    ///< excess waits upstream for a credit (lossless, stalls)
};

const char* arbitrationName(Arbitration a);
const char* backpressureName(Backpressure b);

struct SwitchQueueConfig {
  /// Max packets buffered per output port; 0 = unbounded (the idealized
  /// crossbar — packets go straight to the output link's serializer).
  int depthPackets = 0;
  /// Max wire bytes buffered per output port; 0 = no byte cap. Only
  /// consulted when depthPackets > 0.
  Bytes depthBytes = 0;
  Arbitration arbitration = Arbitration::RoundRobin;
  Backpressure backpressure = Backpressure::TailDrop;

  bool bounded() const { return depthPackets > 0; }
};

struct SwitchConfig {
  Time routingLatency = 0.5e-6;  ///< per-packet routing/cut-through delay
  /// Unidirectional port budget (inputs + outputs). 0 = unlimited, used
  /// for interior switches whose radix the topology layer sizes exactly.
  int ports = 16;
  SwitchQueueConfig queue;
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig cfg, std::string name);
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Claim one input port (an uplink or inter-switch trunk feeding this
  /// switch). Returns the input-port id to pass to inject(); the label
  /// only appears in error messages.
  int attachInput(const std::string& label);

  /// Claim one output port driving `out`. Returns the output-port id for
  /// setRoute().
  int attachOutput(Link& out);

  /// Route packets destined to `node` through output port `outputPort`.
  /// Many destinations may share one output port (an inter-switch trunk).
  void setRoute(NodeId node, int outputPort);

  /// Convenience for star wiring: claim an output port for `downlink`
  /// and route `node` through it. Returns the output-port id (the
  /// topology layer records it to bind node-egress ports to the node's
  /// shard).
  int attachOutput(NodeId node, Link& downlink);

  /// Entry point for packets arriving on input port `inputPort` (as
  /// returned by attachInput). Under a sharded executor this runs on the
  /// shard owning the egress port for p.dst (the upstream link resolves
  /// it via egressCtx and targets the arrival event there), so all of a
  /// port's state — queue, counters, the output link — is touched by
  /// exactly one shard.
  void inject(int inputPort, Packet p);
  /// Legacy single-uplink entry point: arrives on input port 0.
  void inject(Packet p) { inject(0, std::move(p)); }

  /// The shard owning the egress port for `dst`; nullptr when no route
  /// exists (the caller then keeps the packet local and inject counts
  /// the drop). This is the per-packet resolver upstream links consult —
  /// routes_ and port owners are immutable once the fabric is bound, so
  /// concurrent lookups from many shards are safe.
  sim::ShardContext* egressCtx(NodeId dst) const {
    if (const auto idx = static_cast<std::size_t>(dst);
        dst >= 0 && idx < routes_.size() && routes_[idx] != nullptr) {
      return routes_[idx]->ctx;
    }
    return nullptr;
  }

  /// Assign output port `outputPort` to `ctx`: its queue drains there,
  /// its counters register in that shard's registry, and inject() for
  /// destinations routed through it runs there. Called by
  /// Topology::bindShards between wiring and the first packet.
  void bindOutputShard(int outputPort, sim::ShardContext& ctx);

  /// Shard owning output port `outputPort` (construction context until
  /// bindOutputShard). A link feeding this switch can target the arrival
  /// event at any of these shards, so they are exactly the destinations
  /// Fabric::shardLookaheadMatrix must cover for that link.
  sim::ShardContext* outputCtx(int outputPort) const {
    return outputs_[static_cast<std::size_t>(outputPort)]->ctx;
  }

  std::uint64_t packetsRouted() const;
  std::uint64_t dropsNoRoute() const {
    return dropsNoRoute_.load(std::memory_order_relaxed);
  }
  /// Packets destroyed by a full output queue (TailDrop only).
  std::uint64_t dropsQueue() const;
  /// Packets that had to wait for a credit (Credit backpressure only).
  std::uint64_t creditStalls() const;
  /// Highest per-output queue occupancy seen (packets).
  std::uint64_t queuePeakPackets() const;
  int portsUsed() const { return inputsAttached_ + outputsAttached_; }
  int inputCount() const { return inputsAttached_; }
  int outputCount() const { return outputsAttached_; }
  const std::string& name() const { return name_; }
  const SwitchConfig& config() const { return cfg_; }

 private:
  /// All mutable per-packet state is per-port (never shared between
  /// ports), because different ports of one switch can belong to
  /// different shards: a spine's down-trunk toward leaf A drains
  /// concurrently with its down-trunk toward leaf B. Counters follow the
  /// port: each port registers the switch-wide metric names in its own
  /// shard's registry — in a serial run every port therefore shares the
  /// single registry's counters (find-or-create), byte-identical to the
  /// historical switch-wide instruments; in a sharded run the per-shard
  /// values merge by name (Sum, or Max for the peak).
  struct OutputPort {
    Switch* owner = nullptr;  ///< back-pointer for deferred enqueue events
    Link* link = nullptr;
    sim::ShardContext* ctx = nullptr;  ///< owning shard (construction ctx
                                       ///< until bindOutputShard)
    // Fifo arbitration uses `fifo`; RoundRobin uses one queue per input
    // port (grown on demand) plus the rotating service pointer.
    std::deque<Packet> fifo;
    std::vector<std::deque<Packet>> perInput;
    std::size_t rrNext = 0;
    int queuedPackets = 0;
    Bytes queuedBytes = 0;
    bool draining = false;
    // Per-port statistics; switch-level accessors sum (or max) them.
    std::uint64_t packetsRouted = 0;
    std::uint64_t dropsQueue = 0;
    std::uint64_t creditStalls = 0;
    std::uint64_t queuePeak = 0;
    metrics::Counter* packetsCounter = nullptr;
    metrics::Counter* dropsQueueCounter = nullptr;
    metrics::Counter* creditStallsCounter = nullptr;
    metrics::Counter* queuePeakCounter = nullptr;
    /// Occupancy-at-enqueue histogram; only registered for bounded queues.
    Histogram* depthHistogram = nullptr;
  };

  void registerPortMetrics(OutputPort& port);
  void enqueue(OutputPort& port, int inputPort, Packet p);
  void drain(OutputPort& port);
  bool queueFull(const OutputPort& port, const Packet& p) const;

  sim::ShardContext* sim_;  ///< construction context (port default owner)
  SwitchConfig cfg_;
  std::string name_;
  std::string qdropLabel_;  ///< "<name>:qdrop" (trace label, cached)
  /// Destination -> output port, flat-indexed by NodeId (nullptr = no
  /// route). O(1) on the per-packet hot path; the old std::map cost
  /// O(log n) plus pointer chasing at 1024 nodes. Immutable once the
  /// fabric is wired — upstream shards read it concurrently (egressCtx).
  std::vector<OutputPort*> routes_;
  std::vector<std::unique_ptr<OutputPort>> outputs_;
  int inputsAttached_ = 0;
  int outputsAttached_ = 0;
  /// No-route drops are a wiring bug (SimCluster::run asserts zero) and
  /// can be observed from any injecting shard — atomic, not per-port,
  /// because a routeless packet has no port to charge.
  std::atomic<std::uint64_t> dropsNoRoute_{0};
  metrics::Counter* dropsNoRouteCounter_ = nullptr;
};

}  // namespace comb::net
