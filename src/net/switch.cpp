#include "net/switch.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

namespace comb::net {

Switch::Switch(sim::Simulator& sim, SwitchConfig cfg, std::string name)
    : sim_(sim), cfg_(cfg), name_(std::move(name)) {
  COMB_REQUIRE(cfg.ports > 0, "switch needs at least one port");
  COMB_REQUIRE(cfg.routingLatency >= 0.0, "negative routing latency");
}

void Switch::attachOutput(NodeId node, Link& downlink) {
  COMB_REQUIRE(!routes_.count(node),
               strFormat("switch %s: node %d already attached", name_.c_str(),
                         node));
  COMB_REQUIRE(static_cast<int>(routes_.size()) < cfg_.ports,
               "switch " + name_ + " is out of ports");
  routes_[node] = &downlink;
}

void Switch::inject(Packet p) {
  const auto it = routes_.find(p.dst);
  if (it == routes_.end()) {
    // A real switch would drop or flood; our fabric is fully provisioned,
    // so this is a wiring bug worth surfacing loudly in tests.
    ++dropsNoRoute_;
    COMB_LOG(Error) << "switch " << name_ << ": no route to node " << p.dst;
    return;
  }
  ++packetsRouted_;
  Link* out = it->second;
  sim_.schedule(cfg_.routingLatency,
                [out, p = std::move(p)]() mutable { out->send(std::move(p)); });
}

}  // namespace comb::net
