#include "net/switch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

namespace comb::net {

const char* arbitrationName(Arbitration a) {
  switch (a) {
    case Arbitration::Fifo: return "fifo";
    case Arbitration::RoundRobin: return "rr";
  }
  return "?";
}

const char* backpressureName(Backpressure b) {
  switch (b) {
    case Backpressure::TailDrop: return "drop";
    case Backpressure::Credit: return "credit";
  }
  return "?";
}

Switch::Switch(sim::Simulator& sim, SwitchConfig cfg, std::string name)
    : sim_(&sim),
      cfg_(cfg),
      name_(std::move(name)),
      qdropLabel_(name_ + ":qdrop") {
  COMB_REQUIRE(cfg.ports >= 0, "switch port budget must be >= 0");
  COMB_REQUIRE(cfg.routingLatency >= 0.0, "negative routing latency");
  COMB_REQUIRE(cfg.queue.depthPackets >= 0,
               "negative switch queue depth");
  dropsNoRouteCounter_ =
      &sim.metrics().counter("switch." + name_ + ".drops_no_route");
}

void Switch::registerPortMetrics(OutputPort& port) {
  // Switch-wide names, port-local references: in one registry all ports
  // resolve to the same instruments (the historical behaviour); across
  // shard registries the same-named counters merge after the run.
  auto& m = port.ctx->metrics();
  port.packetsCounter = &m.counter("switch." + name_ + ".packets");
  port.dropsQueueCounter = &m.counter("switch." + name_ + ".drops_queue");
  port.creditStallsCounter = &m.counter("switch." + name_ + ".credit_stalls");
  port.queuePeakCounter = &m.counter("switch." + name_ + ".queue_peak_pkts",
                                     metrics::MergeKind::Max);
  if (cfg_.queue.bounded()) {
    port.depthHistogram = &m.histogram(
        "switch." + name_ + ".queue_depth_pkts", 0.0,
        static_cast<double>(cfg_.queue.depthPackets) + 1.0,
        std::min<std::size_t>(
            16, static_cast<std::size_t>(cfg_.queue.depthPackets) + 1));
  }
}

int Switch::attachInput(const std::string& label) {
  COMB_REQUIRE(cfg_.ports == 0 || portsUsed() < cfg_.ports,
               strFormat("switch %s: out of ports attaching input '%s' "
                         "(%d of %d used; inputs and outputs both count)",
                         name_.c_str(), label.c_str(), portsUsed(),
                         cfg_.ports));
  return inputsAttached_++;
}

int Switch::attachOutput(Link& out) {
  COMB_REQUIRE(cfg_.ports == 0 || portsUsed() < cfg_.ports,
               strFormat("switch %s: out of ports attaching output '%s' "
                         "(%d of %d used; inputs and outputs both count)",
                         name_.c_str(), out.name().c_str(), portsUsed(),
                         cfg_.ports));
  auto port = std::make_unique<OutputPort>();
  port->owner = this;
  port->link = &out;
  port->ctx = sim_;
  registerPortMetrics(*port);
  outputs_.push_back(std::move(port));
  ++outputsAttached_;
  return static_cast<int>(outputs_.size()) - 1;
}

void Switch::bindOutputShard(int outputPort, sim::ShardContext& ctx) {
  COMB_REQUIRE(outputPort >= 0 &&
                   outputPort < static_cast<int>(outputs_.size()),
               strFormat("switch %s: bad output port %d", name_.c_str(),
                         outputPort));
  OutputPort& port = *outputs_[static_cast<std::size_t>(outputPort)];
  COMB_ASSERT(port.packetsRouted == 0 && port.queuedPackets == 0,
              "switch port rebound after carrying traffic");
  if (port.ctx == &ctx) return;
  port.ctx = &ctx;
  registerPortMetrics(port);
}

void Switch::setRoute(NodeId node, int outputPort) {
  COMB_REQUIRE(node >= 0, "setRoute: negative node id");
  COMB_REQUIRE(outputPort >= 0 &&
                   outputPort < static_cast<int>(outputs_.size()),
               strFormat("switch %s: bad output port %d", name_.c_str(),
                         outputPort));
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= routes_.size()) routes_.resize(idx + 1, nullptr);
  COMB_REQUIRE(routes_[idx] == nullptr,
               strFormat("switch %s: node %d already routed", name_.c_str(),
                         node));
  routes_[idx] = outputs_[static_cast<std::size_t>(outputPort)].get();
}

int Switch::attachOutput(NodeId node, Link& downlink) {
  const int port = attachOutput(downlink);
  setRoute(node, port);
  return port;
}

void Switch::inject(int inputPort, Packet p) {
  OutputPort* out = nullptr;
  if (const auto idx = static_cast<std::size_t>(p.dst);
      p.dst >= 0 && idx < routes_.size()) {
    out = routes_[idx];
  }
  if (out == nullptr) {
    // A real switch would drop or flood; our fabrics are fully
    // provisioned, so this is a wiring bug — counted (and surfaced via
    // the metrics registry and MachineStats), not just logged. The
    // counter belongs to the construction shard; in a sharded run the
    // atomic carries the authoritative count (the run aborts on it
    // anyway) while the registry counter stays shard-local.
    const std::uint64_t prior =
        dropsNoRoute_.fetch_add(1, std::memory_order_relaxed);
    static_cast<void>(prior);
    dropsNoRouteCounter_->add();
    COMB_LOG(Error) << "switch " << name_ << ": no route to node " << p.dst;
    return;
  }
  // From here on we are on out->ctx: the upstream link resolved the
  // egress shard before scheduling this event (serial runs trivially
  // satisfy that — there is only one shard).
  ++out->packetsRouted;
  out->packetsCounter->add();
  if (!cfg_.queue.bounded()) {
    // Idealized crossbar: hand straight to the output link after the
    // cut-through delay; the link's serializer is the (infinite) queue.
    Link* link = out->link;
    out->ctx->schedule(cfg_.routingLatency, [link, p = std::move(p)]() mutable {
      link->send(std::move(p));
    });
    return;
  }
  // The ingress port rides in the packet's padding: the closure must fit
  // the inline event slot (48 bytes — OutputPort* + Packet exactly).
  p.switchInPort = static_cast<std::int16_t>(inputPort);
  out->ctx->schedule(cfg_.routingLatency, [out, p = std::move(p)]() mutable {
    const int in = p.switchInPort;
    out->owner->enqueue(*out, in, std::move(p));
  });
}

bool Switch::queueFull(const OutputPort& port, const Packet& p) const {
  const auto& q = cfg_.queue;
  if (port.queuedPackets >= q.depthPackets) return true;
  return q.depthBytes > 0 && port.queuedPackets > 0 &&
         port.queuedBytes + p.wireBytes > q.depthBytes;
}

void Switch::enqueue(OutputPort& port, int inputPort, Packet p) {
  if (queueFull(port, p)) {
    if (cfg_.queue.backpressure == Backpressure::TailDrop) {
      ++port.dropsQueue;
      port.dropsQueueCounter->add();
      if (port.ctx->tracing())
        port.ctx->emitTrace(sim::TraceCategory::Fault, p.dst, qdropLabel_,
                            static_cast<double>(p.wireBytes),
                            static_cast<double>(p.seq));
      return;
    }
    // Credit backpressure: the packet waits upstream (modelled as an
    // unbounded staging area feeding the same arbitration) until the
    // queue drains — lossless, but the stall is accounted.
    ++port.creditStalls;
    port.creditStallsCounter->add();
  }
  ++port.queuedPackets;
  port.queuedBytes += p.wireBytes;
  if (static_cast<std::uint64_t>(port.queuedPackets) > port.queuePeak) {
    port.queuePeak = static_cast<std::uint64_t>(port.queuedPackets);
    // raiseTo, not add: in one registry many ports share this counter,
    // and its value must be the max over their peaks — exactly the old
    // switch-wide running maximum.
    port.queuePeakCounter->raiseTo(port.queuePeak);
  }
  if (port.depthHistogram != nullptr)
    port.depthHistogram->add(static_cast<double>(port.queuedPackets));
  if (cfg_.queue.arbitration == Arbitration::RoundRobin) {
    const auto slot = static_cast<std::size_t>(std::max(inputPort, 0));
    if (slot >= port.perInput.size()) port.perInput.resize(slot + 1);
    port.perInput[slot].push_back(std::move(p));
  } else {
    port.fifo.push_back(std::move(p));
  }
  drain(port);
}

void Switch::drain(OutputPort& port) {
  if (port.draining || port.queuedPackets == 0) return;
  // Pick the next packet: round-robin across non-empty input queues, or
  // the head of the single FIFO.
  Packet p;
  if (cfg_.queue.arbitration == Arbitration::RoundRobin) {
    const std::size_t n = port.perInput.size();
    std::size_t chosen = n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (port.rrNext + k) % n;
      if (!port.perInput[i].empty()) {
        chosen = i;
        break;
      }
    }
    COMB_ASSERT(chosen < n, "switch drain: occupancy/queue mismatch");
    p = std::move(port.perInput[chosen].front());
    port.perInput[chosen].pop_front();
    port.rrNext = (chosen + 1) % n;
  } else {
    p = std::move(port.fifo.front());
    port.fifo.pop_front();
  }
  --port.queuedPackets;
  port.queuedBytes -= std::min(port.queuedBytes, p.wireBytes);
  // Hand exactly one packet to the link; serve the next when the wire
  // frees (the packet's propagation continues independently).
  Link* link = port.link;
  link->send(std::move(p));
  port.draining = true;
  port.ctx->scheduleAt(link->freeAt(), [this, out = &port] {
    out->draining = false;
    drain(*out);
  });
}

std::uint64_t Switch::packetsRouted() const {
  std::uint64_t n = 0;
  for (const auto& port : outputs_) n += port->packetsRouted;
  return n;
}

std::uint64_t Switch::dropsQueue() const {
  std::uint64_t n = 0;
  for (const auto& port : outputs_) n += port->dropsQueue;
  return n;
}

std::uint64_t Switch::creditStalls() const {
  std::uint64_t n = 0;
  for (const auto& port : outputs_) n += port->creditStalls;
  return n;
}

std::uint64_t Switch::queuePeakPackets() const {
  std::uint64_t peak = 0;
  for (const auto& port : outputs_) peak = std::max(peak, port->queuePeak);
  return peak;
}

}  // namespace comb::net
