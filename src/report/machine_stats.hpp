// Machine statistics snapshot: everything the simulated substrate counted
// during a run, formatted for humans. This is the suite's observability
// surface — "where did the cycles and bytes go" — complementing the
// benchmark-level phase timings.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace comb::backend {
class SimCluster;
}

namespace comb::report {

struct NodeStats {
  int rank = 0;
  // Per-CPU accounting (index 0 = application CPU).
  struct CpuStats {
    Time userTime = 0;
    Time isrTime = 0;
    std::uint64_t interrupts = 0;
  };
  std::vector<CpuStats> cpus;
  // MPI layer.
  std::uint64_t sendsPosted = 0;
  std::uint64_t recvsPosted = 0;
  Bytes bytesSent = 0;
  Bytes bytesReceived = 0;
  std::size_t requestsPending = 0;
  // Fabric attachment.
  Bytes uplinkBytes = 0;
  Time uplinkBusy = 0;
  Bytes downlinkBytes = 0;
  Time downlinkBusy = 0;
};

struct MachineStats {
  std::string machineName;
  Time simulatedTime = 0;
  std::uint64_t eventsExecuted = 0;
  std::vector<NodeStats> nodes;
  std::uint64_t switchPacketsRouted = 0;
  /// Switch-fabric totals over every switch of the topology: no-route
  /// drops (always a wiring bug), finite-queue tail drops, credit stalls
  /// and the peak per-output queue occupancy.
  net::SwitchTotals switches;
  /// Fault-injection / reliability counters, cluster-wide (all zero on a
  /// lossless fabric).
  net::FaultCounters fault;
  /// Everything the components registered in the metrics registry
  /// (host.*, link.*, nic.*, mpi.* counters and any histograms).
  metrics::Snapshot metrics;
  /// Trace records lost to the bounded ring (0 when tracing is detached
  /// or the ring never filled). Non-zero means the timeline is truncated.
  std::uint64_t traceDropped = 0;
};

/// Snapshot a cluster after (or during) a run.
MachineStats snapshot(backend::SimCluster& cluster);

/// Render as an aligned table with utilization percentages.
void renderStats(std::ostream& out, const MachineStats& stats);

/// Machine-readable export: one JSON object holding the run header, fault
/// counters, and the full metrics snapshot.
void writeStatsJson(std::ostream& out, const MachineStats& stats);

}  // namespace comb::report
