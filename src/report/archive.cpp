#include "report/archive.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"

#ifndef COMB_GIT_SHA
#define COMB_GIT_SHA "unknown"
#endif
#ifndef COMB_BUILD_FLAGS
#define COMB_BUILD_FLAGS "unknown"
#endif
#ifndef COMB_VERSION
#define COMB_VERSION "0.0.0"
#endif

namespace comb::report {

ArchiveProvenance buildProvenance() {
  ArchiveProvenance p;
  p.suite = "comb " COMB_VERSION;
  p.gitSha = COMB_GIT_SHA;
  p.buildFlags = COMB_BUILD_FLAGS;
  return p;
}

namespace {

/// Round-trip-exact double rendering (JSON has no float width limit).
std::string num(double v) { return strFormat("%.17g", v); }

void writeMetric(std::ostream& out, const ArchiveMetric& m,
                 const char* indent) {
  out << indent << "{\"name\": \"" << json::escape(m.name)
      << "\", \"better\": \"" << (m.higherIsBetter ? "higher" : "lower")
      << "\", \"class\": \"" << json::escape(m.metricClass)
      << "\", \"samples\": [";
  for (std::size_t i = 0; i < m.samples.size(); ++i) {
    if (i) out << ", ";
    out << num(m.samples[i]);
  }
  out << "]}";
}

ArchiveMetric parseMetric(const json::Value& v) {
  ArchiveMetric m;
  m.name = v.at("name").str();
  const std::string& better = v.at("better").str();
  if (better == "higher") {
    m.higherIsBetter = true;
  } else if (better == "lower") {
    m.higherIsBetter = false;
  } else {
    throw ConfigError("archive: metric 'better' must be higher|lower, got '" +
                      better + "'");
  }
  // Archives written before metric classes existed carry only mean-style
  // metrics, which is exactly the default.
  if (const json::Value* cls = v.find("class")) m.metricClass = cls->str();
  for (const auto& s : v.at("samples").array())
    m.samples.push_back(s.number());
  COMB_REQUIRE(!m.samples.empty(),
               "archive: metric '" + m.name + "' has no samples");
  return m;
}

}  // namespace

void writeArchive(std::ostream& out, const Archive& archive) {
  out << "{\n";
  out << "  \"comb_archive_version\": " << archive.version << ",\n";
  out << "  \"bench\": \"" << json::escape(archive.bench) << "\",\n";
  out << "  \"seed\": " << archive.seed << ",\n";
  out << "  \"provenance\": {\"suite\": \""
      << json::escape(archive.provenance.suite) << "\", \"git_sha\": \""
      << json::escape(archive.provenance.gitSha) << "\", \"build_flags\": \""
      << json::escape(archive.provenance.buildFlags)
      << "\", \"sim_jobs\": " << archive.provenance.simJobs
      << ", \"lookahead\": " << num(archive.provenance.lookahead)
      << ", \"lookahead_source\": \""
      << json::escape(archive.provenance.lookaheadSource)
      << "\", \"sim_affinity\": \""
      << json::escape(archive.provenance.simAffinity)
      << "\", \"shard_imbalance\": " << num(archive.provenance.shardImbalance)
      << ", \"tail_percentiles\": \""
      << json::escape(archive.provenance.tailPercentiles)
      << "\", \"stack\": \"" << json::escape(archive.provenance.stack)
      << "\"},\n";
  out << "  \"rep_policy\": {\"adaptive\": "
      << (archive.rep.adaptive ? "true" : "false")
      << ", \"reps\": " << archive.rep.reps
      << ", \"min_reps\": " << archive.rep.minReps
      << ", \"max_reps\": " << archive.rep.maxReps
      << ", \"ci_target\": " << num(archive.rep.ciTarget) << "},\n";
  out << "  \"sweeps\": [";
  for (std::size_t s = 0; s < archive.sweeps.size(); ++s) {
    const auto& sweep = archive.sweeps[s];
    out << (s ? ",\n" : "\n");
    out << "    {\n";
    out << "      \"id\": \"" << json::escape(sweep.id) << "\",\n";
    out << "      \"xlabel\": \"" << json::escape(sweep.xlabel) << "\",\n";
    out << "      \"machine\": \"" << json::escape(sweep.machine) << "\",\n";
    out << "      \"machine_hash\": \"" << json::escape(sweep.machineHash)
        << "\",\n";
    out << "      \"points\": [";
    for (std::size_t p = 0; p < sweep.points.size(); ++p) {
      const auto& point = sweep.points[p];
      out << (p ? ",\n" : "\n");
      out << "        {\"x\": " << num(point.x) << ", \"converged\": "
          << (point.converged ? "true" : "false") << ", \"metrics\": [\n";
      for (std::size_t m = 0; m < point.metrics.size(); ++m) {
        if (m) out << ",\n";
        writeMetric(out, point.metrics[m], "          ");
      }
      out << "\n        ]}";
    }
    out << "\n      ]\n    }";
  }
  out << "\n  ]\n}\n";
}

std::string writeArchiveFile(const Archive& archive, const std::string& dir) {
  COMB_REQUIRE(!archive.bench.empty(), "archive: bench id must be set");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + archive.bench + ".json";
  std::ofstream f(path);
  COMB_REQUIRE(f.good(), "cannot open " + path);
  writeArchive(f, archive);
  COMB_REQUIRE(f.good(), "write failed for " + path);
  return path;
}

Archive parseArchive(const json::Value& root, const std::string& sourceName) {
  try {
    Archive a;
    const double ver = root.at("comb_archive_version").number();
    a.version = static_cast<int>(ver);
    if (a.version != kArchiveVersion)
      throw ConfigError(strFormat(
          "unsupported archive version %d (this build reads version %d)",
          a.version, kArchiveVersion));
    a.bench = root.at("bench").str();
    a.seed = static_cast<std::uint64_t>(root.at("seed").number());
    const auto& prov = root.at("provenance");
    a.provenance.suite = prov.at("suite").str();
    a.provenance.gitSha = prov.at("git_sha").str();
    a.provenance.buildFlags = prov.at("build_flags").str();
    // Older archives predate the sharded core; they ran serial (1) with
    // no window bound ("global-min", lookahead 0) and no pinning.
    if (const json::Value* sj = prov.find("sim_jobs"))
      a.provenance.simJobs = static_cast<int>(sj->number());
    if (const json::Value* la = prov.find("lookahead"))
      a.provenance.lookahead = la->number();
    if (const json::Value* ls = prov.find("lookahead_source"))
      a.provenance.lookaheadSource = ls->str();
    if (const json::Value* sa = prov.find("sim_affinity"))
      a.provenance.simAffinity = sa->str();
    if (const json::Value* si = prov.find("shard_imbalance"))
      a.provenance.shardImbalance = si->number();
    if (const json::Value* tp = prov.find("tail_percentiles"))
      a.provenance.tailPercentiles = tp->str();
    if (const json::Value* st = prov.find("stack"))
      a.provenance.stack = st->str();
    const auto& rep = root.at("rep_policy");
    a.rep.adaptive = rep.at("adaptive").boolean();
    a.rep.reps = static_cast<int>(rep.at("reps").number());
    a.rep.minReps = static_cast<int>(rep.at("min_reps").number());
    a.rep.maxReps = static_cast<int>(rep.at("max_reps").number());
    a.rep.ciTarget = rep.at("ci_target").number();
    for (const auto& sv : root.at("sweeps").array()) {
      ArchiveSweep sweep;
      sweep.id = sv.at("id").str();
      sweep.xlabel = sv.at("xlabel").str();
      sweep.machine = sv.at("machine").str();
      sweep.machineHash = sv.at("machine_hash").str();
      for (const auto& pv : sv.at("points").array()) {
        ArchivePoint point;
        point.x = pv.at("x").number();
        point.converged = pv.at("converged").boolean();
        for (const auto& mv : pv.at("metrics").array())
          point.metrics.push_back(parseMetric(mv));
        sweep.points.push_back(std::move(point));
      }
      a.sweeps.push_back(std::move(sweep));
    }
    return a;
  } catch (const Error& e) {
    throw ConfigError(sourceName + ": not a valid comb archive: " + e.what());
  }
}

Archive loadArchiveFile(const std::string& path) {
  return parseArchive(json::parseFile(path), path);
}

}  // namespace comb::report
