#include "report/trace_export.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "common/table.hpp"

namespace comb::report {

int traceLayer(sim::TraceCategory cat) {
  using C = sim::TraceCategory;
  switch (cat) {
    case C::Process:
    case C::Compute:
    case C::Interrupt:
    case C::Phase:
      return 1;  // host
    case C::MpiCall:
    case C::Protocol:
      return 2;  // library
    case C::NicEvent:
    case C::Packet:
      return 3;  // NIC
    case C::Wire:
    case C::Fault:
      return 4;  // wire
  }
  return 0;
}

const char* traceLayerName(int layer) {
  switch (layer) {
    case 1: return "host";
    case 2: return "library";
    case 3: return "nic";
    case 4: return "wire";
  }
  return "?";
}

namespace {

void writeJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

const char* phaseCode(sim::TracePhase p) {
  switch (p) {
    case sim::TracePhase::Instant: return "i";
    case sim::TracePhase::Begin: return "B";
    case sim::TracePhase::End: return "E";
    case sim::TracePhase::Complete: return "X";
  }
  return "i";
}

/// A closed span reconstructed from the log, for the summary's top-N.
struct ClosedSpan {
  Time start = 0;
  Time dur = 0;
  sim::TraceCategory cat = sim::TraceCategory::Process;
  int node = -1;
  sim::TraceLabelId label = 0;
};

/// Replay Begin/End pairing (the log enforces it at emission time) and
/// collect every closed span plus all Complete records.
std::vector<ClosedSpan> collectSpans(const sim::TraceLog& log) {
  std::vector<ClosedSpan> spans;
  std::map<std::size_t, std::vector<std::pair<sim::TraceLabelId, Time>>> open;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const sim::TraceRecord& r = log.record(i);
    const std::size_t track =
        static_cast<std::size_t>(r.node + 1) * sim::kTraceCategoryCount +
        static_cast<std::size_t>(r.cat);
    switch (r.phase) {
      case sim::TracePhase::Begin:
        open[track].push_back({r.label, r.t});
        break;
      case sim::TracePhase::End: {
        auto& stack = open[track];
        // A ring that dropped old records can orphan an End; skip those.
        if (stack.empty() || stack.back().first != r.label) break;
        spans.push_back(
            {stack.back().second, r.t - stack.back().second, r.cat, r.node,
             r.label});
        stack.pop_back();
        break;
      }
      case sim::TracePhase::Complete:
        spans.push_back({r.t, r.dur, r.cat, r.node, r.label});
        break;
      case sim::TracePhase::Instant:
        break;
    }
  }
  return spans;
}

}  // namespace

void writeChromeTrace(std::ostream& out, const sim::TraceLog& log) {
  out << "{\n\"otherData\": {\"tool\": \"comb\", \"dropped\": "
      << log.dropped() << ", \"records\": " << log.size()
      << "},\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";

  bool first = true;
  const auto sep = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };

  // Metadata: name each (process, thread) pair actually used.
  std::set<int> pids;
  std::set<std::pair<int, int>> tracks;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const sim::TraceRecord& r = log.record(i);
    pids.insert(r.node + 1);
    tracks.insert({r.node + 1, traceLayer(r.cat)});
  }
  for (const int pid : pids) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid
        << ", \"name\": \"process_name\", \"args\": {\"name\": \"";
    if (pid == 0)
      out << "machine";
    else
      out << "node " << pid - 1;
    out << "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << traceLayerName(tid) << "\"}}";
  }

  for (std::size_t i = 0; i < log.size(); ++i) {
    const sim::TraceRecord& r = log.record(i);
    sep();
    out << "{\"ph\": \"" << phaseCode(r.phase)
        << "\", \"pid\": " << r.node + 1
        << ", \"tid\": " << traceLayer(r.cat) << ", \"ts\": "
        << strFormat("%.3f", r.t * 1e6);
    if (r.phase == sim::TracePhase::Complete)
      out << ", \"dur\": " << strFormat("%.3f", r.dur * 1e6);
    if (r.phase == sim::TracePhase::Instant) out << ", \"s\": \"t\"";
    out << ", \"cat\": \"" << sim::traceCategoryName(r.cat)
        << "\", \"name\": ";
    writeJsonString(out, log.labelName(r.label));
    if (r.a != 0 || r.b != 0) {
      out << ", \"args\": {\"a\": " << strFormat("%.9g", r.a)
          << ", \"b\": " << strFormat("%.9g", r.b) << "}";
    }
    out << "}";
  }

  // Latency counter tracks: one Perfetto counter per (node, category)
  // carrying each closed span's duration at its end time. The library and
  // interrupt tracks are the tail-latency view — an OS-noise window or a
  // slow MPI completion shows up as a spike, exactly where the latency
  // recorders put it in the histogram.
  using C = sim::TraceCategory;
  for (const ClosedSpan& s : collectSpans(log)) {
    if (s.cat != C::MpiCall && s.cat != C::Protocol && s.cat != C::Interrupt)
      continue;
    sep();
    out << "{\"ph\": \"C\", \"pid\": " << s.node + 1
        << ", \"tid\": " << traceLayer(s.cat) << ", \"ts\": "
        << strFormat("%.3f", (s.start + s.dur) * 1e6) << ", \"name\": \""
        << sim::traceCategoryName(s.cat) << "_latency\", \"args\": {\"us\": "
        << strFormat("%.3f", s.dur * 1e6) << "}}";
  }
  out << "\n]\n}\n";
}

void writeTraceSummary(std::ostream& out, const sim::TraceLog& log,
                       std::size_t topN) {
  out << "trace: " << log.size() << " record(s)";
  if (log.dropped() > 0)
    out << " (+" << log.dropped() << " dropped — timeline truncated)";
  out << "\n\n";
  if (log.size() == 0) return;

  // Per-category counts, split per node.
  std::set<int> nodes;
  for (std::size_t i = 0; i < log.size(); ++i)
    nodes.insert(log.record(i).node);
  std::vector<std::string> headers{"category", "records", "spans"};
  for (const int n : nodes)
    headers.push_back(n < 0 ? std::string("global") : strFormat("n%d", n));
  TextTable counts(headers);
  // count(cat, node) treats node < 0 as "no filter", so tally the
  // per-(category, node) cells directly.
  std::map<std::pair<std::size_t, int>, std::size_t> cell;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const sim::TraceRecord& r = log.record(i);
    ++cell[{static_cast<std::size_t>(r.cat), r.node}];
  }
  for (std::size_t c = 0; c < sim::kTraceCategoryCount; ++c) {
    const auto cat = static_cast<sim::TraceCategory>(c);
    if (log.count(cat) == 0) continue;
    std::vector<std::string> row;
    row.push_back(sim::traceCategoryName(cat));
    row.push_back(strFormat("%zu", log.count(cat)));
    row.push_back(strFormat("%zu", log.countSpans(cat)));
    for (const int n : nodes) row.push_back(strFormat("%zu", cell[{c, n}]));
    counts.addRow(std::move(row));
  }
  counts.render(out);

  auto spans = collectSpans(log);
  if (spans.empty()) return;
  std::sort(spans.begin(), spans.end(),
            [](const ClosedSpan& x, const ClosedSpan& y) {
              return x.dur > y.dur;
            });
  if (spans.size() > topN) spans.resize(topN);
  out << "\ntop " << spans.size() << " spans by duration:\n";
  TextTable top({"start(ms)", "dur(us)", "category", "node", "label"});
  for (const ClosedSpan& s : spans) {
    top.addRow({strFormat("%.6f", s.start * 1e3),
                strFormat("%.3f", s.dur * 1e6),
                sim::traceCategoryName(s.cat),
                s.node < 0 ? std::string("-") : strFormat("%d", s.node),
                std::string(log.labelName(s.label))});
  }
  top.render(out);
}

}  // namespace comb::report
