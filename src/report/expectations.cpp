#include "report/expectations.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace comb::report {

namespace {

double peak(std::span<const double> ys) {
  COMB_REQUIRE(!ys.empty(), "shape check on empty series");
  return *std::max_element(ys.begin(), ys.end());
}

}  // namespace

ShapeCheck checkPlateauThenDecline(std::string name,
                                   std::span<const double> ys,
                                   double plateauBand, double endBelowFrac) {
  COMB_REQUIRE(ys.size() >= 4, "plateau check needs >= 4 points");
  const double pk = peak(ys);
  // Plateau: the first quarter of the sweep holds within the band.
  const std::size_t q = std::max<std::size_t>(2, ys.size() / 4);
  bool plateau = true;
  for (std::size_t i = 0; i < q; ++i)
    plateau = plateau && ys[i] >= (1.0 - plateauBand) * pk;
  const bool declines = ys.back() <= endBelowFrac * pk;
  ShapeCheck c{std::move(name), plateau && declines, ""};
  c.detail = strFormat("peak=%.4g first%zu>=%.0f%%peak:%s end=%.4g (%.0f%% of peak)",
                       pk, q, (1.0 - plateauBand) * 100,
                       plateau ? "yes" : "NO", ys.back(),
                       100.0 * ys.back() / pk);
  return c;
}

ShapeCheck checkRisesFromLowToHigh(std::string name,
                                   std::span<const double> ys, double lowMax,
                                   double highMin) {
  COMB_REQUIRE(ys.size() >= 3, "rise check needs >= 3 points");
  const double start = *std::min_element(ys.begin(), ys.begin() + 2);
  const double end = *std::max_element(ys.end() - 2, ys.end());
  ShapeCheck c{std::move(name), start <= lowMax && end >= highMin, ""};
  c.detail = strFormat("start=%.4g (need <=%.3g) end=%.4g (need >=%.3g)",
                       start, lowMax, end, highMin);
  return c;
}

ShapeCheck checkPeakRatio(std::string name, std::span<const double> a,
                          std::span<const double> b, double minRatio,
                          double maxRatio) {
  const double pa = peak(a);
  const double pb = peak(b);
  const double ratio = pb == 0.0 ? 1e18 : pa / pb;
  ShapeCheck c{std::move(name), ratio >= minRatio && ratio <= maxRatio, ""};
  c.detail = strFormat("peakA=%.4g peakB=%.4g ratio=%.3g (need %.3g..%.3g)",
                       pa, pb, ratio, minRatio, maxRatio);
  return c;
}

ShapeCheck checkFlat(std::string name, std::span<const double> ys,
                     double relBand) {
  const double hi = peak(ys);
  const double lo = *std::min_element(ys.begin(), ys.end());
  const bool flat = hi == 0.0 ? true : (hi - lo) <= relBand * hi;
  ShapeCheck c{std::move(name), flat, ""};
  c.detail = strFormat("min=%.4g max=%.4g spread=%.2f%% (allow %.0f%%)", lo,
                       hi, hi == 0 ? 0.0 : 100.0 * (hi - lo) / hi,
                       100.0 * relBand);
  return c;
}

ShapeCheck checkEndsBelow(std::string name, std::span<const double> ys,
                          double floorValue) {
  COMB_REQUIRE(!ys.empty(), "shape check on empty series");
  ShapeCheck c{std::move(name), ys.back() < floorValue, ""};
  c.detail = strFormat("end=%.4g (need < %.4g)", ys.back(), floorValue);
  return c;
}

ShapeCheck checkEndsAbove(std::string name, std::span<const double> ys,
                          double floorValue) {
  COMB_REQUIRE(!ys.empty(), "shape check on empty series");
  ShapeCheck c{std::move(name), ys.back() > floorValue, ""};
  c.detail = strFormat("end=%.4g (need > %.4g)", ys.back(), floorValue);
  return c;
}

ShapeCheck checkNearlyMonotone(std::string name, std::span<const double> ys,
                               bool increasing, double slack) {
  COMB_REQUIRE(ys.size() >= 2, "monotone check needs >= 2 points");
  bool ok = true;
  double worst = 0.0;
  for (std::size_t i = 1; i < ys.size(); ++i) {
    const double step = increasing ? ys[i] - ys[i - 1] : ys[i - 1] - ys[i];
    if (step < -slack) {
      ok = false;
      worst = std::min(worst, step);
    }
  }
  ShapeCheck c{std::move(name), ok, ""};
  c.detail = ok ? "monotone within slack"
              : strFormat("worst regression %.4g (slack %.4g)", -worst, slack);
  return c;
}

ShapeCheck checkCoexists(std::string name, std::span<const double> y1,
                         std::span<const double> y2, double y1Min,
                         double y2Min) {
  COMB_REQUIRE(y1.size() == y2.size(), "coexist check size mismatch");
  bool found = false;
  double best1 = 0, best2 = 0;
  for (std::size_t i = 0; i < y1.size(); ++i) {
    if (y1[i] >= y1Min && y2[i] >= y2Min) {
      found = true;
      best1 = y1[i];
      best2 = y2[i];
      break;
    }
  }
  ShapeCheck c{std::move(name), found, ""};
  c.detail = found ? strFormat("found point (%.4g, %.4g)", best1, best2)
                   : strFormat("no point with y1>=%.4g and y2>=%.4g", y1Min,
                               y2Min);
  return c;
}

bool reportChecks(std::ostream& out, const std::vector<ShapeCheck>& checks) {
  bool all = true;
  for (const auto& c : checks) {
    out << (c.pass ? "  [PASS] " : "  [FAIL] ") << c.name << " — "
        << c.detail << '\n';
    all = all && c.pass;
  }
  return all;
}

}  // namespace comb::report
