// Shape expectations: machine-checkable statements about curve *shapes*
// (plateaus, knees, crossovers, who-wins) — the reproduction criterion for
// a simulator-based substrate, where absolute numbers are calibrated but
// shapes must emerge from the mechanisms.
//
// Used by the figure benches (printed PASS/FAIL next to each figure) and
// by the integration test suite.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace comb::report {

struct ShapeCheck {
  std::string name;
  bool pass = false;
  std::string detail;
};

/// y starts at a plateau (within `plateauBand` of its peak over the first
/// points) and ends below `endBelowFrac` of the peak.
ShapeCheck checkPlateauThenDecline(std::string name,
                                   std::span<const double> ys,
                                   double plateauBand = 0.15,
                                   double endBelowFrac = 0.5);

/// y starts below `lowMax` and ends above `highMin` (the availability
/// S-curve of Figs 4 and 6).
ShapeCheck checkRisesFromLowToHigh(std::string name,
                                   std::span<const double> ys, double lowMax,
                                   double highMin);

/// peak(a) >= minRatio * peak(b) — "who wins, by roughly what factor".
ShapeCheck checkPeakRatio(std::string name, std::span<const double> a,
                          std::span<const double> b, double minRatio,
                          double maxRatio = 1e9);

/// Curve is flat: (max-min) <= relBand * max.
ShapeCheck checkFlat(std::string name, std::span<const double> ys,
                     double relBand = 0.1);

/// Final value drops below `floorValue`.
ShapeCheck checkEndsBelow(std::string name, std::span<const double> ys,
                          double floorValue);

/// Final value stays above `floorValue`.
ShapeCheck checkEndsAbove(std::string name, std::span<const double> ys,
                          double floorValue);

/// Nearly monotone in the given direction; each step may regress at most
/// `slack` (absolute).
ShapeCheck checkNearlyMonotone(std::string name, std::span<const double> ys,
                               bool increasing, double slack);

/// There exists a point with y1 >= y1Min while y2 >= y2Min (e.g. "full
/// bandwidth at >= 0.9 availability", Fig 14).
ShapeCheck checkCoexists(std::string name, std::span<const double> y1,
                         std::span<const double> y2, double y1Min,
                         double y2Min);

/// Render PASS/FAIL lines; returns false if any check failed.
bool reportChecks(std::ostream& out, const std::vector<ShapeCheck>& checks);

}  // namespace comb::report
