#include "report/machine_stats.hpp"

#include "backend/sim_cluster.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace comb::report {

MachineStats snapshot(backend::SimCluster& cluster) {
  MachineStats stats;
  stats.machineName = cluster.config().name;
  stats.simulatedTime = cluster.now();
  stats.eventsExecuted = cluster.eventsExecuted();
  stats.switches = cluster.fabric().switchTotals();
  stats.switchPacketsRouted = stats.switches.packetsRouted;
  stats.fault = cluster.faultCounters();
  stats.metrics = cluster.metricsSnapshot();
  stats.traceDropped = cluster.traceDropped();
  for (int r = 0; r < cluster.nodeCount(); ++r) {
    NodeStats node;
    node.rank = r;
    for (int c = 0; c < cluster.config().cpusPerNode; ++c) {
      auto& cpu = cluster.cpu(r, c);
      node.cpus.push_back(
          NodeStats::CpuStats{cpu.userTime(), cpu.isrTime(),
                              cpu.interruptsRaised()});
    }
    auto& mpi = cluster.mpi(r);
    node.sendsPosted = mpi.sendsPosted();
    node.recvsPosted = mpi.recvsPosted();
    node.bytesSent = mpi.bytesSent();
    node.bytesReceived = mpi.bytesReceived();
    node.requestsPending = mpi.pendingRequests();
    auto& up = cluster.fabric().uplink(r);
    auto& down = cluster.fabric().downlink(r);
    node.uplinkBytes = up.bytesCarried();
    node.uplinkBusy = up.busyTime();
    node.downlinkBytes = down.bytesCarried();
    node.downlinkBusy = down.busyTime();
    stats.nodes.push_back(std::move(node));
  }
  return stats;
}

void renderStats(std::ostream& out, const MachineStats& stats) {
  out << "machine '" << stats.machineName << "': simulated "
      << fmtTime(stats.simulatedTime) << ", "
      << stats.eventsExecuted << " events, "
      << stats.switchPacketsRouted << " packets routed\n";
  if (stats.switches.dropsNoRoute > 0) {
    out << "WARNING: " << stats.switches.dropsNoRoute
        << " packet(s) dropped with no route — the fabric is miswired\n";
  }
  if (stats.switches.dropsQueue > 0 || stats.switches.creditStalls > 0 ||
      stats.switches.queuePeakPackets > 0) {
    out << strFormat(
        "switch queues: %llu tail drops, %llu credit stalls, peak depth "
        "%llu packet(s)\n",
        (unsigned long long)stats.switches.dropsQueue,
        (unsigned long long)stats.switches.creditStalls,
        (unsigned long long)stats.switches.queuePeakPackets);
  }
  if (stats.fault.any()) {
    out << strFormat(
        "faults: %llu drops, %llu corruptions injected; %llu retransmits, "
        "%llu timeout wakeups, %llu duplicates filtered\n",
        (unsigned long long)stats.fault.dropsInjected,
        (unsigned long long)stats.fault.corruptsInjected,
        (unsigned long long)stats.fault.retransmits,
        (unsigned long long)stats.fault.timeoutWakeups,
        (unsigned long long)stats.fault.duplicatesFiltered);
  }
  if (stats.traceDropped > 0) {
    out << "WARNING: " << stats.traceDropped
        << " trace record(s) dropped (ring full) — the timeline is "
           "truncated; raise the trace capacity\n";
  }

  const double horizon = stats.simulatedTime > 0 ? stats.simulatedTime : 1.0;
  TextTable table({"node", "cpu", "user%", "isr%", "irqs", "sends", "recvs",
                   "tx", "rx", "uplink%", "downlink%"});
  for (const auto& node : stats.nodes) {
    for (std::size_t c = 0; c < node.cpus.size(); ++c) {
      const auto& cpu = node.cpus[c];
      std::vector<std::string> row;
      row.push_back(c == 0 ? strFormat("%d", node.rank) : "");
      row.push_back(strFormat("%zu", c));
      row.push_back(strFormat("%.1f", 100.0 * cpu.userTime / horizon));
      row.push_back(strFormat("%.1f", 100.0 * cpu.isrTime / horizon));
      row.push_back(strFormat("%llu", (unsigned long long)cpu.interrupts));
      if (c == 0) {
        row.push_back(strFormat("%llu", (unsigned long long)node.sendsPosted));
        row.push_back(strFormat("%llu", (unsigned long long)node.recvsPosted));
        row.push_back(fmtBytes(node.bytesSent));
        row.push_back(fmtBytes(node.bytesReceived));
        row.push_back(strFormat("%.1f", 100.0 * node.uplinkBusy / horizon));
        row.push_back(strFormat("%.1f", 100.0 * node.downlinkBusy / horizon));
      } else {
        for (int i = 0; i < 6; ++i) row.push_back("");
      }
      table.addRow(std::move(row));
    }
  }
  table.render(out);
  for (const auto& node : stats.nodes) {
    if (node.requestsPending > 0)
      out << "WARNING: node " << node.rank << " has "
          << node.requestsPending << " pending request(s)\n";
  }
}

void writeStatsJson(std::ostream& out, const MachineStats& stats) {
  out << "{\n";
  out << "  \"machine\": \"" << stats.machineName << "\",\n";
  out << "  \"simulated_seconds\": " << stats.simulatedTime << ",\n";
  out << "  \"events_executed\": " << stats.eventsExecuted << ",\n";
  out << "  \"switch_packets_routed\": " << stats.switchPacketsRouted << ",\n";
  out << strFormat(
      "  \"switches\": {\"drops_no_route\": %llu, \"drops_queue\": %llu, "
      "\"credit_stalls\": %llu, \"queue_peak_pkts\": %llu},\n",
      (unsigned long long)stats.switches.dropsNoRoute,
      (unsigned long long)stats.switches.dropsQueue,
      (unsigned long long)stats.switches.creditStalls,
      (unsigned long long)stats.switches.queuePeakPackets);
  out << "  \"trace_dropped\": " << stats.traceDropped << ",\n";
  out << strFormat(
      "  \"faults\": {\"drops_injected\": %llu, \"corrupts_injected\": %llu, "
      "\"retransmits\": %llu, \"timeout_wakeups\": %llu, "
      "\"duplicates_filtered\": %llu},\n",
      (unsigned long long)stats.fault.dropsInjected,
      (unsigned long long)stats.fault.corruptsInjected,
      (unsigned long long)stats.fault.retransmits,
      (unsigned long long)stats.fault.timeoutWakeups,
      (unsigned long long)stats.fault.duplicatesFiltered);
  out << "  \"metrics\": ";
  metrics::writeJson(out, stats.metrics, 2);
  out << "\n}\n";
}

}  // namespace comb::report
