#include "report/figure.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace comb::report {

Figure::Figure(std::string id, std::string title, std::string xlabel,
               std::string ylabel)
    : id_(std::move(id)),
      title_(std::move(title)),
      xlabel_(std::move(xlabel)),
      ylabel_(std::move(ylabel)) {}

void Figure::addSeries(Series s) {
  COMB_REQUIRE(s.xs.size() == s.ys.size(),
               "figure series x/y mismatch: " + s.name);
  series_.push_back(std::move(s));
}

void Figure::render(std::ostream& out) const {
  out << "== " << id_ << ": " << title_ << " ==\n";
  PlotOptions opts;
  opts.logX = logX_;
  opts.xlabel = xlabel_;
  opts.ylabel = ylabel_;
  opts.ymin = ymin_;
  opts.ymax = ymax_;
  std::vector<PlotSeries> ps;
  for (const auto& s : series_) ps.push_back(PlotSeries{s.name, s.xs, s.ys});
  renderPlot(out, ps, opts);
  out << '\n';

  TextTable table([&] {
    std::vector<std::string> hdr{xlabel_};
    for (const auto& s : series_) hdr.push_back(s.name);
    return hdr;
  }());
  // Collate by x across series (series may have distinct x sets).
  std::vector<double> allX;
  for (const auto& s : series_)
    allX.insert(allX.end(), s.xs.begin(), s.xs.end());
  std::sort(allX.begin(), allX.end());
  allX.erase(std::unique(allX.begin(), allX.end()), allX.end());
  for (const double x : allX) {
    std::vector<std::string> row{strFormat("%.6g", x)};
    for (const auto& s : series_) {
      std::string cell = "-";
      for (std::size_t i = 0; i < s.xs.size(); ++i) {
        if (s.xs[i] == x) {
          cell = strFormat("%.4g", s.ys[i]);
          break;
        }
      }
      row.push_back(std::move(cell));
    }
    table.addRow(std::move(row));
  }
  table.render(out);
  if (!expectation_.empty())
    out << "\npaper: " << expectation_ << '\n';
  out << '\n';
}

void Figure::writeCsv(std::ostream& out) const {
  CsvWriter csv(out, {"series", xlabel_, ylabel_});
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.xs.size(); ++i)
      csv.row({s.name, strFormat("%.9g", s.xs[i]),
               strFormat("%.9g", s.ys[i])});
}

std::string Figure::writeCsvFile(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + id_ + ".csv";
  std::ofstream f(path);
  COMB_REQUIRE(f.good(), "cannot open " + path);
  writeCsv(f);
  return path;
}

}  // namespace comb::report
