// Result archives: the versioned JSON format behind the statistical
// regression gate.
//
// One archive = one bench invocation. It records, per sweep and per
// point, the raw per-repetition samples of every reported metric —
// not just their means — plus enough provenance (machine hash, seed,
// git SHA, build flags) for `comb compare` to decide whether two
// archives are comparable at all. See docs/regression_gating.md for the
// schema and the comparison semantics built on top of it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace comb::json {
class Value;
}

namespace comb::report {

/// Bumped whenever the schema changes shape; readers reject newer
/// versions instead of guessing.
inline constexpr int kArchiveVersion = 1;

/// One metric of one sweep point: the raw per-rep samples and the
/// direction a regression moves in.
struct ArchiveMetric {
  std::string name;
  bool higherIsBetter = true;
  /// Metric class for `comb compare --metric-class` filtering: "mean"
  /// (central-tendency metrics — the default, and what archives written
  /// before this field carry) or "tail" (latency-distribution percentile
  /// metrics such as recv_p999_us).
  std::string metricClass = "mean";
  std::vector<double> samples;
};

struct ArchivePoint {
  double x = 0.0;  ///< swept-axis value
  /// Adaptive-rep runs: whether the CI target was reached within the rep
  /// budget. Fixed-rep runs are always "converged".
  bool converged = true;
  std::vector<ArchiveMetric> metrics;
};

struct ArchiveSweep {
  std::string id;      ///< e.g. "polling/portals/100 KB"
  std::string xlabel;  ///< swept-axis name, e.g. "poll_interval_iters"
  std::string machine;
  std::string machineHash;  ///< backend::machineHash of the model used
  std::vector<ArchivePoint> points;
};

/// Where the numbers came from: stamped at build time (configure-time git
/// SHA + compiler flags) so an archive can never silently mix builds.
struct ArchiveProvenance {
  std::string suite;       ///< "comb <version>"
  std::string gitSha;      ///< configure-time HEAD, "unknown" outside git
  std::string buildFlags;  ///< build type + CXX flags
  /// Simulator-core shard count (--sim-jobs) the samples ran under. Part
  /// of the run's configuration identity: `comb compare` flags archives
  /// whose values differ. Archives written before this field default to 1
  /// (the serial core, which is what they ran).
  int simJobs = 1;
  /// Certified conservative lookahead (seconds) the sharded windows ran
  /// under: the scalar floor every cross-shard bound respects (the
  /// minimum fabric link latency, taken across the archive's machines
  /// when sweeps mix models). 0 for serial runs — the serial core has no
  /// window bound at all.
  double lookahead = 0.0;
  /// Which mechanism bounded the windows: "global-min" (the scalar
  /// fabric-wide minimum — serial runs and pre-matrix archives) or
  /// "matrix" (per-shard-pair bounds derived from the wired topology,
  /// every entry certified against the scalar floor above).
  std::string lookaheadSource = "global-min";
  /// Shard-worker pinning policy (--sim-affinity). Wall-time only —
  /// results are identical across policies — but stamped so performance
  /// comparisons can flag cross-policy runs.
  std::string simAffinity = "none";
  /// Largest executor shard imbalance observed across the archive's runs
  /// (max per-shard events / mean per-shard events; 1.0 = serial core or
  /// perfectly balanced shards). Deterministic — a pure function of the
  /// program and partition — so it is part of the run's identity.
  double shardImbalance = 1.0;
  /// Percentile base of the archived tail-class metrics. Empty for
  /// archives written before tail metrics existed; `comb compare` notes
  /// when two non-empty bases differ.
  std::string tailPercentiles;
  /// Transport stack the archive's sweeps ran on ("gm", "portals",
  /// "progress_thread", "rdma", or "mixed" when sweeps span stacks).
  /// Empty for archives written before the field existed; `comb compare`
  /// notes when two non-empty stacks differ.
  std::string stack;
};

/// The percentile base this build's tail metrics are computed on.
inline constexpr const char* kTailPercentiles = "p50,p90,p99,p999";

/// The build stamp of this binary.
ArchiveProvenance buildProvenance();

/// Echo of the repetition policy the samples were collected under.
struct ArchiveRepInfo {
  bool adaptive = false;
  int reps = 1;
  int minReps = 3;
  int maxReps = 20;
  double ciTarget = 0.05;
};

struct Archive {
  int version = kArchiveVersion;
  std::string bench;  ///< bench id, e.g. "fig04"; also the file stem
  std::uint64_t seed = 0;
  ArchiveProvenance provenance;
  ArchiveRepInfo rep;
  std::vector<ArchiveSweep> sweeps;
};

/// Serialize as JSON (stable member order, round-trip-exact doubles).
void writeArchive(std::ostream& out, const Archive& archive);

/// Write `<dir>/<bench>.json`, creating the directory. Returns the path.
std::string writeArchiveFile(const Archive& archive, const std::string& dir);

/// Deserialize; throws comb::ConfigError on schema or version mismatches.
Archive parseArchive(const json::Value& root, const std::string& sourceName);
Archive loadArchiveFile(const std::string& path);

}  // namespace comb::report
