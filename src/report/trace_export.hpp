// Trace export: turn a sim::TraceLog into files other tools understand.
//
// writeChromeTrace emits the Chrome trace-event JSON format (also consumed
// by Perfetto's legacy importer and `chrome://tracing`): each simulated
// node becomes a process, each lifecycle layer (host / library / NIC /
// wire) becomes a named thread track inside it, and records map to
// duration ("B"/"E"), complete ("X"), and instant ("i") events with
// timestamps in microseconds of virtual time.
//
// writeTraceSummary is the text-mode view behind `comb trace --summary`:
// per-category and per-node record counts plus the top-N most
// time-consuming spans.
#pragma once

#include <ostream>

#include "sim/tracelog.hpp"

namespace comb::report {

/// Chrome trace-event JSON ("traceEvents" object form, with COMB metadata
/// recording ring drops so truncated timelines are detectable).
void writeChromeTrace(std::ostream& out, const sim::TraceLog& log);

/// Lifecycle-layer track id for a category (1 = host, 2 = library,
/// 3 = NIC, 4 = wire). Exposed for tests.
int traceLayer(sim::TraceCategory cat);
const char* traceLayerName(int layer);

/// Text summary: per-category / per-node counts and the `topN` longest
/// spans (Begin/End pairs and Complete records).
void writeTraceSummary(std::ostream& out, const sim::TraceLog& log,
                       std::size_t topN = 10);

}  // namespace comb::report
