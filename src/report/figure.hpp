// Figure: a reproduced paper figure — titled series plus rendering to an
// ASCII plot, an aligned data table, and CSV.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/ascii_plot.hpp"

namespace comb::report {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

class Figure {
 public:
  Figure(std::string id, std::string title, std::string xlabel,
         std::string ylabel);

  Figure& logX(bool v = true) {
    logX_ = v;
    return *this;
  }
  Figure& yRange(double lo, double hi) {
    ymin_ = lo;
    ymax_ = hi;
    return *this;
  }
  /// One-line statement of what the paper's version of this figure shows,
  /// printed with the reproduction for side-by-side judgement.
  Figure& paperExpectation(std::string text) {
    expectation_ = std::move(text);
    return *this;
  }

  void addSeries(Series s);
  const std::vector<Series>& series() const { return series_; }
  const std::string& id() const { return id_; }
  const std::string& title() const { return title_; }

  /// ASCII plot + data table + expectation note.
  void render(std::ostream& out) const;

  /// CSV: one row per (series, x, y).
  void writeCsv(std::ostream& out) const;
  /// Write CSV to `<dir>/<id>.csv`; creates the directory. Returns path.
  std::string writeCsvFile(const std::string& dir) const;

 private:
  std::string id_;
  std::string title_;
  std::string xlabel_;
  std::string ylabel_;
  std::string expectation_;
  bool logX_ = false;
  double ymin_ = PlotOptions::kAuto;
  double ymax_ = PlotOptions::kAuto;
  std::vector<Series> series_;
};

}  // namespace comb::report
