// Native thread backend: COMB on real OS threads and real wall-clock time.
//
// This is the backend that makes the suite "portable" in the paper's
// sense — the same COMB method templates that run on the simulator run
// here against an in-process shared-memory message layer. The layer
// reuses the exact MatchEngine the simulated transports use and exposes
// the same progress-model dichotomy:
//   * offload = true  — the sender's thread delivers and matches directly
//     into the receiver (progress independent of the receiver's calls:
//     application offload, Portals-like);
//   * offload = false — the sender only drops the message into the
//     receiver's inbox; matching happens when the *receiver* makes a
//     library call (library-driven progress, GM-like).
//
// Timing fidelity is whatever the host gives you (on a single-core CI box
// two busy threads time-slice); correctness and method behaviour are
// exact, which is what the tests assert.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "backend/immediate.hpp"
#include "common/units.hpp"
#include "mpi/comm.hpp"
#include "mpi/match.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "transport/data.hpp"

namespace comb::backend {

class ThreadCluster;

/// Placeholder result so Immediate<Unit> mirrors sim::Task<void> call
/// sites.
struct Unit {};

/// MiniMPI-compatible API over shared memory. One instance per rank; all
/// methods return Immediate<> so COMB's co_await-based templates work.
class ThreadMpi {
 public:
  ThreadMpi(ThreadCluster& cluster, mpi::Rank rank, int size);

  const mpi::Comm& world() const { return world_; }
  mpi::Rank rank() const { return world_.rank(); }
  int size() const { return world_.size(); }

  Immediate<mpi::Request> isend(const mpi::Comm& comm, mpi::Rank dst,
                                mpi::Tag tag, Bytes bytes,
                                std::span<const std::byte> data = {});
  Immediate<mpi::Request> irecv(const mpi::Comm& comm, mpi::Rank src,
                                mpi::Tag tag, Bytes maxBytes,
                                std::span<std::byte> dstBuf = {});
  Immediate<bool> test(mpi::Request& req, mpi::Status* status = nullptr);
  Immediate<Unit> wait(mpi::Request& req, mpi::Status* status = nullptr);
  Immediate<std::vector<std::size_t>> testsome(
      std::span<mpi::Request> reqs,
      std::vector<mpi::Status>* statuses = nullptr);
  Immediate<Unit> waitall(std::span<mpi::Request> reqs);
  Immediate<Unit> send(const mpi::Comm& comm, mpi::Rank dst, mpi::Tag tag,
                       Bytes bytes, std::span<const std::byte> data = {});
  Immediate<Unit> recv(const mpi::Comm& comm, mpi::Rank src, mpi::Tag tag,
                       Bytes maxBytes, std::span<std::byte> dstBuf = {},
                       mpi::Status* status = nullptr);
  Immediate<bool> iprobe(const mpi::Comm& comm, mpi::Rank src, mpi::Tag tag,
                         mpi::Status* status = nullptr);
  Immediate<bool> cancel(mpi::Request& req);
  Immediate<Unit> barrier(const mpi::Comm& comm);
  Immediate<Unit> progressOnce();

  bool peekDone(mpi::Request req);
  std::size_t pendingRequests();

 private:
  friend class ThreadCluster;
  friend class ThreadProc;  // reads activity_ for waitActivity()

  struct ReqState {
    bool isRecv = false;
    bool done = false;
    mpi::Status status;
    std::span<std::byte> userDst;
  };

  struct InboxMsg {
    mpi::Envelope env;
    Bytes bytes = 0;
    transport::DataBuffer data;
  };

  void progressLocked();  // requires mu_ held
  void completeRecvLocked(std::uint64_t handle, const mpi::Envelope& env,
                          Bytes bytes, const transport::DataBuffer& data);
  /// Deliver from a (possibly remote) sender thread.
  void acceptMessage(InboxMsg msg, bool senderMatches);

  ThreadCluster& cluster_;
  mpi::Comm world_;

  std::mutex mu_;
  mpi::MatchEngine match_;
  std::deque<InboxMsg> inbox_;  // undelivered raw messages (no-offload mode)
  struct UnexRec {
    mpi::Envelope env;
    Bytes bytes;
    transport::DataBuffer data;
  };
  std::unordered_map<std::uint64_t, UnexRec> unexpected_;
  std::unordered_map<std::uint64_t, ReqState> states_;
  std::uint64_t nextReq_ = 1;
  std::uint64_t nextUnexId_ = 1;

  std::atomic<std::uint64_t> activity_{0};
};

/// Per-rank environment satisfying the COMB backend concept.
class ThreadProc {
 public:
  ThreadProc(ThreadCluster& cluster, ThreadMpi& mpiApi, double secondsPerIter)
      : cluster_(&cluster), mpi_(&mpiApi), spi_(secondsPerIter) {}

  Time wtime() const;
  Immediate<Unit> work(std::uint64_t iters) const;
  double secondsPerIter() const { return spi_; }
  ThreadMpi& mpi() { return *mpi_; }
  int rank() const { return mpi_->rank(); }
  int size() const { return mpi_->size(); }

  std::uint64_t activityVersion() const;
  Immediate<Unit> waitActivity(std::uint64_t seen) const;

  /// Phase markers exist for backend-concept parity with SimProc; the
  /// native backend has no trace log, so they are no-ops.
  void phaseBegin(std::string_view) {}
  void phaseEnd(std::string_view) {}

 private:
  ThreadCluster* cluster_;
  ThreadMpi* mpi_;
  double spi_;
};

class ThreadCluster {
 public:
  /// `offload`: progress model (see file comment). The work loop is
  /// calibrated at construction.
  explicit ThreadCluster(int ranks, bool offload = true);
  ~ThreadCluster();
  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  bool offload() const { return offload_; }
  ThreadMpi& mpi(int rank) { return *ranks_[static_cast<std::size_t>(rank)]; }
  ThreadProc& proc(int rank) {
    return *procs_[static_cast<std::size_t>(rank)];
  }
  double secondsPerIter() const { return secondsPerIter_; }

  /// Run one std::function per rank, each on its own thread; joins all.
  /// Exceptions from any rank are rethrown (first wins).
  void run(const std::vector<std::function<void(ThreadProc&)>>& mains);

  /// Calibrated busy loop (also used by ThreadProc::work).
  static void spin(std::uint64_t iters);

  std::barrier<>& barrierFor() { return *barrier_; }

 private:
  friend class ThreadMpi;

  bool offload_;
  double secondsPerIter_;
  std::vector<std::unique_ptr<ThreadMpi>> ranks_;
  std::vector<std::unique_ptr<ThreadProc>> procs_;
  std::unique_ptr<std::barrier<>> barrier_;
};

}  // namespace comb::backend
