// Immediate<T>: an awaitable that is always ready.
//
// The native thread backend executes every operation synchronously inside
// the call itself; wrapping results in Immediate lets the COMB method
// templates (written with co_await) run unchanged on real threads — the
// coroutine simply never suspends (sim::Task::runSync drives it).
#pragma once

#include <utility>

namespace comb::backend {

template <typename T>
struct Immediate {
  T value;
  bool await_ready() const noexcept { return true; }
  void await_suspend(auto) const noexcept {}
  T await_resume() { return std::move(value); }
};

template <>
struct Immediate<void> {
  bool await_ready() const noexcept { return true; }
  void await_suspend(auto) const noexcept {}
  void await_resume() const noexcept {}
};

template <typename T>
Immediate<T> ready(T v) {
  return Immediate<T>{std::move(v)};
}
inline Immediate<void> ready() { return {}; }

}  // namespace comb::backend
