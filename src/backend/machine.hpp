// Machine presets: the two systems the paper benchmarks, expressed as
// parameter sets for the simulator.
//
// Both presets share the physical substrate from §3 of the paper — two
// 500 MHz Pentium III nodes, Myrinet LANai 7.2 NICs on 32-bit/33 MHz PCI,
// one 8-port switch — and differ only in the software stack on top, which
// is exactly the comparison COMB was built to make.
#pragma once

#include <string>

#include "common/units.hpp"
#include "host/noise.hpp"
#include "net/fabric.hpp"
#include "transport/gm.hpp"
#include "transport/portals.hpp"
#include "transport/progress_thread.hpp"
#include "transport/rdma.hpp"

namespace comb::backend {

/// The 4-way progress-model taxonomy: library-driven (Gm),
/// kernel/interrupt-driven (Portals), software progress engine
/// (ProgressThread), and NIC-hardware offload (Rdma).
enum class TransportKind { Gm, Portals, ProgressThread, Rdma };

const char* transportKindName(TransportKind k);

struct MachineConfig {
  std::string name;
  TransportKind kind = TransportKind::Gm;
  net::FabricConfig fabric;
  transport::GmConfig gm;
  transport::PortalsConfig portals;
  transport::ProgressThreadConfig progress;
  transport::RdmaConfig rdma;
  /// Wall-clock seconds per iteration of the benchmark's calibrated work
  /// loop (~2 cycles/iteration on the 500 MHz P3).
  double secondsPerWorkIter = 4e-9;

  /// SMP extension (the paper's §7 future work). The paper's nodes are
  /// uniprocessors; setting cpusPerNode > 1 adds idle CPUs, and nicCpu
  /// selects which one services kernel/NIC interrupt work (Portals) or
  /// hosts the dedicated progress engine (ProgressThread with
  /// dedicatedCore) — GM and Rdma raise no interrupts and run no engine.
  /// The application always runs on CPU 0.
  int cpusPerNode = 1;
  int nicCpu = 0;

  /// OS-noise injection on every CPU (host/noise.hpp): daemon preemption
  /// windows plus interrupt coalescing. Disabled by default; a disabled
  /// spec leaves the machine signature (and hash) unchanged.
  host::NoiseSpec noise;
};

/// Canonical one-line-per-field text serialization of every model
/// parameter. Two configs produce the same signature iff they describe
/// the same machine; result archives store a hash of it so `comb compare`
/// can tell "same machine, regressed code" from "different machine".
std::string machineSignature(const MachineConfig& m);

/// FNV-1a hash of machineSignature, formatted as 16 hex digits.
std::string machineHash(const MachineConfig& m);

/// GM 1.4 + MPICH/GM 1.2..4: OS-bypass, no application offload.
MachineConfig gmMachine();

/// Portals 3.0 kernel-module implementation + MPICH/Portals: interrupt-
/// driven with kernel-buffer copies, full application offload.
MachineConfig portalsMachine();

/// GM-like library stack + a software progress engine on its own core
/// (cpusPerNode = 2, engine on CPU 1): application offload without
/// interrupts, at the price of a core.
MachineConfig progressThreadMachine();

/// The same stack with the engine oversubscribed onto the application
/// core: engine cycles preempt user compute.
MachineConfig progressOversubMachine();

/// RDMA-style NIC offload: hardware matching, autonomous rendezvous, no
/// interrupts, host fallback only on unexpected messages.
MachineConfig rdmaMachine();

}  // namespace comb::backend
