#include "backend/machine.hpp"

#include <sstream>

#include "common/string_util.hpp"

namespace comb::backend {

using namespace comb::units;

const char* transportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::Gm: return "gm";
    case TransportKind::Portals: return "portals";
    case TransportKind::ProgressThread: return "progress_thread";
    case TransportKind::Rdma: return "rdma";
  }
  return "?";
}

namespace {

net::FabricConfig paperFabric() {
  net::FabricConfig f;
  // Sustained node<->switch DMA rate. The LANai 7 link is 160 MB/s but the
  // 32-bit/33 MHz PCI bus and GM framing hold sustained transfers near
  // 90 MB/s, which is what puts MPICH/GM's plateau at the paper's ~88 MB/s.
  f.link.rate = 90e6;
  f.link.latency = 2.0_us;      // wire + NIC receive processing
  f.sw.routingLatency = 0.5_us; // Myrinet cut-through
  // The paper's 8-port Myrinet crossbar is full-duplex; the port budget
  // is unidirectional (a node's uplink and downlink each take one), so
  // 8 duplex ports = 16 — hosting up to 8 nodes, as on the real switch.
  f.sw.ports = 16;
  f.mtu = 4096;                 // GM fragment size
  f.perPacketHeader = 64;
  return f;
}

}  // namespace

std::string machineSignature(const MachineConfig& m) {
  // %.17g round-trips doubles exactly, so the signature (and its hash)
  // changes iff some model parameter changes.
  std::ostringstream os;
  const auto field = [&os](const char* key, double v) {
    os << key << '=' << strFormat("%.17g", v) << '\n';
  };
  os << "name=" << m.name << '\n';
  os << "transport=" << transportKindName(m.kind) << '\n';
  field("seconds_per_work_iter", m.secondsPerWorkIter);
  os << "cpus_per_node=" << m.cpusPerNode << '\n';
  os << "nic_cpu=" << m.nicCpu << '\n';

  const auto& f = m.fabric;
  field("fabric.link_rate", f.link.rate);
  field("fabric.link_latency", f.link.latency);
  field("fabric.switch_latency", f.sw.routingLatency);
  os << "fabric.switch_ports=" << f.sw.ports << '\n';
  os << "fabric.mtu=" << f.mtu << '\n';
  os << "fabric.packet_header=" << f.perPacketHeader << '\n';
  os << "topo.kind=" << net::topologyKindName(f.topo.kind) << '\n';
  os << "topo.nodes_per_switch=" << f.topo.nodesPerSwitch << '\n';
  os << "topo.spines=" << f.topo.spines << '\n';
  os << "topo.groups=" << f.topo.groups << '\n';
  os << "topo.routers_per_group=" << f.topo.routersPerGroup << '\n';
  field("topo.trunk_rate_scale", f.topo.trunkRateScale);
  os << "queue.depth_packets=" << f.sw.queue.depthPackets << '\n';
  os << "queue.depth_bytes=" << f.sw.queue.depthBytes << '\n';
  os << "queue.arbitration=" << net::arbitrationName(f.sw.queue.arbitration)
     << '\n';
  os << "queue.backpressure="
     << net::backpressureName(f.sw.queue.backpressure) << '\n';
  field("fault.drop", f.link.fault.dropProb);
  os << "fault.burst=" << f.link.fault.burstLen << '\n';
  field("fault.corrupt", f.link.fault.corruptProb);
  field("fault.jitter", f.link.fault.jitter);
  os << "fault.seed=" << f.link.fault.seed << '\n';

  // Noise fields enter the signature only when the injector does
  // anything, so every historical (noise-free) machine keeps its hash.
  if (m.noise.active()) {
    field("noise.period", m.noise.period);
    field("noise.duration", m.noise.duration);
    field("noise.jitter", m.noise.jitter);
    os << "noise.daemons=" << m.noise.daemons << '\n';
    field("noise.coalesce", m.noise.coalesce);
    os << "noise.seed=" << m.noise.seed << '\n';
  }

  const auto relFields = [&](const char* prefix,
                             const transport::ReliabilityConfig& rel) {
    os << prefix << ".ack_bytes=" << rel.ackBytes << '\n';
    os << prefix << ".max_retries=" << rel.maxRetries << '\n';
    field((std::string(prefix) + ".ack_timeout").c_str(), rel.ackTimeout);
    field((std::string(prefix) + ".backoff").c_str(), rel.backoff);
  };
  const auto gmFields = [&](const std::string& p,
                            const transport::GmConfig& g) {
    os << p << ".eager_threshold=" << g.eagerThreshold << '\n';
    field((p + ".post_overhead").c_str(), g.postOverhead);
    field((p + ".eager_tx_copy_rate").c_str(), g.eagerTxCopyRate);
    field((p + ".eager_rx_copy_rate").c_str(), g.eagerRxCopyRate);
    field((p + ".lib_call_cost").c_str(), g.libCallCost);
    field((p + ".ctrl_handle_cost").c_str(), g.ctrlHandleCost);
    os << p << ".ctrl_bytes=" << g.ctrlBytes << '\n';
    relFields((p + ".rel").c_str(), g.rel);
  };
  switch (m.kind) {
    case TransportKind::Gm:
      gmFields("gm", m.gm);
      break;
    case TransportKind::Portals:
      field("portals.post_syscall", m.portals.postSyscall);
      field("portals.post_kernel", m.portals.postKernel);
      field("portals.lib_call_cost", m.portals.libCallCost);
      field("portals.unexpected_copy_rate", m.portals.unexpectedCopyRate);
      field("portals.per_frag_tx", m.portals.nic.perFragTx);
      field("portals.per_frag_rx", m.portals.nic.perFragRx);
      field("portals.kernel_copy_rate", m.portals.nic.kernelCopyRate);
      relFields("portals.rel", m.portals.rel);
      break;
    case TransportKind::ProgressThread:
      gmFields("progress", m.progress.proto);
      os << "progress.placement="
         << (m.progress.dedicatedCore ? "dedicated" : "oversubscribed")
         << '\n';
      field("progress.poll_period", m.progress.pollPeriod);
      field("progress.wakeup_latency", m.progress.wakeupLatency);
      field("progress.poll_cost", m.progress.pollCost);
      field("progress.handoff_penalty", m.progress.handoffPenalty);
      break;
    case TransportKind::Rdma:
      os << "rdma.eager_threshold=" << m.rdma.eagerThreshold << '\n';
      field("rdma.post_overhead", m.rdma.postOverhead);
      field("rdma.lib_call_cost", m.rdma.libCallCost);
      field("rdma.match_delay", m.rdma.matchDelay);
      field("rdma.unexpected_copy_rate", m.rdma.unexpectedCopyRate);
      os << "rdma.ctrl_bytes=" << m.rdma.ctrlBytes << '\n';
      field("rdma.per_frag_tx", m.rdma.nic.perFragTx);
      relFields("rdma.rel", m.rdma.rel);
      break;
  }
  return os.str();
}

std::string machineHash(const MachineConfig& m) {
  const std::string sig = machineSignature(m);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : sig) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return strFormat("%016llx", static_cast<unsigned long long>(h));
}

MachineConfig gmMachine() {
  MachineConfig m;
  m.name = "gm";
  m.kind = TransportKind::Gm;
  m.fabric = paperFabric();
  m.gm = transport::GmConfig{};  // defaults documented in gm.hpp
  m.secondsPerWorkIter = 4e-9;
  return m;
}

MachineConfig portalsMachine() {
  MachineConfig m;
  m.name = "portals";
  m.kind = TransportKind::Portals;
  m.fabric = paperFabric();
  m.portals = transport::PortalsConfig{};  // defaults in portals.hpp
  m.secondsPerWorkIter = 4e-9;
  return m;
}

MachineConfig progressThreadMachine() {
  MachineConfig m;
  m.name = "progress_thread";
  m.kind = TransportKind::ProgressThread;
  m.fabric = paperFabric();
  m.progress = transport::ProgressThreadConfig{};  // defaults in header
  // The engine needs a core of its own: a second CPU per node, with the
  // NIC-servicing slot (here, the engine) on CPU 1.
  m.cpusPerNode = 2;
  m.nicCpu = 1;
  m.secondsPerWorkIter = 4e-9;
  return m;
}

MachineConfig progressOversubMachine() {
  MachineConfig m;
  m.name = "progress_oversub";
  m.kind = TransportKind::ProgressThread;
  m.fabric = paperFabric();
  m.progress = transport::ProgressThreadConfig{};
  m.progress.dedicatedCore = false;  // engine steals cycles from CPU 0
  m.secondsPerWorkIter = 4e-9;
  return m;
}

MachineConfig rdmaMachine() {
  MachineConfig m;
  m.name = "rdma";
  m.kind = TransportKind::Rdma;
  m.fabric = paperFabric();
  m.rdma = transport::RdmaConfig{};  // defaults in rdma.hpp
  m.secondsPerWorkIter = 4e-9;
  return m;
}

}  // namespace comb::backend
