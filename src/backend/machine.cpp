#include "backend/machine.hpp"

namespace comb::backend {

using namespace comb::units;

const char* transportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::Gm: return "gm";
    case TransportKind::Portals: return "portals";
  }
  return "?";
}

namespace {

net::FabricConfig paperFabric() {
  net::FabricConfig f;
  // Sustained node<->switch DMA rate. The LANai 7 link is 160 MB/s but the
  // 32-bit/33 MHz PCI bus and GM framing hold sustained transfers near
  // 90 MB/s, which is what puts MPICH/GM's plateau at the paper's ~88 MB/s.
  f.link.rate = 90e6;
  f.link.latency = 2.0_us;      // wire + NIC receive processing
  f.sw.routingLatency = 0.5_us; // Myrinet cut-through
  f.sw.ports = 8;
  f.mtu = 4096;                 // GM fragment size
  f.perPacketHeader = 64;
  return f;
}

}  // namespace

MachineConfig gmMachine() {
  MachineConfig m;
  m.name = "gm";
  m.kind = TransportKind::Gm;
  m.fabric = paperFabric();
  m.gm = transport::GmConfig{};  // defaults documented in gm.hpp
  m.secondsPerWorkIter = 4e-9;
  return m;
}

MachineConfig portalsMachine() {
  MachineConfig m;
  m.name = "portals";
  m.kind = TransportKind::Portals;
  m.fabric = paperFabric();
  m.portals = transport::PortalsConfig{};  // defaults in portals.hpp
  m.secondsPerWorkIter = 4e-9;
  return m;
}

}  // namespace comb::backend
