#include "backend/thread_cluster.hpp"

#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "common/log.hpp"

namespace comb::backend {

namespace {

double wallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double calibrateSpin() {
  // One calibration per process: time a fixed spin and derive s/iter.
  static const double perIter = [] {
    constexpr std::uint64_t kIters = 20'000'000;
    const double t0 = wallSeconds();
    ThreadCluster::spin(kIters);
    const double t1 = wallSeconds();
    return (t1 - t0) / static_cast<double>(kIters);
  }();
  return perIter;
}

}  // namespace

void ThreadCluster::spin(std::uint64_t iters) {
  // A volatile sink keeps the loop from being optimized away without the
  // deprecated volatile-increment idiom.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) sink = i;
  (void)sink;
}

ThreadCluster::ThreadCluster(int ranks, bool offload)
    : offload_(offload), secondsPerIter_(calibrateSpin()) {
  COMB_REQUIRE(ranks >= 1, "cluster needs at least one rank");
  barrier_ = std::make_unique<std::barrier<>>(ranks);
  for (int r = 0; r < ranks; ++r)
    ranks_.push_back(std::make_unique<ThreadMpi>(*this, r, ranks));
  for (int r = 0; r < ranks; ++r)
    procs_.push_back(std::make_unique<ThreadProc>(
        *this, *ranks_[static_cast<std::size_t>(r)], secondsPerIter_));
}

ThreadCluster::~ThreadCluster() = default;

void ThreadCluster::run(
    const std::vector<std::function<void(ThreadProc&)>>& mains) {
  COMB_REQUIRE(static_cast<int>(mains.size()) == size(),
               "need exactly one main per rank");
  std::vector<std::exception_ptr> errors(mains.size());
  std::vector<std::thread> threads;
  threads.reserve(mains.size());
  for (std::size_t r = 0; r < mains.size(); ++r) {
    threads.emplace_back([this, r, &mains, &errors] {
      try {
        mains[r](*procs_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

// --- ThreadProc -------------------------------------------------------------

Time ThreadProc::wtime() const { return wallSeconds(); }

Immediate<Unit> ThreadProc::work(std::uint64_t iters) const {
  ThreadCluster::spin(iters);
  return {};
}

std::uint64_t ThreadProc::activityVersion() const {
  return mpi_->activity_.load(std::memory_order_acquire);
}

Immediate<Unit> ThreadProc::waitActivity(std::uint64_t seen) const {
  while (mpi_->activity_.load(std::memory_order_acquire) == seen)
    std::this_thread::yield();
  return {};
}

// --- ThreadMpi ---------------------------------------------------------------

namespace {

std::vector<mpi::Rank> iotaRanks(int n) {
  std::vector<mpi::Rank> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

}  // namespace

ThreadMpi::ThreadMpi(ThreadCluster& cluster, mpi::Rank rank, int size)
    : cluster_(cluster), world_(mpi::Comm(0, iotaRanks(size), rank)) {}

void ThreadMpi::completeRecvLocked(std::uint64_t handle,
                                   const mpi::Envelope& env, Bytes bytes,
                                   const transport::DataBuffer& data) {
  const auto it = states_.find(handle);
  COMB_ASSERT(it != states_.end(), "completion for unknown request");
  ReqState& st = it->second;
  COMB_ASSERT(st.isRecv && !st.done, "bad completion target");
  st.done = true;
  st.status = mpi::Status{env.srcRank, env.tag, bytes};
  transport::deliverData(data, st.userDst);
}

void ThreadMpi::progressLocked() {
  while (!inbox_.empty()) {
    InboxMsg msg = std::move(inbox_.front());
    inbox_.pop_front();
    if (auto rec = match_.matchArrival(msg.env)) {
      COMB_ASSERT(msg.bytes <= rec->maxBytes,
                  "message exceeds posted receive buffer");
      completeRecvLocked(rec->cookie, msg.env, msg.bytes, msg.data);
    } else {
      const std::uint64_t id = nextUnexId_++;
      unexpected_[id] = UnexRec{msg.env, msg.bytes, msg.data};
      match_.addUnexpected(msg.env, msg.bytes, id);
    }
  }
}

void ThreadMpi::acceptMessage(InboxMsg msg, bool senderMatches) {
  {
    std::lock_guard lock(mu_);
    if (senderMatches) {
      // Application offload: the sender's thread performs the match, so
      // the receive completes with no receiver-side library call.
      if (auto rec = match_.matchArrival(msg.env)) {
        COMB_ASSERT(msg.bytes <= rec->maxBytes,
                    "message exceeds posted receive buffer");
        completeRecvLocked(rec->cookie, msg.env, msg.bytes, msg.data);
      } else {
        const std::uint64_t id = nextUnexId_++;
        unexpected_[id] = UnexRec{msg.env, msg.bytes, msg.data};
        match_.addUnexpected(msg.env, msg.bytes, id);
      }
    } else {
      // Library-driven progress: park the bytes until the receiver calls
      // into the library.
      inbox_.push_back(std::move(msg));
    }
  }
  activity_.fetch_add(1, std::memory_order_release);
}

Immediate<mpi::Request> ThreadMpi::isend(const mpi::Comm& comm, mpi::Rank dst,
                                         mpi::Tag tag, Bytes bytes,
                                         std::span<const std::byte> data) {
  COMB_REQUIRE(data.empty() || data.size() == bytes,
               "payload span size must equal the message byte count");
  mpi::Request req;
  {
    std::lock_guard lock(mu_);
    req.id = nextReq_++;
    // Buffered-send semantics: locally complete once the payload is
    // captured.
    states_[req.id] = ReqState{false, true, mpi::Status{}, {}};
  }
  InboxMsg msg;
  msg.env = mpi::Envelope{comm.id(), comm.rank(), tag};
  msg.bytes = bytes;
  msg.data = transport::captureData(data);
  cluster_.mpi(comm.worldRank(dst)).acceptMessage(std::move(msg),
                                                  cluster_.offload());
  activity_.fetch_add(1, std::memory_order_release);
  return ready(req);
}

Immediate<mpi::Request> ThreadMpi::irecv(const mpi::Comm& comm, mpi::Rank src,
                                         mpi::Tag tag, Bytes maxBytes,
                                         std::span<std::byte> dstBuf) {
  COMB_REQUIRE(dstBuf.empty() || dstBuf.size() >= maxBytes,
               "receive buffer smaller than maxBytes");
  std::lock_guard lock(mu_);
  const mpi::Request req{nextReq_++};
  states_[req.id] = ReqState{true, false, mpi::Status{}, dstBuf};
  progressLocked();  // a post is a library call: drain the inbox first
  const mpi::Pattern pattern{comm.id(), src, tag};
  if (auto u = match_.matchUnexpected(pattern)) {
    const auto it = unexpected_.find(u->xportHandle);
    COMB_ASSERT(it != unexpected_.end(), "stale unexpected record");
    COMB_ASSERT(it->second.bytes <= maxBytes,
                "unexpected message exceeds posted receive buffer");
    completeRecvLocked(req.id, it->second.env, it->second.bytes,
                       it->second.data);
    unexpected_.erase(it);
  } else {
    match_.postRecv(pattern, maxBytes, req.id);
  }
  return ready(req);
}

Immediate<bool> ThreadMpi::test(mpi::Request& req, mpi::Status* status) {
  COMB_REQUIRE(req.valid(), "test on an invalid request");
  std::lock_guard lock(mu_);
  progressLocked();
  const auto it = states_.find(req.id);
  COMB_REQUIRE(it != states_.end(), "unknown request");
  if (!it->second.done) return ready(false);
  if (status) *status = it->second.status;
  states_.erase(it);
  req.id = 0;
  return ready(true);
}

Immediate<Unit> ThreadMpi::wait(mpi::Request& req, mpi::Status* status) {
  while (true) {
    auto done = test(req, status);
    if (done.value) return {};
    std::this_thread::yield();
  }
}

Immediate<std::vector<std::size_t>> ThreadMpi::testsome(
    std::span<mpi::Request> reqs, std::vector<mpi::Status>* statuses) {
  std::lock_guard lock(mu_);
  progressLocked();
  std::vector<std::size_t> completed;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!reqs[i].valid()) continue;
    const auto it = states_.find(reqs[i].id);
    COMB_REQUIRE(it != states_.end(), "unknown request");
    if (!it->second.done) continue;
    if (statuses) statuses->push_back(it->second.status);
    states_.erase(it);
    reqs[i].id = 0;
    completed.push_back(i);
  }
  return ready(std::move(completed));
}

Immediate<Unit> ThreadMpi::waitall(std::span<mpi::Request> reqs) {
  for (auto& r : reqs) {
    if (r.valid()) wait(r);
  }
  return {};
}

Immediate<Unit> ThreadMpi::send(const mpi::Comm& comm, mpi::Rank dst,
                                mpi::Tag tag, Bytes bytes,
                                std::span<const std::byte> data) {
  auto req = isend(comm, dst, tag, bytes, data);
  wait(req.value);
  return {};
}

Immediate<Unit> ThreadMpi::recv(const mpi::Comm& comm, mpi::Rank src,
                                mpi::Tag tag, Bytes maxBytes,
                                std::span<std::byte> dstBuf,
                                mpi::Status* status) {
  auto req = irecv(comm, src, tag, maxBytes, dstBuf);
  wait(req.value, status);
  return {};
}

Immediate<bool> ThreadMpi::iprobe(const mpi::Comm& comm, mpi::Rank src,
                                  mpi::Tag tag, mpi::Status* status) {
  std::lock_guard lock(mu_);
  progressLocked();
  if (auto u = match_.peekUnexpected(mpi::Pattern{comm.id(), src, tag})) {
    if (status) *status = mpi::Status{u->env.srcRank, u->env.tag, u->bytes};
    return ready(true);
  }
  return ready(false);
}

Immediate<bool> ThreadMpi::cancel(mpi::Request& req) {
  COMB_REQUIRE(req.valid(), "cancel on an invalid request");
  std::lock_guard lock(mu_);
  progressLocked();
  const auto it = states_.find(req.id);
  COMB_REQUIRE(it != states_.end(), "unknown request");
  COMB_REQUIRE(it->second.isRecv, "only receives can be cancelled");
  if (it->second.done) return ready(false);
  const bool ok = match_.cancelRecv(req.id);
  if (ok) {
    states_.erase(it);
    req.id = 0;
  }
  return ready(ok);
}

Immediate<Unit> ThreadMpi::barrier(const mpi::Comm& comm) {
  COMB_REQUIRE(comm.id() == 0 && comm.size() == cluster_.size(),
               "thread backend barriers are world-only");
  cluster_.barrierFor().arrive_and_wait();
  return {};
}

Immediate<Unit> ThreadMpi::progressOnce() {
  std::lock_guard lock(mu_);
  progressLocked();
  return {};
}

bool ThreadMpi::peekDone(mpi::Request req) {
  std::lock_guard lock(mu_);
  const auto it = states_.find(req.id);
  return it != states_.end() && it->second.done;
}

std::size_t ThreadMpi::pendingRequests() {
  std::lock_guard lock(mu_);
  return states_.size();
}

}  // namespace comb::backend
