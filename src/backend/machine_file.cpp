#include "backend/machine_file.hpp"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "host/noise.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace comb::backend {

namespace {

struct Parsed {
  // (section, key) -> (value, lineNo)
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
      entries;
};

Parsed tokenize(std::istream& in, const std::string& source) {
  Parsed parsed;
  std::string section;  // "" = top level
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments (# and ;) and whitespace.
    if (const auto hash = line.find_first_of("#;"); hash != std::string::npos)
      line.erase(hash);
    const auto body = trim(line);
    if (body.empty()) continue;
    if (body.front() == '[') {
      COMB_REQUIRE(body.back() == ']',
                   strFormat("%s:%d: malformed section header", source.c_str(),
                             lineNo));
      section = std::string(trim(body.substr(1, body.size() - 2)));
      continue;
    }
    const auto eq = body.find('=');
    COMB_REQUIRE(eq != std::string::npos,
                 strFormat("%s:%d: expected key = value", source.c_str(),
                           lineNo));
    const auto key = std::string(trim(body.substr(0, eq)));
    const auto value = std::string(trim(body.substr(eq + 1)));
    COMB_REQUIRE(!key.empty() && !value.empty(),
                 strFormat("%s:%d: empty key or value", source.c_str(),
                           lineNo));
    const bool inserted =
        parsed.entries.emplace(std::pair{section, key}, std::pair{value, lineNo})
            .second;
    COMB_REQUIRE(inserted, strFormat("%s:%d: duplicate key '%s'",
                                     source.c_str(), lineNo, key.c_str()));
  }
  return parsed;
}

class Binder {
 public:
  Binder(Parsed parsed, std::string source)
      : parsed_(std::move(parsed)), source_(std::move(source)) {}

  void str(const std::string& section, const std::string& key,
           std::string& out) {
    if (auto v = take(section, key)) out = *v;
  }

  void number(const std::string& section, const std::string& key, double& out,
              double scale = 1.0) {
    if (auto v = take(section, key)) {
      char* end = nullptr;
      const double parsed = std::strtod(v->c_str(), &end);
      COMB_REQUIRE(end != v->c_str() && *end == '\0',
                   strFormat("%s: key '%s' expects a number, got '%s'",
                             source_.c_str(), key.c_str(), v->c_str()));
      out = parsed * scale;
    }
  }

  template <typename Int>
  void integer(const std::string& section, const std::string& key, Int& out) {
    double v = static_cast<double>(out);
    number(section, key, v);
    out = static_cast<Int>(v);
  }

  /// All keys must have been consumed.
  void finish() const {
    for (const auto& [sk, vl] : parsed_.entries) {
      if (!consumed_.count(sk)) {
        throw ConfigError(strFormat(
            "%s:%d: unknown key '%s' in section '[%s]'", source_.c_str(),
            vl.second, sk.second.c_str(), sk.first.c_str()));
      }
    }
  }

 private:
  std::optional<std::string> take(const std::string& section,
                                  const std::string& key) {
    const auto it = parsed_.entries.find(std::pair{section, key});
    if (it == parsed_.entries.end()) return std::nullopt;
    consumed_.insert(it->first);
    return it->second.first;
  }

  Parsed parsed_;
  std::string source_;
  std::set<std::pair<std::string, std::string>> consumed_;
};

}  // namespace

MachineConfig parseMachineFile(std::istream& in, const std::string& source) {
  Binder bind(tokenize(in, source), source);

  std::string transport = "gm";
  bind.str("", "transport", transport);
  // `stack` is an alias for `transport` (the docs talk about software
  // stacks); when both appear, `stack` wins.
  bind.str("", "stack", transport);
  MachineConfig m;
  if (transport == "gm") {
    m = gmMachine();
  } else if (transport == "portals") {
    m = portalsMachine();
  } else if (transport == "progress_thread") {
    m = progressThreadMachine();
  } else if (transport == "rdma") {
    m = rdmaMachine();
  } else {
    throw ConfigError(source +
                      ": transport must be 'gm', 'portals', "
                      "'progress_thread' or 'rdma', got '" +
                      transport + "'");
  }
  bind.str("", "name", m.name);

  constexpr double kMBps = 1e6;
  constexpr double kUs = 1e-6;
  constexpr double kNs = 1e-9;
  constexpr double kKB = 1024.0;

  bind.number("fabric", "link_rate_MBps", m.fabric.link.rate, kMBps);
  bind.number("fabric", "link_latency_us", m.fabric.link.latency, kUs);
  bind.number("fabric", "switch_latency_us", m.fabric.sw.routingLatency, kUs);
  bind.integer("fabric", "switch_ports", m.fabric.sw.ports);
  bind.integer("fabric", "mtu", m.fabric.mtu);
  bind.integer("fabric", "packet_header", m.fabric.perPacketHeader);

  // [topology]: switch-graph shape plus the finite-queue knobs (the
  // queue config is per-switch but belongs with the fabric shape).
  auto& topo = m.fabric.topo;
  std::string topoKind = net::topologyKindName(topo.kind);
  bind.str("topology", "kind", topoKind);
  if (topoKind == "single") {
    topo.kind = net::TopologyKind::SingleSwitch;
  } else if (topoKind == "fat-tree") {
    topo.kind = net::TopologyKind::FatTree;
  } else if (topoKind == "dragonfly") {
    topo.kind = net::TopologyKind::Dragonfly;
  } else {
    throw ConfigError(source +
                      ": topology kind must be 'single', 'fat-tree' or "
                      "'dragonfly', got '" +
                      topoKind + "'");
  }
  bind.integer("topology", "nodes_per_switch", topo.nodesPerSwitch);
  bind.integer("topology", "spines", topo.spines);
  bind.integer("topology", "groups", topo.groups);
  bind.integer("topology", "routers_per_group", topo.routersPerGroup);
  bind.number("topology", "trunk_rate_scale", topo.trunkRateScale);

  auto& queue = m.fabric.sw.queue;
  bind.integer("topology", "queue_depth_packets", queue.depthPackets);
  bind.integer("topology", "queue_depth_bytes", queue.depthBytes);
  std::string arb = net::arbitrationName(queue.arbitration);
  bind.str("topology", "arbitration", arb);
  if (arb == "rr") {
    queue.arbitration = net::Arbitration::RoundRobin;
  } else if (arb == "fifo") {
    queue.arbitration = net::Arbitration::Fifo;
  } else {
    throw ConfigError(source + ": arbitration must be 'rr' or 'fifo', got '" +
                      arb + "'");
  }
  std::string bp = net::backpressureName(queue.backpressure);
  bind.str("topology", "backpressure", bp);
  if (bp == "drop") {
    queue.backpressure = net::Backpressure::TailDrop;
  } else if (bp == "credit") {
    queue.backpressure = net::Backpressure::Credit;
  } else {
    throw ConfigError(source +
                      ": backpressure must be 'drop' or 'credit', got '" + bp +
                      "'");
  }

  bind.number("host", "seconds_per_iter_ns", m.secondsPerWorkIter, kNs);
  bind.integer("host", "cpus_per_node", m.cpusPerNode);
  bind.integer("host", "nic_cpu", m.nicCpu);

  auto& fault = m.fabric.link.fault;
  bind.number("fault", "drop", fault.dropProb);
  bind.integer("fault", "burst", fault.burstLen);
  bind.number("fault", "corrupt", fault.corruptProb);
  bind.number("fault", "jitter_us", fault.jitter, kUs);
  bind.integer("fault", "seed", fault.seed);

  bind.number("noise", "period_us", m.noise.period, kUs);
  bind.number("noise", "duration_us", m.noise.duration, kUs);
  bind.number("noise", "jitter", m.noise.jitter);
  bind.integer("noise", "daemons", m.noise.daemons);
  bind.number("noise", "coalesce_us", m.noise.coalesce, kUs);
  bind.integer("noise", "seed", m.noise.seed);

  // Retransmission protocol knobs land on whichever stack is active.
  auto& rel = m.kind == TransportKind::Gm             ? m.gm.rel
              : m.kind == TransportKind::Portals      ? m.portals.rel
              : m.kind == TransportKind::ProgressThread
                  ? m.progress.proto.rel
                  : m.rdma.rel;
  const std::string relSection =
      m.kind == TransportKind::Gm             ? "gm"
      : m.kind == TransportKind::Portals      ? "portals"
      : m.kind == TransportKind::ProgressThread ? "progress"
                                                : "rdma";
  bind.number(relSection, "ack_timeout_us", rel.ackTimeout, kUs);
  bind.integer(relSection, "ack_bytes", rel.ackBytes);
  bind.integer(relSection, "max_retries", rel.maxRetries);
  bind.number(relSection, "backoff", rel.backoff);

  // GM-protocol knobs apply both to the plain GM stack ([gm]) and to the
  // library core underneath the progress engine ([progress]).
  const auto gmProtoKeys = [&](const std::string& sec,
                               transport::GmConfig& g) {
    double thr = static_cast<double>(g.eagerThreshold);
    bind.number(sec, "eager_threshold_kb", thr, kKB);
    g.eagerThreshold = static_cast<Bytes>(thr);
    bind.number(sec, "post_overhead_us", g.postOverhead, kUs);
    bind.number(sec, "eager_tx_copy_MBps", g.eagerTxCopyRate, kMBps);
    bind.number(sec, "eager_rx_copy_MBps", g.eagerRxCopyRate, kMBps);
    bind.number(sec, "lib_call_cost_us", g.libCallCost, kUs);
    bind.number(sec, "ctrl_handle_cost_us", g.ctrlHandleCost, kUs);
  };
  if (m.kind == TransportKind::Gm) {
    gmProtoKeys("gm", m.gm);
  } else if (m.kind == TransportKind::Portals) {
    bind.number("portals", "post_syscall_us", m.portals.postSyscall, kUs);
    bind.number("portals", "post_kernel_us", m.portals.postKernel, kUs);
    bind.number("portals", "lib_call_cost_us", m.portals.libCallCost, kUs);
    bind.number("portals", "per_frag_tx_us", m.portals.nic.perFragTx, kUs);
    bind.number("portals", "per_frag_rx_us", m.portals.nic.perFragRx, kUs);
    bind.number("portals", "kernel_copy_MBps", m.portals.nic.kernelCopyRate,
                kMBps);
    bind.number("portals", "unexpected_copy_MBps",
                m.portals.unexpectedCopyRate, kMBps);
  } else if (m.kind == TransportKind::ProgressThread) {
    gmProtoKeys("progress", m.progress.proto);
    std::string placement =
        m.progress.dedicatedCore ? "dedicated" : "oversubscribed";
    bind.str("progress", "placement", placement);
    if (placement == "dedicated") {
      m.progress.dedicatedCore = true;
    } else if (placement == "oversubscribed") {
      m.progress.dedicatedCore = false;
    } else {
      throw ConfigError(source +
                        ": placement must be 'dedicated' or "
                        "'oversubscribed', got '" +
                        placement + "'");
    }
    // Switching a dedicated preset to oversubscribed (or vice versa)
    // from a machine file must also re-home the engine CPU. Re-binding
    // the [host] keys afterwards lets an explicit cpus_per_node /
    // nic_cpu still win (Binder reads are idempotent).
    if (m.progress.dedicatedCore) {
      if (m.cpusPerNode < 2) m.cpusPerNode = 2;
      if (m.nicCpu == 0) m.nicCpu = 1;
    } else {
      m.cpusPerNode = 1;
      m.nicCpu = 0;
    }
    bind.integer("host", "cpus_per_node", m.cpusPerNode);
    bind.integer("host", "nic_cpu", m.nicCpu);
    bind.number("progress", "poll_period_us", m.progress.pollPeriod, kUs);
    bind.number("progress", "wakeup_us", m.progress.wakeupLatency, kUs);
    bind.number("progress", "poll_cost_us", m.progress.pollCost, kUs);
    bind.number("progress", "handoff_us", m.progress.handoffPenalty, kUs);
  } else {
    double thr = static_cast<double>(m.rdma.eagerThreshold);
    bind.number("rdma", "eager_threshold_kb", thr, kKB);
    m.rdma.eagerThreshold = static_cast<Bytes>(thr);
    bind.number("rdma", "post_overhead_us", m.rdma.postOverhead, kUs);
    bind.number("rdma", "lib_call_cost_us", m.rdma.libCallCost, kUs);
    bind.number("rdma", "match_delay_us", m.rdma.matchDelay, kUs);
    bind.number("rdma", "per_frag_tx_us", m.rdma.nic.perFragTx, kUs);
    bind.number("rdma", "unexpected_copy_MBps", m.rdma.unexpectedCopyRate,
                kMBps);
  }
  bind.finish();

  net::validateFaultSpec(m.fabric.link.fault);
  host::validateNoiseSpec(m.noise);
  net::validateTopology(m.fabric.topo, m.fabric.sw);
  COMB_REQUIRE(rel.ackTimeout > 0 && rel.backoff >= 1.0 && rel.maxRetries >= 1,
               source + ": bad reliability configuration (ack_timeout_us > 0, "
                        "backoff >= 1, max_retries >= 1)");
  COMB_REQUIRE(m.fabric.link.rate > 0, source + ": link rate must be > 0");
  COMB_REQUIRE(m.secondsPerWorkIter > 0,
               source + ": seconds_per_iter must be > 0");
  COMB_REQUIRE(m.cpusPerNode >= 1 && m.nicCpu >= 0 &&
                   m.nicCpu < m.cpusPerNode,
               source + ": bad cpus_per_node / nic_cpu combination");
  if (m.kind == TransportKind::ProgressThread && m.progress.dedicatedCore) {
    COMB_REQUIRE(m.cpusPerNode >= 2 && m.nicCpu != 0,
                 source + ": dedicated progress placement needs "
                          "cpus_per_node >= 2 with nic_cpu != 0 (the "
                          "application owns CPU 0)");
  }
  return m;
}

MachineConfig loadMachineFile(const std::string& path) {
  std::ifstream f(path);
  COMB_REQUIRE(f.good(), "cannot open machine file: " + path);
  return parseMachineFile(f, path);
}

}  // namespace comb::backend
