#include "backend/sim_cluster.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "nic/gm_nic.hpp"
#include "nic/portals_nic.hpp"
#include "transport/gm.hpp"
#include "transport/portals.hpp"

namespace comb::backend {

SimCluster::SimCluster(MachineConfig cfg, int nodeCount)
    : cfg_(std::move(cfg)) {
  COMB_REQUIRE(nodeCount >= 1, "cluster needs at least one node");
  fabric_ = std::make_unique<net::Fabric>(sim_, cfg_.fabric);
  // Capacity is topology-aware: ports/2 nodes on the single star (each
  // node takes an uplink input and a downlink output), bounded by group
  // size for dragonfly, unbounded for the lazily-grown fat-tree.
  const int capacity = fabric_->capacityNodes();
  COMB_REQUIRE(capacity < 0 || nodeCount <= capacity,
               strFormat("cluster of %d nodes exceeds fabric capacity %d",
                         nodeCount, capacity));

  // Two passes: the fabric needs delivery sinks at addNode() time, but the
  // endpoints that own the sinks need their node ids. Register
  // trampolines that forward to the endpoint created in pass two.
  std::vector<net::NodeId> ids;
  for (int i = 0; i < nodeCount; ++i) {
    nodes_.emplace_back();
    const net::NodeId id = fabric_->addNode([this, i](net::Packet p) {
      auto& ep = *nodes_[static_cast<std::size_t>(i)].endpoint;
      if (cfg_.kind == TransportKind::Gm) {
        static_cast<transport::GmEndpoint&>(ep).nic().deliver(std::move(p));
      } else {
        static_cast<transport::PortalsEndpoint&>(ep).nic().deliver(
            std::move(p));
      }
    });
    COMB_ASSERT(id == i, "fabric node ids must be dense");
    ids.push_back(id);
  }

  COMB_REQUIRE(cfg_.cpusPerNode >= 1, "need at least one CPU per node");
  COMB_REQUIRE(cfg_.nicCpu >= 0 && cfg_.nicCpu < cfg_.cpusPerNode,
               "nicCpu outside [0, cpusPerNode)");
  for (int i = 0; i < nodeCount; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    for (int c = 0; c < cfg_.cpusPerNode; ++c)
      node.cpus.push_back(
          std::make_unique<host::Cpu>(sim_, strFormat("cpu%d.%d", i, c), i));
    host::Cpu& appCpu = *node.cpus[0];
    host::Cpu& nicCpu = *node.cpus[static_cast<std::size_t>(cfg_.nicCpu)];
    if (cfg_.kind == TransportKind::Gm) {
      node.endpoint = std::make_unique<transport::GmEndpoint>(
          sim_, appCpu, *fabric_, ids[static_cast<std::size_t>(i)], cfg_.gm);
    } else {
      node.endpoint = std::make_unique<transport::PortalsEndpoint>(
          sim_, appCpu, nicCpu, *fabric_, ids[static_cast<std::size_t>(i)],
          cfg_.portals);
    }
    node.mpi = std::make_unique<mpi::Mpi>(sim_, *node.endpoint, i, nodeCount);
    node.proc = std::make_unique<SimProc>(sim_, appCpu, *node.mpi,
                                          cfg_.secondsPerWorkIter);
  }
}

SimCluster::~SimCluster() = default;

SimProc& SimCluster::proc(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].proc;
}

host::Cpu& SimCluster::cpu(int rank, int which) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  auto& cpus = nodes_[static_cast<std::size_t>(rank)].cpus;
  COMB_REQUIRE(which >= 0 && which < static_cast<int>(cpus.size()),
               "cpu index out of range");
  return *cpus[static_cast<std::size_t>(which)];
}

transport::Endpoint& SimCluster::endpoint(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].endpoint;
}

mpi::Mpi& SimCluster::mpi(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].mpi;
}

void SimCluster::launch(int rank, sim::Task<void> process, std::string name) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  if (name.empty()) name = strFormat("rank%d", rank);
  sim_.spawn(std::move(process), std::move(name));
}

sim::TraceLog& SimCluster::enableTracing(std::size_t capacity) {
  if (!traceLog_) {
    traceLog_ = std::make_unique<sim::TraceLog>(capacity);
    sim_.attachTraceLog(traceLog_.get());
  }
  return *traceLog_;
}

std::unique_ptr<sim::TraceLog> SimCluster::releaseTraceLog() {
  sim_.attachTraceLog(nullptr);
  return std::move(traceLog_);
}

net::FaultCounters SimCluster::faultCounters() const {
  net::FaultCounters c = fabric_->linkFaultCounters();
  for (const auto& node : nodes_) {
    if (cfg_.kind == TransportKind::Gm) {
      const auto& nic =
          static_cast<const transport::GmEndpoint&>(*node.endpoint).nic();
      c.retransmits += nic.retransmits();
      c.timeoutWakeups += nic.timeoutWakeups();
      c.duplicatesFiltered += nic.duplicatesFiltered();
    } else {
      const auto& nic =
          static_cast<const transport::PortalsEndpoint&>(*node.endpoint).nic();
      c.retransmits += nic.retransmits();
      c.timeoutWakeups += nic.timeoutWakeups();
      c.duplicatesFiltered += nic.duplicatesFiltered();
    }
  }
  return c;
}

void SimCluster::run() {
  sim_.run();
  COMB_ASSERT(sim_.liveProcesses() == 0,
              "simulation drained with suspended processes (deadlock)");
  // A no-route drop is a fabric wiring bug, never a legitimate outcome —
  // it used to be just a log line, letting miswired fabrics sail through
  // goldens silently.
  COMB_ASSERT(fabric_->switchTotals().dropsNoRoute == 0,
              "switch dropped packets with no route (miswired fabric)");
}

}  // namespace comb::backend
