#include "backend/sim_cluster.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "nic/gm_nic.hpp"
#include "nic/portals_nic.hpp"
#include "nic/rdma_nic.hpp"
#include "transport/gm.hpp"
#include "transport/portals.hpp"
#include "transport/progress_thread.hpp"
#include "transport/rdma.hpp"

namespace comb::backend {

namespace {
/// The partition grain: nodes per edge switch (fat-tree leaf) or per
/// dragonfly group, 1 for the single star. Blocks of this size never
/// split across shards, so every intra-leaf/intra-group hop stays
/// shard-local and only trunk traffic crosses.
int partitionBlockNodes(const MachineConfig& cfg) {
  const net::TopologyConfig& t = cfg.fabric.topo;
  switch (t.kind) {
    case net::TopologyKind::SingleSwitch:
      return 1;
    case net::TopologyKind::FatTree:
      return t.nodesPerSwitch;
    case net::TopologyKind::Dragonfly:
      return t.nodesPerSwitch * t.routersPerGroup;
  }
  return 1;
}
}  // namespace

sim::ExecutorOptions SimCluster::executorOptions(const MachineConfig& cfg,
                                                 int nodes, int simJobs,
                                                 int workers,
                                                 sim::AffinityPolicy affinity) {
  COMB_REQUIRE(nodes >= 1, "cluster needs at least one node");
  COMB_REQUIRE(simJobs >= 1, "sim-jobs must be >= 1");
  const int grain = partitionBlockNodes(cfg);
  const int blocks = (nodes + grain - 1) / grain;
  sim::ExecutorOptions opts;
  opts.shards = std::min(simJobs, std::max(blocks, 1));
  // Lookahead: every link of the fabric — node links and trunks alike —
  // shares cfg.fabric.link.latency (Topology scales only the trunk
  // *rate*). The constructor cross-checks this against the built fabric.
  opts.lookahead = cfg.fabric.link.latency;
  opts.workers = workers;
  opts.affinity = affinity;
  return opts;
}

int SimCluster::shardOf(int rank) const {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  const int block = rank / blockNodes_;
  return static_cast<int>(static_cast<long long>(block) *
                          exec_.shardCount() / blocks_);
}

SimCluster::SimCluster(MachineConfig cfg, int nodeCount, int simJobs,
                       int workers, sim::AffinityPolicy affinity)
    : cfg_(std::move(cfg)),
      blockNodes_(partitionBlockNodes(cfg_)),
      blocks_(std::max((nodeCount + blockNodes_ - 1) /
                           std::max(blockNodes_, 1),
                       1)),
      exec_(executorOptions(cfg_, nodeCount, simJobs, workers, affinity)) {
  // All wiring happens on shard 0 (the construction context); for
  // sharded runs, bindShards below re-homes every component to its
  // owning shard before the first event fires.
  fabric_ = std::make_unique<net::Fabric>(exec_.shard(0), cfg_.fabric);
  // Capacity is topology-aware: ports/2 nodes on the single star (each
  // node takes an uplink input and a downlink output), bounded by group
  // size for dragonfly, unbounded for the lazily-grown fat-tree.
  const int capacity = fabric_->capacityNodes();
  COMB_REQUIRE(capacity < 0 || nodeCount <= capacity,
               strFormat("cluster of %d nodes exceeds fabric capacity %d",
                         nodeCount, capacity));

  // Two passes: the fabric needs delivery sinks at addNode() time, but the
  // endpoints that own the sinks need their node ids. Register
  // trampolines that forward to the endpoint created in pass two.
  std::vector<net::NodeId> ids;
  for (int i = 0; i < nodeCount; ++i) {
    nodes_.emplace_back();
    const net::NodeId id = fabric_->addNode([this, i](net::Packet p) {
      auto& ep = *nodes_[static_cast<std::size_t>(i)].endpoint;
      switch (cfg_.kind) {
        case TransportKind::Gm:
        case TransportKind::ProgressThread:
          // ProgressThreadEndpoint derives from GmEndpoint and shares
          // its NIC model; delivery is identical.
          static_cast<transport::GmEndpoint&>(ep).nic().deliver(
              std::move(p));
          break;
        case TransportKind::Portals:
          static_cast<transport::PortalsEndpoint&>(ep).nic().deliver(
              std::move(p));
          break;
        case TransportKind::Rdma:
          static_cast<transport::RdmaEndpoint&>(ep).nic().deliver(
              std::move(p));
          break;
      }
    });
    COMB_ASSERT(id == i, "fabric node ids must be dense");
    ids.push_back(id);
  }

  if (exec_.parallel()) {
    // The lookahead Executor was built with must bound every link of the
    // fabric that actually got wired.
    COMB_ASSERT(fabric_->minLinkLatency() >= exec_.lookahead(),
                "fabric link latency below the executor lookahead");
    fabric_->bindShards([this](net::NodeId id) {
      return &exec_.shard(shardOf(static_cast<int>(id)));
    });
    // With every link and egress port homed, the wired topology defines
    // the per-pair channel bounds: latency plus header serialization of
    // each link toward each egress shard of its next-hop switch.
    // setLookaheadMatrix certifies every entry against the scalar floor
    // asserted above and takes the min-plus closure, so far-apart shard
    // pairs (different leaves, different dragonfly groups) get windows
    // as wide as the real multi-hop path, not the single-link floor.
    exec_.setLookaheadMatrix(
        fabric_->shardLookaheadMatrix(exec_.shardCount()));
  }

  COMB_REQUIRE(cfg_.cpusPerNode >= 1, "need at least one CPU per node");
  COMB_REQUIRE(cfg_.nicCpu >= 0 && cfg_.nicCpu < cfg_.cpusPerNode,
               "nicCpu outside [0, cpusPerNode)");
  for (int i = 0; i < nodeCount; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i)];
    sim::Simulator& ctx = shardFor(i);
    for (int c = 0; c < cfg_.cpusPerNode; ++c)
      node.cpus.push_back(std::make_unique<host::Cpu>(
          ctx, strFormat("cpu%d.%d", i, c), i, cfg_.noise));
    host::Cpu& appCpu = *node.cpus[0];
    host::Cpu& nicCpu = *node.cpus[static_cast<std::size_t>(cfg_.nicCpu)];
    switch (cfg_.kind) {
      case TransportKind::Gm:
        node.endpoint = std::make_unique<transport::GmEndpoint>(
            ctx, appCpu, *fabric_, ids[static_cast<std::size_t>(i)],
            cfg_.gm);
        break;
      case TransportKind::Portals:
        node.endpoint = std::make_unique<transport::PortalsEndpoint>(
            ctx, appCpu, nicCpu, *fabric_, ids[static_cast<std::size_t>(i)],
            cfg_.portals);
        break;
      case TransportKind::ProgressThread: {
        if (cfg_.progress.dedicatedCore) {
          COMB_REQUIRE(cfg_.cpusPerNode >= 2 && cfg_.nicCpu != 0,
                       "dedicated progress engine needs cpusPerNode >= 2 "
                       "with nicCpu != 0");
        }
        host::Cpu& engineCpu = cfg_.progress.dedicatedCore ? nicCpu : appCpu;
        node.endpoint = std::make_unique<transport::ProgressThreadEndpoint>(
            ctx, appCpu, engineCpu, *fabric_,
            ids[static_cast<std::size_t>(i)], cfg_.progress);
        break;
      }
      case TransportKind::Rdma:
        node.endpoint = std::make_unique<transport::RdmaEndpoint>(
            ctx, appCpu, *fabric_, ids[static_cast<std::size_t>(i)],
            cfg_.rdma);
        break;
    }
    node.mpi = std::make_unique<mpi::Mpi>(ctx, *node.endpoint, i, nodeCount);
    node.proc = std::make_unique<SimProc>(ctx, appCpu, *node.mpi,
                                          cfg_.secondsPerWorkIter);
  }
}

SimCluster::~SimCluster() = default;

SimProc& SimCluster::proc(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].proc;
}

host::Cpu& SimCluster::cpu(int rank, int which) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  auto& cpus = nodes_[static_cast<std::size_t>(rank)].cpus;
  COMB_REQUIRE(which >= 0 && which < static_cast<int>(cpus.size()),
               "cpu index out of range");
  return *cpus[static_cast<std::size_t>(which)];
}

transport::Endpoint& SimCluster::endpoint(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].endpoint;
}

mpi::Mpi& SimCluster::mpi(int rank) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)].mpi;
}

void SimCluster::launch(int rank, sim::Task<void> process, std::string name) {
  COMB_REQUIRE(rank >= 0 && rank < nodeCount(), "rank out of range");
  if (name.empty()) name = strFormat("rank%d", rank);
  shardFor(rank).spawn(std::move(process), std::move(name));
}

sim::TraceLog& SimCluster::enableTracing(std::size_t capacity) {
  if (traceLogs_.empty()) {
    for (int s = 0; s < exec_.shardCount(); ++s) {
      traceLogs_.push_back(std::make_unique<sim::TraceLog>(capacity));
      exec_.shard(s).attachTraceLog(traceLogs_.back().get());
    }
  }
  return *traceLogs_.front();
}

std::size_t SimCluster::traceDropped() const {
  std::size_t n = 0;
  for (const auto& log : traceLogs_)
    if (log) n += log->dropped();
  return n;
}

std::unique_ptr<sim::TraceLog> SimCluster::releaseTraceLog() {
  for (int s = 0; s < exec_.shardCount(); ++s)
    exec_.shard(s).attachTraceLog(nullptr);
  auto merged = sim::TraceLog::merge(std::move(traceLogs_));
  traceLogs_.clear();
  return merged;
}

net::FaultCounters SimCluster::faultCounters() const {
  net::FaultCounters c = fabric_->linkFaultCounters();
  const auto tally = [&c](const auto& nic) {
    c.retransmits += nic.retransmits();
    c.timeoutWakeups += nic.timeoutWakeups();
    c.duplicatesFiltered += nic.duplicatesFiltered();
  };
  for (const auto& node : nodes_) {
    switch (cfg_.kind) {
      case TransportKind::Gm:
      case TransportKind::ProgressThread:
        tally(static_cast<const transport::GmEndpoint&>(*node.endpoint)
                  .nic());
        break;
      case TransportKind::Portals:
        tally(static_cast<const transport::PortalsEndpoint&>(*node.endpoint)
                  .nic());
        break;
      case TransportKind::Rdma:
        tally(static_cast<const transport::RdmaEndpoint&>(*node.endpoint)
                  .nic());
        break;
    }
  }
  return c;
}

void SimCluster::run() {
  exec_.run();
  COMB_ASSERT(exec_.liveProcesses() == 0,
              "simulation drained with suspended processes (deadlock)");
  // A no-route drop is a fabric wiring bug, never a legitimate outcome —
  // it used to be just a log line, letting miswired fabrics sail through
  // goldens silently.
  COMB_ASSERT(fabric_->switchTotals().dropsNoRoute == 0,
              "switch dropped packets with no route (miswired fabric)");
}

}  // namespace comb::backend
