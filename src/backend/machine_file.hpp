// Machine definition files: describe a machine model in a small INI-style
// text format instead of C++, so new systems can be assessed without
// recompiling the suite.
//
//   # my-cluster.ini
//   name = mynic
//   transport = portals          # gm | portals
//
//   [fabric]
//   link_rate_MBps   = 90
//   link_latency_us  = 2
//   switch_latency_us = 0.5
//   mtu              = 4096
//   packet_header    = 64
//   switch_ports     = 16        # unidirectional: a node takes 2
//
//   [topology]                   # switch graph; see docs/topologies.md
//   kind = fat-tree              # single | fat-tree | dragonfly
//   nodes_per_switch = 4
//   spines           = 2         # fat-tree only
//   groups           = 2         # dragonfly only
//   routers_per_group = 2        # dragonfly only
//   trunk_rate_scale = 1.0       # trunk rate / node link rate
//   queue_depth_packets = 0      # 0 = idealized infinite-buffer crossbar
//   queue_depth_bytes   = 0      # 0 = no byte cap
//   arbitration  = rr            # rr | fifo
//   backpressure = drop          # drop | credit
//
//   [host]
//   seconds_per_iter_ns = 4
//   cpus_per_node       = 1
//   nic_cpu             = 0
//
//   [gm]                         # only read when transport = gm
//   eager_threshold_kb  = 16
//   post_overhead_us    = 5
//   eager_tx_copy_MBps  = 280
//   eager_rx_copy_MBps  = 400
//   lib_call_cost_us    = 0.7
//   ctrl_handle_cost_us = 1
//
//   [portals]                    # only read when transport = portals
//   post_syscall_us     = 15
//   post_kernel_us      = 85
//   lib_call_cost_us    = 1.2
//   per_frag_tx_us      = 9
//   per_frag_rx_us      = 20
//   kernel_copy_MBps    = 280
//   unexpected_copy_MBps = 250
//
// Unset keys keep the preset defaults; unknown keys or sections are hard
// errors (typos must not silently produce a different machine).
#pragma once

#include <istream>
#include <string>

#include "backend/machine.hpp"

namespace comb::backend {

/// Parse a machine definition; throws comb::ConfigError on any problem.
MachineConfig parseMachineFile(std::istream& in,
                               const std::string& sourceName = "<stream>");

/// Load from a filesystem path.
MachineConfig loadMachineFile(const std::string& path);

}  // namespace comb::backend
