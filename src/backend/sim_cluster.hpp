// SimCluster: assembles a complete simulated machine — fabric, per-node
// CPU, NIC/transport endpoint, and MiniMPI instance — from a
// MachineConfig, and provides the per-process environment (SimProc) that
// the COMB benchmark templates run against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "common/units.hpp"
#include "host/cpu.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/endpoint.hpp"

namespace comb::backend {

class SimCluster;

/// The per-process environment handed to benchmark code. Satisfies the
/// COMB backend concept (see comb/env.hpp): simulated time, a calibrated
/// work loop on the node's CPU, and the MiniMPI instance.
class SimProc {
 public:
  SimProc(sim::Simulator& sim, host::Cpu& cpu, mpi::Mpi& mpi,
          double secondsPerIter)
      : sim_(&sim), cpu_(&cpu), mpi_(&mpi), spi_(secondsPerIter) {}

  Time wtime() const { return sim_->now(); }
  /// Awaitable: spin the calibrated delay loop for `iters` iterations.
  sim::Task<void> work(std::uint64_t iters) {
    return cpu_->compute(static_cast<double>(iters) * spi_);
  }
  double secondsPerIter() const { return spi_; }

  mpi::Mpi& mpi() { return *mpi_; }
  host::Cpu& cpu() { return *cpu_; }
  sim::Simulator& simulator() { return *sim_; }
  int rank() const { return mpi_->rank(); }
  int size() const { return mpi_->size(); }

  /// Transport-activity versioning, used by reactive helper loops (the
  /// COMB support process responds "as fast as messages are consumed").
  std::uint64_t activityVersion() const {
    return mpi_->endpoint().activity().version();
  }
  /// Awaitable: completes once activityVersion() != seen.
  auto waitActivity(std::uint64_t seen) {
    return mpi_->endpoint().activity().changedSince(seen);
  }

  /// Benchmark-phase span markers ("post", "work", "wait", "dry", ...)
  /// for the trace-driven overlap audit and the per-phase latency
  /// recorders: while a phase is open, MPI completion latencies are also
  /// recorded into phase-suffixed distributions. `label` must outlive
  /// the span (use string literals).
  void phaseBegin(std::string_view label) {
    sim_->emitTraceBegin(sim::TraceCategory::Phase, rank(), label);
    mpi_->beginPhase(label);
  }
  void phaseEnd(std::string_view label) {
    sim_->emitTraceEnd(sim::TraceCategory::Phase, rank(), label);
    mpi_->endPhase();
  }

 private:
  sim::Simulator* sim_;
  host::Cpu* cpu_;
  mpi::Mpi* mpi_;
  double spi_;
};

class SimCluster {
 public:
  /// `simJobs` shards the simulator core: nodes are partitioned into
  /// contiguous blocks aligned to the topology (whole leaf switches /
  /// dragonfly groups), each block set driven by one sim::ShardContext,
  /// with the fabric's minimum link latency as the conservative scalar
  /// lookahead floor and a per-shard-pair matrix derived from the wired
  /// topology (Fabric::shardLookaheadMatrix) widening the windows. 1
  /// (the default) is the classic serial core, bit-identical to the
  /// pre-executor simulator. The effective shard count is min(simJobs,
  /// partition blocks) — results are a pure function of it and the
  /// matrix. `workers` limits the threads driving the shards and
  /// `affinity` pins them (both wall time only; workers 0 = hardware
  /// concurrency).
  SimCluster(MachineConfig cfg, int nodes, int simJobs = 1, int workers = 0,
             sim::AffinityPolicy affinity = sim::AffinityPolicy::None);
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;
  ~SimCluster();

  sim::Executor& executor() { return exec_; }
  const sim::Executor& executor() const { return exec_; }
  /// Shard 0's context — THE simulator for serial (simJobs = 1) runs,
  /// where every component lives on it. Sharded runs should prefer
  /// executor() / the merged accessors below.
  sim::Simulator& simulator() { return exec_.shard(0); }
  /// The shard driving `rank`'s node.
  sim::ShardContext& shardFor(int rank) { return exec_.shard(shardOf(rank)); }
  int shardOf(int rank) const;
  net::Fabric& fabric() { return *fabric_; }
  const MachineConfig& config() const { return cfg_; }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }

  // Merged whole-machine views (identical to the shard-0 values for
  // serial runs).
  Time now() const { return exec_.now(); }
  std::uint64_t eventsExecuted() const { return exec_.eventsExecuted(); }
  metrics::Snapshot metricsSnapshot() const { return exec_.metricsSnapshot(); }
  /// Executor load imbalance (1.0 for the serial core); see
  /// sim::Executor::shardImbalance.
  double shardImbalance() const { return exec_.shardImbalance(); }

  SimProc& proc(int rank);
  /// CPU `which` of a node (0 = the application CPU).
  host::Cpu& cpu(int rank, int which = 0);
  transport::Endpoint& endpoint(int rank);
  mpi::Mpi& mpi(int rank);

  /// Spawn a process coroutine on `rank`'s environment.
  void launch(int rank, sim::Task<void> process, std::string name = {});

  /// Run the simulation to completion (all processes finished).
  void run();

  /// Aggregate fault-injection and reliability counters: link-level drops
  /// and corruptions plus per-node NIC retransmission work. All zero on a
  /// lossless fabric.
  net::FaultCounters faultCounters() const;

  /// Attach structured trace logs (owned by the cluster) — one per
  /// shard, each of `capacity`. Returns shard 0's log.
  sim::TraceLog& enableTracing(std::size_t capacity = 1 << 16);
  /// Shard 0's live log (the whole machine for serial runs; one shard's
  /// slice otherwise — use releaseTraceLog() for the merged timeline).
  sim::TraceLog* traceLog() {
    return traceLogs_.empty() ? nullptr : traceLogs_.front().get();
  }
  const sim::TraceLog* traceLog() const {
    return traceLogs_.empty() ? nullptr : traceLogs_.front().get();
  }
  /// Records dropped by the bounded rings, summed over every shard.
  std::size_t traceDropped() const;
  /// Detach every shard's log and return the merged, time-ordered
  /// timeline (a serial run's single log is returned unchanged), e.g. to
  /// keep it after the cluster is torn down.
  std::unique_ptr<sim::TraceLog> releaseTraceLog();

 private:
  struct Node {
    std::vector<std::unique_ptr<host::Cpu>> cpus;  // [0] = application CPU
    std::unique_ptr<transport::Endpoint> endpoint;
    std::unique_ptr<mpi::Mpi> mpi;
    std::unique_ptr<SimProc> proc;
  };

  static sim::ExecutorOptions executorOptions(const MachineConfig& cfg,
                                              int nodes, int simJobs,
                                              int workers,
                                              sim::AffinityPolicy affinity);

  MachineConfig cfg_;
  /// Partition: node i belongs to block i / blockNodes_; blocks spread
  /// contiguously over the shards. blockNodes_ is the topology's
  /// natural grain (nodes per leaf / per dragonfly group; 1 for the
  /// star) so a whole edge switch lands on one shard. Members precede
  /// exec_: shard count = min(simJobs, blocks_).
  int blockNodes_ = 1;
  int blocks_ = 1;
  sim::Executor exec_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<sim::TraceLog>> traceLogs_;
};

}  // namespace comb::backend
