// SimCluster: assembles a complete simulated machine — fabric, per-node
// CPU, NIC/transport endpoint, and MiniMPI instance — from a
// MachineConfig, and provides the per-process environment (SimProc) that
// the COMB benchmark templates run against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/machine.hpp"
#include "common/units.hpp"
#include "host/cpu.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "transport/endpoint.hpp"

namespace comb::backend {

class SimCluster;

/// The per-process environment handed to benchmark code. Satisfies the
/// COMB backend concept (see comb/env.hpp): simulated time, a calibrated
/// work loop on the node's CPU, and the MiniMPI instance.
class SimProc {
 public:
  SimProc(sim::Simulator& sim, host::Cpu& cpu, mpi::Mpi& mpi,
          double secondsPerIter)
      : sim_(&sim), cpu_(&cpu), mpi_(&mpi), spi_(secondsPerIter) {}

  Time wtime() const { return sim_->now(); }
  /// Awaitable: spin the calibrated delay loop for `iters` iterations.
  sim::Task<void> work(std::uint64_t iters) {
    return cpu_->compute(static_cast<double>(iters) * spi_);
  }
  double secondsPerIter() const { return spi_; }

  mpi::Mpi& mpi() { return *mpi_; }
  host::Cpu& cpu() { return *cpu_; }
  sim::Simulator& simulator() { return *sim_; }
  int rank() const { return mpi_->rank(); }
  int size() const { return mpi_->size(); }

  /// Transport-activity versioning, used by reactive helper loops (the
  /// COMB support process responds "as fast as messages are consumed").
  std::uint64_t activityVersion() const {
    return mpi_->endpoint().activity().version();
  }
  /// Awaitable: completes once activityVersion() != seen.
  auto waitActivity(std::uint64_t seen) {
    return mpi_->endpoint().activity().changedSince(seen);
  }

  /// Benchmark-phase span markers ("post", "work", "wait", "dry", ...)
  /// for the trace-driven overlap audit. No-ops when tracing is detached;
  /// `label` must outlive the span (use string literals).
  void phaseBegin(std::string_view label) {
    sim_->emitTraceBegin(sim::TraceCategory::Phase, rank(), label);
  }
  void phaseEnd(std::string_view label) {
    sim_->emitTraceEnd(sim::TraceCategory::Phase, rank(), label);
  }

 private:
  sim::Simulator* sim_;
  host::Cpu* cpu_;
  mpi::Mpi* mpi_;
  double spi_;
};

class SimCluster {
 public:
  SimCluster(MachineConfig cfg, int nodes);
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;
  ~SimCluster();

  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return *fabric_; }
  const MachineConfig& config() const { return cfg_; }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }

  SimProc& proc(int rank);
  /// CPU `which` of a node (0 = the application CPU).
  host::Cpu& cpu(int rank, int which = 0);
  transport::Endpoint& endpoint(int rank);
  mpi::Mpi& mpi(int rank);

  /// Spawn a process coroutine on `rank`'s environment.
  void launch(int rank, sim::Task<void> process, std::string name = {});

  /// Run the simulation to completion (all processes finished).
  void run();

  /// Aggregate fault-injection and reliability counters: link-level drops
  /// and corruptions plus per-node NIC retransmission work. All zero on a
  /// lossless fabric.
  net::FaultCounters faultCounters() const;

  /// Attach a structured trace log (owned by the cluster); returns it.
  sim::TraceLog& enableTracing(std::size_t capacity = 1 << 16);
  sim::TraceLog* traceLog() { return traceLog_.get(); }
  const sim::TraceLog* traceLog() const { return traceLog_.get(); }
  /// Take ownership of the trace log (detaches it from the simulator),
  /// e.g. to keep the timeline after the cluster is torn down.
  std::unique_ptr<sim::TraceLog> releaseTraceLog();

 private:
  struct Node {
    std::vector<std::unique_ptr<host::Cpu>> cpus;  // [0] = application CPU
    std::unique_ptr<transport::Endpoint> endpoint;
    std::unique_ptr<mpi::Mpi> mpi;
    std::unique_ptr<SimProc> proc;
  };

  MachineConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<Node> nodes_;
  std::unique_ptr<sim::TraceLog> traceLog_;
};

}  // namespace comb::backend
