// RDMA-style offloading NIC model (modern hardware: ConnectX/Slingshot
// class, per "MPI Progress For All").
//
// Unlike the GM NIC (library-driven progress) and the Portals model
// (kernel interrupts per fragment), everything here is NIC-resident and
// costs ZERO host CPU:
//  * Transmit: a descriptor engine paces fragments at perFragTx each,
//    pipelined with wire serialization — no kernel pump, no interrupts.
//  * Receive: fragments are DMA'd to their destination and handed to the
//    transport's handler synchronously in NIC context; no interrupt is
//    ever raised. Matching above happens in NIC hardware (the transport
//    charges the match-unit delay itself).
//  * Reliability: a fully autonomous hardware ack/retransmit protocol —
//    unacked fragments are retained in NIC memory and replayed on
//    timeout with no host involvement (the same autonomy the Portals
//    kernel has, minus the interrupts).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/latency_recorder.hpp"
#include "common/units.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "transport/payload_pool.hpp"
#include "transport/reliability.hpp"
#include "transport/wire.hpp"

namespace comb::nic {

struct RdmaNicConfig {
  /// NIC descriptor-engine time per outbound fragment (WQE fetch + DMA
  /// setup) — paces injection, costs no host CPU.
  Time perFragTx = 0.15e-6;
};

class RdmaNic {
 public:
  /// Runs in NIC context (zero host cost) per received data fragment.
  using RxHandler =
      std::function<void(const transport::WirePayload&, net::NodeId)>;
  /// Runs in NIC context when msgId's last fragment entered the wire
  /// (lossless) or was fully acked (lossy).
  using TxDoneHandler = std::function<void(std::uint64_t msgId)>;

  RdmaNic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node,
          RdmaNicConfig cfg, transport::ReliabilityConfig rel = {});
  RdmaNic(const RdmaNic&) = delete;
  RdmaNic& operator=(const RdmaNic&) = delete;

  void setRxHandler(RxHandler h) { rxHandler_ = std::move(h); }
  void setTxDoneHandler(TxDoneHandler h) { txDone_ = std::move(h); }

  /// Queue a message on the descriptor engine. Returns its msgId.
  std::uint64_t sendMessage(net::NodeId dst, transport::WireKind kind,
                            const mpi::Envelope& env, Bytes wireBytes,
                            Bytes msgBytes, transport::DataBuffer data,
                            std::uint64_t senderHandle,
                            std::uint64_t recvHandle);

  /// Packet entry point — wire as the node's fabric delivery sink.
  void deliver(net::Packet p);

  net::NodeId node() const { return node_; }
  std::uint64_t messagesSent() const { return messagesSent_; }
  std::uint64_t fragmentsReceived() const { return fragmentsReceived_; }
  const RdmaNicConfig& config() const { return cfg_; }

  /// True when the fabric can lose packets and the hardware ack protocol
  /// runs. Retransmission is entirely NIC-resident and free of host CPU.
  bool reliable() const { return reliable_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeoutWakeups() const { return timeoutWakeups_; }
  std::uint64_t duplicatesFiltered() const { return duplicatesFiltered_; }

 private:
  struct TxFrag {
    net::NodeId dst;
    Bytes fragBytes;
    net::PayloadRef<transport::WirePayload> payload;
    bool lastOfMessage;
    std::uint64_t msgId;
    Time enqueuedAt = 0;  ///< descriptor-queue dwell (tx tail signal)
  };

  /// Fragments retained in NIC memory for autonomous replay.
  struct Unacked {
    net::NodeId dst = -1;
    std::vector<net::PayloadRef<transport::WirePayload>> frags;
    std::vector<Bytes> fragBytes;
    std::vector<bool> acked;
    std::uint32_t ackedCount = 0;
    int retries = 0;
    sim::EventHandle timer;
  };

  void pumpTx();
  void armTimer(std::uint64_t msgId);
  void onTimer(std::uint64_t msgId);
  void onAck(const transport::WirePayload& ack);
  /// Hardware-generated ack: straight onto the wire, zero host CPU.
  void sendAck(net::NodeId dst, std::uint64_t msgId, std::uint32_t fragIndex);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId node_;
  RdmaNicConfig cfg_;
  struct NicCounters {
    metrics::Counter& sent;
    metrics::Counter& fragsTx;
    metrics::Counter& fragsRx;
    metrics::Counter& retransmits;
    metrics::Counter& timeouts;
    metrics::Counter& duplicates;
  } counters_;
  /// "nic.rdma.n<id>.tx_queue_wait": descriptor-queue dwell per fragment.
  LatencyRecorder& txQueueWaitLatency_;
  RxHandler rxHandler_;
  TxDoneHandler txDone_;
  transport::WirePayloadPool pool_;

  /// RTS/CTS fragments bypass queued data so the autonomous rendezvous
  /// control loop never waits behind a whole in-flight message — they
  /// wait (at most) for the fragment currently serializing.
  std::deque<TxFrag> ctrlQueue_;
  std::deque<TxFrag> txQueue_;
  bool txBusy_ = false;
  std::uint64_t nextMsgId_ = 1;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t fragmentsReceived_ = 0;

  // Reliability state (used only when reliable_).
  transport::ReliabilityConfig rel_;
  bool reliable_ = false;
  std::map<std::uint64_t, Unacked> unacked_;  ///< by msgId
  /// Receive-side hardware dedup: fragments already seen (and acked) per
  /// (source, message); late duplicates are re-acked for free.
  std::map<std::pair<net::NodeId, std::uint64_t>, std::set<std::uint32_t>>
      rxSeen_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeoutWakeups_ = 0;
  std::uint64_t duplicatesFiltered_ = 0;
};

}  // namespace comb::nic
